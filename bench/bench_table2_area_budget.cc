/**
 * @file
 * Reproduces Table 2: the area budget of one baseline cluster
 * (4 domains x 8 PEs, V = M = 128, 32 KB L1), printing the published
 * RTL figures next to this repository's area-model derivation.
 */

#include <cstdio>

#include "area/area_model.h"
#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("table2_area_budget", opts);

    const DesignPoint base{1, 4, 8, 128, 128, 32, 0};
    const double pe_model = AreaModel::peArea(128, 128);
    const double dom_model = AreaModel::domainArea(8, 128, 128);
    const double clu_model = AreaModel::clusterArea(base);

    std::printf("Table 2: cluster area budget (baseline: 4 domains x 8 "
                "PEs, V=M=128, 32KB L1)\n");
    std::printf("paper column = published RTL synthesis figures; model "
                "column = this repo's Table-3 area model\n\n");

    std::printf("%-22s %10s %10s\n", "component", "paper mm2", "model mm2");
    bench::rule(46);
    struct Row
    {
        const char *name;
        double paper;
        double model;
    };
    const double match_model = 128 * AreaModel::kMatchPerEntry;
    const double store_model = 128 * AreaModel::kInstPerEntry;
    const Row pe_rows[] = {
        {"  INPUT", Table2Budget::kInput, -1},
        {"  MATCH", Table2Budget::kMatch, match_model},
        {"  DISPATCH", Table2Budget::kDispatch, -1},
        {"  EXECUTE", Table2Budget::kExecute, -1},
        {"  OUTPUT", Table2Budget::kOutput, -1},
        {"  instruction store", Table2Budget::kInstStore, store_model},
        {"PE total", Table2Budget::kPeTotal, pe_model},
    };
    for (const Row &row : pe_rows) {
        if (row.model < 0)
            std::printf("%-22s %10.2f %10s\n", row.name, row.paper, "-");
        else
            std::printf("%-22s %10.2f %10.2f\n", row.name, row.paper,
                        row.model);
        Json j = Json::object();
        j["component"] = std::string(row.name);
        j["paper_mm2"] = row.paper;
        if (row.model >= 0)
            j["model_mm2"] = row.model;
        report.addRow("budget", std::move(j));
    }
    bench::rule(46);
    std::printf("%-22s %10.2f %10.2f\n", "8x PE", 8 * Table2Budget::kPeTotal,
                8 * pe_model);
    std::printf("%-22s %10.2f %10.2f\n", "  MemPE + NetPE",
                Table2Budget::kMemPe + Table2Budget::kNetPe,
                2 * AreaModel::kPseudoPe);
    std::printf("%-22s %10.2f %10s\n", "  FPU", Table2Budget::kFpu, "-");
    std::printf("%-22s %10.2f %10.2f\n", "domain total",
                Table2Budget::kDomainTotal, dom_model);
    bench::rule(46);
    std::printf("%-22s %10.2f %10.2f\n", "4x domain",
                4 * Table2Budget::kDomainTotal, 4 * dom_model);
    std::printf("%-22s %10.2f %10.2f\n", "network switch",
                Table2Budget::kSwitch, AreaModel::kNetSwitch);
    std::printf("%-22s %10.2f %10.2f\n", "store buffer",
                Table2Budget::kStoreBuffer, AreaModel::kStoreBuffer);
    std::printf("%-22s %10.2f %10.2f\n", "data cache (32KB)",
                Table2Budget::kDataCache, 32 * AreaModel::kL1PerKB);
    std::printf("%-22s %10.2f %10.2f\n", "cluster total",
                Table2Budget::kClusterTotal, clu_model);
    bench::rule(46);

    // Headline claims of §4.1.
    const double pes_frac = 4 * 8 * pe_model / clu_model;
    const double sram =
        32 * (128 * AreaModel::kMatchPerEntry +
              128 * AreaModel::kInstPerEntry) +
        32 * AreaModel::kL1PerKB;
    std::printf("\nPE fraction of cluster: %.0f%%  (paper: 71%%)\n",
                100 * pes_frac);
    std::printf("SRAM fraction of cluster: %.0f%%  (paper: ~80%%)\n",
                100 * sram / clu_model);
    std::printf("Full-die baseline (C1, no L2): %.1f mm2  (paper: 39)\n",
                AreaModel::totalArea(base) -
                    32 * AreaModel::kL1PerKB / AreaModel::kUtilization +
                    8 * AreaModel::kL1PerKB / AreaModel::kUtilization);
    std::printf("Table-2 note: the paper's own 6.18 mm2 'data cache' row "
                "conflicts with its Table-3\nconstant (0.363 mm2/KB x 32 "
                "KB = 11.6 mm2); we follow Table 3, which Table 5's\n"
                "area column confirms.\n");
    report.meta()["pe_fraction"] = pes_frac;
    report.meta()["sram_fraction"] = sram / clu_model;
    report.meta()["cluster_total_mm2"] = clu_model;
    report.finish();
    return 0;
}
