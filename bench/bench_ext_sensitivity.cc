/**
 * @file
 * EXTENSION: seed-sensitivity check of the headline result.
 *
 * Our workloads draw their input data from a seeded generator; a
 * reproduction is only trustworthy if the Pareto conclusions do not
 * depend on the draw. This harness re-runs a representative slice of
 * the Table-5 sweep under several seeds and reports the spread.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ext_sensitivity", opts);

    const std::vector<DesignPoint> designs = {
        {1, 4, 8, 128, 128, 8, 0},     // Smallest (paper id 1).
        {1, 4, 8, 128, 128, 32, 1},    // 1-cluster + caches (id 5).
        {4, 4, 8, 64, 64, 8, 1},       // 4-cluster knee (id 8).
        {4, 4, 8, 128, 128, 16, 2},    // Mid-range (id 13).
        {16, 4, 8, 64, 64, 8, 1},      // Largest (id 18).
    };
    const std::uint64_t seeds[] = {1, 1337, 987654321};

    std::printf("Extension: input-data sensitivity of the Splash2 "
                "area-performance curve\n\n");
    std::printf("%-34s %8s | %8s %8s %8s | %7s\n", "design", "area",
                "seed1", "seed2", "seed3", "spread");
    bench::rule(84);

    std::vector<std::vector<double>> results;
    for (const DesignPoint &d : designs) {
        std::vector<double> aipcs;
        for (std::uint64_t seed : seeds) {
            opts.seed = seed;
            double aipc = 0.0;
            int n = 0;
            for (const Kernel &k : kernelRegistry()) {
                if (k.suite != Suite::kSplash)
                    continue;
                if (opts.quick && k.name != "fft" && k.name != "lu")
                    continue;
                aipc += bench::runKernelBestThreads(k, d, opts).aipc;
                ++n;
            }
            aipcs.push_back(aipc / n);
        }
        const double lo = *std::min_element(aipcs.begin(), aipcs.end());
        const double hi = *std::max_element(aipcs.begin(), aipcs.end());
        std::printf("%-34s %8.1f | %8.2f %8.2f %8.2f | %6.1f%%\n",
                    d.describe().c_str(), AreaModel::totalArea(d),
                    aipcs[0], aipcs[1], aipcs[2],
                    100.0 * (hi - lo) / lo);
        Json row = Json::object();
        row["design"] = d.describe();
        row["area_mm2"] = AreaModel::totalArea(d);
        row["seed1_aipc"] = aipcs[0];
        row["seed2_aipc"] = aipcs[1];
        row["seed3_aipc"] = aipcs[2];
        row["spread_pct"] = 100.0 * (hi - lo) / lo;
        report.addRow("sensitivity", std::move(row));
        results.push_back(aipcs);
    }

    // The ORDER of the designs (the Pareto conclusion) must be the same
    // under every seed.
    bool order_stable = true;
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::size_t i = 0; i + 1 < results.size(); ++i) {
            if (results[i][s] >= results[i + 1][s])
                order_stable = false;
        }
    }
    std::printf("\nperformance ordering identical under all seeds: %s\n",
                order_stable ? "yes" : "NO — investigate");
    report.meta()["order_stable"] = order_stable;
    report.finish();
    return order_stable ? 0 : 1;
}
