/**
 * @file
 * Reproduces Figure 6's single-threaded panes (Spec and Mediabench):
 * the AIPC-vs-area scatter over all candidate designs with the Pareto
 * front marked, for each suite.
 *
 * Expected shape (paper): single-threaded suites saturate quickly —
 * matching/instruction-store capacity first, then an L2; extra clusters
 * buy nothing ("none of the single-threaded applications can profitably
 * use more than one cluster").
 */

#include <cstdio>
#include <vector>

#include "area/pareto.h"
#include "bench/bench_util.h"

using namespace ws;

namespace {

void
runSuite(const char *name, Suite suite,
         const std::vector<DesignPoint> &designs,
         const bench::BenchOptions &opts, bench::BenchReport &report)
{
    std::printf("\nFigure 6 pane: %s\n", name);
    std::printf("area_mm2  avg_aipc  pareto  design\n");
    bench::rule(72);

    // One engine batch covers every (design, kernel, threads) point in
    // the pane; the per-design reduction below sees them in order.
    const std::vector<double> aipcs =
        bench::suiteAipcAll(suite, designs, opts);

    std::vector<ParetoPoint> points;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        points.push_back(ParetoPoint{AreaModel::totalArea(designs[i]),
                                     aipcs[i], i});
        std::fprintf(stderr, "  [%s %zu/%zu] %s -> %.2f\n", name, i + 1,
                     designs.size(), designs[i].describe().c_str(),
                     aipcs[i]);
    }
    const auto front = paretoFront(points);
    std::vector<bool> optimal(designs.size(), false);
    for (std::size_t idx : front)
        optimal[points[idx].tag] = true;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        std::printf("%8.1f  %8.2f  %6s  %s\n", points[i].area, aipcs[i],
                    optimal[i] ? "*" : "", designs[i].describe().c_str());
        Json row = Json::object();
        row["design"] = designs[i].describe();
        row["area_mm2"] = points[i].area;
        row["avg_aipc"] = aipcs[i];
        row["pareto"] = static_cast<bool>(optimal[i]);
        report.addRow(name, std::move(row));
    }

    // Does more than one cluster ever help? (Paper: no.)
    double best_one_cluster = 0.0;
    double best_overall = 0.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        best_overall = std::max(best_overall, aipcs[i]);
        if (designs[i].clusters == 1)
            best_one_cluster = std::max(best_one_cluster, aipcs[i]);
    }
    std::printf("\n%s: best 1-cluster AIPC %.2f vs best overall %.2f "
                "(paper: multi-cluster buys ~nothing)\n", name,
                best_one_cluster, best_overall);
    report.meta()[std::string(name) + " best_1cluster"] = best_one_cluster;
    report.meta()[std::string(name) + " best_overall"] = best_overall;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const std::vector<DesignPoint> designs = bench::benchDesigns(opts);
    bench::BenchReport report("fig6_pareto_all", opts);
    std::printf("Figure 6 (single-threaded panes): %zu designs\n",
                designs.size());
    runSuite("Spec2000-like", Suite::kSpec, designs, opts, report);
    runSuite("Mediabench-like", Suite::kMedia, designs, opts, report);
    report.finish();
    return 0;
}
