/**
 * @file
 * Section 3.2 matching-table ablations:
 *  - banking (input bandwidth): paper — 2 banks cost 5% on average and
 *    15% on ammp; 8 banks gain nothing over 4;
 *  - set associativity: paper — 2-way gains 10% over direct-mapped and
 *    cuts misses 41%; 4-way adds <1%.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ablation_matching", opts);

    const char *workloads_all[] = {"gzip", "ammp", "equake", "djpeg",
                                   "rawdaudio", "mcf"};
    const char *workloads_quick[] = {"gzip", "ammp"};
    const auto workloads = opts.quick
                               ? std::vector<const char *>(
                                     std::begin(workloads_quick),
                                     std::end(workloads_quick))
                               : std::vector<const char *>(
                                     std::begin(workloads_all),
                                     std::end(workloads_all));

    // Bank pressure needs a high arrival rate per PE: use a dense
    // single-domain machine (8 PEs carrying the whole program).
    ProcessorConfig base = ProcessorConfig::baseline();
    base.memory.l2Bytes = 1 << 20;
    ProcessorConfig dense = base;
    dense.domainsPerCluster = 1;
    dense.pe.instStoreEntries = 256;
    dense.pe.matchingEntries = 256;

    std::printf("Ablation: matching-table banks (arrival bandwidth; "
                "dense 8-PE machine)\n");
    std::printf("paper: 2 banks -5%% avg (-15%% worst, ammp); 8 banks ~= "
                "4 banks\n\n");
    std::printf("%-12s %8s %8s %8s %8s %10s\n", "workload", "1 bank",
                "2 banks", "4 banks", "8 banks", "2-vs-4");
    bench::rule(62);

    // All workload x bank-count points as one engine batch.
    const unsigned bank_counts[] = {1u, 2u, 4u, 8u};
    std::vector<bench::CfgRun> bank_runs;
    for (const char *w : workloads) {
        for (unsigned banks : bank_counts) {
            ProcessorConfig cfg = dense;
            cfg.pe.matchingBanks = banks;
            bank_runs.push_back(bench::CfgRun{&findKernel(w), cfg, 1});
        }
    }
    const std::vector<bench::RunResult> bank_results =
        bench::runAll(bank_runs, opts);
    double geo_drop = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const char *w = workloads[i];
        double aipc[4];
        for (int idx = 0; idx < 4; ++idx)
            aipc[idx] = bank_results[i * 4 + idx].aipc;
        const double drop = 100.0 * (1.0 - aipc[1] / aipc[2]);
        geo_drop += drop;
        ++n;
        std::printf("%-12s %8.2f %8.2f %8.2f %8.2f %9.1f%%\n", w,
                    aipc[0], aipc[1], aipc[2], aipc[3], drop);
        Json row = Json::object();
        row["workload"] = std::string(w);
        row["banks1"] = aipc[0];
        row["banks2"] = aipc[1];
        row["banks4"] = aipc[2];
        row["banks8"] = aipc[3];
        row["drop_2v4_pct"] = drop;
        report.addRow("banks", std::move(row));
    }
    std::printf("mean 2-vs-4 bank penalty: %.1f%%  (paper: 5%%)\n\n",
                geo_drop / n);
    report.meta()["mean_bank_penalty_pct"] = geo_drop / n;

    std::printf("Ablation: matching-table associativity\n");
    std::printf("paper: 2-way +10%% over 1-way, misses -41%%; 4-way "
                "< +1%%\n\n");
    std::printf("%-12s %8s %8s %8s %10s %12s\n", "workload", "1-way",
                "2-way", "4-way", "2w gain", "miss drop");
    bench::rule(64);

    const unsigned way_counts[] = {1u, 2u, 4u};
    std::vector<bench::CfgRun> way_runs;
    for (const char *w : workloads) {
        for (unsigned ways : way_counts) {
            ProcessorConfig cfg = base;
            cfg.pe.matchingWays = ways;
            way_runs.push_back(bench::CfgRun{&findKernel(w), cfg, 1});
        }
    }
    const std::vector<bench::RunResult> way_results =
        bench::runAll(way_runs, opts);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const char *w = workloads[i];
        double aipc[3];
        double misses[3];
        for (int idx = 0; idx < 3; ++idx) {
            const bench::RunResult &r = way_results[i * 3 + idx];
            aipc[idx] = r.aipc;
            misses[idx] = r.report.get("match.misses");
        }
        const double gain = 100.0 * (aipc[1] / aipc[0] - 1.0);
        const double miss_drop =
            misses[0] > 0 ? 100.0 * (1.0 - misses[1] / misses[0]) : 0.0;
        std::printf("%-12s %8.2f %8.2f %8.2f %9.1f%% %11.1f%%\n", w,
                    aipc[0], aipc[1], aipc[2], gain, miss_drop);
        Json row = Json::object();
        row["workload"] = std::string(w);
        row["way1"] = aipc[0];
        row["way2"] = aipc[1];
        row["way4"] = aipc[2];
        row["gain_2w_pct"] = gain;
        row["miss_drop_pct"] = miss_drop;
        report.addRow("associativity", std::move(row));
    }
    report.finish();
    return 0;
}
