/**
 * @file
 * Reproduces Figure 7's scaled-tile analysis (§4.2, "Scalable design
 * points"):
 *
 *  a = the best-performing single-cluster design (single-threaded avg);
 *  c = the most area-efficient single-cluster design;
 *  b = a naively replicated 4x (clusters and L2 both x4);
 *  d = c replicated 4x;
 *  e = the smallest Pareto-optimal 4-cluster design (Splash);
 *  plus c and e replicated 16x.
 *
 * Paper's lessons: (1) b lands far off the Pareto front — naive
 * replication scales a design's inefficiencies too — while d is nearly
 * optimal at almost half the area; (2) the optimal tile varies with
 * machine size: scaling c to 16 clusters loses efficiency, scaling e
 * keeps the linear trend.
 */

#include <cstdio>
#include <vector>

#include "area/pareto.h"
#include "bench/bench_util.h"

using namespace ws;

namespace {

DesignPoint
replicate(DesignPoint d, int factor)
{
    d.clusters = static_cast<std::uint16_t>(d.clusters * factor);
    d.l2MB = static_cast<std::uint16_t>(d.l2MB * factor);
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const auto all = enumerateCandidates();
    bench::BenchReport report("fig7_scaling", opts);

    // Step 1: scan single-cluster designs with the single-threaded apps.
    std::printf("Step 1: single-cluster designs, single-threaded "
                "average AIPC\n");
    std::printf("%8s %8s %8s  %s\n", "area", "aipc", "aipc/mm2",
                "design");
    bench::rule(68);
    std::vector<DesignPoint> des1;
    for (const DesignPoint &d : all) {
        if (d.clusters != 1)
            continue;
        if (opts.quick && d.l1KB == 16)
            continue;
        des1.push_back(d);
    }
    // Both suites over every candidate as one batch each; Figure 7
    // weights the suites by kernel count (6 Spec-like, 3 Media-like).
    const std::vector<double> spec1 =
        bench::suiteAipcAll(Suite::kSpec, des1, opts);
    const std::vector<double> media1 =
        bench::suiteAipcAll(Suite::kMedia, des1, opts);
    DesignPoint a{};
    DesignPoint c{};
    double a_perf = -1.0;
    double c_eff = -1.0;
    double a_area = 0.0;
    for (std::size_t i = 0; i < des1.size(); ++i) {
        const DesignPoint &d = des1[i];
        const double aipc = (6 * spec1[i] + 3 * media1[i]) / 9.0;
        const double area = AreaModel::totalArea(d);
        std::printf("%8.1f %8.2f %8.4f  %s\n", area, aipc, aipc / area,
                    d.describe().c_str());
        Json row = Json::object();
        row["design"] = d.describe();
        row["area_mm2"] = area;
        row["st_aipc"] = aipc;
        report.addRow("single_cluster", std::move(row));
        if (aipc > a_perf + 1e-9 ||
            (aipc > a_perf - 1e-9 && area < a_area)) {
            a_perf = aipc;
            a_area = area;
            a = d;
        }
        if (aipc / area > c_eff) {
            c_eff = aipc / area;
            c = d;
        }
    }
    std::printf("\n  a (best 1-cluster perf):       %s  (%.1f mm2)\n",
                a.describe().c_str(), AreaModel::totalArea(a));
    std::printf("  c (best 1-cluster perf/area):  %s  (%.1f mm2)\n",
                c.describe().c_str(), AreaModel::totalArea(c));

    // Step 2: Splash on the 4-cluster candidates to find the front and
    // point e.
    std::printf("\nStep 2: Splash2 on 4-cluster candidates\n");
    std::vector<DesignPoint> des4;
    for (const DesignPoint &d : all) {
        if (d.clusters != 4)
            continue;
        if (opts.quick && (d.l1KB == 16 || d.l2MB > 2))
            continue;
        des4.push_back(d);
    }
    const std::vector<double> splash4 =
        bench::suiteAipcAll(Suite::kSplash, des4, opts);
    std::vector<ParetoPoint> pts4;
    for (std::size_t i = 0; i < des4.size(); ++i) {
        pts4.push_back(
            ParetoPoint{AreaModel::totalArea(des4[i]), splash4[i], i});
        std::fprintf(stderr, "  %s -> %.2f\n",
                     des4[i].describe().c_str(), splash4[i]);
    }
    const auto front4 = paretoFront(pts4);
    if (front4.empty()) {
        std::printf("no 4-cluster candidates survived; aborting\n");
        return 1;
    }
    const DesignPoint e = des4[pts4[front4.front()].tag];
    std::printf("  e (smallest Pareto-optimal 4-cluster): %s "
                "(%.1f mm2)\n", e.describe().c_str(),
                AreaModel::totalArea(e));

    // Step 3: the scaled designs on Splash.
    std::printf("\nStep 3: scaled designs on Splash2\n");
    std::printf("%-8s %-36s %8s %8s %9s\n", "point", "design", "area",
                "AIPC", "AIPC/mm2");
    bench::rule(76);
    struct Case
    {
        const char *label;
        DesignPoint d;
    };
    std::vector<Case> cases = {
        {"a", a},
        {"c", c},
        {"b = 4xa", replicate(a, 4)},
        {"d = 4xc", replicate(c, 4)},
        {"e", e},
        {"4xe", replicate(e, 4)},
        {"16xc", replicate(c, 16)},
    };
    std::vector<DesignPoint> case_designs;
    for (const Case &cs : cases)
        case_designs.push_back(cs.d);
    const std::vector<double> case_aipc =
        bench::suiteAipcAll(Suite::kSplash, case_designs, opts);
    double b_eff = 0.0;
    double d_eff = 0.0;
    double e4_eff = 0.0;
    double c16_eff = 0.0;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const Case &cs = cases[i];
        const double aipc = case_aipc[i];
        const double area = AreaModel::totalArea(cs.d);
        std::printf("%-8s %-36s %8.1f %8.2f %9.4f\n", cs.label,
                    cs.d.describe().c_str(), area, aipc, aipc / area);
        Json row = Json::object();
        row["point"] = std::string(cs.label);
        row["design"] = cs.d.describe();
        row["area_mm2"] = area;
        row["aipc"] = aipc;
        row["aipc_per_mm2"] = aipc / area;
        report.addRow("scaled", std::move(row));
        if (std::string(cs.label) == "b = 4xa")
            b_eff = aipc / area;
        if (std::string(cs.label) == "d = 4xc")
            d_eff = aipc / area;
        if (std::string(cs.label) == "4xe")
            e4_eff = aipc / area;
        if (std::string(cs.label) == "16xc")
            c16_eff = aipc / area;
    }

    std::printf("\nLessons (paper's wording):\n");
    std::printf("  replicating the best-performing tile (b) vs the most "
                "efficient tile (d):\n    efficiency %.4f vs %.4f "
                "AIPC/mm2 -> naive scaling wastes %.0f%% of the area "
                "budget\n    (paper: b is 370mm2 for 8.2 AIPC; d is "
                "207mm2 for 8.17 AIPC — ~2x)\n", b_eff, d_eff,
                100.0 * (1.0 - b_eff / std::max(d_eff, 1e-9)));
    std::printf("  scaling c 16x vs scaling e 4x: efficiency %.4f vs "
                "%.4f AIPC/mm2\n    (paper: the optimal tile changes "
                "with machine size)\n", c16_eff, e4_eff);
    report.finish();
    return 0;
}
