/**
 * @file
 * Reproduces Table 3: the area model itself — per-component constants,
 * the linearity checks the paper performed against synthesized 8..128
 * entry arrays, and the design-space counts of §4.2.
 */

#include <cstdio>

#include "area/area_model.h"
#include "area/design_space.h"
#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("table3_area_model", opts);

    std::printf("Table 3: WaveScalar processor area model\n\n");
    std::printf("%-28s %12s %14s\n", "component", "paper", "this repo");
    bench::rule(58);
    std::printf("%-28s %12s %14.6f\n", "matching table (mm2/entry)",
                "0.004", AreaModel::kMatchPerEntry);
    std::printf("%-28s %12s %14.6f\n", "instruction store (mm2/inst)",
                "0.002", AreaModel::kInstPerEntry);
    std::printf("%-28s %12s %14.4f\n", "other PE components", "0.05",
                AreaModel::kPeOther);
    std::printf("%-28s %12s %14.4f\n", "pseudo-PE", "0.1236",
                AreaModel::kPseudoPe);
    std::printf("%-28s %12s %14.4f\n", "store buffer", "2.464",
                AreaModel::kStoreBuffer);
    std::printf("%-28s %12s %14.4f\n", "L1 cache (mm2/KB)", "0.363",
                AreaModel::kL1PerKB);
    std::printf("%-28s %12s %14.4f\n", "network switch", "0.349",
                AreaModel::kNetSwitch);
    std::printf("%-28s %12s %14.4f\n", "L2 (mm2/MB)", "11.78",
                AreaModel::kL2PerMB);
    std::printf("%-28s %12s %14.4f\n", "utilization factor", "0.94",
                AreaModel::kUtilization);
    std::printf("\n(matching/instruction-store/store-buffer constants "
                "are calibrated to Table 2's\nunrounded RTL figures, "
                "which reproduce Table 5's published areas; see "
                "DESIGN.md)\n\n");

    // Linearity verification, mirroring the paper's 8..128-entry
    // synthesis sweep.
    std::printf("Linearity check: PE area vs structure size\n");
    std::printf("%8s %8s %14s %14s\n", "M", "V", "PE mm2",
                "delta/doubling");
    bench::rule(48);
    double prev = 0.0;
    for (unsigned size = 8; size <= 256; size *= 2) {
        const double a = AreaModel::peArea(size, size);
        std::printf("%8u %8u %14.4f %14.4f\n", size, size, a,
                    prev == 0 ? 0.0 : a - prev);
        prev = a;
    }

    std::printf("\nDesign-space pipeline (Section 4.2)\n");
    bench::rule(48);
    const auto raw = enumerateRawDesigns();
    const auto structural = pruneStructural(raw, DesignSpaceRules{});
    const auto final_set = enumerateCandidates();
    std::printf("%-44s %6zu\n", "raw configurations (paper: >21,000)",
                raw.size());
    std::printf("%-44s %6zu\n", "after structural rules (paper: 344)",
                structural.size());
    std::printf("%-44s %6zu\n",
                "ratio=1 + >=4K capacity (paper: 41)", final_set.size());
    std::printf("\nArea range of the final set: %.1f .. %.1f mm2 "
                "(paper: 39 .. 399)\n",
                AreaModel::totalArea(final_set.front()),
                [&] {
                    double mx = 0;
                    for (const auto &d : final_set)
                        mx = std::max(mx, AreaModel::totalArea(d));
                    return mx;
                }());
    report.meta()["raw_designs"] =
        static_cast<std::uint64_t>(raw.size());
    report.meta()["structural_designs"] =
        static_cast<std::uint64_t>(structural.size());
    report.meta()["final_designs"] =
        static_cast<std::uint64_t>(final_set.size());
    report.finish();
    return 0;
}
