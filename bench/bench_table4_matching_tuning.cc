/**
 * @file
 * Reproduces Table 4: per-application matching-table tuning — k_opt
 * (k-loop bound at which performance saturates on an infinite matching
 * table), u_opt (largest harmless over-subscription at V=256), and the
 * resulting virtualization ratio k_opt/u_opt.
 *
 * The paper's published values are printed alongside for comparison;
 * absolute agreement is not expected (our kernels are structural
 * stand-ins), but the *ordering* should hold: serial kernels
 * (rawdaudio) tolerate large u / small ratios, while kernels with much
 * wave-level parallelism (water) need ratio ~1.
 */

#include <cstdio>
#include <map>
#include <string>

#include "area/tuning.h"
#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("table4_matching_tuning", opts);

    // Published Table-4 values: name → (u_opt, k_opt, ratio).
    const std::map<std::string, std::tuple<int, int, double>> paper = {
        {"gzip", {16, 3, 0.19}},       {"mcf", {8, 2, 0.25}},
        {"twolf", {16, 3, 0.19}},      {"ammp", {8, 3, 0.38}},
        {"art", {8, 4, 0.5}},          {"equake", {8, 4, 0.5}},
        {"djpeg", {8, 3, 0.38}},       {"mpeg2encode", {16, 4, 0.25}},
        {"rawdaudio", {32, 4, 0.13}},  {"fft", {16, 3, 0.19}},
        {"lu", {8, 4, 0.5}},           {"ocean", {8, 4, 0.5}},
        {"radix", {8, 3, 0.38}},       {"raytrace", {16, 4, 0.25}},
        {"water", {4, 4, 1.0}},
    };

    std::printf("Table 4: matching-table tuning per application\n\n");
    std::printf("%-14s %6s %6s %7s   %6s %6s %7s\n", "application",
                "u_opt", "k_opt", "ratio", "u(pap)", "k(pap)", "r(pap)");
    bench::rule(62);

    TuningOptions topts;
    topts.maxCycles = opts.maxCycles;

    double max_ratio = 0.0;
    for (const Kernel &k : kernelRegistry()) {
        if (opts.quick && k.suite == Suite::kSpec &&
            k.name != "gzip" && k.name != "mcf") {
            continue;
        }
        KernelParams params;
        params.threads = k.multithreaded ? 4 : 1;
        params.scale = 1;
        DataflowGraph graph = k.build(params);

        ProcessorConfig base = ProcessorConfig::baseline();
        base.memory.l2Bytes = 1 << 20;

        // Shared engine: the per-k/per-u candidates run concurrently
        // and memoize under this kernel's fingerprint.
        topts.graphFingerprint = kernelFingerprint(k, params);
        TuningResult r =
            tuneMatchingTable(graph, base, topts, &bench::engine(opts));
        max_ratio = std::max(max_ratio, r.virtRatio);

        const auto &[pu, pk, pr] = paper.at(k.name);
        std::printf("%-14s %6u %6u %7.2f   %6d %6d %7.2f\n",
                    k.name.c_str(), r.uopt, r.kopt, r.virtRatio, pu, pk,
                    pr);
        Json row = Json::object();
        row["application"] = k.name;
        row["u_opt"] = r.uopt;
        row["k_opt"] = r.kopt;
        row["ratio"] = r.virtRatio;
        row["u_paper"] = pu;
        row["k_paper"] = pk;
        row["ratio_paper"] = pr;
        report.addRow("tuning", std::move(row));
    }
    bench::rule(62);
    std::printf("\nMaximum (suite) virtualization ratio: %.2f  — the "
                "design space fixes M/V at\nthe conservative power-of-2 "
                "ceiling of this value (paper: 1).\n", max_ratio);
    report.meta()["max_virt_ratio"] = max_ratio;
    report.finish();
    return 0;
}
