#include "bench/bench_util.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/log.h"

namespace ws {
namespace bench {

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strncmp(arg, "--max-cycles=", 13) == 0) {
            opts.maxCycles = std::strtoull(arg + 13, nullptr, 10);
        } else if (std::strncmp(arg, "--scale=", 8) == 0) {
            opts.scale = static_cast<std::uint32_t>(
                std::strtoul(arg + 8, nullptr, 10));
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            opts.seed = std::strtoull(arg + 7, nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--max-cycles=N] "
                         "[--scale=N] [--seed=N]\n", argv[0]);
            std::exit(2);
        }
    }
    setQuiet(true);
    return opts;
}

RunResult
runKernelCfg(const Kernel &kernel, const ProcessorConfig &cfg,
             int threads, const BenchOptions &opts)
{
    KernelParams params;
    params.threads = static_cast<std::uint16_t>(threads);
    params.scale = opts.quick ? 1 : opts.scale;
    params.seed = opts.seed;
    DataflowGraph graph = kernel.build(params);

    SimOptions sim_opts;
    sim_opts.maxCycles = opts.quick ? opts.maxCycles / 2 : opts.maxCycles;

    SimResult sim = runSimulation(graph, cfg, sim_opts);
    RunResult r;
    r.completed = sim.completed;
    r.aipc = sim.aipc;
    r.cycles = sim.cycles;
    r.threads = threads;
    r.report = sim.report;
    return r;
}

RunResult
runKernel(const Kernel &kernel, const DesignPoint &design, int threads,
          const BenchOptions &opts)
{
    return runKernelCfg(kernel, toProcessorConfig(design), threads, opts);
}

RunResult
runKernelBestThreads(const Kernel &kernel, const DesignPoint &design,
                     const BenchOptions &opts)
{
    if (!kernel.multithreaded)
        return runKernel(kernel, design, 1, opts);

    // Per-thread footprint: measure once from a 2-thread build.
    KernelParams probe;
    probe.threads = 2;
    const std::size_t per_thread = kernel.build(probe).size() / 2;
    const std::uint64_t capacity = design.instCapacity();

    // Candidate thread counts around the capacity-fit point; the paper
    // sweeps and keeps the best.
    std::set<int> candidates;
    std::uint64_t fit = std::max<std::uint64_t>(
        1, capacity / std::max<std::size_t>(1, per_thread));
    int fit_pow2 = 1;
    while (fit_pow2 * 2 <= static_cast<int>(std::min<std::uint64_t>(
                               fit, 64))) {
        fit_pow2 *= 2;
    }
    candidates.insert(fit_pow2);
    if (fit_pow2 > 2)
        candidates.insert(fit_pow2 / 2);
    if (!opts.quick && fit_pow2 < 64)
        candidates.insert(fit_pow2 * 2);  // Mild oversubscription.

    RunResult best;
    for (int t : candidates) {
        RunResult r = runKernel(kernel, design, t, opts);
        if (r.aipc > best.aipc)
            best = r;
    }
    return best;
}

double
suiteAipc(Suite suite, const DesignPoint &design, const BenchOptions &opts)
{
    double sum = 0.0;
    int n = 0;
    for (const Kernel &k : kernelRegistry()) {
        if (k.suite != suite)
            continue;
        sum += runKernelBestThreads(k, design, opts).aipc;
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

std::vector<DesignPoint>
benchDesigns(const BenchOptions &opts)
{
    std::vector<DesignPoint> designs = enumerateCandidates();
    if (!opts.quick)
        return designs;
    // Quick mode: keep every third design plus the range extremes.
    std::vector<DesignPoint> thin;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        if (i % 3 == 0 || i + 1 == designs.size())
            thin.push_back(designs[i]);
    }
    return thin;
}

void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace bench
} // namespace ws
