#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "driver/static_prune.h"

namespace ws {
namespace bench {

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strncmp(arg, "--max-cycles=", 13) == 0) {
            opts.maxCycles = std::strtoull(arg + 13, nullptr, 10);
        } else if (std::strncmp(arg, "--scale=", 8) == 0) {
            opts.scale = static_cast<std::uint32_t>(
                std::strtoul(arg + 8, nullptr, 10));
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            opts.seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(arg + 7, nullptr, 10));
            if (opts.jobs == 0)
                opts.jobs = 1;
        } else if (std::strncmp(arg, "--out-dir=", 10) == 0) {
            opts.outDir = arg + 10;
        } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
            opts.cacheDir = arg + 12;
        } else if (std::strcmp(arg, "--no-json") == 0) {
            opts.json = false;
        } else if (std::strcmp(arg, "--prune-static") == 0) {
            opts.pruneStatic = true;
        } else if (std::strcmp(arg, "--always-tick") == 0) {
            opts.alwaysTick = true;
        } else if (std::strcmp(arg, "--reference-core") == 0) {
            opts.referenceCore = true;
        } else if (std::strcmp(arg, "--check") == 0) {
            opts.check = CheckLevel::kFull;
        } else if (std::strncmp(arg, "--check=", 8) == 0) {
            if (!parseCheckLevel(arg + 8, &opts.check)) {
                std::fprintf(stderr,
                             "%s: bad --check level '%s' (want off, "
                             "cheap, or full)\n", argv[0], arg + 8);
                std::exit(2);
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--max-cycles=N] "
                         "[--scale=N] [--seed=N] [--jobs=N] "
                         "[--out-dir=PATH] [--cache-dir=PATH] "
                         "[--no-json] "
                         "[--prune-static] [--always-tick] "
                         "[--reference-core] "
                         "[--check[=off|cheap|full]]\n", argv[0]);
            std::exit(2);
        }
    }
    setQuiet(true);
    return opts;
}

SweepEngine &
engine(const BenchOptions &opts)
{
    static SweepEngine *instance = [&] {
        SweepEngine::Options eopts;
        eopts.jobs = opts.jobs;
        eopts.label = "sweep";
        eopts.cacheDir = opts.cacheDir;
        return new SweepEngine(eopts);
    }();
    return *instance;
}

namespace {

/**
 * Kernel graphs shared across the batch: a sweep over N designs builds
 * each (kernel, threads, scale, seed) program once. Guarded because
 * nothing stops a future harness from building jobs on pool threads.
 */
std::shared_ptr<const DataflowGraph>
cachedGraph(const Kernel &kernel, const KernelParams &params)
{
    using GraphKey = std::tuple<std::string, std::uint16_t,
                                std::uint32_t, std::uint64_t>;
    static std::mutex mutex;
    static std::map<GraphKey, std::shared_ptr<const DataflowGraph>> cache;

    const GraphKey key{kernel.name, params.threads, params.scale,
                       params.seed};
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto graph =
        std::make_shared<const DataflowGraph>(kernel.build(params));
    cache.emplace(key, graph);
    return graph;
}

SimJob
makeJob(const Kernel &kernel, const ProcessorConfig &cfg, int threads,
        const BenchOptions &opts)
{
    KernelParams params;
    params.threads = static_cast<std::uint16_t>(threads);
    params.scale = opts.quick ? 1 : opts.scale;
    params.seed = opts.seed;

    SimJob job;
    job.graph = cachedGraph(kernel, params);
    job.cfg = cfg;
    // The clocking mode and check level participate in the config
    // fingerprint, so differently-instrumented runs never alias in the
    // SimCache.
    job.cfg.alwaysTick = opts.alwaysTick;
    job.cfg.referenceCore = opts.referenceCore;
    job.cfg.checkLevel = opts.check;
    job.maxCycles = opts.quick ? opts.maxCycles / 2 : opts.maxCycles;
    job.graphFp = kernelFingerprint(kernel, params);
    return job;
}

/** Process-wide activity accumulator (see activityTotals()). */
std::mutex g_activity_mutex;
ActivityTotals g_activity;

/** Process-wide wscheck violation accumulator (--check runs). */
std::mutex g_check_mutex;
Counter g_check_violations = 0;

RunResult
toRunResult(const SimResult &sim, int threads)
{
    RunResult r;
    r.completed = sim.completed;
    r.aipc = sim.aipc;
    r.cycles = sim.cycles;
    r.threads = threads;
    r.pruned = sim.pruned;
    r.report = sim.report;
    // Pruned points carry an empty report; everything else exports the
    // scheduler's activity counters.
    if (r.report.has("activity.active_cycles")) {
        std::lock_guard<std::mutex> lock(g_activity_mutex);
        g_activity.activeCycles += r.report.get("activity.active_cycles");
        g_activity.skippedCycles +=
            r.report.get("activity.skipped_cycles");
    }
    if (sim.checkViolations != 0) {
        // Never silent: the rendered findings go to stderr immediately,
        // and the total lands in the JSON twin at finish().
        std::lock_guard<std::mutex> lock(g_check_mutex);
        g_check_violations += sim.checkViolations;
        std::fputs(sim.checkLog.c_str(), stderr);
    }
    return r;
}

/** StaticProfiles shared across the batch, keyed like SimCache. */
ProfileCache &
profileCache()
{
    static ProfileCache *instance = new ProfileCache;
    return *instance;
}

/** Process-wide log of points --prune-static skipped (never silent). */
std::mutex g_pruned_mutex;
std::vector<std::string> g_pruned_points;

void
logPruned(const CfgRun &run, double bound, BoundTerm term)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << run.kernel->name << " t" << run.threads << " on "
        << run.cfg.clusters << "x" << run.cfg.domainsPerCluster << "x"
        << run.cfg.pesPerDomain << " (bound " << bound << ", "
        << boundTermName(term) << ")";
    std::lock_guard<std::mutex> lock(g_pruned_mutex);
    g_pruned_points.push_back(out.str());
}

/**
 * Bound-vs-measured tightness log: one row per simulation point that
 * had a static bound computed (every runAll/runGroups point). The rows
 * land in each harness twin's `bound` object — the free training
 * signal a future learned pre-ranker gets from every bench run, and
 * the evidence base for EXPERIMENTS.md's tightness table.
 */
struct BoundRow
{
    std::string kernel;
    int threads = 1;
    unsigned clusters = 0;
    unsigned domains = 0;
    unsigned pes = 0;
    double bound = 0.0;
    BoundTerm term = BoundTerm::kNone;
    double aipc = 0.0;
    bool pruned = false;
};

std::mutex g_bound_mutex;
std::vector<BoundRow> g_bound_rows;

void
recordBoundRow(const CfgRun &run, double bound, BoundTerm term,
               const RunResult &result)
{
    BoundRow row;
    row.kernel = run.kernel->name;
    row.threads = run.threads;
    row.clusters = run.cfg.clusters;
    row.domains = run.cfg.domainsPerCluster;
    row.pes = run.cfg.pesPerDomain;
    row.bound = bound;
    row.term = term;
    row.aipc = result.aipc;
    row.pruned = result.pruned;
    std::lock_guard<std::mutex> lock(g_bound_mutex);
    g_bound_rows.push_back(std::move(row));
}

/** Take (and clear) the accumulated rows: each report publishes the
 *  rows recorded since the previous finish(), so a process emitting
 *  several BenchReports never duplicates earlier sweeps' rows or skews
 *  later tightness summaries. */
std::vector<BoundRow>
drainBoundRows()
{
    std::lock_guard<std::mutex> lock(g_bound_mutex);
    std::vector<BoundRow> rows;
    rows.swap(g_bound_rows);
    return rows;
}

/**
 * The paper's thread-count candidates for one kernel on one design:
 * the power-of-two capacity-fit point, half of it, and (full runs) one
 * step of oversubscription. Derived without simulating — the footprint
 * probe builds a 2-thread graph, which the graph cache shares.
 */
std::vector<int>
threadCandidates(const Kernel &kernel, const DesignPoint &design,
                 const BenchOptions &opts)
{
    if (!kernel.multithreaded)
        return {1};

    KernelParams probe;
    probe.threads = 2;
    const std::size_t per_thread =
        cachedGraph(kernel, probe)->size() / 2;
    const std::uint64_t capacity = design.instCapacity();

    std::set<int> candidates;
    std::uint64_t fit = std::max<std::uint64_t>(
        1, capacity / std::max<std::size_t>(1, per_thread));
    int fit_pow2 = 1;
    while (fit_pow2 * 2 <= static_cast<int>(std::min<std::uint64_t>(
                               fit, 64))) {
        fit_pow2 *= 2;
    }
    candidates.insert(fit_pow2);
    if (fit_pow2 > 2)
        candidates.insert(fit_pow2 / 2);
    if (!opts.quick && fit_pow2 < 64)
        candidates.insert(fit_pow2 * 2);  // Mild oversubscription.
    if (!opts.quick) {
        // Anchor the low end of the scaling curve: 1- and 2-thread
        // points are cheap, rarely win, and are exactly what
        // --prune-static exists to skip once a bigger count has set
        // the group's bar.
        candidates.insert(1);
        candidates.insert(2);
    }
    return {candidates.begin(), candidates.end()};
}

/** Best-AIPC reduction in candidate order (ascending thread count, ties
 *  to the smaller count — the paper's sweep-and-keep-best loop). */
RunResult
pickBest(const std::vector<RunResult> &runs)
{
    RunResult best;
    for (const RunResult &r : runs) {
        if (r.aipc > best.aipc)
            best = r;
    }
    return best;
}

} // namespace

std::vector<RunResult>
runAll(const std::vector<CfgRun> &runs, const BenchOptions &opts)
{
    // Every point gets its placement-resolved bound (memoized analysis,
    // cheap next to a simulation) even when pruning is off: the bound
    // travels into the twin's tightness rows, never into run().
    std::vector<SimJob> jobs;
    jobs.reserve(runs.size());
    for (const CfgRun &r : runs) {
        SimJob job = makeJob(*r.kernel, r.cfg, r.threads, opts);
        const BoundBreakdown b =
            profileCache().boundFor(*job.graph, job.graphFp, job.cfg);
        job.staticBound = b.bound;
        job.boundTerm = b.binding;
        jobs.push_back(std::move(job));
    }
    const std::vector<SimResult> sims = engine(opts).run(jobs);
    std::vector<RunResult> results;
    results.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        results.push_back(toRunResult(sims[i], runs[i].threads));
        recordBoundRow(runs[i], jobs[i].staticBound, jobs[i].boundTerm,
                       results[i]);
    }
    return results;
}

std::vector<RunResult>
runGroups(const std::vector<CfgRun> &runs,
          const std::vector<std::size_t> &groupEnd,
          const BenchOptions &opts)
{
    if (!opts.pruneStatic)
        return runAll(runs, opts);  // Identical results, same bounds.

    std::vector<SimJob> jobs;
    jobs.reserve(runs.size());
    for (const CfgRun &r : runs) {
        SimJob job = makeJob(*r.kernel, r.cfg, r.threads, opts);
        const BoundBreakdown b =
            profileCache().boundFor(*job.graph, job.graphFp, job.cfg);
        job.staticBound = b.bound;
        job.boundTerm = b.binding;
        jobs.push_back(std::move(job));
    }

    SweepEngine::PruneOptions prune;
    prune.enabled = true;
    const std::vector<SimResult> sims =
        engine(opts).runGrouped(jobs, groupEnd, prune);

    std::vector<RunResult> results;
    results.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        results.push_back(toRunResult(sims[i], runs[i].threads));
        recordBoundRow(runs[i], jobs[i].staticBound, jobs[i].boundTerm,
                       results[i]);
        if (sims[i].pruned)
            logPruned(runs[i], jobs[i].staticBound, jobs[i].boundTerm);
    }
    return results;
}

std::vector<std::string>
prunedPoints()
{
    std::lock_guard<std::mutex> lock(g_pruned_mutex);
    return g_pruned_points;
}

ActivityTotals
activityTotals()
{
    std::lock_guard<std::mutex> lock(g_activity_mutex);
    return g_activity;
}

Counter
checkViolationTotal()
{
    std::lock_guard<std::mutex> lock(g_check_mutex);
    return g_check_violations;
}

RunResult
runKernelCfg(const Kernel &kernel, const ProcessorConfig &cfg,
             int threads, const BenchOptions &opts)
{
    // Through runAll so single points also land in the tightness log.
    return runAll({CfgRun{&kernel, cfg, threads}}, opts).front();
}

RunResult
runKernel(const Kernel &kernel, const DesignPoint &design, int threads,
          const BenchOptions &opts)
{
    return runKernelCfg(kernel, toProcessorConfig(design), threads, opts);
}

RunResult
runKernelBestThreads(const Kernel &kernel, const DesignPoint &design,
                     const BenchOptions &opts)
{
    const ProcessorConfig cfg = toProcessorConfig(design);
    std::vector<CfgRun> runs;
    for (int t : threadCandidates(kernel, design, opts))
        runs.push_back(CfgRun{&kernel, cfg, t});
    return pickBest(runGroups(runs, {runs.size()}, opts));
}

std::vector<double>
suiteAipcAll(Suite suite, const std::vector<DesignPoint> &designs,
             const BenchOptions &opts)
{
    // Flatten designs x suite kernels x thread candidates into one
    // batch so the engine can saturate every core, then reduce in
    // submission order (deterministic across --jobs settings).
    std::vector<const Kernel *> kernels;
    for (const Kernel &k : kernelRegistry()) {
        if (k.suite == suite)
            kernels.push_back(&k);
    }

    std::vector<CfgRun> runs;
    std::vector<std::size_t> group_end;  // Candidate-group boundaries.
    for (const DesignPoint &design : designs) {
        const ProcessorConfig cfg = toProcessorConfig(design);
        for (const Kernel *k : kernels) {
            for (int t : threadCandidates(*k, design, opts))
                runs.push_back(CfgRun{k, cfg, t});
            group_end.push_back(runs.size());
        }
    }

    const std::vector<RunResult> results =
        runGroups(runs, group_end, opts);

    std::vector<double> aipcs;
    aipcs.reserve(designs.size());
    std::size_t group = 0;
    std::size_t begin = 0;
    for (std::size_t d = 0; d < designs.size(); ++d) {
        double sum = 0.0;
        for (std::size_t k = 0; k < kernels.size(); ++k, ++group) {
            const std::size_t end = group_end[group];
            sum += pickBest({results.begin() +
                                 static_cast<std::ptrdiff_t>(begin),
                             results.begin() +
                                 static_cast<std::ptrdiff_t>(end)})
                       .aipc;
            begin = end;
        }
        aipcs.push_back(kernels.empty()
                            ? 0.0
                            : sum / static_cast<double>(kernels.size()));
    }
    return aipcs;
}

double
suiteAipc(Suite suite, const DesignPoint &design, const BenchOptions &opts)
{
    return suiteAipcAll(suite, {design}, opts).front();
}

std::vector<DesignPoint>
benchDesigns(const BenchOptions &opts)
{
    std::vector<DesignPoint> designs = enumerateCandidates();
    if (!opts.quick)
        return designs;
    // Quick mode: keep every third design plus the range extremes.
    std::vector<DesignPoint> thin;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        if (i % 3 == 0 || i + 1 == designs.size())
            thin.push_back(designs[i]);
    }
    return thin;
}

namespace {

/**
 * Every number in an emitted JSON twin must be finite: a NaN or Inf
 * means some rate was computed over a zero-length window (or similar)
 * and would silently serialize as an unparseable token. Failing loudly
 * at the writer pins the bug to the harness that produced it.
 */
void
assertFinite(const Json &node, const std::string &path)
{
    switch (node.type()) {
      case Json::Type::kNumber:
        if (!std::isfinite(node.asNumber())) {
            fatal("BenchReport: non-finite number at %s in the JSON "
                  "twin (%f)", path.c_str(), node.asNumber());
        }
        return;
      case Json::Type::kArray: {
        std::size_t i = 0;
        for (const Json &item : node.items())
            assertFinite(item, path + "[" + std::to_string(i++) + "]");
        return;
      }
      case Json::Type::kObject:
        for (const auto &[key, value] : node.fields())
            assertFinite(value, path.empty() ? key : path + "." + key);
        return;
      default:
        return;
    }
}

} // namespace

void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

BenchReport::BenchReport(std::string name, const BenchOptions &opts)
    : name_(std::move(name)), opts_(opts),
      start_(std::chrono::steady_clock::now())
{
    root_ = Json::object();
    root_["bench"] = name_;
    Json &o = root_["options"];
    o["quick"] = opts_.quick;
    o["max_cycles"] = static_cast<std::uint64_t>(opts_.maxCycles);
    o["scale"] = opts_.scale;
    o["seed"] = opts_.seed;
    o["jobs"] = opts_.jobs == 0 ? ThreadPool::hardwareJobs()
                                : opts_.jobs;
    o["prune_static"] = opts_.pruneStatic;
    o["always_tick"] = opts_.alwaysTick;
    o["reference_core"] = opts_.referenceCore;
    o["cache_dir"] = opts_.cacheDir;
}

void
BenchReport::addRow(const std::string &table, Json row)
{
    root_["tables"][table].push(std::move(row));
}

void
BenchReport::finish()
{
    if (finished_ || !opts_.json)
        return;
    finished_ = true;

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();

    // Engine construction is cheap (the pool is lazy), so pure
    // area-model harnesses just report zero simulations.
    Json sweep = Json::object();
    sweep["wall_ms"] = wall_ms;
    SweepEngine &eng = engine(opts_);
    sweep["jobs"] = eng.jobs();
    sweep["simulations"] =
        static_cast<std::uint64_t>(eng.stats().simulated);
    sweep["cache_hits"] =
        static_cast<std::uint64_t>(eng.stats().cacheHits);
    {
        // Tiered hit attribution: where did this process's replays
        // actually come from? cache_hits above counts both tiers;
        // disk hits are the cross-process wins --cache-dir buys.
        const SimCacheStats cs = eng.cache().stats();
        sweep["cache_hits_memory"] =
            static_cast<std::uint64_t>(cs.memoryHits);
        sweep["cache_hits_disk"] =
            static_cast<std::uint64_t>(cs.diskHits);
        sweep["cache_disk_writes"] =
            static_cast<std::uint64_t>(cs.diskWrites);
        sweep["cache_disk_rejected"] =
            static_cast<std::uint64_t>(cs.diskRejected);
        sweep["cache_disk_write_errors"] =
            static_cast<std::uint64_t>(cs.diskWriteErrors);
    }
    sweep["sim_wall_ms"] = eng.stats().wallMs;
    sweep["pruned"] = static_cast<std::uint64_t>(eng.stats().pruned);
    sweep["prune_errors"] =
        static_cast<std::uint64_t>(eng.stats().pruneErrors);
    {
        // Prune attribution: which bound constraint each skipped
        // candidate was provably limited by.
        Json by_term = Json::object();
        for (std::size_t t = 0; t < kBoundTermCount; ++t) {
            const Counter n = eng.stats().prunedByTerm[t];
            if (n != 0) {
                by_term[boundTermName(static_cast<BoundTerm>(t))] =
                    static_cast<std::uint64_t>(n);
            }
        }
        sweep["pruned_by_term"] = std::move(by_term);
    }
    root_["sweep"] = sweep;
    // Bound-vs-measured tightness: one row per point this process
    // bounded, plus summary statistics over the simulated (non-pruned)
    // rows. tightness = measured/bound in (0, 1]; higher = tighter.
    {
        Json bound = Json::object();
        Json rows = Json::array();
        double sum_tight = 0.0;
        double min_tight = 0.0;
        double max_tight = 0.0;
        std::uint64_t measured = 0;
        std::uint64_t pruned_rows = 0;
        for (const BoundRow &r : drainBoundRows()) {
            Json row = Json::object();
            row["kernel"] = r.kernel;
            row["threads"] = static_cast<std::uint64_t>(r.threads);
            row["clusters"] = static_cast<std::uint64_t>(r.clusters);
            row["domains"] = static_cast<std::uint64_t>(r.domains);
            row["pes"] = static_cast<std::uint64_t>(r.pes);
            row["bound"] = r.bound;
            row["binding"] = std::string(boundTermName(r.term));
            row["aipc"] = r.aipc;
            row["pruned"] = r.pruned;
            rows.push(std::move(row));
            if (r.pruned) {
                ++pruned_rows;
            } else if (r.bound > 0.0) {
                const double tight = r.aipc / r.bound;
                if (measured == 0 || tight < min_tight)
                    min_tight = tight;
                if (measured == 0 || tight > max_tight)
                    max_tight = tight;
                sum_tight += tight;
                ++measured;
            }
        }
        bound["rows"] = std::move(rows);
        Json summary = Json::object();
        summary["points"] = measured + pruned_rows;
        summary["measured"] = measured;
        summary["pruned"] = pruned_rows;
        summary["mean_tightness"] =
            measured == 0 ? 0.0
                          : sum_tight / static_cast<double>(measured);
        summary["min_tightness"] = min_tight;
        summary["max_tightness"] = max_tight;
        bound["summary"] = std::move(summary);
        root_["bound"] = std::move(bound);
    }
    // Component activity across every run this process collected: how
    // much of the machine the activity-gated clock actually skipped
    // (identical numbers under --always-tick, which only refuses to
    // exploit them).
    const ActivityTotals activity = activityTotals();
    Json act = Json::object();
    act["always_tick"] = opts_.alwaysTick;
    act["reference_core"] = opts_.referenceCore;
    act["active_cycles"] = activity.activeCycles;
    act["skipped_cycles"] = activity.skippedCycles;
    act["skip_rate"] = activity.skipRate();
    root_["activity"] = act;
    // --prune-static must never skip silently: list every point.
    Json skipped = Json::array();
    for (const std::string &p : prunedPoints())
        skipped.push(Json(p));
    root_["pruned_points"] = std::move(skipped);
    // wscheck: level this process ran at and total violations found.
    {
        Json check = Json::object();
        check["level"] = checkLevelName(opts_.check);
        check["violations"] =
            static_cast<std::uint64_t>(checkViolationTotal());
        root_["check"] = std::move(check);
    }

    assertFinite(root_, "");

    std::error_code ec;
    std::filesystem::create_directories(opts_.outDir, ec);
    if (ec) {
        warn("BenchReport: cannot create %s: %s", opts_.outDir.c_str(),
             ec.message().c_str());
        return;
    }

    const std::string path = opts_.outDir + "/" + name_ + ".json";
    {
        std::ofstream out(path);
        if (!out) {
            warn("BenchReport: cannot write %s", path.c_str());
            return;
        }
        out << root_.dump(2) << '\n';
    }

    // Merge this harness's sweep stats into the shared trajectory file.
    const std::string sweep_path = opts_.outDir + "/BENCH_sweep.json";
    Json merged = Json::object();
    {
        std::ifstream in(sweep_path);
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            bool ok = false;
            Json prior = Json::parse(ss.str(), &ok);
            if (ok && prior.isObject())
                merged = std::move(prior);  // Corrupt file: start over.
        }
    }
    Json entry = sweep;
    entry["quick"] = opts_.quick;
    entry["activity"] = act;
    entry["check"] = root_["check"];
    merged["harnesses"][name_] = std::move(entry);
    {
        std::ofstream out(sweep_path);
        if (out)
            out << merged.dump(2) << '\n';
    }
    std::fprintf(stderr,
                 "[%s] %.0f ms wall, %llu simulated, %llu cached "
                 "(%llu from disk), %llu pruned -> %s\n",
                 name_.c_str(), wall_ms,
                 static_cast<unsigned long long>(eng.stats().simulated),
                 static_cast<unsigned long long>(eng.stats().cacheHits),
                 static_cast<unsigned long long>(
                     eng.cache().stats().diskHits),
                 static_cast<unsigned long long>(eng.stats().pruned),
                 path.c_str());
}

} // namespace bench
} // namespace ws
