/**
 * @file
 * Reproduces Table 5 and the Splash2 pane of Figure 6: evaluate every
 * candidate design on the multithreaded Splash2-like suite (best thread
 * count per design, as in the paper), extract the Pareto-optimal set,
 * and report the area/performance scaling headline (paper: AIPC scales
 * linearly from 1.3 @ 39mm2 to 13.3 @ 399mm2).
 */

#include <cstdio>
#include <vector>

#include "area/pareto.h"
#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const std::vector<DesignPoint> designs = bench::benchDesigns(opts);
    bench::BenchReport report("table5_pareto_splash", opts);

    std::printf("Table 5 / Figure 6 (Splash2): %zu candidate designs x "
                "%d kernels\n\n", designs.size(), 6);

    // Every (design, kernel, thread-count) point runs as one batch.
    const std::vector<double> aipcs =
        bench::suiteAipcAll(Suite::kSplash, designs, opts);

    std::vector<ParetoPoint> points;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        points.push_back(ParetoPoint{AreaModel::totalArea(designs[i]),
                                     aipcs[i], i});
        std::fprintf(stderr, "  [%zu/%zu] %s -> %.2f AIPC\n", i + 1,
                     designs.size(), designs[i].describe().c_str(),
                     aipcs[i]);
    }

    const std::vector<std::size_t> front = paretoFront(points);
    std::vector<bool> optimal(designs.size(), false);
    for (std::size_t idx : front)
        optimal[points[idx].tag] = true;

    // Figure-6 scatter (all points).
    std::printf("area_mm2  avg_aipc  pareto  design\n");
    bench::rule(72);
    for (std::size_t i = 0; i < designs.size(); ++i) {
        std::printf("%8.1f  %8.2f  %6s  %s\n", points[i].area, aipcs[i],
                    optimal[i] ? "*" : "", designs[i].describe().c_str());
        Json row = Json::object();
        row["design"] = designs[i].describe();
        row["area_mm2"] = points[i].area;
        row["avg_aipc"] = aipcs[i];
        row["pareto"] = static_cast<bool>(optimal[i]);
        report.addRow("scatter", std::move(row));
    }

    // Table-5 style: the Pareto set with area/AIPC increments.
    std::printf("\nPareto-optimal configurations (Table 5 analogue)\n");
    std::printf("%3s %-34s %8s %8s %8s %8s\n", "id", "design", "area",
                "AIPC", "dArea%", "dAIPC%");
    bench::rule(76);
    double prev_area = 0.0;
    double prev_aipc = 0.0;
    int id = 1;
    for (std::size_t idx : front) {
        const ParetoPoint &p = points[idx];
        const DesignPoint &d = designs[p.tag];
        Json row = Json::object();
        row["id"] = id;
        row["design"] = d.describe();
        row["area_mm2"] = p.area;
        row["aipc"] = p.perf;
        if (id == 1) {
            std::printf("%3d %-34s %8.1f %8.2f %8s %8s\n", id,
                        d.describe().c_str(), p.area, p.perf, "na", "na");
        } else {
            std::printf("%3d %-34s %8.1f %8.2f %8.1f %8.1f\n", id,
                        d.describe().c_str(), p.area, p.perf,
                        100.0 * (p.area - prev_area) / prev_area,
                        100.0 * (p.perf - prev_aipc) / prev_aipc);
            row["darea_pct"] = 100.0 * (p.area - prev_area) / prev_area;
            row["daipc_pct"] = 100.0 * (p.perf - prev_aipc) / prev_aipc;
        }
        report.addRow("pareto", std::move(row));
        prev_area = p.area;
        prev_aipc = p.perf;
        ++id;
    }

    // Scaling headline.
    if (front.size() >= 2) {
        const ParetoPoint &lo = points[front.front()];
        const ParetoPoint &hi = points[front.back()];
        std::printf("\nScaling: %.2f AIPC @ %.0f mm2  ->  %.2f AIPC @ "
                    "%.0f mm2\n", lo.perf, lo.area, hi.perf, hi.area);
        std::printf("  area x%.1f, performance x%.1f  (paper: x10.2 area "
                    "-> x10.2 AIPC, i.e. linear)\n",
                    hi.area / lo.area, hi.perf / lo.perf);
        std::printf("  efficiency: %.4f -> %.4f AIPC/mm2\n",
                    lo.perf / lo.area, hi.perf / hi.area);
        report.meta()["area_scale"] = hi.area / lo.area;
        report.meta()["perf_scale"] = hi.perf / lo.perf;
    }
    report.finish();
    return 0;
}
