/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * useful for keeping the design-space sweeps fast and for spotting
 * regressions in the core data paths.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/simulator.h"
#include "core/soa.h"
#include "kernels/kernel.h"
#include "memory/cache.h"
#include "network/mesh.h"
#include "network/timed_queue.h"
#include "pe/matching_table.h"

namespace ws {
namespace {

void
BM_MatchingTableInsert(benchmark::State &state)
{
    MatchingTable mt(128, 2, 4);
    Rng rng(1);
    WaveNum wave = 0;
    for (auto _ : state) {
        const auto inst = static_cast<InstId>(rng.range(128));
        Token t{Tag{0, wave}, PortRef{inst, 0}, 1};
        benchmark::DoNotOptimize(mt.insert(t, 1, inst));
        if (++wave % 64 == 0)
            wave += 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchingTableInsert);

void
BM_MatchingTableMatchPair(benchmark::State &state)
{
    MatchingTable mt(static_cast<unsigned>(state.range(0)), 2, 4);
    Rng rng(1);
    WaveNum wave = 0;
    for (auto _ : state) {
        const auto inst = static_cast<InstId>(rng.range(32));
        mt.insert(Token{Tag{0, wave}, PortRef{inst, 0}, 1}, 2, inst);
        benchmark::DoNotOptimize(
            mt.insert(Token{Tag{0, wave}, PortRef{inst, 1}, 2}, 2, inst));
        ++wave;
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_MatchingTableMatchPair)->Arg(16)->Arg(128);

void
BM_TagArrayProbe(benchmark::State &state)
{
    TagArray tags(32 * 1024, 4, 128);
    Rng rng(1);
    for (int i = 0; i < 256; ++i)
        tags.insert(static_cast<Addr>(rng.range(1 << 20)) * 128, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tags.probe(static_cast<Addr>(rng.range(1 << 20)) * 128));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayProbe);

void
BM_TimedQueuePushPop(benchmark::State &state)
{
    TimedQueue<int> q;
    Cycle now = 0;
    for (auto _ : state) {
        q.push(1, now + 3);
        q.push(2, now + 1);
        ++now;
        while (q.ready(now))
            benchmark::DoNotOptimize(q.pop(now));
    }
}
BENCHMARK(BM_TimedQueuePushPop);

void
BM_TokenPoolAllocRelease(benchmark::State &state)
{
    // The free-list churn pattern of the domain queues: a small working
    // set of live tokens recycling through the same few cache lines.
    TokenPool pool;
    Rng rng(1);
    TokenHandle ring[16] = {};
    for (int i = 0; i < 16; ++i)
        ring[i] = pool.alloc(Token{Tag{0, 0}, PortRef{0, 0}, i});
    std::size_t at = 0;
    for (auto _ : state) {
        pool.release(ring[at]);
        ring[at] = pool.alloc(Token{
            Tag{0, static_cast<WaveNum>(rng.range(8))},
            PortRef{static_cast<InstId>(rng.range(64)), 0}, 7});
        benchmark::DoNotOptimize(pool.get(ring[at]).value);
        at = (at + 1) % 16;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenPoolAllocRelease);

void
BM_TimedTokenQueuePushPop(benchmark::State &state)
{
    // Same traffic shape as BM_TimedQueuePushPop, but through the SoA
    // (pool + sorted handle vector) token queue the event core uses —
    // the head-to-head is the cost of the flattened layout per op.
    TokenPool pool;
    TimedTokenQueue q(&pool);
    const Token t{Tag{0, 0}, PortRef{3, 0}, 42};
    Cycle now = 0;
    for (auto _ : state) {
        q.push(t, now + 3);
        q.push(t, now + 1);
        ++now;
        while (q.ready(now))
            benchmark::DoNotOptimize(q.pop(now).value);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimedTokenQueuePushPop);

void
BM_OverflowMapInsertEraseCycle(benchmark::State &state)
{
    // The matching table's overflow path under oversubscription: probe,
    // insert, merge, erase — at a residency set by the benchmark arg.
    OverflowMap map;
    Rng rng(1);
    const std::uint64_t residency =
        static_cast<std::uint64_t>(state.range(0));
    for (std::uint64_t k = 0; k < residency; ++k) {
        bool inserted = false;
        map.insert(k * 0x9e3779b97f4a7c15ULL, inserted);
    }
    std::uint64_t next = residency;
    for (auto _ : state) {
        bool inserted = false;
        const std::uint64_t key = next++ * 0x9e3779b97f4a7c15ULL;
        const std::size_t slot = map.insert(key, inserted);
        map.ops(slot)[0] = 1;
        const std::size_t found = map.find(key);
        benchmark::DoNotOptimize(map.presentBits(found));
        map.erase(found);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverflowMapInsertEraseCycle)->Arg(8)->Arg(256);

void
BM_SmallVecFanOut(benchmark::State &state)
{
    // The execute-stage fan-out list: arg = consumers per instruction.
    // Below the inline capacity this must not allocate at all.
    const int consumers = static_cast<int>(state.range(0));
    for (auto _ : state) {
        SmallVec<Token, 4> out;
        for (int i = 0; i < consumers; ++i)
            out.push_back(Token{Tag{0, 0},
                                PortRef{static_cast<InstId>(i), 0}, i});
        Value sum = 0;
        for (const Token &t : out)
            sum += t.value;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::size_t>(consumers));
}
BENCHMARK(BM_SmallVecFanOut)->Arg(2)->Arg(4)->Arg(12);

void
BM_MeshAllToAll(benchmark::State &state)
{
    TrafficStats traffic;
    MeshConfig cfg;
    cfg.clusters = static_cast<std::uint16_t>(state.range(0));
    MeshNetwork mesh(cfg, &traffic);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        NetMessage m;
        m.src = static_cast<ClusterId>(rng.range(cfg.clusters));
        m.dst = static_cast<ClusterId>(rng.range(cfg.clusters));
        m.payload = OperandMsg{};
        mesh.inject(m, now);
        mesh.tick(now);
        for (ClusterId c = 0; c < cfg.clusters; ++c)
            mesh.delivered(c).clear();
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshAllToAll)->Arg(4)->Arg(16);

void
BM_EndToEndSimCyclesPerSecond(benchmark::State &state)
{
    KernelParams params;
    params.threads = 8;
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Cycle total_cycles = 0;
    for (auto _ : state) {
        DataflowGraph g = buildFft(params);
        SimOptions opts;
        opts.maxCycles = 50'000;
        SimResult r = runSimulation(g, cfg, opts);
        total_cycles += r.cycles;
        benchmark::DoNotOptimize(r.aipc);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndSimCyclesPerSecond)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace ws

BENCHMARK_MAIN();
