/**
 * @file
 * Placement-policy ablation (the paper's §3.1 claim that placing
 * frequently-communicating instructions close together is what makes
 * the hierarchical interconnect work, and the [7,8] placement line of
 * work): depth-first packing, its greedy-refined variant, breadth-first,
 * and random placement, compared on performance and traffic locality.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "place/placement.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ablation_placement", opts);

    const DesignPoint d{4, 4, 8, 128, 128, 32, 2};
    const PlacementPolicy policies[] = {
        PlacementPolicy::kDepthFirstRefined,
        PlacementPolicy::kDepthFirst,
        PlacementPolicy::kBreadthFirst,
        PlacementPolicy::kRandom,
    };

    std::printf("Ablation: instruction placement policy (machine: %s)\n",
                d.describe().c_str());
    std::printf("paper: locality-aware placement keeps >80%% of traffic "
                "within a cluster\n\n");
    std::printf("%-14s %-20s %8s %8s %8s %9s\n", "workload", "policy",
                "AIPC", "pod%", "grid%", "rejects");
    bench::rule(74);

    // All workload x policy points as one engine batch.
    std::vector<const Kernel *> kept;
    std::vector<bench::CfgRun> runs;
    for (const Kernel &k : kernelRegistry()) {
        if (!k.multithreaded)
            continue;
        if (opts.quick && k.name != "fft" && k.name != "radix")
            continue;
        kept.push_back(&k);
        for (PlacementPolicy policy : policies) {
            ProcessorConfig cfg = toProcessorConfig(d);
            cfg.placement = policy;
            runs.push_back(bench::CfgRun{&k, cfg, 16});
        }
    }
    const std::vector<bench::RunResult> results =
        bench::runAll(runs, opts);

    const std::size_t npol = std::size(policies);
    for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t p = 0; p < npol; ++p) {
            const bench::RunResult &r = results[i * npol + p];
            const double total = r.report.get("traffic.total");
            const double pod =
                r.report.sumPrefix("traffic.intra_pod") / total;
            const double grid =
                r.report.sumPrefix("traffic.inter_cluster") / total;
            std::printf("%-14s %-20s %8.2f %7.1f%% %7.1f%% %9.0f\n",
                        kept[i]->name.c_str(),
                        placementPolicyName(policies[p]), r.aipc,
                        100 * pod, 100 * grid,
                        r.report.get("pe.rejected"));
            Json row = Json::object();
            row["workload"] = kept[i]->name;
            row["policy"] = std::string(placementPolicyName(policies[p]));
            row["aipc"] = r.aipc;
            row["pod_pct"] = 100 * pod;
            row["grid_pct"] = 100 * grid;
            row["rejects"] = r.report.get("pe.rejected");
            report.addRow("placement", std::move(row));
        }
    }
    std::printf("\n(the spread between depth-first and random is the "
                "performance value of the\nplacer; refinement recovers "
                "locality whatever the starting order)\n");
    report.finish();
    return 0;
}
