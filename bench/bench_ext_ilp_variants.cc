/**
 * @file
 * Extension: static-ILP sensitivity across the design space, and the
 * working demonstration of --prune-static.
 *
 * Four dataflow expressions of one 256-way reduction (serial chain,
 * 2-way, 4-way, balanced tree — see kernels/ilp_variants.h) compete on
 * every candidate design; each design reports its best variant, paper
 * Figure-6 style. Unlike the application kernels, the chain variants
 * have *tight* static AIPC bounds (they are acyclic: bound =
 * useful / critical-path, within 10x of simulation instead of the
 * wave-level bound's ~100x), so under --prune-static the sweep proves
 * most chain candidates dominated as soon as the tree variant has
 * simulated — the measurable skip case the pruning layer is built for.
 * The best-of-variants winner, and therefore every printed row and the
 * Pareto front, is byte-identical with and without pruning.
 */

#include <cstdio>
#include <vector>

#include "area/pareto.h"
#include "bench/bench_util.h"
#include "driver/static_prune.h"
#include "kernels/ilp_variants.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const std::vector<DesignPoint> designs = bench::benchDesigns(opts);
    bench::BenchReport report("ext_ilp_variants", opts);

    const std::vector<Kernel> &variants = ilpVariantKernels();
    std::printf("Static-ILP sensitivity: %zu designs x %zu reduction "
                "variants (same computation,\nserial chain -> balanced "
                "tree), best variant per design\n\n",
                designs.size(), variants.size());

    // One best-of-variants group per design; the whole sweep is one
    // engine batch. Under --prune-static the per-candidate bounds
    // decide which chain variants never need to run.
    std::vector<bench::CfgRun> runs;
    std::vector<std::size_t> group_end;
    for (const DesignPoint &design : designs) {
        const ProcessorConfig cfg = toProcessorConfig(design);
        for (const Kernel &v : variants)
            runs.push_back(bench::CfgRun{&v, cfg, 1});
        group_end.push_back(runs.size());
    }
    const std::vector<bench::RunResult> results =
        bench::runGroups(runs, group_end, opts);

    // Static bounds per design (pure functions of graph + config —
    // identical whether or not pruning ran).
    ProfileCache profiles;
    KernelParams params;
    params.scale = opts.scale;
    params.seed = opts.seed;

    std::printf("%8s  %8s  %-10s  %6s  %s\n", "area_mm2", "best_aipc",
                "best", "pareto", "bounds chain1/chain2/chain4/tree");
    bench::rule(76);

    std::vector<ParetoPoint> points;
    std::vector<std::size_t> win(designs.size(), 0);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        const std::size_t begin = d * variants.size();
        double best = -1.0;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            if (results[begin + v].aipc > best) {
                best = results[begin + v].aipc;
                win[d] = v;
            }
        }
        points.push_back(ParetoPoint{AreaModel::totalArea(designs[d]),
                                     best, d});
    }
    const std::vector<std::size_t> front = paretoFront(points);
    std::vector<bool> optimal(designs.size(), false);
    for (std::size_t idx : front)
        optimal[points[idx].tag] = true;

    for (std::size_t d = 0; d < designs.size(); ++d) {
        const ProcessorConfig cfg = toProcessorConfig(designs[d]);
        char bounds[64];
        std::size_t off = 0;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const std::uint64_t fp =
                kernelFingerprint(variants[v], params);
            const auto profile =
                profiles.profileFor(variants[v].build(params), fp);
            off += static_cast<std::size_t>(std::snprintf(
                bounds + off, sizeof(bounds) - off, "%s%.2f",
                v == 0 ? "" : "/", staticAipcBound(*profile, cfg)));
        }
        std::printf("%8.1f  %8.2f  %-10s  %6s  %s\n", points[d].area,
                    points[d].perf, variants[win[d]].name.c_str(),
                    optimal[d] ? "*" : "", bounds);
        Json row = Json::object();
        row["design"] = designs[d].describe();
        row["area_mm2"] = points[d].area;
        row["best_variant"] = variants[win[d]].name;
        row["best_aipc"] = points[d].perf;
        row["pareto"] = static_cast<bool>(optimal[d]);
        report.addRow("variants", std::move(row));
    }

    // Headline: how much performance does dependency *structure* cost?
    // The tree's win margin is the ILP the fabric can actually extract.
    std::size_t tree_wins = 0;
    for (std::size_t d = 0; d < designs.size(); ++d) {
        if (variants[win[d]].name == "ilp_tree")
            ++tree_wins;
    }
    std::printf("\nTree variant wins on %zu/%zu designs (expected: all — "
                "same useful work,\nshortest critical path).\n", tree_wins,
                designs.size());
    report.meta()["tree_wins"] = static_cast<double>(tree_wins);
    report.finish();
    return 0;
}
