/**
 * @file
 * Section 3.4.3 inter-cluster network ablation: port bandwidth.
 * Paper: lowering bandwidth to one operand/cycle hurts by 52% on
 * average; raising it to four has negligible effect.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace ws;

namespace {

double
sweep(const char *label, PlacementPolicy policy,
      const bench::BenchOptions &opts, bench::BenchReport &report)
{
    std::printf("placement: %s\n", label);
    std::printf("%-14s %8s %8s %8s %10s %10s\n", "workload", "bw=1",
                "bw=2", "bw=4", "1-vs-2", "4-vs-2");
    bench::rule(64);

    const DesignPoint d{4, 4, 8, 128, 128, 32, 2};
    const unsigned bandwidths[] = {1u, 2u, 4u};

    // All workload x bandwidth points as one engine batch.
    std::vector<const Kernel *> kept;
    std::vector<bench::CfgRun> runs;
    for (const Kernel &k : kernelRegistry()) {
        if (!k.multithreaded)
            continue;
        if (opts.quick && k.name != "fft" && k.name != "radix")
            continue;
        kept.push_back(&k);
        for (unsigned bw : bandwidths) {
            ProcessorConfig cfg = toProcessorConfig(d);
            cfg.mesh.portBandwidth = static_cast<std::uint8_t>(bw);
            cfg.placement = policy;
            runs.push_back(bench::CfgRun{&k, cfg, 32});
        }
    }
    const std::vector<bench::RunResult> results =
        bench::runAll(runs, opts);

    double total_drop = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < kept.size(); ++i) {
        double aipc[3];
        for (int idx = 0; idx < 3; ++idx)
            aipc[idx] = results[i * 3 + idx].aipc;
        const double drop = 100.0 * (1.0 - aipc[0] / aipc[1]);
        total_drop += drop;
        ++n;
        std::printf("%-14s %8.2f %8.2f %8.2f %9.1f%% %9.1f%%\n",
                    kept[i]->name.c_str(), aipc[0], aipc[1], aipc[2],
                    drop, 100.0 * (aipc[2] / aipc[1] - 1.0));
        Json row = Json::object();
        row["workload"] = kept[i]->name;
        row["placement"] = std::string(label);
        row["bw1"] = aipc[0];
        row["bw2"] = aipc[1];
        row["bw4"] = aipc[2];
        row["drop_1v2_pct"] = drop;
        report.addRow("bandwidth", std::move(row));
    }
    const double mean = total_drop / n;
    std::printf("mean bw=1 penalty: %.1f%%\n\n", mean);
    return mean;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ablation_network", opts);

    std::printf("Ablation: grid-network port bandwidth\n");
    std::printf("paper: 1 op/cycle -52%% on average; 4 ops/cycle ~= 2\n\n");

    const double local = sweep("depth-first (production)",
                               PlacementPolicy::kDepthFirst, opts, report);
    const double random = sweep("random (locality destroyed)",
                                PlacementPolicy::kRandom, opts, report);
    std::printf("summary: with locality-aware placement the grid is "
                "nearly empty and bandwidth\nbarely matters (%.1f%%); "
                "destroy locality and halving bandwidth costs %.1f%% —\n"
                "the paper's 52%% figure reflects a heavily loaded "
                "grid.\n", local, random);
    report.meta()["mean_penalty_local_pct"] = local;
    report.meta()["mean_penalty_random_pct"] = random;
    report.finish();
    return 0;
}
