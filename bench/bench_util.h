/**
 * @file
 * Shared machinery for the table/figure reproduction harnesses: running
 * workloads on design points, picking thread counts the way the paper
 * does (sweep, report the best), and formatting paper-style tables.
 */

#ifndef WS_BENCH_BENCH_UTIL_H_
#define WS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "area/area_model.h"
#include "area/design_space.h"
#include "core/simulator.h"
#include "kernels/kernel.h"

namespace ws {
namespace bench {

/** Command-line options shared by the harnesses. */
struct BenchOptions
{
    bool quick = false;        ///< Thin the sweep for a fast smoke run.
    Cycle maxCycles = 600'000;
    std::uint32_t scale = 1;
    std::uint64_t seed = 1;
};

/** Parse --quick / --max-cycles=N / --scale=N. */
BenchOptions parseArgs(int argc, char **argv);

/** One workload-on-design measurement. */
struct RunResult
{
    bool completed = false;
    double aipc = 0.0;
    Cycle cycles = 0;
    int threads = 1;
    StatReport report;
};

/** Run @p kernel on @p design with a fixed thread count. */
RunResult runKernel(const Kernel &kernel, const DesignPoint &design,
                    int threads, const BenchOptions &opts);

/** Run @p kernel on an explicit configuration (ablation harnesses). */
RunResult runKernelCfg(const Kernel &kernel, const ProcessorConfig &cfg,
                       int threads, const BenchOptions &opts);

/**
 * The paper's methodology for Splash2: run a range of thread counts and
 * report the best-performing one. Candidates are derived from the
 * design's instruction capacity relative to the kernel's per-thread
 * footprint (oversubscribing the instruction stores is allowed but
 * rarely wins).
 */
RunResult runKernelBestThreads(const Kernel &kernel,
                               const DesignPoint &design,
                               const BenchOptions &opts);

/** Mean AIPC of every kernel in @p suite on @p design. */
double suiteAipc(Suite suite, const DesignPoint &design,
                 const BenchOptions &opts);

/** Candidate designs, optionally thinned by --quick. */
std::vector<DesignPoint> benchDesigns(const BenchOptions &opts);

/** printf a horizontal rule of the given width. */
void rule(int width);

} // namespace bench
} // namespace ws

#endif // WS_BENCH_BENCH_UTIL_H_
