/**
 * @file
 * Shared machinery for the table/figure reproduction harnesses: running
 * workloads on design points, picking thread counts the way the paper
 * does (sweep, report the best), and formatting paper-style tables.
 *
 * All simulation goes through a process-wide SweepEngine: independent
 * (kernel, config, threads) points run concurrently on a work-stealing
 * thread pool (--jobs=N, default: all host cores) and completed runs
 * are memoized, so overlapping sweeps (fig6/fig7/table5/tuning) never
 * re-simulate the same point. Results are reduced in deterministic
 * submission order — the printed tables are byte-identical across
 * --jobs settings.
 *
 * Each harness also emits a machine-readable JSON twin of its text
 * table into --out-dir (default bench_results/), plus sweep wall-clock
 * and cache statistics merged into BENCH_sweep.json, so the perf
 * trajectory is trackable across PRs.
 */

#ifndef WS_BENCH_BENCH_UTIL_H_
#define WS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "area/area_model.h"
#include "area/design_space.h"
#include "common/json.h"
#include "core/simulator.h"
#include "driver/sweep_engine.h"
#include "kernels/kernel.h"

namespace ws {
namespace bench {

/** Command-line options shared by the harnesses. */
struct BenchOptions
{
    bool quick = false;        ///< Thin the sweep for a fast smoke run.
    Cycle maxCycles = 600'000;
    std::uint32_t scale = 1;
    std::uint64_t seed = 1;
    unsigned jobs = 0;         ///< Concurrent simulations; 0 = all cores.
    bool json = true;          ///< Emit the JSON result twin.
    bool pruneStatic = false;  ///< Skip candidates whose static AIPC
                               ///  bound cannot beat the group's best
                               ///  (logged, never silent).
    bool alwaysTick = false;   ///< Reference clocking: tick every
                               ///  component every cycle instead of
                               ///  activity-gated wakeups. Results must
                               ///  be byte-identical either way.
    bool referenceCore = false;  ///< Reference cycle core: poll every
                               ///  PE's queues instead of the event
                               ///  rings. Results must be byte-identical
                               ///  either way (the SoA parity oracle).
    CheckLevel check = CheckLevel::kOff;  ///< wscheck runtime invariant
                               ///  level (--check[=cheap|full]). Never
                               ///  changes any reported statistic;
                               ///  violations are surfaced separately
                               ///  and counted in the JSON twin.
    std::string outDir = "bench_results";
    std::string cacheDir;      ///< Persistent simulation store shared
                               ///  across harnesses/processes
                               ///  (--cache-dir; empty = memory-only).
};

/** Parse --quick / --max-cycles=N / --scale=N / --seed=N / --jobs=N /
 *  --out-dir=PATH / --cache-dir=PATH / --no-json / --prune-static /
 *  --always-tick / --reference-core / --check[=LEVEL]. */
BenchOptions parseArgs(int argc, char **argv);

/** The process-wide sweep engine (created on first use from @p opts;
 *  later calls ignore the options). */
SweepEngine &engine(const BenchOptions &opts);

/** One workload-on-design measurement. */
struct RunResult
{
    bool completed = false;
    double aipc = 0.0;
    Cycle cycles = 0;
    int threads = 1;
    bool pruned = false;  ///< Skipped by --prune-static (aipc is 0).
    StatReport report;
};

/** One explicit simulation point for batch submission. */
struct CfgRun
{
    const Kernel *kernel = nullptr;
    ProcessorConfig cfg;
    int threads = 1;
};

/** Run a whole batch concurrently; results index-match @p runs. */
std::vector<RunResult> runAll(const std::vector<CfgRun> &runs,
                              const BenchOptions &opts);

/**
 * Run a batch partitioned into best-of reduction groups (@p groupEnd:
 * exclusive end index per group, ascending, last == runs.size()).
 * Under --prune-static each run carries its static AIPC bound
 * (profiles memoized per program) and provably-dominated candidates
 * inside a group are skipped — their RunResult comes back with
 * pruned = true, and the skip is logged for BENCH_sweep.json. The
 * best-of-group reduction is unaffected by construction.
 */
std::vector<RunResult> runGroups(const std::vector<CfgRun> &runs,
                                 const std::vector<std::size_t> &groupEnd,
                                 const BenchOptions &opts);

/** Labels of every point --prune-static skipped so far (process-wide,
 *  submission order; BenchReport::finish records them). */
std::vector<std::string> prunedPoints();

/** Aggregate component activity across every simulation this process
 *  has collected (from the per-run activity.* stats). */
struct ActivityTotals
{
    double activeCycles = 0.0;
    double skippedCycles = 0.0;

    /** Fraction of component-cycles gating skipped (0 when empty). */
    double
    skipRate() const
    {
        const double total = activeCycles + skippedCycles;
        return total == 0.0 ? 0.0 : skippedCycles / total;
    }
};

/** Process-wide activity totals (BenchReport::finish records them). */
ActivityTotals activityTotals();

/** Total wscheck violations across every run this process collected
 *  (0 unless --check found real trouble; BenchReport::finish records
 *  it and the first offending logs go to stderr as they happen). */
Counter checkViolationTotal();

/** Run @p kernel on @p design with a fixed thread count. */
RunResult runKernel(const Kernel &kernel, const DesignPoint &design,
                    int threads, const BenchOptions &opts);

/** Run @p kernel on an explicit configuration (ablation harnesses). */
RunResult runKernelCfg(const Kernel &kernel, const ProcessorConfig &cfg,
                       int threads, const BenchOptions &opts);

/**
 * The paper's methodology for Splash2: run a range of thread counts and
 * report the best-performing one. Candidates are derived from the
 * design's instruction capacity relative to the kernel's per-thread
 * footprint (oversubscribing the instruction stores is allowed but
 * rarely wins). The candidates run concurrently through the engine.
 */
RunResult runKernelBestThreads(const Kernel &kernel,
                               const DesignPoint &design,
                               const BenchOptions &opts);

/** Mean AIPC of every kernel in @p suite on @p design. */
double suiteAipc(Suite suite, const DesignPoint &design,
                 const BenchOptions &opts);

/**
 * Mean suite AIPC for every design in one engine batch — the main
 * parallel entry point for the Figure-6/Table-5 style sweeps. Returns
 * one value per design, index-matched.
 */
std::vector<double> suiteAipcAll(Suite suite,
                                 const std::vector<DesignPoint> &designs,
                                 const BenchOptions &opts);

/** Candidate designs, optionally thinned by --quick. */
std::vector<DesignPoint> benchDesigns(const BenchOptions &opts);

/** printf a horizontal rule of the given width. */
void rule(int width);

/**
 * Accumulates a harness's machine-readable results and writes
 * <out-dir>/<name>.json on finish(), plus merges the engine's
 * wall-clock/cache statistics into <out-dir>/BENCH_sweep.json.
 */
class BenchReport
{
  public:
    BenchReport(std::string name, const BenchOptions &opts);

    /** Append one row to the named result table. */
    void addRow(const std::string &table, Json row);

    /** Extra top-level fields (headline numbers etc.). */
    Json &meta() { return root_["meta"]; }

    /** Write the JSON files (no-op under --no-json). */
    void finish();

  private:
    std::string name_;
    BenchOptions opts_;
    Json root_;
    std::chrono::steady_clock::time_point start_;
    bool finished_ = false;
};

} // namespace bench
} // namespace ws

#endif // WS_BENCH_BENCH_UTIL_H_
