/**
 * @file
 * EXTENSION (beyond the paper): energy and energy-delay analysis of the
 * §4.2 design space.
 *
 * The paper optimizes area × performance; its conclusion — area
 * efficiency beats raw performance when choosing a tile — has an energy
 * analogue this harness measures: which designs are Pareto-optimal in
 * (power, performance) and (area, energy-delay product), and whether
 * the area-efficient tiles are also the energy-efficient ones.
 */

#include <cstdio>
#include <vector>

#include "area/energy_model.h"
#include "area/pareto.h"
#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ext_energy", opts);
    // Energy trends need one design per (clusters, V, L2-presence)
    // corner, not the full cache sweep; keep the default run short.
    std::vector<DesignPoint> designs;
    for (const DesignPoint &d : bench::benchDesigns(opts)) {
        if (d.l1KB != 8 || (d.l2MB != 0 && d.l2MB != 1))
            continue;
        if (opts.quick && d.l2MB != (d.clusters == 16 ? 1 : 0) &&
            d.l2MB != 1) {
            continue;
        }
        designs.push_back(d);
    }

    std::printf("Extension: energy across the design space (Splash2 "
                "suite)\n\n");
    std::printf("%-34s %8s %8s %8s %10s %10s\n", "design", "area",
                "AIPC", "watts", "pJ/inst", "EDP(nJ*s)");
    bench::rule(84);

    std::vector<ParetoPoint> perf_per_watt;
    std::vector<double> epis;
    double best_aipc = 0.0;
    std::size_t best_aipc_idx = 0;
    double best_epi = 1e18;
    std::size_t best_epi_idx = 0;

    for (std::size_t i = 0; i < designs.size(); ++i) {
        const DesignPoint &d = designs[i];
        // One representative multithreaded workload mix: average the
        // suite's reports (energy adds linearly).
        double aipc = 0.0;
        EnergyBreakdown total;
        int n = 0;
        for (const Kernel &k : kernelRegistry()) {
            if (k.suite != Suite::kSplash)
                continue;
            if (opts.quick && k.name != "fft" && k.name != "ocean")
                continue;
            bench::RunResult r = bench::runKernelBestThreads(k, d, opts);
            aipc += r.aipc;
            EnergyBreakdown e = EnergyModel::estimate(r.report, d);
            total.totalPj += e.totalPj;
            total.epiPj += e.epiPj;
            total.watts += e.watts;
            total.edp += e.edp;
            ++n;
        }
        aipc /= n;
        total.epiPj /= n;
        total.watts /= n;
        total.edp /= n;

        std::printf("%-34s %8.1f %8.2f %8.2f %10.0f %10.3f\n",
                    d.describe().c_str(), AreaModel::totalArea(d), aipc,
                    total.watts, total.epiPj, total.edp * 1e9);
        Json row = Json::object();
        row["design"] = d.describe();
        row["area_mm2"] = AreaModel::totalArea(d);
        row["aipc"] = aipc;
        row["watts"] = total.watts;
        row["pj_per_inst"] = total.epiPj;
        row["edp_nj_s"] = total.edp * 1e9;
        report.addRow("energy", std::move(row));
        perf_per_watt.push_back(ParetoPoint{total.watts, aipc, i});
        epis.push_back(total.epiPj);
        if (aipc > best_aipc) {
            best_aipc = aipc;
            best_aipc_idx = i;
        }
        if (total.epiPj < best_epi) {
            best_epi = total.epiPj;
            best_epi_idx = i;
        }
    }

    std::printf("\nPerformance-per-watt Pareto front:\n");
    for (std::size_t idx : paretoFront(perf_per_watt)) {
        const ParetoPoint &p = perf_per_watt[idx];
        std::printf("  %6.2f W  %6.2f AIPC  %8.0f pJ/inst  %s\n", p.area,
                    p.perf, epis[p.tag],
                    designs[p.tag].describe().c_str());
    }
    std::printf("\nhighest-AIPC design: %s\n",
                designs[best_aipc_idx].describe().c_str());
    std::printf("lowest-energy-per-instruction design: %s\n",
                designs[best_epi_idx].describe().c_str());
    std::printf("\n(the paper's area-efficiency lesson extends: compact "
                "tiles with balanced\ncaches win energy/instruction as "
                "well, because SRAM access energy tracks\nthe same "
                "capacity knobs as area)\n");
    report.meta()["best_aipc_design"] =
        designs[best_aipc_idx].describe();
    report.meta()["best_epi_design"] = designs[best_epi_idx].describe();
    report.finish();
    return 0;
}
