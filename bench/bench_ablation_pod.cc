/**
 * @file
 * Section 3.2 pod ablation: PEs coupled into 2-PE pods (snooping each
 * other's bypass network) vs fully isolated PEs.
 * Paper: the 2-PE pod design is 15% faster on average.
 *
 * The pod win depends on dependence chains crossing PE boundaries, so
 * the sweep covers both the baseline (V=128, chains mostly intra-PE
 * after depth-first packing) and a fine-grained machine (V=16) where
 * producer-consumer pairs frequently straddle PEs — the regime the
 * paper's measurement reflects.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "isa/graph_builder.h"

using namespace ws;

namespace {

double
podSweep(const char *label, unsigned virt, const bench::BenchOptions &opts,
         bench::BenchReport &report)
{
    ProcessorConfig base = ProcessorConfig::baseline();
    base.memory.l2Bytes = 1 << 20;
    base.pe.instStoreEntries = virt;
    base.pe.matchingEntries = std::max(16u, virt);

    std::printf("machine: %s (V=%u)\n", label, virt);
    std::printf("%-14s %10s %10s %10s\n", "workload", "isolated",
                "pods", "speedup");
    bench::rule(48);

    // First pass: pick thread counts and skip over-large kernels, then
    // run every isolated/pods pair as one engine batch.
    ProcessorConfig isolated = base;
    isolated.pe.podBypass = false;
    ProcessorConfig pods = base;
    pods.pe.podBypass = true;

    std::vector<const Kernel *> kept;
    std::vector<bench::CfgRun> runs;
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(base.totalPes()) * virt;
    for (const Kernel &k : kernelRegistry()) {
        if (opts.quick && k.suite == Suite::kSplash)
            continue;
        // Keep machines at most mildly oversubscribed so instruction
        // misses do not swamp the pod effect under measurement.
        int threads = 1;
        if (k.multithreaded) {
            KernelParams probe;
            probe.threads = 2;
            const std::size_t per_thread = k.build(probe).size() / 2;
            threads = 2;
            while (threads * 2 <= 8 &&
                   static_cast<std::uint64_t>(threads) * 2 * per_thread <=
                       2 * capacity) {
                threads *= 2;
            }
        }
        {
            KernelParams probe;
            probe.threads = static_cast<std::uint16_t>(threads);
            if (k.build(probe).size() > 2 * capacity) {
                std::printf("%-14s %10s %10s %10s\n", k.name.c_str(),
                            "-", "-", "(skip)");
                continue;
            }
        }
        kept.push_back(&k);
        runs.push_back(bench::CfgRun{&k, isolated, threads});
        runs.push_back(bench::CfgRun{&k, pods, threads});
    }
    const std::vector<bench::RunResult> results =
        bench::runAll(runs, opts);

    double total_speedup = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < kept.size(); ++i) {
        const double a_iso = results[2 * i].aipc;
        const double a_pod = results[2 * i + 1].aipc;
        const double speedup = a_iso > 0 ? a_pod / a_iso : 1.0;
        total_speedup += speedup;
        ++n;
        std::printf("%-14s %10.2f %10.2f %9.1f%%\n",
                    kept[i]->name.c_str(), a_iso, a_pod,
                    100.0 * (speedup - 1.0));
        Json row = Json::object();
        row["workload"] = kept[i]->name;
        row["machine"] = std::string(label);
        row["isolated_aipc"] = a_iso;
        row["pods_aipc"] = a_pod;
        row["speedup_pct"] = 100.0 * (speedup - 1.0);
        report.addRow("pod_sweep", std::move(row));
    }
    const double mean = 100.0 * (total_speedup / n - 1.0);
    std::printf("mean pod speedup: %.1f%%\n\n", mean);
    return mean;
}

} // namespace

/**
 * The latency-bound limit case: a pure dependence chain spanning PEs.
 * Every producer-consumer handoff that crosses into the pod partner
 * costs 1 cycle with pods vs the 5-cycle domain bus without — the
 * mechanism behind the paper's 15% measurement, isolated.
 */
void
chainMicro(const bench::BenchOptions &opts, bench::BenchReport &report)
{
    GraphBuilder b("chain");
    b.beginThread(0);
    auto x = b.param(1);
    for (int i = 0; i < 240; ++i)   // Fits the V=8 machine (256 slots).
        x = b.addi(x, 1);
    b.sink(x, 1);
    b.endThread();
    DataflowGraph g1 = b.finish();

    auto run = [&](bool pods) {
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.pe.instStoreEntries = 8;   // Chain crosses a PE every 8 ops.
        cfg.pe.matchingEntries = 16;
        cfg.pe.podBypass = pods;
        SimOptions so;
        so.maxCycles = opts.maxCycles;
        return runSimulation(g1, cfg, so).cycles;
    };
    const Cycle iso = run(false);
    const Cycle pod = run(true);
    std::printf("dependence-chain microworkload (240 serial adds, V=8):\n");
    std::printf("  isolated PEs: %llu cycles, pods: %llu cycles -> "
                "%.1f%% faster\n\n",
                static_cast<unsigned long long>(iso),
                static_cast<unsigned long long>(pod),
                100.0 * (static_cast<double>(iso) / pod - 1.0));
    report.meta()["chain_isolated_cycles"] =
        static_cast<std::uint64_t>(iso);
    report.meta()["chain_pod_cycles"] = static_cast<std::uint64_t>(pod);
}

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ablation_pod", opts);

    std::printf("Ablation: 2-PE pods vs isolated PEs "
                "(paper: +15%% on average)\n\n");
    chainMicro(opts, report);
    const double coarse = podSweep("baseline", 128, opts, report);
    const double fine = podSweep("fine-grained placement", 32, opts,
                                 report);
    std::printf("summary: +%.1f%% (V=128, chains packed intra-PE), "
                "+%.1f%% (V=32, chains span pods)\n", coarse, fine);
    std::printf("note: the depth-first packer keeps most handoffs "
                "inside one PE, so the\nfull-kernel pod win is smaller "
                "here than the paper's 15%%; the microworkload\nshows "
                "the isolated mechanism.\n");
    report.meta()["mean_speedup_v128_pct"] = coarse;
    report.meta()["mean_speedup_v32_pct"] = fine;
    report.finish();
    return 0;
}
