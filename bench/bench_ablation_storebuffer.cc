/**
 * @file
 * Section 3.3.1 store-buffer ablation: partial store queues.
 * Paper: adding PSQs gains 5-20% depending on the application; more
 * than two gains almost nothing (while threatening cycle time).
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("ablation_storebuffer", opts);

    ProcessorConfig base = ProcessorConfig::baseline();
    base.memory.l2Bytes = 1 << 20;

    std::printf("Ablation: partial store queues (store decoupling)\n");
    std::printf("paper: PSQs gain 5-20%%; >2 PSQs negligible\n\n");
    std::printf("%-14s %8s %8s %8s %8s %10s %10s\n", "workload",
                "0 PSQ", "1 PSQ", "2 PSQ", "4 PSQ", "2-vs-0", "4-vs-2");
    bench::rule(72);

    const char *mem_heavy[] = {"gzip", "twolf", "radix", "ocean",
                               "djpeg", "art"};
    const unsigned psq_counts[] = {0u, 1u, 2u, 4u};

    // All workload x PSQ-count points as one engine batch.
    std::vector<const Kernel *> kept;
    std::vector<bench::CfgRun> runs;
    for (const char *w : mem_heavy) {
        const Kernel &k = findKernel(w);
        if (opts.quick && k.suite == Suite::kSplash)
            continue;
        const int threads = k.multithreaded ? 8 : 1;
        kept.push_back(&k);
        for (unsigned psqs : psq_counts) {
            ProcessorConfig cfg = base;
            cfg.storeBuffer.psqCount = psqs;
            runs.push_back(bench::CfgRun{&k, cfg, threads});
        }
    }
    const std::vector<bench::RunResult> results =
        bench::runAll(runs, opts);

    for (std::size_t i = 0; i < kept.size(); ++i) {
        double aipc[4];
        for (int idx = 0; idx < 4; ++idx)
            aipc[idx] = results[i * 4 + idx].aipc;
        std::printf("%-14s %8.2f %8.2f %8.2f %8.2f %9.1f%% %9.1f%%\n",
                    kept[i]->name.c_str(), aipc[0], aipc[1], aipc[2],
                    aipc[3], 100.0 * (aipc[2] / aipc[0] - 1.0),
                    100.0 * (aipc[3] / aipc[2] - 1.0));
        Json row = Json::object();
        row["workload"] = kept[i]->name;
        row["psq0"] = aipc[0];
        row["psq1"] = aipc[1];
        row["psq2"] = aipc[2];
        row["psq4"] = aipc[3];
        row["gain_2v0_pct"] = 100.0 * (aipc[2] / aipc[0] - 1.0);
        row["gain_4v2_pct"] = 100.0 * (aipc[3] / aipc[2] - 1.0);
        report.addRow("psq", std::move(row));
    }
    report.finish();
    return 0;
}
