/**
 * @file
 * Section 3.3.1 store-buffer ablation: partial store queues.
 * Paper: adding PSQs gains 5-20% depending on the application; more
 * than two gains almost nothing (while threatening cycle time).
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);

    ProcessorConfig base = ProcessorConfig::baseline();
    base.memory.l2Bytes = 1 << 20;

    std::printf("Ablation: partial store queues (store decoupling)\n");
    std::printf("paper: PSQs gain 5-20%%; >2 PSQs negligible\n\n");
    std::printf("%-14s %8s %8s %8s %8s %10s %10s\n", "workload",
                "0 PSQ", "1 PSQ", "2 PSQ", "4 PSQ", "2-vs-0", "4-vs-2");
    bench::rule(72);

    const char *mem_heavy[] = {"gzip", "twolf", "radix", "ocean",
                               "djpeg", "art"};
    for (const char *w : mem_heavy) {
        const Kernel &k = findKernel(w);
        if (opts.quick && k.suite == Suite::kSplash)
            continue;
        const int threads = k.multithreaded ? 8 : 1;
        double aipc[4];
        int idx = 0;
        for (unsigned psqs : {0u, 1u, 2u, 4u}) {
            ProcessorConfig cfg = base;
            cfg.storeBuffer.psqCount = psqs;
            aipc[idx++] = bench::runKernelCfg(k, cfg, threads, opts).aipc;
        }
        std::printf("%-14s %8.2f %8.2f %8.2f %8.2f %9.1f%% %9.1f%%\n",
                    w, aipc[0], aipc[1], aipc[2], aipc[3],
                    100.0 * (aipc[2] / aipc[0] - 1.0),
                    100.0 * (aipc[3] / aipc[2] - 1.0));
    }
    return 0;
}
