/**
 * @file
 * Reproduces Figure 8 and the §4.3 network analysis: the distribution
 * of traffic across the interconnect hierarchy for every workload, and
 * for the Splash2 suite at 1/4/16 clusters.
 *
 * Paper's headline numbers: ~40% of traffic stays within a PE/pod, ~52%
 * within a domain, >80% within a cluster (1.5% inter-cluster on
 * multi-cluster machines); operand data is ~80% of messages; mean
 * cluster distance grows 0 -> 2.8 while the distance a message actually
 * travels grows only ~6%.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace ws;

namespace {

struct TrafficRow
{
    double pod = 0;
    double domain = 0;
    double cluster = 0;
    double inter = 0;
    double operand_frac = 0;
    double mean_hops = 0;
    double mean_latency = 0;
    double congestion = 0;
};

TrafficRow
rowFrom(const StatReport &r)
{
    TrafficRow row;
    const double total = r.get("traffic.total");
    if (total <= 0)
        return row;
    auto level = [&](const char *name) {
        return (r.get(std::string("traffic.") + name + ".operand") +
                r.get(std::string("traffic.") + name + ".memory")) /
               total;
    };
    row.pod = level("intra_pod");
    row.domain = level("intra_domain");
    row.cluster = level("intra_cluster");
    row.inter = level("inter_cluster");
    row.operand_frac = r.get("traffic.operand_fraction");
    row.mean_hops = r.get("traffic.mean_hops");
    row.mean_latency = r.get("traffic.mean_latency");
    row.congestion = r.get("traffic.congestion_events");
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    bench::BenchReport report("fig8_traffic", opts);

    auto traffic_row = [](const std::string &workload, const char *cfg,
                          const TrafficRow &row) {
        Json j = Json::object();
        j["workload"] = workload;
        j["config"] = std::string(cfg);
        j["pod_pct"] = 100 * row.pod;
        j["domain_pct"] = 100 * row.domain;
        j["cluster_pct"] = 100 * row.cluster;
        j["grid_pct"] = 100 * row.inter;
        j["operand_pct"] = 100 * row.operand_frac;
        return j;
    };

    std::printf("Figure 8: traffic distribution by hierarchy level\n\n");
    std::printf("%-14s %8s %6s %6s %6s %6s %8s\n", "workload",
                "config", "pod%", "dom%", "clu%", "grid%", "opnd%");
    bench::rule(64);

    // Single-threaded workloads on the baseline cluster.
    for (const Kernel &k : kernelRegistry()) {
        if (k.multithreaded)
            continue;
        if (opts.quick && k.suite == Suite::kSpec && k.name != "gzip")
            continue;
        DesignPoint d{1, 4, 8, 128, 128, 32, 1};
        bench::RunResult res = bench::runKernel(k, d, 1, opts);
        const TrafficRow row = rowFrom(res.report);
        std::printf("%-14s %8s %6.1f %6.1f %6.1f %6.1f %8.1f\n",
                    k.name.c_str(), "C1", 100 * row.pod,
                    100 * row.domain, 100 * row.cluster,
                    100 * row.inter, 100 * row.operand_frac);
        report.addRow("traffic", traffic_row(k.name, "C1", row));
    }

    // Splash at 1 / 4 / 16 clusters.
    struct MachineCase
    {
        const char *label;
        DesignPoint d;
    };
    const MachineCase machines[] = {
        {"C1", {1, 4, 8, 128, 128, 32, 1}},
        {"C4", {4, 4, 8, 128, 128, 32, 2}},
        {"C16", {16, 4, 8, 64, 64, 8, 1}},
    };
    for (const Kernel &k : kernelRegistry()) {
        if (!k.multithreaded)
            continue;
        if (opts.quick && k.name != "fft" && k.name != "ocean")
            continue;
        for (const MachineCase &m : machines) {
            bench::RunResult res =
                bench::runKernelBestThreads(k, m.d, opts);
            const TrafficRow row = rowFrom(res.report);
            std::printf("%-14s %8s %6.1f %6.1f %6.1f %6.1f %8.1f\n",
                        k.name.c_str(), m.label, 100 * row.pod,
                        100 * row.domain, 100 * row.cluster,
                        100 * row.inter, 100 * row.operand_frac);
            report.addRow("traffic", traffic_row(k.name, m.label, row));
        }
    }

    // §4.3 scalability numbers for one representative workload.
    std::printf("\nSection 4.3 scalability (fft):\n");
    std::printf("%-6s %10s %10s %12s %12s\n", "C", "mean hops",
                "pair dist", "msg latency", "congestion");
    bench::rule(56);
    double lat1 = 0.0;
    for (const MachineCase &m : machines) {
        bench::RunResult res = bench::runKernelBestThreads(
            findKernel("fft"), m.d, opts);
        const TrafficRow row = rowFrom(res.report);
        // Mean pairwise cluster distance of the machine itself.
        MeshConfig mc;
        mc.clusters = m.d.clusters;
        TrafficStats tmp;
        MeshNetwork mesh(mc, &tmp);
        if (lat1 == 0.0)
            lat1 = row.mean_latency;
        std::printf("%-6s %10.2f %10.2f %12.1f %12.0f\n", m.label,
                    row.mean_hops, mesh.meanPairDistance(),
                    row.mean_latency, row.congestion);
        Json j = Json::object();
        j["config"] = std::string(m.label);
        j["mean_hops"] = row.mean_hops;
        j["pair_distance"] = mesh.meanPairDistance();
        j["msg_latency"] = row.mean_latency;
        j["congestion"] = row.congestion;
        report.addRow("scalability_fft", std::move(j));
    }
    std::printf("\n(paper: cluster distance 0 -> 2.8 while per-message "
                "distance grows only ~6%%;\n message latency +12%% from "
                "1 to 16 clusters; >98%% of traffic intra-cluster)\n");
    report.finish();
    return 0;
}
