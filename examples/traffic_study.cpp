/**
 * @file
 * Interconnect locality study: run one multithreaded workload on
 * machines of growing size and watch how the traffic distributes over
 * the network hierarchy — the §4.3 experiment as a library consumer
 * would write it.
 *
 *   $ ./build/examples/traffic_study [kernel] [threads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "area/design_space.h"
#include "core/processor.h"
#include "kernels/kernel.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ocean";
    const int threads = argc > 2 ? std::atoi(argv[2]) : 16;
    const Kernel &kernel = findKernel(name);
    if (!kernel.multithreaded) {
        std::fprintf(stderr, "%s is single-threaded; pick a Splash "
                     "kernel\n", name.c_str());
        return 2;
    }

    std::printf("workload: %s, %d threads\n\n", name.c_str(), threads);
    std::printf("%-8s %7s %7s %7s %7s %8s %8s %9s\n", "machine", "pod%",
                "dom%", "clu%", "grid%", "opnd%", "hops", "AIPC");
    for (int i = 0; i < 68; ++i)
        std::putchar('-');
    std::putchar('\n');

    for (std::uint16_t clusters : {1, 4, 16}) {
        DesignPoint d{clusters, 4, 8, 128, 128, 32,
                      static_cast<std::uint16_t>(clusters)};
        KernelParams params;
        params.threads = static_cast<std::uint16_t>(threads);
        DataflowGraph graph = kernel.build(params);
        Processor proc(graph, toProcessorConfig(d));
        proc.run(600'000);

        StatReport r = proc.report();
        const double total = r.get("traffic.total");
        auto pct = [&](const char *level) {
            return 100.0 *
                   (r.get(std::string("traffic.") + level + ".operand") +
                    r.get(std::string("traffic.") + level + ".memory")) /
                   total;
        };
        const double operand_pct =
            100.0 * r.get("traffic.operand_fraction");
        std::printf("C%-7u %6.1f%% %6.1f%% %6.1f%% %6.1f%% %7.1f%% "
                    "%8.2f %9.2f\n", clusters, pct("intra_pod"),
                    pct("intra_domain"), pct("intra_cluster"),
                    pct("inter_cluster"), operand_pct,
                    r.get("traffic.mean_hops"), proc.aipc());
    }
    std::printf("\n(the paper's Figure 8: ~40%% pod, ~52%% domain, >98%% "
                "within a cluster;\n operand data ~80%% of messages)\n");
    return 0;
}
