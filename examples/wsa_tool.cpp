/**
 * @file
 * wsa_tool: command-line assembler/disassembler/runner for WaveScalar
 * assembly (.wsa) files.
 *
 *   wsa_tool disasm <kernel> [threads]   — print a workload as .wsa
 *   wsa_tool run <file.wsa>              — assemble and simulate a file
 *   wsa_tool check <file.wsa>            — assemble + validate only
 *
 * Example session:
 *   $ ./build/examples/wsa_tool disasm rawdaudio > raw.wsa
 *   $ ./build/examples/wsa_tool run raw.wsa
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <memory>

#include "core/processor.h"
#include "core/simulator.h"
#include "core/trace.h"
#include "isa/assembly.h"
#include "isa/interp.h"
#include "kernels/kernel.h"

using namespace ws;

namespace {

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "wsa_tool: cannot open %s\n", path);
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: wsa_tool disasm <kernel> [threads]\n"
                 "       wsa_tool run <file.wsa> [max_cycles] [trace.csv]\n"
                 "       wsa_tool check <file.wsa>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    const std::string mode = argv[1];
    if (mode == "disasm") {
        KernelParams params;
        if (argc > 3)
            params.threads =
                static_cast<std::uint16_t>(std::atoi(argv[3]));
        DataflowGraph g = findKernel(argv[2]).build(params);
        std::fputs(disassemble(g).c_str(), stdout);
        return 0;
    }

    if (mode == "check") {
        DataflowGraph g = assemble(readFile(argv[2]));
        std::printf("%s: OK — %zu instructions (%zu useful), %u threads, "
                    "%zu initial tokens, %zu wave regions\n", argv[2],
                    g.size(), g.usefulSize(), g.numThreads(),
                    g.initialTokens().size(), g.memRegions().size());
        return 0;
    }

    if (mode == "run") {
        DataflowGraph g = assemble(readFile(argv[2]));
        const Cycle max_cycles =
            argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2'000'000;

        // Reference result first, then the cycle-level machine.
        InterpResult ref = interpret(assemble(readFile(argv[2])));
        std::printf("reference: %llu useful instructions, %zu sink "
                    "values\n",
                    static_cast<unsigned long long>(ref.useful),
                    ref.sinkValues.size());

        Processor proc(g, ProcessorConfig::baseline());
        std::ofstream trace_file;
        std::unique_ptr<IntervalTracer> tracer;
        if (argc > 4) {
            trace_file.open(argv[4]);
            tracer = std::make_unique<IntervalTracer>(trace_file, 500);
            proc.attachTracer(tracer.get());
        }
        SimResult res;
        res.completed = proc.run(max_cycles);
        res.cycles = proc.cycle();
        res.aipc = proc.aipc();
        res.useful = proc.usefulExecuted();
        std::printf("simulated: %s in %llu cycles, AIPC %.3f\n",
                    res.completed ? "completed" : "TIMED OUT",
                    static_cast<unsigned long long>(res.cycles),
                    res.aipc);
        if (res.useful != ref.useful) {
            std::printf("WARNING: simulator executed %llu useful vs "
                        "reference %llu\n",
                        static_cast<unsigned long long>(res.useful),
                        static_cast<unsigned long long>(ref.useful));
            return 1;
        }
        return res.completed ? 0 : 1;
    }

    return usage();
}
