/**
 * @file
 * wsa-opt: static dataflow analysis and optimization of WaveScalar
 * assembly (.wsa) files and built-in kernels. Where wsa-lint asks "is
 * this graph legal?", wsa-opt asks "what is it worth, and can it be
 * smaller?": it prints the StaticProfile (critical path, ILP widths,
 * memory chain depths, static AIPC bound) plus WS5xx optimization
 * advisories, and can perform the advised rewrites.
 *
 *   wsa-opt [options] file.wsa...    — analyze assembly files
 *   wsa-opt [options] --kernels     — analyze every registered kernel
 *
 * Options:
 *   --threads=N       kernel build thread count (default 4)
 *   --rewrite=OUT     optimize the single input file and write OUT;
 *                     the rewritten graph must re-verify clean
 *   --optimize        optimize each input (and each kernel under
 *                     --kernels) in memory, reporting rewrite stats;
 *                     fails if the equivalence gate rolled anything back
 *   --verify-equiv    translation-validate every rewrite round with the
 *                     WS8xx symbolic equivalence checker (default ON)
 *   --no-verify-equiv disable the gate (rewrites are applied blindly)
 *   --json-dir=DIR    write a <name>.profile.json artifact per input
 *   --fail-on-advice  exit 1 when any WS5xx advisory fires
 *   --quiet           suppress reports; exit status only
 *
 * Exit status: 0 clean, 1 advisories under --fail-on-advice, a rewrite
 * that failed re-verification, or a WS8xx equivalence rollback; 2 usage
 * or I/O error. On a rollback the WS8xx findings are printed to stderr.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/profile.h"
#include "analyze/rewriter.h"
#include "common/log.h"
#include "isa/assembly.h"
#include "kernels/kernel.h"
#include "verify/verifier.h"

using namespace ws;

namespace {

struct Options
{
    bool quiet = false;
    bool failOnAdvice = false;
    bool optimize = false;
    bool verifyEquiv = true;
    int threads = 4;
    std::string rewriteOut;
    std::string jsonDir;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: wsa-opt [--threads=N] [--rewrite=OUT] "
                 "[--json-dir=DIR]\n"
                 "               [--optimize] [--verify-equiv | "
                 "--no-verify-equiv]\n"
                 "               [--fail-on-advice] [--quiet] "
                 "file.wsa...\n"
                 "       wsa-opt [options] --kernels\n");
    return 2;
}

/** Baseline-machine placed bound: the graph placed with the default
 *  policy on the default geometry, default transit floors. */
BoundBreakdown
baselineBound(const DataflowGraph &g, const StaticProfile &profile)
{
    const Placement placement =
        place(g, PlacementGeometry{}, PlacementPolicy::kDepthFirst);
    const PlacedProfile placed =
        analyzePlacedProfile(g, placement, TransitFloors{});
    return staticAipcBoundDetail(profile, placed, MachineBoundParams{});
}

void
writeJson(const std::string &name, const StaticProfile &profile,
          const BoundBreakdown &bound, const VerifyReport &advice,
          const Options &opt)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.jsonDir, ec);
    if (ec) {
        fatal("wsa-opt: cannot create %s: %s", opt.jsonDir.c_str(),
              ec.message().c_str());
    }
    Json root = profileToJson(profile);
    // Back-compat scalar plus the attributed breakdown.
    root["static_aipc_bound"] = bound.bound;
    root["bound"] = boundToJson(bound);
    root["advice_count"] =
        static_cast<std::uint64_t>(advice.noteCount());
    const std::string path =
        opt.jsonDir + "/" + name + ".profile.json";
    std::ofstream out(path);
    if (!out)
        fatal("wsa-opt: cannot write %s", path.c_str());
    out << root.dump(2) << '\n';
}

/** Analyze one graph; returns true when advisories fired. */
bool
analyzeOne(const std::string &label, const std::string &name,
           const DataflowGraph &g, const Options &opt)
{
    const StaticProfile profile = analyzeGraph(g);
    const BoundBreakdown bound = baselineBound(g, profile);
    const VerifyReport advice = adviseGraph(g);

    if (!opt.quiet) {
        std::printf("== %s ==\n", label.c_str());
        std::fputs(renderProfile(profile).c_str(), stdout);
        std::printf("static AIPC bound (baseline machine): %.3f\n",
                    bound.bound);
        std::fputs(renderBound(bound).c_str(), stdout);
        if (!advice.empty())
            std::fputs(advice.render().c_str(), stdout);
        std::printf("%s: %zu advisories\n", label.c_str(),
                    advice.noteCount());
    }
    if (!opt.jsonDir.empty())
        writeJson(name, profile, bound, advice, opt);
    return !advice.empty();
}

/**
 * Optimize @p g under the equivalence gate (unless disabled); returns
 * true on failure. Reports rollbacks with their WS8xx findings.
 */
bool
optimizeOne(const std::string &label, DataflowGraph &g, const Options &opt)
{
    RewriteOptions ropt;
    ropt.verifyEquiv = opt.verifyEquiv;
    const RewriteStats stats = optimizeGraph(g, ropt);
    if (stats.rollbacks != 0) {
        std::fprintf(stderr,
                     "wsa-opt: %s: equivalence gate rolled back %llu "
                     "round(s):\n%s",
                     label.c_str(),
                     static_cast<unsigned long long>(stats.rollbacks),
                     stats.rollbackDiff.c_str());
        return true;
    }
    const VerifyReport rep = verify(g);
    if (!rep.ok()) {
        std::fprintf(stderr,
                     "wsa-opt: rewrite of %s failed re-verification:\n%s",
                     label.c_str(), rep.render().c_str());
        return true;
    }
    if (!opt.quiet) {
        std::printf("%s: folded %llu, simplified %llu, merged %llu, "
                    "bypassed %llu, removed %llu in %llu rounds "
                    "(%zu insts, verifies clean%s)\n",
                    label.c_str(),
                    static_cast<unsigned long long>(stats.folded),
                    static_cast<unsigned long long>(stats.simplified),
                    static_cast<unsigned long long>(stats.merged),
                    static_cast<unsigned long long>(stats.bypassed),
                    static_cast<unsigned long long>(stats.removed),
                    static_cast<unsigned long long>(stats.rounds),
                    g.size(),
                    opt.verifyEquiv ? ", equivalence proven" : "");
    }
    return false;
}

/** Optimize @p g, re-verify, and write the result as .wsa text. */
bool
rewriteOne(const std::string &label, DataflowGraph g, const Options &opt)
{
    if (optimizeOne(label, g, opt))
        return true;
    std::ofstream out(opt.rewriteOut);
    if (!out) {
        std::fprintf(stderr, "wsa-opt: cannot write %s\n",
                     opt.rewriteOut.c_str());
        std::exit(2);
    }
    out << disassemble(g);
    if (!opt.quiet)
        std::printf("%s: wrote %s\n", label.c_str(), opt.rewriteOut.c_str());
    return false;
}

DataflowGraph
loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "wsa-opt: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return assemble(ss.str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool kernels = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--fail-on-advice") {
            opt.failOnAdvice = true;
        } else if (arg == "--optimize") {
            opt.optimize = true;
        } else if (arg == "--verify-equiv") {
            opt.verifyEquiv = true;
        } else if (arg == "--no-verify-equiv") {
            opt.verifyEquiv = false;
        } else if (arg == "--kernels") {
            kernels = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            opt.threads = std::atoi(arg.c_str() + 10);
            if (opt.threads < 1)
                return usage();
        } else if (arg.rfind("--rewrite=", 0) == 0) {
            opt.rewriteOut = arg.substr(10);
        } else if (arg.rfind("--json-dir=", 0) == 0) {
            opt.jsonDir = arg.substr(11);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (!kernels && files.empty())
        return usage();
    if (!opt.rewriteOut.empty() && (kernels || files.size() != 1)) {
        std::fprintf(stderr,
                     "wsa-opt: --rewrite takes exactly one input file\n");
        return 2;
    }

    bool advised = false;
    bool failed = false;
    try {
        for (const std::string &f : files) {
            DataflowGraph g = loadFile(f);
            const std::string name =
                std::filesystem::path(f).stem().string();
            advised |= analyzeOne(f, name, g, opt);
            if (!opt.rewriteOut.empty())
                failed |= rewriteOne(f, g, opt);
            else if (opt.optimize)
                failed |= optimizeOne(f, g, opt);
        }
        if (kernels) {
            for (const Kernel &k : kernelRegistry()) {
                KernelParams params;
                if (k.multithreaded) {
                    params.threads =
                        static_cast<std::uint16_t>(opt.threads);
                }
                DataflowGraph g = k.build(params);
                advised |= analyzeOne("kernel:" + k.name, k.name, g, opt);
                if (opt.optimize)
                    failed |= optimizeOne("kernel:" + k.name, g, opt);
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsa-opt: %s\n", e.what());
        return 2;
    }
    if (failed)
        return 1;
    return opt.failOnAdvice && advised ? 1 : 0;
}
