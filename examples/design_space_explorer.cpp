/**
 * @file
 * Design-space exploration from the public API: enumerate the paper's
 * candidate WaveScalar designs, evaluate a workload on a user-selected
 * slice of them, and print the Pareto frontier.
 *
 *   $ ./build/examples/design_space_explorer [kernel] [max_designs]
 *
 * e.g. `design_space_explorer fft 12` evaluates the fft kernel on 12
 * designs spread across the area range. This is the Figure-6 experiment
 * in miniature, structured as a library-consumer would write it.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "area/area_model.h"
#include "area/design_space.h"
#include "area/pareto.h"
#include "core/simulator.h"
#include "kernels/kernel.h"

using namespace ws;

int
main(int argc, char **argv)
{
    const std::string kernel_name = argc > 1 ? argv[1] : "fft";
    const std::size_t max_designs =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;

    const Kernel &kernel = findKernel(kernel_name);

    // Enumerate §4.2's candidate set and thin it evenly by area.
    std::vector<DesignPoint> designs = enumerateCandidates();
    std::sort(designs.begin(), designs.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  return AreaModel::totalArea(a) < AreaModel::totalArea(b);
              });
    std::vector<DesignPoint> picked;
    const std::size_t stride =
        std::max<std::size_t>(1, designs.size() / max_designs);
    for (std::size_t i = 0; i < designs.size() && picked.size() <
         max_designs; i += stride) {
        picked.push_back(designs[i]);
    }

    std::printf("evaluating '%s' on %zu of %zu candidate designs\n\n",
                kernel.name.c_str(), picked.size(), designs.size());
    std::printf("%-34s %8s %8s %8s %7s\n", "design", "area", "AIPC",
                "cycles", "threads");
    for (int i = 0; i < 70; ++i)
        std::putchar('-');
    std::putchar('\n');

    std::vector<ParetoPoint> points;
    for (std::size_t i = 0; i < picked.size(); ++i) {
        const DesignPoint &d = picked[i];
        // Thread count: fill the machine's instruction capacity.
        int threads = 1;
        if (kernel.multithreaded) {
            KernelParams probe;
            probe.threads = 2;
            const std::size_t per_thread = kernel.build(probe).size() / 2;
            while (threads * 2 <= 64 &&
                   static_cast<std::uint64_t>(threads) * 2 * per_thread <=
                       d.instCapacity()) {
                threads *= 2;
            }
        }
        KernelParams params;
        params.threads = static_cast<std::uint16_t>(threads);
        DataflowGraph graph = kernel.build(params);

        SimOptions opts;
        opts.maxCycles = 400'000;
        SimResult res = runSimulation(graph, toProcessorConfig(d), opts);

        std::printf("%-34s %8.1f %8.2f %8llu %7d%s\n",
                    d.describe().c_str(), AreaModel::totalArea(d),
                    res.aipc,
                    static_cast<unsigned long long>(res.cycles), threads,
                    res.completed ? "" : "  (timeout)");
        points.push_back(
            ParetoPoint{AreaModel::totalArea(d), res.aipc, i});
    }

    std::printf("\nPareto-optimal designs for '%s':\n",
                kernel.name.c_str());
    for (std::size_t idx : paretoFront(points)) {
        std::printf("  %8.1f mm2  %6.2f AIPC  %s\n", points[idx].area,
                    points[idx].perf,
                    picked[points[idx].tag].describe().c_str());
    }
    return 0;
}
