/**
 * @file
 * wsa-lint: static verification of WaveScalar assembly (.wsa) files and
 * built-in kernels, reporting *all* findings instead of dying on the
 * first (contrast `wsa_tool check`, which is the strict load gate).
 *
 *   wsa-lint [options] file.wsa...     — lint assembly files
 *   wsa-lint [options] --kernels      — lint every registered kernel
 *   wsa-lint --equiv a.wsa b.wsa      — prove the two graphs observably
 *                                       equivalent (WS8xx on divergence)
 *   wsa-lint --explain                — print the diagnostic-code table
 *
 * Options:
 *   --strict      exit nonzero on warnings as well as errors
 *   --no-config   structural/wave/flow passes only (no capacity lint)
 *   --analyze     also report WS5xx optimization advisories and the
 *                 static profile summary (never affects exit status;
 *                 wsa-opt is the full analyzer)
 *   --check       also *run* each graph briefly on the baseline machine
 *                 with the wscheck runtime invariant layer at level
 *                 full, reporting any WS6xx violations (and failing on
 *                 them) — the dynamic complement of the static passes
 *   --quiet       suppress findings; exit status only
 *
 * Exit status: 0 clean, 1 findings at the failing severity, 2 usage or
 * I/O error. Parse (syntax) errors count as findings.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/equiv.h"
#include "analyze/profile.h"
#include "analyze/rewriter.h"
#include "common/log.h"
#include "core/config.h"
#include "core/simulator.h"
#include "isa/assembly.h"
#include "kernels/kernel.h"
#include "verify/verifier.h"

using namespace ws;

namespace {

struct Options
{
    bool strict = false;
    bool useConfig = true;
    bool analyze = false;
    bool check = false;
    bool quiet = false;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: wsa-lint [--strict] [--no-config] [--analyze] "
                 "[--check] [--quiet] file.wsa...\n"
                 "       wsa-lint [options] --kernels\n"
                 "       wsa-lint [--quiet] --equiv a.wsa b.wsa\n"
                 "       wsa-lint --explain\n");
    return 2;
}

int
explainCodes()
{
    std::printf("%-6s  %-8s  %s\n", "code", "severity", "meaning");
    for (DiagCode code : allDiagCodes()) {
        const char *sev = "error";
        if (diagSeverity(code) == Severity::kWarning)
            sev = "warning";
        else if (diagSeverity(code) == Severity::kNote)
            sev = "note";
        std::printf("%-6s  %-8s  %s\n", diagCodeLabel(code).c_str(), sev,
                    diagCodeSummary(code));
    }
    return 0;
}

/** Lint one already-parsed graph; returns the failing-severity count. */
bool
lintGraph(const std::string &label, const DataflowGraph &g,
          const Options &opt)
{
    const VerifyReport rep = opt.useConfig
                                 ? verify(g, ProcessorConfig::baseline())
                                 : verify(g);
    const bool failed =
        !rep.ok() || (opt.strict && rep.warningCount() != 0);
    if (!opt.quiet && !rep.empty())
        std::fputs(rep.render().c_str(), stdout);
    if (opt.analyze && !opt.quiet) {
        // Advisory-only companion pass; never changes the exit status.
        const VerifyReport advice = adviseGraph(g);
        if (!advice.empty())
            std::fputs(advice.render().c_str(), stdout);
        const StaticProfile p = analyzeGraph(g);
        const Placement placement =
            place(g, PlacementGeometry{}, PlacementPolicy::kDepthFirst);
        const PlacedProfile placed =
            analyzePlacedProfile(g, placement, TransitFloors{});
        const BoundBreakdown bound =
            staticAipcBoundDetail(p, placed, MachineBoundParams{});
        std::printf("%s: %llu useful / %llu insts, crit path %llu, "
                    "peak width %llu, bound %.3f aipc (%s), "
                    "%zu advisories\n",
                    label.c_str(),
                    static_cast<unsigned long long>(p.mix.useful),
                    static_cast<unsigned long long>(p.mix.total),
                    static_cast<unsigned long long>(p.critPathLatency),
                    static_cast<unsigned long long>(p.peakWidth),
                    bound.bound, boundTermName(bound.binding),
                    advice.noteCount());
    }
    bool check_failed = false;
    if (opt.check && rep.ok()) {
        // Dynamic pass: run the graph on the baseline machine with the
        // runtime invariant layer at level full. Only statically-clean
        // graphs run (the Processor refuses the others anyway).
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.checkLevel = CheckLevel::kFull;
        SimOptions sim;
        sim.maxCycles = 200'000;
        const SimResult res = runSimulation(g, cfg, sim);
        check_failed = res.checkViolations != 0;
        if (check_failed && !opt.quiet)
            std::fputs(res.checkLog.c_str(), stdout);
    }
    if (!opt.quiet) {
        std::printf("%s: %s (%s)\n", label.c_str(),
                    (failed || check_failed) ? "FAIL" : "ok",
                    rep.summary().c_str());
    }
    return failed || check_failed;
}

bool
lintFile(const std::string &path, const Options &opt)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "wsa-lint: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    try {
        const DataflowGraph g = parseWsa(ss.str());
        return lintGraph(path, g, opt);
    } catch (const FatalError &e) {
        // Syntax-level rejects come through fatal(); report and fail.
        if (!opt.quiet) {
            std::printf("%s: parse error: %s\n", path.c_str(), e.what());
            std::printf("%s: FAIL (unparseable)\n", path.c_str());
        }
        return true;
    }
}

bool
lintKernels(const Options &opt)
{
    bool failed = false;
    for (const Kernel &k : kernelRegistry()) {
        KernelParams params;
        if (k.multithreaded)
            params.threads = 4;
        failed |= lintGraph("kernel:" + k.name, k.build(params), opt);
    }
    return failed;
}

DataflowGraph
loadGraph(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "wsa-lint: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        return parseWsa(ss.str());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsa-lint: %s: parse error: %s\n",
                     path.c_str(), e.what());
        std::exit(2);
    }
}

/** --equiv mode: prove two assembly files observably equivalent. */
int
equivMode(const std::string &pathA, const std::string &pathB,
          const Options &opt)
{
    const DataflowGraph a = loadGraph(pathA);
    const DataflowGraph b = loadGraph(pathB);
    const EquivResult res = checkEquivalence(a, b);
    if (!opt.quiet) {
        if (!res.report.empty())
            std::fputs(res.report.render().c_str(), stdout);
        std::printf("%s vs %s: %s (%llu entities, %llu value classes, "
                    "%llu support classes, %llu iterations)\n",
                    pathA.c_str(), pathB.c_str(),
                    res.equivalent() ? "equivalent" : "NOT equivalent",
                    static_cast<unsigned long long>(res.stats.entities),
                    static_cast<unsigned long long>(res.stats.valueClasses),
                    static_cast<unsigned long long>(
                        res.stats.supportClasses),
                    static_cast<unsigned long long>(res.stats.iterations));
    }
    return res.equivalent() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool kernels = false;
    bool equiv = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--equiv") {
            equiv = true;
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--no-config") {
            opt.useConfig = false;
        } else if (arg == "--analyze") {
            opt.analyze = true;
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--kernels") {
            kernels = true;
        } else if (arg == "--explain") {
            return explainCodes();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (equiv) {
        if (kernels || files.size() != 2) {
            std::fprintf(stderr,
                         "wsa-lint: --equiv takes exactly two files\n");
            return 2;
        }
        return equivMode(files[0], files[1], opt);
    }
    if (!kernels && files.empty())
        return usage();

    bool failed = false;
    for (const std::string &f : files)
        failed |= lintFile(f, opt);
    if (kernels)
        failed |= lintKernels(opt);
    return failed ? 1 : 0;
}
