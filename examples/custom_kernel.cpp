/**
 * @file
 * Writing a custom workload: a blocked 2D heat-diffusion kernel built
 * with GraphBuilder (multithreaded, with wave-ordered memory), then
 * tuned with the Table-4 methodology (k_opt / u_opt) and checked
 * against the reference interpreter.
 *
 *   $ ./build/examples/custom_kernel [threads]
 */

#include <cstdio>
#include <cstdlib>

#include "area/tuning.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"

using namespace ws;

namespace {

/** Per-thread strips of a (threads*8) x 32 grid, 5-point relaxation. */
DataflowGraph
buildHeat(std::uint16_t threads, int iters)
{
    GraphBuilder b("heat", threads);
    constexpr int kCols = 32;
    constexpr int kRowsPer = 8;
    const std::size_t rows =
        static_cast<std::size_t>(threads) * kRowsPer;
    const Addr grid = b.alloc(rows * kCols * 8);
    // A hot spot in the middle of the grid.
    for (std::size_t r = 0; r < rows; ++r) {
        for (int c = 0; c < kCols; ++c) {
            const double v = (r == rows / 2 && c == kCols / 2) ? 100.0
                                                               : 0.0;
            b.initMem(grid + 8 * (r * kCols + c), fromDouble(v));
        }
    }

    for (ThreadId t = 0; t < threads; ++t) {
        b.beginThread(t);
        auto i0 = b.param(0);
        auto heat0 = b.param(fromDouble(0.0));
        GraphBuilder::Loop loop = b.beginLoop({i0, heat0});
        auto i = loop.vars[0];
        auto heat = loop.vars[1];
        // One interior point per iteration, sweeping the strip.
        auto lin = b.emit(Opcode::kRemi, {i},
                          kRowsPer * (kCols - 2));
        auto r = b.addi(b.emit(Opcode::kDivi, {lin}, kCols - 2),
                        t * kRowsPer);
        auto c = b.addi(b.emit(Opcode::kRemi, {lin}, kCols - 2), 1);
        auto center = b.add(b.muli(r, kCols), c);
        auto addr_of = [&](GraphBuilder::Node idx) {
            return b.addi(b.shli(idx, 3), static_cast<Value>(grid));
        };
        auto vc = b.load(addr_of(center));
        auto vn = b.load(addr_of(b.subi(center, kCols)));
        auto vs = b.load(addr_of(b.addi(center, kCols)));
        auto vw = b.load(addr_of(b.subi(center, 1)));
        auto ve = b.load(addr_of(b.addi(center, 1)));
        auto quarter = b.lit(fromDouble(0.25), vc);
        auto avg = b.fmul(b.fadd(b.fadd(vn, vs), b.fadd(vw, ve)),
                          quarter);
        b.store(addr_of(center), avg);
        heat = b.fadd(heat, avg);
        auto i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, heat}, b.lti(i_next, iters));
        b.sink(loop.exits[1], 1);
        b.endThread();
    }
    return b.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto threads =
        static_cast<std::uint16_t>(argc > 1 ? std::atoi(argv[1]) : 4);

    // 1. Build, and sanity-check against the reference interpreter.
    DataflowGraph graph = buildHeat(threads, 64);
    std::printf("heat kernel: %zu static instructions, %u threads\n",
                graph.size(), graph.numThreads());
    InterpResult ref = interpret(buildHeat(threads, 64));
    std::printf("reference interpreter: %llu useful instructions, "
                "completed=%d\n",
                static_cast<unsigned long long>(ref.useful),
                ref.completed);

    // 2. Run on the baseline machine.
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    SimResult res = runSimulation(graph, cfg);
    std::printf("simulator: %llu cycles, AIPC %.2f, completed=%d\n",
                static_cast<unsigned long long>(res.cycles), res.aipc,
                res.completed);
    if (res.useful != ref.useful) {
        std::printf("MISMATCH vs interpreter (%llu vs %llu)!\n",
                    static_cast<unsigned long long>(res.useful),
                    static_cast<unsigned long long>(ref.useful));
        return 1;
    }

    // 3. Tune the matching table for this kernel (Table-4 methodology).
    TuningOptions topts;
    topts.maxCycles = 400'000;
    TuningResult tuned = tuneMatchingTable(buildHeat(threads, 64), cfg,
                                           topts);
    std::printf("matching-table tuning: k_opt=%u u_opt=%u "
                "virtualization ratio=%.2f\n", tuned.kopt, tuned.uopt,
                tuned.virtRatio);
    std::printf("=> a machine for this kernel wants M/V >= %.2f\n",
                tuned.virtRatio);
    return 0;
}
