/**
 * @file
 * Quickstart: build a small dataflow program with GraphBuilder, run it
 * on the paper's baseline WaveScalar processor, and read the results.
 *
 *   $ ./build/examples/quickstart
 *
 * The program computes dot = Σ a[i]*b[i] over two 64-element arrays in
 * a single dataflow loop, then prints performance and traffic counters.
 */

#include <cstdio>

#include "core/processor.h"
#include "isa/graph_builder.h"

using namespace ws;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Describe the program as a dataflow graph.
    // ------------------------------------------------------------------
    GraphBuilder b("dot-product");

    constexpr int kN = 64;
    const Addr a = b.alloc(kN * 8);
    const Addr bb = b.alloc(kN * 8);
    for (int i = 0; i < kN; ++i) {
        b.initMem(a + 8 * i, i);          // a[i] = i
        b.initMem(bb + 8 * i, kN - i);    // b[i] = N - i
    }

    b.beginThread(0);
    auto i0 = b.param(0);                  // Loop induction variable.
    auto acc0 = b.param(0);                // Accumulator.
    GraphBuilder::Loop loop = b.beginLoop({i0, acc0});
    {
        auto i = loop.vars[0];
        auto acc = loop.vars[1];
        auto av = b.load(b.addi(b.shli(i, 3), static_cast<Value>(a)));
        auto bv = b.load(b.addi(b.shli(i, 3), static_cast<Value>(bb)));
        auto acc_next = b.add(acc, b.mul(av, bv));
        auto i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, acc_next}, b.lti(i_next, kN));
    }
    // Store the result where we can find it, and declare completion.
    const Addr result = b.alloc(8);
    auto res_addr = b.lit(static_cast<Value>(result), loop.exits[0]);
    b.store(res_addr, loop.exits[1]);
    b.sink(loop.exits[1], 1);
    b.endThread();

    DataflowGraph graph = b.finish();
    std::printf("program: %zu static instructions (%zu useful)\n",
                graph.size(), graph.usefulSize());

    // ------------------------------------------------------------------
    // 2. Build the paper's baseline machine and run.
    // ------------------------------------------------------------------
    ProcessorConfig cfg = ProcessorConfig::baseline();  // Table 1.
    Processor proc(graph, cfg);
    const bool done = proc.run(/*max_cycles=*/100000);

    // ------------------------------------------------------------------
    // 3. Inspect the results.
    // ------------------------------------------------------------------
    Value expect = 0;
    for (int i = 0; i < kN; ++i)
        expect += static_cast<Value>(i) * (kN - i);

    std::printf("completed: %s in %llu cycles\n", done ? "yes" : "NO",
                static_cast<unsigned long long>(proc.cycle()));
    std::printf("dot product = %lld (expected %lld)\n",
                static_cast<long long>(proc.memory().read(result)),
                static_cast<long long>(expect));
    std::printf("AIPC = %.3f\n\n", proc.aipc());

    std::printf("full statistics:\n%s",
                proc.report().toString().c_str());
    return done &&
           proc.memory().read(result) == expect ? 0 : 1;
}
