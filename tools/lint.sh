#!/usr/bin/env sh
# Build-independent lint entry point: run whichever of clang-format,
# clang-tidy, and wsa-lint are available, and skip (with a notice) the
# ones that are not, so the script works both in the minimal gcc-only
# container and in a full clang dev environment.
#
#   tools/lint.sh [build-dir]      (default build dir: ./build)
#
# Exit status is nonzero when any tool that DID run found a problem.
set -u

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-$repo/build}
status=0

sources=$(find "$repo/src" "$repo/tests" "$repo/examples" "$repo/bench" \
              -name '*.cc' -o -name '*.cpp' -o -name '*.h' 2>/dev/null)

if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (dry run) =="
    # shellcheck disable=SC2086 -- word splitting over file names wanted.
    clang-format --dry-run --Werror $sources || status=1
else
    echo "-- clang-format not installed; skipping format check"
fi

if command -v clang-tidy >/dev/null 2>&1; then
    if [ -f "$build/compile_commands.json" ]; then
        echo "== clang-tidy =="
        # shellcheck disable=SC2086
        clang-tidy -p "$build" --quiet $sources || status=1
        # The static-analysis, runtime-checking, clocking, sweep,
        # placement, and area subsystems hold themselves to a stricter
        # bar: any clang-tidy finding there is an error, not a warning.
        # (clock is a file pair inside src/core, not a directory, so it
        # is listed explicitly.)
        strict=$(find "$repo/src/analyze" "$repo/src/verify" \
                     "$repo/src/check" "$repo/src/driver" \
                     "$repo/src/place" "$repo/src/area" \
                     -name '*.cc' -o -name '*.h' 2>/dev/null)
        strict="$strict
$repo/src/core/clock.cc
$repo/src/core/clock.h"
        echo "== clang-tidy (strict: src/analyze src/verify" \
             "src/check src/driver src/place src/area src/core/clock) =="
        # shellcheck disable=SC2086
        clang-tidy -p "$build" --quiet --warnings-as-errors='*' \
            $strict || status=1
    else
        echo "-- no $build/compile_commands.json; configure first" \
             "(cmake -B build -S .); skipping clang-tidy"
    fi
else
    echo "-- clang-tidy not installed; skipping static analysis"
fi

if [ -x "$build/examples/wsa-lint" ]; then
    echo "== wsa-lint =="
    "$build/examples/wsa-lint" --strict --kernels --quiet \
        "$repo/tests/fixtures/clean_pipeline.wsa" || status=1
    # The seeded-bad fixtures must FAIL; a clean exit is the defect.
    for bad in "$repo"/tests/fixtures/bad_*.wsa; do
        if "$build/examples/wsa-lint" --quiet "$bad"; then
            echo "lint.sh: $bad unexpectedly passed wsa-lint" >&2
            status=1
        fi
    done
    # Equivalence fixtures: the hand-optimized twin must prove
    # equivalent, and every seeded mutant must be rejected with a WS8xx.
    echo "== wsa-lint --equiv =="
    "$build/examples/wsa-lint" --equiv --quiet \
        "$repo/tests/fixtures/equiv_base.wsa" \
        "$repo/tests/fixtures/equiv_opt_good.wsa" || status=1
    for mutant in wrong_const swapped_ops reordered_chain dropped_sink; do
        if "$build/examples/wsa-lint" --equiv --quiet \
               "$repo/tests/fixtures/equiv_base.wsa" \
               "$repo/tests/fixtures/equiv_$mutant.wsa"; then
            echo "lint.sh: equiv_$mutant.wsa unexpectedly proved" \
                 "equivalent" >&2
            status=1
        fi
    done
else
    echo "-- $build/examples/wsa-lint not built; skipping graph lint"
fi

if [ -x "$build/examples/wsa-opt" ]; then
    echo "== wsa-opt =="
    # The already-optimal fixture must be advisory-free...
    "$build/examples/wsa-opt" --fail-on-advice --quiet \
        "$repo/tests/fixtures/opt_optimal.wsa" || status=1
    # ...and every seeded WS5xx fixture must trip --fail-on-advice.
    for seeded in opt_foldable opt_dead_node opt_copy_chain; do
        if "$build/examples/wsa-opt" --fail-on-advice --quiet \
               "$repo/tests/fixtures/$seeded.wsa"; then
            echo "lint.sh: $seeded.wsa produced no WS5xx advisory" >&2
            status=1
        fi
    done
else
    echo "-- $build/examples/wsa-opt not built; skipping advisory check"
fi

exit $status
