/**
 * @file
 * wsa-serve: batched sweep service over the persistent simulation
 * store — the serve-heavy-traffic front-end of the sweep stack.
 *
 *   wsa-serve [options] < request.json > results.ndjson
 *
 * Reads ONE batched sweep request (JSON object, schema below), shards
 * the points across SweepEngine workers that share the two-tier result
 * cache (memory + optional --cache-dir persistent store), and streams
 * results as NDJSON: one line per point, in submission order, followed
 * by a summary line. Repeat configurations — within the batch, across
 * batches, or across any processes sharing the same store — are O(1)
 * record lookups instead of simulations.
 *
 * Request schema (all fields but "requests" optional):
 *
 *   {
 *     "cache_dir": "simstore",      // --cache-dir wins over this
 *     "jobs": 8,                    // --jobs wins over this
 *     "include_report": false,      // embed full StatReport per line
 *     "requests": [
 *       { "kernel": "fft",          // registry name (required)
 *         "threads": 4, "scale": 1, "seed": 1,
 *         "max_cycles": 600000,     // bench harness default
 *         "config": {               // omitted knobs = Table-1 baseline
 *           "clusters": 1, "domains_per_cluster": 4,
 *           "pes_per_domain": 8,
 *           "matching_entries": 128, "matching_ways": 2,
 *           "matching_banks": 4, "inst_store_entries": 128,
 *           "k": 4, "pod_bypass": true, "relax_limits": false,
 *           "seed": 1, "always_tick": false,
 *           "reference_core": false, "check": "off" } } ] }
 *
 * Defaults mirror bench/bench_util's full-run values, and the cache
 * key is built from the same kernel fingerprint and config
 * fingerprint the harnesses use — so a store warmed by wsa-serve
 * serves the harnesses and vice versa.
 *
 * Response: per-point lines
 *
 *   {"index":0,"kernel":"fft","threads":4,"source":"disk",
 *    "completed":true,"cycles":123,"useful":456,"aipc":3.7}
 *
 * ("source" is memory | disk | simulated; with include_report the
 * line gains "result", the exact sim_io record) and a final
 *
 *   {"summary":{"requests":N,"simulated":n,"memory_hits":n,
 *               "disk_hits":n,"wall_ms":x,"cache_dir":"..."}}
 *
 * Exit status: 0 ok, 1 --assert-no-sim violated (a CI warm-pass ran
 * something), 2 usage/request error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "core/config.h"
#include "core/sim_io.h"
#include "core/simulator.h"
#include "driver/sweep_engine.h"
#include "kernels/kernel.h"

using namespace ws;

namespace {

struct Options
{
    std::string cacheDir;
    std::string inPath;   ///< Empty = stdin.
    std::string outPath;  ///< Empty = stdout.
    unsigned jobs = 0;    ///< 0 = take from request / hardware.
    bool quiet = false;
    bool assertNoSim = false;  ///< Exit 1 if anything simulated
                               ///  (CI warm-store assertion).
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: wsa-serve [--cache-dir=PATH] [--jobs=N] "
                 "[--in=FILE] [--out=FILE] [--quiet] "
                 "[--assert-no-sim]\n"
                 "reads one batched sweep request (JSON) from --in "
                 "(default stdin),\nstreams NDJSON results to --out "
                 "(default stdout); see the file header\nfor the "
                 "request schema\n");
    return 2;
}

/** Required number with a default: requests are data, so a malformed
 *  field is a fatal() request error, not a silent fallback. */
double
numberOr(const Json &obj, const std::string &key, double fallback)
{
    const Json *f = obj.find(key);
    if (f == nullptr)
        return fallback;
    if (f->type() != Json::Type::kNumber)
        fatal("wsa-serve: field \"%s\" must be a number", key.c_str());
    return f->asNumber();
}

bool
boolOr(const Json &obj, const std::string &key, bool fallback)
{
    const Json *f = obj.find(key);
    if (f == nullptr)
        return fallback;
    if (f->type() != Json::Type::kBool)
        fatal("wsa-serve: field \"%s\" must be a bool", key.c_str());
    return f->asBool();
}

/** Build a ProcessorConfig from the request's "config" object.
 *  Unknown keys are fatal — a typo must not silently run the
 *  baseline machine and cache it under the wrong name. */
ProcessorConfig
configFromJson(const Json *j)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    if (j == nullptr)
        return cfg;
    if (!j->isObject())
        fatal("wsa-serve: \"config\" must be an object");
    for (const auto &[key, value] : j->fields()) {
        if (key == "clusters") {
            cfg.clusters = static_cast<std::uint16_t>(value.asNumber());
        } else if (key == "domains_per_cluster") {
            cfg.domainsPerCluster =
                static_cast<std::uint16_t>(value.asNumber());
        } else if (key == "pes_per_domain") {
            cfg.pesPerDomain =
                static_cast<std::uint16_t>(value.asNumber());
        } else if (key == "matching_entries") {
            cfg.pe.matchingEntries =
                static_cast<unsigned>(value.asNumber());
        } else if (key == "matching_ways") {
            cfg.pe.matchingWays =
                static_cast<unsigned>(value.asNumber());
        } else if (key == "matching_banks") {
            cfg.pe.matchingBanks =
                static_cast<unsigned>(value.asNumber());
        } else if (key == "inst_store_entries") {
            cfg.pe.instStoreEntries =
                static_cast<unsigned>(value.asNumber());
        } else if (key == "k") {
            cfg.pe.k = static_cast<unsigned>(value.asNumber());
        } else if (key == "pod_bypass") {
            cfg.pe.podBypass = value.asBool();
        } else if (key == "relax_limits") {
            cfg.relaxLimits = value.asBool();
        } else if (key == "seed") {
            cfg.seed = static_cast<std::uint64_t>(value.asNumber());
        } else if (key == "always_tick") {
            cfg.alwaysTick = value.asBool();
        } else if (key == "reference_core") {
            cfg.referenceCore = value.asBool();
        } else if (key == "check") {
            if (value.type() != Json::Type::kString ||
                !parseCheckLevel(value.asString().c_str(),
                                 &cfg.checkLevel)) {
                fatal("wsa-serve: bad \"check\" level (want off, "
                      "cheap, or full)");
            }
        } else {
            fatal("wsa-serve: unknown config field \"%s\"",
                  key.c_str());
        }
    }
    return cfg;
}

/** Graphs shared across the batch: N requests against one
 *  (kernel, threads, scale, seed) program build it once. */
std::shared_ptr<const DataflowGraph>
cachedGraph(const Kernel &kernel, const KernelParams &params)
{
    using GraphKey = std::tuple<std::string, std::uint16_t,
                                std::uint32_t, std::uint64_t>;
    static std::map<GraphKey, std::shared_ptr<const DataflowGraph>> cache;
    const GraphKey key{kernel.name, params.threads, params.scale,
                       params.seed};
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto graph =
        std::make_shared<const DataflowGraph>(kernel.build(params));
    cache.emplace(key, graph);
    return graph;
}

const char *
tierName(SimCache::Tier tier)
{
    switch (tier) {
      case SimCache::Tier::kMemory: return "memory";
      case SimCache::Tier::kDisk: return "disk";
      case SimCache::Tier::kNone: return "simulated";
    }
    return "?";
}

struct ServeJob
{
    std::string kernel;
    int threads = 1;
    SimJob job;
};

int
serve(const Options &opt)
{
    // --- Read the request. ---
    std::string text;
    if (opt.inPath.empty()) {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        std::ifstream in(opt.inPath, std::ios::binary);
        if (!in)
            fatal("wsa-serve: cannot read %s", opt.inPath.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    bool ok = false;
    const Json request = Json::parse(text, &ok);
    if (!ok || !request.isObject())
        fatal("wsa-serve: request is not a JSON object");

    const Json *requests = request.find("requests");
    if (requests == nullptr || !requests->isArray())
        fatal("wsa-serve: request needs a \"requests\" array");
    const bool include_report =
        boolOr(request, "include_report", false);

    std::string cache_dir = opt.cacheDir;
    if (cache_dir.empty()) {
        const Json *d = request.find("cache_dir");
        if (d != nullptr && d->type() == Json::Type::kString)
            cache_dir = d->asString();
    }
    unsigned jobs = opt.jobs;
    if (jobs == 0)
        jobs = static_cast<unsigned>(numberOr(request, "jobs", 0));

    // --- Build the jobs (fail-fast before running anything). ---
    std::vector<ServeJob> batch;
    batch.reserve(requests->size());
    for (const Json &req : requests->items()) {
        if (!req.isObject())
            fatal("wsa-serve: each request must be an object");
        const Json *name = req.find("kernel");
        if (name == nullptr || name->type() != Json::Type::kString)
            fatal("wsa-serve: each request needs a \"kernel\" name");
        const Kernel &kernel = findKernel(name->asString());

        KernelParams params;
        params.threads =
            static_cast<std::uint16_t>(numberOr(req, "threads", 1));
        params.scale =
            static_cast<std::uint32_t>(numberOr(req, "scale", 1));
        params.seed =
            static_cast<std::uint64_t>(numberOr(req, "seed", 1));

        ServeJob sj;
        sj.kernel = kernel.name;
        sj.threads = params.threads;
        sj.job.graph = cachedGraph(kernel, params);
        sj.job.cfg = configFromJson(req.find("config"));
        // Processor wires the memory/mesh cluster counts from the
        // top level; mirror that before validating a scaled config.
        sj.job.cfg.memory.clusters = sj.job.cfg.clusters;
        sj.job.cfg.mesh.clusters = sj.job.cfg.clusters;
        sj.job.cfg.validate();
        sj.job.maxCycles = static_cast<Cycle>(
            numberOr(req, "max_cycles", 600'000));
        sj.job.graphFp = kernelFingerprint(kernel, params);
        batch.push_back(std::move(sj));
    }

    // --- Run, sharded into chunks so results stream out as the
    //     engine finishes them rather than all at the end. ---
    SweepEngine::Options eopts;
    eopts.jobs = jobs;
    eopts.label = "wsa-serve";
    eopts.progress = !opt.quiet;
    eopts.cacheDir = cache_dir;
    SweepEngine engine(eopts);

    std::ofstream out_file;
    if (!opt.outPath.empty()) {
        out_file.open(opt.outPath, std::ios::binary | std::ios::trunc);
        if (!out_file)
            fatal("wsa-serve: cannot write %s", opt.outPath.c_str());
    }
    std::ostream &out = opt.outPath.empty() ? std::cout : out_file;

    const std::size_t chunk_size =
        std::max<std::size_t>(16, std::size_t{4} * engine.jobs());
    for (std::size_t begin = 0; begin < batch.size();
         begin += chunk_size) {
        const std::size_t end =
            std::min(batch.size(), begin + chunk_size);
        std::vector<SimJob> jobs_chunk;
        std::vector<SimCache::Tier> tiers;
        jobs_chunk.reserve(end - begin);
        tiers.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            // Provenance label: where this point will be served from.
            tiers.push_back(engine.cache().probe(
                SimCache::Key{batch[i].job.graphFp,
                              batch[i].job.cfg.fingerprint(),
                              batch[i].job.maxCycles}));
            jobs_chunk.push_back(batch[i].job);
        }
        const std::vector<SimResult> results = engine.run(jobs_chunk);
        for (std::size_t i = begin; i < end; ++i) {
            const SimResult &r = results[i - begin];
            Json line = Json::object();
            line["index"] = static_cast<std::uint64_t>(i);
            line["kernel"] = batch[i].kernel;
            line["threads"] = batch[i].threads;
            line["source"] = tierName(tiers[i - begin]);
            line["completed"] = r.completed;
            line["cycles"] = static_cast<std::uint64_t>(r.cycles);
            line["useful"] = static_cast<std::uint64_t>(r.useful);
            line["aipc"] = r.aipc;
            if (include_report)
                line["result"] = simResultToJson(r);
            out << line.dump() << '\n';
        }
        out.flush();
    }

    // --- Summary line. ---
    const SweepStats &stats = engine.stats();
    const SimCacheStats cs = engine.cache().stats();
    Json summary_line = Json::object();
    Json &summary = summary_line["summary"];
    summary["requests"] = static_cast<std::uint64_t>(batch.size());
    summary["simulated"] = static_cast<std::uint64_t>(stats.simulated);
    summary["memory_hits"] = static_cast<std::uint64_t>(cs.memoryHits);
    summary["disk_hits"] = static_cast<std::uint64_t>(cs.diskHits);
    summary["disk_writes"] = static_cast<std::uint64_t>(cs.diskWrites);
    summary["disk_rejected"] =
        static_cast<std::uint64_t>(cs.diskRejected);
    summary["wall_ms"] = stats.wallMs;
    summary["cache_dir"] = cache_dir;
    out << summary_line.dump() << '\n';
    out.flush();

    if (!opt.quiet) {
        std::fprintf(stderr,
                     "[wsa-serve] %zu requests: %llu simulated, "
                     "%llu memory hits, %llu disk hits (%.0f ms sim "
                     "wall)\n",
                     batch.size(),
                     static_cast<unsigned long long>(stats.simulated),
                     static_cast<unsigned long long>(cs.memoryHits),
                     static_cast<unsigned long long>(cs.diskHits),
                     stats.wallMs);
    }
    if (opt.assertNoSim && stats.simulated != 0) {
        std::fprintf(stderr,
                     "[wsa-serve] --assert-no-sim: %llu points "
                     "simulated instead of replaying from %s\n",
                     static_cast<unsigned long long>(stats.simulated),
                     cache_dir.empty() ? "(no cache dir)"
                                       : cache_dir.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--cache-dir=", 0) == 0) {
            opt.cacheDir = arg.substr(12);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        } else if (arg.rfind("--in=", 0) == 0) {
            opt.inPath = arg.substr(5);
        } else if (arg.rfind("--out=", 0) == 0) {
            opt.outPath = arg.substr(6);
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--assert-no-sim") {
            opt.assertNoSim = true;
        } else {
            return usage();
        }
    }
    setQuiet(true);
    try {
        return serve(opt);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
