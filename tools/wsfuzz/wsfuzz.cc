/**
 * @file
 * wsfuzz: differential fuzzing for the simulator.
 *
 * Each iteration builds a random (but verifier-clean) dataflow program
 * with the GraphBuilder, draws a random legal machine configuration,
 * and runs the same point several ways that are contractually
 * byte-identical:
 *
 *   parity        gated clocking vs --always-tick (the clocking oracle)
 *   core          the SoA event core vs --reference-core (the polled
 *                 cycle core) — byte-identical SimResult required
 *   transparency  wscheck at level full vs checking off (checking must
 *                 never perturb a statistic)
 *   invariants    the checked runs must report zero WS6xx violations
 *   bound         measured AIPC <= the placement-resolved static AIPC
 *                 bound (the --prune-static soundness contract: a
 *                 single violation means the pruner could discard a
 *                 group's true winner)
 *   engine        every 8 iterations the accumulated points re-run
 *                 through the SweepEngine at --jobs=1 and --jobs=N,
 *                 which must agree with each other byte for byte
 *   rewrite       the program built at 1, 2, and 4 threads is pushed
 *                 through optimizeGraph() under the WS8xx equivalence
 *                 gate: zero rollbacks, an independent equivalence
 *                 proof of original vs optimized, and byte-identical
 *                 observable behavior (sorted sink values + final
 *                 memory) under the reference interpreter
 *
 * Any divergence (or a program that fails to complete) is a finding:
 * it is printed, written to a repro file in --out (the generator is
 * seed-deterministic, so the seed + config reproduce the graph
 * exactly), and flips the exit status to 1.
 *
 *   wsfuzz [--seed=N] [--iters=N] [--seconds=S] [--jobs=N]
 *          [--out=DIR] [--rewrite-only] [--quiet]
 *
 * --seconds bounds wall-clock (0 = unbounded); the run stops at
 * whichever of --iters / --seconds is reached first. --rewrite-only
 * skips the cycle-level oracles and runs only the (much cheaper)
 * rewrite oracle, making 10k+ iteration sessions practical.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/equiv.h"
#include "analyze/rewriter.h"
#include "common/rng.h"
#include "core/processor.h"
#include "core/simulator.h"
#include "driver/static_prune.h"
#include "driver/sweep_engine.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"

using namespace ws;

namespace {

struct Options
{
    std::uint64_t seed = 1;
    std::uint64_t iters = 100;
    double seconds = 0.0;
    unsigned jobs = 4;
    std::string outDir = "wsfuzz_corpus";
    bool rewriteOnly = false;
    bool quiet = false;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: wsfuzz [--seed=N] [--iters=N] [--seconds=S] "
                 "[--jobs=N] [--out=DIR] [--rewrite-only] [--quiet]\n");
    return 2;
}

// ---------------------------------------------------------------------
// Random program generation (seed-deterministic)
// ---------------------------------------------------------------------

using Node = GraphBuilder::Node;

/** Builds one random verifier-clean program per (seed, threads). */
class RandomProgram
{
  public:
    RandomProgram(std::uint64_t seed, std::uint16_t threads)
        : rng_(seed), threads_(threads)
    {}

    DataflowGraph
    build()
    {
        GraphBuilder b("fuzz", threads_);
        for (ThreadId t = 0; t < threads_; ++t) {
            // Disjoint per-thread scratch array: multithreaded runs
            // stay order-independent, so every oracle still applies.
            const Addr arr = b.alloc(kWords * 8);
            for (std::size_t i = 0; i < kWords; ++i)
                b.initMem(arr + 8 * i, static_cast<Value>(rng_.range(97)));
            b.beginThread(t);
            emitThread(b, arr);
            b.endThread();
        }
        return b.finish();
    }

  private:
    static constexpr std::size_t kWords = 32;

    Node
    pick(std::vector<Node> &pool)
    {
        return pool[rng_.range(pool.size())];
    }

    /** One random compute or memory op over the live-value pool. */
    void
    emitOp(GraphBuilder &b, std::vector<Node> &pool, Addr arr)
    {
        switch (rng_.range(8)) {
          case 0:
            pool.push_back(b.add(pick(pool), pick(pool)));
            break;
          case 1:
            pool.push_back(b.sub(pick(pool), pick(pool)));
            break;
          case 2:
            pool.push_back(b.emit(Opcode::kXor, {pick(pool), pick(pool)}));
            break;
          case 3:
            pool.push_back(b.select(b.lti(pick(pool), 50), pick(pool),
                                    pick(pool)));
            break;
          case 4: {
            Node idx = b.andi(pick(pool), static_cast<Value>(kWords - 1));
            pool.push_back(
                b.load(b.addi(b.shli(idx, 3), static_cast<Value>(arr))));
            break;
          }
          case 5: {
            Node idx = b.andi(pick(pool), static_cast<Value>(kWords - 1));
            b.store(b.addi(b.shli(idx, 3), static_cast<Value>(arr)),
                    pick(pool));
            break;
          }
          case 6:
            pool.push_back(b.shri(pick(pool), 1));
            break;
          default:
            pool.push_back(
                b.addi(pick(pool), static_cast<Value>(rng_.range(64))));
            break;
        }
    }

    /** A conditional diamond; arms may touch memory, which exercises
     *  the store buffer's '?' wildcard ordering links. */
    void
    emitDiamond(GraphBuilder &b, std::vector<Node> &pool, Addr arr)
    {
        Node cond = b.lti(pick(pool), static_cast<Value>(rng_.range(80)));
        GraphBuilder::IfElse ie = b.beginIf(cond, {pick(pool), pick(pool)});
        auto arm = [&](std::vector<Node> vars) {
            std::vector<Node> local = std::move(vars);
            const int ops = 1 + static_cast<int>(rng_.range(3));
            for (int i = 0; i < ops; ++i) {
                switch (rng_.range(4)) {
                  case 0:
                    local.push_back(b.add(pick(local), pick(local)));
                    break;
                  case 1:
                    local.push_back(b.shri(pick(local), 1));
                    break;
                  case 2: {
                    Node idx = b.andi(pick(local),
                                      static_cast<Value>(kWords - 1));
                    Node addr =
                        b.addi(b.shli(idx, 3), static_cast<Value>(arr));
                    if (rng_.chance(0.5))
                        local.push_back(b.load(addr));
                    else
                        b.store(addr, pick(local));
                    break;
                  }
                  default:
                    local.push_back(
                        b.emit(Opcode::kXor, {pick(local), pick(local)}));
                    break;
                }
            }
            return std::vector<Node>{local[local.size() - 1],
                                     local[local.size() - 2]};
        };
        std::vector<Node> then_out = arm(ie.vars);
        b.elseArm(ie, then_out);
        std::vector<Node> else_out = arm(ie.vars);
        b.endIf(ie, else_out);
        pool.insert(pool.end(), ie.merged.begin(), ie.merged.end());
    }

    /** A bounded counting loop over 2-3 carried values. */
    void
    emitLoop(GraphBuilder &b, std::vector<Node> &pool, Addr arr)
    {
        const std::size_t carried = 2 + rng_.range(2);
        std::vector<Node> inits;
        // Carried value 0 is a fresh zero-based counter, so the trip
        // count is exactly `bound` regardless of what the pool holds.
        inits.push_back(b.lit(0, pool[0]));
        for (std::size_t i = 1; i < carried; ++i)
            inits.push_back(pick(pool));
        GraphBuilder::Loop loop = b.beginLoop(inits);

        std::vector<Node> body(loop.vars.begin(), loop.vars.end());
        const int ops = 2 + static_cast<int>(rng_.range(4));
        for (int i = 0; i < ops; ++i)
            emitOp(b, body, arr);
        if (rng_.chance(0.35))
            emitDiamond(b, body, arr);

        Node counter = b.addi(body[0], 1);
        std::vector<Node> nexts;
        nexts.push_back(counter);
        for (std::size_t i = 1; i < carried; ++i)
            nexts.push_back(body[rng_.range(body.size())]);
        const Value bound = 2 + static_cast<Value>(rng_.range(6));
        b.endLoop(loop, nexts, b.lti(counter, bound));

        pool.clear();
        pool.insert(pool.end(), loop.exits.begin(), loop.exits.end());
    }

    void
    emitThread(GraphBuilder &b, Addr arr)
    {
        std::vector<Node> pool;
        pool.push_back(b.param(static_cast<Value>(rng_.range(40))));
        pool.push_back(b.param(static_cast<Value>(rng_.range(40))));
        const int pre = 2 + static_cast<int>(rng_.range(4));
        for (int i = 0; i < pre; ++i)
            emitOp(b, pool, arr);
        const int loops = 1 + static_cast<int>(rng_.range(2));
        for (int l = 0; l < loops; ++l) {
            emitLoop(b, pool, arr);
            for (int i = 0; i < 2; ++i)
                emitOp(b, pool, arr);
        }
        b.sink(pool.back(), 1);
    }

    Rng rng_;
    std::uint16_t threads_;
};

/** Draw a random machine configuration from the legal design space. */
ProcessorConfig
randomConfig(Rng &rng)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    static constexpr std::uint16_t kClusters[] = {1, 1, 2, 4};
    static constexpr unsigned kK[] = {1, 2, 4, 8};
    static constexpr unsigned kMatching[] = {16, 32, 64, 128};
    static constexpr PlacementPolicy kPolicies[] = {
        PlacementPolicy::kDepthFirst, PlacementPolicy::kBreadthFirst,
        PlacementPolicy::kRandom};
    cfg.clusters = kClusters[rng.range(4)];
    cfg.pe.k = kK[rng.range(4)];
    cfg.pe.matchingEntries = kMatching[rng.range(4)];
    cfg.pe.podBypass = rng.chance(0.75);
    cfg.mesh.portBandwidth = static_cast<std::uint8_t>(1 + rng.range(3));
    cfg.storeBuffer.psqCount = 2 + static_cast<unsigned>(rng.range(3));
    cfg.placement = kPolicies[rng.range(3)];
    cfg.seed = rng.range(1 << 20) + 1;
    return cfg;
}

std::string
describeConfig(const ProcessorConfig &cfg)
{
    std::ostringstream out;
    out << "clusters=" << cfg.clusters << " k=" << cfg.pe.k
        << " matching=" << cfg.pe.matchingEntries
        << " podBypass=" << cfg.pe.podBypass
        << " portBandwidth=" << unsigned(cfg.mesh.portBandwidth)
        << " psqCount=" << cfg.storeBuffer.psqCount
        << " placement=" << placementPolicyName(cfg.placement)
        << " seed=" << cfg.seed;
    return out.str();
}

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

struct Fuzzer
{
    Options opt;
    Counter findings = 0;
    Counter iterations = 0;
    Counter simulations = 0;

    void
    report(std::uint64_t seed, std::uint16_t threads,
           const ProcessorConfig &cfg, const std::string &oracle,
           const std::string &detail)
    {
        ++findings;
        std::ostringstream out;
        out << "wsfuzz FINDING (" << oracle << ")\n"
            << "  seed=" << seed << " threads=" << threads << "\n"
            << "  config: " << describeConfig(cfg) << "\n"
            << detail << "\n";
        std::fputs(out.str().c_str(), stderr);

        std::error_code ec;
        std::filesystem::create_directories(opt.outDir, ec);
        const std::string path = opt.outDir + "/wsfuzz_seed" +
                                 std::to_string(seed) + "_" + oracle +
                                 ".txt";
        std::ofstream f(path);
        if (f)
            f << out.str();
    }
};

/** Two reports that must match byte for byte; "" when they do. */
std::string
diffReports(const char *a_label, const StatReport &a, const char *b_label,
            const StatReport &b)
{
    const std::string as = a.toString();
    const std::string bs = b.toString();
    if (as == bs)
        return "";
    // Show the first diverging line of each side.
    std::istringstream ai(as);
    std::istringstream bi(bs);
    std::string al;
    std::string bl;
    while (std::getline(ai, al) && std::getline(bi, bl)) {
        if (al != bl)
            break;
    }
    return "  " + std::string(a_label) + ": " + al + "\n  " + b_label +
           ": " + bl;
}

void
fuzzOne(Fuzzer &fz, std::uint64_t seed, std::vector<SimJob> &batch)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const std::uint16_t threads =
        static_cast<std::uint16_t>(1u << rng.range(3));  // 1, 2, or 4.
    const auto graph = std::make_shared<const DataflowGraph>(
        RandomProgram(seed, threads).build());
    const ProcessorConfig base = randomConfig(rng);

    SimOptions sim;
    sim.maxCycles = 2'000'000;

    ProcessorConfig gated = base;
    gated.checkLevel = CheckLevel::kFull;
    ProcessorConfig ref = gated;
    ref.alwaysTick = true;
    ProcessorConfig refcore = gated;
    refcore.referenceCore = true;
    ProcessorConfig off = base;
    off.checkLevel = CheckLevel::kOff;

    const SimResult r_gated = runSimulation(*graph, gated, sim);
    const SimResult r_ref = runSimulation(*graph, ref, sim);
    const SimResult r_core = runSimulation(*graph, refcore, sim);
    const SimResult r_off = runSimulation(*graph, off, sim);
    fz.simulations += 4;

    if (!r_gated.completed) {
        fz.report(seed, threads, base, "completion",
                  "  program failed to complete within " +
                      std::to_string(sim.maxCycles) + " cycles\n" +
                      r_gated.checkLog);
    }
    if (r_gated.checkViolations != 0) {
        fz.report(seed, threads, base, "invariants-gated",
                  r_gated.checkLog);
    }
    if (r_ref.checkViolations != 0) {
        fz.report(seed, threads, base, "invariants-ref", r_ref.checkLog);
    }
    if (r_core.checkViolations != 0) {
        fz.report(seed, threads, base, "invariants-core",
                  r_core.checkLog);
    }
    const std::string parity =
        diffReports("gated", r_gated.report, "always-tick", r_ref.report);
    if (!parity.empty() || r_gated.completed != r_ref.completed)
        fz.report(seed, threads, base, "parity", parity);
    const std::string core = diffReports("event-core", r_gated.report,
                                         "reference-core", r_core.report);
    if (!core.empty() || r_gated.completed != r_core.completed)
        fz.report(seed, threads, base, "core", core);
    const std::string transparency =
        diffReports("checked", r_gated.report, "unchecked", r_off.report);
    if (!transparency.empty())
        fz.report(seed, threads, base, "transparency", transparency);

    // Bound-soundness oracle: the placement-resolved static bound is an
    // UPPER estimate of any achievable AIPC, so every variant's measured
    // AIPC must stay at or below it (tiny epsilon: FP noise only, the
    // claim itself is exact). One violation means --prune-static could
    // skip a group's true winner.
    {
        const StaticProfile profile = analyzeGraph(*graph);
        const Placement placement =
            place(*graph, base.placementGeometry(), base.placement,
                  base.seed);
        const PlacedProfile placed = analyzePlacedProfile(
            *graph, placement, transitFloors(base));
        const BoundBreakdown bound =
            staticAipcBoundDetail(profile, placed, boundParams(base));
        const double limit = bound.bound * (1.0 + 1e-9) + 1e-12;
        const SimResult *variants[] = {&r_gated, &r_ref, &r_core, &r_off};
        const char *labels[] = {"gated", "always-tick", "reference-core",
                                "unchecked"};
        for (int v = 0; v < 4; ++v) {
            if (variants[v]->aipc > limit) {
                std::ostringstream detail;
                detail.setf(std::ios::fixed);
                detail.precision(6);
                detail << "  " << labels[v] << " measured aipc "
                       << variants[v]->aipc << " > static bound "
                       << bound.bound << " (binding "
                       << boundTermName(bound.binding) << ")\n"
                       << renderBound(bound);
                fz.report(seed, threads, base, "bound", detail.str());
            }
        }
    }

    // Queue the point for the engine-concurrency oracle. graphFp = 0
    // disables memoization: both engines must really re-simulate.
    SimJob job;
    job.graph = graph;
    job.cfg = off;
    job.maxCycles = sim.maxCycles;
    batch.push_back(std::move(job));
}

// ---------------------------------------------------------------------
// Rewrite oracle (interpreter-level, no cycle simulation)
// ---------------------------------------------------------------------

/** Observable behavior: sorted sink values + final memory image. */
struct Observed
{
    bool completed = false;
    std::vector<Value> sinks;
    std::map<Addr, Value> memory;

    bool operator==(const Observed &o) const
    {
        return completed == o.completed && sinks == o.sinks &&
               memory == o.memory;
    }
};

Observed
observe(const DataflowGraph &g)
{
    InterpResult r = interpret(g);
    Observed o;
    o.completed = r.completed;
    o.sinks = std::move(r.sinkValues);
    std::sort(o.sinks.begin(), o.sinks.end());
    o.memory = std::move(r.memory);
    return o;
}

/**
 * Push the seed's program (at 1, 2, and 4 threads) through the
 * translation-validated optimizer: the gate must never roll back, an
 * independent WS8xx check of original vs optimized must prove them
 * equivalent, and both must behave identically under the reference
 * interpreter.
 */
void
rewriteOracle(Fuzzer &fz, std::uint64_t seed)
{
    const ProcessorConfig cfg = ProcessorConfig::baseline();
    for (const std::uint16_t threads : {1, 2, 4}) {
        const DataflowGraph original =
            RandomProgram(seed, threads).build();
        DataflowGraph optimized = original;
        const RewriteStats stats = optimizeGraph(optimized);
        if (stats.rollbacks != 0) {
            fz.report(seed, threads, cfg, "rewrite-rollback",
                      "  equivalence gate rolled a round back:\n" +
                          stats.rollbackDiff);
            continue;
        }
        const EquivResult eq = checkEquivalence(original, optimized);
        if (!eq.equivalent()) {
            fz.report(seed, threads, cfg, "rewrite-equiv",
                      eq.report.render());
        }
        const Observed a = observe(original);
        const Observed b = observe(optimized);
        if (!(a == b)) {
            std::ostringstream detail;
            detail << "  original (" << original.size()
                   << " insts): completed=" << a.completed << ", "
                   << a.sinks.size() << " sinks, " << a.memory.size()
                   << " memory words\n  optimized (" << optimized.size()
                   << " insts): completed=" << b.completed << ", "
                   << b.sinks.size() << " sinks, " << b.memory.size()
                   << " memory words";
            fz.report(seed, threads, cfg, "rewrite-differential",
                      detail.str());
        }
    }
}

void
flushBatch(Fuzzer &fz, std::vector<SimJob> &batch)
{
    if (batch.empty())
        return;
    SweepEngine::Options serial_opts;
    serial_opts.jobs = 1;
    serial_opts.progress = false;
    SweepEngine::Options par_opts = serial_opts;
    par_opts.jobs = fz.opt.jobs;
    SweepEngine serial(serial_opts);
    SweepEngine parallel(par_opts);
    const std::vector<SimResult> a = serial.run(batch);
    const std::vector<SimResult> b = parallel.run(batch);
    fz.simulations += 2 * batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::string diff =
            diffReports("jobs=1", a[i].report, "jobs=N", b[i].report);
        if (!diff.empty()) {
            fz.report(0, 0, batch[i].cfg, "engine",
                      "  batch index " + std::to_string(i) + "\n" + diff);
        }
    }
    batch.clear();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--seed=", 0) == 0) {
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg.rfind("--iters=", 0) == 0) {
            opt.iters = std::strtoull(arg.c_str() + 8, nullptr, 10);
        } else if (arg.rfind("--seconds=", 0) == 0) {
            opt.seconds = std::strtod(arg.c_str() + 10, nullptr);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        } else if (arg.rfind("--out=", 0) == 0) {
            opt.outDir = arg.substr(6);
        } else if (arg == "--rewrite-only") {
            opt.rewriteOnly = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            return usage();
        }
    }
    if (opt.jobs == 0)
        opt.jobs = 4;

    Fuzzer fz;
    fz.opt = opt;
    std::vector<SimJob> batch;
    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    for (std::uint64_t i = 0; i < opt.iters; ++i) {
        if (opt.seconds > 0.0 && elapsed() >= opt.seconds)
            break;
        if (!opt.rewriteOnly)
            fuzzOne(fz, opt.seed + i, batch);
        rewriteOracle(fz, opt.seed + i);
        ++fz.iterations;
        if (batch.size() >= 8)
            flushBatch(fz, batch);
        if (!opt.quiet && fz.iterations % 16 == 0) {
            std::fprintf(stderr, "wsfuzz: %llu iterations, %llu sims, "
                                 "%llu findings, %.1fs\r",
                         static_cast<unsigned long long>(fz.iterations),
                         static_cast<unsigned long long>(fz.simulations),
                         static_cast<unsigned long long>(fz.findings),
                         elapsed());
        }
    }
    flushBatch(fz, batch);

    std::printf("wsfuzz: %llu iterations (%llu simulations) in %.1fs, "
                "%llu finding%s\n",
                static_cast<unsigned long long>(fz.iterations),
                static_cast<unsigned long long>(fz.simulations), elapsed(),
                static_cast<unsigned long long>(fz.findings),
                fz.findings == 1 ? "" : "s");
    return fz.findings == 0 ? 0 : 1;
}
