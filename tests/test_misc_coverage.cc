/**
 * @file
 * Cross-cutting coverage: mesh virtual-channel independence and odd
 * grids, interpreter guard rails, assembly determinism, store-buffer
 * issue-width effects, and graph static-statistics accounting.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/simulator.h"
#include "isa/assembly.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"
#include "kernels/kernel.h"
#include "memory/store_buffer.h"
#include "network/mesh.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// Mesh extras
// ---------------------------------------------------------------------

TEST(MeshExtra, ReplyVcProgressesPastFullRequestVc)
{
    // Fill VC0's output queue at router 0 toward router 1, then inject
    // a VC1 message on the same path: it must deliver even though VC0
    // stays saturated (the deadlock-avoidance property of §3.4.3).
    TrafficStats t;
    MeshConfig cfg;
    cfg.clusters = 4;
    cfg.queueCapacity = 4;
    MeshNetwork mesh(cfg, &t);

    auto msg = [&](std::uint8_t vc) {
        NetMessage m;
        m.src = 0;
        m.dst = 1;
        m.vc = vc;
        m.payload = OperandMsg{};
        return m;
    };
    // Saturate VC0 (keep refilling it each cycle).
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(mesh.inject(msg(0), 0));
    ASSERT_TRUE(mesh.inject(msg(1), 0));
    bool vc1_delivered = false;
    for (Cycle now = 1; now < 20 && !vc1_delivered; ++now) {
        mesh.tick(now);
        for (NetMessage &m : mesh.delivered(1)) {
            if (m.vc == 1)
                vc1_delivered = true;
        }
        mesh.delivered(1).clear();
        while (mesh.inject(msg(0), now)) {
        }
    }
    EXPECT_TRUE(vc1_delivered);
}

TEST(MeshExtra, NonSquareGridsRoute)
{
    TrafficStats t;
    for (std::uint16_t clusters : {2, 3, 5, 6, 12}) {
        MeshConfig cfg;
        cfg.clusters = clusters;
        MeshNetwork mesh(cfg, &t);
        NetMessage m;
        m.src = 0;
        m.dst = static_cast<ClusterId>(clusters - 1);
        m.payload = OperandMsg{};
        ASSERT_TRUE(mesh.inject(m, 0)) << clusters;
        bool delivered = false;
        for (Cycle now = 1; now < 30 && !delivered; ++now) {
            mesh.tick(now);
            delivered = !mesh.delivered(m.dst).empty();
        }
        EXPECT_TRUE(delivered) << clusters << " clusters";
        mesh.delivered(m.dst).clear();
        EXPECT_TRUE(mesh.idle()) << clusters;
    }
}

// ---------------------------------------------------------------------
// Interpreter guard rails
// ---------------------------------------------------------------------

TEST(InterpExtra, StepBoundTripsOnRunawayGraphs)
{
    // An infinite loop (condition always true) must hit the step bound.
    GraphBuilder b("forever");
    b.beginThread(0);
    auto x = b.param(0);
    auto loop = b.beginLoop({x});
    auto nxt = b.addi(loop.vars[0], 1);
    auto always = b.lit(1, nxt);
    b.endLoop(loop, {nxt}, always);
    b.sink(loop.exits[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();
    EXPECT_THROW(interpret(g, 10'000), FatalError);
}

TEST(InterpExtra, SinkValuesArriveInExecutionOrder)
{
    GraphBuilder b("order");
    b.beginThread(0);
    auto x = b.param(5);
    b.sink(x, 1);                    // First sink gets 5.
    auto y = b.addi(x, 1);
    b.sink(y, 1);                    // Second gets 6.
    b.endThread();
    DataflowGraph g = b.finish();
    InterpResult r = interpret(g);
    ASSERT_EQ(r.sinkValues.size(), 2u);
    EXPECT_EQ(r.sinkValues[0] + r.sinkValues[1], 11);
}

TEST(InterpExtra, ZeroStoresArePrunedButSimAgreesAnyway)
{
    GraphBuilder b("zero");
    b.beginThread(0);
    const Addr a = b.alloc(8);
    b.initMem(a, 99);
    auto addr = b.param(static_cast<Value>(a));
    auto zero = b.lit(0, addr);
    b.store(addr, zero);             // Overwrite 99 with 0.
    b.sink(b.load(addr), 1);
    b.endThread();
    DataflowGraph g = b.finish();
    InterpResult r = interpret(g);
    EXPECT_EQ(r.sinkValues.at(0), 0);
    EXPECT_EQ(r.memory.count(a), 0u);   // Pruned as zero.

    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.memory().read(a), 0);
}

// ---------------------------------------------------------------------
// Assembly determinism
// ---------------------------------------------------------------------

TEST(AssemblyExtra, DisassemblyIsDeterministic)
{
    KernelParams p;
    const std::string a = disassemble(buildMcf(p));
    const std::string b = disassemble(buildMcf(p));
    EXPECT_EQ(a, b);
}

TEST(AssemblyExtra, DoubleRoundTripIsAFixedPoint)
{
    KernelParams p;
    const std::string once = disassemble(buildRadix(p));
    const std::string twice = disassemble(assemble(once));
    EXPECT_EQ(once, twice);
}

// ---------------------------------------------------------------------
// Store-buffer issue width
// ---------------------------------------------------------------------

TEST(StoreBufferWidth, WiderIssueRaisesThroughput)
{
    auto run = [&](unsigned width) {
        KernelParams p;
        DataflowGraph g = buildDjpeg(p);
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.memory.l2Bytes = 1 << 20;
        cfg.storeBuffer.issueWidth = width;
        Processor proc(g, cfg);
        EXPECT_TRUE(proc.run(6'000'000));
        return proc.cycle();
    };
    const Cycle w1 = run(1);
    const Cycle w4 = run(4);
    EXPECT_LE(w4, w1);  // Never slower; usually faster.
}

// ---------------------------------------------------------------------
// Graph static statistics
// ---------------------------------------------------------------------

TEST(GraphStats, CountsAddUp)
{
    KernelParams p;
    p.threads = 2;
    DataflowGraph g = buildOcean(p);
    StatReport s = g.staticStats();
    EXPECT_EQ(s.get("static.instructions"),
              static_cast<double>(g.size()));
    EXPECT_EQ(s.get("static.threads"), 2.0);
    // Per-opcode counts sum to the instruction count.
    EXPECT_NEAR(s.sumPrefix("static.op."),
                s.get("static.instructions"), 1e-9);
    // Thread sizes partition the graph.
    EXPECT_EQ(g.threadSize(0) + g.threadSize(1), g.size());
}

TEST(GraphStats, UsefulNeverExceedsTotal)
{
    KernelParams p;
    for (const Kernel &k : kernelRegistry()) {
        DataflowGraph g = k.build(p);
        EXPECT_LT(g.usefulSize(), g.size()) << k.name;
        EXPECT_GT(g.usefulSize(), g.size() / 2) << k.name
            << " (overhead should not dominate)";
    }
}

} // namespace
} // namespace ws
