/**
 * @file
 * Unit tests for the memory subsystem: main memory, the generic tag
 * array, the MESI directory protocol, and the wave-ordered store buffer
 * with its partial store queues.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "memory/cache.h"
#include "memory/coherence.h"
#include "memory/main_memory.h"
#include "memory/store_buffer.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// MainMemory
// ---------------------------------------------------------------------

TEST(MainMemory, ReadOfUnwrittenIsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read(0x1000), 0);
}

TEST(MainMemory, WriteReadRoundTrip)
{
    MainMemory mem;
    mem.write(0x1000, 42);
    mem.write(0x1008, -7);
    EXPECT_EQ(mem.read(0x1000), 42);
    EXPECT_EQ(mem.read(0x1008), -7);
}

TEST(MainMemory, SubWordAddressesAlias)
{
    MainMemory mem;
    mem.write(0x1000, 1);
    EXPECT_EQ(mem.read(0x1003), 1);  // Same word.
}

TEST(MainMemory, PagesAllocateLazily)
{
    MainMemory mem;
    EXPECT_EQ(mem.residentPages(), 0u);
    mem.write(0, 1);
    mem.write(1 << 20, 2);
    EXPECT_EQ(mem.residentPages(), 2u);
}

// ---------------------------------------------------------------------
// TagArray
// ---------------------------------------------------------------------

TEST(TagArray, MissThenInsertHits)
{
    TagArray tags(1024, 2, 64);
    EXPECT_EQ(tags.probe(0x40), 0);
    tags.insert(0x40, 1);
    EXPECT_EQ(tags.probe(0x40), 1);
    EXPECT_EQ(tags.probe(0x7f), 1);  // Same line.
}

TEST(TagArray, LruEvictionWithinSet)
{
    // 2 sets x 2 ways, 64B lines: addresses 0, 128, 256 share set 0.
    TagArray tags(256, 2, 64);
    tags.insert(0, 1);
    tags.insert(128, 1);
    tags.touch(0);  // 128 becomes LRU.
    auto victim = tags.insert(256, 1);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.lineAddr, 128u);
    EXPECT_EQ(tags.probe(0), 1);
    EXPECT_EQ(tags.probe(256), 1);
}

TEST(TagArray, EraseAndStates)
{
    TagArray tags(1024, 4, 64);
    tags.insert(0x100, 2);
    tags.setState(0x100, 3);
    EXPECT_EQ(tags.probe(0x100), 3);
    EXPECT_TRUE(tags.erase(0x100));
    EXPECT_FALSE(tags.erase(0x100));
    EXPECT_EQ(tags.probe(0x100), 0);
}

TEST(TagArray, ValidLineCount)
{
    TagArray tags(1024, 4, 64);
    tags.insert(0, 1);
    tags.insert(64, 1);
    EXPECT_EQ(tags.validLines(), 2u);
}

TEST(TagArray, BadGeometryIsFatal)
{
    EXPECT_THROW(TagArray(1000, 4, 64), FatalError);
    EXPECT_THROW(TagArray(1024, 0, 64), FatalError);
    EXPECT_THROW(TagArray(1024, 4, 60), FatalError);
}

TEST(TagArray, OperationsOnAbsentLinesPanic)
{
    TagArray tags(1024, 4, 64);
    EXPECT_THROW(tags.touch(0x40), PanicError);
    EXPECT_THROW(tags.setState(0x40, 1), PanicError);
}

// ---------------------------------------------------------------------
// Coherence harness: N L1s + one home, messages routed each cycle.
// ---------------------------------------------------------------------

class CohHarness
{
  public:
    explicit CohHarness(unsigned clusters, std::size_t l2_bytes = 1 << 20)
    {
        cfg_.clusters = static_cast<std::uint16_t>(clusters);
        cfg_.l2Bytes = l2_bytes;
        home_ = std::make_unique<HomeSystem>(cfg_);
        for (unsigned c = 0; c < clusters; ++c)
            l1s_.push_back(std::make_unique<L1Controller>(
                cfg_, static_cast<ClusterId>(c)));
    }

    void
    step()
    {
        for (auto &l1 : l1s_)
            l1->tick(now_);
        home_->tick(now_);
        for (auto &l1 : l1s_) {
            for (const CohMsg &msg : l1->outbox())
                home_->receive(msg, now_ + 1);
            l1->outbox().clear();
        }
        for (auto &[dst, msg] : home_->outbox())
            l1s_.at(dst)->receive(msg, now_ + 1);
        home_->outbox().clear();
        ++now_;
    }

    /** Run until @p l1 completes @p count requests (or panic). */
    void
    waitForDone(unsigned l1, std::size_t count, Cycle limit = 2000)
    {
        const Cycle start = now_;
        while (l1s_[l1]->drainDone().size() < count) {
            step();
            if (now_ - start > limit)
                FAIL() << "coherence harness timed out";
        }
    }

    MemTimingConfig cfg_;
    std::unique_ptr<HomeSystem> home_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    Cycle now_ = 0;
};

TEST(Coherence, L1HitLatency)
{
    CohHarness h(1);
    h.l1s_[0]->request(1, 0x1000, false, h.now_);
    h.waitForDone(0, 1);
    // Fill the line, then a hit completes in l1HitLatency cycles.
    h.l1s_[0]->drainDone().clear();
    const Cycle start = h.now_;
    h.l1s_[0]->request(2, 0x1000, false, h.now_);
    h.waitForDone(0, 1);
    EXPECT_LE(h.now_ - start, h.cfg_.l1HitLatency + 1);
    EXPECT_EQ(h.l1s_[0]->stats().hits, 1u);
}

TEST(Coherence, ColdReadGrantsExclusive)
{
    CohHarness h(2);
    h.l1s_[0]->request(1, 0x2000, false, h.now_);
    h.waitForDone(0, 1);
    EXPECT_EQ(h.l1s_[0]->probeLine(0x2000), kMesiExclusive);
    EXPECT_EQ(h.home_->stats().getS, 1u);
}

TEST(Coherence, SecondReaderDowngradesOwner)
{
    CohHarness h(2);
    h.l1s_[0]->request(1, 0x2000, false, h.now_);
    h.waitForDone(0, 1);
    h.l1s_[1]->request(2, 0x2000, false, h.now_);
    h.waitForDone(1, 1);
    EXPECT_EQ(h.l1s_[0]->probeLine(0x2000), kMesiShared);
    EXPECT_EQ(h.l1s_[1]->probeLine(0x2000), kMesiShared);
    EXPECT_EQ(h.l1s_[0]->stats().downgradesReceived, 1u);
}

TEST(Coherence, WriteInvalidatesSharers)
{
    CohHarness h(3);
    h.l1s_[0]->request(1, 0x3000, false, h.now_);
    h.waitForDone(0, 1);
    h.l1s_[1]->request(2, 0x3000, false, h.now_);
    h.waitForDone(1, 1);
    // Both sharers; now cluster 2 writes.
    h.l1s_[2]->request(3, 0x3000, true, h.now_);
    h.waitForDone(2, 1);
    EXPECT_EQ(h.l1s_[2]->probeLine(0x3000), kMesiModified);
    EXPECT_EQ(h.l1s_[0]->probeLine(0x3000), kMesiInvalid);
    EXPECT_EQ(h.l1s_[1]->probeLine(0x3000), kMesiInvalid);
    EXPECT_GE(h.home_->stats().invsSent, 2u);
}

TEST(Coherence, WriteHitOnExclusiveIsSilent)
{
    CohHarness h(1);
    h.l1s_[0]->request(1, 0x4000, false, h.now_);
    h.waitForDone(0, 1);
    h.l1s_[0]->drainDone().clear();
    const Counter messages = h.home_->stats().getS +
                             h.home_->stats().getM;
    h.l1s_[0]->request(2, 0x4000, true, h.now_);
    h.waitForDone(0, 1);
    EXPECT_EQ(h.l1s_[0]->probeLine(0x4000), kMesiModified);
    EXPECT_EQ(h.home_->stats().getS + h.home_->stats().getM, messages);
}

TEST(Coherence, SharedWriterUpgrades)
{
    CohHarness h(2);
    h.l1s_[0]->request(1, 0x5000, false, h.now_);
    h.waitForDone(0, 1);
    h.l1s_[1]->request(2, 0x5000, false, h.now_);
    h.waitForDone(1, 1);
    // Cluster 0 now writes its S copy: needs a GetM, invalidating c1.
    h.l1s_[0]->drainDone().clear();
    h.l1s_[0]->request(3, 0x5000, true, h.now_);
    h.waitForDone(0, 1);
    EXPECT_EQ(h.l1s_[0]->probeLine(0x5000), kMesiModified);
    EXPECT_EQ(h.l1s_[1]->probeLine(0x5000), kMesiInvalid);
}

TEST(Coherence, DirtyEvictionWritesBack)
{
    CohHarness h(1);
    // Fill one set (4 ways at 32KB/4w/128B = 64 sets; stride 8KB).
    const Addr stride = 64 * 128;
    std::uint64_t id = 1;
    for (int i = 0; i < 5; ++i) {
        h.l1s_[0]->request(id++, 0x10000 + i * stride, true, h.now_);
        h.waitForDone(0, static_cast<std::size_t>(i + 1));
    }
    EXPECT_GE(h.l1s_[0]->stats().writebacks, 1u);
    EXPECT_GE(h.home_->stats().putM, 1u);
}

TEST(Coherence, MshrMergesSecondaryMisses)
{
    CohHarness h(1);
    h.l1s_[0]->request(1, 0x6000, false, h.now_);
    h.l1s_[0]->request(2, 0x6000, false, h.now_);
    h.l1s_[0]->request(3, 0x6010, false, h.now_);  // Same line.
    h.waitForDone(0, 3);
    EXPECT_EQ(h.l1s_[0]->stats().misses, 1u);
    EXPECT_EQ(h.l1s_[0]->stats().mshrHits, 2u);
    EXPECT_EQ(h.home_->stats().getS, 1u);
}

TEST(Coherence, L2CapturesReuse)
{
    CohHarness h(1, 1 << 20);
    h.l1s_[0]->request(1, 0x7000, false, h.now_);
    h.waitForDone(0, 1);
    // Force the line out of a tiny window by touching conflicting lines,
    // then re-request: with an L2 the refetch must be an L2 hit.
    const Addr stride = 64 * 128;
    std::uint64_t id = 10;
    std::size_t done = 1;
    for (int i = 0; i < 4; ++i) {
        h.l1s_[0]->request(id++, 0x7000 + (i + 1) * stride, false, h.now_);
        h.waitForDone(0, ++done);
    }
    EXPECT_GE(h.home_->stats().l2Hits, 0u);  // Sanity; detailed below.
    EXPECT_GT(h.home_->stats().memFetches, 0u);
}

TEST(Coherence, NoL2MeansMemoryLatency)
{
    CohHarness with_l2(1, 1 << 20);
    CohHarness no_l2(1, 0);
    with_l2.l1s_[0]->request(1, 0x8000, false, 0);
    no_l2.l1s_[0]->request(1, 0x8000, false, 0);
    // Warm the L2 copy.
    with_l2.waitForDone(0, 1);
    no_l2.waitForDone(0, 1);
    // Evict and refetch in both; the L2 machine must be faster.
    auto refetch = [](CohHarness &h) {
        const Addr stride = 64 * 128;
        std::uint64_t id = 50;
        std::size_t done = 1;
        for (int i = 1; i <= 4; ++i) {
            h.l1s_[0]->request(id++, 0x8000 + i * stride, false, h.now_);
            h.waitForDone(0, ++done);
        }
        h.l1s_[0]->drainDone().clear();
        const Cycle start = h.now_;
        h.l1s_[0]->request(99, 0x8000, false, h.now_);
        h.waitForDone(0, 1);
        return h.now_ - start;
    };
    const Cycle t_l2 = refetch(with_l2);
    const Cycle t_mem = refetch(no_l2);
    EXPECT_LT(t_l2, t_mem);
}

// ---------------------------------------------------------------------
// StoreBuffer harness
// ---------------------------------------------------------------------

class SbHarness
{
  public:
    explicit SbHarness(StoreBufferConfig cfg = StoreBufferConfig{})
    {
        mcfg_.clusters = 1;
        mcfg_.l2Bytes = 0;
        l1_ = std::make_unique<L1Controller>(mcfg_, 0);
        home_ = std::make_unique<HomeSystem>(mcfg_);
        sb_ = std::make_unique<StoreBuffer>(cfg, 0, l1_.get(), &mem_);
    }

    void
    step()
    {
        l1_->tick(now_);
        sb_->tick(now_);
        home_->tick(now_);
        for (const CohMsg &msg : l1_->outbox())
            home_->receive(msg, now_ + 1);
        l1_->outbox().clear();
        for (auto &[dst, msg] : home_->outbox())
            l1_->receive(msg, now_ + 1);
        home_->outbox().clear();
        ++now_;
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            step();
    }

    MemRequest
    load(Addr addr, std::int32_t seq, std::int32_t prev,
         std::int32_t next, WaveNum wave = 0, ThreadId thread = 0,
         InstId inst = 7)
    {
        MemRequest r;
        r.kind = MemOpKind::kLoad;
        r.tag = Tag{thread, wave};
        r.seq = seq;
        r.prev = prev;
        r.next = next;
        r.addr = addr;
        r.inst = inst;
        return r;
    }

    MemRequest
    storeAddr(Addr addr, std::int32_t seq, std::int32_t prev,
              std::int32_t next, WaveNum wave = 0, ThreadId thread = 0)
    {
        MemRequest r;
        r.kind = MemOpKind::kStoreAddr;
        r.tag = Tag{thread, wave};
        r.seq = seq;
        r.prev = prev;
        r.next = next;
        r.addr = addr;
        return r;
    }

    MemRequest
    storeData(Value v, std::int32_t seq, WaveNum wave = 0,
              ThreadId thread = 0)
    {
        MemRequest r;
        r.kind = MemOpKind::kStoreData;
        r.tag = Tag{thread, wave};
        r.seq = seq;
        r.data = v;
        return r;
    }

    MemRequest
    memNop(std::int32_t seq, std::int32_t prev, std::int32_t next,
           WaveNum wave = 0, ThreadId thread = 0)
    {
        MemRequest r;
        r.kind = MemOpKind::kMemNop;
        r.tag = Tag{thread, wave};
        r.seq = seq;
        r.prev = prev;
        r.next = next;
        return r;
    }

    MemTimingConfig mcfg_;
    MainMemory mem_;
    std::unique_ptr<L1Controller> l1_;
    std::unique_ptr<HomeSystem> home_;
    std::unique_ptr<StoreBuffer> sb_;
    Cycle now_ = 0;
};

TEST(StoreBuffer, StoreThenLoadInOrder)
{
    SbHarness h;
    h.sb_->push(h.storeAddr(0x100, 0, kSeqNone, 1), 0);
    h.sb_->push(h.storeData(77, 0), 0);
    h.sb_->push(h.load(0x100, 1, 0, kSeqNone), 0);
    h.run(400);
    ASSERT_EQ(h.sb_->drainLoadDones().size(), 1u);
    EXPECT_EQ(h.sb_->drainLoadDones()[0].value, 77);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 1u);
    EXPECT_TRUE(h.sb_->idle() || !h.sb_->drainLoadDones().empty());
}

TEST(StoreBuffer, OutOfOrderArrivalIssuesInOrder)
{
    SbHarness h;
    // The load (younger) arrives first; the store to the same address
    // must still be seen by the load.
    h.sb_->push(h.load(0x200, 1, 0, kSeqNone), 0);
    h.run(50);
    EXPECT_TRUE(h.sb_->drainLoadDones().empty());  // Must wait for seq 0.
    h.sb_->push(h.storeAddr(0x200, 0, kSeqNone, 1), h.now_);
    h.sb_->push(h.storeData(123, 0), h.now_);
    h.run(400);
    ASSERT_EQ(h.sb_->drainLoadDones().size(), 1u);
    EXPECT_EQ(h.sb_->drainLoadDones()[0].value, 123);
}

TEST(StoreBuffer, DecoupledStoreLetsYoungerOpsIssue)
{
    SbHarness h;
    // Store address arrives, data does NOT. A younger load to a
    // different address must complete anyway (store decoupling).
    h.sb_->push(h.storeAddr(0x300, 0, kSeqNone, 1), 0);
    h.mem_.write(0x400, 9);
    h.sb_->push(h.load(0x400, 1, 0, kSeqNone), 0);
    h.run(400);
    ASSERT_EQ(h.sb_->drainLoadDones().size(), 1u);
    EXPECT_EQ(h.sb_->drainLoadDones()[0].value, 9);
    EXPECT_EQ(h.sb_->stats().psqAllocations, 1u);
    EXPECT_FALSE(h.sb_->idle());  // Store still parked.
    h.sb_->drainLoadDones().clear();
    // Data shows up; the wave drains.
    h.sb_->push(h.storeData(44, 0), h.now_);
    h.run(400);
    EXPECT_EQ(h.mem_.read(0x300), 44);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 1u);
}

TEST(StoreBuffer, SameAddressLoadJoinsPsqAndForwards)
{
    SbHarness h;
    h.mem_.write(0x500, 1);
    h.sb_->push(h.storeAddr(0x500, 0, kSeqNone, 1), 0);
    h.sb_->push(h.load(0x500, 1, 0, kSeqNone), 0);  // Same address!
    h.run(200);
    // The load must NOT have completed with the stale value.
    EXPECT_TRUE(h.sb_->drainLoadDones().empty());
    EXPECT_GE(h.sb_->stats().psqAppends, 1u);
    h.sb_->push(h.storeData(33, 0), h.now_);
    h.run(400);
    ASSERT_EQ(h.sb_->drainLoadDones().size(), 1u);
    EXPECT_EQ(h.sb_->drainLoadDones()[0].value, 33);  // Forwarded.
}

TEST(StoreBuffer, NoPsqMeansStallUntilData)
{
    StoreBufferConfig cfg;
    cfg.psqCount = 0;
    SbHarness h(cfg);
    h.mem_.write(0x700, 5);
    h.sb_->push(h.storeAddr(0x600, 0, kSeqNone, 1), 0);
    h.sb_->push(h.load(0x700, 1, 0, kSeqNone), 0);
    h.run(300);
    // Without PSQs the younger load is stuck behind the dataless store.
    EXPECT_TRUE(h.sb_->drainLoadDones().empty());
    EXPECT_GT(h.sb_->stats().noPsqStalls, 0u);
    h.sb_->push(h.storeData(2, 0), h.now_);
    h.run(400);
    EXPECT_EQ(h.sb_->drainLoadDones().size(), 1u);
}

TEST(StoreBuffer, WildcardChainResolvesViaBackPointer)
{
    SbHarness h;
    // seq0 (next='?') then seq2 (prev=0): the '?' resolves through the
    // successor's concrete back-pointer (a taken-branch path that
    // skipped seq1).
    h.mem_.write(0x800, 4);
    h.sb_->push(h.load(0x800, 0, kSeqNone, kSeqWildcard), 0);
    h.sb_->push(h.load(0x800, 2, 0, kSeqNone), 0);
    h.run(300);
    EXPECT_EQ(h.sb_->drainLoadDones().size(), 2u);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 1u);
}

TEST(StoreBuffer, WavesRetireInOrder)
{
    SbHarness h;
    // Wave 1 arrives first but cannot issue before wave 0.
    h.mem_.write(0x900, 1);
    h.sb_->push(h.load(0x900, 0, kSeqNone, kSeqNone, 1), 0);
    h.run(100);
    EXPECT_TRUE(h.sb_->drainLoadDones().empty());
    h.sb_->push(h.memNop(0, kSeqNone, kSeqNone, 0), h.now_);
    h.run(400);  // Cold miss to DRAM: 200+ cycles.
    EXPECT_EQ(h.sb_->drainLoadDones().size(), 1u);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 2u);
}

TEST(StoreBuffer, FarFutureWaveParksWithoutBlocking)
{
    SbHarness h;
    // Wave 10 is far beyond the lookahead window.
    h.sb_->push(h.memNop(0, kSeqNone, kSeqNone, 10), 0);
    EXPECT_GE(h.sb_->stats().parkedRequests, 1u);
    // Waves 0..9 arrive and retire one by one; wave 10 must eventually
    // be admitted and complete too.
    for (WaveNum w = 0; w < 10; ++w)
        h.sb_->push(h.memNop(0, kSeqNone, kSeqNone, w), h.now_);
    h.run(600);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 11u);
    EXPECT_TRUE(h.sb_->idle());
}

TEST(StoreBuffer, ThreadsOrderIndependently)
{
    SbHarness h;
    // Thread 1's wave 0 must not wait for thread 0's wave 0.
    h.mem_.write(0xa00, 3);
    h.sb_->push(h.load(0xa00, 0, kSeqNone, kSeqNone, 0, 1), 0);
    h.run(300);
    EXPECT_EQ(h.sb_->drainLoadDones().size(), 1u);
}

TEST(StoreBuffer, RetiredWaveRequestPanics)
{
    SbHarness h;
    h.sb_->push(h.memNop(0, kSeqNone, kSeqNone, 0), 0);
    h.run(50);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 1u);
    EXPECT_THROW(h.sb_->push(h.memNop(0, kSeqNone, kSeqNone, 0), h.now_),
                 PanicError);
}

} // namespace
} // namespace ws
