/**
 * @file
 * Activity-gated clocking tests.
 *
 * Three layers:
 *  - WakeupScheduler unit tests: deterministic ordering, wake-only-
 *    lowers, lazy-heap staleness pruning, O(1) anyArmed().
 *  - GatedClocking: fast-forward and O(1) quiescence behave exactly
 *    like the reference mode on single runs.
 *  - ClockParity: the acceptance property — every kernel, at every
 *    thread count, produces an *identical* SimResult and a
 *    byte-identical StatReport under gated clocking and --always-tick,
 *    on both the baseline machine and a multi-cluster grid (which
 *    exercises the mesh, the coherence directory, and the inject-retry
 *    paths). Also run through the SweepEngine at jobs > 1 so the TSan
 *    CI job can race-check the gated hot loop.
 *  - CoreParity / EventCore: the SoA event core (per-domain ready
 *    rings) against the polled reference core (--reference-core) —
 *    identical results everywhere, and ticking an un-notified PE or
 *    domain must be an observable no-op (the WS606 property the event
 *    rings rely on).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "check/checker.h"
#include "core/clock.h"
#include "core/processor.h"
#include "core/simulator.h"
#include "core/trace.h"
#include "driver/sweep_engine.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// WakeupScheduler
// ---------------------------------------------------------------------

TEST(WakeupScheduler, WakeDueConsumeRoundTrip)
{
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    const ComponentId b = s.add(nullptr);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_FALSE(s.anyArmed());
    EXPECT_EQ(s.nextWake(), kCycleNever);

    s.wake(a, 5);
    EXPECT_TRUE(s.anyArmed());
    EXPECT_FALSE(s.due(a, 4));
    EXPECT_TRUE(s.due(a, 5));
    EXPECT_TRUE(s.due(a, 6));
    EXPECT_FALSE(s.due(b, 100));
    EXPECT_EQ(s.nextWake(), 5u);

    s.consume(a);
    EXPECT_FALSE(s.anyArmed());
    EXPECT_FALSE(s.due(a, 1000));
    EXPECT_EQ(s.nextWake(), kCycleNever);
}

TEST(WakeupScheduler, WakeOnlyEverLowers)
{
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    s.wake(a, 5);
    s.wake(a, 10);  // Later: ignored.
    EXPECT_EQ(s.nextWake(), 5u);
    s.wake(a, 3);   // Earlier: lowers.
    EXPECT_EQ(s.nextWake(), 3u);
}

TEST(WakeupScheduler, NeverIsIgnored)
{
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    s.wake(a, kCycleNever);
    EXPECT_FALSE(s.anyArmed());
    s.wake(a, 7);
    s.wake(a, kCycleNever);  // Must not disturb the real arming.
    EXPECT_EQ(s.nextWake(), 7u);
}

TEST(WakeupScheduler, StaleHeapEntriesArePruned)
{
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    const ComponentId b = s.add(nullptr);
    s.wake(a, 4);
    s.wake(b, 9);
    s.wake(a, 2);          // Leaves a stale (4, a) entry behind.
    EXPECT_EQ(s.nextWake(), 2u);
    s.consume(a);          // Both (2, a) and (4, a) are now stale.
    EXPECT_EQ(s.nextWake(), 9u);
    s.consume(b);
    EXPECT_EQ(s.nextWake(), kCycleNever);
    EXPECT_FALSE(s.anyArmed());
}

TEST(WakeupScheduler, ConsumeThenRewakeSameCycleStaysValid)
{
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    s.wake(a, 6);
    s.consume(a);
    s.wake(a, 6);  // Re-arm at the very cycle just consumed.
    EXPECT_TRUE(s.due(a, 6));
    EXPECT_EQ(s.nextWake(), 6u);
    s.consume(a);
    EXPECT_EQ(s.nextWake(), kCycleNever);
}

TEST(WakeupScheduler, ArmedCountTracksDistinctComponents)
{
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    const ComponentId b = s.add(nullptr);
    const ComponentId c = s.add(nullptr);
    s.wake(a, 1);
    s.wake(a, 1);  // Duplicate wake of an armed component.
    s.wake(b, 2);
    EXPECT_TRUE(s.anyArmed());
    s.consume(a);
    EXPECT_TRUE(s.anyArmed());
    s.consume(c);  // Consuming an un-armed component is a no-op.
    EXPECT_TRUE(s.anyArmed());
    s.consume(b);
    EXPECT_FALSE(s.anyArmed());
}

TEST(WakeupScheduler, EarliestWakeWinsAcrossComponents)
{
    WakeupScheduler s;
    std::vector<ComponentId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(s.add(nullptr));
    // Arm in scrambled order; nextWake must always report the min.
    s.wake(ids[3], 30);
    s.wake(ids[7], 10);
    s.wake(ids[1], 20);
    EXPECT_EQ(s.nextWake(), 10u);
    s.consume(ids[7]);
    EXPECT_EQ(s.nextWake(), 20u);
    s.consume(ids[1]);
    EXPECT_EQ(s.nextWake(), 30u);
}

TEST(WakeupScheduler, RewakeAtPastCycleIsStillDue)
{
    // A component woken for a cycle that has already passed must be
    // picked up on the *current* cycle, not dropped: due() is
    // "armed cycle <= now", never equality.
    WakeupScheduler s;
    const ComponentId a = s.add(nullptr);
    s.wake(a, 5);
    s.consume(a);
    s.wake(a, 3);  // Re-arm in the past (late wake registration).
    EXPECT_TRUE(s.due(a, 9));
    EXPECT_EQ(s.nextWake(), 3u);
    s.consume(a);
    EXPECT_FALSE(s.anyArmed());
}

// ---------------------------------------------------------------------
// GatedClocking: fast-forward and quiescence on real runs
// ---------------------------------------------------------------------

/** Baseline config with an L2 large enough for every kernel. */
ProcessorConfig
testConfig(bool always_tick)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    cfg.alwaysTick = always_tick;
    return cfg;
}

/** A 4-cluster grid: exercises mesh routing, the coherence directory,
 *  and the outbound inject-retry paths under gating. */
ProcessorConfig
gridConfig(bool always_tick)
{
    ProcessorConfig cfg = testConfig(always_tick);
    cfg.clusters = 4;
    return cfg;
}

TEST(GatedClocking, FastForwardMatchesReferenceCycleCount)
{
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor gated(g, testConfig(false));
    Processor ref(g, testConfig(true));
    ASSERT_TRUE(gated.run(2'000'000));
    ASSERT_TRUE(ref.run(2'000'000));
    EXPECT_EQ(gated.cycle(), ref.cycle());
    EXPECT_EQ(gated.usefulExecuted(), ref.usefulExecuted());
    EXPECT_TRUE(gated.quiescent());
    EXPECT_TRUE(ref.quiescent());
}

TEST(GatedClocking, SchedulerRegistersClustersHomeAndMesh)
{
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, gridConfig(false));
    // Clusters in id order, then home, then mesh.
    EXPECT_EQ(proc.scheduler().size(), 4u + 2u);
    for (ClusterId c = 0; c < 4; ++c)
        EXPECT_EQ(proc.scheduler().component(c), &proc.cluster(c));
}

TEST(GatedClocking, QuiescentMachineHasEmptyWakeSet)
{
    // After a completed run the O(1) fast path and the structural walk
    // must agree: nothing armed, everything idle.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, testConfig(false));
    ASSERT_TRUE(proc.run(2'000'000));
    EXPECT_TRUE(proc.quiescent());
    EXPECT_FALSE(proc.scheduler().anyArmed());
}

TEST(GatedClocking, QuiescentMachineCachesAreNever)
{
    // After a completed run every per-component next-event cache must
    // read kCycleNever — a finite stale value would re-wake a dead
    // machine on the next re-arm and defeat the O(1) quiescence test.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, gridConfig(false));
    ASSERT_TRUE(proc.run(2'000'000));
    for (ClusterId c = 0; c < 4; ++c)
        EXPECT_EQ(proc.cluster(c).nextEventCycle(), kCycleNever)
            << "cluster " << c;
}

TEST(GatedClocking, DomainPushLowersNextEventCache)
{
    // The push entry points must lower the domain's cached next-event
    // cycle eagerly; a push that leaves the cache at kCycleNever would
    // strand the token until some unrelated event ticked the domain.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, testConfig(false));
    ASSERT_TRUE(proc.run(2'000'000));
    Domain &dom = proc.cluster(0).domain(0);
    ASSERT_EQ(dom.nextEventCycle(), kCycleNever);
    const Cycle ready = proc.cycle() + 5;
    dom.pushDelivery(Token{Tag{0, 9}, PortRef{0, 0}, 1}, ready);
    EXPECT_EQ(dom.nextEventCycle(), ready);
}

/** mov → sink but the sink expects a second token that never comes: a
 *  graph that quiesces *incomplete*, exercising the deadlock probe. */
DataflowGraph
incompleteGraph()
{
    DataflowGraph g("incomplete", 1);
    Instruction mov;
    mov.op = Opcode::kMov;
    Instruction sink;
    sink.op = Opcode::kSink;
    const InstId movId = g.addInstruction(mov);
    const InstId sinkId = g.addInstruction(sink);
    g.inst(movId).outs[0].push_back(PortRef{sinkId, 0});
    g.addInitialToken(Token{Tag{0, 0}, PortRef{movId, 0}, 1});
    g.setExpectedSinkTokens(2);
    return g;
}

TEST(GatedClocking, DeadlockProbeFiresAroundThe1024Boundary)
{
    // The quiescence probe is 1024-aligned with an extra probe on the
    // final cycle. Budgets straddling the boundary (1023 / 1024 / 1025)
    // must all detect the quiesced-incomplete machine within budget
    // instead of spinning to max_cycles only in some of them.
    for (const Cycle budget : {1023u, 1024u, 1025u}) {
        const DataflowGraph g = incompleteGraph();
        Processor proc(g, testConfig(false));
        EXPECT_FALSE(proc.run(budget)) << "budget " << budget;
        EXPECT_TRUE(proc.quiescent()) << "budget " << budget;
        EXPECT_LE(proc.cycle(), budget) << "budget " << budget;
        EXPECT_EQ(proc.sinkCount(), 1u) << "budget " << budget;
    }
}

TEST(GatedClocking, ActivityStatsAreExportedAndConsistent)
{
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, gridConfig(false));
    ASSERT_TRUE(proc.run(2'000'000));
    StatReport r = proc.report();
    const double cycles = r.get("sim.cycles");
    double active_sum = 0.0;
    for (int c = 0; c < 4; ++c) {
        const std::string key = "activity.cluster" + std::to_string(c);
        const double active = r.get(key + ".active_cycles");
        const double skipped = r.get(key + ".skipped_cycles");
        EXPECT_DOUBLE_EQ(active + skipped, cycles) << key;
        active_sum += active;
    }
    active_sum += r.get("activity.home.active_cycles");
    active_sum += r.get("activity.mesh.active_cycles");
    EXPECT_DOUBLE_EQ(r.get("activity.active_cycles"), active_sum);
    EXPECT_DOUBLE_EQ(r.get("activity.active_cycles") +
                         r.get("activity.skipped_cycles"),
                     cycles * 6);
    const double rate = r.get("activity.skip_rate");
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    // A single-threaded kernel on a 4-cluster grid leaves most of the
    // machine idle most of the time; gating must actually skip work.
    EXPECT_GT(r.get("activity.skipped_cycles"), 0.0);
}

TEST(GatedClocking, TracerRowsAreIdenticalAcrossModes)
{
    // Interval samples observe frozen state at exact cycle boundaries,
    // so fast-forwarding must not change a single byte of the trace —
    // including the final partial-window flush.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    std::ostringstream gated_csv;
    std::ostringstream ref_csv;
    {
        Processor proc(g, testConfig(false));
        IntervalTracer tracer(gated_csv, 256);
        proc.attachTracer(&tracer);
        ASSERT_TRUE(proc.run(2'000'000));
    }
    {
        Processor proc(g, testConfig(true));
        IntervalTracer tracer(ref_csv, 256);
        proc.attachTracer(&tracer);
        ASSERT_TRUE(proc.run(2'000'000));
    }
    EXPECT_EQ(gated_csv.str(), ref_csv.str());
}

TEST(GatedClocking, TracerOddIntervalParity)
{
    // A non-power-of-two interval (7) puts sample boundaries at cycles
    // the fast-forward clamp must hit exactly; any off-by-one in the
    // (cycle / iv + 1) * iv - 1 arithmetic shows up as divergent rows.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    std::ostringstream gated_csv;
    std::ostringstream ref_csv;
    {
        Processor proc(g, testConfig(false));
        IntervalTracer tracer(gated_csv, 7);
        proc.attachTracer(&tracer);
        ASSERT_TRUE(proc.run(2'000'000));
    }
    {
        Processor proc(g, testConfig(true));
        IntervalTracer tracer(ref_csv, 7);
        proc.attachTracer(&tracer);
        ASSERT_TRUE(proc.run(2'000'000));
    }
    EXPECT_EQ(gated_csv.str(), ref_csv.str());
}

// ---------------------------------------------------------------------
// ClockParity: every kernel, both machine shapes, byte-identical
// ---------------------------------------------------------------------

void
expectParity(const Kernel &kernel, const ProcessorConfig &gated_cfg,
             unsigned threads)
{
    KernelParams p;
    p.threads = threads;
    DataflowGraph g = kernel.build(p);
    ProcessorConfig ref_cfg = gated_cfg;
    ref_cfg.alwaysTick = true;

    const SimResult a = runSimulation(g, gated_cfg);
    const SimResult b = runSimulation(g, ref_cfg);
    EXPECT_EQ(a.completed, b.completed) << kernel.name;
    EXPECT_EQ(a.cycles, b.cycles) << kernel.name;
    EXPECT_EQ(a.useful, b.useful) << kernel.name;
    EXPECT_DOUBLE_EQ(a.aipc, b.aipc) << kernel.name;
    EXPECT_EQ(a.report.toString(), b.report.toString()) << kernel.name;
}

TEST(ClockParity, EveryKernelOnTheBaselineMachine)
{
    for (const Kernel &k : kernelRegistry())
        expectParity(k, testConfig(false), 1);
}

TEST(ClockParity, EveryKernelOnAFourClusterGrid)
{
    for (const Kernel &k : kernelRegistry()) {
        expectParity(k, gridConfig(false), 1);
        if (k.multithreaded) {
            expectParity(k, gridConfig(false), 2);
            expectParity(k, gridConfig(false), 4);
        }
    }
}

// ---------------------------------------------------------------------
// CoreParity: SoA event core vs the polled reference core
// ---------------------------------------------------------------------

void
expectCoreParity(const Kernel &kernel, const ProcessorConfig &event_cfg,
                 unsigned threads)
{
    KernelParams p;
    p.threads = threads;
    DataflowGraph g = kernel.build(p);
    ProcessorConfig ref_cfg = event_cfg;
    ref_cfg.referenceCore = true;

    const SimResult a = runSimulation(g, event_cfg);
    const SimResult b = runSimulation(g, ref_cfg);
    EXPECT_EQ(a.completed, b.completed) << kernel.name;
    EXPECT_EQ(a.cycles, b.cycles) << kernel.name;
    EXPECT_EQ(a.useful, b.useful) << kernel.name;
    EXPECT_DOUBLE_EQ(a.aipc, b.aipc) << kernel.name;
    EXPECT_EQ(a.report.toString(), b.report.toString()) << kernel.name;
}

TEST(CoreParity, EveryKernelOnTheBaselineMachine)
{
    for (const Kernel &k : kernelRegistry())
        expectCoreParity(k, testConfig(false), 1);
}

TEST(CoreParity, EveryKernelOnAFourClusterGrid)
{
    for (const Kernel &k : kernelRegistry()) {
        expectCoreParity(k, gridConfig(false), 1);
        if (k.multithreaded) {
            expectCoreParity(k, gridConfig(false), 2);
            expectCoreParity(k, gridConfig(false), 4);
        }
    }
}

TEST(CoreParity, HoldsUnderFullChecking)
{
    // The parity must survive with every wscheck invariant armed — the
    // reference core is only a useful oracle if the checker stays
    // silent on both sides of the comparison.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    ProcessorConfig event_cfg = gridConfig(false);
    event_cfg.checkLevel = CheckLevel::kFull;
    ProcessorConfig ref_cfg = event_cfg;
    ref_cfg.referenceCore = true;
    Processor ev(g, event_cfg);
    Processor ref(g, ref_cfg);
    ASSERT_TRUE(ev.run(2'000'000));
    ASSERT_TRUE(ref.run(2'000'000));
    ASSERT_NE(ev.checker(), nullptr);
    ASSERT_NE(ref.checker(), nullptr);
    EXPECT_TRUE(ev.checker()->report().ok())
        << ev.checker()->report().render();
    EXPECT_TRUE(ref.checker()->report().ok())
        << ref.checker()->report().render();
    EXPECT_EQ(ev.report().toString(), ref.report().toString());
}

// ---------------------------------------------------------------------
// EventCore: un-notified components must not do (or need) work
// ---------------------------------------------------------------------

TEST(EventCore, UnarmedDomainTickIsObservableNoOp)
{
    // Ticking a domain on a cycle it was never notified for must leave
    // its observable-progress signature unchanged — the property that
    // makes skipping un-armed domains sound.
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, testConfig(false));
    ASSERT_TRUE(proc.run(2'000'000));
    Domain &dom = proc.cluster(0).domain(0);
    const std::uint64_t sig = dom.workSignature();
    const std::uint64_t ticks = dom.tickCount();
    dom.tick(proc.cycle() + 1);
    EXPECT_EQ(dom.tickCount(), ticks + 1);  // The tick did run...
    EXPECT_EQ(dom.workSignature(), sig);    // ...and changed nothing.
    EXPECT_EQ(dom.nextEventCycle(), kCycleNever);
}

TEST(EventCore, UnarmedPeTickIsObservableNoOp)
{
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    Processor proc(g, testConfig(false));
    ASSERT_TRUE(proc.run(2'000'000));
    ProcessingElement &pe = proc.cluster(0).domain(0).pe(0);
    const std::uint64_t sig = pe.workSignature();
    const std::uint64_t ticks = pe.tickCount();
    pe.tick(proc.cycle() + 1);
    EXPECT_EQ(pe.tickCount(), ticks + 1);
    EXPECT_EQ(pe.workSignature(), sig);
    EXPECT_EQ(pe.nextEventCycle(), kCycleNever);
}

TEST(EventCore, GatingActuallySkipsDomainTicks)
{
    // "Tick only what moved": on a 4-cluster grid running a
    // single-threaded kernel, the gated core must tick domains far
    // less often than the reference clocking, while producing the
    // byte-identical result (covered by CoreParity/ClockParity).
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    const ProcessorConfig cfg = gridConfig(false);
    Processor gated(g, cfg);
    Processor ref(g, gridConfig(true));
    ASSERT_TRUE(gated.run(2'000'000));
    ASSERT_TRUE(ref.run(2'000'000));
    ASSERT_EQ(gated.cycle(), ref.cycle());
    std::uint64_t gated_ticks = 0;
    std::uint64_t ref_ticks = 0;
    for (ClusterId c = 0; c < 4; ++c) {
        for (DomainId d = 0; d < cfg.domainsPerCluster; ++d) {
            gated_ticks += gated.cluster(c).domain(d).tickCount();
            ref_ticks += ref.cluster(c).domain(d).tickCount();
        }
    }
    EXPECT_GT(gated_ticks, 0u);
    // Reference clocking ticks every domain every cycle; the gated core
    // must skip the overwhelming majority of those visits here (one
    // busy cluster out of four, and ticks concentrate in one domain).
    EXPECT_LT(gated_ticks * 4, ref_ticks);
}

TEST(ClockParity, EngineBatchesMatchAcrossModesAtJobsFour)
{
    // The same parity, but driven through the work-stealing sweep
    // engine so the TSan CI job exercises the gated hot loop under
    // real concurrency.
    std::vector<SimJob> jobs[2];
    for (int mode = 0; mode < 2; ++mode) {
        for (const Kernel &k : kernelRegistry()) {
            KernelParams p;
            p.threads = k.multithreaded ? 2 : 1;
            SimJob job;
            job.graph =
                std::make_shared<const DataflowGraph>(k.build(p));
            job.cfg = gridConfig(mode == 0);
            job.maxCycles = 400'000;
            jobs[mode].push_back(std::move(job));
        }
    }
    SweepEngine::Options opts;
    opts.jobs = 4;
    opts.progress = false;
    SweepEngine engine(opts);
    const std::vector<SimResult> ref = engine.run(jobs[0]);
    const std::vector<SimResult> gated = engine.run(jobs[1]);
    ASSERT_EQ(ref.size(), gated.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(gated[i].cycles, ref[i].cycles) << "job " << i;
        EXPECT_EQ(gated[i].report.toString(), ref[i].report.toString())
            << "job " << i;
    }
}

} // namespace
} // namespace ws
