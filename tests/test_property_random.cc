/**
 * @file
 * Property-based testing: generate random (but structurally valid)
 * dataflow programs with the builder and check that the cycle-level
 * simulator and the reference interpreter agree on every architectural
 * outcome — sink values, useful-instruction counts, and final memory —
 * across machine shapes.
 *
 * The generator composes the same primitives the kernels use: loops
 * with multiple carried values, integer/FP compute, loads, decoupled
 * stores, select-predicated values, nested loops, and multiple threads
 * with disjoint memory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"

namespace ws {
namespace {

using Node = GraphBuilder::Node;

/** Random-program generator state for one thread. */
class RandomProgram
{
  public:
    RandomProgram(std::uint64_t seed, std::uint16_t threads)
        : rng_(seed), threads_(threads)
    {}

    DataflowGraph
    build()
    {
        GraphBuilder b("random", threads_);
        for (ThreadId t = 0; t < threads_; ++t) {
            // Disjoint per-thread array so multithreaded results are
            // order-independent.
            const Addr arr = b.alloc(kWords * 8);
            for (std::size_t i = 0; i < kWords; ++i) {
                b.initMem(arr + 8 * i,
                          static_cast<Value>(rng_.range(1000)));
            }
            b.beginThread(t);
            emitThread(b, arr);
            b.endThread();
        }
        return b.finish();
    }

  private:
    static constexpr std::size_t kWords = 64;

    Node
    randomValue(GraphBuilder &b, std::vector<Node> &pool)
    {
        return pool[rng_.range(pool.size())];
    }

    /** Emit one compute/memory operation over the live-value pool. */
    void
    emitOp(GraphBuilder &b, std::vector<Node> &pool, Addr arr)
    {
        switch (rng_.range(10)) {
          case 0: pool.push_back(b.add(randomValue(b, pool),
                                       randomValue(b, pool)));
            break;
          case 1: pool.push_back(b.sub(randomValue(b, pool),
                                       randomValue(b, pool)));
            break;
          case 2: pool.push_back(b.muli(randomValue(b, pool),
                                        static_cast<Value>(
                                            rng_.range(7)) + 1));
            break;
          case 3: pool.push_back(
                b.emit(Opcode::kXor, {randomValue(b, pool),
                                      randomValue(b, pool)}));
            break;
          case 4: pool.push_back(b.select(
                b.lti(randomValue(b, pool), 500),
                randomValue(b, pool), randomValue(b, pool)));
            break;
          case 5: {  // Load from the private array.
            Node idx = b.andi(randomValue(b, pool),
                              static_cast<Value>(kWords - 1));
            pool.push_back(b.load(
                b.addi(b.shli(idx, 3), static_cast<Value>(arr))));
            break;
          }
          case 6: {  // Store to the private array.
            Node idx = b.andi(randomValue(b, pool),
                              static_cast<Value>(kWords - 1));
            b.store(b.addi(b.shli(idx, 3), static_cast<Value>(arr)),
                    randomValue(b, pool));
            break;
          }
          case 7: {  // FP round trip (bit-exact both sides).
            Node f = b.emit(Opcode::kItoF, {randomValue(b, pool)});
            Node g = b.fmul(f, f);
            pool.push_back(b.emit(Opcode::kFtoI, {g}));
            break;
          }
          case 8: pool.push_back(b.shri(randomValue(b, pool), 1));
            break;
          default: pool.push_back(b.addi(randomValue(b, pool),
                                         static_cast<Value>(
                                             rng_.range(100))));
            break;
        }
    }

    /** Emit a conditional diamond over the live pool. */
    void
    emitDiamond(GraphBuilder &b, std::vector<Node> &pool, Addr arr,
                bool allow_memory)
    {
        Node cond = b.lti(randomValue(b, pool),
                          static_cast<Value>(rng_.range(1000)));
        GraphBuilder::IfElse ie =
            b.beginIf(cond, {randomValue(b, pool), randomValue(b, pool)});

        auto arm = [&](std::vector<Node> vars) {
            std::vector<Node> local = std::move(vars);
            const int ops = 1 + static_cast<int>(rng_.range(3));
            for (int i = 0; i < ops; ++i) {
                // Compute-only subset of emitOp plus optional memory.
                switch (rng_.range(allow_memory ? 5 : 4)) {
                  case 0: local.push_back(b.add(randomValue(b, local),
                                                randomValue(b, local)));
                    break;
                  case 1: local.push_back(
                        b.muli(randomValue(b, local),
                               static_cast<Value>(rng_.range(5)) + 1));
                    break;
                  case 2: local.push_back(
                        b.emit(Opcode::kXor, {randomValue(b, local),
                                              randomValue(b, local)}));
                    break;
                  case 3: local.push_back(b.shri(randomValue(b, local),
                                                 1));
                    break;
                  default: {
                    Node idx = b.andi(randomValue(b, local),
                                      static_cast<Value>(kWords - 1));
                    Node addr = b.addi(b.shli(idx, 3),
                                       static_cast<Value>(arr));
                    if (rng_.chance(0.5))
                        local.push_back(b.load(addr));
                    else
                        b.store(addr, randomValue(b, local));
                    break;
                  }
                }
            }
            return std::vector<Node>{local[local.size() - 1],
                                     local[local.size() - 2]};
        };

        std::vector<Node> then_out = arm(ie.vars);
        b.elseArm(ie, then_out);
        std::vector<Node> else_out = arm(ie.vars);
        b.endIf(ie, else_out);
        pool.insert(pool.end(), ie.merged.begin(), ie.merged.end());
    }

    /** Emit a loop; may recurse one level for a nested loop. */
    void
    emitLoop(GraphBuilder &b, std::vector<Node> &pool, Addr arr,
             int depth)
    {
        // Carry 2-3 values. pool[0] is the thread's counter lineage: it
        // must stay carried value 0 of every loop so termination
        // arguments survive nesting (the counter only ever grows).
        const std::size_t carried =
            2 + rng_.range(2);
        std::vector<Node> inits;
        inits.push_back(pool[0]);
        for (std::size_t i = 1; i < carried; ++i)
            inits.push_back(randomValue(b, pool));
        GraphBuilder::Loop loop = b.beginLoop(inits);

        std::vector<Node> body(loop.vars.begin(), loop.vars.end());
        const int ops = 3 + static_cast<int>(rng_.range(6));
        for (int i = 0; i < ops; ++i)
            emitOp(b, body, arr);
        if (rng_.chance(0.4))
            emitDiamond(b, body, arr, /*allow_memory=*/true);
        if (depth == 0 && rng_.chance(0.3)) {
            emitLoop(b, body, arr, 1);
        }

        // Loop control: first carried value counts iterations.
        Node counter = b.addi(body[0], 1);
        std::vector<Node> nexts;
        nexts.push_back(counter);
        for (std::size_t i = 1; i < carried; ++i)
            nexts.push_back(body[rng_.range(body.size())]);
        const Value bound = 3 + static_cast<Value>(rng_.range(6));
        // The counter may start anywhere; bound the *remaining* trip
        // count via a modulus to keep runs short.
        Node cond = b.lti(b.emit(Opcode::kRemi, {counter}, 64),
                          bound);
        b.endLoop(loop, nexts, cond);

        // Values from before the loop belong to a dead wave region; the
        // only live values afterwards are the loop exits.
        pool.clear();
        pool.insert(pool.end(), loop.exits.begin(), loop.exits.end());
    }

    void
    emitThread(GraphBuilder &b, Addr arr)
    {
        std::vector<Node> pool;
        pool.push_back(b.param(static_cast<Value>(rng_.range(50))));
        pool.push_back(b.param(static_cast<Value>(rng_.range(50))));
        const int ops = 4 + static_cast<int>(rng_.range(5));
        for (int i = 0; i < ops; ++i)
            emitOp(b, pool, arr);
        const int loops = 1 + static_cast<int>(rng_.range(3));
        for (int l = 0; l < loops; ++l) {
            emitLoop(b, pool, arr, 0);
            for (int i = 0; i < 3; ++i)
                emitOp(b, pool, arr);
        }
        b.sink(pool.back(), 1);
    }

    Rng rng_;
    std::uint16_t threads_;
};

class RandomGraphEquivalence : public testing::TestWithParam<int>
{};

TEST_P(RandomGraphEquivalence, SimulatorMatchesInterpreter)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    DataflowGraph g_ref = RandomProgram(seed, 1).build();
    DataflowGraph g_sim = RandomProgram(seed, 1).build();

    InterpResult ref = interpret(g_ref);
    ASSERT_TRUE(ref.completed) << "seed " << seed;

    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g_sim, cfg);
    ASSERT_TRUE(proc.run(3'000'000)) << "seed " << seed;

    EXPECT_EQ(proc.usefulExecuted(), ref.useful) << "seed " << seed;
    for (const auto &[addr, value] : ref.memory) {
        EXPECT_EQ(proc.memory().read(addr), value)
            << "seed " << seed << " @ 0x" << std::hex << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphEquivalence,
                         testing::Range(1, 41));

class RandomGraphMachines : public testing::TestWithParam<int>
{};

TEST_P(RandomGraphMachines, ResultsIndependentOfMachineShape)
{
    // The same program must produce identical architectural results on
    // very different machines (tiny matching tables force overflow
    // matching; multicluster forces grid traffic and coherence).
    const auto seed = static_cast<std::uint64_t>(GetParam()) + 1000;
    InterpResult ref = interpret(RandomProgram(seed, 2).build());
    ASSERT_TRUE(ref.completed);

    struct Shape
    {
        std::uint16_t clusters;
        unsigned matching;
        unsigned k;
    };
    for (const Shape &shape : {Shape{1, 128, 4}, Shape{1, 16, 1},
                               Shape{4, 64, 2}}) {
        DataflowGraph g = RandomProgram(seed, 2).build();
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.clusters = shape.clusters;
        cfg.pe.matchingEntries = shape.matching;
        cfg.pe.matchingWays = shape.matching >= 32 ? 2 : 2;
        cfg.pe.k = shape.k;
        cfg.memory.l2Bytes = 1 << 20;
        Processor proc(g, cfg);
        ASSERT_TRUE(proc.run(5'000'000))
            << "seed " << seed << " C" << shape.clusters << " M"
            << shape.matching;
        EXPECT_EQ(proc.usefulExecuted(), ref.useful)
            << "seed " << seed << " C" << shape.clusters;
        for (const auto &[addr, value] : ref.memory) {
            ASSERT_EQ(proc.memory().read(addr), value)
                << "seed " << seed << " C" << shape.clusters << " @ 0x"
                << std::hex << addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphMachines,
                         testing::Range(1, 13));

} // namespace
} // namespace ws
