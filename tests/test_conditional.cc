/**
 * @file
 * Conditional control flow (beginIf/elseArm/endIf): steer-based
 * diamonds, value merging, and — critically — wave-ordered memory under
 * control flow: '?' wildcard links, MEMORY-NOP insertion on memory-free
 * arms, and end-to-end agreement between simulator and interpreter.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/processor.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"

namespace ws {
namespace {

using Node = GraphBuilder::Node;

/**
 * |abs| via a diamond: out = cond ? x : -x, over a loop of inputs.
 * Exercises pure-compute arms (no memory).
 */
DataflowGraph
absGraph()
{
    GraphBuilder b("abs");
    b.beginThread(0);
    auto i0 = b.param(-8);
    auto acc0 = b.param(0);
    auto loop = b.beginLoop({i0, acc0});
    auto i = loop.vars[0];
    auto acc = loop.vars[1];
    auto nonneg = b.emit(Opcode::kLe, {b.lit(0, i), i});
    GraphBuilder::IfElse ie = b.beginIf(nonneg, {i});
    Node then_v = ie.vars[0];
    b.elseArm(ie, {then_v});
    Node else_v = b.emit(Opcode::kNeg, {ie.vars[0]});
    b.endIf(ie, {else_v});
    acc = b.add(acc, ie.merged[0]);
    auto i_next = b.addi(i, 1);
    b.endLoop(loop, {i_next, acc}, b.lti(i_next, 9));
    b.sink(loop.exits[1], 1);
    b.endThread();
    return b.finish();
}

TEST(Conditional, ComputeDiamondMergesCorrectArm)
{
    DataflowGraph g = absGraph();
    InterpResult r = interpret(g);
    ASSERT_TRUE(r.completed);
    // sum(|i|) for i in -8..8 = 2*36 + 0 = 72.
    EXPECT_EQ(r.sinkValues.at(0), 72);
}

TEST(Conditional, SimulatorAgreesOnComputeDiamond)
{
    DataflowGraph g = absGraph();
    InterpResult ref = interpret(absGraph());
    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(200000));
    EXPECT_EQ(proc.usefulExecuted(), ref.useful);
}

/**
 * Conditional store: even iterations store to a[i], odd ones only
 * compute. The else arm gets an inserted MEMORY-NOP; the chain around
 * the diamond carries '?' links.
 */
DataflowGraph
condStoreGraph(Addr *out_base)
{
    GraphBuilder b("condstore");
    const Addr base = b.alloc(8 * 16);
    *out_base = base;
    b.beginThread(0);
    auto i0 = b.param(0);
    auto acc0 = b.param(0);
    auto loop = b.beginLoop({i0, acc0});
    auto i = loop.vars[0];
    auto acc = loop.vars[1];
    // A load before the branch anchors the pre-diamond chain.
    auto seen = b.load(b.addi(b.shli(i, 3), static_cast<Value>(base)));
    auto is_even = b.eqi(b.andi(i, 1), 0);
    GraphBuilder::IfElse ie = b.beginIf(is_even, {i});
    Node tv = ie.vars[0];
    b.store(b.addi(b.shli(tv, 3), static_cast<Value>(base)),
            b.muli(tv, 3));
    b.elseArm(ie, {tv});
    Node ev = b.muli(ie.vars[0], 1);
    b.endIf(ie, {ev});
    acc = b.add(acc, b.add(ie.merged[0], seen));
    auto i_next = b.addi(i, 1);
    b.endLoop(loop, {i_next, acc}, b.lti(i_next, 16));
    b.sink(loop.exits[1], 1);
    b.endThread();
    return b.finish();
}

TEST(Conditional, MemoryArmGetsWildcardLinks)
{
    Addr base = 0;
    DataflowGraph g = condStoreGraph(&base);
    // The body region's chain: load (next='?'), store (arm), memnop
    // (inserted for the else arm).
    bool found_wildcard_next = false;
    bool found_memnop = false;
    for (const auto &inst : g.instructions()) {
        if (inst.mem.valid && inst.mem.next == kSeqWildcard)
            found_wildcard_next = true;
        if (inst.op == Opcode::kMemNop && inst.mem.prev >= 0)
            found_memnop = true;
    }
    EXPECT_TRUE(found_wildcard_next);
    EXPECT_TRUE(found_memnop);
}

TEST(Conditional, InterpreterExecutesConditionalStores)
{
    Addr base = 0;
    DataflowGraph g = condStoreGraph(&base);
    InterpResult r = interpret(g);
    ASSERT_TRUE(r.completed);
    for (Value i = 2; i < 16; i += 2)   // i=0 stores 0, which the
        EXPECT_EQ(r.memory.at(base + 8 * static_cast<Addr>(i)), 3 * i);
                                        // interpreter prunes.
    for (Value i = 1; i < 16; i += 2)
        EXPECT_EQ(r.memory.count(base + 8 * static_cast<Addr>(i)), 0u);
}

TEST(Conditional, SimulatorMatchesInterpreterWithConditionalMemory)
{
    Addr base = 0;
    DataflowGraph g_sim = condStoreGraph(&base);
    Addr base2 = 0;
    InterpResult ref = interpret(condStoreGraph(&base2));
    ASSERT_TRUE(ref.completed);

    Processor proc(g_sim, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(500000));
    EXPECT_EQ(proc.usefulExecuted(), ref.useful);
    for (const auto &[addr, value] : ref.memory)
        EXPECT_EQ(proc.memory().read(addr), value);
}

TEST(Conditional, BothArmsWithMemory)
{
    // if even: a[i] = i else b[i] = 2i — memory on both arms.
    GraphBuilder b("botharms");
    const Addr aarr = b.alloc(8 * 8);
    const Addr barr = b.alloc(8 * 8);
    b.beginThread(0);
    auto i0 = b.param(0);
    auto loop = b.beginLoop({i0});
    auto i = loop.vars[0];
    auto is_even = b.eqi(b.andi(i, 1), 0);
    GraphBuilder::IfElse ie = b.beginIf(is_even, {i});
    b.store(b.addi(b.shli(ie.vars[0], 3), static_cast<Value>(aarr)),
            ie.vars[0]);
    b.elseArm(ie, {ie.vars[0]});
    b.store(b.addi(b.shli(ie.vars[0], 3), static_cast<Value>(barr)),
            b.muli(ie.vars[0], 2));
    b.endIf(ie, {ie.vars[0]});
    auto i_next = b.addi(ie.merged[0], 1);
    b.endLoop(loop, {i_next}, b.lti(i_next, 8));
    b.sink(loop.exits[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult ref = interpret(g);
    ASSERT_TRUE(ref.completed);

    GraphBuilder b2("x");
    (void)b2;
    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(500000));
    for (Value i = 0; i < 8; i += 2)
        EXPECT_EQ(proc.memory().read(aarr + 8 * static_cast<Addr>(i)), i);
    for (Value i = 1; i < 8; i += 2) {
        EXPECT_EQ(proc.memory().read(barr + 8 * static_cast<Addr>(i)),
                  2 * i);
    }
}

TEST(Conditional, NestedComputeOnlyDiamonds)
{
    // sign(x) via nested conditionals: (x>0) ? 1 : ((x<0) ? -1 : 0).
    GraphBuilder b("sign");
    b.beginThread(0);
    auto i0 = b.param(-3);
    auto acc0 = b.param(0);
    auto loop = b.beginLoop({i0, acc0});
    auto i = loop.vars[0];
    auto acc = loop.vars[1];
    auto pos = b.emit(Opcode::kLt, {b.lit(0, i), i});
    GraphBuilder::IfElse outer = b.beginIf(pos, {i});
    Node t = b.lit(1, outer.vars[0]);
    b.elseArm(outer, {t});
    auto neg = b.lti(outer.vars[0], 0);
    GraphBuilder::IfElse inner = b.beginIf(neg, {outer.vars[0]});
    Node tt = b.lit(-1, inner.vars[0]);
    b.elseArm(inner, {tt});
    Node ee = b.lit(0, inner.vars[0]);
    b.endIf(inner, {ee});
    b.endIf(outer, {inner.merged[0]});
    acc = b.add(acc, outer.merged[0]);
    auto i_next = b.addi(i, 1);
    b.endLoop(loop, {i_next, acc}, b.lti(i_next, 4));
    b.sink(loop.exits[1], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult r = interpret(g);
    ASSERT_TRUE(r.completed);
    // signs of -3..3: -1*3 + 0 + 1*3 = 0.
    EXPECT_EQ(r.sinkValues.at(0), 0);
}

TEST(Conditional, MemoryInNestedConditionalIsFatal)
{
    GraphBuilder b("bad");
    const Addr a = b.alloc(8);
    b.beginThread(0);
    auto x = b.param(1);
    auto c1 = b.lti(x, 5);
    GraphBuilder::IfElse outer = b.beginIf(c1, {x});
    auto c2 = b.lti(outer.vars[0], 3);
    GraphBuilder::IfElse inner = b.beginIf(c2, {outer.vars[0]});
    EXPECT_THROW(
        b.store(b.lit(static_cast<Value>(a), inner.vars[0]),
                inner.vars[0]),
        FatalError);
}

TEST(Conditional, LoopInsideConditionalIsFatal)
{
    GraphBuilder b("bad");
    b.beginThread(0);
    auto x = b.param(1);
    GraphBuilder::IfElse ie = b.beginIf(b.lti(x, 5), {x});
    EXPECT_THROW(b.beginLoop({ie.vars[0]}), FatalError);
}

TEST(Conditional, MismatchedResultsAreFatal)
{
    GraphBuilder b("bad");
    b.beginThread(0);
    auto x = b.param(1);
    GraphBuilder::IfElse ie = b.beginIf(b.lti(x, 5), {x});
    b.elseArm(ie, {ie.vars[0]});
    EXPECT_THROW(b.endIf(ie, {}), FatalError);
}

TEST(Conditional, EndIfWithoutElseIsFatal)
{
    GraphBuilder b("bad");
    b.beginThread(0);
    auto x = b.param(1);
    GraphBuilder::IfElse ie = b.beginIf(b.lti(x, 5), {x});
    EXPECT_THROW(b.endIf(ie, {ie.vars[0]}), FatalError);
}

} // namespace
} // namespace ws
