/**
 * @file
 * Tests for the static verifier (src/verify): a corpus of hand-built
 * malformed graphs in which every diagnostic code fires — the six
 * headline defects exactly once — plus clean passes over the fixtures
 * and the whole kernel suite, and the strict validate() wrapper.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/config.h"
#include "isa/assembly.h"
#include "kernels/kernel.h"
#include "verify/verifier.h"

namespace ws {
namespace {

Instruction
makeInst(Opcode op, ThreadId thread = 0)
{
    Instruction in;
    in.op = op;
    in.thread = thread;
    return in;
}

Instruction
makeMemInst(Opcode op, std::int32_t prev, std::int32_t seq,
            std::int32_t next, ThreadId thread = 0)
{
    Instruction in = makeInst(op, thread);
    in.mem.prev = prev;
    in.mem.seq = seq;
    in.mem.next = next;
    in.mem.valid = true;
    return in;
}

Token
makeToken(InstId inst, std::uint8_t port = 0, ThreadId thread = 0,
          WaveNum wave = 0, Value value = 0)
{
    Token t;
    t.tag = Tag{thread, wave};
    t.dst = PortRef{inst, port};
    t.value = value;
    return t;
}

/** mov -> sink, one token, one expected completion; verifies clean. */
DataflowGraph
cleanBase(const std::string &name = "base")
{
    DataflowGraph g(name);
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0].push_back(PortRef{sink, 0});
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(1);
    return g;
}

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(WS_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// Diagnostics engine -----------------------------------------------------

TEST(Diagnostics, EveryCodeHasLabelSeverityAndSummary)
{
    ASSERT_FALSE(allDiagCodes().empty());
    for (DiagCode code : allDiagCodes()) {
        const std::string label = diagCodeLabel(code);
        EXPECT_EQ(label.substr(0, 2), "WS");
        EXPECT_EQ(label,
                  "WS" + std::to_string(static_cast<unsigned>(code)));
        EXPECT_NE(diagCodeSummary(code)[0], '\0');
    }
}

TEST(Diagnostics, SeverityMapping)
{
    // Flow dead-code and the capacity lints are advisory; everything
    // else breaks an execution-model invariant.
    EXPECT_EQ(diagSeverity(DiagCode::kDeadInst), Severity::kWarning);
    EXPECT_EQ(diagSeverity(DiagCode::kWideFanIn), Severity::kNote);
    EXPECT_EQ(diagSeverity(DiagCode::kPortFanInPressure),
              Severity::kWarning);
    EXPECT_EQ(diagSeverity(DiagCode::kCapacityExceeded),
              Severity::kWarning);
    EXPECT_EQ(diagSeverity(DiagCode::kStarvedPort), Severity::kError);
    EXPECT_EQ(diagSeverity(DiagCode::kUnresolvableWildcard),
              Severity::kError);
}

TEST(Diagnostics, ReportCountsAndRender)
{
    VerifyReport rep("demo");
    EXPECT_TRUE(rep.ok());
    EXPECT_TRUE(rep.empty());
    EXPECT_EQ(rep.render(), "");

    rep.add(DiagCode::kStarvedPort, 4, "input port 1 has no producer");
    rep.add(DiagCode::kDeadInst, 7, "unreachable");
    rep.add(DiagCode::kWideFanIn, kInvalidInst, "2 wide rows");

    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.errorCount(), 1u);
    EXPECT_EQ(rep.warningCount(), 1u);
    EXPECT_EQ(rep.noteCount(), 1u);
    EXPECT_EQ(rep.count(DiagCode::kStarvedPort), 1u);
    EXPECT_TRUE(rep.has(DiagCode::kDeadInst));
    EXPECT_FALSE(rep.has(DiagCode::kWavelessCycle));

    const std::string text = rep.render();
    EXPECT_NE(text.find("error[WS106] inst 4"), std::string::npos);
    EXPECT_NE(text.find("warning[WS301]"), std::string::npos);
    EXPECT_NE(text.find("note[WS401]"), std::string::npos);
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find(rep.summary()), std::string::npos);
}

// Structural pass (WS1xx) ------------------------------------------------

TEST(VerifyStructural, CleanBaseHasNoFindings)
{
    const VerifyReport rep = verify(cleanBase());
    EXPECT_TRUE(rep.empty()) << rep.render();
}

TEST(VerifyStructural, DanglingTarget)
{
    DataflowGraph g = cleanBase();
    g.inst(0).outs[0].push_back(PortRef{99, 0});
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kDanglingTarget), 1u) << rep.render();
    EXPECT_FALSE(rep.ok());
}

TEST(VerifyStructural, ArityOverflowFiresExactlyOnce)
{
    // mov fans out to both add inputs plus a port past the add's arity.
    DataflowGraph g("arity");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId add = g.addInstruction(makeInst(Opcode::kAdd));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0] = {PortRef{add, 0}, PortRef{add, 1},
                           PortRef{add, 5}};
    g.inst(add).outs[0].push_back(PortRef{sink, 0});
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(1);

    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kPortOutOfRange), 1u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyStructural, FalseSideOnNonSteer)
{
    DataflowGraph g = cleanBase();
    g.inst(0).outs[1].push_back(PortRef{1, 0});
    EXPECT_EQ(verify(g).count(DiagCode::kFalseSideNonSteer), 1u);
}

TEST(VerifyStructural, MemAnnotationMismatchBothDirections)
{
    // A mov carrying an annotation, and a load missing one.
    DataflowGraph g = cleanBase();
    g.inst(0).mem.valid = true;
    EXPECT_EQ(verify(g).count(DiagCode::kMemAnnotationMismatch), 1u);

    DataflowGraph h("bare-load");
    InstId mov = h.addInstruction(makeInst(Opcode::kMov));
    InstId load = h.addInstruction(makeInst(Opcode::kLoad));
    h.inst(mov).outs[0].push_back(PortRef{load, 0});
    h.addInitialToken(makeToken(mov));
    EXPECT_EQ(verify(h).count(DiagCode::kMemAnnotationMismatch), 1u);
}

TEST(VerifyStructural, ThreadOutOfRange)
{
    DataflowGraph g = cleanBase();
    g.inst(1).thread = 3;  // Graph declares a single thread.
    EXPECT_EQ(verify(g).count(DiagCode::kThreadOutOfRange), 1u);
}

TEST(VerifyStructural, StarvedPortFiresExactlyOnce)
{
    // The add's second input has neither a producer nor a token.
    DataflowGraph g("starved");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId add = g.addInstruction(makeInst(Opcode::kAdd));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0].push_back(PortRef{add, 0});
    g.inst(add).outs[0].push_back(PortRef{sink, 0});
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(1);

    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kStarvedPort), 1u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyStructural, StarvedPortSatisfiedByToken)
{
    // An initial token counts as a producer: no WS106.
    DataflowGraph g("token-fed");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId add = g.addInstruction(makeInst(Opcode::kAdd));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0].push_back(PortRef{add, 0});
    g.inst(add).outs[0].push_back(PortRef{sink, 0});
    g.addInitialToken(makeToken(mov));
    g.addInitialToken(makeToken(add, 1));
    g.setExpectedSinkTokens(1);
    const VerifyReport rep = verify(g);
    EXPECT_TRUE(rep.empty()) << rep.render();
}

TEST(VerifyStructural, BadInitialToken)
{
    DataflowGraph g = cleanBase();
    g.addInitialToken(makeToken(99));                // No such inst.
    g.addInitialToken(makeToken(0, 7));              // No such port.
    g.addInitialToken(makeToken(0, 0, /*thread=*/5));  // No such thread.
    EXPECT_EQ(verify(g).count(DiagCode::kBadInitialToken), 3u);
}

TEST(VerifyStructural, OverfedPort)
{
    DataflowGraph g = cleanBase();
    g.addInitialToken(makeToken(0));  // Same (inst, port, thread, wave).
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kOverfedPort), 1u) << rep.render();
}

TEST(VerifyStructural, DistinctWavesDoNotCollide)
{
    DataflowGraph g = cleanBase();
    g.addInitialToken(makeToken(0, 0, 0, /*wave=*/1));
    g.setExpectedSinkTokens(2);
    const VerifyReport rep = verify(g);
    EXPECT_FALSE(rep.has(DiagCode::kOverfedPort)) << rep.render();
}

// Wave-order pass (WS2xx) ------------------------------------------------

/**
 * mov fans out to @p chainLength loads forming one registered chain with
 * dense sequence numbers and straight-line links; callers then corrupt
 * one link to probe a single code.
 */
DataflowGraph
chainGraph(std::size_t chainLength)
{
    DataflowGraph g("chain");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    std::vector<InstId> chain;
    for (std::size_t i = 0; i < chainLength; ++i) {
        const auto seq = static_cast<std::int32_t>(i);
        const std::int32_t prev = (i == 0) ? kSeqNone : seq - 1;
        const std::int32_t next =
            (i + 1 == chainLength) ? kSeqNone : seq + 1;
        InstId load =
            g.addInstruction(makeMemInst(Opcode::kLoad, prev, seq, next));
        g.inst(mov).outs[0].push_back(PortRef{load, 0});
        chain.push_back(load);
    }
    g.addMemRegion(chain);
    g.addInitialToken(makeToken(mov));
    return g;
}

TEST(VerifyWaveOrder, IntactChainIsClean)
{
    const VerifyReport rep = verify(chainGraph(3));
    EXPECT_TRUE(rep.empty()) << rep.render();
}

TEST(VerifyWaveOrder, EmptyRegion)
{
    DataflowGraph g = cleanBase();
    g.addMemRegion({});
    EXPECT_EQ(verify(g).count(DiagCode::kEmptyRegion), 1u);
}

TEST(VerifyWaveOrder, NonChainableRegionMember)
{
    // A registered chain that smuggles in a non-memory op (the mov).
    DataflowGraph bad("member");
    InstId mov = bad.addInstruction(makeInst(Opcode::kMov));
    InstId load = bad.addInstruction(
        makeMemInst(Opcode::kLoad, kSeqNone, 0, kSeqNone));
    bad.inst(mov).outs[0].push_back(PortRef{load, 0});
    bad.addInitialToken(makeToken(mov));
    bad.addMemRegion({load, mov});
    const VerifyReport rep = verify(bad);
    EXPECT_EQ(rep.count(DiagCode::kBadRegionMember), 1u) << rep.render();
}

TEST(VerifyWaveOrder, RegionThreadMix)
{
    DataflowGraph g("mix", /*num_threads=*/2);
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId a = g.addInstruction(
        makeMemInst(Opcode::kLoad, kSeqNone, 0, 1, /*thread=*/0));
    InstId b = g.addInstruction(
        makeMemInst(Opcode::kLoad, 0, 1, kSeqNone, /*thread=*/1));
    g.inst(mov).outs[0] = {PortRef{a, 0}, PortRef{b, 0}};
    g.addInitialToken(makeToken(mov));
    g.addMemRegion({a, b});
    EXPECT_EQ(verify(g).count(DiagCode::kRegionThreadMix), 1u);
}

TEST(VerifyWaveOrder, NonDenseSequence)
{
    DataflowGraph g = chainGraph(2);
    g.inst(2).mem.seq = 2;  // 0, 2: a hole at 1.
    g.inst(2).mem.prev = 1;
    EXPECT_EQ(verify(g).count(DiagCode::kNonDenseSeq), 1u);
}

TEST(VerifyWaveOrder, BrokenPrevLinkFiresExactlyOnce)
{
    DataflowGraph g = chainGraph(2);
    g.inst(2).mem.prev = 7;        // Out of the chain's seq range.
    g.inst(1).mem.next = kSeqNone; // Keep the intact side consistent so
                                   // only the range check (not WS207)
                                   // fires.
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kBadPrevLink), 1u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyWaveOrder, BrokenNextLinkFiresExactlyOnce)
{
    DataflowGraph g = chainGraph(2);
    g.inst(1).mem.next = 5;  // Out of the chain's seq range.
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kBadNextLink), 1u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyWaveOrder, InconsistentLinksFireExactlyOnce)
{
    // seq 0 names seq 1 as successor, but seq 1 claims no predecessor.
    DataflowGraph g = chainGraph(2);
    g.inst(2).mem.prev = kSeqNone;
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kLinkMismatch), 1u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyWaveOrder, UnresolvableWildcardFiresExactlyOnce)
{
    // A '?' next with a single claimant: one steer arm lost its
    // MEMORY-NOP (§3.3.1).
    DataflowGraph g = chainGraph(2);
    g.inst(1).mem.next = kSeqWildcard;
    g.inst(2).mem.prev = 0;  // Only claimant.
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kUnresolvableWildcard), 1u)
        << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyWaveOrder, ResolvableWildcardIsClean)
{
    // The textbook diamond: seq 0 forks to '?', both arms (1 and 2)
    // claim it, both rejoin at 3 through its '?' prev.
    DataflowGraph g("diamond");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId head = g.addInstruction(
        makeMemInst(Opcode::kMemNop, kSeqNone, 0, kSeqWildcard));
    InstId left = g.addInstruction(
        makeMemInst(Opcode::kMemNop, 0, 1, 3));
    InstId right = g.addInstruction(
        makeMemInst(Opcode::kMemNop, 0, 2, 3));
    InstId join = g.addInstruction(
        makeMemInst(Opcode::kMemNop, kSeqWildcard, 3, kSeqNone));
    g.inst(mov).outs[0] = {PortRef{head, 0}, PortRef{left, 0},
                           PortRef{right, 0}, PortRef{join, 0}};
    g.addInitialToken(makeToken(mov));
    g.addMemRegion({head, left, right, join});
    const VerifyReport rep = verify(g);
    EXPECT_TRUE(rep.empty()) << rep.render();
}

TEST(VerifyWaveOrder, UnregisteredMemOp)
{
    // A load carrying an annotation but belonging to no chain.
    DataflowGraph g("unregistered");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId load = g.addInstruction(
        makeMemInst(Opcode::kLoad, kSeqNone, 0, kSeqNone));
    g.inst(mov).outs[0].push_back(PortRef{load, 0});
    g.addInitialToken(makeToken(mov));
    EXPECT_EQ(verify(g).count(DiagCode::kUnregisteredMemOp), 1u);
}

TEST(VerifyWaveOrder, OrphanStoreData)
{
    // A data half whose (thread, seq) matches no store_addr slot.
    DataflowGraph g("orphan");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId sd = g.addInstruction(
        makeMemInst(Opcode::kStoreData, kSeqNone, 4, kSeqNone));
    g.inst(mov).outs[0].push_back(PortRef{sd, 0});
    g.addInitialToken(makeToken(mov));
    EXPECT_EQ(verify(g).count(DiagCode::kOrphanStoreData), 1u);
}

TEST(VerifyWaveOrder, PairedStoreHalvesAreClean)
{
    // store_addr seq 0 in the chain; store_data rides the same slot.
    DataflowGraph g("paired");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId sa = g.addInstruction(
        makeMemInst(Opcode::kStoreAddr, kSeqNone, 0, kSeqNone));
    InstId sd = g.addInstruction(
        makeMemInst(Opcode::kStoreData, kSeqNone, 0, kSeqNone));
    g.inst(mov).outs[0] = {PortRef{sa, 0}, PortRef{sd, 0}};
    g.addInitialToken(makeToken(mov));
    g.addMemRegion({sa});
    const VerifyReport rep = verify(g);
    EXPECT_TRUE(rep.empty()) << rep.render();
}

// Flow pass (WS3xx) ------------------------------------------------------

TEST(VerifyFlow, DeadInstFiresExactlyOnce)
{
    DataflowGraph g = cleanBase();
    g.addInstruction(makeInst(Opcode::kMov));  // No path from any token.
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kDeadInst), 1u) << rep.render();
}

TEST(VerifyFlow, NoReachableSink)
{
    DataflowGraph g("sinkless");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(1);  // Completion promised, never delivered.
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kNoReachableSink), 1u) << rep.render();
    EXPECT_FALSE(rep.ok());
}

TEST(VerifyFlow, NoCompletionDeclaredNoSinkNeeded)
{
    DataflowGraph g("quiet");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    g.addInitialToken(makeToken(mov));
    const VerifyReport rep = verify(g);
    EXPECT_FALSE(rep.has(DiagCode::kNoReachableSink)) << rep.render();
}

TEST(VerifyFlow, WavelessCycleFiresExactlyOnce)
{
    // a <-> b with no WAVE_ADVANCE: identically-tagged tokens chase
    // each other forever (static deadlock / livelock).
    DataflowGraph g("cycle");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId a = g.addInstruction(makeInst(Opcode::kMov));
    InstId b = g.addInstruction(makeInst(Opcode::kMov));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0].push_back(PortRef{a, 0});
    g.inst(a).outs[0] = {PortRef{b, 0}, PortRef{sink, 0}};
    g.inst(b).outs[0].push_back(PortRef{a, 0});
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(1);

    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kWavelessCycle), 1u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

TEST(VerifyFlow, WaveAdvanceLegitimizesCycle)
{
    // The same loop with a WAVE_ADVANCE on the back edge is the normal
    // loop idiom and must pass.
    DataflowGraph g("loop");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId a = g.addInstruction(makeInst(Opcode::kMov));
    InstId b = g.addInstruction(makeInst(Opcode::kWaveAdvance));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0].push_back(PortRef{a, 0});
    g.inst(a).outs[0] = {PortRef{b, 0}, PortRef{sink, 0}};
    g.inst(b).outs[0].push_back(PortRef{a, 0});
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(1);
    const VerifyReport rep = verify(g);
    EXPECT_FALSE(rep.has(DiagCode::kWavelessCycle)) << rep.render();
    EXPECT_TRUE(rep.ok()) << rep.render();
}

// Capacity pass (WS4xx) --------------------------------------------------

TEST(VerifyCapacity, WideFanInIsOneAggregatedNote)
{
    DataflowGraph g("select");
    InstId mov = g.addInstruction(makeInst(Opcode::kMov));
    InstId sel = g.addInstruction(makeInst(Opcode::kSelect));
    InstId sel2 = g.addInstruction(makeInst(Opcode::kSelect));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(mov).outs[0] = {PortRef{sel, 0},  PortRef{sel, 1},
                           PortRef{sel, 2},  PortRef{sel2, 0},
                           PortRef{sel2, 1}, PortRef{sel2, 2}};
    g.inst(sel).outs[0].push_back(PortRef{sink, 0});
    g.inst(sel2).outs[0].push_back(PortRef{sink, 0});
    g.addInitialToken(makeToken(mov));
    g.setExpectedSinkTokens(2);

    const VerifyReport rep = verify(g, VerifyLimits{});
    // Two wide instructions, one aggregated note.
    EXPECT_EQ(rep.count(DiagCode::kWideFanIn), 1u) << rep.render();
    EXPECT_EQ(rep.noteCount(), 1u) << rep.render();
    EXPECT_TRUE(rep.ok()) << rep.render();
    EXPECT_EQ(rep.warningCount(), 0u) << rep.render();

    // Without limits the capacity pass does not run at all.
    EXPECT_FALSE(verify(g).has(DiagCode::kWideFanIn));
}

TEST(VerifyCapacity, PortFanInPressure)
{
    // Three static producers aimed at one input port: beyond what
    // structured control flow produces, and beyond the matching table.
    DataflowGraph g("pressure");
    InstId m0 = g.addInstruction(makeInst(Opcode::kMov));
    InstId m1 = g.addInstruction(makeInst(Opcode::kMov));
    InstId m2 = g.addInstruction(makeInst(Opcode::kMov));
    InstId add = g.addInstruction(makeInst(Opcode::kAdd));
    InstId sink = g.addInstruction(makeInst(Opcode::kSink));
    g.inst(m0).outs[0] = {PortRef{add, 0}, PortRef{add, 1}};
    g.inst(m1).outs[0].push_back(PortRef{add, 0});
    g.inst(m2).outs[0].push_back(PortRef{add, 0});
    g.inst(add).outs[0].push_back(PortRef{sink, 0});
    g.addInitialToken(makeToken(m0));
    g.addInitialToken(makeToken(m1));
    g.addInitialToken(makeToken(m2));
    g.setExpectedSinkTokens(1);

    const VerifyReport rep = verify(g, VerifyLimits{});
    EXPECT_EQ(rep.count(DiagCode::kPortFanInPressure), 1u)
        << rep.render();
    EXPECT_EQ(rep.warningCount(), 1u) << rep.render();
    EXPECT_TRUE(rep.ok()) << rep.render();
}

TEST(VerifyCapacity, InstructionCapacityExceeded)
{
    VerifyLimits limits;
    limits.instructionCapacity = 1;
    const VerifyReport rep = verify(cleanBase(), limits);
    EXPECT_EQ(rep.count(DiagCode::kCapacityExceeded), 1u)
        << rep.render();
    EXPECT_EQ(rep.warningCount(), 1u) << rep.render();

    limits.instructionCapacity = 0;  // Zero disables the check.
    EXPECT_FALSE(
        verify(cleanBase(), limits).has(DiagCode::kCapacityExceeded));
}

// Strict wrapper + load gates --------------------------------------------

TEST(VerifyGates, ValidateThrowsOnBrokenGraph)
{
    DataflowGraph g = cleanBase();
    g.inst(0).outs[0].push_back(PortRef{99, 0});
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(VerifyGates, ValidateAcceptsCleanGraph)
{
    EXPECT_NO_THROW(cleanBase().validate());
}

TEST(VerifyGates, WarningsDoNotFailValidate)
{
    // A detached self-sustaining loop: both members are fed (no WS106)
    // and the cycle carries a WAVE_ADVANCE (no WS303), so the only
    // findings are two dead-instruction warnings.
    DataflowGraph g = cleanBase();
    InstId a = g.addInstruction(makeInst(Opcode::kMov));
    InstId b = g.addInstruction(makeInst(Opcode::kWaveAdvance));
    g.inst(a).outs[0].push_back(PortRef{b, 0});
    g.inst(b).outs[0].push_back(PortRef{a, 0});

    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kDeadInst), 2u) << rep.render();
    EXPECT_EQ(rep.errorCount(), 0u) << rep.render();
    EXPECT_NO_THROW(g.validate());
}

// Fixtures ---------------------------------------------------------------

TEST(VerifyFixtures, CleanPipelineHasNoFindings)
{
    const DataflowGraph g = parseWsa(readFixture("clean_pipeline.wsa"));
    const VerifyReport rep = verify(g, ProcessorConfig::baseline());
    EXPECT_TRUE(rep.empty()) << rep.render();
}

TEST(VerifyFixtures, BrokenChainFixtureFindsAllSeededDefects)
{
    const DataflowGraph g =
        parseWsa(readFixture("bad_broken_chain.wsa"));
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kStarvedPort), 1u) << rep.render();
    EXPECT_EQ(rep.count(DiagCode::kBadNextLink), 1u) << rep.render();
    EXPECT_EQ(rep.count(DiagCode::kNoReachableSink), 1u)
        << rep.render();
    EXPECT_EQ(rep.errorCount(), 3u) << rep.render();
}

TEST(VerifyFixtures, WildcardFixtureFindsTheHalfOpenDiamond)
{
    const DataflowGraph g = parseWsa(readFixture("bad_wildcard.wsa"));
    const VerifyReport rep = verify(g);
    EXPECT_EQ(rep.count(DiagCode::kUnresolvableWildcard), 1u)
        << rep.render();
    EXPECT_EQ(rep.errorCount(), 1u) << rep.render();
}

// Kernel suite clean pass ------------------------------------------------

class VerifyKernels : public ::testing::TestWithParam<std::uint16_t>
{};

TEST_P(VerifyKernels, AllKernelsVerifyClean)
{
    const ProcessorConfig cfg = ProcessorConfig::baseline();
    for (const Kernel &k : kernelRegistry()) {
        KernelParams params;
        if (k.multithreaded)
            params.threads = GetParam();
        const DataflowGraph g = k.build(params);
        const VerifyReport rep = verify(g, cfg);
        EXPECT_EQ(rep.errorCount(), 0u)
            << k.name << ":\n" << rep.render();
        EXPECT_EQ(rep.warningCount(), 0u)
            << k.name << ":\n" << rep.render();
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, VerifyKernels,
                         ::testing::Values(1, 2, 4));

} // namespace
} // namespace ws
