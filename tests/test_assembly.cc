/**
 * @file
 * WaveScalar assembly (.wsa) tests: lossless round-tripping of every
 * workload kernel, hand-written program assembly, and parse-error
 * diagnostics.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/log.h"
#include "core/simulator.h"
#include "isa/assembly.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

/** Structural equality of two graphs (field-by-field). */
void
expectSameGraph(const DataflowGraph &a, const DataflowGraph &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.numThreads(), b.numThreads());
    EXPECT_EQ(a.expectedSinkTokens(), b.expectedSinkTokens());
    for (InstId i = 0; i < a.size(); ++i) {
        const Instruction &x = a.inst(i);
        const Instruction &y = b.inst(i);
        EXPECT_EQ(x.op, y.op) << "inst " << i;
        EXPECT_EQ(x.imm, y.imm) << "inst " << i;
        EXPECT_EQ(x.thread, y.thread) << "inst " << i;
        EXPECT_EQ(x.mem.valid, y.mem.valid) << "inst " << i;
        if (x.mem.valid) {
            EXPECT_EQ(x.mem.prev, y.mem.prev) << "inst " << i;
            EXPECT_EQ(x.mem.seq, y.mem.seq) << "inst " << i;
            EXPECT_EQ(x.mem.next, y.mem.next) << "inst " << i;
        }
        for (int side = 0; side < 2; ++side) {
            ASSERT_EQ(x.outs[side].size(), y.outs[side].size())
                << "inst " << i << " side " << side;
            for (std::size_t e = 0; e < x.outs[side].size(); ++e)
                EXPECT_EQ(x.outs[side][e], y.outs[side][e]);
        }
    }
    ASSERT_EQ(a.initialTokens().size(), b.initialTokens().size());
    for (std::size_t t = 0; t < a.initialTokens().size(); ++t)
        EXPECT_EQ(a.initialTokens()[t], b.initialTokens()[t]);
    ASSERT_EQ(a.memInit().size(), b.memInit().size());
    for (std::size_t m = 0; m < a.memInit().size(); ++m)
        EXPECT_EQ(a.memInit()[m], b.memInit()[m]);
    ASSERT_EQ(a.memRegions().size(), b.memRegions().size());
    for (std::size_t r = 0; r < a.memRegions().size(); ++r)
        EXPECT_EQ(a.memRegions()[r], b.memRegions()[r]);
}

class KernelRoundTrip : public testing::TestWithParam<Kernel>
{};

TEST_P(KernelRoundTrip, DisassembleAssembleIsLossless)
{
    KernelParams params;
    params.threads = 2;
    DataflowGraph original = GetParam().build(params);
    const std::string text = disassemble(original);
    DataflowGraph rebuilt = assemble(text);
    expectSameGraph(original, rebuilt);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelRoundTrip, testing::ValuesIn(kernelRegistry()),
    [](const testing::TestParamInfo<Kernel> &info) {
        return info.param.name;
    });

TEST(Assembly, RoundTrippedKernelSimulatesIdentically)
{
    KernelParams params;
    DataflowGraph original = buildRawdaudio(params);
    DataflowGraph rebuilt = assemble(disassemble(buildRawdaudio(params)));
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    SimResult a = runSimulation(original, cfg);
    SimResult b = runSimulation(rebuilt, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.useful, b.useful);
}

TEST(Assembly, HandWrittenProgramAssemblesAndRuns)
{
    // (5 + 7) * 3 stored to 0x40, then sunk.
    const char *src = R"(
; doubles-and-sum demo
.graph demo threads=1 sinks=1
.inst 0 mov t0
.inst 1 mov t0
.inst 2 add t0
.inst 3 muli t0 imm=3
.inst 4 const t0 imm=0x40
.inst 5 store_addr t0 mem=-1:0:1
.inst 6 store_data t0 mem=-1:0:-1
.inst 7 load t0 mem=0:1:-1
.inst 8 sink t0
.edge 0 -> 2.0
.edge 1 -> 2.1
.edge 2 -> 3.0
.edge 2 -> 4.0
.edge 4 -> 5.0
.edge 4 -> 7.0
.edge 3 -> 6.0
.edge 7 -> 8.0
.token t0 w0 v5 -> 0.0
.token t0 w0 v7 -> 1.0
.region 5 7
)";
    DataflowGraph g = assemble(src);
    InterpResult ref = interpret(g);
    ASSERT_TRUE(ref.completed);
    EXPECT_EQ(ref.sinkValues.at(0), 36);
    EXPECT_EQ(ref.memory.at(0x40), 36);

    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.memory().read(0x40), 36);
}

TEST(Assembly, OpcodeNamesRoundTrip)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::kNumOpcodes); ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(std::string(opcodeName(op))), op);
    }
    EXPECT_THROW(opcodeFromName("frobnicate"), FatalError);
}

TEST(Assembly, MemSuffixSurvivesExtremeSequenceNumbers)
{
    // The mem=prev:seq:next disassembly suffix used to go through a
    // fixed-size stack buffer; INT32_MIN/MAX links must round-trip
    // untruncated.
    DataflowGraph g("extreme", 1);
    Instruction load;
    load.op = Opcode::kLoad;
    load.thread = 0;
    load.mem.valid = true;
    load.mem.prev = std::numeric_limits<std::int32_t>::min();
    load.mem.seq = std::numeric_limits<std::int32_t>::max();
    load.mem.next = std::numeric_limits<std::int32_t>::min();
    g.addInstruction(std::move(load));
    const std::string text = disassemble(g);
    EXPECT_NE(text.find("mem=-2147483648:2147483647:-2147483648"),
              std::string::npos)
        << text;
}

TEST(Assembly, CommentsAndBlankLinesIgnored)
{
    const char *src = R"(
; leading comment

.graph c threads=1 sinks=0   ; trailing comment
.inst 0 mov t0
.inst 1 nop t0               ; consumer
.edge 0 -> 1.0
.token t0 w0 v1 -> 0.0
)";
    DataflowGraph g = assemble(src);
    EXPECT_EQ(g.size(), 2u);
}

struct BadCase
{
    const char *label;
    const char *src;
};

class AssemblyErrors : public testing::TestWithParam<BadCase>
{};

TEST_P(AssemblyErrors, RejectedWithDiagnostic)
{
    EXPECT_THROW(assemble(GetParam().src), FatalError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblyErrors,
    testing::Values(
        BadCase{"missing_header", ".inst 0 mov t0\n"},
        BadCase{"bad_opcode",
                ".graph g threads=1 sinks=0\n.inst 0 zorp t0\n"},
        BadCase{"sparse_ids",
                ".graph g threads=1 sinks=0\n.inst 1 mov t0\n"},
        BadCase{"bad_edge",
                ".graph g threads=1 sinks=0\n.inst 0 mov t0\n"
                ".edge 5 -> 0.0\n"},
        BadCase{"edge_syntax",
                ".graph g threads=1 sinks=0\n.inst 0 mov t0\n"
                ".edge 0 0.0\n"},
        BadCase{"bad_int",
                ".graph g threads=xyz sinks=0\n"},
        BadCase{"unknown_directive",
                ".graph g threads=1 sinks=0\n.frob 1 2\n"},
        BadCase{"empty_region",
                ".graph g threads=1 sinks=0\n.inst 0 mov t0\n"
                ".token t0 w0 v0 -> 0.0\n.region\n"},
        BadCase{"dangling_port",
                ".graph g threads=1 sinks=0\n.inst 0 add t0\n"
                ".token t0 w0 v0 -> 0.0\n"},   // add port 1 starves.
        BadCase{"duplicate_header",
                ".graph g threads=1 sinks=0\n.graph h threads=1 "
                "sinks=0\n"}),
    [](const testing::TestParamInfo<BadCase> &info) {
        return info.param.label;
    });

} // namespace
} // namespace ws
