/**
 * @file
 * Tests for the parallel sweep driver: the work-stealing ThreadPool,
 * the SimCache, and the SweepEngine's two contracts — determinism
 * (byte-identical results at any --jobs setting) and memoization
 * (repeat points replay from cache; any config change misses).
 *
 * Also regression-tests the short-budget quiescence probe in
 * Processor::run (max_cycles < 1024 must still detect quiescence).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/processor.h"
#include "driver/sim_cache.h"
#include "driver/sweep_engine.h"
#include "driver/thread_pool.h"
#include "isa/graph_builder.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedSubmissionCompletesBeforeWaitReturns)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, WaitWithNoWorkReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();  // Must not deadlock.
    SUCCEED();
}

TEST(ThreadPool, HardwareJobsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroIsANoop)
{
    ThreadPool pool(2);
    parallelFor(pool, 0, [&](std::size_t) { FAIL(); });
    SUCCEED();
}

// ---------------------------------------------------------------------
// SimCache
// ---------------------------------------------------------------------

TEST(SimCache, MissThenHitRoundTrip)
{
    SimCache cache;
    const SimCache::Key key{0x1234, 0x5678, 1000};
    SimResult out;
    EXPECT_FALSE(cache.lookup(key, &out));
    SimResult r;
    r.completed = true;
    r.cycles = 42;
    r.aipc = 1.5;
    cache.insert(key, r);
    ASSERT_TRUE(cache.lookup(key, &out));
    EXPECT_TRUE(out.completed);
    EXPECT_EQ(out.cycles, 42u);
    EXPECT_DOUBLE_EQ(out.aipc, 1.5);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SimCache, AnyKeyComponentChangeMisses)
{
    SimCache cache;
    const SimCache::Key key{1, 2, 3};
    cache.insert(key, SimResult{});
    SimResult out;
    EXPECT_TRUE(cache.lookup(key, &out));
    EXPECT_FALSE(cache.lookup({9, 2, 3}, &out));  // Program changed.
    EXPECT_FALSE(cache.lookup({1, 9, 3}, &out));  // Config changed.
    EXPECT_FALSE(cache.lookup({1, 2, 9}, &out));  // Budget changed.
}

// ---------------------------------------------------------------------
// ProcessorConfig::fingerprint (the cache's invalidation mechanism)
// ---------------------------------------------------------------------

TEST(ConfigFingerprint, StableForEqualConfigs)
{
    EXPECT_EQ(ProcessorConfig::baseline().fingerprint(),
              ProcessorConfig::baseline().fingerprint());
}

TEST(ConfigFingerprint, SensitiveToEveryTunedField)
{
    const std::uint64_t base = ProcessorConfig::baseline().fingerprint();
    auto differs = [&](auto mutate) {
        ProcessorConfig cfg = ProcessorConfig::baseline();
        mutate(cfg);
        return cfg.fingerprint() != base;
    };
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.clusters = 4; }));
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.pe.k = 7; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.pe.matchingEntries = 64; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.pe.podBypass = false; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.storeBuffer.psqCount = 3; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.memory.l2Bytes = 1 << 20; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.mesh.portBandwidth = 4; }));
    EXPECT_TRUE(differs(
        [](ProcessorConfig &c) { c.placement = PlacementPolicy::kRandom; }));
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.seed = 99; }));
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.relaxLimits = true; }));
}

// ---------------------------------------------------------------------
// SweepEngine
// ---------------------------------------------------------------------

std::vector<SimJob>
sampleBatch(std::uint64_t fp_base)
{
    // A small but heterogeneous batch: two kernels x two configs.
    std::vector<SimJob> jobs;
    KernelParams params;
    params.threads = 1;
    auto gzip = std::make_shared<const DataflowGraph>(
        findKernel("gzip").build(params));
    auto djpeg = std::make_shared<const DataflowGraph>(
        findKernel("djpeg").build(params));

    for (unsigned k : {2u, 4u}) {
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.pe.k = k;
        SimJob job;
        job.graph = gzip;
        job.cfg = cfg;
        job.maxCycles = 60'000;
        job.graphFp = fp_base + 1;
        jobs.push_back(job);
        job.graph = djpeg;
        job.graphFp = fp_base + 2;
        jobs.push_back(job);
    }
    return jobs;
}

SweepEngine::Options
quietOpts(unsigned jobs)
{
    SweepEngine::Options opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

TEST(SweepEngine, ParallelResultsAreByteIdenticalToSerial)
{
    SweepEngine serial(quietOpts(1));
    SweepEngine parallel(quietOpts(8));
    const std::vector<SimJob> jobs = sampleBatch(0x100);
    const std::vector<SimResult> a = serial.run(jobs);
    const std::vector<SimResult> b = parallel.run(jobs);
    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(a[i].completed, b[i].completed) << "job " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "job " << i;
        EXPECT_EQ(a[i].useful, b[i].useful) << "job " << i;
        EXPECT_DOUBLE_EQ(a[i].aipc, b[i].aipc) << "job " << i;
        // The full statistics dump — every counter the simulator keeps —
        // must match byte for byte.
        EXPECT_EQ(a[i].report.toString(), b[i].report.toString())
            << "job " << i;
    }
}

TEST(SweepEngine, RepeatBatchReplaysFromCache)
{
    SweepEngine engine(quietOpts(2));
    const std::vector<SimJob> jobs = sampleBatch(0x200);
    const std::vector<SimResult> first = engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, jobs.size());
    EXPECT_EQ(engine.stats().cacheHits, 0u);

    const std::vector<SimResult> second = engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, jobs.size());  // No new sims.
    EXPECT_EQ(engine.stats().cacheHits, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(first[i].cycles, second[i].cycles);
        EXPECT_EQ(first[i].report.toString(), second[i].report.toString());
    }
}

TEST(SweepEngine, ConfigChangeInvalidatesStructurally)
{
    SweepEngine engine(quietOpts(2));
    std::vector<SimJob> jobs = sampleBatch(0x300);
    engine.run(jobs);
    const Counter sims_before = engine.stats().simulated;

    // Any config-field change gives a different fingerprint → miss.
    for (SimJob &job : jobs)
        job.cfg.pe.outputQueueEntries += 1;
    engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, sims_before + jobs.size());

    // A different cycle budget is a different point too.
    for (SimJob &job : jobs)
        job.maxCycles += 1'000;
    engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, sims_before + 2 * jobs.size());
}

TEST(SweepEngine, ZeroFingerprintDisablesCaching)
{
    SweepEngine engine(quietOpts(1));
    std::vector<SimJob> jobs = sampleBatch(0);
    for (SimJob &job : jobs)
        job.graphFp = 0;
    engine.run(jobs);
    engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, 2 * jobs.size());
    EXPECT_EQ(engine.stats().cacheHits, 0u);
    EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(SweepEngine, RunOneMatchesBatchOfOne)
{
    SweepEngine engine(quietOpts(1));
    const std::vector<SimJob> jobs = sampleBatch(0x400);
    const SimResult one = engine.runOne(jobs[0]);
    const SimResult again = engine.run({jobs[0]})[0];
    EXPECT_EQ(one.cycles, again.cycles);
    EXPECT_EQ(one.report.toString(), again.report.toString());
}

// ---------------------------------------------------------------------
// Processor::run short-budget quiescence probe (regression)
// ---------------------------------------------------------------------

TEST(QuiescenceProbe, FiresUnderShortCycleBudget)
{
    // A sink-less graph (expectedSinkTokens == 0) can only report
    // success through the quiescence probe. The probe used to run on
    // 1024-aligned cycles only, so with max_cycles < 1024 it never
    // fired and a fully quiesced program was misreported as incomplete.
    GraphBuilder b("tiny");
    b.beginThread(0);
    auto x = b.param(21);
    b.muli(x, 2);
    b.endThread();
    DataflowGraph g = b.finish();

    Processor proc(g, ProcessorConfig::baseline());
    EXPECT_TRUE(proc.run(500));
}

} // namespace
} // namespace ws
