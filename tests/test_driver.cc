/**
 * @file
 * Tests for the parallel sweep driver: the work-stealing ThreadPool,
 * the SimCache, and the SweepEngine's two contracts — determinism
 * (byte-identical results at any --jobs setting) and memoization
 * (repeat points replay from cache; any config change misses).
 *
 * Also regression-tests the short-budget quiescence probe in
 * Processor::run (max_cycles < 1024 must still detect quiescence).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/processor.h"
#include "driver/sim_cache.h"
#include "driver/sweep_engine.h"
#include "driver/static_prune.h"
#include "driver/thread_pool.h"
#include "isa/graph_builder.h"
#include "kernels/ilp_variants.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedSubmissionCompletesBeforeWaitReturns)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, WaitWithNoWorkReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();  // Must not deadlock.
    SUCCEED();
}

TEST(ThreadPool, HardwareJobsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroIsANoop)
{
    ThreadPool pool(2);
    parallelFor(pool, 0, [&](std::size_t) { FAIL(); });
    SUCCEED();
}

// ---------------------------------------------------------------------
// SimCache
// ---------------------------------------------------------------------

TEST(SimCache, MissThenHitRoundTrip)
{
    SimCache cache;
    const SimCache::Key key{0x1234, 0x5678, 1000};
    SimResult out;
    EXPECT_FALSE(cache.lookup(key, &out));
    SimResult r;
    r.completed = true;
    r.cycles = 42;
    r.aipc = 1.5;
    cache.insert(key, r);
    ASSERT_TRUE(cache.lookup(key, &out));
    EXPECT_TRUE(out.completed);
    EXPECT_EQ(out.cycles, 42u);
    EXPECT_DOUBLE_EQ(out.aipc, 1.5);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SimCache, AnyKeyComponentChangeMisses)
{
    SimCache cache;
    const SimCache::Key key{1, 2, 3};
    cache.insert(key, SimResult{});
    SimResult out;
    EXPECT_TRUE(cache.lookup(key, &out));
    EXPECT_FALSE(cache.lookup({9, 2, 3}, &out));  // Program changed.
    EXPECT_FALSE(cache.lookup({1, 9, 3}, &out));  // Config changed.
    EXPECT_FALSE(cache.lookup({1, 2, 9}, &out));  // Budget changed.
}

// ---------------------------------------------------------------------
// ProcessorConfig::fingerprint (the cache's invalidation mechanism)
// ---------------------------------------------------------------------

TEST(ConfigFingerprint, StableForEqualConfigs)
{
    EXPECT_EQ(ProcessorConfig::baseline().fingerprint(),
              ProcessorConfig::baseline().fingerprint());
}

TEST(ConfigFingerprint, SensitiveToEveryTunedField)
{
    const std::uint64_t base = ProcessorConfig::baseline().fingerprint();
    auto differs = [&](auto mutate) {
        ProcessorConfig cfg = ProcessorConfig::baseline();
        mutate(cfg);
        return cfg.fingerprint() != base;
    };
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.clusters = 4; }));
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.pe.k = 7; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.pe.matchingEntries = 64; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.pe.podBypass = false; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.storeBuffer.psqCount = 3; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.memory.l2Bytes = 1 << 20; }));
    EXPECT_TRUE(
        differs([](ProcessorConfig &c) { c.mesh.portBandwidth = 4; }));
    EXPECT_TRUE(differs(
        [](ProcessorConfig &c) { c.placement = PlacementPolicy::kRandom; }));
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.seed = 99; }));
    EXPECT_TRUE(differs([](ProcessorConfig &c) { c.relaxLimits = true; }));
}

TEST(ConfigFingerprint, CheckLevelIsPartOfTheKey)
{
    // Regression: checkLevel was once absent from fingerprint(), so a
    // checked run could alias an unchecked SimCache entry (and vice
    // versa), silently skipping the invariant sweep on cache hits.
    const std::uint64_t base = ProcessorConfig::baseline().fingerprint();
    ProcessorConfig cheap = ProcessorConfig::baseline();
    cheap.checkLevel = CheckLevel::kCheap;
    ProcessorConfig full = ProcessorConfig::baseline();
    full.checkLevel = CheckLevel::kFull;
    EXPECT_NE(cheap.fingerprint(), base);
    EXPECT_NE(full.fingerprint(), base);
    EXPECT_NE(cheap.fingerprint(), full.fingerprint());
}

// ---------------------------------------------------------------------
// SweepEngine
// ---------------------------------------------------------------------

std::vector<SimJob>
sampleBatch(std::uint64_t fp_base)
{
    // A small but heterogeneous batch: two kernels x two configs.
    std::vector<SimJob> jobs;
    KernelParams params;
    params.threads = 1;
    auto gzip = std::make_shared<const DataflowGraph>(
        findKernel("gzip").build(params));
    auto djpeg = std::make_shared<const DataflowGraph>(
        findKernel("djpeg").build(params));

    for (unsigned k : {2u, 4u}) {
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.pe.k = k;
        SimJob job;
        job.graph = gzip;
        job.cfg = cfg;
        job.maxCycles = 60'000;
        job.graphFp = fp_base + 1;
        jobs.push_back(job);
        job.graph = djpeg;
        job.graphFp = fp_base + 2;
        jobs.push_back(job);
    }
    return jobs;
}

SweepEngine::Options
quietOpts(unsigned jobs)
{
    SweepEngine::Options opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

TEST(SweepEngine, ParallelResultsAreByteIdenticalToSerial)
{
    SweepEngine serial(quietOpts(1));
    SweepEngine parallel(quietOpts(8));
    const std::vector<SimJob> jobs = sampleBatch(0x100);
    const std::vector<SimResult> a = serial.run(jobs);
    const std::vector<SimResult> b = parallel.run(jobs);
    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(a[i].completed, b[i].completed) << "job " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "job " << i;
        EXPECT_EQ(a[i].useful, b[i].useful) << "job " << i;
        EXPECT_DOUBLE_EQ(a[i].aipc, b[i].aipc) << "job " << i;
        // The full statistics dump — every counter the simulator keeps —
        // must match byte for byte.
        EXPECT_EQ(a[i].report.toString(), b[i].report.toString())
            << "job " << i;
    }
}

TEST(SweepEngine, RepeatBatchReplaysFromCache)
{
    SweepEngine engine(quietOpts(2));
    const std::vector<SimJob> jobs = sampleBatch(0x200);
    const std::vector<SimResult> first = engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, jobs.size());
    EXPECT_EQ(engine.stats().cacheHits, 0u);

    const std::vector<SimResult> second = engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, jobs.size());  // No new sims.
    EXPECT_EQ(engine.stats().cacheHits, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(first[i].cycles, second[i].cycles);
        EXPECT_EQ(first[i].report.toString(), second[i].report.toString());
    }
}

TEST(SweepEngine, ConfigChangeInvalidatesStructurally)
{
    SweepEngine engine(quietOpts(2));
    std::vector<SimJob> jobs = sampleBatch(0x300);
    engine.run(jobs);
    const Counter sims_before = engine.stats().simulated;

    // Any config-field change gives a different fingerprint → miss.
    for (SimJob &job : jobs)
        job.cfg.pe.outputQueueEntries += 1;
    engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, sims_before + jobs.size());

    // A different cycle budget is a different point too.
    for (SimJob &job : jobs)
        job.maxCycles += 1'000;
    engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, sims_before + 2 * jobs.size());
}

TEST(SweepEngine, CheckedRunsDoNotAliasUncheckedCacheEntries)
{
    SweepEngine engine(quietOpts(1));
    std::vector<SimJob> jobs = sampleBatch(0x500);
    const std::vector<SimResult> plain = engine.run(jobs);
    const Counter sims_before = engine.stats().simulated;

    for (SimJob &job : jobs)
        job.cfg.checkLevel = CheckLevel::kFull;
    const std::vector<SimResult> checked = engine.run(jobs);
    // checkLevel participates in the fingerprint, so the checked batch
    // must simulate fresh — not replay the unchecked entries.
    EXPECT_EQ(engine.stats().simulated, sims_before + jobs.size());
    ASSERT_EQ(checked.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Checking never perturbs a single reported statistic, and the
        // seed kernels are invariant-clean.
        EXPECT_EQ(checked[i].report.toString(),
                  plain[i].report.toString())
            << "job " << i;
        EXPECT_EQ(checked[i].checkViolations, 0u) << "job " << i;
    }
}

TEST(SweepEngine, ZeroFingerprintDisablesCaching)
{
    SweepEngine engine(quietOpts(1));
    std::vector<SimJob> jobs = sampleBatch(0);
    for (SimJob &job : jobs)
        job.graphFp = 0;
    engine.run(jobs);
    engine.run(jobs);
    EXPECT_EQ(engine.stats().simulated, 2 * jobs.size());
    EXPECT_EQ(engine.stats().cacheHits, 0u);
    EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(SweepEngine, RunOneMatchesBatchOfOne)
{
    SweepEngine engine(quietOpts(1));
    const std::vector<SimJob> jobs = sampleBatch(0x400);
    const SimResult one = engine.runOne(jobs[0]);
    const SimResult again = engine.run({jobs[0]})[0];
    EXPECT_EQ(one.cycles, again.cycles);
    EXPECT_EQ(one.report.toString(), again.report.toString());
}

TEST(SweepEngine, AllHitsBatchStillPrintsProgress)
{
    // Regression: run() pre-counted hits into `done` but only
    // simulated jobs ticked, so a fully-memoized batch printed no
    // progress line at all — no "N/N done" and no trailing newline,
    // leaving the next harness's output glued to a stale "\r" line.
    SweepEngine::Options opts = quietOpts(2);
    opts.progress = true;
    opts.label = "prog-test";
    SweepEngine engine(opts);
    const std::vector<SimJob> jobs = sampleBatch(0xA00);

    testing::internal::CaptureStderr();
    engine.run(jobs);
    const std::string cold = testing::internal::GetCapturedStderr();
    EXPECT_NE(cold.find("4/4 done (0 cached)"), std::string::npos)
        << cold;

    testing::internal::CaptureStderr();
    engine.run(jobs);  // Every point replays from cache.
    const std::string warm = testing::internal::GetCapturedStderr();
    EXPECT_NE(warm.find("4/4 done (4 cached)"), std::string::npos)
        << warm;
    ASSERT_FALSE(warm.empty());
    EXPECT_EQ(warm.back(), '\n') << warm;
}

TEST(SweepEngine, MixedBatchProgressCountsHitsUpFront)
{
    // The first progress line of a partially-memoized batch reports
    // the replayed points before any simulation finishes, mirroring
    // runGrouped where every job ticks exactly once.
    SweepEngine::Options opts = quietOpts(1);
    opts.progress = true;
    opts.label = "mixed";
    SweepEngine engine(opts);
    std::vector<SimJob> jobs = sampleBatch(0xB00);

    testing::internal::CaptureStderr();
    engine.run({jobs[0], jobs[1]});  // Memoize half the batch.
    testing::internal::GetCapturedStderr();

    testing::internal::CaptureStderr();
    engine.run(jobs);  // 2 hits + 2 misses.
    const std::string out = testing::internal::GetCapturedStderr();
    // The up-front line credits the two replayed points before the
    // first simulation completes.
    EXPECT_NE(out.find("2/4 done (2 cached)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("4/4 done (2 cached)"), std::string::npos)
        << out;
    EXPECT_EQ(engine.stats().cacheHits, 2u);
    EXPECT_EQ(engine.stats().simulated, 4u);
}

// ---------------------------------------------------------------------
// SweepEngine::runGrouped (bound-based pruning)
// ---------------------------------------------------------------------

TEST(SweepEngine, GroupedWithoutPruningMatchesRun)
{
    SweepEngine plain(quietOpts(4));
    SweepEngine grouped(quietOpts(4));
    const std::vector<SimJob> jobs = sampleBatch(0x500);
    const std::vector<std::size_t> group_end{2, jobs.size()};
    const std::vector<SimResult> a = plain.run(jobs);
    const std::vector<SimResult> b =
        grouped.runGrouped(jobs, group_end, SweepEngine::PruneOptions{});
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_FALSE(b[i].pruned) << "job " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "job " << i;
        EXPECT_EQ(a[i].report.toString(), b[i].report.toString())
            << "job " << i;
    }
    EXPECT_EQ(grouped.stats().pruned, 0u);
}

TEST(SweepEngine, PruningSkipsDominatedCandidatesAndKeepsTheGroupMax)
{
    SweepEngine::PruneOptions prune;
    prune.enabled = true;

    // One group: the gzip point carries a valid-but-low bound (its
    // true AIPC at this budget is ~0.086 < 0.1), the djpeg point a
    // generous one so it runs first and sets the bar well above
    // 0.1 * (1 + margin). gzip must be skipped without changing the
    // group's best result.
    std::vector<SimJob> jobs = sampleBatch(0x600);
    jobs.resize(2);
    jobs[0].staticBound = 0.1;   // gzip: dominated.
    jobs[1].staticBound = 1e6;   // djpeg: the group winner.

    SweepEngine plain(quietOpts(2));
    const std::vector<SimResult> full = plain.run(jobs);
    double full_max = 0.0;
    for (const SimResult &r : full)
        full_max = std::max(full_max, r.aipc);

    for (unsigned workers : {1u, 8u}) {
        SweepEngine engine(quietOpts(workers));
        const std::vector<SimResult> res =
            engine.runGrouped(jobs, {jobs.size()}, prune);
        EXPECT_FALSE(res[1].pruned);
        EXPECT_TRUE(res[0].pruned) << "workers " << workers;
        EXPECT_EQ(res[0].aipc, 0.0);
        EXPECT_EQ(res[0].cycles, 0u);
        EXPECT_EQ(engine.stats().pruned, 1u);
        double max = 0.0;
        for (const SimResult &r : res)
            max = std::max(max, r.aipc);
        EXPECT_DOUBLE_EQ(max, full_max) << "workers " << workers;
    }
}

TEST(SweepEngine, PruneDecisionsAreScopedToTheirGroup)
{
    SweepEngine::PruneOptions prune;
    prune.enabled = true;

    // Same tiny-bound job in two groups: in the first it follows a
    // strong candidate and is pruned; alone in the second group there
    // is no bar to beat, so it must simulate (and flag a pruneError if
    // its AIPC exceeds its fake bound — that telemetry is the point).
    std::vector<SimJob> jobs = sampleBatch(0x700);
    jobs.resize(3);
    jobs[0].staticBound = 1e6;
    jobs[1].staticBound = 1e-6;
    jobs[2] = jobs[1];

    SweepEngine engine(quietOpts(2));
    const std::vector<SimResult> res =
        engine.runGrouped(jobs, {2, 3}, prune);
    EXPECT_FALSE(res[0].pruned);
    EXPECT_TRUE(res[1].pruned);
    EXPECT_FALSE(res[2].pruned);
    EXPECT_GT(res[2].aipc, 0.0);
    EXPECT_EQ(engine.stats().pruned, 1u);
    EXPECT_EQ(engine.stats().pruneErrors, 1u);  // aipc > 1e-6 bound.
}

TEST(SweepEngine, ZeroBoundIsNeverPruned)
{
    SweepEngine::PruneOptions prune;
    prune.enabled = true;
    std::vector<SimJob> jobs = sampleBatch(0x800);
    jobs.resize(2);
    jobs[0].staticBound = 1e6;
    jobs[1].staticBound = 0.0;  // Unknown bound: must always simulate.

    SweepEngine engine(quietOpts(2));
    const std::vector<SimResult> res =
        engine.runGrouped(jobs, {jobs.size()}, prune);
    EXPECT_FALSE(res[1].pruned);
    EXPECT_GT(res[1].aipc, 0.0);
    EXPECT_EQ(engine.stats().pruned, 0u);
}

TEST(SweepEngine, RealBoundsPruneTheIlpChainVariantsWithoutMovingTheMax)
{
    // End-to-end over *genuine* bounds (no synthetic staticBound
    // values): the four ILP reduction variants compete best-of on the
    // baseline machine. The acyclic serial chain's bound
    // (useful / critical path ~ 2.0) falls below what the tree variant
    // actually achieves (~3.7), so with pruning enabled at least one
    // candidate is skipped — while the group winner and its AIPC stay
    // bit-identical to the unpruned sweep. This is the acceptance
    // property of --prune-static in miniature.
    const ProcessorConfig cfg = ProcessorConfig::baseline();
    ProfileCache profiles;
    std::vector<SimJob> jobs;
    std::uint64_t fp = 0x900;
    for (const Kernel &variant : ilpVariantKernels()) {
        SimJob job;
        job.graph = std::make_shared<const DataflowGraph>(
            variant.build(KernelParams{}));
        job.cfg = cfg;
        job.maxCycles = 100'000;
        job.graphFp = ++fp;
        job.staticBound = staticAipcBound(
            *profiles.profileFor(*job.graph, job.graphFp), cfg);
        EXPECT_GT(job.staticBound, 0.0);
        jobs.push_back(std::move(job));
    }

    SweepEngine plain(quietOpts(4));
    const std::vector<SimResult> full =
        plain.runGrouped(jobs, {jobs.size()}, SweepEngine::PruneOptions{});
    std::size_t full_win = 0;
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_LE(full[i].aipc, jobs[i].staticBound) << "variant " << i;
        if (full[i].aipc > full[full_win].aipc)
            full_win = i;
    }

    SweepEngine::PruneOptions prune;
    prune.enabled = true;
    SweepEngine engine(quietOpts(4));
    const std::vector<SimResult> res =
        engine.runGrouped(jobs, {jobs.size()}, prune);

    EXPECT_GT(engine.stats().pruned, 0u);
    EXPECT_EQ(engine.stats().pruneErrors, 0u);
    std::size_t win = 0;
    for (std::size_t i = 0; i < res.size(); ++i) {
        if (res[i].pruned) {
            // Sound skip: the candidate could provably not win.
            EXPECT_LT(jobs[i].staticBound * (1.0 + prune.margin),
                      full[full_win].aipc) << "variant " << i;
            EXPECT_LT(full[i].aipc, full[full_win].aipc) << "variant " << i;
        } else {
            EXPECT_EQ(res[i].cycles, full[i].cycles) << "variant " << i;
            EXPECT_EQ(res[i].report.toString(), full[i].report.toString())
                << "variant " << i;
        }
        if (res[i].aipc > res[win].aipc)
            win = i;
    }
    EXPECT_EQ(win, full_win);
    EXPECT_DOUBLE_EQ(res[win].aipc, full[full_win].aipc);
}

// ---------------------------------------------------------------------
// Processor::run short-budget quiescence probe (regression)
// ---------------------------------------------------------------------

TEST(QuiescenceProbe, FiresUnderShortCycleBudget)
{
    // A sink-less graph (expectedSinkTokens == 0) can only report
    // success through the quiescence probe. The probe used to run on
    // 1024-aligned cycles only, so with max_cycles < 1024 it never
    // fired and a fully quiesced program was misreported as incomplete.
    GraphBuilder b("tiny");
    b.beginThread(0);
    auto x = b.param(21);
    b.muli(x, 2);
    b.endThread();
    DataflowGraph g = b.finish();

    Processor proc(g, ProcessorConfig::baseline());
    EXPECT_TRUE(proc.run(500));
}

} // namespace
} // namespace ws
