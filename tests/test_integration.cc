/**
 * @file
 * Whole-machine integration tests: the cycle-level simulator must agree
 * with the reference interpreter on architectural results, honor the
 * Table-1 network latencies, preserve memory ordering, and keep its
 * traffic accounting consistent.
 */

#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// Simulator vs reference interpreter
// ---------------------------------------------------------------------

class SingleThreadedEquivalence
    : public testing::TestWithParam<std::string>
{};

TEST_P(SingleThreadedEquivalence, FinalMemoryMatchesInterpreter)
{
    KernelParams params;
    DataflowGraph g_sim = findKernel(GetParam()).build(params);
    DataflowGraph g_ref = findKernel(GetParam()).build(params);

    InterpResult ref = interpret(g_ref);
    ASSERT_TRUE(ref.completed);

    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g_sim, cfg);
    ASSERT_TRUE(proc.run(4'000'000));

    // Every non-zero word the interpreter produced must match.
    for (const auto &[addr, value] : ref.memory) {
        EXPECT_EQ(proc.memory().read(addr), value)
            << GetParam() << " @ 0x" << std::hex << addr;
    }
    // And the dynamic useful-instruction counts must agree exactly.
    EXPECT_EQ(proc.usefulExecuted(), ref.useful) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SingleThreadedEquivalence,
    testing::Values("gzip", "mcf", "twolf", "ammp", "art", "equake",
                    "djpeg", "mpeg2encode", "rawdaudio"),
    [](const testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Equivalence, MultiThreadedUsefulCountMatches)
{
    // Threads share read-only data but write disjointly in lu, so the
    // useful-instruction count (control-independent) must match.
    KernelParams params;
    params.threads = 4;
    DataflowGraph g_sim = buildLu(params);
    DataflowGraph g_ref = buildLu(params);
    InterpResult ref = interpret(g_ref);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g_sim, cfg);
    ASSERT_TRUE(proc.run(4'000'000));
    EXPECT_EQ(proc.usefulExecuted(), ref.useful);
}

// ---------------------------------------------------------------------
// Network latency calibration (Table 1)
// ---------------------------------------------------------------------

/**
 * Build a dependence chain long enough that placement spreads it at a
 * known level, then measure steady-state latency per hop from the total
 * cycle count: each chain step is data-dependent, so total cycles ≈
 * chain length x per-hop latency + constant.
 */
Cycle
chainLatency(int hops, std::uint16_t clusters, std::uint16_t cap)
{
    GraphBuilder b("lat");
    b.beginThread(0);
    auto x = b.param(1);
    for (int i = 0; i < hops; ++i)
        x = b.addi(x, 1);
    b.sink(x, 1);
    b.endThread();
    DataflowGraph g = b.finish();

    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = clusters;
    cfg.pe.instStoreEntries = cap;
    cfg.pe.matchingEntries = std::max<unsigned>(16, cap);
    Processor proc(g, cfg);
    if (!proc.run(100000))
        ADD_FAILURE() << "latency chain did not complete";
    return proc.cycle();
}

TEST(Latency, PodBypassGivesBackToBackExecution)
{
    // A chain confined to one pod must execute ~1 instruction/cycle.
    const Cycle t = chainLatency(200, 1, 128);
    // 200 instructions over 2 PEs of one pod: ≈ 1 cycle each + startup.
    EXPECT_LT(t, 280u);
}

TEST(Latency, IntraDomainCostsFiveCycles)
{
    // Force each hop across PEs of one domain: capacity 8 per PE spreads
    // a 64-node chain over all 8 PEs; consecutive PEs alternate between
    // pod-bypass (1 cycle) and domain hops (5 cycles).
    ProcessorConfig cfg = ProcessorConfig::baseline();
    (void)cfg;
    const Cycle small_cap = chainLatency(256, 1, 8);
    const Cycle large_cap = chainLatency(256, 1, 128);
    // Same instruction count; spreading across the domain must cost
    // strictly more, by roughly the intra-domain latency on 1 of every
    // 8 hops plus pod crossings.
    EXPECT_GT(small_cap, large_cap + 50);
}

TEST(Latency, CrossClusterChainPaysGridLatency)
{
    // Capacity 8/PE over 4 clusters: a 1024-hop chain spans clusters.
    const Cycle four = chainLatency(1024, 4, 8);
    const Cycle one = chainLatency(1024, 1, 32);
    EXPECT_GT(four, one);
}

// ---------------------------------------------------------------------
// Memory ordering under the full machine
// ---------------------------------------------------------------------

TEST(MemoryOrdering, ReadAfterWriteAcrossWaves)
{
    // Each iteration stores i to a[0] and loads it back next iteration.
    GraphBuilder b("raw");
    b.beginThread(0);
    const Addr a = b.alloc(8);
    b.initMem(a, -1);
    auto i0 = b.param(0);
    auto acc0 = b.param(0);
    auto loop = b.beginLoop({i0, acc0});
    auto i = loop.vars[0];
    auto acc = loop.vars[1];
    auto prev = b.load(b.addi(i, static_cast<Value>(a)), 0);
    // prev must be exactly i-1 (or -1 on the first wave): check by
    // accumulating prev - (i-1); the sum must stay 0.
    auto expect = b.subi(i, 1);
    auto delta = b.sub(prev, expect);
    acc = b.add(acc, delta);
    b.store(b.addi(i, static_cast<Value>(a)), i, 0);
    auto i_next = b.addi(i, 1);
    b.endLoop(loop, {i_next, acc}, b.lti(i_next, 32));
    b.sink(loop.exits[1], 1);
    b.endThread();
    DataflowGraph g = b.finish();
    // Note: address is constant a (i added then... actually addi(i, a)
    // varies). Rebuild: store to fixed address.
    InterpResult ref = interpret(g);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(1'000'000));
    // Simulator and interpreter must agree on the accumulated value.
    EXPECT_EQ(proc.usefulExecuted(), ref.useful);
}

TEST(MemoryOrdering, FixedCellRawChain)
{
    // Classic: store i to one cell, load it back in the same wave,
    // accumulate mismatches. Any reordering breaks the sum.
    GraphBuilder b("rawcell");
    b.beginThread(0);
    const Addr cell = b.alloc(8);
    auto i0 = b.param(0);
    auto bad0 = b.param(0);
    auto loop = b.beginLoop({i0, bad0});
    auto i = loop.vars[0];
    auto bad = loop.vars[1];
    auto addr = b.lit(static_cast<Value>(cell), i);
    b.store(addr, i);
    auto back = b.load(addr);
    bad = b.add(bad, b.sub(back, i));  // 0 when ordered correctly.
    auto i_next = b.addi(i, 1);
    b.endLoop(loop, {i_next, bad}, b.lti(i_next, 64));
    b.sink(loop.exits[1], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult ref = interpret(g);
    ASSERT_EQ(ref.sinkValues.at(0), 0);

    ProcessorConfig cfg = ProcessorConfig::baseline();
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(1'000'000));
    EXPECT_EQ(proc.memory().read(cell), 63);
}

TEST(MemoryOrdering, CoherentSharingAcrossClusters)
{
    // Two threads ping values through a shared array; with 4 clusters
    // the L1s must stay coherent for the final state to be right.
    const std::uint16_t T = 4;
    GraphBuilder b("share", T);
    const Addr shared = b.alloc(8 * 64);
    for (int i = 0; i < 64; ++i)
        b.initMem(shared + 8 * i, i);
    for (ThreadId t = 0; t < T; ++t) {
        b.beginThread(t);
        auto i0 = b.param(0);
        auto acc0 = b.param(0);
        auto loop = b.beginLoop({i0, acc0});
        auto i = loop.vars[0];
        auto acc = loop.vars[1];
        // Read the whole shared array (read-sharing), write only the
        // thread's own slot (disjoint writes).
        auto idx = b.andi(b.addi(i, t * 16), 63);
        auto v = b.load(b.addi(b.shli(idx, 3),
                               static_cast<Value>(shared)));
        acc = b.add(acc, v);
        b.store(b.lit(static_cast<Value>(shared + 8 * t), i), acc);
        auto i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, acc}, b.lti(i_next, 24));
        b.sink(loop.exits[1], 1);
        b.endThread();
    }
    DataflowGraph g = b.finish();

    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = 4;
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(2'000'000));
    // Coherence protocol must have been exercised.
    EXPECT_GT(proc.cluster(0).l1().stats().invsReceived +
                  proc.cluster(1).l1().stats().invsReceived +
                  proc.cluster(2).l1().stats().invsReceived +
                  proc.cluster(3).l1().stats().invsReceived,
              0u);
}

// ---------------------------------------------------------------------
// Machine behavior sanity
// ---------------------------------------------------------------------

TEST(Machine, AipcExcludesOverheadInstructions)
{
    KernelParams params;
    DataflowGraph g = buildDjpeg(params);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(2'000'000));
    StatReport r = proc.report();
    EXPECT_LT(r.get("sim.useful_executed"), r.get("pe.executed"));
}

TEST(Machine, TrafficTotalsAreConsistent)
{
    KernelParams params;
    params.threads = 8;
    DataflowGraph g = buildFft(params);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = 4;
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(2'000'000));
    StatReport r = proc.report();
    const double total = r.get("traffic.total");
    double sum = 0.0;
    for (const char *level : {"intra_pod", "intra_domain",
                              "intra_cluster", "inter_cluster"}) {
        sum += r.get(std::string("traffic.") + level + ".operand");
        sum += r.get(std::string("traffic.") + level + ".memory");
    }
    EXPECT_DOUBLE_EQ(total, sum);
    EXPECT_GT(total, 0.0);
}

TEST(Machine, HierarchyLocalizesTraffic)
{
    // Figure 8's headline: the overwhelming majority of traffic stays
    // within a cluster even on multi-cluster machines.
    KernelParams params;
    params.threads = 8;
    DataflowGraph g = buildRadix(params);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = 4;
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(2'000'000));
    const double inter =
        proc.report().sumPrefix("traffic.inter_cluster");
    const double total = proc.report().get("traffic.total");
    EXPECT_LT(inter / total, 0.15);
}

TEST(Machine, InputBandwidthRejectionsAreRetried)
{
    // A very high fan-in instruction cannot starve: rejected tokens
    // retry until accepted.
    GraphBuilder b("fanin");
    b.beginThread(0);
    auto x = b.param(1);
    std::vector<GraphBuilder::Node> vals;
    for (int i = 0; i < 32; ++i)
        vals.push_back(b.addi(x, i));
    // Funnel through adds into one sink.
    while (vals.size() > 1) {
        std::vector<GraphBuilder::Node> next;
        for (std::size_t i = 0; i + 1 < vals.size(); i += 2)
            next.push_back(b.add(vals[i], vals[i + 1]));
        if (vals.size() % 2)
            next.push_back(vals.back());
        vals = next;
    }
    b.sink(vals[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();
    Processor proc(g, ProcessorConfig::baseline());
    EXPECT_TRUE(proc.run(100000));
}

TEST(Machine, QuiescentAfterCompletion)
{
    KernelParams params;
    DataflowGraph g = buildRawdaudio(params);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(2'000'000));
    EXPECT_TRUE(proc.quiescent());
}

TEST(Machine, DomainFpuIsSharedBottleneck)
{
    // An FP-heavy kernel must record FPU stalls when many PEs contend
    // for the single domain FPU.
    KernelParams params;
    DataflowGraph g = buildAmmp(params);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(2'000'000));
    EXPECT_GT(proc.report().get("pe.fpu_stalls"), 0.0);
}

TEST(Machine, SmallMatchingTableThrashesButCompletes)
{
    KernelParams params;
    DataflowGraph g = buildTwolf(params);
    ProcessorConfig small = ProcessorConfig::baseline();
    small.pe.matchingEntries = 16;
    small.memory.l2Bytes = 1 << 20;
    ProcessorConfig big = ProcessorConfig::baseline();
    big.memory.l2Bytes = 1 << 20;

    Processor p_small(g, small);
    ASSERT_TRUE(p_small.run(6'000'000));
    DataflowGraph g2 = buildTwolf(params);
    Processor p_big(g2, big);
    ASSERT_TRUE(p_big.run(6'000'000));

    EXPECT_GT(p_small.report().get("match.misses"),
              p_big.report().get("match.misses"));
    EXPECT_GE(p_small.cycle(), p_big.cycle());
}

TEST(Machine, InstructionStoreThrashingCostsPerformance)
{
    KernelParams params;
    DataflowGraph g1 = buildGzip(params);
    DataflowGraph g2 = buildGzip(params);
    // gzip (~3K instructions) against a 1K-entry machine: heavy
    // instruction misses; against 4K: none.
    ProcessorConfig tiny = ProcessorConfig::baseline();
    tiny.pe.instStoreEntries = 32;   // 32 PEs x 32 = 1K, ~3x oversub.
    tiny.pe.matchingEntries = 32;
    tiny.memory.l2Bytes = 1 << 20;
    ProcessorConfig fits = ProcessorConfig::baseline();
    fits.memory.l2Bytes = 1 << 20;

    Processor p_tiny(g1, tiny);
    ASSERT_TRUE(p_tiny.run(20'000'000));
    Processor p_fits(g2, fits);
    ASSERT_TRUE(p_fits.run(20'000'000));

    EXPECT_GT(p_tiny.report().get("istore.misses"), 0.0);
    EXPECT_EQ(p_fits.report().get("istore.misses"), 0.0);
    EXPECT_GT(p_tiny.cycle(), p_fits.cycle());
}

} // namespace
} // namespace ws
