/**
 * @file
 * Tests for the wave-concurrency control machinery: store-buffer slot
 * preemption (no cross-thread starvation) and the k-loop-bounding wave
 * window.
 */

#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"
#include "kernels/kernel.h"
#include "memory/coherence.h"
#include "memory/store_buffer.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// Store-buffer slot preemption
// ---------------------------------------------------------------------

class PreemptHarness
{
  public:
    PreemptHarness()
    {
        mcfg_.clusters = 1;
        mcfg_.l2Bytes = 1 << 20;
        l1_ = std::make_unique<L1Controller>(mcfg_, 0);
        home_ = std::make_unique<HomeSystem>(mcfg_);
        sb_ = std::make_unique<StoreBuffer>(StoreBufferConfig{}, 0,
                                            l1_.get(), &mem_);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            l1_->tick(now_);
            sb_->tick(now_);
            home_->tick(now_);
            for (const CohMsg &msg : l1_->outbox())
                home_->receive(msg, now_ + 1);
            l1_->outbox().clear();
            for (auto &[dst, msg] : home_->outbox())
                l1_->receive(msg, now_ + 1);
            home_->outbox().clear();
            ++now_;
        }
    }

    MemRequest
    nop(ThreadId t, WaveNum w)
    {
        MemRequest r;
        r.kind = MemOpKind::kMemNop;
        r.tag = Tag{t, w};
        r.seq = 0;
        r.prev = kSeqNone;
        r.next = kSeqNone;
        return r;
    }

    MemTimingConfig mcfg_;
    MainMemory mem_;
    std::unique_ptr<L1Controller> l1_;
    std::unique_ptr<HomeSystem> home_;
    std::unique_ptr<StoreBuffer> sb_;
    Cycle now_ = 0;
};

TEST(SlotPreemption, FutureWavesCannotStarveCurrentWaves)
{
    PreemptHarness h;
    // Threads 0 and 1 fill all four slots with *future* waves (their
    // current waves are 0).
    h.sb_->push(h.nop(0, 1), 0);
    h.sb_->push(h.nop(0, 2), 0);
    h.sb_->push(h.nop(1, 1), 0);
    h.sb_->push(h.nop(1, 2), 0);
    // Now the current waves arrive: they must preempt and complete.
    h.sb_->push(h.nop(0, 0), 0);
    h.sb_->push(h.nop(1, 0), 0);
    h.run(200);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 6u);
    EXPECT_GE(h.sb_->stats().slotPreemptions, 1u);
    EXPECT_TRUE(h.sb_->idle());
}

TEST(SlotPreemption, ManyThreadsAllComplete)
{
    PreemptHarness h;
    // 8 threads x 3 waves arriving youngest-first: worst case for the
    // four slots.
    for (ThreadId t = 0; t < 8; ++t) {
        for (int w = 2; w >= 0; --w)
            h.sb_->push(h.nop(t, static_cast<WaveNum>(w)), 0);
    }
    h.run(500);
    EXPECT_EQ(h.sb_->stats().waveCompletions, 24u);
    EXPECT_TRUE(h.sb_->idle());
}

// ---------------------------------------------------------------------
// Wave window (k-loop bounding)
// ---------------------------------------------------------------------

TEST(WaveWindow, AdmissionRule)
{
    WaveWindow w;
    w.k = 2;
    w.base = {3, 0};
    EXPECT_TRUE(w.admits(Tag{0, 3}));
    EXPECT_TRUE(w.admits(Tag{0, 4}));
    EXPECT_FALSE(w.admits(Tag{0, 5}));
    EXPECT_TRUE(w.admits(Tag{0, 0}));   // Older waves always pass.
    EXPECT_TRUE(w.admits(Tag{1, 1}));
    EXPECT_FALSE(w.admits(Tag{1, 2}));
    EXPECT_TRUE(w.admits(Tag{7, 99}));  // Unknown thread: no throttle.
}

TEST(WaveWindow, ThrottleLimitsWaveConcurrency)
{
    // A parallel loop: with k=1 the waves serialize; with k=4 they
    // overlap. Throughput must improve, and throttle events must be
    // observed at k=1.
    auto run = [&](unsigned k) {
        KernelParams p;
        p.threads = 4;
        DataflowGraph g = buildFft(p);
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.memory.l2Bytes = 1 << 20;
        cfg.pe.k = k;
        Processor proc(g, cfg);
        EXPECT_TRUE(proc.run(4'000'000));
        return std::pair<double, double>(
            proc.aipc(), proc.report().sumPrefix("pe.executed"));
    };
    const auto [aipc1, exec1] = run(1);
    const auto [aipc4, exec4] = run(4);
    EXPECT_EQ(exec1, exec4);      // Same work...
    EXPECT_GT(aipc4, aipc1);      // ...more overlap.
}

TEST(WaveWindow, CorrectnessUnaffectedByK)
{
    for (unsigned k : {1u, 2u, 8u}) {
        KernelParams p;
        DataflowGraph g = buildTwolf(p);
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.memory.l2Bytes = 1 << 20;
        cfg.pe.k = k;
        Processor proc(g, cfg);
        ASSERT_TRUE(proc.run(6'000'000)) << "k=" << k;
        // Useful count is an architectural result; k is timing-only.
        static Counter baseline_useful = 0;
        if (baseline_useful == 0)
            baseline_useful = proc.usefulExecuted();
        EXPECT_EQ(proc.usefulExecuted(), baseline_useful) << "k=" << k;
    }
}

TEST(WaveWindow, ThrottledTokensAreCounted)
{
    KernelParams p;
    DataflowGraph g = buildFft(p);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    cfg.pe.k = 1;
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(4'000'000));
    Counter throttled = 0;
    for (DomainId d = 0; d < 4; ++d) {
        const Domain &dom = proc.cluster(0).domain(d);
        for (PeId pe = 0; pe < dom.numPes(); ++pe)
            throttled += dom.pe(pe).stats().waveThrottled;
    }
    EXPECT_GT(throttled, 0u);
}

} // namespace
} // namespace ws
