/**
 * @file
 * Interval-tracer tests plus per-kernel structural invariants: the
 * properties each workload was designed with (wave sizes, memory mix,
 * sharing patterns) that the evaluation's conclusions lean on.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/processor.h"
#include "core/trace.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// IntervalTracer
// ---------------------------------------------------------------------

TEST(Tracer, EmitsHeaderAndRows)
{
    KernelParams p;
    DataflowGraph g = buildRawdaudio(p);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    std::ostringstream os;
    IntervalTracer tracer(os, 256);
    proc.attachTracer(&tracer);
    ASSERT_TRUE(proc.run(2'000'000));

    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("cycle,aipc_window"), std::string::npos);
    int rows = 0;
    double executed_sum = 0.0;
    while (std::getline(in, line)) {
        ++rows;
        // Column 4 is executed_window.
        std::istringstream cells(line);
        std::string cell;
        for (int c = 0; c < 4 && std::getline(cells, cell, ','); ++c) {
        }
        executed_sum += std::stod(cell);
    }
    EXPECT_GT(rows, 3);
    // Window deltas must sum to exactly the final total: run() flushes
    // the last partial window through IntervalTracer::finish().
    const double total = proc.report().get("pe.executed");
    EXPECT_NEAR(executed_sum, total, 1e-6);
}

TEST(Tracer, IntervalZeroIsClamped)
{
    std::ostringstream os;
    IntervalTracer tracer(os, 0);
    EXPECT_EQ(tracer.interval(), 1u);
}

// ---------------------------------------------------------------------
// Kernel structural invariants
// ---------------------------------------------------------------------

/** Memory ops per wave region, max over regions. */
std::size_t
maxChainLength(const DataflowGraph &g)
{
    std::size_t mx = 0;
    for (const auto &chain : g.memRegions())
        mx = std::max(mx, chain.size());
    return mx;
}

TEST(KernelShape, WavesStayStoreBufferSized)
{
    // The store buffer's design envelope (a handful of memory ops per
    // wave, PSQ-countable dataless stores) is what the §3.3.1 results
    // assume; every kernel must stay in it.
    KernelParams p;
    p.threads = 2;
    for (const Kernel &k : kernelRegistry()) {
        DataflowGraph g = k.build(p);
        EXPECT_LE(maxChainLength(g), 12u) << k.name;
    }
}

TEST(KernelShape, EveryThreadSinksExactlyOnce)
{
    KernelParams p;
    p.threads = 4;
    for (const Kernel &k : kernelRegistry()) {
        DataflowGraph g = k.build(p);
        const Counter expected = g.expectedSinkTokens();
        EXPECT_EQ(expected, k.multithreaded ? 4u : 1u) << k.name;
    }
}

TEST(KernelShape, SuitesHaveTheirCharacteristicMix)
{
    KernelParams p;
    std::map<std::string, StatReport> stats;
    for (const Kernel &k : kernelRegistry())
        stats.emplace(k.name, k.build(p).staticStats());

    // FP share: ammp/art/equake and the scientific Splash kernels are
    // FP-heavy; gzip/mcf/twolf are integer-only.
    for (const char *intk : {"gzip", "mcf", "twolf", "radix"})
        EXPECT_EQ(stats.at(intk).get("static.fp_ops"), 0.0) << intk;
    for (const char *fpk : {"ammp", "art", "equake", "fft", "lu",
                            "ocean", "water"})
        EXPECT_GT(stats.at(fpk).get("static.fp_ops"), 30.0) << fpk;

    // Memory intensity: every kernel touches memory; mcf is a pure
    // pointer chase (loads only — no stores), unlike twolf's swaps.
    for (const Kernel &k : kernelRegistry())
        EXPECT_GT(stats.at(k.name).get("static.memory_ops"), 10.0)
            << k.name;
    EXPECT_FALSE(stats.at("mcf").has("static.op.store_addr"));
    EXPECT_GT(stats.at("twolf").get("static.op.store_addr"), 0.0);
}

TEST(KernelShape, SplashThreadsWriteDisjointPrivateData)
{
    // Threads may read shared arrays but their *sink results* must be
    // independent: running 2 threads or 4 threads must not change
    // thread 0's and 1's useful work (no cross-thread dataflow).
    KernelParams p2;
    p2.threads = 2;
    KernelParams p4;
    p4.threads = 4;
    for (const char *name : {"fft", "lu", "raytrace"}) {
        const Kernel &k = findKernel(name);
        DataflowGraph g2 = k.build(p2);
        DataflowGraph g4 = k.build(p4);
        // Same per-thread structure regardless of thread count.
        EXPECT_EQ(g2.threadSize(0), g4.threadSize(0)) << name;
        EXPECT_EQ(g2.threadSize(1), g4.threadSize(1)) << name;
    }
}

TEST(KernelShape, ScaleParameterScalesDynamicWorkOnly)
{
    KernelParams p1;
    KernelParams p3;
    p3.scale = 3;
    DataflowGraph g1 = buildDjpeg(p1);
    DataflowGraph g3 = buildDjpeg(p3);
    // Static size identical; iteration bounds differ.
    EXPECT_EQ(g1.size(), g3.size());
}

TEST(KernelShape, SeedChangesDataNotStructure)
{
    KernelParams pa;
    KernelParams pb;
    pb.seed = 1234;
    DataflowGraph ga = buildTwolf(pa);
    DataflowGraph gb = buildTwolf(pb);
    EXPECT_EQ(ga.size(), gb.size());
    ASSERT_EQ(ga.memInit().size(), gb.memInit().size());
    int differing = 0;
    for (std::size_t i = 0; i < ga.memInit().size(); ++i) {
        if (ga.memInit()[i].second != gb.memInit()[i].second)
            ++differing;
    }
    EXPECT_GT(differing, 100);
}

} // namespace
} // namespace ws
