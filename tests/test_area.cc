/**
 * @file
 * Tests for the area model, design-space enumeration, Pareto machinery,
 * and — crucially — reproduction of the paper's published area numbers.
 */

#include <gtest/gtest.h>

#include <set>

#include "area/area_model.h"
#include "area/design_space.h"
#include "area/pareto.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// Published-number reproduction (Tables 2 and 5)
// ---------------------------------------------------------------------

TEST(AreaModel, ReproducesTable2PeBudget)
{
    // Baseline PE: M = V = 128.
    const double pe = AreaModel::peArea(128, 128);
    EXPECT_NEAR(pe, Table2Budget::kPeTotal, 0.01);
}

TEST(AreaModel, ReproducesTable2DomainBudget)
{
    const double dom = AreaModel::domainArea(8, 128, 128);
    // Table 2's domain total includes the FPU (0.53), which the Table-3
    // model folds into the per-PE constants; compare without it.
    EXPECT_NEAR(dom + Table2Budget::kFpu, Table2Budget::kDomainTotal,
                0.35);
}

struct Table5Row
{
    DesignPoint d;
    double area;
};

class Table5Areas : public testing::TestWithParam<Table5Row>
{};

TEST_P(Table5Areas, WithinThreePercent)
{
    const Table5Row &row = GetParam();
    EXPECT_NEAR(AreaModel::totalArea(row.d), row.area,
                row.area * 0.03);
}

// The paper's Table-5 Pareto-optimal configurations and their published
// areas (mm²).
INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table5Areas,
    testing::Values(
        Table5Row{{1, 4, 8, 128, 128, 8, 0}, 39},    // id 1
        Table5Row{{1, 4, 8, 128, 128, 16, 0}, 42},   // id 2
        Table5Row{{1, 4, 8, 128, 128, 32, 0}, 48},   // id 3
        Table5Row{{1, 4, 8, 128, 128, 8, 1}, 52},    // id 4
        Table5Row{{1, 4, 8, 128, 128, 32, 1}, 61},   // id 5
        Table5Row{{1, 4, 8, 128, 128, 32, 2}, 74},   // id 6
        Table5Row{{1, 4, 8, 128, 128, 16, 4}, 92},   // id 7
        Table5Row{{4, 4, 8, 64, 64, 8, 1}, 109},     // id 8
        Table5Row{{4, 4, 8, 64, 64, 16, 2}, 134},    // id 9
        Table5Row{{4, 4, 8, 64, 64, 32, 1}, 146},    // id 10
        Table5Row{{4, 4, 8, 64, 64, 32, 2}, 159},    // id 11
        Table5Row{{4, 4, 8, 128, 128, 8, 1}, 169},   // id 12
        Table5Row{{4, 4, 8, 128, 128, 16, 2}, 194},  // id 13
        Table5Row{{4, 4, 8, 128, 128, 32, 1}, 206},  // id 14
        Table5Row{{4, 4, 8, 128, 128, 32, 2}, 219},  // id 15
        Table5Row{{4, 4, 8, 128, 128, 32, 4}, 244},  // id 16
        Table5Row{{16, 4, 8, 64, 64, 8, 0}, 387},    // id 17
        Table5Row{{16, 4, 8, 64, 64, 8, 1}, 399}),   // id 18
    [](const testing::TestParamInfo<Table5Row> &info) {
        return "cfg" + std::to_string(info.index + 1);
    });

TEST(AreaModel, PaperHeadlineRange)
{
    // "designs ranging in size from 40mm² to 400mm²"
    const DesignPoint smallest{1, 4, 8, 128, 128, 8, 0};
    const DesignPoint largest{16, 4, 8, 64, 64, 8, 1};
    EXPECT_NEAR(AreaModel::totalArea(smallest), 39.2, 1.0);
    EXPECT_NEAR(AreaModel::totalArea(largest), 399.0, 4.0);
}

// ---------------------------------------------------------------------
// Model structure properties
// ---------------------------------------------------------------------

TEST(AreaModel, LinearInMatchingEntries)
{
    const double a8 = AreaModel::peArea(8, 64);
    const double a16 = AreaModel::peArea(16, 64);
    const double a32 = AreaModel::peArea(32, 64);
    EXPECT_NEAR(a32 - a16, 2 * (a16 - a8), 1e-12);
}

TEST(AreaModel, LinearInInstructionStore)
{
    const double a8 = AreaModel::peArea(64, 8);
    const double a16 = AreaModel::peArea(64, 16);
    const double a32 = AreaModel::peArea(64, 32);
    EXPECT_NEAR(a32 - a16, 2 * (a16 - a8), 1e-12);
}

TEST(AreaModel, LinearInL2)
{
    DesignPoint d{1, 4, 8, 128, 128, 32, 0};
    DesignPoint d1 = d;
    d1.l2MB = 1;
    DesignPoint d2 = d;
    d2.l2MB = 2;
    EXPECT_NEAR(AreaModel::totalArea(d2) - AreaModel::totalArea(d1),
                AreaModel::kL2PerMB, 1e-9);
}

TEST(AreaModel, UtilizationInflatesClusterAreaOnly)
{
    DesignPoint d{1, 4, 8, 128, 128, 32, 1};
    const double expect = AreaModel::clusterArea(d) /
                              AreaModel::kUtilization +
                          AreaModel::kL2PerMB;
    EXPECT_NEAR(AreaModel::totalArea(d), expect, 1e-9);
}

TEST(AreaModel, MostAreaIsSram)
{
    // §4.1: ~80% of the die is SRAM (matching tables, instruction
    // stores, caches). Check for the baseline cluster.
    DesignPoint d{1, 4, 8, 128, 128, 32, 0};
    const double sram =
        32 * (128 * AreaModel::kMatchPerEntry +
              128 * AreaModel::kInstPerEntry) +
        32 * AreaModel::kL1PerKB;
    EXPECT_GT(sram / AreaModel::clusterArea(d), 0.7);
}

TEST(AreaModel, DescribeSurvivesExtremeFieldValues)
{
    // describe() used to go through a fixed-size stack buffer; seven
    // maxed-out uint16 fields must render untruncated.
    DesignPoint d;
    d.clusters = 65535;
    d.domainsPerCluster = 65535;
    d.pesPerDomain = 65535;
    d.virt = 65535;
    d.matching = 65535;
    d.l1KB = 65535;
    d.l2MB = 65535;
    EXPECT_EQ(d.describe(),
              "C65535 D65535 P65535 V65535 M65535 L1:65535K L2:65535M");
    EXPECT_EQ(DesignPoint{}.describe(), "C1 D4 P8 V128 M128 L1:32K L2:0M");
}

// ---------------------------------------------------------------------
// Design-space enumeration
// ---------------------------------------------------------------------

TEST(DesignSpace, RawCountMatchesPaperScale)
{
    // "over twenty-one thousand WaveScalar processor configurations"
    const auto raw = enumerateRawDesigns();
    EXPECT_EQ(raw.size(), 22680u);
}

TEST(DesignSpace, CandidatesAreBoundedAndLegal)
{
    const auto cands = enumerateCandidates();
    EXPECT_GE(cands.size(), 40u);   // Paper: 41 (our superset: 78).
    EXPECT_LE(cands.size(), 100u);
    for (const DesignPoint &d : cands) {
        EXPECT_LE(AreaModel::totalArea(d), 400.0);
        EXPECT_GE(d.instCapacity(), 4096u);
        EXPECT_EQ(d.matching, d.virt);
        // Structural rules.
        if (d.pesPerDomain < 8)
            EXPECT_EQ(d.domainsPerCluster, 1);
        if (d.domainsPerCluster < 4)
            EXPECT_EQ(d.clusters, 1);
    }
}

TEST(DesignSpace, CandidatesSpanThePaperRange)
{
    const auto cands = enumerateCandidates();
    double min_area = 1e9;
    double max_area = 0;
    for (const DesignPoint &d : cands) {
        min_area = std::min(min_area, AreaModel::totalArea(d));
        max_area = std::max(max_area, AreaModel::totalArea(d));
    }
    EXPECT_LT(min_area, 45.0);
    EXPECT_GT(max_area, 380.0);
}

TEST(DesignSpace, IncludesEveryTable5Configuration)
{
    const auto cands = enumerateCandidates();
    std::set<std::string> have;
    for (const DesignPoint &d : cands)
        have.insert(d.describe());
    for (const DesignPoint &d : std::initializer_list<DesignPoint>{
             {1, 4, 8, 128, 128, 8, 0},
             {1, 4, 8, 128, 128, 8, 1},
             {4, 4, 8, 64, 64, 8, 1},
             {4, 4, 8, 128, 128, 32, 2},
             {16, 4, 8, 64, 64, 8, 0},
             {16, 4, 8, 64, 64, 8, 1}}) {
        EXPECT_TRUE(have.count(d.describe())) << d.describe();
    }
}

TEST(DesignSpace, StructuralPruningShrinksMonotonically)
{
    const auto raw = enumerateRawDesigns();
    DesignSpaceRules rules;
    const auto structural = pruneStructural(raw, rules);
    const auto cands = enumerateCandidates(rules);
    EXPECT_LT(structural.size(), raw.size());
    EXPECT_LT(cands.size(), structural.size());
}

TEST(DesignSpace, ToProcessorConfigValidatesForAllCandidates)
{
    for (const DesignPoint &d : enumerateCandidates()) {
        ProcessorConfig cfg = toProcessorConfig(d);
        cfg.memory.clusters = cfg.clusters;
        cfg.mesh.clusters = cfg.clusters;
        EXPECT_NO_THROW(cfg.validate()) << d.describe();
    }
}

// ---------------------------------------------------------------------
// Pareto front
// ---------------------------------------------------------------------

TEST(Pareto, Dominance)
{
    EXPECT_TRUE(dominates({1, 2, 0}, {2, 1, 0}));
    EXPECT_TRUE(dominates({1, 2, 0}, {1, 1, 0}));
    EXPECT_FALSE(dominates({1, 1, 0}, {2, 2, 0}));
    EXPECT_FALSE(dominates({1, 1, 0}, {1, 1, 0}));  // Equal: no.
}

TEST(Pareto, ExtractsUpperLeftMargin)
{
    std::vector<ParetoPoint> pts = {
        {10, 1.0, 0}, {20, 2.0, 1}, {15, 1.5, 2},
        {25, 1.9, 3},  // Dominated by (20, 2.0).
        {12, 0.5, 4},  // Dominated by (10, 1.0).
    };
    const auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0], 0u);
    EXPECT_EQ(front[1], 2u);
    EXPECT_EQ(front[2], 1u);
}

TEST(Pareto, FrontMembersAreMutuallyNonDominating)
{
    std::vector<ParetoPoint> pts;
    for (int i = 0; i < 50; ++i) {
        pts.push_back({static_cast<double>((i * 37) % 100),
                       static_cast<double>((i * 53) % 90) / 10.0,
                       static_cast<std::size_t>(i)});
    }
    const auto front = paretoFront(pts);
    for (std::size_t a : front) {
        for (std::size_t b : front) {
            if (a != b)
                EXPECT_FALSE(dominates(pts[a], pts[b]));
        }
    }
    // And every non-member is dominated by some member.
    std::set<std::size_t> inFront(front.begin(), front.end());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (inFront.count(i))
            continue;
        bool dominated = false;
        for (std::size_t a : front)
            dominated |= dominates(pts[a], pts[i]);
        EXPECT_TRUE(dominated) << i;
    }
}

TEST(Pareto, SinglePointIsItsOwnFront)
{
    std::vector<ParetoPoint> pts = {{5, 5, 0}};
    EXPECT_EQ(paretoFront(pts).size(), 1u);
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(paretoFront({}).empty());
}

} // namespace
} // namespace ws
