/**
 * @file
 * Tests for the static analysis & optimization subsystem (src/analyze):
 * levelization and critical paths, width histograms, memory-chain and
 * locality metrics, the WS5xx advisory passes, the semantics-preserving
 * rewriter, and the static AIPC bound the sweep pruner relies on.
 *
 * The bound test is the load-bearing one: for every kernel at 1/2/4
 * threads, a completed baseline simulation must measure
 * aipc <= staticAipcBound * (1 + eps). If it ever fails, the
 * --prune-static sweeps could skip a winning configuration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/passes.h"
#include "analyze/profile.h"
#include "analyze/rewriter.h"
#include "core/simulator.h"
#include "driver/static_prune.h"
#include "isa/assembly.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"
#include "kernels/kernel.h"
#include "place/placement.h"
#include "verify/verifier.h"

namespace ws {
namespace {

DataflowGraph
loadFixture(const std::string &name)
{
    std::ifstream in(std::string(WS_FIXTURE_DIR) + "/" + name);
    EXPECT_TRUE(in.is_open()) << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    return assemble(ss.str());
}

std::vector<DiagCode>
adviceCodes(const DataflowGraph &g)
{
    const VerifyReport rep = adviseGraph(g);
    std::vector<DiagCode> codes;
    for (const Diagnostic &d : rep.diagnostics())
        codes.push_back(d.code);
    return codes;
}

/** Sorted sink values + final memory: the observable behavior. */
struct Observed
{
    bool completed = false;
    std::vector<Value> sinks;
    std::map<Addr, Value> memory;

    bool operator==(const Observed &o) const
    {
        return completed == o.completed && sinks == o.sinks &&
               memory == o.memory;
    }
};

Observed
observe(const DataflowGraph &g)
{
    InterpResult r = interpret(g);
    Observed o;
    o.completed = r.completed;
    o.sinks = std::move(r.sinkValues);
    std::sort(o.sinks.begin(), o.sinks.end());
    o.memory = std::move(r.memory);
    return o;
}

// ---------------------------------------------------------------------
// Levelization / critical path
// ---------------------------------------------------------------------

TEST(Levelization, AsapAlapAndSlackOnDiamond)
{
    GraphBuilder b("diamond");
    b.beginThread(0);
    auto p = b.param(10);
    auto a = b.addi(p, 1);     // Long path: p -> a -> c -> sink.
    auto c = b.muli(a, 2);
    b.sink(c);
    auto d = b.subi(p, 1);     // Short path: p -> d -> sink.
    b.sink(d);
    b.endThread();
    const DataflowGraph g = b.finish();

    const StaticProfile prof = analyzeGraph(g);
    EXPECT_EQ(prof.asap[p.id], 0u);
    EXPECT_EQ(prof.asap[a.id], 1u);
    EXPECT_EQ(prof.asap[c.id], 2u);
    EXPECT_EQ(prof.asap[d.id], 1u);
    // The long chain is tight; the short branch has one level of slack.
    EXPECT_EQ(prof.slack(p.id), 0u);
    EXPECT_EQ(prof.slack(a.id), 0u);
    EXPECT_EQ(prof.slack(c.id), 0u);
    EXPECT_EQ(prof.slack(d.id), 1u);
    // mov -> addi -> muli -> sink, unit latencies.
    EXPECT_EQ(prof.critPathLatency, 4u);
    EXPECT_EQ(prof.levels, 4u);
    EXPECT_EQ(prof.backEdges, 0u);
    ASSERT_EQ(prof.threads.size(), 1u);
    EXPECT_FALSE(prof.threads[0].cyclic);
    EXPECT_EQ(prof.threads[0].minCycleLatency, 0u);
}

TEST(Levelization, LoopIsCyclicWithWaveAdvanceRecurrence)
{
    GraphBuilder b("loop");
    b.beginThread(0);
    auto i0 = b.param(0);
    auto loop = b.beginLoop({i0});
    auto next = b.addi(loop.vars[0], 1);
    auto cond = b.lti(next, 10);
    b.endLoop(loop, {next}, cond);
    b.sink(loop.exits[0]);
    b.endThread();
    const DataflowGraph g = b.finish();

    const StaticProfile prof = analyzeGraph(g);
    ASSERT_EQ(prof.threads.size(), 1u);
    const ThreadProfile &tp = prof.threads[0];
    EXPECT_TRUE(tp.cyclic);
    EXPECT_GT(prof.backEdges, 0u);
    // The recurrence goes through at least wave_advance + body op.
    EXPECT_GE(tp.minCycleLatency, 2u);
    EXPECT_GT(tp.perWaveUseful, 0u);
    EXPECT_LE(tp.perWaveUseful, tp.mix.useful);
}

TEST(Levelization, HistogramsCoverEveryInstruction)
{
    const DataflowGraph g = findKernel("fft").build(KernelParams{});
    const StaticProfile prof = analyzeGraph(g);

    Counter total = 0;
    for (Counter w : prof.widthHist)
        total += w;
    EXPECT_EQ(total, prof.mix.total);
    Counter useful = 0;
    Counter peak = 0;
    for (Counter w : prof.usefulWidthHist) {
        useful += w;
        peak = std::max(peak, w);
    }
    EXPECT_EQ(useful, prof.mix.useful);
    EXPECT_EQ(peak, prof.peakUsefulWidth);
    EXPECT_EQ(prof.widthHist.size(), prof.levels);
    EXPECT_GT(prof.avgUsefulWidth, 0.0);
}

// ---------------------------------------------------------------------
// Memory chains / locality
// ---------------------------------------------------------------------

TEST(MemChain, DepthTracksTheOrderingChain)
{
    GraphBuilder b("mem");
    b.beginThread(0);
    const Addr base = b.alloc(32);
    b.initMem(base, 3);
    auto p = b.param(static_cast<Value>(base));
    auto v = b.load(p);
    b.store(p, v, 8);
    b.sink(v);
    b.endThread();
    const DataflowGraph g = b.finish();

    const StaticProfile prof = analyzeGraph(g);
    EXPECT_EQ(prof.memRegionCount, 1u);
    // load + store_addr share the chain (store_data rides off-chain).
    EXPECT_EQ(prof.memChainDepth, 2u);
    ASSERT_EQ(prof.threads.size(), 1u);
    EXPECT_EQ(prof.threads[0].minChainLen, 2u);
    EXPECT_EQ(prof.threads[0].memChainDepth, 2u);
}

TEST(Locality, EdgeSpansPartitionTheEdgesAndMatchEdgeLocality)
{
    const DataflowGraph g = findKernel("fft").build(KernelParams{});
    PlacementGeometry geom;
    geom.clusters = 4;
    const Placement pl =
        place(g, geom, PlacementPolicy::kDepthFirst);

    const StaticProfile prof = analyzeGraph(g, pl);
    ASSERT_TRUE(prof.hasLocality);
    const EdgeSpanCounts &s = prof.spans;
    EXPECT_GT(s.total, 0u);
    EXPECT_EQ(s.intraPe + s.intraPod + s.intraDomain + s.intraCluster +
                  s.interCluster,
              s.total);
    // localFraction must be cumulative and agree with edgeLocality().
    double prev = 0.0;
    for (int level = 0; level <= 3; ++level) {
        const double f = s.localFraction(level);
        EXPECT_GE(f, prev);
        EXPECT_LE(f, 1.0);
        EXPECT_DOUBLE_EQ(f, pl.edgeLocality(g, level));
        prev = f;
    }
    EXPECT_GT(s.weightedCost, 0u);
}

// ---------------------------------------------------------------------
// WS5xx advisory passes
// ---------------------------------------------------------------------

TEST(Advice, FoldableConstOnHandGraph)
{
    GraphBuilder b("fold");
    b.beginThread(0);
    auto t = b.param(1);
    auto c1 = b.lit(6, t);
    auto c2 = b.lit(7, t);
    auto prod = b.mul(c1, c2);
    b.sink(prod);
    b.endThread();
    const DataflowGraph g = b.finish();

    // The entry mov's tokens could feed the const triggers directly,
    // so the retarget advisory (WS504) rides along with the fold.
    const std::vector<DiagCode> codes = adviceCodes(g);
    ASSERT_EQ(codes.size(), 2u);
    EXPECT_EQ(codes[0], DiagCode::kFoldableConst);
    EXPECT_EQ(codes[1], DiagCode::kCommonSubexpr);
}

TEST(Advice, DeadValueOnHandGraph)
{
    GraphBuilder b("dead");
    b.beginThread(0);
    auto p = b.param(5);
    auto live = b.addi(p, 1);
    b.sink(live);
    auto dead = b.muli(p, 3);  // Never consumed.
    (void)dead;
    b.endThread();
    const DataflowGraph g = b.finish();

    const std::vector<DiagCode> codes = adviceCodes(g);
    ASSERT_EQ(codes.size(), 2u);
    EXPECT_EQ(codes[0], DiagCode::kDeadValue);
    EXPECT_EQ(codes[1], DiagCode::kCommonSubexpr);  // Entry-mov retarget.
}

TEST(Advice, CopyChainOnHandGraph)
{
    GraphBuilder b("copy");
    b.beginThread(0);
    auto p = b.param(4);
    auto m = b.emit(Opcode::kMov, {p});
    b.sink(m);
    b.endThread();
    const DataflowGraph g = b.finish();

    // The entry mov holds the initial token (no producer to bypass),
    // so WS503 names only the forwarding mov; the entry mov itself is
    // a WS504 retarget candidate instead.
    const std::vector<DiagCode> codes = adviceCodes(g);
    ASSERT_EQ(codes.size(), 2u);
    EXPECT_EQ(codes[0], DiagCode::kCopyChain);
    EXPECT_EQ(codes[1], DiagCode::kCommonSubexpr);
}

TEST(Advice, FixturesProduceExactlyTheirSeededCodes)
{
    const struct
    {
        const char *file;
        std::vector<DiagCode> expect;
    } cases[] = {
        {"opt_foldable.wsa",
         {DiagCode::kFoldableConst, DiagCode::kCommonSubexpr}},
        {"opt_dead_node.wsa",
         {DiagCode::kDeadValue, DiagCode::kDeadValue,
          DiagCode::kCommonSubexpr}},
        {"opt_copy_chain.wsa",
         {DiagCode::kCopyChain, DiagCode::kCommonSubexpr}},
        {"opt_optimal.wsa", {}},
    };
    for (const auto &c : cases) {
        const DataflowGraph g = loadFixture(c.file);
        EXPECT_TRUE(verify(g).ok()) << c.file;
        EXPECT_EQ(adviceCodes(g), c.expect) << c.file;
    }
}

TEST(Advice, AdvisoriesAreNotes)
{
    for (DiagCode code : {DiagCode::kFoldableConst, DiagCode::kDeadValue,
                          DiagCode::kCopyChain, DiagCode::kCommonSubexpr,
                          DiagCode::kAlgebraicIdentity}) {
        EXPECT_EQ(diagSeverity(code), Severity::kNote);
        EXPECT_NE(diagCodeSummary(code), nullptr);
    }
}

// ---------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------

TEST(Rewriter, FoldsConstantsAndPreservesTheSinkValue)
{
    DataflowGraph g = loadFixture("opt_foldable.wsa");
    const Observed before = observe(g);
    ASSERT_TRUE(before.completed);
    EXPECT_EQ(before.sinks, std::vector<Value>{42});

    const RewriteStats stats = optimizeGraph(g);
    EXPECT_EQ(stats.folded, 1u);
    EXPECT_TRUE(verify(g).ok());
    EXPECT_TRUE(adviceCodes(g).empty());  // Fixpoint reached.
    EXPECT_TRUE(observe(g) == before);
}

TEST(Rewriter, EliminatesTheDeadIsland)
{
    DataflowGraph g = loadFixture("opt_dead_node.wsa");
    const Observed before = observe(g);
    const std::size_t size_before = g.size();

    // The dead island (2 nodes) dies, and the entry mov's tokens are
    // retargeted (WS504) so the mov itself becomes dead too.
    const RewriteStats stats = optimizeGraph(g);
    EXPECT_EQ(stats.removed, 3u);
    EXPECT_EQ(stats.merged, 1u);
    EXPECT_EQ(g.size(), size_before - 3);
    EXPECT_TRUE(verify(g).ok());
    EXPECT_TRUE(adviceCodes(g).empty());
    EXPECT_TRUE(observe(g) == before);
}

TEST(Rewriter, BypassesTheForwardingMov)
{
    DataflowGraph g = loadFixture("opt_copy_chain.wsa");
    const Observed before = observe(g);

    const RewriteStats stats = optimizeGraph(g);
    EXPECT_EQ(stats.bypassed, 1u);
    EXPECT_TRUE(verify(g).ok());
    EXPECT_TRUE(adviceCodes(g).empty());
    EXPECT_TRUE(observe(g) == before);
}

TEST(Rewriter, LeavesTheOptimalFixtureAlone)
{
    DataflowGraph g = loadFixture("opt_optimal.wsa");
    const std::size_t size_before = g.size();
    const RewriteStats stats = optimizeGraph(g);
    EXPECT_FALSE(stats.changed());
    EXPECT_EQ(g.size(), size_before);
}

TEST(Rewriter, KernelsStayEquivalentAndVerifyCleanAfterRewrite)
{
    for (const Kernel &k : kernelRegistry()) {
        std::vector<std::uint16_t> threads{1};
        if (k.multithreaded)
            threads = {1, 2, 4};
        for (std::uint16_t t : threads) {
            KernelParams params;
            params.threads = t;
            DataflowGraph g = k.build(params);
            const Observed before = observe(g);

            const RewriteStats stats = optimizeGraph(g);
            const VerifyReport rep = verify(g);
            EXPECT_TRUE(rep.ok())
                << k.name << " t" << t << ": " << rep.summary();
            EXPECT_TRUE(adviceCodes(g).empty()) << k.name << " t" << t;
            EXPECT_TRUE(observe(g) == before) << k.name << " t" << t;
            (void)stats;
        }
    }
}

// ---------------------------------------------------------------------
// Instruction mix (shared opcode classification)
// ---------------------------------------------------------------------

TEST(InstructionMix, PinnedPerKernelCounts)
{
    // One row per kernel at 1 thread:
    // {total, useful, compute, memory, control, plumbing, fp}.
    // Regenerate with: wsa-opt --threads=1 --kernels.
    const std::map<std::string, std::array<Counter, 7>> expect = {
        {"gzip", {3136, 2738, 2342, 396, 216, 182, 0}},
        {"mcf", {1374, 1060, 868, 192, 288, 26, 0}},
        {"twolf", {1924, 1562, 1282, 280, 240, 122, 0}},
        {"ammp", {1912, 1622, 1370, 252, 216, 74, 468}},
        {"art", {1476, 1218, 1058, 160, 192, 66, 256}},
        {"equake", {1306, 1044, 862, 182, 204, 58, 180}},
        {"djpeg", {786, 646, 558, 88, 84, 56, 0}},
        {"mpeg2encode", {1269, 1107, 979, 128, 144, 18, 0}},
        {"rawdaudio", {645, 547, 499, 48, 72, 26, 0}},
        {"fft", {299, 242, 192, 50, 30, 27, 55}},
        {"lu", {361, 296, 240, 56, 42, 23, 42}},
        {"ocean", {476, 410, 362, 48, 48, 18, 72}},
        {"radix", {308, 234, 194, 40, 48, 26, 0}},
        {"raytrace", {580, 536, 476, 60, 36, 8, 228}},
        {"water", {389, 331, 275, 56, 42, 16, 91}},
    };
    std::set<std::string> seen;
    for (const Kernel &k : kernelRegistry()) {
        const auto it = expect.find(k.name);
        ASSERT_NE(it, expect.end()) << "unpinned kernel " << k.name;
        seen.insert(k.name);
        const InstructionMix m = k.build(KernelParams{}).mix();
        const auto &e = it->second;
        EXPECT_EQ(m.total, e[0]) << k.name;
        EXPECT_EQ(m.useful, e[1]) << k.name;
        EXPECT_EQ(m.compute, e[2]) << k.name;
        EXPECT_EQ(m.memory, e[3]) << k.name;
        EXPECT_EQ(m.control, e[4]) << k.name;
        EXPECT_EQ(m.plumbing, e[5]) << k.name;
        EXPECT_EQ(m.fp, e[6]) << k.name;
    }
    EXPECT_EQ(seen.size(), expect.size());
}

TEST(InstructionMix, ClassesPartitionAndUsefulIsComputePlusMemory)
{
    for (const Kernel &k : kernelRegistry()) {
        const DataflowGraph g = k.build(KernelParams{});
        const InstructionMix m = g.mix();
        EXPECT_EQ(m.compute + m.memory + m.control + m.plumbing, m.total)
            << k.name;
        EXPECT_EQ(m.compute + m.memory, m.useful) << k.name;
        EXPECT_EQ(m.useful, g.usefulSize()) << k.name;

        // Thread mixes partition the whole-graph mix.
        Counter total = 0;
        for (ThreadId t = 0; t < g.numThreads(); ++t)
            total += g.threadMix(t).total;
        EXPECT_EQ(total, m.total) << k.name;
    }
}

TEST(InstructionMix, StaticStatsReportsTheMix)
{
    const DataflowGraph g = findKernel("fft").build(KernelParams{});
    const StatReport stats = g.staticStats();
    const InstructionMix m = g.mix();
    EXPECT_EQ(stats.get("static.instructions"),
              static_cast<double>(m.total));
    EXPECT_EQ(stats.get("static.useful"),
              static_cast<double>(m.useful));
    EXPECT_EQ(stats.get("static.control_ops"),
              static_cast<double>(m.control));
    EXPECT_EQ(stats.get("static.plumbing_ops"),
              static_cast<double>(m.plumbing));
    EXPECT_EQ(stats.get("static.fp_ops"), static_cast<double>(m.fp));
    EXPECT_EQ(stats.get("static.memory_ops"),
              static_cast<double>(m.memoryAll));
}

// ---------------------------------------------------------------------
// Max cycle ratio (min initiation interval) analysis
// ---------------------------------------------------------------------

/** Single-carried loop whose body is a chain of @p bodyOps addi ops
 *  followed by the lti condition. Unit-weight recurrence cycles:
 *  wave_advance -> body chain -> steer -> wave_advance (bodyOps + 2
 *  hops) and the condition detour through lti (bodyOps + 3 hops), one
 *  wave advance each, so the max cycle ratio is bodyOps + 3. */
DataflowGraph
chainLoop(const char *name, int bodyOps)
{
    GraphBuilder b(name);
    b.beginThread(0);
    auto i0 = b.param(0);
    auto loop = b.beginLoop({i0});
    GraphBuilder::Node next = loop.vars[0];
    for (int i = 0; i < bodyOps; ++i)
        next = b.addi(next, 1);
    auto cond = b.lti(next, 100);
    b.endLoop(loop, {next}, cond);
    b.sink(loop.exits[0]);
    b.endThread();
    return b.finish();
}

const analyze_detail::EdgeWeightFn kUnitWeight =
    [](InstId, InstId) { return 1.0; };

TEST(CycleRatio, SingleLoopCountsHopsPerWaveAdvance)
{
    // One-op body: the binding cycle is wave_advance -> addi -> lti ->
    // steer -> wave_advance, 4 hops per wave advance.
    const DataflowGraph g = chainLoop("loop1", 1);
    const std::vector<double> r =
        analyze_detail::threadCycleRatios(g, kUnitWeight);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r[0], 4.0, 1e-6);

    // The published per-thread profile carries the same number.
    const StaticProfile prof = analyzeGraph(g);
    ASSERT_EQ(prof.threads.size(), 1u);
    EXPECT_NEAR(prof.threads[0].cycleRatio, 4.0, 1e-6);
}

TEST(CycleRatio, LongerBodyRaisesTheRatio)
{
    const DataflowGraph g = chainLoop("loop3", 3);
    const std::vector<double> r =
        analyze_detail::threadCycleRatios(g, kUnitWeight);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r[0], 6.0, 1e-6);
}

TEST(CycleRatio, SequentialLoopsGateOnlyTheirOwnWaves)
{
    // Two sequential loops are separate SCCs; a thread's waves advance
    // at the rate of its FASTEST loop while that loop runs, so the
    // thread-level initiation-interval floor is the minimum ratio.
    GraphBuilder b("seqloops");
    b.beginThread(0);
    auto i0 = b.param(0);
    auto la = b.beginLoop({i0});
    auto na = b.addi(la.vars[0], 1);            // ratio 4
    b.endLoop(la, {na}, b.lti(na, 100));
    auto lb = b.beginLoop({la.exits[0]});
    auto nb = b.addi(b.addi(lb.vars[0], 1), 1); // ratio 5
    b.endLoop(lb, {nb}, b.lti(nb, 200));
    b.sink(lb.exits[0]);
    b.endThread();
    const DataflowGraph g = b.finish();

    const std::vector<double> r =
        analyze_detail::threadCycleRatios(g, kUnitWeight);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r[0], 4.0, 1e-6);
}

TEST(CycleRatio, EntangledCarriesShareOneScc)
{
    // Two carried values whose bodies read each other: one SCC with two
    // wave advances and many simple cycles. The single-carry condition
    // detour (4 hops / 1 advance) still dominates the cross cycle
    // through both steers (7 hops / 2 advances).
    GraphBuilder b("twocarry");
    b.beginThread(0);
    auto i0 = b.param(0);
    auto j0 = b.param(1);
    auto loop = b.beginLoop({i0, j0});
    auto sum = b.add(loop.vars[0], loop.vars[1]);
    auto nj = b.addi(loop.vars[1], 1);
    auto cond = b.lti(sum, 100);
    b.endLoop(loop, {sum, nj}, cond);
    b.sink(loop.exits[0]);
    b.sink(loop.exits[1]);
    b.endThread();
    const DataflowGraph g = b.finish();

    const std::vector<double> r =
        analyze_detail::threadCycleRatios(g, kUnitWeight);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r[0], 4.0, 1e-6);
}

TEST(CycleRatio, WeightFunctionIsRespected)
{
    const DataflowGraph g = chainLoop("loopw", 1);

    // Cycle ratios are linear in the edge weights.
    const std::vector<double> doubled =
        analyze_detail::threadCycleRatios(
            g, [](InstId, InstId) { return 2.0; });
    ASSERT_EQ(doubled.size(), 1u);
    EXPECT_NEAR(doubled[0], 8.0, 1e-6);

    // Zero-weight edges into the steer (a bypassed hop): the binding
    // condition cycle drops from 4 hops to 3.
    const std::vector<double> bypassed =
        analyze_detail::threadCycleRatios(
            g, [&](InstId, InstId to) {
                return g.inst(to).op == Opcode::kSteer ? 0.0 : 1.0;
            });
    ASSERT_EQ(bypassed.size(), 1u);
    EXPECT_NEAR(bypassed[0], 3.0, 1e-6);

    // All-zero weights: cycles cost nothing, no recurrence constraint.
    const std::vector<double> zero =
        analyze_detail::threadCycleRatios(
            g, [](InstId, InstId) { return 0.0; });
    ASSERT_EQ(zero.size(), 1u);
    EXPECT_NEAR(zero[0], 0.0, 1e-6);
}

TEST(CycleRatio, AcyclicThreadReportsZero)
{
    GraphBuilder b("straight");
    b.beginThread(0);
    auto p = b.param(3);
    b.sink(b.muli(b.addi(p, 1), 2));
    b.endThread();
    const DataflowGraph g = b.finish();

    const std::vector<double> r =
        analyze_detail::threadCycleRatios(g, kUnitWeight);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], 0.0);
}

// ---------------------------------------------------------------------
// Static AIPC bound (the pruning soundness property)
// ---------------------------------------------------------------------

TEST(StaticBound, SimulatedAipcNeverExceedsTheBound)
{
    // eps covers floating-point noise only; the bound itself must hold.
    const double eps = 1e-9;
    const ProcessorConfig cfg = ProcessorConfig::baseline();
    for (const Kernel &k : kernelRegistry()) {
        std::vector<std::uint16_t> threads{1};
        if (k.multithreaded)
            threads = {1, 2, 4};
        for (std::uint16_t t : threads) {
            KernelParams params;
            params.threads = t;
            const DataflowGraph g = k.build(params);
            const double bound =
                staticAipcBound(analyzeGraph(g), cfg);
            ASSERT_GT(bound, 0.0) << k.name << " t" << t;

            SimOptions opts;
            opts.maxCycles = 600'000;
            const SimResult sim = runSimulation(g, cfg, opts);
            EXPECT_TRUE(sim.completed) << k.name << " t" << t;
            if (sim.completed) {
                EXPECT_LE(sim.aipc, bound * (1.0 + eps))
                    << k.name << " t" << t << ": aipc " << sim.aipc
                    << " vs bound " << bound;
            }
        }
    }
}

TEST(StaticBound, PlacedBoundHoldsAcrossMachinesAndThreads)
{
    // The placement-resolved bound (occupancy, transit floors, shared
    // store buffers) is the one --prune-static compares against, so it
    // must hold on every machine a sweep visits, not just baseline.
    const double eps = 1e-9;

    ProcessorConfig small = ProcessorConfig::baseline();
    small.pe.matchingEntries = 32;
    small.pe.outputQueueEntries = 2;
    ProcessorConfig quad = ProcessorConfig::baseline();
    quad.clusters = 4;
    const std::array<ProcessorConfig, 3> grid{
        small, ProcessorConfig::baseline(), quad};

    ProfileCache cache;
    std::uint64_t fp = 1;
    for (const Kernel &k : kernelRegistry()) {
        std::vector<std::uint16_t> threads{1};
        if (k.multithreaded)
            threads = {1, 2, 4};
        for (std::uint16_t t : threads) {
            KernelParams params;
            params.threads = t;
            const DataflowGraph g = k.build(params);
            const std::uint64_t graphFp = fp++;
            for (const ProcessorConfig &cfg : grid) {
                const BoundBreakdown bound =
                    cache.boundFor(g, graphFp, cfg);
                ASSERT_GT(bound.bound, 0.0) << k.name << " t" << t;

                SimOptions opts;
                opts.maxCycles = 600'000;
                const SimResult sim = runSimulation(g, cfg, opts);
                EXPECT_TRUE(sim.completed) << k.name << " t" << t;
                if (sim.completed) {
                    EXPECT_LE(sim.aipc, bound.bound * (1.0 + eps))
                        << k.name << " t" << t << " C"
                        << cfg.clusters << ": aipc " << sim.aipc
                        << " vs bound " << bound.bound << " ("
                        << boundTermName(bound.binding) << ")";
                }
            }
        }
    }
}

TEST(StaticBound, CappedByMachineIssueWidth)
{
    MachineBoundParams m;
    m.totalPes = 2;
    const DataflowGraph g = findKernel("gzip").build(KernelParams{});
    EXPECT_LE(staticAipcBound(analyzeGraph(g), m), 2.0);
}

TEST(StaticBound, SharedSbRespectsCappedSoloBounds)
{
    // Two same-cluster cyclic threads whose solo bounds are already
    // PE-occupancy-capped (2 and 5) far below their wave terms (10
    // each). The shared store-buffer reduction used to subtract the
    // full wave-term surplus from the capped sum, driving the machine
    // bound negative (7 - 10 = -3 here) and letting --prune-static
    // discard a group's true winner; the group total must instead be
    // rebuilt member by member, each capped at its solo bound.
    StaticProfile profile;
    profile.numThreads = 2;
    profile.threads.resize(2);
    PlacedProfile placed;
    placed.threads.resize(2);
    for (std::size_t t = 0; t < 2; ++t) {
        ThreadProfile &tp = profile.threads[t];
        tp.thread = static_cast<ThreadId>(t);
        tp.mix.useful = 10;  // == perWaveUseful: no one-shot part.
        tp.cyclic = true;
        tp.perWaveUseful = 10;
        tp.minChainLen = 1;
        tp.critPathLatency = 1;
        PlacedThreadStats &ts = placed.threads[t];
        ts.thread = static_cast<ThreadId>(t);
        ts.lambda = 1.0;     // waveRate 1 -> wave term 10.
        ts.homeCluster = 0;  // Both split cluster 0's store buffer.
        ts.placedDepth = 1.0;
        ts.maxPeUsefulLoad = 1;
    }
    placed.threads[0].usefulPes = 2;  // Solo bounds: 2 and 5.
    placed.threads[1].usefulPes = 5;

    MachineBoundParams m;
    m.totalPes = 64;

    // issueWidth 1.0 covers both capped retire rates (0.2 + 0.5 chain
    // ops/cycle), so sharing must not bite at all: the group keeps its
    // solo total of 7.
    m.sbIssueWidth = 1.0;
    const BoundBreakdown full =
        staticAipcBoundDetail(profile, placed, m);
    EXPECT_NEAR(full.bound, 7.0, 1e-9);
    EXPECT_TRUE(full.sbShared.empty());

    // issueWidth 0.5: thread 0 keeps its capped 2.0 (0.2 of the
    // budget) and thread 1 converts the remaining 0.3 into 3.0 — the
    // LP optimum 5.0 is exactly the best schedule the caps admit,
    // never below it.
    m.sbIssueWidth = 0.5;
    const BoundBreakdown tight =
        staticAipcBoundDetail(profile, placed, m);
    EXPECT_NEAR(tight.bound, 5.0, 1e-9);
    EXPECT_EQ(tight.binding, BoundTerm::kSbShared);
    ASSERT_EQ(tight.sbShared.size(), 1u);
    EXPECT_NEAR(tight.sbShared[0].unshared, 7.0, 1e-9);
    EXPECT_NEAR(tight.sbShared[0].shared, 5.0, 1e-9);
}

TEST(StaticBound, ProfileCacheMemoizesByFingerprint)
{
    ProfileCache cache;
    const DataflowGraph g = findKernel("fft").build(KernelParams{});
    const auto a = cache.profileFor(g, 0x42);
    const auto b = cache.profileFor(g, 0x42);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.size(), 1u);
    // Zero fingerprint: fresh analysis, nothing cached.
    const auto c = cache.profileFor(g, 0);
    EXPECT_NE(c.get(), a.get());
    EXPECT_EQ(cache.size(), 1u);
}

TEST(StaticBound, PlacedCacheKeysOnPlacementRelevantConfig)
{
    ProfileCache cache;
    const DataflowGraph g = findKernel("fft").build(KernelParams{});

    const ProcessorConfig base = ProcessorConfig::baseline();
    const auto a = cache.placedFor(g, 0x42, base);
    const auto b = cache.placedFor(g, 0x42, base);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.placedSize(), 1u);

    // Matching-table capacity does not move instructions: same memo
    // entry. Geometry does: a new one.
    ProcessorConfig bigger_mt = base;
    bigger_mt.pe.matchingEntries = 256;
    bigger_mt.relaxLimits = true;
    EXPECT_EQ(cache.placedFor(g, 0x42, bigger_mt).get(), a.get());
    EXPECT_EQ(cache.placedSize(), 1u);

    ProcessorConfig quad = base;
    quad.clusters = 4;
    const auto c = cache.placedFor(g, 0x42, quad);
    EXPECT_NE(c.get(), a.get());
    EXPECT_EQ(cache.placedSize(), 2u);

    // Zero fingerprint: fresh analysis, nothing cached.
    const auto d = cache.placedFor(g, 0, base);
    EXPECT_NE(d.get(), a.get());
    EXPECT_EQ(cache.placedSize(), 2u);
}

// ---------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------

TEST(ProfileReport, RenderAndJsonCarryTheHeadlineNumbers)
{
    const DataflowGraph g = findKernel("fft").build(KernelParams{});
    const StaticProfile prof = analyzeGraph(g);

    const std::string text = renderProfile(prof);
    EXPECT_NE(text.find("fft"), std::string::npos);
    EXPECT_NE(text.find("crit path"), std::string::npos);

    Json j = profileToJson(prof);
    EXPECT_EQ(j["graph"].asString(), "fft");
    EXPECT_EQ(j["mix"]["total"].asNumber(),
              static_cast<double>(prof.mix.total));
    EXPECT_EQ(j["per_thread"].size(), prof.threads.size());
}

TEST(ProfileReport, LongGraphNamesRenderUnclipped)
{
    // renderProfile once used fixed 160-byte snprintf scratch buffers;
    // a name longer than that must survive intact now that the report
    // is stream-formatted.
    const std::string name(200, 'x');
    GraphBuilder b(name);
    b.beginThread(0);
    auto i0 = b.param(0);
    auto loop = b.beginLoop({i0});
    auto next = b.addi(loop.vars[0], 1);
    b.endLoop(loop, {next}, b.lti(next, 10));
    b.sink(loop.exits[0]);
    b.endThread();
    const DataflowGraph g = b.finish();

    const StaticProfile prof = analyzeGraph(g);
    const std::string text = renderProfile(prof);
    EXPECT_NE(text.find(name), std::string::npos);
    EXPECT_NE(text.find("crit path"), std::string::npos);
    // The cyclic thread line reports the unit-weight cycle ratio.
    EXPECT_NE(text.find("ratio"), std::string::npos);
}

} // namespace
} // namespace ws
