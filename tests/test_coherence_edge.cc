/**
 * @file
 * Coherence-protocol edge cases: silent evictions, crossing writebacks,
 * ownership migration chains, directory serialization under contention,
 * and message conservation on the mesh.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "memory/coherence.h"
#include "network/mesh.h"

namespace ws {
namespace {

/** N L1s + home, with per-cycle message routing (no mesh). */
class Harness
{
  public:
    explicit Harness(unsigned clusters, std::size_t l2_bytes = 1 << 20)
    {
        cfg_.clusters = static_cast<std::uint16_t>(clusters);
        cfg_.l2Bytes = l2_bytes;
        home_ = std::make_unique<HomeSystem>(cfg_);
        for (unsigned c = 0; c < clusters; ++c)
            l1s_.push_back(std::make_unique<L1Controller>(
                cfg_, static_cast<ClusterId>(c)));
    }

    void
    step()
    {
        for (auto &l1 : l1s_)
            l1->tick(now_);
        home_->tick(now_);
        for (auto &l1 : l1s_) {
            for (const CohMsg &msg : l1->outbox())
                home_->receive(msg, now_ + 1);
            l1->outbox().clear();
        }
        for (auto &[dst, msg] : home_->outbox())
            l1s_.at(dst)->receive(msg, now_ + 1);
        home_->outbox().clear();
        ++now_;
    }

    void
    completeAll(unsigned l1, std::size_t count, Cycle limit = 3000)
    {
        const Cycle start = now_;
        while (l1s_[l1]->drainDone().size() < count) {
            step();
            ASSERT_LT(now_ - start, limit) << "harness timed out";
        }
        l1s_[l1]->drainDone().clear();
    }

    MemTimingConfig cfg_;
    std::unique_ptr<HomeSystem> home_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    Cycle now_ = 0;
};

TEST(CoherenceEdge, SilentCleanEvictionThenInvIsAcked)
{
    Harness h(2);
    // c0 reads a line (E), then silently loses it to conflict misses.
    h.l1s_[0]->request(1, 0x10000, false, h.now_);
    h.completeAll(0, 1);
    const Addr stride = 64 * 128;   // Same set, different tags.
    std::uint64_t id = 10;
    for (int i = 1; i <= 4; ++i) {
        h.l1s_[0]->request(id++, 0x10000 + i * stride, false, h.now_);
        h.completeAll(0, 1);
    }
    EXPECT_EQ(h.l1s_[0]->probeLine(0x10000), kMesiInvalid);
    // c1 writes the line: the directory still thinks c0 owns it, sends
    // an Inv, and c0 must ack despite not holding the line.
    h.l1s_[1]->request(50, 0x10000, true, h.now_);
    h.completeAll(1, 1);
    EXPECT_EQ(h.l1s_[1]->probeLine(0x10000), kMesiModified);
}

TEST(CoherenceEdge, OwnershipMigratesThroughWriters)
{
    Harness h(4);
    // Each cluster writes the same line in turn: M migrates cleanly.
    for (unsigned c = 0; c < 4; ++c) {
        h.l1s_[c]->request(c + 1, 0x20000, true, h.now_);
        h.completeAll(c, 1);
        EXPECT_EQ(h.l1s_[c]->probeLine(0x20000), kMesiModified);
        for (unsigned o = 0; o < 4; ++o) {
            if (o != c)
                EXPECT_EQ(h.l1s_[o]->probeLine(0x20000), kMesiInvalid)
                    << "writer " << c << " observer " << o;
        }
    }
}

TEST(CoherenceEdge, ReadersAfterWriterAllShare)
{
    Harness h(4);
    h.l1s_[0]->request(1, 0x30000, true, h.now_);
    h.completeAll(0, 1);
    for (unsigned c = 1; c < 4; ++c) {
        h.l1s_[c]->request(c, 0x30000, false, h.now_);
        h.completeAll(c, 1);
    }
    // Writer downgraded once, then everyone shares.
    EXPECT_EQ(h.l1s_[0]->probeLine(0x30000), kMesiShared);
    for (unsigned c = 1; c < 4; ++c)
        EXPECT_EQ(h.l1s_[c]->probeLine(0x30000), kMesiShared);
    EXPECT_EQ(h.l1s_[0]->stats().downgradesReceived, 1u);
}

TEST(CoherenceEdge, ConcurrentWritersSerialize)
{
    Harness h(4);
    // All four clusters write the same line in the same cycle; the
    // directory must serialize and every request must complete.
    for (unsigned c = 0; c < 4; ++c)
        h.l1s_[c]->request(100 + c, 0x40000, true, 0);
    for (unsigned c = 0; c < 4; ++c)
        h.completeAll(c, 1, 6000);
    // Exactly one owner at the end.
    int owners = 0;
    for (unsigned c = 0; c < 4; ++c) {
        if (h.l1s_[c]->probeLine(0x40000) == kMesiModified)
            ++owners;
    }
    EXPECT_EQ(owners, 1);
    EXPECT_GE(h.home_->stats().queuedRequests, 1u);
}

TEST(CoherenceEdge, InterleavedLinesDontInterfere)
{
    Harness h(2);
    // Writes to many distinct lines from both clusters, interleaved.
    std::uint64_t id = 1;
    for (int i = 0; i < 8; ++i) {
        h.l1s_[0]->request(id++, 0x50000 + i * 128, true, h.now_);
        h.l1s_[1]->request(id++, 0x58000 + i * 128, true, h.now_);
    }
    Cycle deadline = h.now_ + 4000;
    while ((h.l1s_[0]->drainDone().size() < 8 ||
            h.l1s_[1]->drainDone().size() < 8) &&
           h.now_ < deadline) {
        h.step();
    }
    EXPECT_EQ(h.l1s_[0]->drainDone().size(), 8u);
    EXPECT_EQ(h.l1s_[1]->drainDone().size(), 8u);
}

TEST(CoherenceEdge, WritebackRefetchRoundTrip)
{
    Harness h(1);
    // Dirty a line, evict it via conflicts, then re-read: the refetch
    // must come back (timing path through PutM + L2).
    h.l1s_[0]->request(1, 0x60000, true, h.now_);
    h.completeAll(0, 1);
    const Addr stride = 64 * 128;
    std::uint64_t id = 10;
    for (int i = 1; i <= 4; ++i) {
        h.l1s_[0]->request(id++, 0x60000 + i * stride, true, h.now_);
        h.completeAll(0, 1);
    }
    EXPECT_GE(h.l1s_[0]->stats().writebacks, 1u);
    h.l1s_[0]->request(99, 0x60000, false, h.now_);
    h.completeAll(0, 1);
    EXPECT_NE(h.l1s_[0]->probeLine(0x60000), kMesiInvalid);
}

TEST(CoherenceEdge, HomeBankInterleavesByLine)
{
    MemTimingConfig cfg;
    cfg.clusters = 4;
    HomeSystem home(cfg);
    std::set<ClusterId> banks;
    for (Addr line = 0; line < 16 * 128; line += 128)
        banks.insert(home.homeOf(line));
    EXPECT_EQ(banks.size(), 4u);
    // Same line → same bank, always.
    EXPECT_EQ(home.homeOf(0x1000), home.homeOf(0x1000));
}

TEST(MeshConservation, EveryInjectedMessageDeliversExactlyOnce)
{
    TrafficStats traffic;
    MeshConfig cfg;
    cfg.clusters = 16;
    MeshNetwork mesh(cfg, &traffic);
    Rng rng(99);

    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t tag = 0;
    std::set<std::uint64_t> seen;
    for (Cycle now = 0; now < 3000; ++now) {
        if (now < 2000) {
            for (int k = 0; k < 4; ++k) {
                NetMessage m;
                m.src = static_cast<ClusterId>(rng.range(16));
                m.dst = static_cast<ClusterId>(rng.range(16));
                OperandMsg op;
                op.token.value = static_cast<Value>(tag);
                m.payload = op;
                if (mesh.inject(m, now)) {
                    ++injected;
                    ++tag;
                }
            }
        }
        mesh.tick(now);
        for (ClusterId c = 0; c < 16; ++c) {
            for (NetMessage &m : mesh.delivered(c)) {
                EXPECT_EQ(m.dst, c);
                const auto v = static_cast<std::uint64_t>(
                    std::get<OperandMsg>(m.payload).token.value);
                EXPECT_TRUE(seen.insert(v).second)
                    << "duplicate delivery of " << v;
                ++delivered;
            }
            mesh.delivered(c).clear();
        }
    }
    EXPECT_EQ(delivered, injected);
    EXPECT_TRUE(mesh.idle());
}

} // namespace
} // namespace ws
