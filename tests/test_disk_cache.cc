/**
 * @file
 * Tests for the persistent simulation store: exact SimResult JSON
 * round-trips (sim_io), the on-disk record store (DiskSimCache —
 * atomic writes, forgiving reads), the two-tier SimCache hierarchy,
 * and the end-to-end contract that a second engine/process sharing
 * one --cache-dir replays byte-identical results without simulating.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_io.h"
#include "driver/disk_cache.h"
#include "driver/sim_cache.h"
#include "driver/sweep_engine.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty store directory unique to @p name. */
std::string
storeDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "ws_store_" + name;
    fs::remove_all(dir);
    return dir;
}

/** One real simulation: a small kernel at a short budget, so the
 *  SimResult carries a fully-populated StatReport. */
SimResult
simulateKernel(const std::string &name, int threads, Cycle budget)
{
    KernelParams params;
    params.threads = static_cast<std::uint16_t>(threads);
    const DataflowGraph g = findKernel(name).build(params);
    SimOptions opts;
    opts.maxCycles = budget;
    return runSimulation(g, ProcessorConfig::baseline(), opts);
}

SimJob
kernelJob(const std::string &name, int threads, Cycle budget)
{
    KernelParams params;
    params.threads = static_cast<std::uint16_t>(threads);
    const Kernel &k = findKernel(name);
    SimJob job;
    job.graph =
        std::make_shared<const DataflowGraph>(k.build(params));
    job.cfg = ProcessorConfig::baseline();
    job.maxCycles = budget;
    job.graphFp = kernelFingerprint(k, params);
    return job;
}

// ---------------------------------------------------------------------
// sim_io: exact serialization
// ---------------------------------------------------------------------

TEST(SimIo, JsonRoundTripIsExact)
{
    const SimResult fresh = simulateKernel("gzip", 1, 40'000);
    ASSERT_GT(fresh.report.entries().size(), 0u);

    // Through the same path the store uses: dump to text, re-parse.
    bool ok = false;
    const Json j = Json::parse(simResultToJson(fresh).dump(), &ok);
    ASSERT_TRUE(ok);
    SimResult back;
    ASSERT_TRUE(simResultFromJson(j, &back));
    EXPECT_TRUE(simResultsEqual(fresh, back));
    // The printed statistics — what the bench tables are made of —
    // must match byte for byte.
    EXPECT_EQ(fresh.report.toString(), back.report.toString());
}

TEST(SimIo, MissingOrMistypedFieldsReject)
{
    const SimResult fresh = simulateKernel("gzip", 1, 20'000);
    SimResult out;

    Json no_version = simResultToJson(fresh);
    no_version["version"] = Json();  // null: wrong type.
    EXPECT_FALSE(simResultFromJson(no_version, &out));

    Json wrong_version = simResultToJson(fresh);
    wrong_version["version"] = 999;
    EXPECT_FALSE(simResultFromJson(wrong_version, &out));

    Json bad_cycles = simResultToJson(fresh);
    bad_cycles["cycles"] = "not-a-number";
    EXPECT_FALSE(simResultFromJson(bad_cycles, &out));

    EXPECT_FALSE(simResultFromJson(Json(), &out));
    EXPECT_FALSE(simResultFromJson(Json(3.5), &out));
}

// ---------------------------------------------------------------------
// DiskSimCache
// ---------------------------------------------------------------------

TEST(DiskSimCache, InsertLookupRoundTrip)
{
    DiskSimCache store(storeDir("roundtrip"));
    const SimKey key{0x1111, 0x2222, 40'000};
    const SimResult fresh = simulateKernel("fft", 2, 40'000);

    SimResult out;
    EXPECT_FALSE(store.lookup(key, &out));
    EXPECT_EQ(store.stats().misses, 1u);

    store.insert(key, fresh);
    EXPECT_EQ(store.stats().writes, 1u);
    EXPECT_EQ(store.stats().writeErrors, 0u);

    ASSERT_TRUE(store.lookup(key, &out));
    EXPECT_TRUE(simResultsEqual(fresh, out));
    EXPECT_EQ(store.stats().hits, 1u);

    // A second store instance on the same directory (a later process)
    // sees the same record.
    DiskSimCache reopened(store.dir());
    SimResult again;
    ASSERT_TRUE(reopened.lookup(key, &again));
    EXPECT_TRUE(simResultsEqual(fresh, again));
}

TEST(DiskSimCache, AnyKeyComponentChangeMisses)
{
    DiskSimCache store(storeDir("keymiss"));
    const SimKey key{7, 8, 9};
    store.insert(key, SimResult{});
    SimResult out;
    EXPECT_TRUE(store.lookup(key, &out));
    EXPECT_FALSE(store.lookup({1, 8, 9}, &out));
    EXPECT_FALSE(store.lookup({7, 1, 9}, &out));
    EXPECT_FALSE(store.lookup({7, 8, 1}, &out));
}

TEST(DiskSimCache, CorruptRecordIsACountedMissNotACrash)
{
    DiskSimCache store(storeDir("corrupt"));
    const SimKey key{0xAAAA, 0xBBBB, 10'000};
    store.insert(key, simulateKernel("rawdaudio", 1, 10'000));

    // Stomp the record with garbage.
    {
        std::ofstream f(store.recordPath(key), std::ios::trunc);
        f << "{\"this is\": not json at all";
    }
    SimResult out;
    EXPECT_FALSE(store.lookup(key, &out));
    EXPECT_EQ(store.stats().rejected, 1u);

    // Overwriting with a fresh insert repairs it.
    const SimResult fresh = simulateKernel("rawdaudio", 1, 10'000);
    store.insert(key, fresh);
    ASSERT_TRUE(store.lookup(key, &out));
    EXPECT_TRUE(simResultsEqual(fresh, out));
}

TEST(DiskSimCache, TruncatedRecordIsACountedMissNotACrash)
{
    DiskSimCache store(storeDir("truncated"));
    const SimKey key{0xCCCC, 0xDDDD, 10'000};
    store.insert(key, simulateKernel("rawdaudio", 1, 10'000));

    const std::string path = store.recordPath(key);
    std::string text;
    {
        std::ifstream f(path);
        std::getline(f, text, '\0');
    }
    ASSERT_GT(text.size(), 40u);
    {
        // A torn write: the first half of a valid record.
        std::ofstream f(path, std::ios::trunc);
        f << text.substr(0, text.size() / 2);
    }
    SimResult out;
    EXPECT_FALSE(store.lookup(key, &out));
    EXPECT_EQ(store.stats().rejected, 1u);
}

TEST(DiskSimCache, RecordUnderTheWrongKeyIsRejected)
{
    // A record that parses fine but embeds a different key (e.g. a
    // hand-copied file) must not replay as this key's result.
    DiskSimCache store(storeDir("wrongkey"));
    const SimKey a{0x1234, 0x5678, 10'000};
    const SimKey b{0x4321, 0x8765, 10'000};
    store.insert(a, simulateKernel("rawdaudio", 1, 10'000));
    fs::create_directories(fs::path(store.recordPath(b)).parent_path());
    fs::copy_file(store.recordPath(a), store.recordPath(b));

    SimResult out;
    EXPECT_FALSE(store.lookup(b, &out));
    EXPECT_EQ(store.stats().rejected, 1u);
    EXPECT_TRUE(store.lookup(a, &out));  // The original is untouched.
}

// ---------------------------------------------------------------------
// SimCache: the two-tier hierarchy
// ---------------------------------------------------------------------

TEST(SimCacheTwoTier, DiskHitsPromoteIntoMemory)
{
    const std::string dir = storeDir("promote");
    const SimKey key{0x9999, 0x8888, 20'000};
    const SimResult fresh = simulateKernel("mcf", 1, 20'000);
    {
        SimCache writer;
        writer.attachDisk(dir);
        writer.insert(key, fresh);
        EXPECT_EQ(writer.stats().diskWrites, 1u);
    }

    // A later process: memory tier empty, record on disk.
    SimCache reader;
    reader.attachDisk(dir);
    EXPECT_EQ(reader.probe(key), SimCache::Tier::kDisk);

    SimResult out;
    ASSERT_TRUE(reader.lookup(key, &out));
    EXPECT_TRUE(simResultsEqual(fresh, out));
    EXPECT_EQ(reader.stats().diskHits, 1u);
    EXPECT_EQ(reader.stats().memoryHits, 0u);

    // Promoted: the second lookup is served from memory.
    EXPECT_EQ(reader.probe(key), SimCache::Tier::kMemory);
    ASSERT_TRUE(reader.lookup(key, &out));
    EXPECT_EQ(reader.stats().memoryHits, 1u);
    EXPECT_EQ(reader.stats().diskHits, 1u);
}

TEST(SimCacheTwoTier, ClearDropsMemoryButNotDisk)
{
    SimCache cache;
    cache.attachDisk(storeDir("clear"));
    const SimKey key{1, 2, 3};
    cache.insert(key, SimResult{});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.probe(key), SimCache::Tier::kDisk);
    SimResult out;
    EXPECT_TRUE(cache.lookup(key, &out));
}

TEST(SimCacheTwoTier, MemoryOnlyProbeReportsNone)
{
    SimCache cache;
    EXPECT_FALSE(cache.hasDisk());
    EXPECT_EQ(cache.probe({1, 2, 3}), SimCache::Tier::kNone);
}

// ---------------------------------------------------------------------
// SweepEngine sharing one store across engines (≈ processes)
// ---------------------------------------------------------------------

SweepEngine::Options
storeOpts(unsigned jobs, const std::string &dir)
{
    SweepEngine::Options opts;
    opts.jobs = jobs;
    opts.progress = false;
    opts.cacheDir = dir;
    return opts;
}

TEST(SweepEngineStore, SecondEngineReplaysEverythingFromDisk)
{
    const std::string dir = storeDir("two_engines");
    std::vector<SimJob> jobs;
    jobs.push_back(kernelJob("gzip", 1, 40'000));
    jobs.push_back(kernelJob("djpeg", 1, 40'000));
    jobs.push_back(kernelJob("fft", 2, 40'000));

    // Engine A (process one): simulates everything, populates the
    // store. Engine B (process two — its own empty memory tier):
    // must replay everything from disk without simulating.
    SweepEngine a(storeOpts(2, dir));
    const std::vector<SimResult> cold = a.run(jobs);
    EXPECT_EQ(a.stats().simulated, jobs.size());
    EXPECT_EQ(a.cache().stats().diskWrites, jobs.size());

    SweepEngine b(storeOpts(2, dir));
    const std::vector<SimResult> warm = b.run(jobs);
    EXPECT_EQ(b.stats().simulated, 0u);
    EXPECT_EQ(b.stats().cacheHits, jobs.size());
    EXPECT_EQ(b.cache().stats().diskHits, jobs.size());

    // Byte-identical, through the same serialization the tables use.
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_TRUE(simResultsEqual(cold[i], warm[i])) << "job " << i;
        EXPECT_EQ(simResultToJson(cold[i]).dump(),
                  simResultToJson(warm[i]).dump())
            << "job " << i;
        EXPECT_EQ(cold[i].report.toString(), warm[i].report.toString())
            << "job " << i;
    }
}

TEST(SweepEngineStore, ReplayEqualsFreshForEveryKernelAndThreadCount)
{
    // The acceptance sweep: every kernel in the registry at 1/2/4
    // threads (thread counts beyond 1 only where the kernel honors
    // them) must replay from disk field-for-field equal to the fresh
    // run. Short budgets keep this affordable; the *fidelity* of the
    // round-trip does not depend on the budget.
    const std::string dir = storeDir("all_kernels");
    const Cycle budget = 15'000;
    std::vector<SimJob> jobs;
    for (const Kernel &k : kernelRegistry()) {
        for (int threads : {1, 2, 4}) {
            if (threads > 1 && !k.multithreaded)
                continue;
            jobs.push_back(kernelJob(k.name, threads, budget));
        }
    }
    ASSERT_GE(jobs.size(), 15u);

    SweepEngine fresh_engine(storeOpts(4, dir));
    const std::vector<SimResult> fresh = fresh_engine.run(jobs);
    EXPECT_EQ(fresh_engine.stats().simulated, jobs.size());

    SweepEngine replay_engine(storeOpts(4, dir));
    const std::vector<SimResult> replayed = replay_engine.run(jobs);
    EXPECT_EQ(replay_engine.stats().simulated, 0u);
    EXPECT_EQ(replay_engine.cache().stats().diskHits, jobs.size());
    EXPECT_EQ(replay_engine.cache().stats().diskRejected, 0u);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(simResultsEqual(fresh[i], replayed[i]))
            << "job " << i;
        EXPECT_EQ(fresh[i].report.toString(),
                  replayed[i].report.toString())
            << "job " << i;
    }
}

} // namespace
} // namespace ws
