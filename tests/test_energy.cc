/**
 * @file
 * Tests for the activity-based energy model (extension): accounting
 * consistency, capacity scaling, and integration with real simulation
 * reports.
 */

#include <gtest/gtest.h>

#include "area/design_space.h"
#include "area/energy_model.h"
#include "core/simulator.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

StatReport
reportFor(const char *kernel, const DesignPoint &d, int threads = 1)
{
    KernelParams p;
    p.threads = static_cast<std::uint16_t>(threads);
    DataflowGraph g = findKernel(kernel).build(p);
    ProcessorConfig cfg = toProcessorConfig(d);
    SimOptions opts;
    opts.maxCycles = 2'000'000;
    return runSimulation(g, cfg, opts).report;
}

const DesignPoint kBase{1, 4, 8, 128, 128, 32, 1};

TEST(Energy, TotalEqualsSumOfItems)
{
    StatReport r = reportFor("rawdaudio", kBase);
    EnergyBreakdown e = EnergyModel::estimate(r, kBase);
    double sum = 0.0;
    for (const EnergyItem &item : e.items)
        sum += item.picojoules;
    EXPECT_NEAR(e.totalPj, sum, 1e-6);
    EXPECT_GT(e.totalPj, 0.0);
}

TEST(Energy, SramAccessScalesWithCapacity)
{
    EXPECT_LT(EnergyModel::matchingAccess(16),
              EnergyModel::matchingAccess(128));
    EXPECT_LT(EnergyModel::matchingAccess(128),
              EnergyModel::matchingAccess(256));
    // Square-root scaling: quadrupling entries doubles the variable part.
    const double base = EnergyModel::kSramBase;
    EXPECT_NEAR(EnergyModel::matchingAccess(256) - base,
                2.0 * (EnergyModel::matchingAccess(64) - base), 1e-9);
}

TEST(Energy, DerivedMetricsAreConsistent)
{
    StatReport r = reportFor("djpeg", kBase);
    EnergyBreakdown e = EnergyModel::estimate(r, kBase);
    const double cycles = r.get("sim.cycles");
    const double seconds = cycles * EnergyModel::kClockSeconds;
    EXPECT_NEAR(e.watts, e.totalPj * 1e-12 / seconds, 1e-9);
    EXPECT_NEAR(e.edp, e.totalPj * 1e-12 * seconds, 1e-18);
    EXPECT_NEAR(e.epiPj, e.totalPj / r.get("sim.useful_executed"), 1e-6);
}

TEST(Energy, BiggerDieLeaksMore)
{
    // Same workload, same cycle counts to first order; the larger
    // machine's leakage item must be bigger.
    StatReport r_small = reportFor("rawdaudio", kBase);
    const DesignPoint big{4, 4, 8, 128, 128, 32, 4};
    StatReport r_big = reportFor("rawdaudio", big);
    auto leakage = [](const EnergyBreakdown &e) {
        for (const EnergyItem &item : e.items) {
            if (item.name == "leakage")
                return item.picojoules;
        }
        return 0.0;
    };
    const double small_leak_per_cycle =
        leakage(EnergyModel::estimate(r_small, kBase)) /
        r_small.get("sim.cycles");
    const double big_leak_per_cycle =
        leakage(EnergyModel::estimate(r_big, big)) /
        r_big.get("sim.cycles");
    EXPECT_GT(big_leak_per_cycle, small_leak_per_cycle * 3);
}

TEST(Energy, GridTrafficCostsMoreThanLocal)
{
    // The same kernel on 4 clusters with random placement (heavy grid
    // traffic) must spend more network energy per message than with
    // locality-aware placement.
    KernelParams p;
    p.threads = 8;
    const DesignPoint d{4, 4, 8, 128, 128, 32, 2};
    auto net_energy = [&](PlacementPolicy policy) {
        DataflowGraph g = buildFft(p);
        ProcessorConfig cfg = toProcessorConfig(d);
        cfg.placement = policy;
        SimOptions opts;
        opts.maxCycles = 2'000'000;
        StatReport r = runSimulation(g, cfg, opts).report;
        EnergyBreakdown e = EnergyModel::estimate(r, d);
        double net = 0.0;
        for (const EnergyItem &item : e.items) {
            if (item.name.rfind("net.", 0) == 0)
                net += item.picojoules;
        }
        return net / r.get("traffic.total");
    };
    EXPECT_GT(net_energy(PlacementPolicy::kRandom),
              2.0 * net_energy(PlacementPolicy::kDepthFirst));
}

TEST(Energy, DeterministicAcrossRuns)
{
    StatReport r1 = reportFor("lu", kBase, 4);
    StatReport r2 = reportFor("lu", kBase, 4);
    EXPECT_DOUBLE_EQ(EnergyModel::estimate(r1, kBase).totalPj,
                     EnergyModel::estimate(r2, kBase).totalPj);
}

} // namespace
} // namespace ws
