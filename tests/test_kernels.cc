/**
 * @file
 * Workload-suite tests: every kernel builds a valid graph, runs to
 * completion on the baseline machine, and has the structural properties
 * (size, instruction mix, thread count) its Spec/Media/Splash namesake
 * demands.
 */

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

KernelParams
smallParams()
{
    KernelParams p;
    p.scale = 1;
    p.threads = 2;
    return p;
}

class KernelSuite : public testing::TestWithParam<Kernel>
{};

TEST_P(KernelSuite, BuildsValidGraph)
{
    const Kernel &k = GetParam();
    DataflowGraph g = k.build(smallParams());
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(g.size(), 50u);
    EXPECT_GT(g.expectedSinkTokens(), 0u);
    EXPECT_EQ(g.numThreads(), k.multithreaded ? 2 : 1);
}

TEST_P(KernelSuite, RunsToCompletionOnBaseline)
{
    const Kernel &k = GetParam();
    DataflowGraph g = k.build(smallParams());
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    SimOptions opts;
    opts.maxCycles = 3'000'000;
    SimResult res = runSimulation(g, cfg, opts);
    EXPECT_TRUE(res.completed) << k.name << " did not finish in "
                               << res.cycles << " cycles";
    EXPECT_GT(res.aipc, 0.0);
}

TEST_P(KernelSuite, DeterministicAcrossRuns)
{
    const Kernel &k = GetParam();
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    DataflowGraph g1 = k.build(smallParams());
    DataflowGraph g2 = k.build(smallParams());
    SimResult r1 = runSimulation(g1, cfg);
    SimResult r2 = runSimulation(g2, cfg);
    EXPECT_EQ(r1.cycles, r2.cycles) << k.name;
    EXPECT_EQ(r1.useful, r2.useful) << k.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSuite, testing::ValuesIn(kernelRegistry()),
    [](const testing::TestParamInfo<Kernel> &info) {
        return info.param.name;
    });

TEST(KernelStructure, SpecKernelsAreLarge)
{
    // Spec working sets must pressure a 2K-instruction machine while
    // mostly fitting a 4K one (the paper's capacity story).
    KernelParams p;
    for (const std::string &name : kernelsInSuite(Suite::kSpec)) {
        DataflowGraph g = findKernel(name).build(p);
        EXPECT_GT(g.size(), 500u) << name;
        EXPECT_LT(g.size(), 4096u) << name;
    }
}

TEST(KernelStructure, SplashThreadBodiesAreModest)
{
    // Per-thread bodies around 200-500 instructions make 16 threads fit
    // a 4K-capacity cluster and 64 threads need a 16K-capacity machine,
    // reproducing the thread-count jumps of Table 5.
    KernelParams p;
    p.threads = 4;
    for (const std::string &name : kernelsInSuite(Suite::kSplash)) {
        DataflowGraph g = findKernel(name).build(p);
        const std::size_t per_thread = g.size() / 4;
        EXPECT_GT(per_thread, 100u) << name;
        EXPECT_LT(per_thread, 700u) << name;
    }
}

TEST(KernelStructure, FpShareMatchesSuiteCharacter)
{
    KernelParams p;
    p.threads = 1;
    StatReport gzip = findKernel("gzip").build(p).staticStats();
    StatReport ammp = findKernel("ammp").build(p).staticStats();
    EXPECT_EQ(gzip.sumPrefix("static.fp_ops"), 0.0);
    EXPECT_GT(ammp.get("static.fp_ops"), 100.0);
}

TEST(KernelStructure, ThreadScalingGrowsStaticSize)
{
    KernelParams p4;
    p4.threads = 4;
    KernelParams p8;
    p8.threads = 8;
    DataflowGraph g4 = buildFft(p4);
    DataflowGraph g8 = buildFft(p8);
    EXPECT_NEAR(static_cast<double>(g8.size()) / g4.size(), 2.0, 0.1);
}

} // namespace
} // namespace ws
