/**
 * @file
 * End-to-end smoke tests: small programs through the full machine.
 */

#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"

namespace ws {
namespace {

/** sum = 1 + 2 + ... + n, computed in a dataflow loop. */
DataflowGraph
sumGraph(Value n)
{
    GraphBuilder b("sum");
    b.beginThread(0);
    GraphBuilder::Node i0 = b.param(1);
    GraphBuilder::Node acc0 = b.param(0);
    GraphBuilder::Loop loop = b.beginLoop({i0, acc0});
    GraphBuilder::Node i = loop.vars[0];
    GraphBuilder::Node acc = loop.vars[1];
    GraphBuilder::Node acc_next = b.add(acc, i);
    GraphBuilder::Node i_next = b.addi(i, 1);
    GraphBuilder::Node cond = b.lti(i_next, n + 1);
    b.endLoop(loop, {i_next, acc_next}, cond);
    b.sink(loop.exits[1], 1);
    b.endThread();
    return b.finish();
}

TEST(Smoke, StraightLineCompute)
{
    GraphBuilder b("straight");
    b.beginThread(0);
    auto x = b.param(21);
    auto y = b.muli(x, 2);
    b.sink(y, 1);
    b.endThread();
    DataflowGraph g = b.finish();

    SimResult res = runSimulation(g, ProcessorConfig::baseline());
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.useful, 0u);
    EXPECT_LT(res.cycles, 200u);
}

TEST(Smoke, LoopSum)
{
    DataflowGraph g = sumGraph(10);
    Processor proc(g, ProcessorConfig::baseline());
    EXPECT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.sinkCount(), 1u);
}

TEST(Smoke, LoadStoreRoundTrip)
{
    GraphBuilder b("ldst");
    b.beginThread(0);
    const Addr a = b.alloc(8);
    const Addr out = b.alloc(8);
    b.initMem(a, 17);
    auto base = b.param(static_cast<Value>(a));
    auto v = b.load(base);
    auto doubled = b.muli(v, 2);
    auto outaddr = b.param(static_cast<Value>(out));
    b.store(outaddr, doubled);
    auto check = b.load(outaddr);  // Reads the stored value in order.
    b.sink(check, 1);
    b.endThread();
    DataflowGraph g = b.finish();

    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.memory().read(out), 34);
}

TEST(Smoke, LoopWithMemory)
{
    // for i in 0..n: mem[base + 8i] = i*i; then sink(1).
    const Value n = 8;
    GraphBuilder b("sq");
    b.beginThread(0);
    const Addr base = b.alloc(8 * static_cast<std::size_t>(n));
    auto i0 = b.param(0);
    GraphBuilder::Loop loop = b.beginLoop({i0});
    auto i = loop.vars[0];
    auto sq = b.mul(i, i);
    auto addr = b.addi(b.shli(i, 3), static_cast<Value>(base));
    b.store(addr, sq);
    auto i_next = b.addi(i, 1);
    auto cond = b.lti(i_next, n);
    b.endLoop(loop, {i_next}, cond);
    b.sink(loop.exits[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(200000));
    for (Value i = 0; i < n; ++i) {
        EXPECT_EQ(proc.memory().read(base + 8 * static_cast<Addr>(i)),
                  i * i)
            << "i=" << i;
    }
}

TEST(Smoke, MultiCluster)
{
    DataflowGraph g = sumGraph(20);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = 4;
    cfg.memory.l2Bytes = 1 << 20;
    Processor proc(g, cfg);
    EXPECT_TRUE(proc.run(200000));
}

} // namespace
} // namespace ws
