/**
 * @file
 * Unit tests for the ISA layer: opcode metadata, evaluation semantics,
 * tags, graph validation, and the reference interpreter.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/exec.h"
#include "isa/graph.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"
#include "isa/opcode.h"
#include "isa/tag.h"
#include "isa/token.h"

namespace ws {
namespace {

TEST(Opcode, EveryOpcodeHasInfo)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::kNumOpcodes); ++i) {
        const OpcodeInfo &info = opcodeInfo(static_cast<Opcode>(i));
        EXPECT_FALSE(info.name.empty());
        EXPECT_GE(info.arity, 1);
        EXPECT_LE(info.arity, 3);
        EXPECT_GE(info.latency, 1);
    }
}

TEST(Opcode, MemoryFlagsConsistent)
{
    EXPECT_TRUE(isMemoryOp(Opcode::kLoad));
    EXPECT_TRUE(isMemoryOp(Opcode::kStoreAddr));
    EXPECT_TRUE(isMemoryOp(Opcode::kStoreData));
    EXPECT_TRUE(isMemoryOp(Opcode::kMemNop));
    EXPECT_FALSE(isMemoryOp(Opcode::kAdd));
    EXPECT_FALSE(isMemoryOp(Opcode::kSteer));
}

TEST(Opcode, OverheadOpsAreNotUseful)
{
    EXPECT_FALSE(opcodeInfo(Opcode::kSteer).useful);
    EXPECT_FALSE(opcodeInfo(Opcode::kWaveAdvance).useful);
    EXPECT_FALSE(opcodeInfo(Opcode::kMemNop).useful);
    EXPECT_FALSE(opcodeInfo(Opcode::kStoreData).useful);
    EXPECT_FALSE(opcodeInfo(Opcode::kSink).useful);
    EXPECT_TRUE(opcodeInfo(Opcode::kAdd).useful);
    EXPECT_TRUE(opcodeInfo(Opcode::kLoad).useful);
    EXPECT_TRUE(opcodeInfo(Opcode::kStoreAddr).useful);
}

struct EvalCase
{
    Opcode op;
    Value imm;
    Operands in;
    Value expect;
};

class Evaluate : public testing::TestWithParam<EvalCase>
{};

TEST_P(Evaluate, ProducesExpectedValue)
{
    const EvalCase &c = GetParam();
    EXPECT_EQ(evaluate(c.op, c.imm, c.in), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    IntOps, Evaluate,
    testing::Values(
        EvalCase{Opcode::kAdd, 0, {3, 4, 0}, 7},
        EvalCase{Opcode::kSub, 0, {3, 4, 0}, -1},
        EvalCase{Opcode::kMul, 0, {-3, 4, 0}, -12},
        EvalCase{Opcode::kDiv, 0, {12, 4, 0}, 3},
        EvalCase{Opcode::kDiv, 0, {12, 0, 0}, 0},   // No trap.
        EvalCase{Opcode::kRem, 0, {13, 4, 0}, 1},
        EvalCase{Opcode::kRem, 0, {13, 0, 0}, 0},
        EvalCase{Opcode::kAnd, 0, {0b1100, 0b1010, 0}, 0b1000},
        EvalCase{Opcode::kOr, 0, {0b1100, 0b1010, 0}, 0b1110},
        EvalCase{Opcode::kXor, 0, {0b1100, 0b1010, 0}, 0b0110},
        EvalCase{Opcode::kShl, 0, {1, 4, 0}, 16},
        EvalCase{Opcode::kShr, 0, {16, 4, 0}, 1},
        EvalCase{Opcode::kShl, 0, {1, 64, 0}, 1},   // Shift masks to 0.
        EvalCase{Opcode::kLt, 0, {1, 2, 0}, 1},
        EvalCase{Opcode::kLt, 0, {2, 2, 0}, 0},
        EvalCase{Opcode::kLe, 0, {2, 2, 0}, 1},
        EvalCase{Opcode::kEq, 0, {5, 5, 0}, 1},
        EvalCase{Opcode::kNe, 0, {5, 5, 0}, 0},
        EvalCase{Opcode::kMin, 0, {-2, 7, 0}, -2},
        EvalCase{Opcode::kMax, 0, {-2, 7, 0}, 7},
        EvalCase{Opcode::kNeg, 0, {5, 0, 0}, -5},
        EvalCase{Opcode::kNot, 0, {0, 0, 0}, -1}));

INSTANTIATE_TEST_SUITE_P(
    ImmediateOps, Evaluate,
    testing::Values(
        EvalCase{Opcode::kAddi, 10, {3, 0, 0}, 13},
        EvalCase{Opcode::kSubi, 10, {3, 0, 0}, -7},
        EvalCase{Opcode::kMuli, -2, {6, 0, 0}, -12},
        EvalCase{Opcode::kDivi, 3, {10, 0, 0}, 3},
        EvalCase{Opcode::kDivi, 0, {10, 0, 0}, 0},
        EvalCase{Opcode::kRemi, 3, {10, 0, 0}, 1},
        EvalCase{Opcode::kAndi, 0xF, {0x1234, 0, 0}, 4},
        EvalCase{Opcode::kShli, 3, {2, 0, 0}, 16},
        EvalCase{Opcode::kShri, 3, {16, 0, 0}, 2},
        EvalCase{Opcode::kLti, 5, {4, 0, 0}, 1},
        EvalCase{Opcode::kLei, 5, {5, 0, 0}, 1},
        EvalCase{Opcode::kEqi, 5, {5, 0, 0}, 1},
        EvalCase{Opcode::kNei, 5, {5, 0, 0}, 0}));

INSTANTIATE_TEST_SUITE_P(
    ControlAndMem, Evaluate,
    testing::Values(
        EvalCase{Opcode::kConst, 99, {1, 0, 0}, 99},
        EvalCase{Opcode::kMov, 0, {42, 0, 0}, 42},
        EvalCase{Opcode::kSteer, 0, {42, 1, 0}, 42},
        EvalCase{Opcode::kWaveAdvance, 0, {42, 0, 0}, 42},
        EvalCase{Opcode::kSelect, 0, {1, 10, 20}, 10},
        EvalCase{Opcode::kSelect, 0, {0, 10, 20}, 20},
        EvalCase{Opcode::kLoad, 16, {100, 0, 0}, 116},
        EvalCase{Opcode::kStoreAddr, 8, {100, 0, 0}, 108},
        EvalCase{Opcode::kStoreData, 0, {7, 0, 0}, 7}));

TEST(EvaluateFp, Arithmetic)
{
    const Value a = fromDouble(1.5);
    const Value b = fromDouble(2.0);
    EXPECT_DOUBLE_EQ(asDouble(evaluate(Opcode::kFadd, 0, {a, b, 0})), 3.5);
    EXPECT_DOUBLE_EQ(asDouble(evaluate(Opcode::kFsub, 0, {a, b, 0})),
                     -0.5);
    EXPECT_DOUBLE_EQ(asDouble(evaluate(Opcode::kFmul, 0, {a, b, 0})), 3.0);
    EXPECT_DOUBLE_EQ(asDouble(evaluate(Opcode::kFdiv, 0, {b, a, 0})),
                     2.0 / 1.5);
    EXPECT_DOUBLE_EQ(
        asDouble(evaluate(Opcode::kFdiv, 0, {a, fromDouble(0.0), 0})),
        0.0);
    EXPECT_EQ(evaluate(Opcode::kFlt, 0, {a, b, 0}), 1);
    EXPECT_EQ(evaluate(Opcode::kFeq, 0, {a, a, 0}), 1);
    EXPECT_DOUBLE_EQ(asDouble(evaluate(Opcode::kItoF, 0, {7, 0, 0})), 7.0);
    EXPECT_EQ(evaluate(Opcode::kFtoI, 0, {fromDouble(7.9), 0, 0}), 7);
}

TEST(Tag, OrderingAndPacking)
{
    const Tag a{1, 5};
    const Tag b{1, 6};
    const Tag c{2, 0};
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_EQ(a.nextWave(), b);
    EXPECT_NE(a.packed(), c.packed());
    EXPECT_NE(TagHash{}(a), TagHash{}(b));
}

// ---------------------------------------------------------------------
// Graph validation
// ---------------------------------------------------------------------

TEST(GraphValidate, DanglingTargetIsFatal)
{
    DataflowGraph g("bad");
    Instruction mov;
    mov.op = Opcode::kMov;
    mov.outs[0].push_back(PortRef{99, 0});
    g.addInstruction(mov);
    g.addInitialToken(Token{Tag{0, 0}, PortRef{0, 0}, 1});
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(GraphValidate, PortOutOfRangeIsFatal)
{
    DataflowGraph g("bad");
    Instruction mov;
    mov.op = Opcode::kMov;
    mov.outs[0].push_back(PortRef{1, 2});  // kMov arity is 1.
    g.addInstruction(mov);
    Instruction mov2;
    mov2.op = Opcode::kMov;
    g.addInstruction(mov2);
    g.addInitialToken(Token{Tag{0, 0}, PortRef{0, 0}, 1});
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(GraphValidate, StarvedInputIsFatal)
{
    DataflowGraph g("bad");
    Instruction add;
    add.op = Opcode::kAdd;
    g.addInstruction(add);
    g.addInitialToken(Token{Tag{0, 0}, PortRef{0, 0}, 1});
    // Port 1 has no producer.
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(GraphValidate, FalseSideOnNonSteerIsFatal)
{
    DataflowGraph g("bad");
    Instruction mov;
    mov.op = Opcode::kMov;
    g.addInstruction(mov);
    Instruction add;
    add.op = Opcode::kNop;
    add.outs[1].push_back(PortRef{0, 0});
    g.addInstruction(add);
    g.addInitialToken(Token{Tag{0, 0}, PortRef{0, 0}, 1});
    g.addInitialToken(Token{Tag{0, 0}, PortRef{1, 0}, 1});
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(GraphValidate, MissingMemAnnotationIsFatal)
{
    DataflowGraph g("bad");
    Instruction ld;
    ld.op = Opcode::kLoad;  // mem.valid left false.
    g.addInstruction(ld);
    g.addInitialToken(Token{Tag{0, 0}, PortRef{0, 0}, 1});
    EXPECT_THROW(g.validate(), FatalError);
}

TEST(GraphValidate, BrokenChainLinksAreFatal)
{
    DataflowGraph g("bad");
    Instruction nop1;
    nop1.op = Opcode::kMemNop;
    nop1.mem = MemOrder{kSeqNone, 0, 5, true};  // next should be 1.
    g.addInstruction(nop1);
    Instruction nop2;
    nop2.op = Opcode::kMemNop;
    nop2.mem = MemOrder{0, 1, kSeqNone, true};
    g.addInstruction(nop2);
    g.addInitialToken(Token{Tag{0, 0}, PortRef{0, 0}, 1});
    g.addInitialToken(Token{Tag{0, 0}, PortRef{1, 0}, 1});
    g.addMemRegion({0, 1});
    EXPECT_THROW(g.validate(), FatalError);
}

// ---------------------------------------------------------------------
// GraphBuilder invariants
// ---------------------------------------------------------------------

TEST(Builder, CrossRegionUseIsFatal)
{
    GraphBuilder b("bad");
    b.beginThread(0);
    auto x = b.param(1);
    auto loop = b.beginLoop({x});
    // x belongs to the pre-loop region; using it inside the body must
    // be rejected (its tokens would never match).
    EXPECT_THROW(b.add(loop.vars[0], x), FatalError);
}

TEST(Builder, EmitOutsideThreadIsFatal)
{
    GraphBuilder b("bad");
    EXPECT_THROW(b.param(1), FatalError);
}

TEST(Builder, LoopVarCountMismatchIsFatal)
{
    GraphBuilder b("bad");
    b.beginThread(0);
    auto x = b.param(1);
    auto loop = b.beginLoop({x});
    auto cond = b.lti(loop.vars[0], 10);
    EXPECT_THROW(b.endLoop(loop, {}, cond), FatalError);
}

TEST(Builder, ManagedOpcodesRejected)
{
    GraphBuilder b("bad");
    b.beginThread(0);
    auto x = b.param(1);
    EXPECT_THROW(b.emit(Opcode::kWaveAdvance, {x}), FatalError);
    EXPECT_THROW(b.emit(Opcode::kSteer, {x, x}), FatalError);
}

TEST(Builder, EveryRegionGetsAMemChain)
{
    // A compute-only loop must still produce one MEM_NOP per region so
    // the store buffer sees every wave.
    GraphBuilder b("g");
    b.beginThread(0);
    auto x = b.param(1);
    auto loop = b.beginLoop({x});
    auto nxt = b.addi(loop.vars[0], 1);
    b.endLoop(loop, {nxt}, b.lti(nxt, 5));
    b.sink(loop.exits[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();
    // Pre-region, body, post-region → three chains.
    EXPECT_EQ(g.memRegions().size(), 3u);
    for (const auto &chain : g.memRegions())
        EXPECT_FALSE(chain.empty());
}

TEST(Builder, StoreEmitsDecoupledPair)
{
    GraphBuilder b("g");
    b.beginThread(0);
    const Addr a = b.alloc(8);
    auto addr = b.param(static_cast<Value>(a));
    auto v = b.param(7);
    b.store(addr, v);
    b.sink(b.load(addr), 1);
    b.endThread();
    DataflowGraph g = b.finish();

    int store_addr = 0;
    int store_data = 0;
    for (const auto &inst : g.instructions()) {
        if (inst.op == Opcode::kStoreAddr)
            ++store_addr;
        if (inst.op == Opcode::kStoreData)
            ++store_data;
    }
    EXPECT_EQ(store_addr, 1);
    EXPECT_EQ(store_data, 1);
}

TEST(Builder, AllocIsAligned)
{
    GraphBuilder b("g", 1);
    const Addr a = b.alloc(5);
    const Addr c = b.alloc(8);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(c % 8, 0u);
    EXPECT_GE(c, a + 8);
}

// ---------------------------------------------------------------------
// Reference interpreter
// ---------------------------------------------------------------------

TEST(Interp, LoopSum)
{
    GraphBuilder b("sum");
    b.beginThread(0);
    auto i0 = b.param(1);
    auto acc0 = b.param(0);
    auto loop = b.beginLoop({i0, acc0});
    auto acc = b.add(loop.vars[1], loop.vars[0]);
    auto i_next = b.addi(loop.vars[0], 1);
    b.endLoop(loop, {i_next, acc}, b.lti(i_next, 11));
    b.sink(loop.exits[1], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult r = interpret(g);
    EXPECT_TRUE(r.completed);
    ASSERT_EQ(r.sinkValues.size(), 1u);
    EXPECT_EQ(r.sinkValues[0], 55);
}

TEST(Interp, StoreThenLoadSeesValue)
{
    GraphBuilder b("st");
    b.beginThread(0);
    const Addr a = b.alloc(8);
    auto addr = b.param(static_cast<Value>(a));
    auto v = b.param(123);
    b.store(addr, v);
    b.sink(b.load(addr), 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult r = interpret(g);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.sinkValues[0], 123);
    EXPECT_EQ(r.memory.at(a), 123);
}

TEST(Interp, NestedLoops)
{
    // sum_{i=0..3} sum_{j=0..3} (i*4+j) = sum 0..15 = 120
    GraphBuilder b("nest");
    b.beginThread(0);
    auto i0 = b.param(0);
    auto acc0 = b.param(0);
    auto outer = b.beginLoop({i0, acc0});
    auto i = outer.vars[0];
    auto acc = outer.vars[1];
    auto j0 = b.lit(0, i);
    auto inner = b.beginLoop({j0, acc, i});
    auto j = inner.vars[0];
    auto acc_in = inner.vars[1];
    auto i_in = inner.vars[2];
    auto term = b.add(b.shli(i_in, 2), j);
    auto acc_next = b.add(acc_in, term);
    auto j_next = b.addi(j, 1);
    b.endLoop(inner, {j_next, acc_next, i_in}, b.lti(j_next, 4));
    auto i_next = b.addi(inner.exits[2], 1);
    b.endLoop(outer, {i_next, inner.exits[1]}, b.lti(i_next, 4));
    b.sink(outer.exits[1], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult r = interpret(g);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.sinkValues[0], 120);
}

TEST(Interp, StoreDataBeforeAddrStillOrders)
{
    // Build by hand: storeData's token arrives before storeAddr fires.
    // The interpreter (like the store buffer) pairs them by (tag, seq).
    GraphBuilder b("early");
    b.beginThread(0);
    const Addr a = b.alloc(8);
    auto v = b.param(55);
    auto addr = b.param(static_cast<Value>(a));
    // A long dependent chain delays the *address*, so data arrives
    // first in practice.
    auto slow = addr;
    for (int i = 0; i < 8; ++i)
        slow = b.addi(slow, 0);
    b.store(slow, v);
    b.sink(b.load(slow), 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult r = interpret(g);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.sinkValues[0], 55);
}

TEST(Interp, UsefulExcludesOverhead)
{
    GraphBuilder b("u");
    b.beginThread(0);
    auto x = b.param(1);
    auto loop = b.beginLoop({x});
    auto nxt = b.addi(loop.vars[0], 1);
    b.endLoop(loop, {nxt}, b.lti(nxt, 3));
    b.sink(loop.exits[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();

    InterpResult r = interpret(g);
    EXPECT_LT(r.useful, r.executed);
}

} // namespace
} // namespace ws
