/**
 * @file
 * ProcessorConfig validation: every 20 FO4 legality rule of §4.1, the
 * methodology escape hatch (relaxLimits), and the baseline's fidelity
 * to Table 1.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/config.h"
#include "core/simulator.h"
#include "isa/graph_builder.h"

namespace ws {
namespace {

ProcessorConfig
wired()
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.clusters = cfg.clusters;
    cfg.mesh.clusters = cfg.clusters;
    return cfg;
}

TEST(Config, BaselineMatchesTable1)
{
    const ProcessorConfig cfg = ProcessorConfig::baseline();
    EXPECT_EQ(cfg.clusters, 1);
    EXPECT_EQ(cfg.domainsPerCluster, 4);
    EXPECT_EQ(cfg.pesPerDomain, 8);
    EXPECT_EQ(cfg.pe.instStoreEntries, 128u);    // 4K static capacity.
    EXPECT_EQ(cfg.pe.matchingEntries, 128u);
    EXPECT_EQ(cfg.pe.matchingBanks, 4u);         // 4 arrivals/cycle.
    EXPECT_EQ(cfg.pe.matchingWays, 2u);          // 2-way (§3.2).
    EXPECT_EQ(cfg.memory.l1Bytes, 32u * 1024);   // 32 KB, 4-way, 128 B.
    EXPECT_EQ(cfg.memory.l1Ways, 4u);
    EXPECT_EQ(cfg.memory.lineBytes, 128u);
    EXPECT_EQ(cfg.memory.l1HitLatency, 3u);
    EXPECT_EQ(cfg.memory.memLatency, 200u);      // Table 1 main RAM.
    EXPECT_EQ(cfg.storeBuffer.waveSlots, 4u);    // 4 sequences at once.
    EXPECT_EQ(cfg.storeBuffer.psqCount, 2u);     // 2 partial store queues.
    EXPECT_EQ(cfg.storeBuffer.psqEntries, 4u);
    EXPECT_EQ(cfg.mesh.portBandwidth, 2u);       // 2 ops/cycle/port.
    EXPECT_EQ(cfg.mesh.queueCapacity, 8u);       // 8-entry output queues.
    EXPECT_EQ(cfg.instructionCapacity(), 4096u);
    EXPECT_NO_THROW(wired().validate());
}

struct BadConfig
{
    const char *label;
    void (*mutate)(ProcessorConfig &);
};

class ConfigLimits : public testing::TestWithParam<BadConfig>
{};

TEST_P(ConfigLimits, ViolationIsFatal)
{
    ProcessorConfig cfg = wired();
    GetParam().mutate(cfg);
    cfg.memory.clusters = cfg.clusters;
    cfg.mesh.clusters = cfg.clusters;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST_P(ConfigLimits, RelaxLimitsAllowsSizeViolationsOnly)
{
    ProcessorConfig cfg = wired();
    GetParam().mutate(cfg);
    cfg.memory.clusters = cfg.clusters;
    cfg.mesh.clusters = cfg.clusters;
    cfg.relaxLimits = true;
    // Structure-size rules relax; structural rules (cluster/domain/PE
    // counts) never do. Identify by label prefix.
    const std::string label = GetParam().label;
    if (label.rfind("size_", 0) == 0)
        EXPECT_NO_THROW(cfg.validate());
    else
        EXPECT_THROW(cfg.validate(), FatalError);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, ConfigLimits,
    testing::Values(
        BadConfig{"struct_zero_clusters",
                  [](ProcessorConfig &c) { c.clusters = 0; }},
        BadConfig{"struct_too_many_clusters",
                  [](ProcessorConfig &c) { c.clusters = 65; }},
        BadConfig{"struct_five_domains",
                  [](ProcessorConfig &c) { c.domainsPerCluster = 5; }},
        BadConfig{"struct_one_pe",
                  [](ProcessorConfig &c) { c.pesPerDomain = 1; }},
        BadConfig{"struct_nine_pes",
                  [](ProcessorConfig &c) { c.pesPerDomain = 9; }},
        BadConfig{"size_istore_too_big",
                  [](ProcessorConfig &c) {
                      c.pe.instStoreEntries = 512;
                  }},
        BadConfig{"size_istore_too_small",
                  [](ProcessorConfig &c) { c.pe.instStoreEntries = 4; }},
        BadConfig{"size_matching_too_big",
                  [](ProcessorConfig &c) { c.pe.matchingEntries = 512; }},
        BadConfig{"size_matching_too_small",
                  [](ProcessorConfig &c) { c.pe.matchingEntries = 8; }},
        BadConfig{"size_l1_too_small",
                  [](ProcessorConfig &c) { c.memory.l1Bytes = 4096; }},
        BadConfig{"size_l1_too_big",
                  [](ProcessorConfig &c) {
                      c.memory.l1Bytes = 64 * 1024;
                  }},
        BadConfig{"size_l2_too_big",
                  [](ProcessorConfig &c) {
                      c.memory.l2Bytes = 64ull << 20;
                  }}),
    [](const testing::TestParamInfo<BadConfig> &info) {
        return info.param.label;
    });

TEST(Config, MatchingGeometryMustDivide)
{
    ProcessorConfig cfg = wired();
    cfg.pe.matchingEntries = 126;   // Not divisible by 2 ways... it is;
    cfg.pe.matchingWays = 4;        // 126 % 4 != 0.
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.relaxLimits = true;         // Geometry rules never relax.
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, MeshAndMemoryMustBeWired)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = 4;
    // Forgot to wire memory.clusters / mesh.clusters.
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, CapacityArithmetic)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.clusters = 16;
    cfg.pe.instStoreEntries = 64;
    EXPECT_EQ(cfg.totalPes(), 512u);
    EXPECT_EQ(cfg.instructionCapacity(), 32768u);
    const PlacementGeometry geom = cfg.placementGeometry();
    EXPECT_EQ(geom.totalPes(), 512u);
    EXPECT_EQ(geom.peCapacity, 64);
}

TEST(Config, ReportExportsEveryCounterFamily)
{
    GraphBuilder b("tiny");
    b.beginThread(0);
    auto x = b.param(2);
    auto loop = b.beginLoop({x});
    auto nxt = b.addi(loop.vars[0], 1);
    b.endLoop(loop, {nxt}, b.lti(nxt, 6));
    b.sink(loop.exits[0], 1);
    b.endThread();
    DataflowGraph g = b.finish();
    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(100000));
    const StatReport r = proc.report();
    for (const char *key :
         {"sim.cycles", "sim.aipc", "sim.useful_executed",
          "pe.executed", "pe.accepted", "pe.rejected",
          "pe.bypass_deliveries", "pe.bank_conflicts",
          "pe.wave_throttled", "pe.fpu_stalls", "match.inserts",
          "match.fires", "match.misses", "istore.hits", "istore.misses",
          "sb.requests", "sb.wave_completions", "sb.psq_allocations",
          "sb.slot_preemptions", "l1.hits", "l1.misses", "home.getS",
          "home.l2_hits", "traffic.total", "traffic.operand_fraction",
          "traffic.mean_hops"}) {
        EXPECT_TRUE(r.has(key)) << key;
    }
}

} // namespace
} // namespace ws
