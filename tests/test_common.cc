/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ws {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.range(bound), bound);
    }
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeInclusiveHitsEndpoints)
{
    Rng rng(5);
    bool lo = false;
    bool hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.rangeInclusive(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(9);
    const auto first = rng.next();
    rng.next();
    rng.reseed(9);
    EXPECT_EQ(rng.next(), first);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35) / 4.0);
    EXPECT_EQ(h.max(), 35u);
}

TEST(Histogram, OverflowClampsToLastBucket)
{
    Histogram h(4, 1);
    h.sample(1000);
    EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(4, 1);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatReport, AddAndGet)
{
    StatReport r;
    r.add("a.b", 3.0);
    r.add("a.c", Counter{7});
    EXPECT_DOUBLE_EQ(r.get("a.b"), 3.0);
    EXPECT_DOUBLE_EQ(r.get("a.c"), 7.0);
    EXPECT_TRUE(r.has("a.b"));
    EXPECT_FALSE(r.has("a.d"));
}

TEST(StatReport, OverwriteKeepsPosition)
{
    StatReport r;
    r.add("x", 1.0);
    r.add("y", 2.0);
    r.add("x", 9.0);
    EXPECT_EQ(r.entries().size(), 2u);
    EXPECT_EQ(r.entries()[0].first, "x");
    EXPECT_DOUBLE_EQ(r.entries()[0].second, 9.0);
}

TEST(StatReport, SumPrefix)
{
    StatReport r;
    r.add("net.a", 1.0);
    r.add("net.b", 2.0);
    r.add("mem.a", 4.0);
    EXPECT_DOUBLE_EQ(r.sumPrefix("net."), 3.0);
    EXPECT_DOUBLE_EQ(r.sumPrefix(""), 7.0);
}

TEST(StatReport, MergeWithPrefix)
{
    StatReport inner;
    inner.add("hits", 5.0);
    StatReport outer;
    outer.merge(inner, "l1");
    EXPECT_DOUBLE_EQ(outer.get("l1.hits"), 5.0);
}

TEST(StatReport, GetMissingIsFatal)
{
    StatReport r;
    EXPECT_THROW(r.get("nope"), FatalError);
}

TEST(StatReport, ToStringFormatsIntegersPlainly)
{
    StatReport r;
    r.add("count", 42.0);
    const std::string s = r.toString();
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(s.find("42."), std::string::npos);
}

TEST(Log, PanicThrows)
{
    EXPECT_THROW(panic("test %d", 1), PanicError);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("test %s", "x"), FatalError);
}

TEST(Log, MessagesCarryFormatting)
{
    try {
        fatal("value=%d name=%s", 17, "abc");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=17"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("name=abc"),
                  std::string::npos);
    }
}

} // namespace
} // namespace ws
