/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, logging, and
 * the JSON round-trip fidelity the persistent simulation store
 * depends on (parse(dump(x)) must be bit-equal for every double).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ws {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.range(bound), bound);
    }
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeInclusiveHitsEndpoints)
{
    Rng rng(5);
    bool lo = false;
    bool hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.rangeInclusive(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(9);
    const auto first = rng.next();
    rng.next();
    rng.reseed(9);
    EXPECT_EQ(rng.next(), first);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35) / 4.0);
    EXPECT_EQ(h.max(), 35u);
}

TEST(Histogram, OverflowClampsToLastBucket)
{
    Histogram h(4, 1);
    h.sample(1000);
    EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(4, 1);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatReport, AddAndGet)
{
    StatReport r;
    r.add("a.b", 3.0);
    r.add("a.c", Counter{7});
    EXPECT_DOUBLE_EQ(r.get("a.b"), 3.0);
    EXPECT_DOUBLE_EQ(r.get("a.c"), 7.0);
    EXPECT_TRUE(r.has("a.b"));
    EXPECT_FALSE(r.has("a.d"));
}

TEST(StatReport, OverwriteKeepsPosition)
{
    StatReport r;
    r.add("x", 1.0);
    r.add("y", 2.0);
    r.add("x", 9.0);
    EXPECT_EQ(r.entries().size(), 2u);
    EXPECT_EQ(r.entries()[0].first, "x");
    EXPECT_DOUBLE_EQ(r.entries()[0].second, 9.0);
}

TEST(StatReport, SumPrefix)
{
    StatReport r;
    r.add("net.a", 1.0);
    r.add("net.b", 2.0);
    r.add("mem.a", 4.0);
    EXPECT_DOUBLE_EQ(r.sumPrefix("net."), 3.0);
    EXPECT_DOUBLE_EQ(r.sumPrefix(""), 7.0);
}

TEST(StatReport, MergeWithPrefix)
{
    StatReport inner;
    inner.add("hits", 5.0);
    StatReport outer;
    outer.merge(inner, "l1");
    EXPECT_DOUBLE_EQ(outer.get("l1.hits"), 5.0);
}

TEST(StatReport, GetMissingIsFatal)
{
    StatReport r;
    EXPECT_THROW(r.get("nope"), FatalError);
}

TEST(StatReport, ToStringFormatsIntegersPlainly)
{
    StatReport r;
    r.add("count", 42.0);
    const std::string s = r.toString();
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(s.find("42."), std::string::npos);
}

TEST(Log, PanicThrows)
{
    EXPECT_THROW(panic("test %d", 1), PanicError);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("test %s", "x"), FatalError);
}

TEST(Log, MessagesCarryFormatting)
{
    try {
        fatal("value=%d name=%s", 17, "abc");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=17"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("name=abc"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Json: number round-trip fidelity
// ---------------------------------------------------------------------

namespace {

/** parse(dump(x)) must reproduce x bit-for-bit: persisted SimResults
 *  are replayed through this path and compared byte-identical. */
void
expectNumberRoundTrips(double v)
{
    Json j(v);
    bool ok = false;
    const Json back = Json::parse(j.dump(), &ok);
    ASSERT_TRUE(ok) << "value " << v << " dumped as " << j.dump();
    ASSERT_EQ(back.type(), Json::Type::kNumber) << j.dump();
    const double r = back.asNumber();
    // Compare representations, not values: catches -0.0 vs 0.0 too.
    EXPECT_TRUE(std::memcmp(&r, &v, sizeof v) == 0 ||
                (v == 0.0 && r == 0.0))
        << "value " << v << " dumped as " << j.dump()
        << " re-parsed as " << r;
}

} // namespace

TEST(JsonNumbers, AwkwardDoublesRoundTripExactly)
{
    // The %.10g writer this replaces lost 1.0/3 and 0.1 (and with
    // them, replayed AIPC values diverged from fresh runs).
    expectNumberRoundTrips(1.0 / 3.0);
    expectNumberRoundTrips(0.1);
    expectNumberRoundTrips(0.1 + 0.2);  // 0.30000000000000004.
    expectNumberRoundTrips(2.0 / 3.0);
    expectNumberRoundTrips(1.0 / 7.0);
    expectNumberRoundTrips(3.141592653589793);
    expectNumberRoundTrips(2.718281828459045e-10);
    // Denormals.
    expectNumberRoundTrips(std::numeric_limits<double>::denorm_min());
    expectNumberRoundTrips(1e-310);
    expectNumberRoundTrips(4.9406564584124654e-324);
    // Extremes of the normal range.
    expectNumberRoundTrips(std::numeric_limits<double>::max());
    expectNumberRoundTrips(std::numeric_limits<double>::min());
    expectNumberRoundTrips(std::numeric_limits<double>::epsilon());
    // The 2^53 boundary where integers stop being exact.
    expectNumberRoundTrips(9007199254740991.0);  // 2^53 - 1.
    expectNumberRoundTrips(9007199254740992.0);  // 2^53.
    expectNumberRoundTrips(9007199254740994.0);  // 2^53 + 2.
    expectNumberRoundTrips(-9007199254740991.0);
    expectNumberRoundTrips(1.8446744073709552e19);  // 2^64.
}

TEST(JsonNumbers, RandomDoublesRoundTripExactly)
{
    // Property sweep: uniformly random mantissas across a wide
    // exponent range, plus the integer fast path.
    Rng rng(0x1234);
    for (int i = 0; i < 2000; ++i) {
        const double mant = rng.uniform() * 2.0 - 1.0;
        const int exp = static_cast<int>(rng.range(600)) - 300;
        const double v = std::ldexp(mant, exp);
        if (!std::isfinite(v))
            continue;
        expectNumberRoundTrips(v);
        expectNumberRoundTrips(static_cast<double>(
            static_cast<std::int64_t>(rng.next())));
    }
}

TEST(JsonNumbers, NonFiniteSerializesAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(),
              "null");
}

// ---------------------------------------------------------------------
// Json: \uXXXX escape validation
// ---------------------------------------------------------------------

namespace {

std::string
parseJsonString(const std::string &text, bool *ok)
{
    const Json j = Json::parse(text, ok);
    return j.type() == Json::Type::kString ? j.asString() : "";
}

} // namespace

TEST(JsonStrings, ValidUnicodeEscapesDecodeToUtf8)
{
    bool ok = false;
    EXPECT_EQ(parseJsonString("\"\\u0041\"", &ok), "A");
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseJsonString("\"\\u00e9\"", &ok), "\xc3\xa9");
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseJsonString("\"\\u20ac\"", &ok), "\xe2\x82\xac");
    EXPECT_TRUE(ok);
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parseJsonString("\"\\ud83d\\ude00\"", &ok),
              "\xf0\x9f\x98\x80");
    EXPECT_TRUE(ok);
    // Case-insensitive hex digits.
    EXPECT_EQ(parseJsonString("\"\\u004A\"", &ok), "J");
    EXPECT_TRUE(ok);
}

TEST(JsonStrings, MalformedUnicodeEscapesAreRejected)
{
    // strtol used to accept these silently, yielding a truncated
    // code (often embedding NUL) instead of failing.
    bool ok = true;
    Json::parse("\"\\u12g4\"", &ok);
    EXPECT_FALSE(ok) << "non-hex digit must reject";
    ok = true;
    Json::parse("\"\\uzzzz\"", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    Json::parse("\"\\u 123\"", &ok);
    EXPECT_FALSE(ok) << "space is not a hex digit";
    ok = true;
    Json::parse("\"\\u12\"", &ok);
    EXPECT_FALSE(ok) << "truncated escape must reject";
    ok = true;
    Json::parse("\"\\u123\\\"", &ok);
    EXPECT_FALSE(ok);
}

TEST(JsonStrings, UnpairedSurrogatesAreRejected)
{
    bool ok = true;
    Json::parse("\"\\ud800\"", &ok);
    EXPECT_FALSE(ok) << "lone lead surrogate";
    ok = true;
    Json::parse("\"\\ud83dx\"", &ok);
    EXPECT_FALSE(ok) << "lead surrogate followed by a plain char";
    ok = true;
    Json::parse("\"\\ud83d\\u0041\"", &ok);
    EXPECT_FALSE(ok) << "lead surrogate followed by a non-trail escape";
    ok = true;
    Json::parse("\"\\udc00\"", &ok);
    EXPECT_FALSE(ok) << "lone trail surrogate";
}

TEST(JsonStrings, EscapedStringsRoundTripThroughDump)
{
    Json j(std::string("line\nwith\ttabs \"quotes\" and \x01 ctrl"));
    bool ok = false;
    const Json back = Json::parse(j.dump(), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(back.asString(), j.asString());
}

// ---------------------------------------------------------------------
// Json: operator[] type discipline
// ---------------------------------------------------------------------

TEST(JsonObjects, IndexingANonObjectIsFatal)
{
    // Appending fields to a number used to "work" — dump() silently
    // dropped them (data loss with no diagnostic).
    Json num(1.5);
    EXPECT_THROW(num["field"], FatalError);
    Json str("text");
    EXPECT_THROW(str["field"], FatalError);
    Json arr = Json::array();
    EXPECT_THROW(arr["field"], FatalError);
    Json flag(true);
    EXPECT_THROW(flag["field"], FatalError);
}

TEST(JsonObjects, IndexingNullPromotesToObject)
{
    Json j;
    j["a"] = 1;
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j.find("a")->asNumber(), 1.0);
    // And a real object keeps working.
    Json obj = Json::object();
    obj["x"]["y"] = 2;  // Nested null-promotion.
    EXPECT_EQ(obj.find("x")->find("y")->asNumber(), 2.0);
}

} // namespace
} // namespace ws
