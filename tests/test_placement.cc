/**
 * @file
 * Unit tests for instruction placement: coverage, capacity handling,
 * thread isolation, and locality ordering across policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "isa/graph_builder.h"
#include "kernels/kernel.h"
#include "core/processor.h"
#include "place/placement.h"

namespace ws {
namespace {

DataflowGraph
chainGraph(int length)
{
    GraphBuilder b("chain");
    b.beginThread(0);
    auto x = b.param(1);
    for (int i = 0; i < length; ++i)
        x = b.addi(x, 1);
    b.sink(x, 1);
    b.endThread();
    return b.finish();
}

PlacementGeometry
geom(std::uint16_t clusters, std::uint16_t cap = 128)
{
    PlacementGeometry g;
    g.clusters = clusters;
    g.domainsPerCluster = 4;
    g.pesPerDomain = 8;
    g.peCapacity = cap;
    return g;
}

TEST(Placement, EveryInstructionGetsAValidHome)
{
    DataflowGraph g = chainGraph(500);
    Placement p = place(g, geom(4), PlacementPolicy::kDepthFirst);
    for (InstId i = 0; i < g.size(); ++i) {
        const PeCoord pe = p.home(i);
        EXPECT_LT(pe.cluster, 4);
        EXPECT_LT(pe.domain, 4);
        EXPECT_LT(pe.pe, 8);
    }
}

TEST(Placement, RespectsCapacityWhenMachineFits)
{
    DataflowGraph g = chainGraph(1000);
    Placement p = place(g, geom(1, 128), PlacementPolicy::kDepthFirst);
    for (std::uint32_t load : p.loadPerPe())
        EXPECT_LE(load, 128u);
}

TEST(Placement, DfsPacksChainsTightly)
{
    // A pure dependence chain should occupy few PEs, filled to V.
    DataflowGraph g = chainGraph(256);
    Placement p = place(g, geom(1, 128), PlacementPolicy::kDepthFirst);
    int used = 0;
    for (std::uint32_t load : p.loadPerPe()) {
        if (load > 0)
            ++used;
    }
    EXPECT_LE(used, 4);
}

TEST(Placement, DfsBeatsRandomOnLocality)
{
    KernelParams kp;
    DataflowGraph g = buildGzip(kp);
    Placement dfs = place(g, geom(4), PlacementPolicy::kDepthFirst);
    Placement rnd = place(g, geom(4), PlacementPolicy::kRandom);
    // Same-cluster edge locality (level 3).
    EXPECT_GT(dfs.edgeLocality(g, 3), rnd.edgeLocality(g, 3));
    // Same-PE locality too.
    EXPECT_GT(dfs.edgeLocality(g, 0), rnd.edgeLocality(g, 0));
}

TEST(Placement, BfsIsValidAndDistinctFromDfs)
{
    KernelParams kp;
    DataflowGraph g = buildGzip(kp);
    Placement bfs = place(g, geom(4), PlacementPolicy::kBreadthFirst);
    for (InstId i = 0; i < g.size(); ++i)
        EXPECT_LT(bfs.home(i).cluster, 4);
}

TEST(Placement, ThreadsLandInDisjointRegions)
{
    KernelParams kp;
    kp.threads = 16;
    DataflowGraph g = buildFft(kp);
    Placement p = place(g, geom(16, 128), PlacementPolicy::kDepthFirst);
    // Count distinct home clusters across threads: with 16 threads on
    // 16 clusters the placer must spread them widely.
    std::set<ClusterId> clusters;
    for (ThreadId t = 0; t < 16; ++t)
        clusters.insert(p.threadHomeCluster(t));
    EXPECT_GE(clusters.size(), 12u);
}

TEST(Placement, ThreadHomeMatchesFirstInstruction)
{
    KernelParams kp;
    kp.threads = 4;
    DataflowGraph g = buildLu(kp);
    Placement p = place(g, geom(4), PlacementPolicy::kDepthFirst);
    for (ThreadId t = 0; t < 4; ++t) {
        // The home cluster must host at least one of the thread's
        // instructions.
        bool found = false;
        for (InstId i = 0; i < g.size() && !found; ++i) {
            if (g.inst(i).thread == t &&
                p.home(i).cluster == p.threadHomeCluster(t)) {
                found = true;
            }
        }
        EXPECT_TRUE(found) << "thread " << t;
    }
}

TEST(Placement, OversubscriptionAllowedUpTo4x)
{
    DataflowGraph g = chainGraph(200);
    PlacementGeometry small = geom(1, 8);
    small.domainsPerCluster = 1;
    small.pesPerDomain = 8;  // Capacity 64; the ~203-node graph is ~3x.
    Placement p = place(g, small, PlacementPolicy::kDepthFirst);
    std::uint64_t total = 0;
    for (std::uint32_t load : p.loadPerPe())
        total += load;
    EXPECT_EQ(total, g.size());
}

TEST(Placement, WayOversizedGraphIsFatal)
{
    DataflowGraph g = chainGraph(3000);
    PlacementGeometry tiny = geom(1, 8);
    tiny.domainsPerCluster = 1;
    tiny.pesPerDomain = 2;  // Capacity 16; 4x = 64 << 3002.
    EXPECT_THROW(place(g, tiny, PlacementPolicy::kDepthFirst),
                 FatalError);
}

TEST(Placement, DeterministicForFixedSeed)
{
    KernelParams kp;
    DataflowGraph g = buildTwolf(kp);
    Placement a = place(g, geom(4), PlacementPolicy::kRandom, 7);
    Placement b = place(g, geom(4), PlacementPolicy::kRandom, 7);
    Placement c = place(g, geom(4), PlacementPolicy::kRandom, 8);
    int diff_ab = 0;
    int diff_ac = 0;
    for (InstId i = 0; i < g.size(); ++i) {
        if (!(a.home(i) == b.home(i)))
            ++diff_ab;
        if (!(a.home(i) == c.home(i)))
            ++diff_ac;
    }
    EXPECT_EQ(diff_ab, 0);
    EXPECT_GT(diff_ac, 0);
}

TEST(Placement, EdgeLocalityLevelsAreMonotone)
{
    KernelParams kp;
    kp.threads = 4;
    DataflowGraph g = buildOcean(kp);
    Placement p = place(g, geom(4), PlacementPolicy::kDepthFirst);
    // Same-PE ⊆ same-pod ⊆ same-domain ⊆ same-cluster.
    const double l0 = p.edgeLocality(g, 0);
    const double l1 = p.edgeLocality(g, 1);
    const double l2 = p.edgeLocality(g, 2);
    const double l3 = p.edgeLocality(g, 3);
    EXPECT_LE(l0, l1 + 1e-12);
    EXPECT_LE(l1, l2 + 1e-12);
    EXPECT_LE(l2, l3 + 1e-12);
}

TEST(Refinement, LowersCommunicationCost)
{
    KernelParams kp;
    kp.threads = 8;
    DataflowGraph g = buildOcean(kp);
    Placement base = place(g, geom(4), PlacementPolicy::kRandom, 3);
    Placement refined = place(g, geom(4), PlacementPolicy::kRandom, 3);
    const std::size_t moves = refinePlacement(refined, g, 4);
    EXPECT_GT(moves, 0u);

    auto total_cost = [&](const Placement &p) {
        double c = 0.0;
        for (InstId i = 0; i < g.size(); ++i) {
            for (int side = 0; side < 2; ++side) {
                for (const PortRef &out : g.inst(i).outs[side])
                    c += edgeCost(p.home(i), p.home(out.inst),
                                  p.geometry());
            }
        }
        return c;
    };
    EXPECT_LT(total_cost(refined), total_cost(base));
}

TEST(Refinement, RespectsCapacity)
{
    KernelParams kp;
    DataflowGraph g = buildRawdaudio(kp);
    Placement p = place(g, geom(1, 32), PlacementPolicy::kBreadthFirst);
    refinePlacement(p, g, 4);
    for (std::uint32_t load : p.loadPerPe())
        EXPECT_LE(load, 32u);
    // Every instruction still has exactly one home.
    std::uint64_t total = 0;
    for (std::uint32_t load : p.loadPerPe())
        total += load;
    EXPECT_EQ(total, g.size());
}

TEST(Refinement, ImprovesOrMatchesDfsLocality)
{
    KernelParams kp;
    kp.threads = 4;
    DataflowGraph g = buildFft(kp);
    Placement dfs = place(g, geom(4), PlacementPolicy::kDepthFirst);
    Placement refined =
        place(g, geom(4), PlacementPolicy::kDepthFirstRefined);
    EXPECT_GE(refined.edgeLocality(g, 0) + 1e-9,
              dfs.edgeLocality(g, 0) * 0.98);
}

TEST(Refinement, RefinedPolicyRunsEndToEnd)
{
    KernelParams kp;
    kp.threads = 4;
    DataflowGraph g = buildLu(kp);
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    cfg.placement = PlacementPolicy::kDepthFirstRefined;
    Processor proc(g, cfg);
    EXPECT_TRUE(proc.run(2'000'000));
}

TEST(Refinement, EdgeCostHierarchyIsMonotone)
{
    PlacementGeometry g4 = geom(4);
    const PeCoord same{0, 0, 0};
    const PeCoord pod{0, 0, 1};
    const PeCoord dom{0, 0, 4};
    const PeCoord clu{0, 2, 0};
    const PeCoord grid{3, 0, 0};
    EXPECT_EQ(edgeCost(same, same, g4), 0.0);
    EXPECT_LT(edgeCost(same, pod, g4), edgeCost(same, dom, g4));
    EXPECT_LT(edgeCost(same, dom, g4), edgeCost(same, clu, g4));
    EXPECT_LT(edgeCost(same, clu, g4), edgeCost(same, grid, g4));
}

} // namespace
} // namespace ws
