/**
 * @file
 * Cycle-accurate PE pipeline behaviour: back-to-back dependent
 * execution, divide occupancy, FPU sharing, output-queue dynamics, and
 * the Table-1 network latencies measured end-to-end through crafted
 * programs whose placement is forced by instruction-store capacity.
 */

#include <gtest/gtest.h>

#include "core/processor.h"
#include "isa/graph_builder.h"

namespace ws {
namespace {

/** A pure dependence chain of @p ops, returning total run cycles. */
Cycle
runChain(Opcode op, int ops, ProcessorConfig cfg)
{
    GraphBuilder b("chain");
    b.beginThread(0);
    auto x = b.param(1);
    for (int i = 0; i < ops; ++i) {
        if (opcodeInfo(op).arity == 1)
            x = b.emit(op, {x}, 1);
        else
            x = b.emit(op, {x, x});
    }
    b.sink(x, 1);
    b.endThread();
    DataflowGraph g = b.finish();
    Processor proc(g, cfg);
    if (!proc.run(200000))
        ADD_FAILURE() << "chain did not complete";
    return proc.cycle();
}

TEST(PePipeline, DependentIntOpsRunBackToBack)
{
    // Doubling the chain length must cost ~1 cycle per op: the same-PE
    // speculative handoff of the appendix.
    ProcessorConfig cfg = ProcessorConfig::baseline();
    const Cycle t200 = runChain(Opcode::kAddi, 200, cfg);
    const Cycle t400 = runChain(Opcode::kAddi, 400, cfg);
    const double per_op =
        static_cast<double>(t400 - t200) / 200.0;
    EXPECT_NEAR(per_op, 1.0, 0.45);
}

TEST(PePipeline, DivideOccupiesExecute)
{
    // kDivi is a 4-cycle iterative divide: a divide chain must run ~4x
    // slower than an add chain.
    ProcessorConfig cfg = ProcessorConfig::baseline();
    const Cycle add200 = runChain(Opcode::kAddi, 200, cfg);
    const Cycle add400 = runChain(Opcode::kAddi, 400, cfg);
    const Cycle div200 = runChain(Opcode::kDivi, 200, cfg);
    const Cycle div400 = runChain(Opcode::kDivi, 400, cfg);
    const double add_per_op = static_cast<double>(add400 - add200) / 200;
    const double div_per_op = static_cast<double>(div400 - div200) / 200;
    EXPECT_NEAR(div_per_op / add_per_op, 4.0, 0.8);
}

TEST(PePipeline, FpChainPaysFpuLatency)
{
    // Dependent FP ops pay the pipelined FPU latency (3) per step.
    ProcessorConfig cfg = ProcessorConfig::baseline();
    const Cycle f200 = runChain(Opcode::kFadd, 200, cfg);
    const Cycle f400 = runChain(Opcode::kFadd, 400, cfg);
    const double per_op = static_cast<double>(f400 - f200) / 200;
    EXPECT_NEAR(per_op, 3.0, 0.8);
}

TEST(PePipeline, SharedFpuSerializesParallelFpWork)
{
    // W independent FP chains in ONE domain contend for its single FPU
    // issue port; integer chains do not.
    auto run_parallel = [&](Opcode op, int width) {
        GraphBuilder b("par");
        b.beginThread(0);
        std::vector<GraphBuilder::Node> chains;
        for (int w = 0; w < width; ++w)
            chains.push_back(b.param(w + 1));
        for (int step = 0; step < 60; ++step) {
            for (int w = 0; w < width; ++w)
                chains[w] = b.emit(op, {chains[w], chains[w]});
        }
        auto sum = chains[0];
        for (int w = 1; w < width; ++w)
            sum = b.add(sum, chains[w]);
        b.sink(sum, 1);
        b.endThread();
        DataflowGraph g = b.finish();
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.domainsPerCluster = 1;   // One FPU for everything.
        cfg.relaxLimits = true;
        cfg.pe.instStoreEntries = 256;
        cfg.pe.matchingEntries = 256;
        Processor proc(g, cfg);
        EXPECT_TRUE(proc.run(400000));
        return proc.report();
    };
    StatReport fp = run_parallel(Opcode::kFmul, 6);
    StatReport in = run_parallel(Opcode::kMul, 6);
    EXPECT_GT(fp.get("pe.fpu_stalls"), 50.0);
    EXPECT_EQ(in.get("pe.fpu_stalls"), 0.0);
    EXPECT_GT(fp.get("sim.cycles"), in.get("sim.cycles"));
}

TEST(PePipeline, WideFanoutIsBankLimited)
{
    // One producer feeding many same-PE consumers must spread its
    // matching-table writes over multiple cycles (4 bank ports).
    GraphBuilder b("fanout");
    b.beginThread(0);
    auto x = b.param(3);
    std::vector<GraphBuilder::Node> sinks;
    for (int i = 0; i < 24; ++i)
        sinks.push_back(b.addi(x, i));
    auto sum = sinks[0];
    for (std::size_t i = 1; i < sinks.size(); ++i)
        sum = b.add(sum, sinks[i]);
    b.sink(sum, 1);
    b.endThread();
    DataflowGraph g = b.finish();
    Processor proc(g, ProcessorConfig::baseline());
    ASSERT_TRUE(proc.run(100000));
    EXPECT_GT(proc.report().get("pe.accepted") +
                  proc.report().sumPrefix("pe.bypass"),
              0.0);
    // The 24 same-cycle inserts cannot all land in one cycle.
    EXPECT_GT(proc.cycle(), 10u);
}

TEST(PePipeline, InstructionMissLatencyIsThreeTimesMatchingMiss)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    EXPECT_NEAR(static_cast<double>(cfg.pe.instMissLatency) /
                    cfg.pe.overflowRetryLatency,
                3.0, 1e-9);
}

TEST(PePipeline, PodBypassLatencyIsOneCycle)
{
    // Two-PE pod: a chain alternating between pod partners (V=1 per PE
    // is illegal; use V=8 so the chain crosses every 8 ops) — compare
    // pods on vs off; the difference per crossing is the 5-vs-1 cycle
    // gap.
    GraphBuilder b("cross");
    b.beginThread(0);
    auto x = b.param(1);
    for (int i = 0; i < 160; ++i)
        x = b.addi(x, 1);
    b.sink(x, 1);
    b.endThread();
    DataflowGraph g1 = b.finish();

    auto run = [&](bool pods) {
        ProcessorConfig cfg = ProcessorConfig::baseline();
        cfg.pe.instStoreEntries = 8;
        cfg.pe.matchingEntries = 16;
        cfg.pe.podBypass = pods;
        Processor proc(g1, cfg);
        EXPECT_TRUE(proc.run(100000));
        return proc.cycle();
    };
    const Cycle with_pods = run(true);
    const Cycle without = run(false);
    // 160 ops / 8 per PE = 20 crossings; half stay inside a pod. Each
    // pod crossing saves ~4 cycles (5-cycle bus vs 1-cycle bypass).
    EXPECT_GT(without, with_pods + 20);
}

} // namespace
} // namespace ws
