/**
 * @file
 * Tests for the symbolic equivalence checker (src/analyze/equiv) and the
 * validate-or-rollback rewriter built on top of it.
 *
 * Three layers:
 *   - canonicalization units: pairs of hand-built graphs the checker
 *     must prove equivalent (commutativity, constant folding, mov
 *     chains, immediate/register forms, strength reduction) and pairs
 *     it must reject with the right WS8xx code;
 *   - seeded-mutant fixtures: .wsa pairs where the "optimized" side
 *     carries a classic miscompile (wrong constant, swapped
 *     non-commutative operands, reordered wave chain, dropped sink);
 *   - end-to-end: every kernel optimizes under the equivalence gate
 *     with zero findings, and the optimized graph simulates to the
 *     byte-identical observable behavior at 1/2/4 threads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/equiv.h"
#include "analyze/rewriter.h"
#include "isa/assembly.h"
#include "isa/graph_builder.h"
#include "isa/interp.h"
#include "kernels/ilp_variants.h"
#include "kernels/kernel.h"

namespace ws {
namespace {

DataflowGraph
loadFixture(const std::string &name)
{
    std::ifstream in(std::string(WS_FIXTURE_DIR) + "/" + name);
    EXPECT_TRUE(in.is_open()) << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    return assemble(ss.str());
}

/** True when the report contains @p code (and the check failed). */
bool
rejectsWith(const EquivResult &r, DiagCode code)
{
    return !r.equivalent() && r.report.has(code);
}

// --------------------------------------------------------- canonicalization

TEST(EquivCanon, IdenticalGraphIsEquivalent)
{
    GraphBuilder b("canon", 1);
    b.beginThread(0);
    auto x = b.param(3);
    auto y = b.param(4);
    b.sink(b.add(x, y));
    b.endThread();
    const DataflowGraph g = b.finish();
    const EquivResult r = checkEquivalence(g, g);
    EXPECT_TRUE(r.equivalent()) << r.report.render();
    EXPECT_GT(r.stats.sinkPairs, 0u);
}

TEST(EquivCanon, CommutativeOperandSwap)
{
    auto build = [](bool swapped) {
        GraphBuilder b("comm", 1);
        b.beginThread(0);
        auto x = b.param(3);
        auto y = b.param(4);
        b.sink(swapped ? b.add(y, x) : b.add(x, y));
        b.endThread();
        return b.finish();
    };
    const EquivResult r = checkEquivalence(build(false), build(true));
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivCanon, NonCommutativeOperandSwapRejected)
{
    auto build = [](bool swapped) {
        GraphBuilder b("sub", 1);
        b.beginThread(0);
        auto x = b.param(10);
        auto y = b.param(4);
        b.sink(swapped ? b.sub(y, x) : b.sub(x, y));
        b.endThread();
        return b.finish();
    };
    const EquivResult r = checkEquivalence(build(false), build(true));
    EXPECT_TRUE(rejectsWith(r, DiagCode::kSinkMismatch))
        << r.report.render();
}

TEST(EquivCanon, ConstantFoldingIsProvable)
{
    GraphBuilder a("folded.a", 1);
    a.beginThread(0);
    auto t = a.param(1);
    a.sink(a.mul(a.lit(6, t), a.lit(7, t)));
    a.endThread();

    GraphBuilder b("folded.b", 1);
    b.beginThread(0);
    auto t2 = b.param(1);
    b.sink(b.lit(42, t2));
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivCanon, WrongFoldedConstantRejected)
{
    GraphBuilder a("folded.a", 1);
    a.beginThread(0);
    auto t = a.param(1);
    a.sink(a.mul(a.lit(6, t), a.lit(7, t)));
    a.endThread();

    GraphBuilder b("folded.bad", 1);
    b.beginThread(0);
    auto t2 = b.param(1);
    b.sink(b.lit(43, t2));
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(rejectsWith(r, DiagCode::kSinkMismatch))
        << r.report.render();
}

TEST(EquivCanon, MovChainsCollapse)
{
    GraphBuilder a("mov.a", 1);
    a.beginThread(0);
    auto x = a.param(9);
    a.sink(a.addi(x, 1));
    a.endThread();

    GraphBuilder b("mov.b", 1);
    b.beginThread(0);
    auto y = b.param(9);
    auto m1 = b.emit(Opcode::kMov, {y});
    auto m2 = b.emit(Opcode::kMov, {m1});
    b.sink(b.addi(b.emit(Opcode::kMov, {m2}), 1));
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivCanon, ImmediateAndRegisterFormsMerge)
{
    GraphBuilder a("imm.a", 1);
    a.beginThread(0);
    auto x = a.param(11);
    a.sink(a.addi(x, 5));
    a.endThread();

    GraphBuilder b("imm.b", 1);
    b.beginThread(0);
    auto y = b.param(11);
    b.sink(b.add(y, b.lit(5, y)));
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivCanon, MulByPowerOfTwoEqualsShift)
{
    GraphBuilder a("str.a", 1);
    a.beginThread(0);
    auto x = a.param(11);
    a.sink(a.muli(x, 8));
    a.endThread();

    GraphBuilder b("str.b", 1);
    b.beginThread(0);
    auto y = b.param(11);
    b.sink(b.shli(y, 3));
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivCanon, AlgebraicIdentityIsProvable)
{
    GraphBuilder a("id.a", 1);
    a.beginThread(0);
    auto x = a.param(11);
    a.sink(a.add(x, a.lit(0, x)));
    a.endThread();

    GraphBuilder b("id.b", 1);
    b.beginThread(0);
    auto y = b.param(11);
    b.sink(b.emit(Opcode::kMov, {y}));
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivCanon, DroppedSinkRejected)
{
    GraphBuilder a("sinks.a", 1);
    a.beginThread(0);
    auto x = a.param(3);
    a.sink(x);
    a.sink(a.addi(x, 1));
    a.endThread();

    GraphBuilder b("sinks.b", 1);
    b.beginThread(0);
    auto y = b.param(3);
    b.sink(y);
    b.endThread();

    const EquivResult r = checkEquivalence(a.finish(), b.finish());
    EXPECT_TRUE(rejectsWith(r, DiagCode::kCompletionMismatch))
        << r.report.render();
}

TEST(EquivCanon, StoredValueChangeRejected)
{
    auto build = [](Value stored) {
        GraphBuilder b("store", 1);
        b.beginThread(0);
        const Addr buf = b.alloc(8);
        auto x = b.param(3);
        b.store(b.lit(static_cast<Value>(buf), x),
                b.addi(x, stored));
        b.sink(x);
        b.endThread();
        return b.finish();
    };
    const EquivResult r = checkEquivalence(build(1), build(2));
    EXPECT_TRUE(rejectsWith(r, DiagCode::kMemEffectMismatch))
        << r.report.render();
}

TEST(EquivCanon, LoadOffsetChangeRejected)
{
    auto build = [](Value offset) {
        GraphBuilder b("load", 1);
        b.beginThread(0);
        const Addr buf = b.alloc(16);
        b.initMem(buf, 5);
        b.initMem(buf + 8, 7);
        auto x = b.param(3);
        b.sink(b.load(b.lit(static_cast<Value>(buf), x), offset));
        b.endThread();
        return b.finish();
    };
    const EquivResult r = checkEquivalence(build(0), build(8));
    EXPECT_FALSE(r.equivalent());
}

TEST(EquivCanon, SelfEquivalenceEveryKernel)
{
    for (const Kernel &k : kernelRegistry()) {
        KernelParams p;
        p.threads = k.multithreaded ? 2 : 1;
        const DataflowGraph g = k.build(p);
        const EquivResult r = checkEquivalence(g, g);
        EXPECT_TRUE(r.equivalent())
            << k.name << ": " << r.report.render();
    }
}

// ------------------------------------------------------- seeded mutants

TEST(EquivFixtures, HandOptimizedTwinProvesEquivalent)
{
    const DataflowGraph base = loadFixture("equiv_base.wsa");
    const DataflowGraph good = loadFixture("equiv_opt_good.wsa");
    const EquivResult r = checkEquivalence(base, good);
    EXPECT_TRUE(r.equivalent()) << r.report.render();
}

TEST(EquivFixtures, WrongConstantRejectedWithWS801)
{
    const EquivResult r =
        checkEquivalence(loadFixture("equiv_base.wsa"),
                         loadFixture("equiv_wrong_const.wsa"));
    EXPECT_TRUE(rejectsWith(r, DiagCode::kSinkMismatch))
        << r.report.render();
}

TEST(EquivFixtures, SwappedNonCommutativeOperandsRejectedWithWS801)
{
    const EquivResult r =
        checkEquivalence(loadFixture("equiv_base.wsa"),
                         loadFixture("equiv_swapped_ops.wsa"));
    EXPECT_TRUE(rejectsWith(r, DiagCode::kSinkMismatch))
        << r.report.render();
}

TEST(EquivFixtures, ReorderedWaveChainRejectedWithWS802)
{
    const EquivResult r =
        checkEquivalence(loadFixture("equiv_base.wsa"),
                         loadFixture("equiv_reordered_chain.wsa"));
    EXPECT_TRUE(rejectsWith(r, DiagCode::kMemEffectMismatch))
        << r.report.render();
}

TEST(EquivFixtures, DroppedSinkRejectedWithWS803)
{
    const EquivResult r =
        checkEquivalence(loadFixture("equiv_base.wsa"),
                         loadFixture("equiv_dropped_sink.wsa"));
    EXPECT_TRUE(rejectsWith(r, DiagCode::kCompletionMismatch))
        << r.report.render();
}

// ------------------------------------------------------------ end-to-end

/** Sorted sink values + final memory: the observable behavior. */
struct Observed
{
    bool completed = false;
    std::vector<Value> sinks;
    std::map<Addr, Value> memory;

    bool operator==(const Observed &o) const
    {
        return completed == o.completed && sinks == o.sinks &&
               memory == o.memory;
    }
};

Observed
observe(const DataflowGraph &g)
{
    InterpResult r = interpret(g);
    Observed o;
    o.completed = r.completed;
    o.sinks = std::move(r.sinkValues);
    std::sort(o.sinks.begin(), o.sinks.end());
    o.memory = std::move(r.memory);
    return o;
}

TEST(EquivEndToEnd, EveryKernelOptimizesDifferentiallyCleanAt124Threads)
{
    for (const Kernel &k : kernelRegistry()) {
        for (const std::uint16_t threads : {1, 2, 4}) {
            if (threads > 1 && !k.multithreaded)
                continue;
            KernelParams p;
            p.threads = threads;
            const DataflowGraph original = k.build(p);
            DataflowGraph optimized = original;
            const RewriteStats stats = optimizeGraph(optimized);
            EXPECT_EQ(stats.rollbacks, 0u)
                << k.name << " t" << threads << ": "
                << stats.rollbackDiff;
            const EquivResult r = checkEquivalence(original, optimized);
            EXPECT_TRUE(r.equivalent())
                << k.name << " t" << threads << ": "
                << r.report.render();
            EXPECT_TRUE(observe(original) == observe(optimized))
                << k.name << " t" << threads
                << ": observable behavior diverged after optimization";
        }
    }
}

TEST(EquivEndToEnd, IlpVariantsShrinkUnderCseAndAlgebra)
{
    // The expanded WS504/WS505 catalog must earn its keep on the
    // ILP-sensitivity family (the graphs behind bench_ext_ilp_variants):
    // every variant loses nodes, provably.
    for (const Kernel &k : ilpVariantKernels()) {
        const DataflowGraph original = k.build(KernelParams{});
        DataflowGraph optimized = original;
        const RewriteStats stats = optimizeGraph(optimized);
        EXPECT_EQ(stats.rollbacks, 0u) << k.name << ": "
                                       << stats.rollbackDiff;
        EXPECT_LT(optimized.size(), original.size()) << k.name;
        const EquivResult r = checkEquivalence(original, optimized);
        EXPECT_TRUE(r.equivalent()) << k.name << ": " << r.report.render();
        EXPECT_TRUE(observe(original) == observe(optimized)) << k.name;
    }
}

TEST(EquivEndToEnd, SabotagedRewriteRollsBackAndLeavesGraphUntouched)
{
    const DataflowGraph original = loadFixture("opt_foldable.wsa");
    DataflowGraph g = original;
    ::setenv("WS_REWRITE_SABOTAGE", "fold", 1);
    const RewriteStats stats = optimizeGraph(g);
    ::unsetenv("WS_REWRITE_SABOTAGE");
    EXPECT_GE(stats.rollbacks, 1u);
    EXPECT_NE(stats.rollbackDiff.find("WS801"), std::string::npos)
        << stats.rollbackDiff;
    // The rollback restored the pre-round graph: still equivalent to
    // (indeed byte-identical in behavior with) the original.
    const EquivResult r = checkEquivalence(original, g);
    EXPECT_TRUE(r.equivalent()) << r.report.render();
    EXPECT_TRUE(observe(original) == observe(g));
}

} // namespace
} // namespace ws
