/**
 * @file
 * wscheck (runtime invariant checker) tests.
 *
 * Three layers:
 *  - CheckReport / RuntimeChecker unit tests: counting, storage caps,
 *    rendering, and the per-hook detection logic fed synthetic events.
 *  - Seeded-bad mutants: a real Processor is corrupted in a controlled
 *    way (ghost token, unmatchable tokens, illegal MESI install,
 *    unarmed tick) and the checker must name the specific WS6xx code —
 *    proving each invariant can actually fire outside a unit test.
 *  - Clean-machine properties: every kernel at every thread count runs
 *    violation-free at level full, and checking at any level never
 *    perturbs a single byte of the StatReport.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/checker.h"
#include "common/runtime_hook.h"
#include "core/processor.h"
#include "core/simulator.h"
#include "isa/graph.h"
#include "kernels/kernel.h"
#include "network/timed_queue.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// CheckReport
// ---------------------------------------------------------------------

TEST(CheckReport, EmptyReportIsOk)
{
    CheckReport rep;
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.violationCount(), 0u);
    EXPECT_EQ(rep.render(), "");
    EXPECT_EQ(rep.summary(), "0 violations");
}

TEST(CheckReport, CountsEveryEventButCapsStorage)
{
    CheckReport rep;
    for (int i = 0; i < 40; ++i)
        rep.add(DiagCode::kDeadTokens, i, "processor", "event");
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.violationCount(), 40u);
    EXPECT_EQ(rep.count(DiagCode::kDeadTokens), 40u);
    EXPECT_EQ(rep.events().size(), CheckReport::kMaxStoredPerCode);
    const std::string text = rep.render();
    EXPECT_NE(text.find("8 further events not stored"), std::string::npos);
}

TEST(CheckReport, SummaryRollsUpPerCodeInCodeOrder)
{
    CheckReport rep;
    rep.add(DiagCode::kWaveOrderRegression, 10, "cluster 0 sb", "x");
    rep.add(DiagCode::kTokenConservation, 20, "processor", "y");
    rep.add(DiagCode::kWaveOrderRegression, 30, "cluster 1 sb", "z");
    EXPECT_EQ(rep.summary(), "3 violations (WS601 x1, WS604 x2)");
    const std::string text = rep.render();
    EXPECT_NE(text.find("check[WS604] cycle 10 @ cluster 0 sb"),
              std::string::npos);
}

TEST(EffectiveCheckLevel, ExplicitLevelAlwaysWins)
{
    EXPECT_EQ(effectiveCheckLevel(CheckLevel::kCheap), CheckLevel::kCheap);
    EXPECT_EQ(effectiveCheckLevel(CheckLevel::kFull), CheckLevel::kFull);
}

// ---------------------------------------------------------------------
// RuntimeChecker hooks fed synthetic events
// ---------------------------------------------------------------------

TEST(RuntimeChecker, QueuePopContractWS607)
{
    RuntimeChecker checker(CheckLevel::kFull);
    const ScopedQueueCheckHook hook(&checker);
    TimedQueue<int> q;
    q.push(1, 10);
    EXPECT_FALSE(q.ready(5));
    // A legal pop (ready cycle arrived) is silent...
    q.push(2, 3);
    (void)q.pop(5);
    EXPECT_TRUE(checker.report().ok());
    // ...popping the not-yet-ready item is the contract violation.
    (void)q.pop(5);
    EXPECT_EQ(checker.report().count(DiagCode::kQueuePopEarly), 1u);
}

TEST(RuntimeChecker, WaveOrderMonotonicityWS604)
{
    RuntimeChecker checker(CheckLevel::kCheap);
    checker.onWaveRetired(0, 0, 5, 100);
    checker.onWaveRetired(0, 0, 7, 110);   // Gap: legal.
    checker.onWaveRetired(0, 1, 3, 120);   // Other thread: independent.
    checker.onWaveRetired(1, 0, 2, 130);   // Other store buffer: too.
    EXPECT_TRUE(checker.report().ok());

    checker.onWaveRetired(0, 0, 7, 140);   // Repeat: violation.
    checker.onWaveRetired(0, 0, 4, 150);   // Regression: violation.
    EXPECT_EQ(checker.report().count(DiagCode::kWaveOrderRegression), 2u);
}

TEST(RuntimeChecker, MatchingAccountingWS603)
{
    RuntimeChecker checker(CheckLevel::kFull);
    checker.auditMatching("pe (0,0,0)", 4, 4, 16, 10);  // Consistent.
    EXPECT_TRUE(checker.report().ok());
    checker.auditMatching("pe (0,0,1)", 4, 3, 16, 20);  // Drift.
    checker.auditMatching("pe (0,0,2)", 17, 17, 16, 30);  // Overflow.
    EXPECT_EQ(checker.report().count(DiagCode::kMatchAccounting), 2u);
}

TEST(RuntimeChecker, ConservationAndDeadTokensWS601WS602)
{
    RuntimeChecker checker(CheckLevel::kCheap);
    checker.onTokensCreated(3);
    checker.onTokensConsumed(2);
    checker.auditConservation(/*resident=*/1, /*completed=*/true, 50);
    EXPECT_TRUE(checker.report().ok());  // 3 == 2 + 1, completed.

    // Resident tokens at an *incomplete* quiescence are dead (WS602).
    checker.auditConservation(1, /*completed=*/false, 60);
    EXPECT_EQ(checker.report().count(DiagCode::kDeadTokens), 1u);
    EXPECT_EQ(checker.report().count(DiagCode::kTokenConservation), 0u);

    // A lost token breaks the ledger (WS601).
    checker.onTokensConsumed(2);  // consumed 4 > created 3 + resident.
    checker.auditConservation(0, true, 70);
    EXPECT_EQ(checker.report().count(DiagCode::kTokenConservation), 1u);
}

TEST(RuntimeChecker, QuiescenceMismatchWS608)
{
    RuntimeChecker checker(CheckLevel::kCheap);
    checker.onQuiescenceMismatch(/*fast_path=*/true, 99);
    EXPECT_EQ(checker.report().count(DiagCode::kQuiescenceMismatch), 1u);
}

// ---------------------------------------------------------------------
// Seeded-bad mutants on a real machine
// ---------------------------------------------------------------------

/** Baseline machine with wscheck at @p level. */
ProcessorConfig
checkedConfig(CheckLevel level)
{
    ProcessorConfig cfg = ProcessorConfig::baseline();
    cfg.memory.l2Bytes = 1 << 20;
    cfg.checkLevel = level;
    return cfg;
}

/** Per thread: one mov fed by an initial token, into a sink. The
 *  simplest graph that runs to completion. */
DataflowGraph
movSinkGraph(std::uint16_t threads)
{
    DataflowGraph g("mov_sink", threads);
    for (ThreadId t = 0; t < threads; ++t) {
        Instruction mov;
        mov.op = Opcode::kMov;
        mov.thread = t;
        Instruction sink;
        sink.op = Opcode::kSink;
        sink.thread = t;
        const InstId movId = g.addInstruction(mov);
        const InstId sinkId = g.addInstruction(sink);
        g.inst(movId).outs[0].push_back(PortRef{sinkId, 0});
        g.addInitialToken(Token{Tag{t, 0}, PortRef{movId, 0}, 1});
    }
    g.setExpectedSinkTokens(threads);
    return g;
}

/**
 * Per thread: a two-input add whose operands arrive in *different
 * waves* — tags that can never match. The machine must terminate (via
 * the quiescence probe) instead of spinning, and the checker must name
 * the dead tokens.
 */
DataflowGraph
deadTokenGraph(std::uint16_t threads)
{
    DataflowGraph g("dead_tokens", threads);
    for (ThreadId t = 0; t < threads; ++t) {
        Instruction add;
        add.op = Opcode::kAdd;
        add.thread = t;
        Instruction sink;
        sink.op = Opcode::kSink;
        sink.thread = t;
        const InstId addId = g.addInstruction(add);
        const InstId sinkId = g.addInstruction(sink);
        g.inst(addId).outs[0].push_back(PortRef{sinkId, 0});
        g.addInitialToken(Token{Tag{t, 0}, PortRef{addId, 0}, 1});
        g.addInitialToken(Token{Tag{t, 1}, PortRef{addId, 1}, 2});
    }
    g.setExpectedSinkTokens(threads);
    return g;
}

TEST(WscheckMutant, CleanRunStaysClean)
{
    const DataflowGraph g = movSinkGraph(1);
    Processor proc(g, checkedConfig(CheckLevel::kFull));
    EXPECT_TRUE(proc.run(100'000));
    ASSERT_NE(proc.checker(), nullptr);
    proc.auditNow();
    EXPECT_TRUE(proc.checker()->report().ok())
        << proc.checker()->report().render();
}

TEST(WscheckMutant, GhostTokenTripsConservationWS601)
{
    // Inject a token the checker never saw created — the model of a
    // component fabricating (or double-delivering) a token. The ledger
    // must come up short at quiescence.
    const DataflowGraph g = movSinkGraph(1);
    Processor proc(g, checkedConfig(CheckLevel::kCheap));
    // Wave 1 stays inside the k-loop wave window, so the PE accepts it.
    const PeCoord home = proc.placement().home(0);
    proc.cluster(home.cluster)
        .domain(home.domain)
        .pushDelivery(Token{Tag{0, 1}, PortRef{0, 0}, 99}, 0);
    proc.run(100'000);
    ASSERT_NE(proc.checker(), nullptr);
    EXPECT_EQ(proc.checker()->report().count(DiagCode::kTokenConservation),
              1u)
        << proc.checker()->report().render() << " created "
        << proc.checker()->tokensCreated() << " consumed "
        << proc.checker()->tokensConsumed() << " sinks "
        << proc.sinkCount() << " cycle " << proc.cycle();
}

class WscheckDeadTokens : public ::testing::TestWithParam<std::uint16_t>
{};

TEST_P(WscheckDeadTokens, QuiescesIncompleteWithWS602)
{
    const std::uint16_t threads = GetParam();
    const DataflowGraph g = deadTokenGraph(threads);
    Processor proc(g, checkedConfig(CheckLevel::kCheap));
    // Must terminate via the quiescence probe — far short of the
    // budget — and report incompletion, not hang until max_cycles.
    EXPECT_FALSE(proc.run(200'000));
    EXPECT_LE(proc.cycle(), 2'048u);
    EXPECT_TRUE(proc.quiescent());
    ASSERT_NE(proc.checker(), nullptr);
    const CheckReport &rep = proc.checker()->report();
    EXPECT_EQ(rep.count(DiagCode::kDeadTokens), 1u) << rep.render();
    // The tokens are dead but not *lost*: conservation still balances
    // (created == resident), so WS601 must stay silent.
    EXPECT_EQ(rep.count(DiagCode::kTokenConservation), 0u)
        << rep.render();
}

INSTANTIATE_TEST_SUITE_P(Threads, WscheckDeadTokens,
                         ::testing::Values(1, 2, 4));

TEST(WscheckMutant, IllegalMesiPairIsCaughtWS605)
{
    ProcessorConfig cfg = checkedConfig(CheckLevel::kFull);
    cfg.clusters = 4;
    const DataflowGraph g = movSinkGraph(1);
    Processor proc(g, cfg);
    // Legal sharing: two S holders — must not fire.
    proc.cluster(2).l1().debugInstallLine(0x2000, kMesiShared);
    proc.cluster(3).l1().debugInstallLine(0x2000, kMesiShared);
    // Illegal pair: one Modified holder alongside a Shared copy.
    proc.cluster(0).l1().debugInstallLine(0x1000, kMesiModified);
    proc.cluster(1).l1().debugInstallLine(0x1000, kMesiShared);
    proc.auditNow();
    ASSERT_NE(proc.checker(), nullptr);
    const CheckReport &rep = proc.checker()->report();
    EXPECT_EQ(rep.count(DiagCode::kIllegalMesiPair), 1u) << rep.render();
}

TEST(WscheckMutant, TwoExclusiveHoldersAreCaughtWS605)
{
    ProcessorConfig cfg = checkedConfig(CheckLevel::kFull);
    cfg.clusters = 4;
    const DataflowGraph g = movSinkGraph(1);
    Processor proc(g, cfg);
    proc.cluster(0).l1().debugInstallLine(0x3000, kMesiExclusive);
    proc.cluster(1).l1().debugInstallLine(0x3000, kMesiModified);
    proc.auditNow();
    ASSERT_NE(proc.checker(), nullptr);
    EXPECT_EQ(proc.checker()->report().count(DiagCode::kIllegalMesiPair),
              1u);
}

TEST(WscheckMutant, UnarmedTickWorkIsCaughtWS606)
{
    // Run to completion under the reference clocking, then slip a token
    // into a domain *behind the scheduler's back* — the model of a
    // component whose wake registration is missing. The next tick finds
    // the cluster un-armed yet doing observable work.
    ProcessorConfig cfg = checkedConfig(CheckLevel::kFull);
    cfg.alwaysTick = true;
    const DataflowGraph g = movSinkGraph(1);
    Processor proc(g, cfg);
    ASSERT_TRUE(proc.run(100'000));
    ASSERT_NE(proc.checker(), nullptr);
    ASSERT_TRUE(proc.checker()->report().ok());

    const PeCoord home = proc.placement().home(0);
    proc.cluster(home.cluster)
        .domain(home.domain)
        .pushDelivery(Token{Tag{0, 9}, PortRef{0, 0}, 5}, proc.cycle());
    proc.tick();
    EXPECT_GE(proc.checker()->report().count(DiagCode::kUnarmedWork), 1u)
        << proc.checker()->report().render();
}

// ---------------------------------------------------------------------
// Clean-machine properties
// ---------------------------------------------------------------------

TEST(WscheckClean, CheckingNeverPerturbsTheReport)
{
    KernelParams p;
    const DataflowGraph g = buildRawdaudio(p);
    const SimResult off = runSimulation(g, checkedConfig(CheckLevel::kOff));
    const SimResult cheap =
        runSimulation(g, checkedConfig(CheckLevel::kCheap));
    const SimResult full =
        runSimulation(g, checkedConfig(CheckLevel::kFull));
    EXPECT_TRUE(off.completed);
    EXPECT_EQ(off.report.toString(), cheap.report.toString());
    EXPECT_EQ(off.report.toString(), full.report.toString());
    EXPECT_EQ(cheap.checkViolations, 0u) << cheap.checkLog;
    EXPECT_EQ(full.checkViolations, 0u) << full.checkLog;
}

TEST(WscheckClean, EveryKernelAtEveryThreadCountIsViolationFree)
{
    const ProcessorConfig cfg = checkedConfig(CheckLevel::kFull);
    for (const Kernel &k : kernelRegistry()) {
        std::vector<unsigned> thread_counts{1};
        if (k.multithreaded) {
            thread_counts.push_back(2);
            thread_counts.push_back(4);
        }
        for (unsigned threads : thread_counts) {
            KernelParams p;
            p.threads = threads;
            const SimResult res = runSimulation(k.build(p), cfg);
            EXPECT_EQ(res.checkViolations, 0u)
                << k.name << " @" << threads << " threads:\n"
                << res.checkLog;
        }
    }
}

} // namespace
} // namespace ws
