/**
 * @file
 * Unit tests for the interconnect: traffic accounting and the
 * inter-cluster mesh (routing, bandwidth, virtual channels,
 * backpressure).
 */

#include <gtest/gtest.h>

#include "network/mesh.h"
#include "network/message.h"
#include "network/traffic.h"

namespace ws {
namespace {

NetMessage
msg(ClusterId src, ClusterId dst, std::uint8_t vc = 0, bool mem = false)
{
    NetMessage m;
    m.src = src;
    m.dst = dst;
    m.vc = vc;
    m.memTraffic = mem;
    m.payload = OperandMsg{};
    return m;
}

TEST(Traffic, FractionsAndKinds)
{
    TrafficStats t;
    t.record(TrafficLevel::kIntraPod, TrafficKind::kOperand);
    t.record(TrafficLevel::kIntraPod, TrafficKind::kOperand);
    t.record(TrafficLevel::kIntraDomain, TrafficKind::kOperand);
    t.record(TrafficLevel::kInterCluster, TrafficKind::kMemory);
    EXPECT_EQ(t.total(), 4u);
    EXPECT_DOUBLE_EQ(t.fractionAtLevel(TrafficLevel::kIntraPod), 0.5);
    EXPECT_DOUBLE_EQ(t.operandFraction(), 0.75);
}

TEST(Traffic, BulkRecording)
{
    TrafficStats t;
    t.recordBulk(TrafficLevel::kIntraPod, TrafficKind::kOperand, 100);
    EXPECT_EQ(t.count(TrafficLevel::kIntraPod, TrafficKind::kOperand),
              100u);
}

TEST(Traffic, ReportNames)
{
    TrafficStats t;
    t.record(TrafficLevel::kIntraCluster, TrafficKind::kMemory);
    StatReport r;
    t.report(r);
    EXPECT_DOUBLE_EQ(r.get("traffic.intra_cluster.memory"), 1.0);
    EXPECT_DOUBLE_EQ(r.get("traffic.total"), 1.0);
}

TEST(Mesh, GridGeometry)
{
    TrafficStats t;
    MeshNetwork mesh4(MeshConfig{4, 2, 8}, &t);
    EXPECT_EQ(mesh4.gridWidth(), 2);
    EXPECT_EQ(mesh4.gridHeight(), 2);
    EXPECT_EQ(mesh4.hopDistance(0, 3), 2);
    EXPECT_EQ(mesh4.hopDistance(0, 1), 1);

    MeshNetwork mesh16(MeshConfig{16, 2, 8}, &t);
    EXPECT_EQ(mesh16.gridWidth(), 4);
    EXPECT_EQ(mesh16.hopDistance(0, 15), 6);
    // Paper §4.3: mean pairwise distance at 16 clusters is 2.8... for
    // a 4x4 grid the exact value is 2.666; at 1 cluster it is 0.
    EXPECT_NEAR(mesh16.meanPairDistance(), 2.67, 0.05);
    MeshNetwork mesh1(MeshConfig{1, 2, 8}, &t);
    EXPECT_DOUBLE_EQ(mesh1.meanPairDistance(), 0.0);
}

TEST(Mesh, DeliversAtDestination)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{4, 2, 8}, &t);
    ASSERT_TRUE(mesh.inject(msg(0, 3), 0));
    bool delivered = false;
    for (Cycle c = 1; c < 20 && !delivered; ++c) {
        mesh.tick(c);
        if (!mesh.delivered(3).empty())
            delivered = true;
    }
    EXPECT_TRUE(delivered);
    EXPECT_EQ(t.count(TrafficLevel::kInterCluster, TrafficKind::kOperand),
              1u);
    EXPECT_EQ(mesh.delivered(3).size(), 1u);
    EXPECT_TRUE(mesh.delivered(0).empty());
}

TEST(Mesh, LatencyGrowsWithDistance)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{16, 2, 8}, &t);
    auto deliver_time = [&](ClusterId dst) {
        MeshNetwork m(MeshConfig{16, 2, 8}, &t);
        m.inject(msg(0, dst), 0);
        for (Cycle c = 1; c < 40; ++c) {
            m.tick(c);
            if (!m.delivered(dst).empty())
                return c;
        }
        return Cycle{0};
    };
    const Cycle near = deliver_time(1);
    const Cycle far = deliver_time(15);
    EXPECT_GT(far, near);
    EXPECT_GE(far - near, 4u);  // 5 extra hops, one cycle each.
}

TEST(Mesh, PortBandwidthLimitsThroughput)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{4, 2, 8}, &t);
    // Queue 6 messages 0→1; at 2/cycle/port they drain over 3+ cycles.
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(mesh.inject(msg(0, 1), 0));
    std::size_t got = 0;
    Cycle last = 0;
    for (Cycle c = 1; c < 20; ++c) {
        mesh.tick(c);
        if (!mesh.delivered(1).empty()) {
            EXPECT_LE(mesh.delivered(1).size(), 2u);
            got += mesh.delivered(1).size();
            mesh.delivered(1).clear();
            last = c;
        }
    }
    EXPECT_EQ(got, 6u);
    EXPECT_GE(last, 4u);
}

TEST(Mesh, FullQueueRejectsInjection)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{4, 2, 2}, &t);  // Tiny queues.
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (mesh.inject(msg(0, 1), 0))
            ++accepted;
    }
    EXPECT_EQ(accepted, 2);
    EXPECT_GT(t.congestionEvents(), 0u);
    // Draining frees space again.
    mesh.tick(1);
    EXPECT_TRUE(mesh.inject(msg(0, 1), 1));
}

TEST(Mesh, VirtualChannelsShareBandwidthFairly)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{4, 2, 8}, &t);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(mesh.inject(msg(0, 1, 0), 0));
        ASSERT_TRUE(mesh.inject(msg(0, 1, 1), 0));
    }
    // After the first delivery cycle, both VCs must have progressed.
    mesh.tick(1);
    mesh.tick(2);
    std::size_t vc0 = 0;
    std::size_t vc1 = 0;
    for (const NetMessage &m : mesh.delivered(1))
        (m.vc == 0 ? vc0 : vc1)++;
    EXPECT_GT(vc0, 0u);
    EXPECT_GT(vc1, 0u);
}

TEST(Mesh, DimensionOrderRoutingIsDeadlockFreeUnderLoad)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{16, 2, 8}, &t);
    // All-to-all burst.
    std::size_t injected = 0;
    for (ClusterId s = 0; s < 16; ++s) {
        for (ClusterId d = 0; d < 16; ++d) {
            if (s != d && mesh.inject(msg(s, d), 0))
                ++injected;
        }
    }
    std::size_t delivered = 0;
    for (Cycle c = 1; c < 400; ++c) {
        mesh.tick(c);
        for (ClusterId d = 0; d < 16; ++d) {
            delivered += mesh.delivered(d).size();
            mesh.delivered(d).clear();
        }
        // Keep retrying the rejected injections.
        if (injected < 240) {
            for (ClusterId s = 0; s < 16; ++s) {
                for (ClusterId d = 0; d < 16; ++d) {
                    if (s != d && injected < 240 &&
                        mesh.inject(msg(s, d), c))
                        ++injected;
                }
            }
        }
    }
    (void)injected;
    EXPECT_TRUE(mesh.idle());
    EXPECT_GE(delivered, 240u * 90 / 100);
    EXPECT_GT(t.meanHops(), 1.0);
}

TEST(Mesh, SelfInjectionDeliversLocally)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{4, 2, 8}, &t);
    ASSERT_TRUE(mesh.inject(msg(2, 2), 0));
    for (Cycle c = 1; c < 5; ++c)
        mesh.tick(c);
    EXPECT_EQ(mesh.delivered(2).size(), 1u);
}

TEST(Mesh, MemTrafficUsesMemPortAndCounts)
{
    TrafficStats t;
    MeshNetwork mesh(MeshConfig{4, 2, 8}, &t);
    ASSERT_TRUE(mesh.inject(msg(0, 1, 1, true), 0));
    for (Cycle c = 1; c < 10; ++c)
        mesh.tick(c);
    EXPECT_EQ(t.count(TrafficLevel::kInterCluster, TrafficKind::kMemory),
              1u);
}

} // namespace
} // namespace ws
