/**
 * @file
 * Unit tests for the PE's storage structures: the matching table (cache
 * + in-memory overflow) and the instruction store, plus the TimedQueue
 * primitive and the core/soa.h pools they build on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "core/soa.h"
#include "network/timed_queue.h"
#include "pe/instruction_store.h"
#include "pe/matching_table.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// TimedQueue
// ---------------------------------------------------------------------

TEST(TimedQueue, ReadyRespectsTime)
{
    TimedQueue<int> q;
    q.push(1, 5);
    EXPECT_FALSE(q.ready(4));
    EXPECT_TRUE(q.ready(5));
    EXPECT_TRUE(q.ready(100));
    EXPECT_EQ(q.nextReady(), 5u);
}

TEST(TimedQueue, PopsInReadyThenFifoOrder)
{
    TimedQueue<int> q;
    q.push(1, 10);
    q.push(2, 5);
    q.push(3, 10);
    EXPECT_EQ(q.pop(10), 2);
    EXPECT_EQ(q.pop(10), 1);  // Same ready cycle: insertion order.
    EXPECT_EQ(q.pop(10), 3);
}

TEST(TimedQueue, EmptyNextReadyIsNever)
{
    TimedQueue<int> q;
    EXPECT_EQ(q.nextReady(), kCycleNever);
    EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, InterleavedPushPopStaysOrdered)
{
    TimedQueue<int> q;
    for (int i = 0; i < 50; ++i)
        q.push(i, static_cast<Cycle>(100 - i));
    int last = -1;
    int count = 0;
    for (Cycle t = 0; t <= 100; ++t) {
        while (q.ready(t)) {
            const int v = q.pop(t);
            EXPECT_GT(v, last - 100);  // Just consume.
            ++count;
        }
    }
    EXPECT_EQ(count, 50);
    (void)last;
}

// ---------------------------------------------------------------------
// MatchingTable
// ---------------------------------------------------------------------

Token
tok(InstId inst, std::uint8_t port, WaveNum wave, Value v,
    ThreadId thread = 0)
{
    return Token{Tag{thread, wave}, PortRef{inst, port}, v};
}

TEST(MatchingTable, TwoOperandMatchFires)
{
    MatchingTable mt(16, 2, 1);
    auto r1 = mt.insert(tok(3, 0, 0, 10), 2, 3);
    EXPECT_FALSE(r1.fired);
    EXPECT_EQ(mt.validRows(), 1u);
    auto r2 = mt.insert(tok(3, 1, 0, 20), 2, 3);
    ASSERT_TRUE(r2.fired);
    EXPECT_EQ(r2.fire.ops[0], 10);
    EXPECT_EQ(r2.fire.ops[1], 20);
    EXPECT_FALSE(r2.fire.fromOverflow);
    EXPECT_EQ(mt.validRows(), 0u);  // Fired rows free immediately.
}

TEST(MatchingTable, SingleOperandFiresImmediately)
{
    MatchingTable mt(16, 2, 1);
    auto r = mt.insert(tok(1, 0, 0, 7), 1, 1);
    ASSERT_TRUE(r.fired);
    EXPECT_EQ(r.fire.ops[0], 7);
}

TEST(MatchingTable, ThreeOperandMatch)
{
    MatchingTable mt(16, 2, 1);
    EXPECT_FALSE(mt.insert(tok(2, 0, 0, 1), 3, 2).fired);
    EXPECT_FALSE(mt.insert(tok(2, 2, 0, 3), 3, 2).fired);
    auto r = mt.insert(tok(2, 1, 0, 2), 3, 2);
    ASSERT_TRUE(r.fired);
    EXPECT_EQ(r.fire.ops[0], 1);
    EXPECT_EQ(r.fire.ops[1], 2);
    EXPECT_EQ(r.fire.ops[2], 3);
}

TEST(MatchingTable, DifferentWavesDontMatch)
{
    MatchingTable mt(16, 2, 4);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(0, 1, 1, 2), 2, 0).fired);
    EXPECT_EQ(mt.validRows(), 2u);
}

TEST(MatchingTable, DifferentThreadsDontMatch)
{
    MatchingTable mt(16, 2, 1);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1, 0), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(0, 1, 0, 2, 1), 2, 0).fired);
    EXPECT_EQ(mt.validRows(), 2u);
}

TEST(MatchingTable, ConflictEvictsToOverflowAndStillMatches)
{
    // 1 set x 2 ways: three live instances force an eviction; the
    // evicted instance must still complete, from memory.
    MatchingTable mt(2, 2, 1);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(1, 0, 0, 2), 2, 1).fired);
    EXPECT_FALSE(mt.insert(tok(2, 0, 0, 3), 2, 2).fired);  // Evicts LRU.
    EXPECT_EQ(mt.stats().evictedRows, 1u);
    EXPECT_EQ(mt.overflowSize(), 1u);
    // Instance 0 was LRU → now in overflow. Completing it fires from
    // overflow.
    auto r = mt.insert(tok(0, 1, 0, 9), 2, 0);
    ASSERT_TRUE(r.fired);
    EXPECT_TRUE(r.fire.fromOverflow);
    EXPECT_EQ(r.fire.ops[0], 1);
    EXPECT_EQ(r.fire.ops[1], 9);
    EXPECT_EQ(mt.overflowSize(), 0u);
    EXPECT_GE(mt.stats().overflowFires, 1u);
}

TEST(MatchingTable, ZeroMissGuaranteeAtFullProvisioning)
{
    // The paper's matching-table equation: with M = V*k entries and the
    // I*k + (wave mod k) hash, no misses occur for V instructions with
    // up to k waves in flight.
    const unsigned V = 16;
    const unsigned k = 4;
    MatchingTable mt(V * k, 2, k);
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i) {
            mt.insert(tok(i, 0, wave, 1), 2, i);
        }
    }
    EXPECT_EQ(mt.stats().misses, 0u);
    // Complete them all; still no misses.
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i) {
            EXPECT_TRUE(mt.insert(tok(i, 1, wave, 2), 2, i).fired);
        }
    }
    EXPECT_EQ(mt.stats().misses, 0u);
}

TEST(MatchingTable, ZeroMissGuaranteeHoldsForEveryThreadId)
{
    // Regression for the set-index hash: the per-thread offset must be
    // *constant within a thread* so that at M = V*k a single thread's
    // V x k live instances still map injectively onto the table — for
    // any thread id, not just thread 0. (The offset is mix64(thread)
    // now; an input-dependent perturbation would break this.)
    const unsigned V = 16;
    const unsigned k = 4;
    for (ThreadId thread : {ThreadId(0), ThreadId(1), ThreadId(7),
                            ThreadId(63), ThreadId(1000)}) {
        MatchingTable mt(V * k, 2, k);
        for (unsigned wave = 0; wave < k; ++wave) {
            for (unsigned i = 0; i < V; ++i)
                mt.insert(tok(i, 0, wave, 1, thread), 2, i);
        }
        EXPECT_EQ(mt.stats().misses, 0u) << "thread " << thread;
        for (unsigned wave = 0; wave < k; ++wave) {
            for (unsigned i = 0; i < V; ++i)
                EXPECT_TRUE(mt.insert(tok(i, 1, wave, 2, thread), 2,
                                      i).fired);
        }
        EXPECT_EQ(mt.stats().misses, 0u) << "thread " << thread;
    }
}

TEST(MatchingTable, ThreadOffsetIsIdentityForThreadZero)
{
    // Single-threaded programs must see exactly the paper's equation:
    // set = (I*k + wave mod k) mod sets. mix64(0) == 0 guarantees it.
    const unsigned V = 8;
    const unsigned k = 2;
    MatchingTable mt(V * k, 1, k);  // Direct-mapped: layout-sensitive.
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i)
            mt.insert(tok(i, 0, wave, 1, 0), 2, i);
    }
    EXPECT_EQ(mt.stats().misses, 0u);
    EXPECT_EQ(mt.stats().evictedRows, 0u);
}

TEST(MatchingTable, OversubscriptionMissesButCompletes)
{
    // M = V*k/4: conflicts guaranteed, but every match must complete.
    const unsigned V = 16;
    const unsigned k = 4;
    MatchingTable mt(V * k / 4, 2, k);
    unsigned fired = 0;
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i)
            mt.insert(tok(i, 0, wave, 1), 2, i);
    }
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i) {
            if (mt.insert(tok(i, 1, wave, 2), 2, i).fired)
                ++fired;
        }
    }
    EXPECT_EQ(fired, V * k);
    EXPECT_GT(mt.stats().misses, 0u);
}

TEST(MatchingTable, BadGeometryIsFatal)
{
    EXPECT_THROW(MatchingTable(0, 2, 1), FatalError);
    EXPECT_THROW(MatchingTable(15, 2, 1), FatalError);
}

TEST(MatchingTable, OccupancyCountsOverflowRows)
{
    // Regression: tickStats() must count overflow rows as waiting
    // instances. It once summed only the cache's valid rows, so a
    // heavily oversubscribed table looked near-empty in the occupancy
    // statistic even while instances waited in memory.
    MatchingTable mt(2, 2, 1);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(1, 0, 0, 2), 2, 1).fired);
    EXPECT_FALSE(mt.insert(tok(2, 0, 0, 3), 2, 2).fired);  // Evicts LRU.
    ASSERT_EQ(mt.validRows(), 2u);
    ASSERT_EQ(mt.overflowSize(), 1u);
    mt.tickStats();
    EXPECT_EQ(mt.stats().occupancySum, 3u);  // 2 cache + 1 overflow.
    mt.tickStats();
    EXPECT_EQ(mt.stats().occupancySum, 6u);
}

// ---------------------------------------------------------------------
// TokenPool / TimedTokenQueue (core/soa.h)
// ---------------------------------------------------------------------

Token
poolTok(InstId inst, Value v, WaveNum wave = 0, ThreadId thread = 0)
{
    return Token{Tag{thread, wave}, PortRef{inst, 0}, v};
}

TEST(TokenPool, FreeListReusesMostRecentSlot)
{
    TokenPool pool;
    const TokenHandle a = pool.alloc(poolTok(1, 10));
    const TokenHandle b = pool.alloc(poolTok(2, 20));
    EXPECT_EQ(pool.live(), 2u);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.live(), 0u);
    // LIFO free-list: the most recently released slot comes back first,
    // and no new capacity is grown for it.
    const std::size_t cap = pool.capacity();
    EXPECT_EQ(pool.alloc(poolTok(3, 30)), b);
    EXPECT_EQ(pool.alloc(poolTok(4, 40)), a);
    EXPECT_EQ(pool.capacity(), cap);
    EXPECT_EQ(pool.get(b).value, 30);
    EXPECT_EQ(pool.get(a).value, 40);
}

TEST(TokenPool, HandlesStableAcrossGrowth)
{
    TokenPool pool;
    std::vector<TokenHandle> handles;
    for (int i = 0; i < 1000; ++i)
        handles.push_back(pool.alloc(poolTok(
            static_cast<InstId>(i), i, static_cast<WaveNum>(i % 7),
            static_cast<ThreadId>(i % 3))));
    // Growth reallocated the arrays many times over; every handle must
    // still read back its own payload.
    for (int i = 0; i < 1000; ++i) {
        const Token t = pool.get(handles[static_cast<std::size_t>(i)]);
        EXPECT_EQ(t.dst.inst, static_cast<InstId>(i));
        EXPECT_EQ(t.value, i);
        EXPECT_EQ(t.tag.wave, static_cast<WaveNum>(i % 7));
        EXPECT_EQ(t.tag.thread, static_cast<ThreadId>(i % 3));
    }
    EXPECT_EQ(pool.live(), 1000u);
}

TEST(TokenPool, HandleSurvivesUnrelatedChurn)
{
    // A held handle stays valid across release/alloc churn of *other*
    // handles — the property the matching-table eviction path depends
    // on while a row's tokens move between queue and overflow storage.
    TokenPool pool;
    const TokenHandle keep = pool.alloc(poolTok(42, 4242));
    for (int round = 0; round < 100; ++round) {
        const TokenHandle t1 = pool.alloc(poolTok(1, round));
        const TokenHandle t2 = pool.alloc(poolTok(2, -round));
        pool.release(t1);
        pool.release(t2);
    }
    const Token t = pool.get(keep);
    EXPECT_EQ(t.dst.inst, 42u);
    EXPECT_EQ(t.value, 4242);
    EXPECT_EQ(pool.live(), 1u);
}

TEST(TimedTokenQueue, MatchesTimedQueuePopOrder)
{
    // The SoA queue must pop in exactly the (ready, insertion order)
    // sequence of the reference TimedQueue — that identity is what lets
    // the event core swap it in without perturbing any simulation.
    TokenPool pool;
    TimedTokenQueue soa(&pool);
    TimedQueue<Token> ref;
    const Cycle readies[] = {10, 5, 10, 7, 5, 20, 1, 10};
    int i = 0;
    for (const Cycle r : readies) {
        const Token t = poolTok(static_cast<InstId>(i), i);
        soa.push(t, r);
        ref.push(t, r);
        ++i;
    }
    EXPECT_EQ(soa.size(), ref.size());
    EXPECT_EQ(soa.nextReady(), ref.nextReady());
    for (Cycle now = 0; now <= 20; ++now) {
        ASSERT_EQ(soa.ready(now), ref.ready(now)) << "cycle " << now;
        while (ref.ready(now)) {
            const Token want = ref.pop(now);
            const Token got = soa.pop(now);
            EXPECT_EQ(got.dst.inst, want.dst.inst);
            EXPECT_EQ(got.value, want.value);
            ASSERT_EQ(soa.ready(now), ref.ready(now));
        }
    }
    EXPECT_TRUE(soa.empty());
    EXPECT_EQ(pool.live(), 0u);  // Pops released every handle.
}

TEST(TimedTokenQueue, HeadCompactionKeepsContents)
{
    // Drive the head index deep enough to trigger prefix compaction
    // while entries remain, and confirm nothing is lost or reordered.
    TokenPool pool;
    TimedTokenQueue q(&pool);
    const int n = 200;
    for (int i = 0; i < n; ++i)
        q.push(poolTok(static_cast<InstId>(i), i), static_cast<Cycle>(i));
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(q.ready(static_cast<Cycle>(i)));
        EXPECT_EQ(q.pop(static_cast<Cycle>(i)).value, i);
        // Interleave fresh pushes so compaction runs with a live tail.
        if (i % 3 == 0)
            q.push(poolTok(static_cast<InstId>(n + i), n + i),
                   static_cast<Cycle>(n + i));
    }
    // Drain the interleaved tail in order.
    int expect = n;
    while (!q.empty()) {
        const Cycle at = q.nextReady();
        EXPECT_EQ(q.pop(at).value, expect);
        expect += 3;
    }
    EXPECT_EQ(pool.live(), 0u);
}

// ---------------------------------------------------------------------
// OverflowMap (core/soa.h)
// ---------------------------------------------------------------------

TEST(OverflowMap, InsertFindEraseRoundTrip)
{
    OverflowMap map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(1), OverflowMap::npos);
    bool inserted = false;
    const std::size_t slot = map.insert(0xabcd, inserted);
    EXPECT_TRUE(inserted);
    map.inst(slot) = 7;
    map.arity(slot) = 2;
    map.present(slot) = 0x1;
    map.ops(slot)[0] = 55;
    const std::size_t found = map.find(0xabcd);
    ASSERT_NE(found, OverflowMap::npos);
    EXPECT_EQ(map.inst(found), 7u);
    EXPECT_EQ(map.ops(found)[0], 55);
    // Re-inserting an existing key returns it untouched.
    const std::size_t again = map.insert(0xabcd, inserted);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(map.inst(again), 7u);
    EXPECT_EQ(map.size(), 1u);
    map.erase(found);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0xabcd), OverflowMap::npos);
}

TEST(OverflowMap, SurvivesGrowthAndChurn)
{
    // Push far past the initial capacity (growth + rehash), then erase
    // every other key (backward-shift deletion across probe chains) and
    // verify the survivors still resolve with their payloads.
    OverflowMap map;
    const std::uint64_t n = 500;
    for (std::uint64_t k = 1; k <= n; ++k) {
        bool inserted = false;
        const std::size_t slot = map.insert(k * 0x9e3779b9u, inserted);
        ASSERT_TRUE(inserted);
        map.inst(slot) = static_cast<InstId>(k);
        map.ops(slot)[2] = static_cast<Value>(k * 3);
    }
    EXPECT_EQ(map.size(), n);
    for (std::uint64_t k = 1; k <= n; k += 2) {
        const std::size_t slot = map.find(k * 0x9e3779b9u);
        ASSERT_NE(slot, OverflowMap::npos) << "key " << k;
        map.erase(slot);
    }
    EXPECT_EQ(map.size(), n / 2);
    for (std::uint64_t k = 1; k <= n; ++k) {
        const std::size_t slot = map.find(k * 0x9e3779b9u);
        if (k % 2 == 1) {
            EXPECT_EQ(slot, OverflowMap::npos) << "key " << k;
        } else {
            ASSERT_NE(slot, OverflowMap::npos) << "key " << k;
            EXPECT_EQ(map.inst(slot), static_cast<InstId>(k));
            EXPECT_EQ(map.ops(slot)[2], static_cast<Value>(k * 3));
        }
    }
    std::size_t visited = 0;
    map.forEach([&](std::size_t) { ++visited; });
    EXPECT_EQ(visited, n / 2);
}

// ---------------------------------------------------------------------
// SmallVec (core/soa.h)
// ---------------------------------------------------------------------

TEST(SmallVec, StaysInlineThenSpills)
{
    SmallVec<int, 4> v;
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 4u);
    // The fifth push crosses into the heap; everything must carry over
    // and later pushes append normally.
    for (int i = 4; i < 32; ++i)
        v.push_back(i);
    ASSERT_EQ(v.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
    int sum = 0;
    for (const int x : v)
        sum += x;
    EXPECT_EQ(sum, 31 * 32 / 2);
    v.clear();
    EXPECT_TRUE(v.empty());
    // Reuse after clear starts inline again.
    v.push_back(99);
    EXPECT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 99);
}

TEST(SmallVec, CopyAndMovePreserveBothModes)
{
    SmallVec<int, 2> small;
    small.push_back(1);
    SmallVec<int, 2> big;
    for (int i = 0; i < 10; ++i)
        big.push_back(i);
    SmallVec<int, 2> smallCopy(small);
    SmallVec<int, 2> bigCopy(big);
    EXPECT_EQ(smallCopy.size(), 1u);
    EXPECT_EQ(smallCopy[0], 1);
    ASSERT_EQ(bigCopy.size(), 10u);
    EXPECT_EQ(bigCopy[9], 9);
    SmallVec<int, 2> moved(std::move(bigCopy));
    ASSERT_EQ(moved.size(), 10u);
    EXPECT_EQ(moved[5], 5);
    EXPECT_TRUE(bigCopy.empty());
    moved = std::move(smallCopy);
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0], 1);
}

// ---------------------------------------------------------------------
// InstructionStore
// ---------------------------------------------------------------------

TEST(InstructionStore, PreboundWhenHomeFits)
{
    InstructionStore is(4);
    is.assignHome({10, 11, 12});
    EXPECT_TRUE(is.isBound(10));
    EXPECT_TRUE(is.isBound(12));
    EXPECT_TRUE(is.access(11));
    EXPECT_EQ(is.stats().misses, 0u);
}

TEST(InstructionStore, LocalIndicesAreStable)
{
    InstructionStore is(2);
    is.assignHome({20, 21, 22});
    EXPECT_EQ(is.localIdx(20), 0u);
    EXPECT_EQ(is.localIdx(21), 1u);
    EXPECT_EQ(is.localIdx(22), 2u);
}

TEST(InstructionStore, MissAndBindEvictsLru)
{
    InstructionStore is(2);
    is.assignHome({1, 2, 3});
    EXPECT_TRUE(is.access(1));
    EXPECT_TRUE(is.access(2));
    EXPECT_FALSE(is.access(3));   // Miss.
    is.bind(3);                   // Evicts 1 (LRU).
    EXPECT_EQ(is.stats().evictions, 1u);
    EXPECT_TRUE(is.isBound(3));
    EXPECT_TRUE(is.isBound(2));
    EXPECT_FALSE(is.isBound(1));
}

TEST(InstructionStore, AccessRefreshesLru)
{
    InstructionStore is(2);
    is.assignHome({1, 2, 3});
    EXPECT_TRUE(is.access(2));
    EXPECT_TRUE(is.access(1));  // 2 is now LRU... no: 2 older than 1.
    EXPECT_FALSE(is.access(3));
    is.bind(3);                 // Should evict 2.
    EXPECT_TRUE(is.isBound(1));
    EXPECT_FALSE(is.isBound(2));
}

TEST(InstructionStore, NonHomeAccessPanics)
{
    InstructionStore is(2);
    is.assignHome({1});
    EXPECT_THROW(is.access(99), PanicError);
}

TEST(InstructionStore, DuplicateHomePanics)
{
    InstructionStore is(2);
    EXPECT_THROW(is.assignHome({1, 1}), PanicError);
}

} // namespace
} // namespace ws
