/**
 * @file
 * Unit tests for the PE's storage structures: the matching table (cache
 * + in-memory overflow) and the instruction store, plus the TimedQueue
 * primitive they build on.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "network/timed_queue.h"
#include "pe/instruction_store.h"
#include "pe/matching_table.h"

namespace ws {
namespace {

// ---------------------------------------------------------------------
// TimedQueue
// ---------------------------------------------------------------------

TEST(TimedQueue, ReadyRespectsTime)
{
    TimedQueue<int> q;
    q.push(1, 5);
    EXPECT_FALSE(q.ready(4));
    EXPECT_TRUE(q.ready(5));
    EXPECT_TRUE(q.ready(100));
    EXPECT_EQ(q.nextReady(), 5u);
}

TEST(TimedQueue, PopsInReadyThenFifoOrder)
{
    TimedQueue<int> q;
    q.push(1, 10);
    q.push(2, 5);
    q.push(3, 10);
    EXPECT_EQ(q.pop(10), 2);
    EXPECT_EQ(q.pop(10), 1);  // Same ready cycle: insertion order.
    EXPECT_EQ(q.pop(10), 3);
}

TEST(TimedQueue, EmptyNextReadyIsNever)
{
    TimedQueue<int> q;
    EXPECT_EQ(q.nextReady(), kCycleNever);
    EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, InterleavedPushPopStaysOrdered)
{
    TimedQueue<int> q;
    for (int i = 0; i < 50; ++i)
        q.push(i, static_cast<Cycle>(100 - i));
    int last = -1;
    int count = 0;
    for (Cycle t = 0; t <= 100; ++t) {
        while (q.ready(t)) {
            const int v = q.pop(t);
            EXPECT_GT(v, last - 100);  // Just consume.
            ++count;
        }
    }
    EXPECT_EQ(count, 50);
    (void)last;
}

// ---------------------------------------------------------------------
// MatchingTable
// ---------------------------------------------------------------------

Token
tok(InstId inst, std::uint8_t port, WaveNum wave, Value v,
    ThreadId thread = 0)
{
    return Token{Tag{thread, wave}, PortRef{inst, port}, v};
}

TEST(MatchingTable, TwoOperandMatchFires)
{
    MatchingTable mt(16, 2, 1);
    auto r1 = mt.insert(tok(3, 0, 0, 10), 2, 3);
    EXPECT_FALSE(r1.fired);
    EXPECT_EQ(mt.validRows(), 1u);
    auto r2 = mt.insert(tok(3, 1, 0, 20), 2, 3);
    ASSERT_TRUE(r2.fired);
    EXPECT_EQ(r2.fire.ops[0], 10);
    EXPECT_EQ(r2.fire.ops[1], 20);
    EXPECT_FALSE(r2.fire.fromOverflow);
    EXPECT_EQ(mt.validRows(), 0u);  // Fired rows free immediately.
}

TEST(MatchingTable, SingleOperandFiresImmediately)
{
    MatchingTable mt(16, 2, 1);
    auto r = mt.insert(tok(1, 0, 0, 7), 1, 1);
    ASSERT_TRUE(r.fired);
    EXPECT_EQ(r.fire.ops[0], 7);
}

TEST(MatchingTable, ThreeOperandMatch)
{
    MatchingTable mt(16, 2, 1);
    EXPECT_FALSE(mt.insert(tok(2, 0, 0, 1), 3, 2).fired);
    EXPECT_FALSE(mt.insert(tok(2, 2, 0, 3), 3, 2).fired);
    auto r = mt.insert(tok(2, 1, 0, 2), 3, 2);
    ASSERT_TRUE(r.fired);
    EXPECT_EQ(r.fire.ops[0], 1);
    EXPECT_EQ(r.fire.ops[1], 2);
    EXPECT_EQ(r.fire.ops[2], 3);
}

TEST(MatchingTable, DifferentWavesDontMatch)
{
    MatchingTable mt(16, 2, 4);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(0, 1, 1, 2), 2, 0).fired);
    EXPECT_EQ(mt.validRows(), 2u);
}

TEST(MatchingTable, DifferentThreadsDontMatch)
{
    MatchingTable mt(16, 2, 1);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1, 0), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(0, 1, 0, 2, 1), 2, 0).fired);
    EXPECT_EQ(mt.validRows(), 2u);
}

TEST(MatchingTable, ConflictEvictsToOverflowAndStillMatches)
{
    // 1 set x 2 ways: three live instances force an eviction; the
    // evicted instance must still complete, from memory.
    MatchingTable mt(2, 2, 1);
    EXPECT_FALSE(mt.insert(tok(0, 0, 0, 1), 2, 0).fired);
    EXPECT_FALSE(mt.insert(tok(1, 0, 0, 2), 2, 1).fired);
    EXPECT_FALSE(mt.insert(tok(2, 0, 0, 3), 2, 2).fired);  // Evicts LRU.
    EXPECT_EQ(mt.stats().evictedRows, 1u);
    EXPECT_EQ(mt.overflowSize(), 1u);
    // Instance 0 was LRU → now in overflow. Completing it fires from
    // overflow.
    auto r = mt.insert(tok(0, 1, 0, 9), 2, 0);
    ASSERT_TRUE(r.fired);
    EXPECT_TRUE(r.fire.fromOverflow);
    EXPECT_EQ(r.fire.ops[0], 1);
    EXPECT_EQ(r.fire.ops[1], 9);
    EXPECT_EQ(mt.overflowSize(), 0u);
    EXPECT_GE(mt.stats().overflowFires, 1u);
}

TEST(MatchingTable, ZeroMissGuaranteeAtFullProvisioning)
{
    // The paper's matching-table equation: with M = V*k entries and the
    // I*k + (wave mod k) hash, no misses occur for V instructions with
    // up to k waves in flight.
    const unsigned V = 16;
    const unsigned k = 4;
    MatchingTable mt(V * k, 2, k);
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i) {
            mt.insert(tok(i, 0, wave, 1), 2, i);
        }
    }
    EXPECT_EQ(mt.stats().misses, 0u);
    // Complete them all; still no misses.
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i) {
            EXPECT_TRUE(mt.insert(tok(i, 1, wave, 2), 2, i).fired);
        }
    }
    EXPECT_EQ(mt.stats().misses, 0u);
}

TEST(MatchingTable, ZeroMissGuaranteeHoldsForEveryThreadId)
{
    // Regression for the set-index hash: the per-thread offset must be
    // *constant within a thread* so that at M = V*k a single thread's
    // V x k live instances still map injectively onto the table — for
    // any thread id, not just thread 0. (The offset is mix64(thread)
    // now; an input-dependent perturbation would break this.)
    const unsigned V = 16;
    const unsigned k = 4;
    for (ThreadId thread : {ThreadId(0), ThreadId(1), ThreadId(7),
                            ThreadId(63), ThreadId(1000)}) {
        MatchingTable mt(V * k, 2, k);
        for (unsigned wave = 0; wave < k; ++wave) {
            for (unsigned i = 0; i < V; ++i)
                mt.insert(tok(i, 0, wave, 1, thread), 2, i);
        }
        EXPECT_EQ(mt.stats().misses, 0u) << "thread " << thread;
        for (unsigned wave = 0; wave < k; ++wave) {
            for (unsigned i = 0; i < V; ++i)
                EXPECT_TRUE(mt.insert(tok(i, 1, wave, 2, thread), 2,
                                      i).fired);
        }
        EXPECT_EQ(mt.stats().misses, 0u) << "thread " << thread;
    }
}

TEST(MatchingTable, ThreadOffsetIsIdentityForThreadZero)
{
    // Single-threaded programs must see exactly the paper's equation:
    // set = (I*k + wave mod k) mod sets. mix64(0) == 0 guarantees it.
    const unsigned V = 8;
    const unsigned k = 2;
    MatchingTable mt(V * k, 1, k);  // Direct-mapped: layout-sensitive.
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i)
            mt.insert(tok(i, 0, wave, 1, 0), 2, i);
    }
    EXPECT_EQ(mt.stats().misses, 0u);
    EXPECT_EQ(mt.stats().evictedRows, 0u);
}

TEST(MatchingTable, OversubscriptionMissesButCompletes)
{
    // M = V*k/4: conflicts guaranteed, but every match must complete.
    const unsigned V = 16;
    const unsigned k = 4;
    MatchingTable mt(V * k / 4, 2, k);
    unsigned fired = 0;
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i)
            mt.insert(tok(i, 0, wave, 1), 2, i);
    }
    for (unsigned wave = 0; wave < k; ++wave) {
        for (unsigned i = 0; i < V; ++i) {
            if (mt.insert(tok(i, 1, wave, 2), 2, i).fired)
                ++fired;
        }
    }
    EXPECT_EQ(fired, V * k);
    EXPECT_GT(mt.stats().misses, 0u);
}

TEST(MatchingTable, BadGeometryIsFatal)
{
    EXPECT_THROW(MatchingTable(0, 2, 1), FatalError);
    EXPECT_THROW(MatchingTable(15, 2, 1), FatalError);
}

// ---------------------------------------------------------------------
// InstructionStore
// ---------------------------------------------------------------------

TEST(InstructionStore, PreboundWhenHomeFits)
{
    InstructionStore is(4);
    is.assignHome({10, 11, 12});
    EXPECT_TRUE(is.isBound(10));
    EXPECT_TRUE(is.isBound(12));
    EXPECT_TRUE(is.access(11));
    EXPECT_EQ(is.stats().misses, 0u);
}

TEST(InstructionStore, LocalIndicesAreStable)
{
    InstructionStore is(2);
    is.assignHome({20, 21, 22});
    EXPECT_EQ(is.localIdx(20), 0u);
    EXPECT_EQ(is.localIdx(21), 1u);
    EXPECT_EQ(is.localIdx(22), 2u);
}

TEST(InstructionStore, MissAndBindEvictsLru)
{
    InstructionStore is(2);
    is.assignHome({1, 2, 3});
    EXPECT_TRUE(is.access(1));
    EXPECT_TRUE(is.access(2));
    EXPECT_FALSE(is.access(3));   // Miss.
    is.bind(3);                   // Evicts 1 (LRU).
    EXPECT_EQ(is.stats().evictions, 1u);
    EXPECT_TRUE(is.isBound(3));
    EXPECT_TRUE(is.isBound(2));
    EXPECT_FALSE(is.isBound(1));
}

TEST(InstructionStore, AccessRefreshesLru)
{
    InstructionStore is(2);
    is.assignHome({1, 2, 3});
    EXPECT_TRUE(is.access(2));
    EXPECT_TRUE(is.access(1));  // 2 is now LRU... no: 2 older than 1.
    EXPECT_FALSE(is.access(3));
    is.bind(3);                 // Should evict 2.
    EXPECT_TRUE(is.isBound(1));
    EXPECT_FALSE(is.isBound(2));
}

TEST(InstructionStore, NonHomeAccessPanics)
{
    InstructionStore is(2);
    is.assignHome({1});
    EXPECT_THROW(is.access(99), PanicError);
}

TEST(InstructionStore, DuplicateHomePanics)
{
    InstructionStore is(2);
    EXPECT_THROW(is.assignHome({1, 1}), PanicError);
}

} // namespace
} // namespace ws
