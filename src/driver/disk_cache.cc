#include "driver/disk_cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "core/sim_io.h"

namespace fs = std::filesystem;

namespace ws {

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** The record carries its own key so a renamed/truncated-name file can
 *  never masquerade as a different point. */
Json
keyToJson(const SimKey &key)
{
    Json j = Json::object();
    j["graph_fp"] = hex64(key.graphFp);
    j["config_fp"] = hex64(key.configFp);
    j["max_cycles"] = static_cast<std::uint64_t>(key.maxCycles);
    return j;
}

bool
keyMatches(const Json &j, const SimKey &key)
{
    const Json *graph = j.find("graph_fp");
    const Json *config = j.find("config_fp");
    const Json *cycles = j.find("max_cycles");
    return graph != nullptr &&
           graph->type() == Json::Type::kString &&
           graph->asString() == hex64(key.graphFp) &&
           config != nullptr &&
           config->type() == Json::Type::kString &&
           config->asString() == hex64(key.configFp) &&
           cycles != nullptr &&
           cycles->type() == Json::Type::kNumber &&
           cycles->asNumber() ==
               static_cast<double>(key.maxCycles);
}

} // namespace

DiskSimCache::DiskSimCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        fatal("DiskSimCache: cannot create store directory %s: %s",
              dir_.c_str(), ec.message().c_str());
    }
}

std::string
DiskSimCache::recordPath(const SimKey &key) const
{
    const unsigned shard =
        static_cast<unsigned>(SimKeyHash{}(key)) & 0xFF;
    char shard_buf[4];
    std::snprintf(shard_buf, sizeof shard_buf, "%02x", shard);
    return dir_ + "/" + shard_buf + "/" + hex64(key.graphFp) + "-" +
           hex64(key.configFp) + "-" +
           std::to_string(static_cast<unsigned long long>(
               key.maxCycles)) +
           ".json";
}

bool
DiskSimCache::contains(const SimKey &key) const
{
    std::error_code ec;
    return fs::exists(recordPath(key), ec);
}

bool
DiskSimCache::lookup(const SimKey &key, SimResult *out)
{
    const std::string path = recordPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++misses_;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    bool ok = false;
    const Json record = Json::parse(ss.str(), &ok);
    const Json *result_json = nullptr;
    if (ok && record.isObject()) {
        const Json *key_json = record.find("key");
        if (key_json != nullptr && key_json->isObject() &&
            keyMatches(*key_json, key)) {
            result_json = record.find("result");
        }
    }
    if (result_json == nullptr ||
        !simResultFromJson(*result_json, out)) {
        // Corrupt/truncated/mismatched record: a miss, not a crash.
        // The caller re-simulates and the insert overwrites it.
        ++rejected_;
        return false;
    }
    ++hits_;
    return true;
}

void
DiskSimCache::insert(const SimKey &key, const SimResult &result)
{
    const std::string path = recordPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
        ++writeErrors_;
        warn("DiskSimCache: cannot create shard directory for %s: %s",
             path.c_str(), ec.message().c_str());
        return;
    }

    Json record = Json::object();
    record["key"] = keyToJson(key);
    record["result"] = simResultToJson(result);

    // Temp name unique per (process, insert): concurrent writers from
    // any number of processes never collide, and the final rename is
    // atomic on POSIX — readers see a whole record or none.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid() << "."
             << tmpSeq_.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp = tmp_name.str();
    {
        std::ofstream tmp_out(tmp, std::ios::binary | std::ios::trunc);
        if (!tmp_out) {
            ++writeErrors_;
            warn("DiskSimCache: cannot write %s", tmp.c_str());
            return;
        }
        tmp_out << record.dump() << '\n';
        if (!tmp_out) {
            ++writeErrors_;
            warn("DiskSimCache: short write to %s", tmp.c_str());
            tmp_out.close();
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        ++writeErrors_;
        warn("DiskSimCache: cannot rename %s into place: %s",
             tmp.c_str(), ec.message().c_str());
        fs::remove(tmp, ec);
        return;
    }
    ++writes_;
}

DiskCacheStats
DiskSimCache::stats() const
{
    DiskCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.writeErrors = writeErrors_.load(std::memory_order_relaxed);
    return s;
}

} // namespace ws
