#include "driver/sim_cache.h"

#include <mutex>

namespace ws {

void
SimCache::attachDisk(const std::string &dir)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    disk_ = std::make_unique<DiskSimCache>(dir);
}

bool
SimCache::lookup(const Key &key, SimResult *out)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            ++memoryHits_;
            return true;
        }
    }
    if (disk_ != nullptr && disk_->lookup(key, out)) {
        ++diskHits_;
        // Promote: repeats within this process become memory hits.
        std::unique_lock<std::shared_mutex> lock(mutex_);
        map_.emplace(key, *out);
        return true;
    }
    ++misses_;
    return false;
}

void
SimCache::insert(const Key &key, const SimResult &result)
{
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        map_[key] = result;
        ++insertions_;
    }
    if (disk_ != nullptr)
        disk_->insert(key, result);
}

SimCache::Tier
SimCache::probe(const Key &key) const
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        if (map_.count(key) != 0)
            return Tier::kMemory;
    }
    if (disk_ != nullptr && disk_->contains(key))
        return Tier::kDisk;
    return Tier::kNone;
}

std::size_t
SimCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return map_.size();
}

void
SimCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    map_.clear();
}

SimCacheStats
SimCache::stats() const
{
    SimCacheStats s;
    s.memoryHits = memoryHits_.load(std::memory_order_relaxed);
    s.diskHits = diskHits_.load(std::memory_order_relaxed);
    s.hits = s.memoryHits + s.diskHits;
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    if (disk_ != nullptr) {
        const DiskCacheStats d = disk_->stats();
        s.diskWrites = d.writes;
        s.diskRejected = d.rejected;
        s.diskWriteErrors = d.writeErrors;
    }
    return s;
}

} // namespace ws
