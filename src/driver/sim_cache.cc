#include "driver/sim_cache.h"

#include <mutex>

namespace ws {

bool
SimCache::lookup(const Key &key, SimResult *out)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
SimCache::insert(const Key &key, const SimResult &result)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    map_[key] = result;
    ++insertions_;
}

std::size_t
SimCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return map_.size();
}

void
SimCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    map_.clear();
}

SimCacheStats
SimCache::stats() const
{
    SimCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace ws
