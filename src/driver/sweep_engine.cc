#include "driver/sweep_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/log.h"

namespace ws {

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options opts)
    : opts_(std::move(opts)),
      jobs_(opts_.jobs == 0 ? ThreadPool::hardwareJobs() : opts_.jobs)
{
    if (!opts_.cacheDir.empty())
        cache_.attachDisk(opts_.cacheDir);
}

SweepEngine::~SweepEngine() = default;

void
SweepEngine::reportProgress(std::size_t done, std::size_t total,
                            Counter hits)
{
    std::fprintf(stderr, "\r[%s] %zu/%zu done (%llu cached)   ",
                 opts_.label.c_str(), done, total,
                 static_cast<unsigned long long>(hits));
    if (done == total)
        std::fputc('\n', stderr);
    std::fflush(stderr);
}

std::vector<SimResult>
SweepEngine::run(const std::vector<SimJob> &jobs)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<SimResult> results(jobs.size());

    // Pass 1: replay memoized points and collect the rest.
    std::vector<std::size_t> todo;
    Counter batch_hits = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].graph == nullptr)
            fatal("SweepEngine: job %zu has no graph", i);
        if (jobs[i].graphFp != 0) {
            const SimCache::Key key{jobs[i].graphFp,
                                    jobs[i].cfg.fingerprint(),
                                    jobs[i].maxCycles};
            if (cache_.lookup(key, &results[i])) {
                ++batch_hits;
                continue;
            }
        }
        todo.push_back(i);
    }

    // Pass 2: simulate the misses — inline when serial (or trivially
    // small), on the pool otherwise. Writing results[i] by submission
    // index keeps the output order deterministic no matter how the
    // workers interleave.
    auto simulate = [&](std::size_t i) {
        const SimJob &job = jobs[i];
        SimOptions sim_opts;
        sim_opts.maxCycles = job.maxCycles;
        results[i] = runSimulation(*job.graph, job.cfg, sim_opts);
        if (job.graphFp != 0) {
            cache_.insert(SimCache::Key{job.graphFp,
                                        job.cfg.fingerprint(),
                                        job.maxCycles},
                          results[i]);
        }
    };

    const std::size_t total = jobs.size();
    std::atomic<std::size_t> done{total - todo.size()};
    // Report replayed points up front: an all-hits batch would
    // otherwise print nothing (tick() only fires for simulated jobs,
    // so neither the summary line nor its trailing newline appeared),
    // and a mixed batch's first tick would claim the cached points as
    // if the first simulation had completed them. This mirrors
    // runGrouped, where every job — hit or miss — ticks exactly once.
    if (opts_.progress && total > 1 && todo.size() < total)
        reportProgress(total - todo.size(), total, batch_hits);
    std::mutex progress_mutex;
    auto tick = [&] {
        const std::size_t d =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts_.progress && total > 1) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            reportProgress(d, total, batch_hits);
        }
    };

    if (jobs_ <= 1 || todo.size() <= 1) {
        for (std::size_t i : todo) {
            simulate(i);
            tick();
        }
    } else {
        if (pool_ == nullptr)
            pool_ = std::make_unique<ThreadPool>(jobs_);
        parallelFor(*pool_, todo.size(), [&](std::size_t t) {
            simulate(todo[t]);
            tick();
        });
    }

    const auto t1 = std::chrono::steady_clock::now();
    stats_.jobsSubmitted += jobs.size();
    stats_.simulated += todo.size();
    stats_.cacheHits += batch_hits;
    stats_.wallMs +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return results;
}

std::vector<SimResult>
SweepEngine::runGrouped(const std::vector<SimJob> &jobs,
                        const std::vector<std::size_t> &groupEnd,
                        const PruneOptions &prune)
{
    if (groupEnd.empty() || groupEnd.back() != jobs.size())
        fatal("SweepEngine::runGrouped: groupEnd does not cover jobs");
    for (std::size_t gi = 1; gi < groupEnd.size(); ++gi) {
        if (groupEnd[gi] < groupEnd[gi - 1])
            fatal("SweepEngine::runGrouped: groupEnd not ascending");
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<SimResult> results(jobs.size());
    std::atomic<Counter> simulated{0};
    std::atomic<Counter> hits{0};
    std::atomic<Counter> pruned{0};
    std::atomic<Counter> pruneErrors{0};
    std::array<std::atomic<Counter>, kBoundTermCount> prunedByTerm{};

    const std::size_t total = jobs.size();
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    auto tick = [&] {
        const std::size_t d =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts_.progress && total > 1) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            reportProgress(d, total,
                           hits.load(std::memory_order_relaxed));
        }
    };

    // One group: candidates in descending-bound order (deterministic —
    // a pure function of the jobs), so the likely winner simulates
    // first and later candidates face the hardest pruning test. A
    // pruned candidate's true AIPC is <= its bound < the group's best
    // simulated AIPC, so any best-of-group reduction (including
    // first-strict-max tie-breaks over the original candidate order)
    // is unchanged.
    auto processGroup = [&](std::size_t gi) {
        const std::size_t begin = gi == 0 ? 0 : groupEnd[gi - 1];
        const std::size_t end = groupEnd[gi];
        std::vector<std::size_t> order;
        order.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            order.push_back(i);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return jobs[a].staticBound >
                                    jobs[b].staticBound;
                         });

        double best = 0.0;
        for (const std::size_t i : order) {
            const SimJob &job = jobs[i];
            if (job.graph == nullptr)
                fatal("SweepEngine: job %zu has no graph", i);
            if (prune.enabled && job.staticBound > 0.0 &&
                job.staticBound * (1.0 + prune.margin) < best) {
                results[i].pruned = true;
                pruned.fetch_add(1, std::memory_order_relaxed);
                const auto term = static_cast<std::size_t>(job.boundTerm);
                if (term < kBoundTermCount) {
                    prunedByTerm[term].fetch_add(
                        1, std::memory_order_relaxed);
                }
                tick();
                continue;
            }
            bool cached = false;
            SimCache::Key key{};
            if (job.graphFp != 0) {
                key = SimCache::Key{job.graphFp, job.cfg.fingerprint(),
                                    job.maxCycles};
                cached = cache_.lookup(key, &results[i]);
            }
            if (cached) {
                hits.fetch_add(1, std::memory_order_relaxed);
            } else {
                SimOptions sim_opts;
                sim_opts.maxCycles = job.maxCycles;
                results[i] = runSimulation(*job.graph, job.cfg,
                                           sim_opts);
                if (job.graphFp != 0)
                    cache_.insert(key, results[i]);
                simulated.fetch_add(1, std::memory_order_relaxed);
            }
            if (job.staticBound > 0.0 &&
                results[i].aipc > job.staticBound) {
                pruneErrors.fetch_add(1, std::memory_order_relaxed);
            }
            best = std::max(best, results[i].aipc);
            tick();
        }
    };

    if (jobs_ <= 1 || groupEnd.size() <= 1) {
        for (std::size_t gi = 0; gi < groupEnd.size(); ++gi)
            processGroup(gi);
    } else {
        if (pool_ == nullptr)
            pool_ = std::make_unique<ThreadPool>(jobs_);
        parallelFor(*pool_, groupEnd.size(), processGroup);
    }

    const auto t1 = std::chrono::steady_clock::now();
    stats_.jobsSubmitted += jobs.size();
    stats_.simulated += simulated.load();
    stats_.cacheHits += hits.load();
    stats_.pruned += pruned.load();
    stats_.pruneErrors += pruneErrors.load();
    for (std::size_t t = 0; t < kBoundTermCount; ++t)
        stats_.prunedByTerm[t] += prunedByTerm[t].load();
    stats_.wallMs +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return results;
}

SimResult
SweepEngine::runOne(const SimJob &job)
{
    bool saved = opts_.progress;
    opts_.progress = false;  // A single point needs no ticker.
    std::vector<SimResult> r = run({job});
    opts_.progress = saved;
    return std::move(r.front());
}

} // namespace ws
