#include "driver/sweep_engine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/log.h"

namespace ws {

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options opts)
    : opts_(std::move(opts)),
      jobs_(opts_.jobs == 0 ? ThreadPool::hardwareJobs() : opts_.jobs)
{}

SweepEngine::~SweepEngine() = default;

void
SweepEngine::reportProgress(std::size_t done, std::size_t total,
                            Counter hits)
{
    std::fprintf(stderr, "\r[%s] %zu/%zu done (%llu cached)   ",
                 opts_.label.c_str(), done, total,
                 static_cast<unsigned long long>(hits));
    if (done == total)
        std::fputc('\n', stderr);
    std::fflush(stderr);
}

std::vector<SimResult>
SweepEngine::run(const std::vector<SimJob> &jobs)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<SimResult> results(jobs.size());

    // Pass 1: replay memoized points and collect the rest.
    std::vector<std::size_t> todo;
    Counter batch_hits = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].graph == nullptr)
            fatal("SweepEngine: job %zu has no graph", i);
        if (jobs[i].graphFp != 0) {
            const SimCache::Key key{jobs[i].graphFp,
                                    jobs[i].cfg.fingerprint(),
                                    jobs[i].maxCycles};
            if (cache_.lookup(key, &results[i])) {
                ++batch_hits;
                continue;
            }
        }
        todo.push_back(i);
    }

    // Pass 2: simulate the misses — inline when serial (or trivially
    // small), on the pool otherwise. Writing results[i] by submission
    // index keeps the output order deterministic no matter how the
    // workers interleave.
    auto simulate = [&](std::size_t i) {
        const SimJob &job = jobs[i];
        SimOptions sim_opts;
        sim_opts.maxCycles = job.maxCycles;
        results[i] = runSimulation(*job.graph, job.cfg, sim_opts);
        if (job.graphFp != 0) {
            cache_.insert(SimCache::Key{job.graphFp,
                                        job.cfg.fingerprint(),
                                        job.maxCycles},
                          results[i]);
        }
    };

    const std::size_t total = jobs.size();
    std::atomic<std::size_t> done{total - todo.size()};
    std::mutex progress_mutex;
    auto tick = [&] {
        const std::size_t d =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts_.progress && total > 1) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            reportProgress(d, total, batch_hits);
        }
    };

    if (jobs_ <= 1 || todo.size() <= 1) {
        for (std::size_t i : todo) {
            simulate(i);
            tick();
        }
    } else {
        if (pool_ == nullptr)
            pool_ = std::make_unique<ThreadPool>(jobs_);
        parallelFor(*pool_, todo.size(), [&](std::size_t t) {
            simulate(todo[t]);
            tick();
        });
    }

    const auto t1 = std::chrono::steady_clock::now();
    stats_.jobsSubmitted += jobs.size();
    stats_.simulated += todo.size();
    stats_.cacheHits += batch_hits;
    stats_.wallMs +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return results;
}

SimResult
SweepEngine::runOne(const SimJob &job)
{
    bool saved = opts_.progress;
    opts_.progress = false;  // A single point needs no ticker.
    std::vector<SimResult> r = run({job});
    opts_.progress = saved;
    return std::move(r.front());
}

} // namespace ws
