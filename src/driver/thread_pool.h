/**
 * @file
 * A small work-stealing thread pool for the design-space sweep driver.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (cache
 * warmth for task chains submitted from within a task) and steals FIFO
 * from the other workers when its deque runs dry. Tasks are coarse here
 * — whole simulations, milliseconds to seconds each — so the queues use
 * plain mutexes; the work-stealing structure is what keeps all workers
 * busy when per-task runtimes vary by orders of magnitude (a 64-cluster
 * Splash run vs. a 1-cluster Spec run), not lock-freedom.
 *
 * Simulations themselves stay single-threaded and bit-reproducible; the
 * pool only schedules independent Processor runs side by side.
 */

#ifndef WS_DRIVER_THREAD_POOL_H_
#define WS_DRIVER_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ws {

class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 means hardwareJobs(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains remaining work, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one task. Thread-safe; a task may submit further tasks
     * (they land on the submitting worker's own deque and are popped
     * LIFO before it goes stealing).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task (including nested ones) ran. */
    void wait();

    unsigned workers() const { return static_cast<unsigned>(size_); }

    /** Host concurrency with a floor of 1 (hardware_concurrency may
     *  return 0 on exotic platforms). */
    static unsigned hardwareJobs();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool takeTask(std::size_t self, std::function<void()> &out);

    std::size_t size_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex sleepMutex_;             ///< Guards the two CVs below.
    std::condition_variable workCv_;    ///< Workers sleep here.
    std::condition_variable idleCv_;    ///< wait() sleeps here.
    std::atomic<std::size_t> queued_{0};    ///< Tasks not yet taken.
    std::atomic<std::size_t> pending_{0};   ///< Tasks not yet finished.
    std::atomic<std::size_t> nextQueue_{0}; ///< Round-robin submit.
    std::atomic<bool> stop_{false};
};

/**
 * Run fn(0..n-1) on the pool, blocking until all calls finish. Indexes
 * are dealt one at a time through a shared atomic so unequal per-index
 * runtimes balance automatically.
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace ws

#endif // WS_DRIVER_THREAD_POOL_H_
