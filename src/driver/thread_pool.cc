#include "driver/thread_pool.h"

#include <algorithm>

namespace ws {

namespace {

/** Worker index of the current thread, or SIZE_MAX off-pool. The pool
 *  pointer disambiguates nested pools (tests create several). */
thread_local const ThreadPool *tls_pool = nullptr;
thread_local std::size_t tls_worker = SIZE_MAX;

} // namespace

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned workers)
    : size_(workers == 0 ? hardwareJobs() : workers)
{
    queues_.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_.store(true, std::memory_order_relaxed);
        workCv_.notify_all();
    }
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    // A task submitted from inside a worker goes on that worker's own
    // deque (popped LIFO, stolen FIFO by others); external submissions
    // round-robin so the initial batch spreads across all deques.
    std::size_t target;
    if (tls_pool == this && tls_worker < size_) {
        target = tls_worker;
    } else {
        target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                 size_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        workCv_.notify_one();
    }
}

bool
ThreadPool::takeTask(std::size_t self, std::function<void()> &out)
{
    // Own deque first, newest-first.
    {
        WorkerQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    // Steal oldest-first from the others, starting just past self so
    // victims differ across thieves.
    for (std::size_t d = 1; d < size_; ++d) {
        WorkerQueue &q = *queues_[(self + d) % size_];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tls_pool = this;
    tls_worker = self;
    std::function<void()> task;
    for (;;) {
        if (takeTask(self, task)) {
            task();
            task = nullptr;  // Release captures before sleeping.
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(sleepMutex_);
                idleCv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        workCv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   queued_.load(std::memory_order_acquire) != 0;
        });
        if (stop_.load(std::memory_order_relaxed) &&
            queued_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(sleepMutex_);
    idleCv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        std::size_t finished = 0;
    };
    auto shared = std::make_shared<Shared>();
    const std::size_t lanes =
        std::min<std::size_t>(n, pool.workers());
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        pool.submit([shared, n, &fn] {
            std::size_t i;
            while ((i = shared->next.fetch_add(
                        1, std::memory_order_relaxed)) < n) {
                fn(i);
            }
            std::lock_guard<std::mutex> lock(shared->mutex);
            ++shared->finished;
            shared->done.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->done.wait(lock,
                      [&] { return shared->finished == lanes; });
}

} // namespace ws
