/**
 * @file
 * Identity of one simulation point, shared by both tiers of the result
 * cache (the in-memory SimCache and the on-disk DiskSimCache).
 *
 * The key is content-addressed: the graph fingerprint names the
 * program (kernel, threads, scale, seed), the config fingerprint
 * hashes every ProcessorConfig field that can affect the outcome
 * (including checkLevel/alwaysTick/referenceCore), and the cycle
 * budget completes it. Equal keys imply identical simulations — the
 * simulator is deterministic — so invalidation is structural: change
 * any knob and the key changes.
 */

#ifndef WS_DRIVER_SIM_KEY_H_
#define WS_DRIVER_SIM_KEY_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace ws {

struct SimKey
{
    std::uint64_t graphFp = 0;   ///< Program identity (kernel name,
                                 ///  threads, scale, seed...).
    std::uint64_t configFp = 0;  ///< ProcessorConfig::fingerprint().
    Cycle maxCycles = 0;

    bool operator==(const SimKey &) const = default;
};

struct SimKeyHash
{
    std::size_t
    operator()(const SimKey &k) const
    {
        std::uint64_t h = k.graphFp * 0x9e3779b97f4a7c15ULL;
        h ^= k.configFp + (h << 6) + (h >> 2);
        h ^= k.maxCycles + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

} // namespace ws

#endif // WS_DRIVER_SIM_KEY_H_
