/**
 * @file
 * Memoization of completed simulation runs.
 *
 * The paper's evaluation re-visits the same (kernel, configuration,
 * thread-count) points from several angles: runKernelBestThreads probes
 * overlapping candidate sets, Figure 7 re-measures designs Figure 6
 * already ran, and the Table-4 tuning sweep repeats its u=1 baseline.
 * Every simulation is a pure function of (program, configuration, cycle
 * budget) — the simulator is deterministic by construction — so a
 * completed SimResult can be replayed from a cache keyed by the graph's
 * identity fingerprint, the ProcessorConfig fingerprint, and the
 * budget. Changing any configuration field changes the fingerprint and
 * therefore misses: invalidation is structural, not manual.
 *
 * Thread-safe; the sweep engine reads and writes it from all workers.
 */

#ifndef WS_DRIVER_SIM_CACHE_H_
#define WS_DRIVER_SIM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/stats.h"
#include "core/simulator.h"

namespace ws {

struct SimCacheStats
{
    Counter hits = 0;
    Counter misses = 0;
    Counter insertions = 0;
};

class SimCache
{
  public:
    /** Identity of one simulation point. */
    struct Key
    {
        std::uint64_t graphFp = 0;   ///< Program identity (kernel name,
                                     ///  threads, scale, seed...).
        std::uint64_t configFp = 0;  ///< ProcessorConfig::fingerprint().
        Cycle maxCycles = 0;

        bool operator==(const Key &) const = default;
    };

    /** True and fills @p out on a hit; records hit/miss stats. */
    bool lookup(const Key &key, SimResult *out);

    /** Memoize one completed run (last writer wins on a tie). */
    void insert(const Key &key, const SimResult &result);

    std::size_t size() const;
    void clear();
    SimCacheStats stats() const;

  private:
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t h = k.graphFp * 0x9e3779b97f4a7c15ULL;
            h ^= k.configFp + (h << 6) + (h >> 2);
            h ^= k.maxCycles + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    mutable std::shared_mutex mutex_;
    std::unordered_map<Key, SimResult, KeyHash> map_;
    std::atomic<Counter> hits_{0};
    std::atomic<Counter> misses_{0};
    std::atomic<Counter> insertions_{0};
};

} // namespace ws

#endif // WS_DRIVER_SIM_CACHE_H_
