/**
 * @file
 * Two-tier memoization of completed simulation runs.
 *
 * The paper's evaluation re-visits the same (kernel, configuration,
 * thread-count) points from several angles: runKernelBestThreads probes
 * overlapping candidate sets, Figure 7 re-measures designs Figure 6
 * already ran, and the Table-4 tuning sweep repeats its u=1 baseline.
 * Every simulation is a pure function of (program, configuration, cycle
 * budget) — the simulator is deterministic by construction — so a
 * completed SimResult can be replayed from a cache keyed by the graph's
 * identity fingerprint, the ProcessorConfig fingerprint, and the
 * budget (SimKey). Changing any configuration field changes the
 * fingerprint and therefore misses: invalidation is structural, not
 * manual.
 *
 * The cache is a read-through/write-through hierarchy:
 *
 *   memory tier — this process's unordered_map; dies with the process.
 *   disk tier   — optional DiskSimCache attached via attachDisk();
 *                 shared machine-wide across processes, so the second
 *                 harness (or the second run of the same harness) pays
 *                 an O(1) record read instead of an 80 s sweep.
 *
 * lookup() promotes disk hits into the memory tier; insert() writes
 * both. Per-tier hit counters are surfaced so BENCH_sweep.json can
 * report where a sweep's repeats actually came from.
 *
 * Thread-safe; the sweep engine reads and writes it from all workers.
 */

#ifndef WS_DRIVER_SIM_CACHE_H_
#define WS_DRIVER_SIM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/stats.h"
#include "core/simulator.h"
#include "driver/disk_cache.h"
#include "driver/sim_key.h"

namespace ws {

struct SimCacheStats
{
    Counter hits = 0;         ///< memoryHits + diskHits.
    Counter memoryHits = 0;
    Counter diskHits = 0;
    Counter misses = 0;
    Counter insertions = 0;
    Counter diskWrites = 0;
    Counter diskRejected = 0; ///< Corrupt/stale records read as misses.
    Counter diskWriteErrors = 0;
};

class SimCache
{
  public:
    /** Identity of one simulation point (see sim_key.h). */
    using Key = SimKey;

    /** Where a probe would be served from (see probe()). */
    enum class Tier : std::uint8_t
    {
        kNone,    ///< Absent: a lookup would simulate.
        kMemory,
        kDisk,
    };

    /** Attach (creating if needed) the persistent tier rooted at
     *  @p dir. Call before the first lookup; fatal() if the directory
     *  cannot be created. */
    void attachDisk(const std::string &dir);

    /** True when a disk tier is attached. */
    bool hasDisk() const { return disk_ != nullptr; }

    /** The attached disk tier (nullptr when memory-only). */
    const DiskSimCache *disk() const { return disk_.get(); }

    /** True and fills @p out on a hit in either tier; records
     *  per-tier hit/miss stats and promotes disk hits to memory. */
    bool lookup(const Key &key, SimResult *out);

    /** Memoize one completed run in every tier (last writer wins). */
    void insert(const Key &key, const SimResult &result);

    /** Which tier currently holds @p key, without touching stats or
     *  promoting — wsa-serve labels result provenance with this. */
    Tier probe(const Key &key) const;

    /** Memory-tier entry count. */
    std::size_t size() const;

    /** Drop the memory tier (the disk tier, if any, is untouched). */
    void clear();

    SimCacheStats stats() const;

  private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<Key, SimResult, SimKeyHash> map_;
    std::unique_ptr<DiskSimCache> disk_;
    std::atomic<Counter> memoryHits_{0};
    std::atomic<Counter> diskHits_{0};
    std::atomic<Counter> misses_{0};
    std::atomic<Counter> insertions_{0};
};

} // namespace ws

#endif // WS_DRIVER_SIM_CACHE_H_
