/**
 * @file
 * Content-addressed on-disk store of completed simulation results.
 *
 * One JSON record per (graph, config, budget) point, laid out as
 *
 *     <dir>/<ss>/<graphFp>-<configFp>-<maxCycles>.json
 *
 * where <ss> is a two-hex-digit shard derived from the key hash (256
 * shards keep directory listings small at fleet scale). Records are
 * written to a process/sequence-unique temp file in the shard
 * directory and atomically renamed into place, so any number of
 * concurrent writer processes sharing one store stay safe: readers
 * see either the complete old record or the complete new one, never a
 * torn write, and last writer wins on a tie (both wrote the same
 * deterministic result).
 *
 * Reads are forgiving where writes are strict: a missing file is a
 * plain miss, and a corrupt, truncated, or mismatched record (version
 * bump, hand-edited key) is a *counted* miss, never a crash — the
 * caller simply re-simulates and overwrites it.
 */

#ifndef WS_DRIVER_DISK_CACHE_H_
#define WS_DRIVER_DISK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/stats.h"
#include "core/simulator.h"
#include "driver/sim_key.h"

namespace ws {

struct DiskCacheStats
{
    Counter hits = 0;
    Counter misses = 0;      ///< Record absent.
    Counter rejected = 0;    ///< Record present but unusable (corrupt,
                             ///  truncated, version/key mismatch).
    Counter writes = 0;
    Counter writeErrors = 0; ///< Failed temp write/rename (disk full,
                             ///  permissions); warned, never fatal.
};

class DiskSimCache
{
  public:
    /** Opens (creating if needed) the store rooted at @p dir. */
    explicit DiskSimCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** True and fills @p out on a usable record; counts stats. */
    bool lookup(const SimKey &key, SimResult *out);

    /** True when a record file exists (no parse, no stats) — the
     *  tier probe wsa-serve uses to label result provenance. */
    bool contains(const SimKey &key) const;

    /** Persist one completed run via temp file + atomic rename. */
    void insert(const SimKey &key, const SimResult &result);

    /** Full path of the record for @p key (exposed for tests that
     *  corrupt/truncate records on purpose). */
    std::string recordPath(const SimKey &key) const;

    DiskCacheStats stats() const;

  private:
    std::string dir_;
    std::atomic<Counter> hits_{0};
    std::atomic<Counter> misses_{0};
    std::atomic<Counter> rejected_{0};
    std::atomic<Counter> writes_{0};
    std::atomic<Counter> writeErrors_{0};
    std::atomic<std::uint64_t> tmpSeq_{0};  ///< Unique temp names
                                            ///  within this process.
};

} // namespace ws

#endif // WS_DRIVER_DISK_CACHE_H_
