#include "driver/static_prune.h"

namespace ws {

namespace {

/** FNV-1a over the facts a PlacedProfile depends on. Zero is reserved
 *  as the "memoization off" sentinel, so it never collides with a real
 *  key (the hash is remapped away from zero). */
std::uint64_t
placementKey(const ProcessorConfig &cfg)
{
    const TransitFloors floors = transitFloors(cfg);
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(cfg.clusters);
    mix(cfg.domainsPerCluster);
    mix(cfg.pesPerDomain);
    mix(cfg.pe.instStoreEntries);
    mix(static_cast<std::uint64_t>(cfg.placement));
    mix(cfg.seed);
    mix(floors.podBypass ? 1 : 0);
    mix(static_cast<std::uint64_t>(floors.domain));
    mix(static_cast<std::uint64_t>(floors.cluster));
    mix(static_cast<std::uint64_t>(floors.grid));
    return h == 0 ? 1 : h;
}

} // namespace

MachineBoundParams
boundParams(const ProcessorConfig &cfg)
{
    MachineBoundParams m;
    m.totalPes = static_cast<double>(cfg.totalPes());
    m.sbIssueWidth = static_cast<double>(cfg.storeBuffer.issueWidth);
    m.podBypass = cfg.pe.podBypass;
    m.matchingEntries = static_cast<double>(cfg.pe.matchingEntries);
    m.outputQueueEntries =
        static_cast<double>(cfg.pe.outputQueueEntries);
    m.waveWindow = static_cast<double>(cfg.pe.k);
    return m;
}

TransitFloors
transitFloors(const ProcessorConfig &cfg)
{
    TransitFloors f;
    f.podBypass = cfg.pe.podBypass;
    f.domain = static_cast<double>(cfg.lat.domainBus);
    f.cluster = static_cast<double>(cfg.lat.toPseudoPe) +
                static_cast<double>(cfg.lat.clusterLink) +
                static_cast<double>(cfg.lat.fromPseudoPe);
    f.grid = static_cast<double>(cfg.lat.toPseudoPe) +
             static_cast<double>(cfg.lat.netInject) +
             static_cast<double>(cfg.lat.fromPseudoPe) + 1.0;
    return f;
}

double
staticAipcBound(const StaticProfile &profile, const ProcessorConfig &cfg)
{
    return staticAipcBound(profile, boundParams(cfg));
}

std::shared_ptr<const StaticProfile>
ProfileCache::profileFor(const DataflowGraph &graph,
                         std::uint64_t graphFp)
{
    if (graphFp == 0) {
        return std::make_shared<const StaticProfile>(
            analyzeGraph(graph));
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(graphFp);
        if (it != map_.end())
            return it->second;
    }
    // Analyze outside the lock; a racing duplicate analysis is
    // harmless (profiles are deterministic) and first-in wins.
    auto profile =
        std::make_shared<const StaticProfile>(analyzeGraph(graph));
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = map_.emplace(graphFp, std::move(profile));
    return it->second;
}

std::shared_ptr<const PlacedProfile>
ProfileCache::placedFor(const DataflowGraph &graph, std::uint64_t graphFp,
                        const ProcessorConfig &cfg)
{
    const std::uint64_t key = placementKey(cfg);
    if (graphFp != 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = placed_.find({graphFp, key});
        if (it != placed_.end())
            return it->second;
    }
    // Reproduce Processor's placement exactly: same geometry, policy,
    // and seed, so the bound reasons about the very homes the
    // simulation will use.
    const Placement placement = place(graph, cfg.placementGeometry(),
                                      cfg.placement, cfg.seed);
    auto placed = std::make_shared<const PlacedProfile>(
        analyzePlacedProfile(graph, placement, transitFloors(cfg)));
    if (graphFp == 0)
        return placed;
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] =
        placed_.emplace(std::make_pair(graphFp, key), std::move(placed));
    return it->second;
}

BoundBreakdown
ProfileCache::boundFor(const DataflowGraph &graph, std::uint64_t graphFp,
                       const ProcessorConfig &cfg)
{
    const auto profile = profileFor(graph, graphFp);
    const auto placed = placedFor(graph, graphFp, cfg);
    return staticAipcBoundDetail(*profile, *placed, boundParams(cfg));
}

std::size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
ProfileCache::placedSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return placed_.size();
}

} // namespace ws
