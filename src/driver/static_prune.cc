#include "driver/static_prune.h"

namespace ws {

MachineBoundParams
boundParams(const ProcessorConfig &cfg)
{
    MachineBoundParams m;
    m.totalPes = static_cast<double>(cfg.totalPes());
    m.sbIssueWidth = static_cast<double>(cfg.storeBuffer.issueWidth);
    return m;
}

double
staticAipcBound(const StaticProfile &profile, const ProcessorConfig &cfg)
{
    return staticAipcBound(profile, boundParams(cfg));
}

std::shared_ptr<const StaticProfile>
ProfileCache::profileFor(const DataflowGraph &graph,
                         std::uint64_t graphFp)
{
    if (graphFp == 0) {
        return std::make_shared<const StaticProfile>(
            analyzeGraph(graph));
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(graphFp);
        if (it != map_.end())
            return it->second;
    }
    // Analyze outside the lock; a racing duplicate analysis is
    // harmless (profiles are deterministic) and first-in wins.
    auto profile =
        std::make_shared<const StaticProfile>(analyzeGraph(graph));
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = map_.emplace(graphFp, std::move(profile));
    return it->second;
}

std::size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

} // namespace ws
