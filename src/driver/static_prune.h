/**
 * @file
 * Bridge between the static analyzer and the sweep driver: turns a
 * ProcessorConfig into the machine summary and transit floors the
 * resource bound consumes (ws_analyze deliberately does not depend on
 * ws_core), and memoizes both StaticProfiles (by graph fingerprint)
 * and PlacedProfiles (by graph x placement-relevant config) so a sweep
 * over N configurations analyzes each program once per distinct
 * placement, not N times.
 */

#ifndef WS_DRIVER_STATIC_PRUNE_H_
#define WS_DRIVER_STATIC_PRUNE_H_

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "analyze/profile.h"
#include "core/config.h"

namespace ws {

/** Machine summary of @p cfg for the static AIPC bound. */
MachineBoundParams boundParams(const ProcessorConfig &cfg);

/**
 * Transit floors of @p cfg's delivery paths: the minimum extra cycles
 * between a producer's dispatch and a consumer's dispatch at each
 * placement span, on top of the producer's execute latency. Derived as
 * sound UNDER-estimates of the simulator's pipelines — each floor drops
 * at least the per-stage arbitration and queueing delays, so no
 * placement can deliver faster than the floor claims:
 *   domain   = domainBus (skips the output-queue drain cycle);
 *   cluster  = toPseudoPe + clusterLink + fromPseudoPe (skips the NET
 *              pseudo-PE injection-rate arbitration and netInject hop);
 *   grid     = toPseudoPe + netInject + fromPseudoPe + 1 mesh hop
 *              (skips the return-side cluster switch and any extra
 *              hops).
 */
TransitFloors transitFloors(const ProcessorConfig &cfg);

/** staticAipcBound() against a full processor configuration
 *  (placement-free: no occupancy, transit, or SB-sharing terms). */
double staticAipcBound(const StaticProfile &profile,
                       const ProcessorConfig &cfg);

/**
 * Fingerprint-keyed profile memo (thread-safe). The fingerprint
 * contract matches SimCache: same fingerprint, same program. The
 * second level memoizes placement-resolved profiles per distinct
 * (geometry, policy, seed, bypass, floors) — the only configuration
 * facts a PlacedProfile depends on — so a sweep that varies matching
 * tables or store buffers at fixed geometry re-places nothing.
 */
class ProfileCache
{
  public:
    /** Analyze @p graph (once per fingerprint) and return the profile.
     *  A zero fingerprint disables memoization. */
    std::shared_ptr<const StaticProfile>
    profileFor(const DataflowGraph &graph, std::uint64_t graphFp);

    /** Place @p graph exactly as Processor would under @p cfg and
     *  return the placement-resolved profile (memoized alongside). */
    std::shared_ptr<const PlacedProfile>
    placedFor(const DataflowGraph &graph, std::uint64_t graphFp,
              const ProcessorConfig &cfg);

    /**
     * The placement-resolved resource bound of @p graph under @p cfg,
     * with per-constraint attribution: the sweep engine's pruning
     * predicate and the harness twins' `bound` object.
     */
    BoundBreakdown boundFor(const DataflowGraph &graph,
                            std::uint64_t graphFp,
                            const ProcessorConfig &cfg);

    std::size_t size() const;
    std::size_t placedSize() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::uint64_t, std::shared_ptr<const StaticProfile>> map_;
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const PlacedProfile>>
        placed_;
};

} // namespace ws

#endif // WS_DRIVER_STATIC_PRUNE_H_
