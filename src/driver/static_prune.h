/**
 * @file
 * Bridge between the static analyzer and the sweep driver: turns a
 * ProcessorConfig into the machine summary staticAipcBound() consumes
 * (ws_analyze deliberately does not depend on ws_core), and memoizes
 * StaticProfiles by graph fingerprint so a sweep over N configurations
 * analyzes each program once, not N times.
 */

#ifndef WS_DRIVER_STATIC_PRUNE_H_
#define WS_DRIVER_STATIC_PRUNE_H_

#include <map>
#include <memory>
#include <mutex>

#include "analyze/profile.h"
#include "core/config.h"

namespace ws {

/** Machine summary of @p cfg for the static AIPC bound. */
MachineBoundParams boundParams(const ProcessorConfig &cfg);

/** staticAipcBound() against a full processor configuration. */
double staticAipcBound(const StaticProfile &profile,
                       const ProcessorConfig &cfg);

/**
 * Fingerprint-keyed StaticProfile memo (thread-safe). The fingerprint
 * contract matches SimCache: same fingerprint, same program.
 */
class ProfileCache
{
  public:
    /** Analyze @p graph (once per fingerprint) and return the profile.
     *  A zero fingerprint disables memoization. */
    std::shared_ptr<const StaticProfile>
    profileFor(const DataflowGraph &graph, std::uint64_t graphFp);

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::uint64_t, std::shared_ptr<const StaticProfile>> map_;
};

} // namespace ws

#endif // WS_DRIVER_STATIC_PRUNE_H_
