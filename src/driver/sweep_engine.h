/**
 * @file
 * The design-space sweep engine: runs batches of independent
 * (program, configuration, cycle-budget) simulations concurrently on a
 * work-stealing thread pool, memoizes completed runs in a SimCache, and
 * returns results in deterministic submission order regardless of
 * worker interleaving.
 *
 * Every simulation stays single-threaded and bit-reproducible; the
 * engine only exploits the independence of the paper's evaluation
 * points (~41 designs x 3 suites x a per-design thread search), so a
 * batch at --jobs=8 produces byte-identical results to --jobs=1.
 */

#ifndef WS_DRIVER_SWEEP_ENGINE_H_
#define WS_DRIVER_SWEEP_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "analyze/profile.h"
#include "core/simulator.h"
#include "driver/sim_cache.h"
#include "driver/thread_pool.h"
#include "isa/graph.h"

namespace ws {

/** One simulation point. Graphs are shared (read-only) across jobs so a
 *  batch over N designs builds each kernel once, not N times. */
struct SimJob
{
    std::shared_ptr<const DataflowGraph> graph;
    ProcessorConfig cfg;
    Cycle maxCycles = 2'000'000;

    /**
     * Identity of the program for memoization (e.g. a hash of kernel
     * name + build parameters). 0 disables caching for this job —
     * correct-by-default for callers that cannot fingerprint their
     * graph, at the cost of re-simulating.
     */
    std::uint64_t graphFp = 0;

    /**
     * Static upper bound on this job's achievable AIPC (see
     * analyze/profile.h), used only by runGrouped() pruning. 0 means
     * unknown — the job is then never pruned.
     */
    double staticBound = 0.0;

    /** Constraint that set staticBound (prune attribution; kNone when
     *  the bound is unknown). */
    BoundTerm boundTerm = BoundTerm::kNone;
};

/** Cumulative engine statistics across run() batches. */
struct SweepStats
{
    Counter jobsSubmitted = 0;
    Counter simulated = 0;     ///< Actually executed (cache misses).
    Counter cacheHits = 0;
    Counter pruned = 0;        ///< Skipped: static bound below the
                               ///  group's best simulated AIPC.
    Counter pruneErrors = 0;   ///< Simulated AIPC exceeded its own
                               ///  static bound (bound too tight).
    /** pruned, attributed to the constraint that set each pruned job's
     *  bound (indexed by BoundTerm; sums to pruned). */
    std::array<Counter, kBoundTermCount> prunedByTerm{};
    double wallMs = 0.0;       ///< Wall-clock spent inside run().
};

class SweepEngine
{
  public:
    struct Options
    {
        unsigned jobs = 0;      ///< Worker threads; 0 = hardware.
        bool progress = true;   ///< Live completion ticker on stderr.
        std::string label = "sweep";
        /** Root of the persistent result store shared across processes
         *  (driver/disk_cache). Empty = memory-only memoization. */
        std::string cacheDir;
    };

    SweepEngine();
    explicit SweepEngine(Options opts);
    ~SweepEngine();

    /**
     * Run every job (skipping cached points) and return results indexed
     * exactly like @p jobs. Safe to call repeatedly; the cache persists
     * across batches.
     */
    std::vector<SimResult> run(const std::vector<SimJob> &jobs);

    /** Convenience wrapper for a single point. */
    SimResult runOne(const SimJob &job);

    /** Bound-based pruning policy for runGrouped(). */
    struct PruneOptions
    {
        bool enabled = false;

        /**
         * Safety margin: a candidate is skipped only when
         * bound * (1 + margin) < best-so-far. The bound is an upper
         * estimate with documented approximations (ARCHITECTURE.md
         * §8), so the margin buys slack; prune decisions stay
         * deterministic because bounds are pure functions of the job.
         */
        double margin = 0.25;
    };

    /**
     * Run jobs partitioned into reduction groups: @p groupEnd holds the
     * exclusive end index of each group (ascending; last == jobs.size()).
     * Groups run concurrently, but within a group candidates run in
     * bound order (best first) so that, when pruning is enabled, a
     * candidate whose staticBound cannot beat the group's best already
     * simulated AIPC is skipped: its result has pruned = true and zero
     * AIPC. Skipping is sound for best-of-group reductions — a pruned
     * candidate's true AIPC is strictly below the group's maximum — and
     * with pruning disabled results are identical to run(). Results are
     * indexed exactly like @p jobs either way.
     */
    std::vector<SimResult> runGrouped(
        const std::vector<SimJob> &jobs,
        const std::vector<std::size_t> &groupEnd,
        const PruneOptions &prune);

    SimCache &cache() { return cache_; }
    const SweepStats &stats() const { return stats_; }
    unsigned jobs() const { return jobs_; }

  private:
    void reportProgress(std::size_t done, std::size_t total,
                        Counter hits);

    Options opts_;
    unsigned jobs_;
    std::unique_ptr<ThreadPool> pool_;  ///< Lazily built, only if jobs>1.
    SimCache cache_;
    SweepStats stats_;
};

} // namespace ws

#endif // WS_DRIVER_SWEEP_ENGINE_H_
