/**
 * @file
 * Instruction placement: binding static instructions to processing
 * elements (paper §3.1 and the placement work it cites [7, 8]).
 *
 * Placement determines communication locality — the dominant factor in
 * Figure 8's traffic distribution — and which cluster's store buffer
 * owns each thread's wave ordering. Three policies are provided:
 *
 *  - kDepthFirst ("snake"): walk each thread's dataflow graph depth-
 *    first from its inputs and pack connected instructions into the same
 *    PE, pod, domain, and cluster before spilling into the next. This is
 *    the production policy, standing in for the paper's locality-aware
 *    placer; threads are laid out in disjoint portions of the die.
 *  - kBreadthFirst: level-order packing; keeps siblings together but
 *    splits producer-consumer chains more often (ablation baseline).
 *  - kRandom: uniformly random PE per instruction (worst-case baseline).
 */

#ifndef WS_PLACE_PLACEMENT_H_
#define WS_PLACE_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/graph.h"

namespace ws {

enum class PlacementPolicy : std::uint8_t
{
    kDepthFirst,
    kBreadthFirst,
    kRandom,
    kDepthFirstRefined,  ///< Depth-first packing + greedy move refinement.
};

/** Human-readable policy name. */
const char *placementPolicyName(PlacementPolicy policy);

/** Geometry of the machine placement targets. */
struct PlacementGeometry
{
    std::uint16_t clusters = 1;
    std::uint16_t domainsPerCluster = 4;
    std::uint16_t pesPerDomain = 8;
    std::uint16_t peCapacity = 128;   ///< Virtualization degree V.

    std::uint32_t
    totalPes() const
    {
        return static_cast<std::uint32_t>(clusters) * domainsPerCluster *
               pesPerDomain;
    }

    std::uint64_t
    totalCapacity() const
    {
        return static_cast<std::uint64_t>(totalPes()) * peCapacity;
    }
};

/**
 * Census of graph edges by the smallest hardware level spanning both
 * endpoints. Buckets are disjoint and sum to total: an intra-PE edge is
 * not also counted as intra-pod. Cheap enough to recompute per placement;
 * the analyzer's locality pass and Placement::edgeLocality() both derive
 * their ratios from this one count.
 */
struct EdgeSpanCounts
{
    std::uint64_t total = 0;
    std::uint64_t intraPe = 0;       ///< Producer and consumer share a PE.
    std::uint64_t intraPod = 0;      ///< Same pod, different PE (bypass).
    std::uint64_t intraDomain = 0;   ///< Same domain, different pod.
    std::uint64_t intraCluster = 0;  ///< Same cluster, different domain.
    std::uint64_t interCluster = 0;  ///< Crosses the cluster grid.
    std::uint64_t weightedCost = 0;  ///< Sum of edgeCost() over all edges.

    /** Fraction local at @p level: 0 PE, 1 pod, 2 domain, 3+ cluster. */
    double localFraction(int level) const;
};

/** The result: a home PE for every static instruction. */
class Placement
{
  public:
    Placement(const PlacementGeometry &geom, std::size_t num_insts)
        : geom_(geom), homes_(num_insts)
    {}

    const PlacementGeometry &geometry() const { return geom_; }

    PeCoord home(InstId id) const { return homes_.at(id); }
    void setHome(InstId id, PeCoord pe) { homes_.at(id) = pe; }
    std::size_t size() const { return homes_.size(); }

    /** Cluster whose store buffer owns thread @p t's wave ordering. */
    ClusterId threadHomeCluster(ThreadId t) const
    {
        return threadHomes_.at(t);
    }
    void
    setThreadHome(ThreadId t, ClusterId c)
    {
        if (threadHomes_.size() <= t)
            threadHomes_.resize(t + 1, 0);
        threadHomes_[t] = c;
    }

    /** Number of instructions assigned to each PE (diagnostics). */
    std::vector<std::uint32_t> loadPerPe() const;

    /** Classify every graph edge by the hardware level it spans. */
    EdgeSpanCounts edgeSpans(const DataflowGraph &graph) const;

    /** Fraction of graph edges whose endpoints share a PE/domain/cluster. */
    double edgeLocality(const DataflowGraph &graph, int level) const;

  private:
    PlacementGeometry geom_;
    std::vector<PeCoord> homes_;
    std::vector<ClusterId> threadHomes_;
};

/**
 * Place @p graph onto the machine described by @p geom.
 *
 * Oversubscription is legal: a PE may be assigned more instructions
 * than its instruction-store capacity, in which case the instruction
 * store thrashes at run time (dynamic binding; paper §3.1). fatal()s
 * only if the graph exceeds total machine capacity by more than the
 * oversubscription limit of 4x.
 */
Placement place(const DataflowGraph &graph, const PlacementGeometry &geom,
                PlacementPolicy policy, std::uint64_t seed = 1);

/**
 * Greedy refinement pass (the spirit of the placement work the paper
 * cites [7, 8]): repeatedly move instructions toward the PE where their
 * producers/consumers live, when capacity allows and the move lowers
 * the hierarchical communication cost (pod 1, domain 2, cluster 4,
 * grid 8 + hop distance). Runs @p sweeps passes over all instructions;
 * returns the number of accepted moves.
 */
std::size_t refinePlacement(Placement &placement,
                            const DataflowGraph &graph,
                            unsigned sweeps = 2);

/** Hierarchical communication cost of one edge (see refinePlacement). */
double edgeCost(const PeCoord &src, const PeCoord &dst,
                const PlacementGeometry &geom);

} // namespace ws

#endif // WS_PLACE_PLACEMENT_H_
