#include "place/placement.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::kDepthFirst: return "depth-first";
      case PlacementPolicy::kBreadthFirst: return "breadth-first";
      case PlacementPolicy::kRandom: return "random";
      case PlacementPolicy::kDepthFirstRefined:
        return "depth-first+refine";
    }
    return "unknown";
}

std::vector<std::uint32_t>
Placement::loadPerPe() const
{
    std::vector<std::uint32_t> load(geom_.totalPes(), 0);
    for (const PeCoord &pe : homes_) {
        const std::size_t idx =
            (static_cast<std::size_t>(pe.cluster) * geom_.domainsPerCluster +
             pe.domain) *
                geom_.pesPerDomain +
            pe.pe;
        ++load[idx];
    }
    return load;
}

double
EdgeSpanCounts::localFraction(int level) const
{
    if (total == 0)
        return 1.0;
    std::uint64_t local = intraPe;
    if (level >= 1)
        local += intraPod;
    if (level >= 2)
        local += intraDomain;
    if (level >= 3)
        local += intraCluster;
    return static_cast<double>(local) / static_cast<double>(total);
}

EdgeSpanCounts
Placement::edgeSpans(const DataflowGraph &graph) const
{
    EdgeSpanCounts spans;
    for (InstId i = 0; i < graph.size(); ++i) {
        const PeCoord src = home(i);
        for (const auto &side : graph.inst(i).outs) {
            for (const PortRef &out : side) {
                const PeCoord dst = home(out.inst);
                ++spans.total;
                spans.weightedCost += static_cast<std::uint64_t>(
                    edgeCost(src, dst, geom_));
                if (src == dst)
                    ++spans.intraPe;
                else if (src.sameDomain(dst) && src.pe / 2 == dst.pe / 2)
                    ++spans.intraPod;
                else if (src.sameDomain(dst))
                    ++spans.intraDomain;
                else if (src.sameCluster(dst))
                    ++spans.intraCluster;
                else
                    ++spans.interCluster;
            }
        }
    }
    return spans;
}

double
Placement::edgeLocality(const DataflowGraph &graph, int level) const
{
    return edgeSpans(graph).localFraction(level);
}

namespace {

/** Linear PE index → hierarchical coordinate. */
PeCoord
coordOf(std::uint32_t idx, const PlacementGeometry &geom)
{
    PeCoord c;
    c.pe = static_cast<PeId>(idx % geom.pesPerDomain);
    idx /= geom.pesPerDomain;
    c.domain = static_cast<DomainId>(idx % geom.domainsPerCluster);
    idx /= geom.domainsPerCluster;
    c.cluster = static_cast<ClusterId>(idx);
    return c;
}

/** Instruction visit order for one thread under the given policy. */
std::vector<InstId>
visitOrder(const DataflowGraph &graph, ThreadId t, PlacementPolicy policy,
           Rng &rng)
{
    // Gather this thread's instructions and its entry points (targets of
    // initial tokens); fall back to the lowest-numbered instruction so
    // disconnected pieces still get visited.
    std::vector<InstId> members;
    for (InstId i = 0; i < graph.size(); ++i) {
        if (graph.inst(i).thread == t)
            members.push_back(i);
    }
    if (members.empty())
        return members;
    if (policy == PlacementPolicy::kRandom) {
        // Order is irrelevant for random placement.
        return members;
    }

    std::vector<bool> seen(graph.size(), false);
    std::vector<InstId> order;
    order.reserve(members.size());

    std::vector<InstId> roots;
    for (const Token &tok : graph.initialTokens()) {
        if (tok.tag.thread == t)
            roots.push_back(tok.dst.inst);
    }
    for (InstId m : members)
        roots.push_back(m);  // Fallback coverage for disconnected nodes.

    if (policy == PlacementPolicy::kDepthFirst) {
        std::vector<InstId> stack;
        for (InstId root : roots) {
            if (seen[root])
                continue;
            stack.push_back(root);
            while (!stack.empty()) {
                const InstId cur = stack.back();
                stack.pop_back();
                if (seen[cur] || graph.inst(cur).thread != t)
                    continue;
                seen[cur] = true;
                order.push_back(cur);
                const Instruction &inst = graph.inst(cur);
                for (int side = 1; side >= 0; --side) {
                    const auto &outs = inst.outs[side];
                    for (auto it = outs.rbegin(); it != outs.rend(); ++it)
                        stack.push_back(it->inst);
                }
            }
        }
    } else {
        std::deque<InstId> queue;
        for (InstId root : roots) {
            if (seen[root] || graph.inst(root).thread != t)
                continue;
            seen[root] = true;
            queue.push_back(root);
            while (!queue.empty()) {
                const InstId cur = queue.front();
                queue.pop_front();
                order.push_back(cur);
                const Instruction &inst = graph.inst(cur);
                for (int side = 0; side < 2; ++side) {
                    for (const PortRef &out : inst.outs[side]) {
                        if (!seen[out.inst] &&
                            graph.inst(out.inst).thread == t) {
                            seen[out.inst] = true;
                            queue.push_back(out.inst);
                        }
                    }
                }
            }
        }
    }
    (void)rng;
    return order;
}

} // namespace

double
edgeCost(const PeCoord &src, const PeCoord &dst,
         const PlacementGeometry &geom)
{
    if (src == dst)
        return 0.0;
    if (src.sameDomain(dst) && src.pe / 2 == dst.pe / 2)
        return 1.0;   // Pod bypass.
    if (src.sameDomain(dst))
        return 2.0;   // Intra-domain bus.
    if (src.sameCluster(dst))
        return 4.0;   // Intra-cluster network.
    // Grid: 8 plus Manhattan hop distance on the cluster grid.
    const int w = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(geom.clusters))));
    const int sx = src.cluster % w;
    const int sy = src.cluster / w;
    const int dx = dst.cluster % w;
    const int dy = dst.cluster / w;
    return 8.0 + std::abs(sx - dx) + std::abs(sy - dy);
}

std::size_t
refinePlacement(Placement &placement, const DataflowGraph &graph,
                unsigned sweeps)
{
    const PlacementGeometry &geom = placement.geometry();
    const std::uint32_t total_pes = geom.totalPes();
    auto pe_index = [&](const PeCoord &pe) {
        return (static_cast<std::size_t>(pe.cluster) *
                    geom.domainsPerCluster +
                pe.domain) *
                   geom.pesPerDomain +
               pe.pe;
    };

    // Build the undirected neighbour lists once (producers + consumers).
    std::vector<std::vector<InstId>> neighbours(graph.size());
    for (InstId i = 0; i < graph.size(); ++i) {
        for (int side = 0; side < 2; ++side) {
            for (const PortRef &out : graph.inst(i).outs[side]) {
                neighbours[i].push_back(out.inst);
                neighbours[out.inst].push_back(i);
            }
        }
    }

    std::vector<std::uint32_t> load = placement.loadPerPe();
    std::size_t moves = 0;
    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
        bool progress = false;
        for (InstId i = 0; i < graph.size(); ++i) {
            if (neighbours[i].empty())
                continue;
            const PeCoord cur = placement.home(i);
            auto cost_at = [&](const PeCoord &pe) {
                double c = 0.0;
                for (InstId n : neighbours[i])
                    c += edgeCost(pe, placement.home(n), geom);
                return c;
            };
            const double cur_cost = cost_at(cur);
            // Candidate targets: the homes of this instruction's
            // neighbours (moving next to one of them is the only move
            // that can help).
            PeCoord best = cur;
            double best_cost = cur_cost;
            for (InstId n : neighbours[i]) {
                const PeCoord cand = placement.home(n);
                if (cand == best || load[pe_index(cand)] >=
                                        geom.peCapacity) {
                    continue;
                }
                const double c = cost_at(cand);
                if (c < best_cost) {
                    best_cost = c;
                    best = cand;
                }
            }
            if (!(best == cur)) {
                --load[pe_index(cur)];
                ++load[pe_index(best)];
                placement.setHome(i, best);
                ++moves;
                progress = true;
            }
        }
        if (!progress)
            break;
    }
    (void)total_pes;
    return moves;
}

Placement
place(const DataflowGraph &graph, const PlacementGeometry &geom,
      PlacementPolicy policy, std::uint64_t seed)
{
    const std::uint32_t total_pes = geom.totalPes();
    if (total_pes == 0)
        fatal("place: machine has no PEs");
    if (graph.size() > geom.totalCapacity() * 4) {
        fatal("place: graph '%s' (%zu instructions) exceeds 4x machine "
              "capacity (%llu)", graph.name().c_str(), graph.size(),
              static_cast<unsigned long long>(geom.totalCapacity()));
    }

    if (policy == PlacementPolicy::kDepthFirstRefined) {
        Placement refined =
            place(graph, geom, PlacementPolicy::kDepthFirst, seed);
        refinePlacement(refined, graph);
        return refined;
    }

    Placement result(geom, graph.size());
    Rng rng(seed);

    if (policy == PlacementPolicy::kRandom) {
        for (InstId i = 0; i < graph.size(); ++i) {
            result.setHome(
                i, coordOf(static_cast<std::uint32_t>(rng.range(total_pes)),
                           geom));
        }
        // Thread homes: cluster of the thread's first instruction.
        for (ThreadId t = 0; t < graph.numThreads(); ++t) {
            ClusterId home = 0;
            for (InstId i = 0; i < graph.size(); ++i) {
                if (graph.inst(i).thread == t) {
                    home = result.home(i).cluster;
                    break;
                }
            }
            result.setThreadHome(t, home);
        }
        return result;
    }

    // Packing placement: walk each thread's graph in visit order and
    // fill PEs to their virtualization degree V, starting each thread at
    // a staggered position so threads occupy disjoint portions of the
    // die (the paper's placer does the same for Splash threads).
    std::vector<std::uint32_t> load(total_pes, 0);
    const std::uint32_t cap = geom.peCapacity;

    auto next_with_room = [&](std::uint32_t start,
                              std::uint32_t limit) -> std::int64_t {
        for (std::uint32_t k = 0; k < total_pes; ++k) {
            const std::uint32_t pe = (start + k) % total_pes;
            if (load[pe] < limit)
                return pe;
        }
        return -1;
    };

    for (ThreadId t = 0; t < graph.numThreads(); ++t) {
        const std::vector<InstId> order = visitOrder(graph, t, policy, rng);
        if (order.empty()) {
            result.setThreadHome(t, 0);
            continue;
        }
        const std::uint32_t hint = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(t) * total_pes) /
            graph.numThreads());
        std::int64_t pe = next_with_room(hint, cap);
        bool first = true;
        for (InstId inst : order) {
            if (pe < 0 || load[pe] >= cap)
                pe = next_with_room(pe < 0 ? hint : (pe + 1) % total_pes,
                                    cap);
            if (pe < 0) {
                // Machine full at V: oversubscribe round-robin; the
                // instruction stores will thrash (dynamic binding).
                pe = next_with_room(hint, cap * 4);
                if (pe < 0)
                    fatal("place: graph does not fit even oversubscribed");
            }
            ++load[pe];
            result.setHome(inst, coordOf(static_cast<std::uint32_t>(pe),
                                         geom));
            if (first) {
                result.setThreadHome(
                    t, coordOf(static_cast<std::uint32_t>(pe), geom)
                           .cluster);
                first = false;
            }
        }
    }
    return result;
}

} // namespace ws
