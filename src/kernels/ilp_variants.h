/**
 * @file
 * ILP-structure microbenchmark variants: four dataflow expressions of
 * the same computation — a wide integer reduction — whose static
 * dependency structure ranges from a fully serial accumulator chain to
 * a balanced binary tree. All four execute exactly n-1 useful ADDs
 * over the same seeded inputs and produce the same sum; only the
 * critical-path length differs, so the variants isolate how much of a
 * design's area buys *extractable* instruction-level parallelism.
 *
 * The serial variants have provably low static AIPC bounds
 * (useful / critical-path, see analyze/profile.h), which makes the
 * best-of-variants sweep the canonical demonstration of
 * --prune-static: once the tree variant has simulated, the chain
 * variants' bounds certify they cannot win the group.
 *
 * These kernels are deliberately NOT in kernelRegistry(): the
 * registry mirrors the paper's fifteen-application suite and several
 * harnesses (and pinned instruction-mix tests) iterate it exhaustively.
 */

#ifndef WS_KERNELS_ILP_VARIANTS_H_
#define WS_KERNELS_ILP_VARIANTS_H_

#include "kernels/kernel.h"

namespace ws {

/** The four reduction shapings, widest-parallelism last. Not part of
 *  kernelRegistry(); suite membership is nominal. */
const std::vector<Kernel> &ilpVariantKernels();

// Individual builders (exposed for tests). The reduction width is
// 256 * params.scale values; params.seed selects the input data.
DataflowGraph buildIlpChain1(const KernelParams &);  ///< 1 serial chain.
DataflowGraph buildIlpChain2(const KernelParams &);  ///< 2 chains, merged.
DataflowGraph buildIlpChain4(const KernelParams &);  ///< 4 chains, merged.
DataflowGraph buildIlpTree(const KernelParams &);    ///< Balanced tree.

} // namespace ws

#endif // WS_KERNELS_ILP_VARIANTS_H_
