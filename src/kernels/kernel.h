/**
 * @file
 * The workload suite: synthetic dataflow kernels standing in for the
 * paper's Spec2000 / Mediabench / Splash2 applications (§2.2).
 *
 * The paper compiled Alpha binaries to WaveScalar assembly through a
 * binary translator; we cannot, so each benchmark is re-expressed as a
 * dataflow kernel with the same *structural* properties the study
 * depends on: static working-set size (instruction count), operand
 * fan-out, loop-level parallelism, memory intensity, floating-point
 * share, and — for the Splash2 group — thread count and data sharing.
 * DESIGN.md documents this substitution.
 *
 * All kernels are deterministic; data comes from a seeded Rng.
 */

#ifndef WS_KERNELS_KERNEL_H_
#define WS_KERNELS_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "isa/graph.h"

namespace ws {

/** Which suite a kernel stands in for. */
enum class Suite : std::uint8_t
{
    kSpec,     ///< Spec2000 single-threaded (int + fp).
    kMedia,    ///< Mediabench media-processing loops.
    kSplash,   ///< Splash2 multi-threaded scientific kernels.
};

struct KernelParams
{
    std::uint16_t threads = 1;  ///< Honored by Splash kernels only.
    std::uint32_t scale = 1;    ///< Scales dynamic iteration counts.
    std::uint64_t seed = 1;     ///< Input-data generator seed.
};

/** One registered workload. */
struct Kernel
{
    std::string name;
    Suite suite;
    bool multithreaded;
    DataflowGraph (*build)(const KernelParams &);
};

/** All fifteen workloads, in the paper's Table-4 order. */
const std::vector<Kernel> &kernelRegistry();

/** Look up a kernel by name; fatal() when unknown. */
const Kernel &findKernel(const std::string &name);

/** Names of all kernels in @p suite. */
std::vector<std::string> kernelsInSuite(Suite suite);

/**
 * Program-identity hash of @p kernel built with @p params — the
 * graph-fingerprint half of the simulation cache key (driver/sim_key.h).
 * One definition shared by the bench harnesses and wsa-serve, so every
 * client of one persistent store addresses the same records.
 */
std::uint64_t kernelFingerprint(const Kernel &kernel,
                                const KernelParams &params);

// Individual builders (exposed for tests and examples).
DataflowGraph buildGzip(const KernelParams &);
DataflowGraph buildMcf(const KernelParams &);
DataflowGraph buildTwolf(const KernelParams &);
DataflowGraph buildAmmp(const KernelParams &);
DataflowGraph buildArt(const KernelParams &);
DataflowGraph buildEquake(const KernelParams &);
DataflowGraph buildDjpeg(const KernelParams &);
DataflowGraph buildMpeg2encode(const KernelParams &);
DataflowGraph buildRawdaudio(const KernelParams &);
DataflowGraph buildFft(const KernelParams &);
DataflowGraph buildLu(const KernelParams &);
DataflowGraph buildOcean(const KernelParams &);
DataflowGraph buildRadix(const KernelParams &);
DataflowGraph buildRaytrace(const KernelParams &);
DataflowGraph buildWater(const KernelParams &);

} // namespace ws

#endif // WS_KERNELS_KERNEL_H_
