/**
 * @file
 * Spec2000-like single-threaded kernels (paper §2.2).
 *
 * Each kernel re-expresses the structural character of its namesake:
 *  - gzip:   control-heavy integer compression loops (hash chains,
 *            histogram updates) over a byte stream;
 *  - mcf:    pointer chasing over successor arrays with reduced-cost
 *            arithmetic — memory-latency bound with limited MLP;
 *  - twolf:  annealing-style random swaps with integer distance costs
 *            and conditional (select-predicated) stores;
 *  - ammp:   floating-point molecular force loops (heavy FPU pressure);
 *  - art:    neural-network weight/input dot products plus training
 *            updates;
 *  - equake: sparse matrix-vector products with index indirection.
 *
 * Granularity matters as much as size: like compiler-generated
 * WaveScalar code, each loop iteration (one *wave*) carries a small
 * body with a handful of memory operations, and the large static
 * footprint Spec needs comes from many distinct sequential loop phases
 * rather than giant unrolled bodies. This keeps the store buffer, PSQ,
 * and k-loop-bounding behavior in the regime the paper studied.
 */

#include "kernels/kernel.h"

#include "common/rng.h"
#include "isa/graph_builder.h"
#include "kernels/kern_util.h"

namespace ws {

using kern::Node;

DataflowGraph
buildGzip(const KernelParams &p)
{
    GraphBuilder b("gzip");
    Rng rng(p.seed);
    constexpr std::size_t kN = 8192;     // Input (64 KB, 512 lines).
    constexpr std::size_t kHt = 8192;    // Hash-chain heads (64 KB).
    constexpr std::size_t kHist = 256;   // Literal histogram.
    const Addr in = kern::makeIntArray(b, kN, rng, 1u << 24);
    const Addr ht = kern::makeArray(b, kHt, [](std::size_t) { return 0; });
    const Addr hist =
        kern::makeArray(b, kHist, [](std::size_t) { return 0; });
    const Value iters = 12 * static_cast<Value>(p.scale);
    constexpr int kPhases = 36;   // Deflate passes over distinct chunks.
    constexpr int kU = 3;

    b.beginThread(0);
    Node cursor = b.param(0);
    Node acc = b.param(0);
    for (int phase = 0; phase < kPhases; ++phase) {
        GraphBuilder::Loop loop = b.beginLoop({cursor, acc});
        Node i = loop.vars[0];
        Node a = loop.vars[1];
        // Each phase hashes with its own multiplier and walks its own
        // slice of the input — distinct static code, small waves.
        const Value mult = 0x9E3779B1 ^ (phase * 0x85EBCA77);
        for (int u = 0; u < kU; ++u) {
            // Line-strided stream: each load touches a fresh 128 B
            // line; the 512-line working set thrashes the L1 but lives
            // in the L2 after the first pass over it.
            Node idx = b.andi(b.addi(b.muli(i, 112), u * 16 + 3),
                              static_cast<Value>(kN - 1));
            Node v = kern::loadAt(b, idx, in);
            Node h = b.andi(b.shri(b.muli(v, mult), 9),
                            static_cast<Value>(kHt - 1));
            Node cand = kern::loadAt(b, h, ht);
            Node dist = b.sub(idx, cand);
            Node match = b.lti(dist, 4096);
            Node len = b.select(match, b.andi(v, 15), b.lit(0, v));
            kern::storeAt(b, h, ht, idx);
            a = b.emit(Opcode::kXor, {a, b.add(v, len)});
        }
        // One histogram update per iteration (the literal encoder).
        Node hidx = b.andi(a, static_cast<Value>(kHist - 1));
        Node cnt = kern::loadAt(b, hidx, hist);
        kern::storeAt(b, hidx, hist, b.addi(cnt, 1));
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, a}, b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        acc = loop.exits[1];
    }
    b.sink(acc, 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildMcf(const KernelParams &p)
{
    GraphBuilder b("mcf");
    Rng rng(p.seed);
    constexpr std::size_t kNodes = 8192;   // 3 x 64 KB arrays.
    const Addr next = kern::makeArray(b, kNodes, [&](std::size_t) {
        return static_cast<Value>(rng.range(kNodes));
    });
    const Addr cost = kern::makeIntArray(b, kNodes, rng, 1000);
    const Addr pot = kern::makeIntArray(b, kNodes, rng, 500);
    const Value iters = 10 * static_cast<Value>(p.scale);
    constexpr int kPhases = 24;   // Augmenting-path searches.
    constexpr int kW = 2;         // Concurrent chases (limited MLP).

    b.beginThread(0);
    std::vector<Node> carried;
    for (int w = 0; w < kW; ++w)
        carried.push_back(b.param(static_cast<Value>(rng.range(kNodes))));
    carried.push_back(b.param(0));  // Accumulated reduced cost.
    carried.push_back(b.param(0));  // Iteration counter.

    for (int phase = 0; phase < kPhases; ++phase) {
        GraphBuilder::Loop loop = b.beginLoop(carried);
        std::vector<Node> nexts;
        Node acc = loop.vars[kW];
        Node it = loop.vars[kW + 1];
        for (int w = 0; w < kW; ++w) {
            Node cur = loop.vars[w];
            // One chase step with a reduced-cost check (4 dependent
            // loads — the pointer-chasing latency wall).
            Node succ = kern::loadAt(b, cur, next);
            Node c = kern::loadAt(b, succ, cost);
            Node pt = kern::loadAt(b, cur, pot);
            Node ph = kern::loadAt(b, succ, pot);
            Node reduced = b.add(b.sub(c, pt), ph);
            Node neg = b.lti(reduced, phase % 5);
            Node gain = b.select(neg, reduced, b.lit(0, reduced));
            acc = b.add(acc, gain);
            nexts.push_back(b.andi(b.add(succ, b.lit(phase, succ)),
                                   static_cast<Value>(kNodes - 1)));
        }
        nexts.push_back(acc);
        Node it_next = b.addi(it, 1);
        nexts.push_back(it_next);
        b.endLoop(loop, nexts,
                  b.lti(it_next, (phase + 1) * iters));
        carried.assign(loop.exits.begin(), loop.exits.end());
    }
    b.sink(carried[kW], 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildTwolf(const KernelParams &p)
{
    GraphBuilder b("twolf");
    Rng rng(p.seed);
    constexpr std::size_t kCells = 8192;   // 3 x 64 KB arrays.
    const Addr xs = kern::makeIntArray(b, kCells, rng, 4096);
    const Addr ys = kern::makeIntArray(b, kCells, rng, 4096);
    const Addr net = kern::makeArray(b, kCells, [&](std::size_t) {
        return static_cast<Value>(rng.range(kCells));
    });
    const Value iters = 14 * static_cast<Value>(p.scale);
    constexpr int kPhases = 40;   // Annealing temperature steps.

    b.beginThread(0);
    Node cursor = b.param(0);
    Node cst = b.param(0);
    for (int phase = 0; phase < kPhases; ++phase) {
        GraphBuilder::Loop loop = b.beginLoop({cursor, cst});
        Node i = loop.vars[0];
        Node c = loop.vars[1];
        // One trial swap per iteration: 5 loads, 2 predicated stores.
        Node a = b.andi(b.addi(b.muli(i, 16 * 17), phase * 131),
                        static_cast<Value>(kCells - 1));
        Node other = kern::loadAt(b, a, net);
        Node xa = kern::loadAt(b, a, xs);
        Node xo = kern::loadAt(b, other, xs);
        Node ya = kern::loadAt(b, a, ys);
        Node yo = kern::loadAt(b, other, ys);
        Node dx = b.sub(xa, xo);
        Node adx = b.select(b.lti(dx, 0), b.emit(Opcode::kNeg, {dx}), dx);
        Node dy = b.sub(ya, yo);
        Node ady = b.select(b.lti(dy, 0), b.emit(Opcode::kNeg, {dy}), dy);
        Node d = b.add(adx, ady);
        // Annealing: the acceptance threshold tightens with the phase.
        Node accept = b.lti(d, 4096 - phase * 64);
        kern::storeAt(b, a, xs, b.select(accept, xo, xa));
        kern::storeAt(b, other, xs, b.select(accept, xa, xo));
        c = b.add(c, d);
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, c}, b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        cst = loop.exits[1];
    }
    b.sink(cst, 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildAmmp(const KernelParams &p)
{
    GraphBuilder b("ammp");
    Rng rng(p.seed);
    constexpr std::size_t kAtoms = 8192;   // 4 x 64 KB arrays.
    const Addr px = kern::makeFpArray(b, kAtoms, rng);
    const Addr py = kern::makeFpArray(b, kAtoms, rng);
    const Addr pz = kern::makeFpArray(b, kAtoms, rng);
    const Addr fx =
        kern::makeArray(b, kAtoms, [](std::size_t) { return 0; });
    const Value iters = 12 * static_cast<Value>(p.scale);
    constexpr int kPhases = 36;   // Non-bonded neighbour-list chunks.

    b.beginThread(0);
    Node cursor = b.param(0);
    Node energy = b.param(fromDouble(0.0));
    for (int phase = 0; phase < kPhases; ++phase) {
        GraphBuilder::Loop loop = b.beginLoop({cursor, energy});
        Node i = loop.vars[0];
        Node e = loop.vars[1];
        // One pair interaction per wave: 6 loads, FP pipeline, 1 store.
        Node ia = b.andi(b.addi(b.muli(i, 16 * 7), phase * 19),
                         static_cast<Value>(kAtoms - 1));
        Node ib = b.andi(b.addi(b.muli(i, 16 * 11), phase * 23 + 80),
                         static_cast<Value>(kAtoms - 1));
        Node xa = kern::loadAt(b, ia, px);
        Node xb = kern::loadAt(b, ib, px);
        Node ya = kern::loadAt(b, ia, py);
        Node yb = kern::loadAt(b, ib, py);
        Node za = kern::loadAt(b, ia, pz);
        Node zb = kern::loadAt(b, ib, pz);
        Node dx = b.fsub(xa, xb);
        Node dy = b.fsub(ya, yb);
        Node dz = b.fsub(za, zb);
        Node r2 = b.fadd(b.fadd(b.fmul(dx, dx), b.fmul(dy, dy)),
                         b.fmul(dz, dz));
        Node inv = b.fdiv(kern::flit(b, 1.0, r2),
                          b.fadd(r2, kern::flit(b, 1e-6, r2)));
        Node f = b.fmul(inv, kern::flit(b, 0.25 + 0.01 * phase, inv));
        kern::storeAt(b, ia, fx, b.fmul(f, dx));
        e = b.fadd(e, f);
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, e}, b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        energy = loop.exits[1];
    }
    b.sink(energy, 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildArt(const KernelParams &p)
{
    GraphBuilder b("art");
    Rng rng(p.seed);
    constexpr std::size_t kF = 8192;   // Feature weights (64 KB).
    constexpr std::size_t kIn = 4096;  // Input vector (32 KB).
    const Addr wt = kern::makeFpArray(b, kF, rng);
    const Addr in = kern::makeFpArray(b, kIn, rng);
    const Value iters = 12 * static_cast<Value>(p.scale);
    constexpr int kPhases = 32;   // F1/F2 passes + resonance updates.
    constexpr int kU = 2;

    b.beginThread(0);
    Node cursor = b.param(0);
    Node y = b.param(fromDouble(0.0));
    for (int phase = 0; phase < kPhases; ++phase) {
        const bool update = phase % 2 == 1;  // Alternate match/learn.
        GraphBuilder::Loop loop = b.beginLoop({cursor, y});
        Node i = loop.vars[0];
        Node acc = loop.vars[1];
        for (int u = 0; u < kU; ++u) {
            Node wi = b.andi(b.addi(b.muli(i, 16 * 3),
                                    phase * 37 + u * 176),
                             static_cast<Value>(kF - 1));
            Node xi = b.andi(b.addi(i, u * 5 + phase),
                             static_cast<Value>(kIn - 1));
            Node w = kern::loadAt(b, wi, wt);
            Node x = kern::loadAt(b, xi, in);
            if (update) {
                Node delta =
                    b.fmul(b.fsub(x, w), kern::flit(b, 0.0625, w));
                kern::storeAt(b, wi, wt, b.fadd(w, delta));
                acc = b.fadd(acc, delta);
            } else {
                Node prod = b.fmul(w, x);
                Node winner = b.emit(Opcode::kFlt, {acc, prod});
                acc = b.select(winner, prod, acc);
                acc = b.fadd(acc,
                             b.fmul(prod, kern::flit(b, 0.125, prod)));
            }
        }
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, acc},
                  b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        y = loop.exits[1];
    }
    b.sink(y, 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildEquake(const KernelParams &p)
{
    GraphBuilder b("equake");
    Rng rng(p.seed);
    constexpr std::size_t kNnz = 8192;   // Nonzeros (2 x 64 KB).
    constexpr std::size_t kDim = 4096;   // 2 x 32 KB vectors.
    const Addr colidx = kern::makeArray(b, kNnz, [&](std::size_t) {
        return static_cast<Value>(rng.range(kDim));
    });
    const Addr aval = kern::makeFpArray(b, kNnz, rng);
    const Addr x = kern::makeFpArray(b, kDim, rng);
    const Addr y =
        kern::makeArray(b, kDim, [](std::size_t) { return 0; });
    const Value iters = 12 * static_cast<Value>(p.scale);
    constexpr int kPhases = 34;   // SMVP rows + time-integration steps.
    constexpr int kU = 2;

    b.beginThread(0);
    Node cursor = b.param(0);
    Node sum = b.param(fromDouble(0.0));
    for (int phase = 0; phase < kPhases; ++phase) {
        const bool integrate = phase % 3 == 2;
        GraphBuilder::Loop loop = b.beginLoop({cursor, sum});
        Node i = loop.vars[0];
        Node s = loop.vars[1];
        for (int u = 0; u < kU; ++u) {
            if (integrate) {
                Node idx = b.andi(b.addi(b.muli(i, kU), u + phase),
                                  static_cast<Value>(kDim - 1));
                Node xv = kern::loadAt(b, idx, x);
                Node acc = b.fmul(b.fadd(xv, s),
                                  kern::flit(b, 0.01, xv));
                kern::storeAt(b, idx, y, acc);
                s = b.fadd(s, b.fmul(acc, kern::flit(b, 0.5, acc)));
            } else {
                Node k = b.andi(b.addi(b.muli(i, 16 * kU),
                                       u * 16 + phase * 53),
                                static_cast<Value>(kNnz - 1));
                Node col = kern::loadAt(b, k, colidx);
                Node a = kern::loadAt(b, k, aval);
                Node xv = kern::loadAt(b, col, x);
                s = b.fadd(s, b.fmul(a, xv));
            }
        }
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, s}, b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        sum = loop.exits[1];
    }
    b.sink(sum, 1);
    b.endThread();
    return b.finish();
}

} // namespace ws
