/**
 * @file
 * Mediabench-like kernels (paper §2.2).
 *
 *  - djpeg:       fixed-point 4-point IDCT butterflies plus a
 *                 color-conversion pass — wide integer ILP, regular
 *                 strides;
 *  - mpeg2encode: sum-of-absolute-differences motion estimation with
 *                 running-minimum tracking;
 *  - rawdaudio:   ADPCM decode — a serial predictor recurrence with
 *                 table lookups and clamping (the least parallel kernel;
 *                 its Table-4 virtualization ratio is the smallest).
 *
 * As with the Spec kernels, loop bodies are kept wave-sized (a few
 * memory operations per iteration) and static footprint comes from
 * distinct sequential phases.
 */

#include "kernels/kernel.h"

#include "common/rng.h"
#include "isa/graph_builder.h"
#include "kernels/kern_util.h"

namespace ws {

using kern::Node;

DataflowGraph
buildDjpeg(const KernelParams &p)
{
    GraphBuilder b("djpeg");
    Rng rng(p.seed);
    constexpr std::size_t kCoef = 8192;   // Coefficients (2 x 64 KB).
    const Addr coef = kern::makeIntArray(b, kCoef, rng, 2048);
    const Addr out =
        kern::makeArray(b, kCoef, [](std::size_t) { return 0; });
    const Value iters = 24 * static_cast<Value>(p.scale);
    constexpr int kPhases = 14;   // MCU rows; last phases color-convert.

    b.beginThread(0);
    Node cursor = b.param(0);
    Node acc = b.param(0);
    for (int phase = 0; phase < kPhases; ++phase) {
        const bool color = phase >= kPhases - 4;
        GraphBuilder::Loop loop = b.beginLoop({cursor, acc});
        Node r = loop.vars[0];
        Node a = loop.vars[1];
        if (color) {
            // Color conversion with range clamping: 2 loads.
            Node idx = b.andi(b.addi(b.muli(r, 2), phase),
                              static_cast<Value>(kCoef - 2));
            Node yv = kern::loadAt(b, idx, out);
            Node cv = kern::loadAt(b, b.addi(idx, 1), out);
            Node scaled = b.shri(b.add(b.muli(yv, 298), b.muli(cv, 409)),
                                 8);
            Node lo = b.emit(Opcode::kMax, {scaled, b.lit(0, scaled)});
            Node clamped = b.emit(Opcode::kMin, {lo, b.lit(255, lo)});
            a = b.add(a, clamped);
        } else {
            // One 4-point fixed-point IDCT butterfly: 4 loads, 4 stores.
            Node base = b.andi(b.addi(b.muli(r, 16), phase * 64),
                               static_cast<Value>(kCoef - 4));
            Node c0 = kern::loadAt(b, base, coef);
            Node c1 = kern::loadAt(b, b.addi(base, 1), coef);
            Node c2 = kern::loadAt(b, b.addi(base, 2), coef);
            Node c3 = kern::loadAt(b, b.addi(base, 3), coef);
            Node t0 = b.add(c0, c2);
            Node t1 = b.sub(c0, c2);
            Node t2 = b.add(b.muli(c1, 1108), b.muli(c3, 459));
            Node t3 = b.sub(b.muli(c1, 459), b.muli(c3, 1108));
            kern::storeAt(b, base, out,
                          b.shri(b.add(b.shli(t0, 10), t2), 10));
            kern::storeAt(b, b.addi(base, 1), out,
                          b.shri(b.add(b.shli(t1, 10), t3), 10));
            kern::storeAt(b, b.addi(base, 2), out,
                          b.shri(b.sub(b.shli(t1, 10), t3), 10));
            kern::storeAt(b, b.addi(base, 3), out,
                          b.shri(b.sub(b.shli(t0, 10), t2), 10));
            a = b.add(a, t0);
        }
        Node r_next = b.addi(r, 1);
        b.endLoop(loop, {r_next, a}, b.lti(r_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        acc = loop.exits[1];
    }
    b.sink(acc, 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildMpeg2encode(const KernelParams &p)
{
    GraphBuilder b("mpeg2encode");
    Rng rng(p.seed);
    constexpr std::size_t kFrame = 8192;    // 2 x 64 KB frames.
    const Addr ref = kern::makeIntArray(b, kFrame, rng, 256);
    const Addr cur = kern::makeIntArray(b, kFrame, rng, 256);
    const Value iters = 20 * static_cast<Value>(p.scale);
    constexpr int kPhases = 16;   // Macroblock strips.
    constexpr int kPix = 4;       // Pixels per SAD step.

    b.beginThread(0);
    Node cursor = b.param(0);
    Node best = b.param(1 << 20);
    Node mv = b.param(0);
    for (int phase = 0; phase < kPhases; ++phase) {
        GraphBuilder::Loop loop = b.beginLoop({cursor, best, mv});
        Node i = loop.vars[0];
        Node bst = loop.vars[1];
        Node vec = loop.vars[2];
        // One candidate offset per wave: kPix absolute differences.
        Node coff = b.andi(b.addi(b.muli(i, 16 * 67), phase * 131),
                           static_cast<Value>(kFrame - kPix - 1));
        Node sad = b.lit(0, coff);
        for (int px = 0; px < kPix; ++px) {
            Node a = kern::loadAt(
                b, b.andi(b.addi(b.muli(i, 16 * kPix),
                                 px * 16 + phase * 16),
                          static_cast<Value>(kFrame - 1)),
                cur);
            Node r = kern::loadAt(b, b.addi(coff, px), ref);
            Node d = b.sub(a, r);
            Node ad = b.select(b.lti(d, 0), b.emit(Opcode::kNeg, {d}), d);
            sad = b.add(sad, ad);
        }
        Node better = b.emit(Opcode::kLt, {sad, bst});
        bst = b.select(better, sad, bst);
        vec = b.select(better, coff, vec);
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, bst, vec},
                  b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        best = loop.exits[1];
        mv = loop.exits[2];
    }
    b.sink(mv, 1);
    b.endThread();
    return b.finish();
}

DataflowGraph
buildRawdaudio(const KernelParams &p)
{
    GraphBuilder b("rawdaudio");
    Rng rng(p.seed);
    constexpr std::size_t kSamples = 2048;
    constexpr std::size_t kSteps = 89;
    const Addr code = kern::makeIntArray(b, kSamples, rng, 16);
    const Addr steptab = kern::makeArray(b, kSteps, [](std::size_t i) {
        return static_cast<Value>(7 * (i + 1));
    });
    const Addr pcm =
        kern::makeArray(b, kSamples, [](std::size_t) { return 0; });
    const Value iters = 48 * static_cast<Value>(p.scale);
    constexpr int kPhases = 8;   // Audio blocks.
    constexpr int kU = 2;        // Samples per wave.

    b.beginThread(0);
    Node cursor = b.param(0);
    Node pred = b.param(0);
    Node sidx = b.param(44);
    for (int phase = 0; phase < kPhases; ++phase) {
        GraphBuilder::Loop loop = b.beginLoop({cursor, pred, sidx});
        Node i = loop.vars[0];
        Node pr = loop.vars[1];
        Node si = loop.vars[2];
        for (int u = 0; u < kU; ++u) {
            // ADPCM decode: serial predictor/step-index recurrence.
            Node sample = b.andi(b.addi(b.muli(i, kU), u + phase * 256),
                                 static_cast<Value>(kSamples - 1));
            Node nibble = kern::loadAt(b, sample, code);
            Node step = kern::loadAt(b, si, steptab);
            Node mag = b.add(b.shri(b.mul(step, b.andi(nibble, 7)), 2),
                             b.shri(step, 3));
            Node sign = b.andi(nibble, 8);
            Node delta = b.select(b.nei(sign, 0),
                                  b.emit(Opcode::kNeg, {mag}), mag);
            pr = b.add(pr, delta);
            pr = b.emit(Opcode::kMin, {pr, b.lit(32767, pr)});
            pr = b.emit(Opcode::kMax, {pr, b.lit(-32768, pr)});
            kern::storeAt(b, sample, pcm, pr);
            Node adj = b.subi(b.andi(nibble, 7), 3);
            si = b.add(si, adj);
            si = b.emit(Opcode::kMax, {si, b.lit(0, si)});
            si = b.emit(Opcode::kMin,
                        {si, b.lit(static_cast<Value>(kSteps - 1), si)});
        }
        Node i_next = b.addi(i, 1);
        b.endLoop(loop, {i_next, pr, si},
                  b.lti(i_next, (phase + 1) * iters));
        cursor = loop.exits[0];
        pred = loop.exits[1];
        sidx = loop.exits[2];
    }
    b.sink(pred, 1);
    b.endThread();
    return b.finish();
}

} // namespace ws
