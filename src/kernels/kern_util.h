/**
 * @file
 * Shared helpers for the kernel builders: array allocation/initialization
 * and common address arithmetic idioms.
 */

#ifndef WS_KERNELS_KERN_UTIL_H_
#define WS_KERNELS_KERN_UTIL_H_

#include <cstdint>

#include "common/rng.h"
#include "isa/graph_builder.h"
#include "isa/token.h"

namespace ws {
namespace kern {

using Node = GraphBuilder::Node;

/** Allocate an n-word array and fill it with values from @p gen. */
template <typename Gen>
Addr
makeArray(GraphBuilder &b, std::size_t n, Gen &&gen)
{
    const Addr base = b.alloc(n * 8);
    for (std::size_t i = 0; i < n; ++i)
        b.initMem(base + 8 * i, gen(i));
    return base;
}

/** Allocate an n-word array of integers drawn from [0, bound). */
inline Addr
makeIntArray(GraphBuilder &b, std::size_t n, Rng &rng,
             std::uint64_t bound)
{
    return makeArray(b, n, [&](std::size_t) {
        return static_cast<Value>(rng.range(bound));
    });
}

/** Allocate an n-word array of doubles in [0, 1). */
inline Addr
makeFpArray(GraphBuilder &b, std::size_t n, Rng &rng)
{
    return makeArray(b, n, [&](std::size_t) {
        return fromDouble(rng.uniform());
    });
}

/** Address of element @p idx (a node) in a word array at @p base. */
inline Node
wordAddr(GraphBuilder &b, Node idx, Addr base)
{
    return b.addi(b.shli(idx, 3), static_cast<Value>(base));
}

/** mem[base + 8*idx] */
inline Node
loadAt(GraphBuilder &b, Node idx, Addr base)
{
    return b.load(wordAddr(b, idx, base));
}

/** mem[base + 8*idx] = v */
inline void
storeAt(GraphBuilder &b, Node idx, Addr base, Node v)
{
    b.store(wordAddr(b, idx, base), v);
}

/** A floating-point literal triggered by @p trig. */
inline Node
flit(GraphBuilder &b, double v, Node trig)
{
    return b.lit(fromDouble(v), trig);
}

} // namespace kern
} // namespace ws

#endif // WS_KERNELS_KERN_UTIL_H_
