/**
 * @file
 * Splash2-like multithreaded kernels (paper §2.2).
 *
 * Each thread gets a private replica of the kernel body (the paper's
 * placer isolates threads in different portions of the die) operating on
 * its own data partition, with deliberate sharing where the original
 * shares:
 *  - fft:      read-shared twiddle-factor table;
 *  - lu:       read-shared pivot row under per-thread block updates;
 *  - ocean:    stencil reads of neighbouring partitions' boundary rows
 *              (true read-write sharing → coherence traffic);
 *  - radix:    per-thread histograms, then scatter stores into one
 *              global array (adjacent-line write sharing);
 *  - raytrace: read-shared scene, per-thread ray bundles;
 *  - water:    read-shared positions, per-thread force accumulation.
 *
 * Per-thread bodies stay wave-sized (≤ ~10 memory operations per
 * iteration); a few sequential phases per thread provide the 200-400
 * instruction footprint that makes 16 threads fill a 4K-capacity
 * machine and 64 threads demand a 16K one (the Table-5 jumps).
 */

#include "kernels/kernel.h"

#include <algorithm>

#include "common/rng.h"
#include "isa/graph_builder.h"
#include "kernels/kern_util.h"

namespace ws {

using kern::Node;

namespace {

std::uint16_t
threadCount(const KernelParams &p)
{
    return std::max<std::uint16_t>(1, p.threads);
}

} // namespace

DataflowGraph
buildFft(const KernelParams &p)
{
    const std::uint16_t T = threadCount(p);
    GraphBuilder b("fft", T);
    Rng rng(p.seed);
    constexpr std::size_t kPart = 2048;   // Points per thread (2x16KB).
    constexpr std::size_t kTw = 256;      // Shared twiddle table.
    const Addr tw_re = kern::makeFpArray(b, kTw, rng);
    const Addr tw_im = kern::makeFpArray(b, kTw, rng);
    std::vector<Addr> re(T);
    std::vector<Addr> im(T);
    for (std::uint16_t t = 0; t < T; ++t) {
        re[t] = kern::makeFpArray(b, kPart, rng);
        im[t] = kern::makeFpArray(b, kPart, rng);
    }
    const Value iters = 16 * static_cast<Value>(p.scale);
    constexpr int kPhases = 5;   // Butterfly stages.

    for (std::uint16_t t = 0; t < T; ++t) {
        b.beginThread(t);
        Node cursor = b.param(0);
        Node chk = b.param(fromDouble(0.0));
        for (int phase = 0; phase < kPhases; ++phase) {
            const Value span =
                static_cast<Value>(kPart >> (1 + phase % 4));
            GraphBuilder::Loop loop = b.beginLoop({cursor, chk});
            Node g = loop.vars[0];
            Node c = loop.vars[1];
            // One butterfly per wave: 6 loads, 4 stores.
            Node j = b.andi(b.muli(g, 2),
                            static_cast<Value>(span - 1));
            Node j2 = b.addi(j, span);
            Node wi = b.andi(b.muli(j, 5), static_cast<Value>(kTw - 1));
            Node ar = kern::loadAt(b, j, re[t]);
            Node ai = kern::loadAt(b, j, im[t]);
            Node br = kern::loadAt(b, j2, re[t]);
            Node bi = kern::loadAt(b, j2, im[t]);
            Node wr = kern::loadAt(b, wi, tw_re);
            Node wim = kern::loadAt(b, wi, tw_im);
            Node tr = b.fsub(b.fmul(wr, br), b.fmul(wim, bi));
            Node ti = b.fadd(b.fmul(wr, bi), b.fmul(wim, br));
            kern::storeAt(b, j, re[t], b.fadd(ar, tr));
            kern::storeAt(b, j, im[t], b.fadd(ai, ti));
            kern::storeAt(b, j2, re[t], b.fsub(ar, tr));
            kern::storeAt(b, j2, im[t], b.fsub(ai, ti));
            c = b.fadd(c, tr);
            Node g_next = b.addi(g, 1);
            b.endLoop(loop, {g_next, c},
                      b.lti(g_next, (phase + 1) * iters));
            cursor = loop.exits[0];
            chk = loop.exits[1];
        }
        b.sink(chk, 1);
        b.endThread();
    }
    return b.finish();
}

DataflowGraph
buildLu(const KernelParams &p)
{
    const std::uint16_t T = threadCount(p);
    GraphBuilder b("lu", T);
    Rng rng(p.seed);
    constexpr std::size_t kBlock = 2048;  // Per-thread block (2x16KB).
    constexpr std::size_t kPivot = 2048;  // Shared pivot row (16 KB).
    const Addr pivot = kern::makeFpArray(b, kPivot, rng);
    std::vector<Addr> block(T);
    std::vector<Addr> lcol(T);
    for (std::uint16_t t = 0; t < T; ++t) {
        block[t] = kern::makeFpArray(b, kBlock, rng);
        lcol[t] = kern::makeFpArray(b, kBlock, rng);
    }
    const Value iters = 16 * static_cast<Value>(p.scale);
    constexpr int kPhases = 7;   // Elimination steps (k loop).
    constexpr int kU = 2;

    for (std::uint16_t t = 0; t < T; ++t) {
        b.beginThread(t);
        Node cursor = b.param(0);
        Node sum = b.param(fromDouble(0.0));
        for (int phase = 0; phase < kPhases; ++phase) {
            GraphBuilder::Loop loop = b.beginLoop({cursor, sum});
            Node i = loop.vars[0];
            Node s = loop.vars[1];
            for (int u = 0; u < kU; ++u) {
                // a[i][j] -= l[i][k] * u[k][j]: 3 loads, 1 store.
                Node idx =
                    b.andi(b.addi(b.muli(i, kU), u + phase * 73),
                           static_cast<Value>(kBlock - 1));
                Node pidx = b.andi(b.addi(idx, phase),
                                   static_cast<Value>(kPivot - 1));
                Node a = kern::loadAt(b, idx, block[t]);
                Node l = kern::loadAt(b, idx, lcol[t]);
                Node uval = kern::loadAt(b, pidx, pivot);
                Node next = b.fsub(a, b.fmul(l, uval));
                kern::storeAt(b, idx, block[t], next);
                s = b.fadd(s, next);
            }
            Node i_next = b.addi(i, 1);
            b.endLoop(loop, {i_next, s},
                      b.lti(i_next, (phase + 1) * iters));
            cursor = loop.exits[0];
            sum = loop.exits[1];
        }
        b.sink(sum, 1);
        b.endThread();
    }
    return b.finish();
}

DataflowGraph
buildOcean(const KernelParams &p)
{
    const std::uint16_t T = threadCount(p);
    GraphBuilder b("ocean", T);
    Rng rng(p.seed);
    constexpr std::size_t kCols = 64;
    constexpr std::size_t kRowsPer = 8;
    // One contiguous grid; thread t owns rows [t*kRowsPer, (t+1)*kRowsPer)
    // and its stencil reads one row into each neighbour's partition.
    const std::size_t total_rows = static_cast<std::size_t>(T) * kRowsPer;
    const Addr grid = kern::makeFpArray(b, total_rows * kCols, rng);
    const Value iters = 14 * static_cast<Value>(p.scale);
    constexpr int kPhases = 8;   // Red/black relaxation sweeps.

    for (std::uint16_t t = 0; t < T; ++t) {
        b.beginThread(t);
        const Value row_base = static_cast<Value>(t) * kRowsPer;
        Node cursor = b.param(0);
        Node resid = b.param(fromDouble(0.0));
        for (int phase = 0; phase < kPhases; ++phase) {
            GraphBuilder::Loop loop = b.beginLoop({cursor, resid});
            Node i = loop.vars[0];
            Node res = loop.vars[1];
            // One interior point per wave: 5 loads, 1 store.
            Node lin = b.addi(b.muli(i, 3), phase * 11);
            Node r = b.addi(b.emit(Opcode::kRemi, {lin},
                                   static_cast<Value>(kRowsPer)),
                            row_base);
            Node c = b.addi(b.emit(Opcode::kRemi, {lin},
                                   static_cast<Value>(kCols - 2)),
                            1);
            Node up_row = b.emit(Opcode::kMax,
                                 {b.subi(r, 1), b.lit(0, r)});
            Node down_row = b.emit(
                Opcode::kMin,
                {b.addi(r, 1),
                 b.lit(static_cast<Value>(total_rows - 1), r)});
            Node center = b.add(b.muli(r, kCols), c);
            Node vc = kern::loadAt(b, center, grid);
            Node vn = kern::loadAt(b, b.add(b.muli(up_row, kCols), c),
                                   grid);
            Node vs = kern::loadAt(b, b.add(b.muli(down_row, kCols), c),
                                   grid);
            Node vw = kern::loadAt(b, b.subi(center, 1), grid);
            Node ve = kern::loadAt(b, b.addi(center, 1), grid);
            Node avg = b.fmul(b.fadd(b.fadd(vn, vs), b.fadd(vw, ve)),
                              kern::flit(b, 0.25, vc));
            Node relaxed = b.fadd(
                vc, b.fmul(b.fsub(avg, vc), kern::flit(b, 0.9, vc)));
            kern::storeAt(b, center, grid, relaxed);
            res = b.fadd(res, b.fsub(relaxed, vc));
            Node i_next = b.addi(i, 1);
            b.endLoop(loop, {i_next, res},
                      b.lti(i_next, (phase + 1) * iters));
            cursor = loop.exits[0];
            resid = loop.exits[1];
        }
        b.sink(resid, 1);
        b.endThread();
    }
    return b.finish();
}

DataflowGraph
buildRadix(const KernelParams &p)
{
    const std::uint16_t T = threadCount(p);
    GraphBuilder b("radix", T);
    Rng rng(p.seed);
    constexpr std::size_t kKeysPer = 2048;   // 16 KB keys per thread.
    constexpr std::size_t kBuckets = 64;
    std::vector<Addr> keys(T);
    std::vector<Addr> hist(T);
    for (std::uint16_t t = 0; t < T; ++t) {
        keys[t] = kern::makeIntArray(b, kKeysPer, rng, 1u << 20);
        hist[t] = kern::makeArray(b, kBuckets,
                                  [](std::size_t) { return 0; });
    }
    // Shared output: thread t scatters into slice t of each bucket.
    const Addr global = b.alloc(static_cast<std::size_t>(T) * kKeysPer * 8);
    const Value iters = 16 * static_cast<Value>(p.scale);
    constexpr int kPhases = 8;   // Digit passes: histogram then scatter.
    constexpr int kU = 2;

    for (std::uint16_t t = 0; t < T; ++t) {
        b.beginThread(t);
        const Value slice =
            static_cast<Value>(t) * static_cast<Value>(kKeysPer);
        Node cursor = b.param(0);
        Node acc = b.param(0);
        for (int phase = 0; phase < kPhases; ++phase) {
            const bool scatter = phase % 2 == 1;
            GraphBuilder::Loop loop = b.beginLoop({cursor, acc});
            Node i = loop.vars[0];
            Node a = loop.vars[1];
            for (int u = 0; u < kU; ++u) {
                Node ki = b.andi(b.addi(b.muli(i, kU), u + phase * 61),
                                 static_cast<Value>(kKeysPer - 1));
                Node key = kern::loadAt(b, ki, keys[t]);
                if (scatter) {
                    Node pos = b.addi(ki, slice);
                    Node addr = b.addi(b.shli(pos, 3),
                                       static_cast<Value>(global));
                    b.store(addr, key);
                    a = b.add(a, key);
                } else {
                    Node digit =
                        b.andi(b.shri(key, (phase / 2) * 6),
                               static_cast<Value>(kBuckets - 1));
                    Node cnt = kern::loadAt(b, digit, hist[t]);
                    kern::storeAt(b, digit, hist[t], b.addi(cnt, 1));
                    a = b.add(a, digit);
                }
            }
            Node i_next = b.addi(i, 1);
            b.endLoop(loop, {i_next, a},
                      b.lti(i_next, (phase + 1) * iters));
            cursor = loop.exits[0];
            acc = loop.exits[1];
        }
        b.sink(acc, 1);
        b.endThread();
    }
    return b.finish();
}

DataflowGraph
buildRaytrace(const KernelParams &p)
{
    const std::uint16_t T = threadCount(p);
    GraphBuilder b("raytrace", T);
    Rng rng(p.seed);
    constexpr std::size_t kSpheres = 64;   // Shared scene.
    const Addr cx = kern::makeFpArray(b, kSpheres, rng);
    const Addr cy = kern::makeFpArray(b, kSpheres, rng);
    const Addr cz = kern::makeFpArray(b, kSpheres, rng);
    const Addr rad = kern::makeFpArray(b, kSpheres, rng);
    std::vector<Addr> rays(T);
    for (std::uint16_t t = 0; t < T; ++t)
        rays[t] = kern::makeFpArray(b, 256, rng);
    const Value iters = 16 * static_cast<Value>(p.scale);
    constexpr int kPhases = 6;   // Bounce depths.
    constexpr int kS = 2;        // Spheres tested per wave.

    for (std::uint16_t t = 0; t < T; ++t) {
        b.beginThread(t);
        Node cursor = b.param(0);
        Node img = b.param(fromDouble(0.0));
        for (int phase = 0; phase < kPhases; ++phase) {
            GraphBuilder::Loop loop = b.beginLoop({cursor, img});
            Node i = loop.vars[0];
            Node im = loop.vars[1];
            Node ri = b.andi(b.addi(i, phase * 37), 255);
            Node dx = kern::loadAt(b, ri, rays[t]);
            Node dy = kern::loadAt(b, b.andi(b.addi(ri, 1), 255),
                                   rays[t]);
            Node best = kern::flit(b, 1e9, dx);
            for (int s = 0; s < kS; ++s) {
                Node si = b.andi(b.addi(b.muli(i, kS), s + phase * 11),
                                 static_cast<Value>(kSpheres - 1));
                Node sx = kern::loadAt(b, si, cx);
                Node sy = kern::loadAt(b, si, cy);
                Node sz = kern::loadAt(b, si, cz);
                Node sr = kern::loadAt(b, si, rad);
                Node ox = b.fsub(sx, dx);
                Node oy = b.fsub(sy, dy);
                Node bq = b.fadd(b.fmul(ox, dx), b.fmul(oy, dy));
                Node cq = b.fsub(b.fadd(b.fmul(ox, ox), b.fmul(oy, oy)),
                                 b.fmul(sr, sr));
                Node disc = b.fsub(b.fmul(bq, bq), cq);
                Node hit = b.emit(Opcode::kFlt,
                                  {kern::flit(b, 0.0, disc), disc});
                Node tval = b.fsub(
                    bq, b.fmul(disc, kern::flit(b, 0.5, disc)));
                Node closer = b.emit(Opcode::kFlt, {tval, best});
                Node take = b.emit(Opcode::kAnd, {hit, closer});
                best = b.select(take, tval, best);
                im = b.fadd(im,
                            b.fmul(sz, b.emit(Opcode::kItoF, {take})));
            }
            Node i_next = b.addi(i, 1);
            b.endLoop(loop, {i_next, im},
                      b.lti(i_next, (phase + 1) * iters));
            cursor = loop.exits[0];
            img = loop.exits[1];
        }
        b.sink(img, 1);
        b.endThread();
    }
    return b.finish();
}

DataflowGraph
buildWater(const KernelParams &p)
{
    const std::uint16_t T = threadCount(p);
    GraphBuilder b("water", T);
    Rng rng(p.seed);
    constexpr std::size_t kMol = 2048;  // Shared positions (3x16KB).
    const Addr mx = kern::makeFpArray(b, kMol, rng);
    const Addr my = kern::makeFpArray(b, kMol, rng);
    const Addr mz = kern::makeFpArray(b, kMol, rng);
    std::vector<Addr> forces(T);
    for (std::uint16_t t = 0; t < T; ++t) {
        forces[t] = kern::makeArray(b, kMol,
                                    [](std::size_t) { return 0; });
    }
    const Value iters = 16 * static_cast<Value>(p.scale);
    constexpr int kPhases = 7;   // Inter/intra-molecular force passes.

    for (std::uint16_t t = 0; t < T; ++t) {
        b.beginThread(t);
        Node cursor = b.param(0);
        Node energy = b.param(fromDouble(0.0));
        for (int phase = 0; phase < kPhases; ++phase) {
            GraphBuilder::Loop loop = b.beginLoop({cursor, energy});
            Node i = loop.vars[0];
            Node e = loop.vars[1];
            // One pair per wave: 6 loads, read-modify-write force.
            Node ia = b.andi(
                b.addi(b.muli(i, 3), phase * 31 + t * 13),
                static_cast<Value>(kMol - 1));
            Node ib = b.andi(
                b.addi(b.muli(i, 5), phase * 37 + t * 17 + 1),
                static_cast<Value>(kMol - 1));
            Node xa = kern::loadAt(b, ia, mx);
            Node xb = kern::loadAt(b, ib, mx);
            Node ya = kern::loadAt(b, ia, my);
            Node yb = kern::loadAt(b, ib, my);
            Node za = kern::loadAt(b, ia, mz);
            Node zb = kern::loadAt(b, ib, mz);
            Node ddx = b.fsub(xa, xb);
            Node ddy = b.fsub(ya, yb);
            Node ddz = b.fsub(za, zb);
            Node r2 = b.fadd(b.fadd(b.fmul(ddx, ddx), b.fmul(ddy, ddy)),
                             b.fmul(ddz, ddz));
            Node inv = b.fdiv(kern::flit(b, 1.0, r2),
                              b.fadd(r2, kern::flit(b, 1e-3, r2)));
            Node f = b.fmul(inv, inv);
            Node old = kern::loadAt(b, ia, forces[t]);
            kern::storeAt(b, ia, forces[t], b.fadd(old, f));
            e = b.fadd(e, f);
            Node i_next = b.addi(i, 1);
            b.endLoop(loop, {i_next, e},
                      b.lti(i_next, (phase + 1) * iters));
            cursor = loop.exits[0];
            energy = loop.exits[1];
        }
        b.sink(energy, 1);
        b.endThread();
    }
    return b.finish();
}

} // namespace ws
