#include "kernels/ilp_variants.h"

#include <algorithm>

#include "common/rng.h"
#include "isa/graph_builder.h"

namespace ws {

namespace {

using Node = GraphBuilder::Node;

/** The shared input set: n program inputs from the seeded generator. */
std::vector<Node>
makeLeaves(GraphBuilder &b, const KernelParams &params, std::size_t n)
{
    Rng rng(params.seed);
    std::vector<Node> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaves.push_back(b.param(static_cast<Value>(rng.range(1u << 20))));
    return leaves;
}

std::size_t
reductionWidth(const KernelParams &params)
{
    return 256 * std::max<std::uint32_t>(1, params.scale);
}

/**
 * Sum the leaves as @p width independent accumulator chains (leaves
 * taken round-robin so every chain has ~n/width links), then merge the
 * chain totals serially. Useful work is exactly n-1 ADDs for every
 * width; the critical path shrinks from n-1 (width 1) to ~n/width.
 */
DataflowGraph
buildChains(const KernelParams &params, unsigned width, const char *name)
{
    GraphBuilder b(name);
    b.beginThread(0);
    const std::size_t n = reductionWidth(params);
    const std::vector<Node> leaves = makeLeaves(b, params, n);

    std::vector<Node> totals;
    for (unsigned c = 0; c < width; ++c) {
        Node acc = leaves[c];
        for (std::size_t i = c + width; i < n; i += width)
            acc = b.add(acc, leaves[i]);
        totals.push_back(acc);
    }
    Node sum = totals[0];
    for (unsigned c = 1; c < width; ++c)
        sum = b.add(sum, totals[c]);
    b.sink(sum);
    b.endThread();
    return b.finish();
}

/** Sum the leaves pairwise: a log2(n)-deep balanced binary tree. */
DataflowGraph
buildTree(const KernelParams &params, const char *name)
{
    GraphBuilder b(name);
    b.beginThread(0);
    std::vector<Node> level = makeLeaves(b, params, reductionWidth(params));

    while (level.size() > 1) {
        std::vector<Node> next;
        next.reserve(level.size() / 2 + 1);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(b.add(level[i], level[i + 1]));
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    b.sink(level[0]);
    b.endThread();
    return b.finish();
}

} // namespace

DataflowGraph
buildIlpChain1(const KernelParams &params)
{
    return buildChains(params, 1, "ilp_chain1");
}

DataflowGraph
buildIlpChain2(const KernelParams &params)
{
    return buildChains(params, 2, "ilp_chain2");
}

DataflowGraph
buildIlpChain4(const KernelParams &params)
{
    return buildChains(params, 4, "ilp_chain4");
}

DataflowGraph
buildIlpTree(const KernelParams &params)
{
    return buildTree(params, "ilp_tree");
}

const std::vector<Kernel> &
ilpVariantKernels()
{
    static const std::vector<Kernel> kVariants = {
        {"ilp_chain1", Suite::kSpec, false, buildIlpChain1},
        {"ilp_chain2", Suite::kSpec, false, buildIlpChain2},
        {"ilp_chain4", Suite::kSpec, false, buildIlpChain4},
        {"ilp_tree", Suite::kSpec, false, buildIlpTree},
    };
    return kVariants;
}

} // namespace ws
