#include "kernels/kernel.h"

#include "common/log.h"
#include "common/rng.h"

namespace ws {

const std::vector<Kernel> &
kernelRegistry()
{
    static const std::vector<Kernel> kKernels = {
        {"gzip", Suite::kSpec, false, &buildGzip},
        {"mcf", Suite::kSpec, false, &buildMcf},
        {"twolf", Suite::kSpec, false, &buildTwolf},
        {"ammp", Suite::kSpec, false, &buildAmmp},
        {"art", Suite::kSpec, false, &buildArt},
        {"equake", Suite::kSpec, false, &buildEquake},
        {"djpeg", Suite::kMedia, false, &buildDjpeg},
        {"mpeg2encode", Suite::kMedia, false, &buildMpeg2encode},
        {"rawdaudio", Suite::kMedia, false, &buildRawdaudio},
        {"fft", Suite::kSplash, true, &buildFft},
        {"lu", Suite::kSplash, true, &buildLu},
        {"ocean", Suite::kSplash, true, &buildOcean},
        {"radix", Suite::kSplash, true, &buildRadix},
        {"raytrace", Suite::kSplash, true, &buildRaytrace},
        {"water", Suite::kSplash, true, &buildWater},
    };
    return kKernels;
}

const Kernel &
findKernel(const std::string &name)
{
    for (const Kernel &k : kernelRegistry()) {
        if (k.name == name)
            return k;
    }
    fatal("findKernel: unknown kernel '%s'", name.c_str());
}

std::vector<std::string>
kernelsInSuite(Suite suite)
{
    std::vector<std::string> names;
    for (const Kernel &k : kernelRegistry()) {
        if (k.suite == suite)
            names.push_back(k.name);
    }
    return names;
}

std::uint64_t
kernelFingerprint(const Kernel &kernel, const KernelParams &params)
{
    std::uint64_t h = 0x6b65726e656c6670ULL;  // "kernelfp" salt.
    for (char c : kernel.name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    h = hashCombine(h, params.threads);
    h = hashCombine(h, params.scale);
    h = hashCombine(h, params.seed);
    return h;
}

} // namespace ws
