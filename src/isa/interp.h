/**
 * @file
 * Reference interpreter: timing-free functional execution of a dataflow
 * graph.
 *
 * The interpreter executes tokens eagerly (unbounded matching table) and
 * applies the same wave-ordered memory discipline as the store buffer
 * (per-thread waves retire in order; within a wave, the <prev,this,next>
 * chain is followed). For single-threaded programs — or any program
 * whose threads touch disjoint memory — its final memory image and sink
 * values are the architectural ground truth the cycle-level simulator
 * must match.
 */

#ifndef WS_ISA_INTERP_H_
#define WS_ISA_INTERP_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "isa/graph.h"

namespace ws {

struct InterpResult
{
    bool completed = false;         ///< All expected sink tokens seen.
    Counter sinkTokens = 0;
    Counter executed = 0;
    Counter useful = 0;
    std::vector<Value> sinkValues;  ///< In arrival order.
    std::map<Addr, Value> memory;   ///< Final non-zero words.
};

/**
 * Execute @p graph functionally. @p max_steps bounds total instruction
 * executions (guards against non-terminating graphs).
 */
InterpResult interpret(const DataflowGraph &graph,
                       std::uint64_t max_steps = 50'000'000);

} // namespace ws

#endif // WS_ISA_INTERP_H_
