#include "isa/graph_builder.h"

#include <utility>

#include "common/log.h"

namespace ws {

GraphBuilder::GraphBuilder(std::string name, std::uint16_t num_threads)
    : graph_(std::move(name), num_threads)
{}

void
GraphBuilder::requireThread(const char *what) const
{
    if (!inThread_)
        fatal("GraphBuilder: %s outside beginThread/endThread", what);
    if (finished_)
        fatal("GraphBuilder: %s after finish()", what);
}

void
GraphBuilder::checkRegion(const Node &n, const char *what) const
{
    if (!n.valid())
        fatal("GraphBuilder: %s given an invalid node", what);
    if (n.region != region_) {
        fatal("GraphBuilder: %s mixes wave regions (%u vs current %u); "
              "values crossing a loop boundary must be loop-carried",
              what, n.region, region_);
    }
}

void
GraphBuilder::beginThread(ThreadId t)
{
    if (inThread_)
        fatal("GraphBuilder: beginThread(%u) while thread %u open", t,
              thread_);
    if (t >= graph_.numThreads())
        fatal("GraphBuilder: thread %u out of range (%u declared)", t,
              graph_.numThreads());
    thread_ = t;
    inThread_ = true;
    region_ = ++regionCounter_;
    anchor_ = Node{};
    memChain_.clear();
}

void
GraphBuilder::endThread()
{
    requireThread("endThread");
    if (!loopStack_.empty())
        fatal("GraphBuilder: endThread with %zu loops still open",
              loopStack_.size());
    if (ifDepth_ != 0)
        fatal("GraphBuilder: endThread with %d conditionals still open",
              ifDepth_);
    closeRegion();
    inThread_ = false;
}

void
GraphBuilder::connect(Node producer, InstId consumer, std::uint8_t port)
{
    graph_.inst(producer.id).outs[producer.side].push_back(
        PortRef{consumer, port});
}

GraphBuilder::Node
GraphBuilder::emitImpl(Opcode op, const std::vector<Node> &inputs, Value imm,
                       bool allow_cross_region)
{
    requireThread("emit");
    const OpcodeInfo &info = opcodeInfo(op);
    if (inputs.size() != info.arity) {
        fatal("GraphBuilder: %s expects %u inputs, got %zu",
              std::string(info.name).c_str(), info.arity, inputs.size());
    }

    Instruction inst;
    inst.op = op;
    inst.imm = imm;
    inst.thread = thread_;
    const InstId id = graph_.addInstruction(std::move(inst));

    for (std::size_t p = 0; p < inputs.size(); ++p) {
        const Node &n = inputs[p];
        if (!allow_cross_region)
            checkRegion(n, std::string(info.name).c_str());
        else if (!n.valid())
            fatal("GraphBuilder: invalid input node");
        connect(n, id, static_cast<std::uint8_t>(p));
    }

    if (isMemoryOp(op) && op != Opcode::kStoreData)
        appendMemChain(id);

    Node out{id, 0, region_};
    if (!anchor_.valid())
        anchor_ = out;
    return out;
}

GraphBuilder::Node
GraphBuilder::emit(Opcode op, const std::vector<Node> &inputs, Value imm)
{
    if (op == Opcode::kWaveAdvance || op == Opcode::kSteer) {
        fatal("GraphBuilder: emit(%s) is managed by beginLoop/endLoop",
              std::string(opcodeName(op)).c_str());
    }
    return emitImpl(op, inputs, imm, false);
}

GraphBuilder::Node
GraphBuilder::param(Value v)
{
    requireThread("param");
    Instruction inst;
    inst.op = Opcode::kMov;
    inst.thread = thread_;
    const InstId id = graph_.addInstruction(std::move(inst));
    // Feed the kMov from an initial token rather than a producer edge.
    graph_.addInitialToken(Token{Tag{thread_, 0}, PortRef{id, 0}, v});
    Node out{id, 0, region_};
    if (!anchor_.valid())
        anchor_ = out;
    return out;
}

GraphBuilder::Node
GraphBuilder::lit(Value v, Node trigger)
{
    return emit(Opcode::kConst, {trigger}, v);
}

Addr
GraphBuilder::alloc(std::size_t bytes)
{
    const Addr base = nextAddr_;
    nextAddr_ += (bytes + 7) & ~static_cast<std::size_t>(7);
    return base;
}

void
GraphBuilder::initMem(Addr addr, Value v)
{
    graph_.addMemInit(addr, v);
}

void
GraphBuilder::appendMemChain(InstId id)
{
    if (ifDepth_ > 1) {
        fatal("GraphBuilder: memory operations inside nested "
              "conditionals are not supported");
    }
    Instruction &op = graph_.inst(id);
    const auto seq = static_cast<std::int32_t>(memChain_.size());
    op.mem.valid = true;
    op.mem.seq = seq;
    op.mem.next = kSeqNone;
    switch (chainMode_) {
      case ChainMode::kLinear:
        op.mem.prev = memChain_.empty() ? kSeqNone : seq - 1;
        if (!memChain_.empty())
            graph_.inst(memChain_.back()).mem.next = seq;
        break;
      case ChainMode::kArmFirst:
        // First memory op of a diamond arm: its predecessor is the last
        // op before the branch (which carries a '?' next link).
        op.mem.prev = armPrev_;
        chainMode_ = ChainMode::kLinear;
        break;
      case ChainMode::kAfterDiamond:
        // First op after the merge: either arm may precede it.
        op.mem.prev = kSeqWildcard;
        for (InstId last : diamondLasts_)
            graph_.inst(last).mem.next = seq;
        diamondLasts_.clear();
        chainMode_ = ChainMode::kLinear;
        break;
    }
    memChain_.push_back(id);
}

GraphBuilder::Node
GraphBuilder::load(Node addr, Value offset)
{
    return emit(Opcode::kLoad, {addr}, offset);
}

void
GraphBuilder::store(Node addr, Node data, Value offset)
{
    checkRegion(addr, "store(addr)");
    checkRegion(data, "store(data)");
    Node sa = emit(Opcode::kStoreAddr, {addr}, offset);
    // The data half bypasses the chain: the store buffer pairs it with
    // the address half by (thread, wave, seq).
    Node sd = emitImpl(Opcode::kStoreData, {data}, 0, false);
    Instruction &sd_inst = graph_.inst(sd.id);
    sd_inst.mem.valid = true;
    sd_inst.mem.seq = graph_.inst(sa.id).mem.seq;
    sd_inst.mem.prev = kSeqNone;
    sd_inst.mem.next = kSeqNone;
}

void
GraphBuilder::memNop(Node trigger)
{
    emit(Opcode::kMemNop, {trigger});
}

void
GraphBuilder::closeRegion()
{
    if (memChain_.empty()) {
        if (!anchor_.valid()) {
            // Region emitted nothing at all; nothing can ever execute in
            // it, so no ordering chain is required either.
            return;
        }
        memNop(anchor_);
    }
    graph_.addMemRegion(std::move(memChain_));
    memChain_.clear();
}

void
GraphBuilder::newRegion(Node anchor)
{
    region_ = ++regionCounter_;
    anchor_ = anchor;
    memChain_.clear();
    chainMode_ = ChainMode::kLinear;
    diamondLasts_.clear();
    armPrev_ = kSeqNone;
}

GraphBuilder::Loop
GraphBuilder::beginLoop(const std::vector<Node> &inits)
{
    requireThread("beginLoop");
    if (ifDepth_ != 0)
        fatal("GraphBuilder: loops inside conditionals are not "
              "supported; hoist the loop or predicate its body");
    if (inits.empty())
        fatal("GraphBuilder: beginLoop needs at least one carried value");
    for (const Node &n : inits)
        checkRegion(n, "beginLoop");

    closeRegion();

    Loop loop;
    loop.open = true;
    // New region first so the WAVE_ADVANCE outputs land in the body.
    newRegion(Node{});
    loop.bodyRegion = region_;
    loopStack_.push_back(loop.bodyRegion);
    for (const Node &init : inits) {
        Node wa = emitImpl(Opcode::kWaveAdvance, {init}, 0, true);
        loop.vars.push_back(wa);
        loop.waveAdv.push_back(wa.id);
    }
    anchor_ = loop.vars[0];
    return loop;
}

void
GraphBuilder::endLoop(Loop &loop, const std::vector<Node> &nexts, Node cond)
{
    requireThread("endLoop");
    if (!loop.open)
        fatal("GraphBuilder: endLoop on a closed loop");
    if (nexts.size() != loop.vars.size()) {
        fatal("GraphBuilder: endLoop got %zu next values for %zu carried",
              nexts.size(), loop.vars.size());
    }
    if (loopStack_.empty() || loopStack_.back() != loop.bodyRegion) {
        fatal("GraphBuilder: endLoop closes a loop that is not the "
              "innermost open one (improper nesting)");
    }
    loopStack_.pop_back();
    checkRegion(cond, "endLoop(cond)");
    for (const Node &n : nexts)
        checkRegion(n, "endLoop(next)");

    closeRegion();

    // Per carried value: STEER back-edge (true) or exit (false), and a
    // WAVE_ADVANCE moving the exit value into the post-loop region.
    std::vector<Node> steers;
    steers.reserve(nexts.size());
    for (std::size_t i = 0; i < nexts.size(); ++i) {
        Node s = emitImpl(Opcode::kSteer, {nexts[i], cond}, 0, false);
        connect(Node{s.id, 0, region_}, loop.waveAdv[i], 0);
        steers.push_back(s);
    }

    newRegion(Node{});
    for (std::size_t i = 0; i < steers.size(); ++i) {
        Node exit_side{steers[i].id, 1, loop.bodyRegion};
        Node ewa = emitImpl(Opcode::kWaveAdvance, {exit_side}, 0, true);
        loop.exits.push_back(ewa);
    }
    anchor_ = loop.exits[0];
    loop.open = false;
}

GraphBuilder::IfElse
GraphBuilder::beginIf(Node cond, const std::vector<Node> &ins)
{
    requireThread("beginIf");
    if (ins.empty())
        fatal("GraphBuilder: beginIf needs at least one live value");
    checkRegion(cond, "beginIf(cond)");
    for (const Node &n : ins)
        checkRegion(n, "beginIf");

    IfElse ie;
    ie.open = true;
    for (const Node &in : ins) {
        Node s = emitImpl(Opcode::kSteer, {in, cond}, 0, false);
        ie.steers.push_back(s.id);
        ie.vars.push_back(Node{s.id, 0, region_});  // Then-side.
    }
    ie.thenTrigger = ie.vars[0];

    ++ifDepth_;
    if (ifDepth_ == 1) {
        ie.preChainLen = memChain_.size();
        if (!memChain_.empty()) {
            armPrev_ = graph_.inst(memChain_.back()).mem.seq;
            // Which arm follows is unknown statically: '?' (restored to
            // a concrete link by endIf when neither arm touches memory).
            graph_.inst(memChain_.back()).mem.next = kSeqWildcard;
        } else {
            armPrev_ = kSeqNone;
        }
        chainMode_ = ChainMode::kArmFirst;
    }
    return ie;
}

void
GraphBuilder::elseArm(IfElse &ie, const std::vector<Node> &then_results)
{
    requireThread("elseArm");
    if (!ie.open || ie.inElse)
        fatal("GraphBuilder: elseArm on a closed or switched diamond");
    for (const Node &n : then_results)
        checkRegion(n, "elseArm(then_results)");
    ie.thenOut = then_results;
    ie.inElse = true;
    for (std::size_t i = 0; i < ie.steers.size(); ++i)
        ie.vars[i] = Node{ie.steers[i], 1, region_};  // Else-side.
    if (ifDepth_ == 1) {
        ie.thenChainLen = memChain_.size();
        chainMode_ = ChainMode::kArmFirst;  // Else-first links to pre-op.
    }
}

void
GraphBuilder::endIf(IfElse &ie, const std::vector<Node> &else_results)
{
    requireThread("endIf");
    if (!ie.open || !ie.inElse)
        fatal("GraphBuilder: endIf without a matching elseArm");
    if (else_results.size() != ie.thenOut.size()) {
        fatal("GraphBuilder: endIf got %zu else results for %zu then "
              "results", else_results.size(), ie.thenOut.size());
    }
    for (const Node &n : else_results)
        checkRegion(n, "endIf(else_results)");

    if (ifDepth_ == 1) {
        const bool then_had = ie.thenChainLen > ie.preChainLen;
        bool else_had = memChain_.size() > ie.thenChainLen;
        InstId then_last =
            then_had ? memChain_[ie.thenChainLen - 1] : kInvalidInst;
        InstId else_last = else_had ? memChain_.back() : kInvalidInst;

        if (then_had && !else_had) {
            // The else path must still participate in the ordering
            // chain: MEMORY-NOP (the paper's compiler rule).
            chainMode_ = ChainMode::kArmFirst;
            memNop(ie.vars[0]);   // vars are else-side now.
            else_last = memChain_.back();
            else_had = true;
        } else if (!then_had && else_had) {
            chainMode_ = ChainMode::kArmFirst;
            memNop(ie.thenTrigger);
            then_last = memChain_.back();
        }

        if (then_had || else_had) {
            diamondLasts_ = {then_last, else_last};
            chainMode_ = ChainMode::kAfterDiamond;
        } else {
            // Neither arm touched memory: undo the '?' on the pre-op.
            if (ie.preChainLen > 0) {
                graph_.inst(memChain_[ie.preChainLen - 1]).mem.next =
                    kSeqNone;
            }
            chainMode_ = ChainMode::kLinear;
        }
    }
    --ifDepth_;

    // Merge: a kMov fed by both arms; exactly one token arrives per
    // dynamic instance.
    for (std::size_t i = 0; i < ie.thenOut.size(); ++i) {
        Node m = emitImpl(Opcode::kMov, {ie.thenOut[i]}, 0, false);
        connect(else_results[i], m.id, 0);
        ie.merged.push_back(m);
    }
    ie.open = false;
}

void
GraphBuilder::sink(Node v, Counter expected_tokens)
{
    emit(Opcode::kSink, {v});
    graph_.bumpExpectedSinkTokens(expected_tokens);
}

DataflowGraph
GraphBuilder::finish()
{
    if (inThread_)
        fatal("GraphBuilder: finish() with thread %u still open", thread_);
    finished_ = true;
    graph_.validate();
    return std::move(graph_);
}

} // namespace ws
