#include "isa/exec.h"

#include <algorithm>
#include <cstdint>

#include "common/log.h"
#include "isa/token.h"

namespace ws {

Value
evaluate(Opcode op, Value imm, const Operands &in)
{
    const Value a = in[0];
    const Value b = in[1];
    switch (op) {
      case Opcode::kNop:
      case Opcode::kSink:
      case Opcode::kMemNop:
        return 0;
      case Opcode::kConst:
        return imm;
      case Opcode::kMov:
      case Opcode::kWaveAdvance:
      case Opcode::kSteer:
      case Opcode::kStoreData:
        return a;
      case Opcode::kAdd: return static_cast<Value>(
          static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
      case Opcode::kSub: return static_cast<Value>(
          static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
      case Opcode::kMul: return static_cast<Value>(
          static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
      case Opcode::kDiv: return b == 0 ? 0 : a / b;
      case Opcode::kRem: return b == 0 ? 0 : a % b;
      case Opcode::kAnd: return a & b;
      case Opcode::kOr: return a | b;
      case Opcode::kXor: return a ^ b;
      case Opcode::kShl:
        return static_cast<Value>(static_cast<std::uint64_t>(a)
                                  << (static_cast<std::uint64_t>(b) & 63));
      case Opcode::kShr:
        return static_cast<Value>(static_cast<std::uint64_t>(a) >>
                                  (static_cast<std::uint64_t>(b) & 63));
      case Opcode::kLt: return a < b ? 1 : 0;
      case Opcode::kLe: return a <= b ? 1 : 0;
      case Opcode::kEq: return a == b ? 1 : 0;
      case Opcode::kNe: return a != b ? 1 : 0;
      case Opcode::kMin: return std::min(a, b);
      case Opcode::kMax: return std::max(a, b);
      case Opcode::kNeg: return -a;
      case Opcode::kNot: return ~a;

      case Opcode::kAddi: return static_cast<Value>(
          static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(imm));
      case Opcode::kSubi: return static_cast<Value>(
          static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(imm));
      case Opcode::kMuli: return static_cast<Value>(
          static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(imm));
      case Opcode::kDivi: return imm == 0 ? 0 : a / imm;
      case Opcode::kRemi: return imm == 0 ? 0 : a % imm;
      case Opcode::kAndi: return a & imm;
      case Opcode::kShli:
        return static_cast<Value>(static_cast<std::uint64_t>(a)
                                  << (static_cast<std::uint64_t>(imm) & 63));
      case Opcode::kShri:
        return static_cast<Value>(static_cast<std::uint64_t>(a) >>
                                  (static_cast<std::uint64_t>(imm) & 63));
      case Opcode::kLti: return a < imm ? 1 : 0;
      case Opcode::kLei: return a <= imm ? 1 : 0;
      case Opcode::kEqi: return a == imm ? 1 : 0;
      case Opcode::kNei: return a != imm ? 1 : 0;

      case Opcode::kFadd: return fromDouble(asDouble(a) + asDouble(b));
      case Opcode::kFsub: return fromDouble(asDouble(a) - asDouble(b));
      case Opcode::kFmul: return fromDouble(asDouble(a) * asDouble(b));
      case Opcode::kFdiv:
        return asDouble(b) == 0.0 ? fromDouble(0.0)
                                  : fromDouble(asDouble(a) / asDouble(b));
      case Opcode::kFlt: return asDouble(a) < asDouble(b) ? 1 : 0;
      case Opcode::kFeq: return asDouble(a) == asDouble(b) ? 1 : 0;
      case Opcode::kItoF: return fromDouble(static_cast<double>(a));
      case Opcode::kFtoI: return static_cast<Value>(asDouble(a));

      case Opcode::kSelect:
        return a != 0 ? b : in[2];

      case Opcode::kLoad:
      case Opcode::kStoreAddr:
        // Effective address; the memory system supplies load data.
        return static_cast<Value>(static_cast<std::uint64_t>(a) +
                                  static_cast<std::uint64_t>(imm));

      case Opcode::kNumOpcodes:
        break;
    }
    panic("evaluate: bad opcode %u", static_cast<unsigned>(op));
}

} // namespace ws
