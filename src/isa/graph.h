/**
 * @file
 * The dataflow graph: wavefabric's executable program representation.
 *
 * A DataflowGraph is what the paper calls the "application binary": a set
 * of static instructions connected producer→consumer, a set of initial
 * tokens (program inputs), an initial memory image, and — for validation —
 * the per-thread wave-ordered memory chains the builder emitted.
 */

#ifndef WS_ISA_GRAPH_H_
#define WS_ISA_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "isa/token.h"

namespace ws {

/**
 * Instruction-mix census of a graph (or one thread of it), bucketed by
 * opcodeClass(). This is the single definition of the AIPC numerator:
 * usefulSize(), staticStats(), and the analyzer's width pass all count
 * through mix(), so "useful" can never drift between them.
 */
struct InstructionMix
{
    Counter total = 0;
    Counter useful = 0;    ///< compute + memory (the AIPC numerator).
    Counter compute = 0;
    Counter memory = 0;    ///< Useful memory ops (load, store_addr).
    Counter control = 0;   ///< steer, wave_advance.
    Counter plumbing = 0;  ///< nop, sink, store_data, mem_nop.
    Counter fp = 0;        ///< Floating-point subset of compute.
    Counter memoryAll = 0; ///< Every store-buffer op incl. the overhead
                           ///  halves (store_data, mem_nop).
};

/**
 * An executable dataflow program.
 *
 * Construction normally goes through GraphBuilder, which maintains the
 * structural invariants validate() checks; tests may also assemble graphs
 * by hand to probe corner cases.
 */
class DataflowGraph
{
  public:
    explicit DataflowGraph(std::string name = "anonymous",
                           std::uint16_t num_threads = 1)
        : name_(std::move(name)), numThreads_(num_threads)
    {}

    /** Append an instruction; returns its id. */
    InstId
    addInstruction(Instruction inst)
    {
        insts_.push_back(std::move(inst));
        return static_cast<InstId>(insts_.size() - 1);
    }

    /** Register a program-input token, injected at cycle 0. */
    void addInitialToken(Token t) { initialTokens_.push_back(t); }

    /** Set one 64-bit word of the initial memory image. */
    void
    addMemInit(Addr addr, Value v)
    {
        memInit_.emplace_back(addr, v);
    }

    /** Record one wave-ordered memory chain (builder bookkeeping). */
    void
    addMemRegion(std::vector<InstId> chain)
    {
        memRegions_.push_back(std::move(chain));
    }

    /** Declare how many kSink arrivals constitute program completion. */
    void setExpectedSinkTokens(Counter n) { expectedSinks_ = n; }
    void bumpExpectedSinkTokens(Counter n) { expectedSinks_ += n; }

    // Accessors ----------------------------------------------------------
    const std::string &name() const { return name_; }
    std::uint16_t numThreads() const { return numThreads_; }
    void setNumThreads(std::uint16_t n) { numThreads_ = n; }

    std::size_t size() const { return insts_.size(); }
    const Instruction &inst(InstId id) const { return insts_.at(id); }
    Instruction &inst(InstId id) { return insts_.at(id); }
    const std::vector<Instruction> &instructions() const { return insts_; }

    const std::vector<Token> &initialTokens() const { return initialTokens_; }

    /** Mutable token access for rewrite passes (entry-mov retargeting). */
    std::vector<Token> &initialTokens() { return initialTokens_; }
    const std::vector<std::pair<Addr, Value>> &memInit() const
    {
        return memInit_;
    }
    const std::vector<std::vector<InstId>> &memRegions() const
    {
        return memRegions_;
    }
    Counter expectedSinkTokens() const { return expectedSinks_; }

    /** Count of static instructions owned by thread @p t. */
    std::size_t threadSize(ThreadId t) const;

    /** Count of instructions whose opcode is "useful" (AIPC numerator). */
    std::size_t usefulSize() const;

    /** Instruction-mix census over the whole graph. */
    InstructionMix mix() const;

    /** Instruction-mix census over thread @p t only. */
    InstructionMix threadMix(ThreadId t) const;

    /**
     * Strict verification gate: run the static verifier (structural,
     * wave-order, and flow passes — see verify/verifier.h) and fatal()
     * with the complete rendered diagnostic report when any error is
     * found. Warnings and notes do not fail; callers wanting the full
     * report (or capacity lint) call ws::verify() directly.
     */
    void validate() const;

    /** Summarize static properties into a report (instruction mix etc.). */
    StatReport staticStats() const;

  private:
    std::string name_;
    std::uint16_t numThreads_;
    std::vector<Instruction> insts_;
    std::vector<Token> initialTokens_;
    std::vector<std::pair<Addr, Value>> memInit_;
    std::vector<std::vector<InstId>> memRegions_;
    Counter expectedSinks_ = 0;
};

} // namespace ws

#endif // WS_ISA_GRAPH_H_
