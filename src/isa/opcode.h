/**
 * @file
 * The wavefabric dataflow instruction set.
 *
 * The set mirrors the Alpha-derived WaveScalar assembly the paper's
 * binary translator produced: ordinary integer/floating-point compute,
 * plus the WaveScalar-specific control instructions (STEER, SELECT,
 * WAVE_ADVANCE) and the wave-ordered memory interface (LOAD, STORE_ADDR /
 * STORE_DATA, MEM_NOP).
 *
 * "Useful" opcodes count toward AIPC (Alpha-equivalent instructions per
 * cycle); WaveScalar-specific overhead instructions execute but are
 * excluded from the metric, exactly as in the paper's evaluation.
 */

#ifndef WS_ISA_OPCODE_H_
#define WS_ISA_OPCODE_H_

#include <cstdint>
#include <string_view>

namespace ws {

enum class Opcode : std::uint8_t
{
    // Overhead / plumbing.
    kNop,          ///< 1 input; produces nothing.
    kConst,        ///< 1 trigger input; produces the immediate.
    kMov,          ///< 1 input; forwards it (fan-out amplifier).
    kSink,         ///< 1 input; swallows it and counts completion.

    // Integer ALU (1- and 2-input).
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    kLt, kLe, kEq, kNe, kMin, kMax,
    kNeg, kNot,

    // Immediate (literal-operand) forms: one input port, the second
    // operand comes from the instruction's immediate field. These mirror
    // the Alpha literal instruction forms the paper's binary translator
    // emitted and keep kernel graphs from drowning in kConst nodes.
    kAddi, kSubi, kMuli, kDivi, kRemi,
    kAndi, kShli, kShri,
    kLti, kLei, kEqi, kNei,

    // Floating point (values are doubles bit-cast into the 64-bit token
    // payload); executed on the shared per-domain FPU.
    kFadd, kFsub, kFmul, kFdiv,
    kFlt, kFeq,
    kItoF, kFtoI,

    // WaveScalar control.
    kSteer,        ///< (data, pred): route data to true/false target list.
    kSelect,       ///< (pred, a, b): 3-input select; pred is single-bit.
    kWaveAdvance,  ///< 1 input; re-tags it with wave+1.

    // Wave-ordered memory interface.
    kLoad,         ///< (addr): request *(addr+imm); reply to consumers.
    kStoreAddr,    ///< (addr): address half of a decoupled store.
    kStoreData,    ///< (value): data half of a decoupled store.
    kMemNop,       ///< 1 trigger input; placeholder in the ordering chain.

    kNumOpcodes
};

/** Static properties of an opcode. */
struct OpcodeInfo
{
    std::string_view name;
    std::uint8_t arity;     ///< Number of input operand ports (1..3).
    bool useful;            ///< Counts toward AIPC.
    bool floatingPoint;     ///< Executes on the shared domain FPU.
    bool memory;            ///< Talks to the wave-ordered store buffer.
    std::uint8_t latency;   ///< EXECUTE occupancy in cycles (FP: FPU pipe
                            ///  latency; fully pipelined).
};

/** Look up the static properties of @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Short mnemonic, e.g. "add". */
std::string_view opcodeName(Opcode op);

/** True for kLoad / kStoreAddr / kStoreData / kMemNop. */
inline bool
isMemoryOp(Opcode op)
{
    return opcodeInfo(op).memory;
}

/**
 * Coarse opcode classification for instruction-mix accounting. Derived
 * from the kInfoTable bits, so the AIPC numerator ("useful") has exactly
 * one definition: kCompute and kMemory count; kControl and kPlumbing are
 * WaveScalar overhead, excluded from the metric as in the paper.
 */
enum class OpClass : std::uint8_t
{
    kCompute,   ///< Useful ALU/FP/select work (Alpha-equivalent).
    kMemory,    ///< Useful memory interface ops (load, store_addr).
    kControl,   ///< Tag plumbing: steer, wave_advance.
    kPlumbing,  ///< Pure overhead: nop, sink, store_data, mem_nop.
};

/** Classify @p op (see OpClass). */
OpClass opcodeClass(Opcode op);

/** True when @p op counts toward AIPC (kCompute or kMemory). */
inline bool
isUsefulOp(Opcode op)
{
    return opcodeInfo(op).useful;
}

} // namespace ws

#endif // WS_ISA_OPCODE_H_
