/**
 * @file
 * Dataflow tokens: a tagged value in flight toward a consumer port.
 */

#ifndef WS_ISA_TOKEN_H_
#define WS_ISA_TOKEN_H_

#include <bit>

#include "common/types.h"
#include "isa/instruction.h"
#include "isa/tag.h"

namespace ws {

/** A value travelling to input port dst.port of instruction dst.inst. */
struct Token
{
    Tag tag;
    PortRef dst;
    Value value = 0;

    bool operator==(const Token &) const = default;
};

/** Reinterpret a token payload as a double (FP opcodes). */
inline double
asDouble(Value v)
{
    return std::bit_cast<double>(v);
}

/** Reinterpret a double as a token payload. */
inline Value
fromDouble(double d)
{
    return std::bit_cast<Value>(d);
}

} // namespace ws

#endif // WS_ISA_TOKEN_H_
