#include "isa/opcode.h"

#include <array>

#include "common/log.h"

namespace ws {

namespace {

// Integer ALU ops take 1 cycle: the paper's 20 FO4 critical path runs
// *through* the pod-bypassed integer multiplier, i.e. even kMul completes
// in a single cycle. Divide is iterative and modelled at 4 cycles.
// FP ops run on the pipelined domain FPU with a 3-cycle latency.
constexpr std::uint8_t kIntLat = 1;
constexpr std::uint8_t kDivLat = 4;
constexpr std::uint8_t kFpLat = 3;

constexpr std::array<OpcodeInfo,
                     static_cast<std::size_t>(Opcode::kNumOpcodes)>
    kInfoTable = {{
        // name        arity useful fp     mem    latency
        {"nop",          1, false, false, false, kIntLat},
        {"const",        1, true,  false, false, kIntLat},
        {"mov",          1, true,  false, false, kIntLat},
        {"sink",         1, false, false, false, kIntLat},

        {"add",          2, true,  false, false, kIntLat},
        {"sub",          2, true,  false, false, kIntLat},
        {"mul",          2, true,  false, false, kIntLat},
        {"div",          2, true,  false, false, kDivLat},
        {"rem",          2, true,  false, false, kDivLat},
        {"and",          2, true,  false, false, kIntLat},
        {"or",           2, true,  false, false, kIntLat},
        {"xor",          2, true,  false, false, kIntLat},
        {"shl",          2, true,  false, false, kIntLat},
        {"shr",          2, true,  false, false, kIntLat},
        {"lt",           2, true,  false, false, kIntLat},
        {"le",           2, true,  false, false, kIntLat},
        {"eq",           2, true,  false, false, kIntLat},
        {"ne",           2, true,  false, false, kIntLat},
        {"min",          2, true,  false, false, kIntLat},
        {"max",          2, true,  false, false, kIntLat},
        {"neg",          1, true,  false, false, kIntLat},
        {"not",          1, true,  false, false, kIntLat},

        {"addi",         1, true,  false, false, kIntLat},
        {"subi",         1, true,  false, false, kIntLat},
        {"muli",         1, true,  false, false, kIntLat},
        {"divi",         1, true,  false, false, kDivLat},
        {"remi",         1, true,  false, false, kDivLat},
        {"andi",         1, true,  false, false, kIntLat},
        {"shli",         1, true,  false, false, kIntLat},
        {"shri",         1, true,  false, false, kIntLat},
        {"lti",          1, true,  false, false, kIntLat},
        {"lei",          1, true,  false, false, kIntLat},
        {"eqi",          1, true,  false, false, kIntLat},
        {"nei",          1, true,  false, false, kIntLat},

        {"fadd",         2, true,  true,  false, kFpLat},
        {"fsub",         2, true,  true,  false, kFpLat},
        {"fmul",         2, true,  true,  false, kFpLat},
        {"fdiv",         2, true,  true,  false, kFpLat},
        {"flt",          2, true,  true,  false, kFpLat},
        {"feq",          2, true,  true,  false, kFpLat},
        {"itof",         1, true,  true,  false, kFpLat},
        {"ftoi",         1, true,  true,  false, kFpLat},

        {"steer",        2, false, false, false, kIntLat},
        {"select",       3, true,  false, false, kIntLat},
        {"wave_advance", 1, false, false, false, kIntLat},

        {"load",         1, true,  false, true,  kIntLat},
        {"store_addr",   1, true,  false, true,  kIntLat},
        {"store_data",   1, false, false, true,  kIntLat},
        {"mem_nop",      1, false, false, true,  kIntLat},
    }};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    if (idx >= kInfoTable.size())
        panic("opcodeInfo: opcode %zu out of range", idx);
    return kInfoTable[idx];
}

std::string_view
opcodeName(Opcode op)
{
    return opcodeInfo(op).name;
}

OpClass
opcodeClass(Opcode op)
{
    const OpcodeInfo &info = opcodeInfo(op);
    if (info.useful)
        return info.memory ? OpClass::kMemory : OpClass::kCompute;
    if (op == Opcode::kSteer || op == Opcode::kWaveAdvance)
        return OpClass::kControl;
    return OpClass::kPlumbing;
}

} // namespace ws
