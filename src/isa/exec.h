/**
 * @file
 * Functional semantics of the dataflow ISA: given an opcode, immediate,
 * and input operands, compute the result value. The PE's EXECUTE stage
 * and the reference interpreter both call this, so the two can never
 * disagree about what an instruction computes.
 */

#ifndef WS_ISA_EXEC_H_
#define WS_ISA_EXEC_H_

#include <array>

#include "common/types.h"
#include "isa/opcode.h"

namespace ws {

/** Up to three input operands, indexed by port. */
using Operands = std::array<Value, 3>;

/**
 * Evaluate a non-memory, non-control opcode.
 *
 * kSteer returns its data operand (routing is the caller's job); memory
 * opcodes return the effective address (input0 + imm) for kLoad /
 * kStoreAddr and the data value for kStoreData. Division by zero returns
 * 0, matching the usual simulator convention rather than trapping.
 */
Value evaluate(Opcode op, Value imm, const Operands &in);

} // namespace ws

#endif // WS_ISA_EXEC_H_
