#include "isa/graph.h"

#include <vector>

#include "common/log.h"

namespace ws {

std::size_t
DataflowGraph::threadSize(ThreadId t) const
{
    std::size_t n = 0;
    for (const auto &inst : insts_) {
        if (inst.thread == t)
            ++n;
    }
    return n;
}

std::size_t
DataflowGraph::usefulSize() const
{
    std::size_t n = 0;
    for (const auto &inst : insts_) {
        if (inst.useful())
            ++n;
    }
    return n;
}

void
DataflowGraph::validate() const
{
    const InstId n = static_cast<InstId>(insts_.size());

    // Per-port producer counts, to detect starved inputs.
    std::vector<std::uint32_t> feeds;
    feeds.assign(static_cast<std::size_t>(n) * 3, 0);
    auto feed = [&](const PortRef &p, InstId src, int side) {
        if (p.inst >= n) {
            fatal("graph '%s': inst %u out side %d targets nonexistent "
                  "inst %u", name_.c_str(), src, side, p.inst);
        }
        const Instruction &dst = insts_[p.inst];
        if (p.port >= dst.arity()) {
            fatal("graph '%s': inst %u targets port %u of inst %u (%s, "
                  "arity %u)", name_.c_str(), src, p.port, p.inst,
                  std::string(opcodeName(dst.op)).c_str(), dst.arity());
        }
        ++feeds[static_cast<std::size_t>(p.inst) * 3 + p.port];
    };

    for (InstId i = 0; i < n; ++i) {
        const Instruction &inst = insts_[i];
        if (!inst.isSteer() && !inst.outs[1].empty()) {
            fatal("graph '%s': inst %u (%s) has a false-side target list "
                  "but is not a steer", name_.c_str(), i,
                  std::string(opcodeName(inst.op)).c_str());
        }
        if (inst.mem.valid != isMemoryOp(inst.op)) {
            fatal("graph '%s': inst %u (%s) memory annotation mismatch",
                  name_.c_str(), i,
                  std::string(opcodeName(inst.op)).c_str());
        }
        if (inst.thread >= numThreads_) {
            fatal("graph '%s': inst %u claims thread %u but graph has %u "
                  "threads", name_.c_str(), i, inst.thread, numThreads_);
        }
        for (int side = 0; side < 2; ++side) {
            for (const PortRef &p : inst.outs[side])
                feed(p, i, side);
        }
    }

    for (const Token &t : initialTokens_) {
        if (t.dst.inst >= n) {
            fatal("graph '%s': initial token targets nonexistent inst %u",
                  name_.c_str(), t.dst.inst);
        }
        const Instruction &dst = insts_[t.dst.inst];
        if (t.dst.port >= dst.arity()) {
            fatal("graph '%s': initial token targets port %u of inst %u "
                  "(arity %u)", name_.c_str(), t.dst.port, t.dst.inst,
                  dst.arity());
        }
        if (t.tag.thread >= numThreads_) {
            fatal("graph '%s': initial token names thread %u of %u",
                  name_.c_str(), t.tag.thread, numThreads_);
        }
        ++feeds[static_cast<std::size_t>(t.dst.inst) * 3 + t.dst.port];
    }

    // Every input port must have at least one potential producer, or the
    // instruction can never fire.
    for (InstId i = 0; i < n; ++i) {
        const Instruction &inst = insts_[i];
        for (std::uint8_t p = 0; p < inst.arity(); ++p) {
            if (feeds[static_cast<std::size_t>(i) * 3 + p] == 0) {
                fatal("graph '%s': inst %u (%s) port %u has no producer",
                      name_.c_str(), i,
                      std::string(opcodeName(inst.op)).c_str(), p);
            }
        }
    }

    // Wave-ordering chains: sequence numbers must be dense from 0 in
    // region order; links must stay inside the region and point
    // forward/backward respectively (branch diamonds produce wildcard
    // links and concrete links that skip over the untaken arm, so exact
    // adjacency is not required); every op must belong to one thread.
    for (std::size_t r = 0; r < memRegions_.size(); ++r) {
        const auto &chain = memRegions_[r];
        if (chain.empty())
            fatal("graph '%s': empty memory region %zu", name_.c_str(), r);
        ThreadId thread = insts_.at(chain[0]).thread;
        const auto len = static_cast<std::int32_t>(chain.size());
        for (std::size_t k = 0; k < chain.size(); ++k) {
            const Instruction &op = insts_.at(chain[k]);
            if (!op.mem.valid) {
                fatal("graph '%s': region %zu inst %u lacks a memory "
                      "annotation", name_.c_str(), r, chain[k]);
            }
            if (op.thread != thread) {
                fatal("graph '%s': region %zu mixes threads %u and %u",
                      name_.c_str(), r, thread, op.thread);
            }
            if (op.mem.seq != static_cast<std::int32_t>(k)) {
                fatal("graph '%s': region %zu position %zu has seq %d",
                      name_.c_str(), r, k, op.mem.seq);
            }
            const bool prev_ok = op.mem.prev == kSeqNone ||
                                 op.mem.prev == kSeqWildcard ||
                                 (op.mem.prev >= 0 &&
                                  op.mem.prev < op.mem.seq);
            const bool next_ok = op.mem.next == kSeqNone ||
                                 op.mem.next == kSeqWildcard ||
                                 (op.mem.next > op.mem.seq &&
                                  op.mem.next < len);
            if (!prev_ok) {
                fatal("graph '%s': region %zu seq %zu has prev %d",
                      name_.c_str(), r, k, op.mem.prev);
            }
            if (!next_ok) {
                fatal("graph '%s': region %zu seq %zu has next %d",
                      name_.c_str(), r, k, op.mem.next);
            }
        }
    }
}

StatReport
DataflowGraph::staticStats() const
{
    StatReport r;
    r.add("static.instructions", static_cast<Counter>(insts_.size()));
    r.add("static.useful", static_cast<Counter>(usefulSize()));
    r.add("static.threads", static_cast<Counter>(numThreads_));
    r.add("static.initial_tokens",
          static_cast<Counter>(initialTokens_.size()));

    std::vector<Counter> by_op(static_cast<std::size_t>(Opcode::kNumOpcodes),
                               0);
    Counter mem_ops = 0;
    Counter fp_ops = 0;
    for (const auto &inst : insts_) {
        ++by_op[static_cast<std::size_t>(inst.op)];
        if (isMemoryOp(inst.op))
            ++mem_ops;
        if (opcodeInfo(inst.op).floatingPoint)
            ++fp_ops;
    }
    r.add("static.memory_ops", mem_ops);
    r.add("static.fp_ops", fp_ops);
    for (std::size_t i = 0; i < by_op.size(); ++i) {
        if (by_op[i] != 0) {
            r.add("static.op." +
                      std::string(opcodeName(static_cast<Opcode>(i))),
                  by_op[i]);
        }
    }
    return r;
}

} // namespace ws
