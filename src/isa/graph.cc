#include "isa/graph.h"

#include <vector>

#include "common/log.h"
#include "verify/verifier.h"

namespace ws {

std::size_t
DataflowGraph::threadSize(ThreadId t) const
{
    std::size_t n = 0;
    for (const auto &inst : insts_) {
        if (inst.thread == t)
            ++n;
    }
    return n;
}

std::size_t
DataflowGraph::usefulSize() const
{
    std::size_t n = 0;
    for (const auto &inst : insts_) {
        if (inst.useful())
            ++n;
    }
    return n;
}

void
DataflowGraph::validate() const
{
    const VerifyReport rep = verify(*this);
    if (!rep.ok()) {
        fatal("graph '%s' failed verification:\n%s", name_.c_str(),
              rep.render().c_str());
    }
}

StatReport
DataflowGraph::staticStats() const
{
    StatReport r;
    r.add("static.instructions", static_cast<Counter>(insts_.size()));
    r.add("static.useful", static_cast<Counter>(usefulSize()));
    r.add("static.threads", static_cast<Counter>(numThreads_));
    r.add("static.initial_tokens",
          static_cast<Counter>(initialTokens_.size()));

    std::vector<Counter> by_op(static_cast<std::size_t>(Opcode::kNumOpcodes),
                               0);
    Counter mem_ops = 0;
    Counter fp_ops = 0;
    for (const auto &inst : insts_) {
        ++by_op[static_cast<std::size_t>(inst.op)];
        if (isMemoryOp(inst.op))
            ++mem_ops;
        if (opcodeInfo(inst.op).floatingPoint)
            ++fp_ops;
    }
    r.add("static.memory_ops", mem_ops);
    r.add("static.fp_ops", fp_ops);
    for (std::size_t i = 0; i < by_op.size(); ++i) {
        if (by_op[i] != 0) {
            r.add("static.op." +
                      std::string(opcodeName(static_cast<Opcode>(i))),
                  by_op[i]);
        }
    }
    return r;
}

} // namespace ws
