#include "isa/graph.h"

#include <vector>

#include "common/log.h"
#include "verify/verifier.h"

namespace ws {

std::size_t
DataflowGraph::threadSize(ThreadId t) const
{
    std::size_t n = 0;
    for (const auto &inst : insts_) {
        if (inst.thread == t)
            ++n;
    }
    return n;
}

namespace {

void
tally(InstructionMix &mix, const Instruction &inst)
{
    ++mix.total;
    switch (opcodeClass(inst.op)) {
      case OpClass::kCompute:
        ++mix.compute;
        ++mix.useful;
        break;
      case OpClass::kMemory:
        ++mix.memory;
        ++mix.useful;
        break;
      case OpClass::kControl:
        ++mix.control;
        break;
      case OpClass::kPlumbing:
        ++mix.plumbing;
        break;
    }
    if (opcodeInfo(inst.op).floatingPoint)
        ++mix.fp;
    if (isMemoryOp(inst.op))
        ++mix.memoryAll;
}

} // namespace

std::size_t
DataflowGraph::usefulSize() const
{
    return static_cast<std::size_t>(mix().useful);
}

InstructionMix
DataflowGraph::mix() const
{
    InstructionMix m;
    for (const auto &inst : insts_)
        tally(m, inst);
    return m;
}

InstructionMix
DataflowGraph::threadMix(ThreadId t) const
{
    InstructionMix m;
    for (const auto &inst : insts_) {
        if (inst.thread == t)
            tally(m, inst);
    }
    return m;
}

void
DataflowGraph::validate() const
{
    const VerifyReport rep = verify(*this);
    if (!rep.ok()) {
        fatal("graph '%s' failed verification:\n%s", name_.c_str(),
              rep.render().c_str());
    }
}

StatReport
DataflowGraph::staticStats() const
{
    StatReport r;
    const InstructionMix m = mix();
    r.add("static.instructions", m.total);
    r.add("static.useful", m.useful);
    r.add("static.threads", static_cast<Counter>(numThreads_));
    r.add("static.initial_tokens",
          static_cast<Counter>(initialTokens_.size()));
    r.add("static.memory_ops", m.memoryAll);
    r.add("static.fp_ops", m.fp);
    r.add("static.control_ops", m.control);
    r.add("static.plumbing_ops", m.plumbing);

    std::vector<Counter> by_op(static_cast<std::size_t>(Opcode::kNumOpcodes),
                               0);
    for (const auto &inst : insts_)
        ++by_op[static_cast<std::size_t>(inst.op)];
    for (std::size_t i = 0; i < by_op.size(); ++i) {
        if (by_op[i] != 0) {
            r.add("static.op." +
                      std::string(opcodeName(static_cast<Opcode>(i))),
                  by_op[i]);
        }
    }
    return r;
}

} // namespace ws
