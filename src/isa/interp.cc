#include "isa/interp.h"

#include <deque>
#include <functional>

#include "common/log.h"
#include "isa/exec.h"
#include "isa/token.h"

namespace ws {

namespace {

struct PendingMemOp
{
    const Instruction *inst = nullptr;
    InstId id = kInvalidInst;
    Addr addr = 0;
    std::int32_t seq = 0;
    std::int32_t prev = kSeqNone;
    std::int32_t next = kSeqNone;
};

struct ThreadMem
{
    WaveNum currentWave = 0;
    // wave → (seq → op)
    std::map<WaveNum, std::map<std::int32_t, PendingMemOp>> waves;
};

} // namespace

InterpResult
interpret(const DataflowGraph &graph, std::uint64_t max_steps)
{
    InterpResult result;
    std::deque<Token> work(graph.initialTokens().begin(),
                           graph.initialTokens().end());
    std::unordered_map<std::uint64_t, std::pair<std::uint8_t, Operands>>
        partial;  // (inst,tag) → (present mask, operands)
    std::unordered_map<std::uint64_t, Value> store_data;  // (tag,seq) key.
    std::map<Addr, Value> &mem = result.memory;
    for (const auto &[addr, v] : graph.memInit())
        mem[addr & ~Addr{7}] = v;
    std::map<ThreadId, ThreadMem> tmem;

    auto key_of = [](InstId inst, const Tag &tag) {
        return (static_cast<std::uint64_t>(inst) << 48) ^ tag.packed();
    };
    auto data_key = [](const Tag &tag, std::int32_t seq) {
        return tag.packed() * 131 +
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(seq));
    };

    auto emit = [&](const Instruction &inst, int side, const Tag &tag,
                    Value v) {
        for (const PortRef &ref : inst.outs[side])
            work.push_back(Token{tag, ref, v});
    };

    // Per (thread, wave) chain-issue state.
    std::map<std::pair<ThreadId, WaveNum>,
             std::pair<std::int32_t, std::int32_t>>
        chain_state;  // → (lastIssued, nextExpected)

    std::function<void(ThreadId)> issue_thread = [&](ThreadId t) {
        ThreadMem &tm = tmem[t];
        bool progress = true;
        while (progress) {
            progress = false;
            auto w_it = tm.waves.find(tm.currentWave);
            if (w_it == tm.waves.end())
                return;
            auto &ops = w_it->second;
            auto state_it = chain_state.try_emplace(
                {t, tm.currentWave},
                std::pair<std::int32_t, std::int32_t>(kSeqNone,
                                                      kSeqWildcard));
            auto &[last_issued, next_expected] = state_it.first->second;
            const PendingMemOp *op = nullptr;
            if (next_expected == kSeqWildcard) {
                for (const auto &[seq, cand] : ops) {
                    if (cand.prev == last_issued) {
                        op = &cand;
                        break;
                    }
                }
            } else {
                auto it = ops.find(next_expected);
                if (it != ops.end())
                    op = &it->second;
            }
            if (op == nullptr)
                return;

            // Issue: perform the access and feed consumers.
            const PendingMemOp copy = *op;
            const Tag tag{t, tm.currentWave};
            switch (copy.inst->op) {
              case Opcode::kLoad: {
                auto m_it = mem.find(copy.addr & ~Addr{7});
                const Value v = m_it == mem.end() ? 0 : m_it->second;
                emit(*copy.inst, 0, tag, v);
                break;
              }
              case Opcode::kStoreAddr: {
                auto d_it = store_data.find(data_key(tag, copy.seq));
                if (d_it == store_data.end())
                    return;  // Data half not here yet; wait.
                mem[copy.addr & ~Addr{7}] = d_it->second;
                store_data.erase(d_it);
                break;
              }
              case Opcode::kMemNop:
                break;
              default:
                panic("interp: bad memory op in chain");
            }
            ops.erase(copy.seq);
            last_issued = copy.seq;
            next_expected = copy.next;
            progress = true;
            if (copy.next == kSeqNone) {
                if (!ops.empty())
                    panic("interp: wave (%u,%u) ends with %zu stray ops",
                          t, tm.currentWave, ops.size());
                tm.waves.erase(w_it);
                chain_state.erase({t, tm.currentWave});
                ++tm.currentWave;
            }
        }
    };

    std::uint64_t steps = 0;
    while (!work.empty()) {
        if (++steps > max_steps)
            fatal("interpret: exceeded %llu steps (non-terminating graph?)",
                  static_cast<unsigned long long>(max_steps));
        Token token = work.front();
        work.pop_front();

        const Instruction &inst = graph.inst(token.dst.inst);
        const std::uint8_t arity = inst.arity();

        Operands ops{0, 0, 0};
        if (arity > 1 || true) {
            // Match (even single-operand instructions pass through for
            // uniformity).
            const std::uint64_t key = key_of(token.dst.inst, token.tag);
            auto &[mask, vals] = partial[key];
            vals[token.dst.port] = token.value;
            mask |= static_cast<std::uint8_t>(1u << token.dst.port);
            const std::uint8_t full =
                static_cast<std::uint8_t>((1u << arity) - 1);
            if ((mask & full) != full)
                continue;
            ops = vals;
            partial.erase(key);
        }

        ++result.executed;
        if (inst.useful())
            ++result.useful;

        switch (inst.op) {
          case Opcode::kSink:
            ++result.sinkTokens;
            result.sinkValues.push_back(ops[0]);
            break;
          case Opcode::kSteer:
            emit(inst, ops[1] != 0 ? 0 : 1, token.tag, ops[0]);
            break;
          case Opcode::kWaveAdvance:
            emit(inst, 0, token.tag.nextWave(), ops[0]);
            break;
          case Opcode::kLoad:
          case Opcode::kStoreAddr:
          case Opcode::kMemNop: {
            PendingMemOp op;
            op.inst = &inst;
            op.id = token.dst.inst;
            op.addr = static_cast<Addr>(evaluate(inst.op, inst.imm, ops));
            op.seq = inst.mem.seq;
            op.prev = inst.mem.prev;
            op.next = inst.mem.next;
            tmem[token.tag.thread].waves[token.tag.wave].emplace(op.seq,
                                                                 op);
            issue_thread(token.tag.thread);
            break;
          }
          case Opcode::kStoreData:
            store_data[data_key(token.tag, inst.mem.seq)] = ops[0];
            issue_thread(token.tag.thread);
            break;
          default:
            emit(inst, 0, token.tag, evaluate(inst.op, inst.imm, ops));
            break;
        }
    }

    result.completed = graph.expectedSinkTokens() == 0 ||
                       result.sinkTokens >= graph.expectedSinkTokens();
    // Drop zero words for a clean comparison surface.
    for (auto it = mem.begin(); it != mem.end();) {
        it = it->second == 0 ? mem.erase(it) : std::next(it);
    }
    return result;
}

} // namespace ws
