/**
 * @file
 * GraphBuilder: a structured front end for constructing valid dataflow
 * programs.
 *
 * The builder plays the role of the paper's binary-translator tool-chain.
 * It enforces the invariants tagged-token execution depends on:
 *
 *  - *Wave regions.* Each value handle (Node) belongs to a region — a
 *    span of code whose tokens share a wave number at run time. Mixing
 *    operands from different regions would silently never match, so the
 *    builder rejects it at construction time.
 *  - *Wave-ordered memory.* Memory operations are threaded onto a
 *    per-region ordering chain with <prev, this, next> annotations. Every
 *    region is guaranteed at least one chain entry (a MEM_NOP is inserted
 *    if needed) so the store buffer always observes waves 0,1,2,... per
 *    thread — the same guarantee the WaveScalar compiler provides by
 *    inserting MEMORY-NOPs on memory-free paths.
 *  - *Loop structure.* beginLoop/endLoop wrap loop-carried values in
 *    WAVE_ADVANCE + STEER plumbing, so loop bodies run one wave per
 *    iteration and loop exits re-enter a fresh region.
 */

#ifndef WS_ISA_GRAPH_BUILDER_H_
#define WS_ISA_GRAPH_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/graph.h"

namespace ws {

class GraphBuilder
{
  public:
    /** A value handle: instruction output @p side of instruction @p id. */
    struct Node
    {
        InstId id = kInvalidInst;
        std::uint8_t side = 0;
        std::uint32_t region = 0;

        bool valid() const { return id != kInvalidInst; }
    };

    /** Handle returned by beginLoop; consumed by endLoop. */
    struct Loop
    {
        std::vector<Node> vars;    ///< Current-iteration values (in body).
        std::vector<Node> exits;   ///< Post-loop values (set by endLoop).
        std::vector<InstId> waveAdv;
        std::uint32_t bodyRegion = 0;
        bool open = false;
    };

    /** Handle returned by beginIf; consumed by elseArm + endIf. */
    struct IfElse
    {
        std::vector<Node> vars;    ///< Live values inside the current arm.
        std::vector<Node> merged;  ///< Post-diamond values (set by endIf).
        std::vector<InstId> steers;
        Node thenTrigger;          ///< A then-arm value (MEM_NOP anchor).
        std::vector<Node> thenOut;
        std::size_t preChainLen = 0;
        std::size_t thenChainLen = 0;
        bool inElse = false;
        bool open = false;
    };

    explicit GraphBuilder(std::string name, std::uint16_t num_threads = 1);

    // Thread structure ----------------------------------------------------

    /** Start emitting instructions for thread @p t (wave-0 region). */
    void beginThread(ThreadId t);

    /** Finish the current thread; closes its final wave region. */
    void endThread();

    // Values ---------------------------------------------------------------

    /** Program input: a kMov fed by an initial token carrying @p v. */
    Node param(Value v);

    /** Literal: a kConst producing @p v each time @p trigger fires. */
    Node lit(Value v, Node trigger);

    /** Generic emission: @p op over 1–3 input nodes. */
    Node emit(Opcode op, const std::vector<Node> &inputs, Value imm = 0);

    // Sugar for the common ALU shapes.
    Node add(Node a, Node b) { return emit(Opcode::kAdd, {a, b}); }
    Node sub(Node a, Node b) { return emit(Opcode::kSub, {a, b}); }
    Node mul(Node a, Node b) { return emit(Opcode::kMul, {a, b}); }
    Node addi(Node a, Value c) { return emit(Opcode::kAddi, {a}, c); }
    Node subi(Node a, Value c) { return emit(Opcode::kSubi, {a}, c); }
    Node muli(Node a, Value c) { return emit(Opcode::kMuli, {a}, c); }
    Node andi(Node a, Value c) { return emit(Opcode::kAndi, {a}, c); }
    Node shli(Node a, Value c) { return emit(Opcode::kShli, {a}, c); }
    Node shri(Node a, Value c) { return emit(Opcode::kShri, {a}, c); }
    Node lti(Node a, Value c) { return emit(Opcode::kLti, {a}, c); }
    Node eqi(Node a, Value c) { return emit(Opcode::kEqi, {a}, c); }
    Node nei(Node a, Value c) { return emit(Opcode::kNei, {a}, c); }
    Node fadd(Node a, Node b) { return emit(Opcode::kFadd, {a, b}); }
    Node fsub(Node a, Node b) { return emit(Opcode::kFsub, {a, b}); }
    Node fmul(Node a, Node b) { return emit(Opcode::kFmul, {a, b}); }
    Node fdiv(Node a, Node b) { return emit(Opcode::kFdiv, {a, b}); }
    Node select(Node pred, Node a, Node b)
    {
        return emit(Opcode::kSelect, {pred, a, b});
    }

    // Memory ---------------------------------------------------------------

    /** Bump-allocate @p bytes of simulated memory (8-byte aligned). */
    Addr alloc(std::size_t bytes);

    /** Initialize one word of the memory image. */
    void initMem(Addr addr, Value v);

    /** Load the word at (addr + offset); appended to the wave chain. */
    Node load(Node addr, Value offset = 0);

    /**
     * Store @p data to (addr + offset). Emits the decoupled
     * kStoreAddr/kStoreData pair sharing one ordering-chain slot.
     */
    void store(Node addr, Node data, Value offset = 0);

    /** Explicit ordering-chain placeholder, fired by @p trigger. */
    void memNop(Node trigger);

    // Control --------------------------------------------------------------

    /**
     * Open a loop whose carried values start at @p inits. Returns body
     * handles (Loop::vars) re-tagged into the body region.
     */
    Loop beginLoop(const std::vector<Node> &inits);

    /**
     * Close a loop: next-iteration values @p nexts re-enter the body
     * while @p cond is nonzero; on exit, Loop::exits hold the final
     * values in a fresh post-loop region.
     */
    void endLoop(Loop &loop, const std::vector<Node> &nexts, Node cond);

    /**
     * Open a conditional diamond: while @p cond is nonzero the then-arm
     * executes, otherwise the else-arm. @p ins are steered into the
     * taken arm (IfElse::vars). Both arms run in the *same* wave; memory
     * operations inside arms receive the paper's '?' wildcard
     * wave-ordering links, and an arm without memory operations gets a
     * MEMORY-NOP when the other arm has any (§3.3.1). Conditionals may
     * nest only if the nested arms perform no memory operations.
     */
    IfElse beginIf(Node cond, const std::vector<Node> &ins);

    /** Switch to the else-arm; @p then_results are the arm's outputs. */
    void elseArm(IfElse &ie, const std::vector<Node> &then_results);

    /**
     * Close the diamond. @p else_results must match then_results in
     * count; IfElse::merged then holds the per-value merge of whichever
     * arm executed.
     */
    void endIf(IfElse &ie, const std::vector<Node> &else_results);

    /** Terminal consumer; declares @p expected_tokens arrivals. */
    void sink(Node v, Counter expected_tokens = 1);

    // ------------------------------------------------------------------

    /** Validate and hand over the finished graph. */
    DataflowGraph finish();

    /** Access to the graph under construction (tests). */
    const DataflowGraph &peek() const { return graph_; }

  private:
    Node emitImpl(Opcode op, const std::vector<Node> &inputs, Value imm,
                  bool allow_cross_region);
    void connect(Node producer, InstId consumer, std::uint8_t port);
    void appendMemChain(InstId id);
    void closeRegion();
    void newRegion(Node anchor);
    void requireThread(const char *what) const;
    void checkRegion(const Node &n, const char *what) const;

    DataflowGraph graph_;
    Addr nextAddr_ = 0x1000;
    ThreadId thread_ = 0;
    bool inThread_ = false;
    std::uint32_t regionCounter_ = 0;
    std::uint32_t region_ = 0;      ///< Current region id.
    Node anchor_;                   ///< Trigger for MEM_NOP insertion.
    std::vector<InstId> memChain_;  ///< Current region's ordering chain.
    std::vector<std::uint32_t> loopStack_;  ///< Open loops (body regions).

    /** Diamond chain-state: how the next memory op links backward. */
    enum class ChainMode : std::uint8_t
    {
        kLinear,       ///< Normal: prev = previous chain op.
        kArmFirst,     ///< First op of an arm: prev = pre-diamond op.
        kAfterDiamond, ///< First op after endIf: prev = '?', and the
                       ///  arm-last ops' next links point here.
    };
    ChainMode chainMode_ = ChainMode::kLinear;
    std::int32_t armPrev_ = kSeqNone;       ///< Pre-diamond op seq.
    std::vector<InstId> diamondLasts_;      ///< Arm-last ops to patch.
    int ifDepth_ = 0;
    bool finished_ = false;
};

} // namespace ws

#endif // WS_ISA_GRAPH_BUILDER_H_
