/**
 * @file
 * Static dataflow instructions and their wave-ordered memory annotations.
 */

#ifndef WS_ISA_INSTRUCTION_H_
#define WS_ISA_INSTRUCTION_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/opcode.h"

namespace ws {

/** One consumer input port of one instruction. */
struct PortRef
{
    InstId inst = kInvalidInst;
    std::uint8_t port = 0;

    bool operator==(const PortRef &) const = default;
};

/** Sequence-link sentinel values for wave-ordered memory annotations. */
enum : std::int32_t
{
    kSeqNone = -1,      ///< No predecessor (first op) / successor (last).
    kSeqWildcard = -2,  ///< '?': unknown until run time (control flow).
};

/**
 * Wave-ordered memory annotation <prev, this, next> (paper §3.3.1).
 *
 * Within one dynamic wave, the memory operations of a thread form a
 * chain; the store buffer uses these links to recover program order and
 * to detect when the chain for a wave is complete. kSeqWildcard prev/next
 * links arise from memory ops inside conditional control flow.
 */
struct MemOrder
{
    std::int32_t prev = kSeqNone;
    std::int32_t seq = 0;
    std::int32_t next = kSeqNone;
    bool valid = false;   ///< True only for memory opcodes.
};

/**
 * A static dataflow instruction.
 *
 * Outputs: ordinary instructions fan their single result out to
 * outs[0]; kSteer sends its data input to outs[0] (predicate true) or
 * outs[1] (predicate false).
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    Value imm = 0;                  ///< kConst value; kLoad/kStoreAddr
                                    ///  address offset.
    ThreadId thread = 0;            ///< Owning software thread (kernels
                                    ///  replicate code per thread).
    MemOrder mem;                   ///< Wave-ordering annotation.
    std::vector<PortRef> outs[2];   ///< Consumer lists (see above).

    std::uint8_t arity() const { return opcodeInfo(op).arity; }
    bool useful() const { return opcodeInfo(op).useful; }
    bool isSteer() const { return op == Opcode::kSteer; }
};

} // namespace ws

#endif // WS_ISA_INSTRUCTION_H_
