/**
 * @file
 * Token tags for WaveScalar's tagged-token dynamic dataflow execution.
 *
 * A tag names one dynamic instance of a static instruction: the software
 * thread it belongs to and the wave (roughly, loop iteration) it executes
 * in. Two operand tokens match — and their consumer may fire — only when
 * their tags are equal.
 */

#ifndef WS_ISA_TAG_H_
#define WS_ISA_TAG_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/types.h"

namespace ws {

/** Dynamic-instance tag: (thread, wave). */
struct Tag
{
    ThreadId thread = 0;
    WaveNum wave = 0;

    bool operator==(const Tag &) const = default;
    auto operator<=>(const Tag &) const = default;

    /** Tag for the next wave of the same thread. */
    Tag nextWave() const { return Tag{thread, wave + 1}; }

    /** Pack into a 64-bit key for hashing. */
    std::uint64_t
    packed() const
    {
        return (static_cast<std::uint64_t>(thread) << 32) | wave;
    }
};

/** FNV-style mix of a tag; used by unordered containers. */
struct TagHash
{
    std::size_t
    operator()(const Tag &t) const
    {
        std::uint64_t x = t.packed();
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }
};

} // namespace ws

#endif // WS_ISA_TAG_H_
