/**
 * @file
 * Textual WaveScalar assembly (.wsa): a serialization of DataflowGraph.
 *
 * The paper's tool-chain compiled Alpha binaries into WaveScalar
 * assembly, assembled them, and fed the result to the simulator. This
 * module provides the equivalent interchange format so programs can be
 * written, inspected, and versioned as text:
 *
 *     .graph dot threads=1 sinks=1
 *     .meminit 0x1000 7
 *     .inst 0 mov t0                    ; one line per instruction
 *     .inst 1 addi t0 imm=4
 *     .inst 2 load t0 imm=8 mem=-1:0:-1
 *     .edge 0:0 -> 1.0                  ; producer[:side] -> consumer.port
 *     .token t0 w0 v42 -> 0.0           ; initial token
 *     .region 2 5 9                     ; wave-ordering chain
 *
 * disassemble() and assemble() round-trip losslessly; assemble() runs
 * the full graph validator, so a hand-written .wsa is checked exactly
 * like a GraphBuilder program.
 */

#ifndef WS_ISA_ASSEMBLY_H_
#define WS_ISA_ASSEMBLY_H_

#include <string>

#include "isa/graph.h"

namespace ws {

/** Render @p graph as .wsa text. */
std::string disassemble(const DataflowGraph &graph);

/**
 * Parse .wsa text into a validated graph; fatal() with file/line
 * diagnostics on malformed input (syntax) and with a full verifier
 * report on semantic errors.
 */
DataflowGraph assemble(const std::string &text);

/**
 * Parse .wsa text without running the verifier. Syntax errors still
 * fatal() with file/line diagnostics; semantic defects are left in the
 * returned graph. wsa-lint uses this to report *all* verification
 * findings instead of dying on the first.
 */
DataflowGraph parseWsa(const std::string &text);

/** Look up an opcode by mnemonic; fatal() on unknown names. */
Opcode opcodeFromName(const std::string &name);

} // namespace ws

#endif // WS_ISA_ASSEMBLY_H_
