#include "isa/assembly.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/log.h"

namespace ws {

namespace {

std::string
memSuffix(const MemOrder &mem)
{
    if (!mem.valid)
        return "";
    std::ostringstream out;
    out << " mem=" << mem.prev << ':' << mem.seq << ':' << mem.next;
    return out.str();
}

/** Tokenize one line, dropping ';' comments. */
std::vector<std::string>
words(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

long long
parseInt(const std::string &s, int line_no, const char *what)
{
    try {
        std::size_t pos = 0;
        const long long v = std::stoll(s, &pos, 0);
        if (pos != s.size())
            throw std::invalid_argument(s);
        return v;
    } catch (const std::exception &) {
        fatal("assemble: line %d: bad %s '%s'", line_no, what, s.c_str());
    }
}

/** Parse "key=value"; fatal when the key does not match. */
std::string
expectKey(const std::string &word, const char *key, int line_no)
{
    const std::string prefix = std::string(key) + "=";
    if (word.rfind(prefix, 0) != 0)
        fatal("assemble: line %d: expected %s=..., got '%s'", line_no,
              key, word.c_str());
    return word.substr(prefix.size());
}

} // namespace

Opcode
opcodeFromName(const std::string &name)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::kNumOpcodes); ++i) {
        const auto op = static_cast<Opcode>(i);
        if (opcodeName(op) == name)
            return op;
    }
    fatal("assemble: unknown opcode '%s'", name.c_str());
}

std::string
disassemble(const DataflowGraph &graph)
{
    std::ostringstream out;
    out << ".graph " << graph.name() << " threads=" << graph.numThreads()
        << " sinks=" << graph.expectedSinkTokens() << "\n";

    for (const auto &[addr, value] : graph.memInit())
        out << ".meminit 0x" << std::hex << addr << std::dec << " "
            << value << "\n";

    for (InstId i = 0; i < graph.size(); ++i) {
        const Instruction &inst = graph.inst(i);
        out << ".inst " << i << " " << opcodeName(inst.op) << " t"
            << inst.thread;
        if (inst.imm != 0 || inst.op == Opcode::kConst)
            out << " imm=" << inst.imm;
        out << memSuffix(inst.mem) << "\n";
    }

    for (InstId i = 0; i < graph.size(); ++i) {
        const Instruction &inst = graph.inst(i);
        for (int side = 0; side < 2; ++side) {
            for (const PortRef &ref : inst.outs[side]) {
                out << ".edge " << i;
                if (side == 1)
                    out << ":1";
                out << " -> " << ref.inst << "."
                    << static_cast<int>(ref.port) << "\n";
            }
        }
    }

    for (const Token &t : graph.initialTokens()) {
        out << ".token t" << t.tag.thread << " w" << t.tag.wave << " v"
            << t.value << " -> " << t.dst.inst << "."
            << static_cast<int>(t.dst.port) << "\n";
    }

    for (const auto &chain : graph.memRegions()) {
        out << ".region";
        for (InstId id : chain)
            out << " " << id;
        out << "\n";
    }
    return out.str();
}

DataflowGraph
parseWsa(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    int line_no = 0;

    DataflowGraph graph;
    bool have_header = false;
    InstId next_inst = 0;

    while (std::getline(in, line)) {
        ++line_no;
        const std::vector<std::string> w = words(line);
        if (w.empty())
            continue;
        const std::string &kind = w[0];

        if (kind == ".graph") {
            if (have_header)
                fatal("assemble: line %d: duplicate .graph", line_no);
            if (w.size() != 4)
                fatal("assemble: line %d: .graph NAME threads=N sinks=N",
                      line_no);
            const auto threads = parseInt(
                expectKey(w[2], "threads", line_no), line_no, "threads");
            const auto sinks = parseInt(expectKey(w[3], "sinks", line_no),
                                        line_no, "sinks");
            if (threads < 1 || threads > 0xffff)
                fatal("assemble: line %d: thread count %lld out of range",
                      line_no, threads);
            graph = DataflowGraph(w[1],
                                  static_cast<std::uint16_t>(threads));
            graph.setExpectedSinkTokens(static_cast<Counter>(sinks));
            have_header = true;
            continue;
        }
        if (!have_header)
            fatal("assemble: line %d: .graph header must come first",
                  line_no);

        if (kind == ".meminit") {
            if (w.size() != 3)
                fatal("assemble: line %d: .meminit ADDR VALUE", line_no);
            graph.addMemInit(
                static_cast<Addr>(parseInt(w[1], line_no, "address")),
                static_cast<Value>(parseInt(w[2], line_no, "value")));
        } else if (kind == ".inst") {
            if (w.size() < 4)
                fatal("assemble: line %d: .inst ID OPCODE tN ...",
                      line_no);
            const auto id = parseInt(w[1], line_no, "instruction id");
            if (id != next_inst)
                fatal("assemble: line %d: instruction ids must be dense "
                      "(expected %u, got %lld)", line_no, next_inst, id);
            Instruction inst;
            inst.op = opcodeFromName(w[2]);
            if (w[3].size() < 2 || w[3][0] != 't')
                fatal("assemble: line %d: expected thread tag tN",
                      line_no);
            inst.thread = static_cast<ThreadId>(
                parseInt(w[3].substr(1), line_no, "thread"));
            for (std::size_t i = 4; i < w.size(); ++i) {
                if (w[i].rfind("imm=", 0) == 0) {
                    inst.imm = static_cast<Value>(
                        parseInt(w[i].substr(4), line_no, "immediate"));
                } else if (w[i].rfind("mem=", 0) == 0) {
                    int prev = 0;
                    int seq = 0;
                    int next = 0;
                    if (std::sscanf(w[i].c_str() + 4, "%d:%d:%d", &prev,
                                    &seq, &next) != 3) {
                        fatal("assemble: line %d: mem=prev:seq:next",
                              line_no);
                    }
                    inst.mem = MemOrder{prev, seq, next, true};
                } else {
                    fatal("assemble: line %d: unknown attribute '%s'",
                          line_no, w[i].c_str());
                }
            }
            graph.addInstruction(std::move(inst));
            ++next_inst;
        } else if (kind == ".edge") {
            // .edge SRC[:1] -> DST.PORT
            if (w.size() != 4 || w[2] != "->")
                fatal("assemble: line %d: .edge SRC[:1] -> DST.PORT",
                      line_no);
            std::string src = w[1];
            int side = 0;
            const auto colon = src.find(':');
            if (colon != std::string::npos) {
                side = static_cast<int>(parseInt(src.substr(colon + 1),
                                                 line_no, "side"));
                if (side != 0 && side != 1)
                    fatal("assemble: line %d: side must be 0 or 1",
                          line_no);
                src = src.substr(0, colon);
            }
            const auto src_id = parseInt(src, line_no, "source id");
            const auto dot = w[3].find('.');
            if (dot == std::string::npos)
                fatal("assemble: line %d: destination must be ID.PORT",
                      line_no);
            const auto dst_id =
                parseInt(w[3].substr(0, dot), line_no, "dest id");
            const auto port =
                parseInt(w[3].substr(dot + 1), line_no, "port");
            if (src_id < 0 ||
                static_cast<std::size_t>(src_id) >= graph.size()) {
                fatal("assemble: line %d: edge from undefined inst %lld",
                      line_no, src_id);
            }
            graph.inst(static_cast<InstId>(src_id)).outs[side].push_back(
                PortRef{static_cast<InstId>(dst_id),
                        static_cast<std::uint8_t>(port)});
        } else if (kind == ".token") {
            // .token tN wN vVALUE -> DST.PORT
            if (w.size() != 6 || w[4] != "->")
                fatal("assemble: line %d: .token tN wN vV -> DST.PORT",
                      line_no);
            Token token;
            if (w[1][0] != 't' || w[2][0] != 'w' || w[3][0] != 'v')
                fatal("assemble: line %d: token needs tN wN vV markers",
                      line_no);
            token.tag.thread = static_cast<ThreadId>(
                parseInt(w[1].substr(1), line_no, "thread"));
            token.tag.wave = static_cast<WaveNum>(
                parseInt(w[2].substr(1), line_no, "wave"));
            token.value = static_cast<Value>(
                parseInt(w[3].substr(1), line_no, "value"));
            const auto dot = w[5].find('.');
            if (dot == std::string::npos)
                fatal("assemble: line %d: destination must be ID.PORT",
                      line_no);
            token.dst.inst = static_cast<InstId>(
                parseInt(w[5].substr(0, dot), line_no, "dest id"));
            token.dst.port = static_cast<std::uint8_t>(
                parseInt(w[5].substr(dot + 1), line_no, "port"));
            graph.addInitialToken(token);
        } else if (kind == ".region") {
            std::vector<InstId> chain;
            for (std::size_t i = 1; i < w.size(); ++i) {
                chain.push_back(static_cast<InstId>(
                    parseInt(w[i], line_no, "region member")));
            }
            if (chain.empty())
                fatal("assemble: line %d: empty .region", line_no);
            graph.addMemRegion(std::move(chain));
        } else {
            fatal("assemble: line %d: unknown directive '%s'", line_no,
                  kind.c_str());
        }
    }
    if (!have_header)
        fatal("assemble: missing .graph header");
    return graph;
}

DataflowGraph
assemble(const std::string &text)
{
    DataflowGraph graph = parseWsa(text);
    graph.validate();
    return graph;
}

} // namespace ws
