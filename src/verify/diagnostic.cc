#include "verify/diagnostic.h"

#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace ws {

std::string
diagCodeLabel(DiagCode code)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "WS%u",
                  static_cast<unsigned>(static_cast<std::uint16_t>(code)));
    return buf;
}

Severity
diagSeverity(DiagCode code)
{
    switch (code) {
      case DiagCode::kDeadInst:
      case DiagCode::kPortFanInPressure:
      case DiagCode::kCapacityExceeded:
        return Severity::kWarning;
      case DiagCode::kWideFanIn:
      case DiagCode::kFoldableConst:
      case DiagCode::kDeadValue:
      case DiagCode::kCopyChain:
      case DiagCode::kCommonSubexpr:
      case DiagCode::kAlgebraicIdentity:
        return Severity::kNote;
      default:
        return Severity::kError;
    }
}

const char *
diagCodeSummary(DiagCode code)
{
    switch (code) {
      case DiagCode::kDanglingTarget:
        return "output edge targets a nonexistent instruction";
      case DiagCode::kPortOutOfRange:
        return "output edge targets a port beyond the consumer's arity";
      case DiagCode::kFalseSideNonSteer:
        return "false-side target list on a non-steer instruction";
      case DiagCode::kMemAnnotationMismatch:
        return "memory annotation present iff the opcode is not a "
               "memory operation";
      case DiagCode::kThreadOutOfRange:
        return "instruction assigned to a thread the graph does not "
               "declare";
      case DiagCode::kStarvedPort:
        return "input port with no static producer and no initial token";
      case DiagCode::kBadInitialToken:
        return "initial token targets a bad instruction, port, or thread";
      case DiagCode::kOverfedPort:
        return "two initial tokens with identical tags collide on one "
               "port";
      case DiagCode::kEmptyRegion:
        return "registered wave-ordering chain has no members";
      case DiagCode::kBadRegionMember:
        return "chain member is out of range, not a memory operation, "
               "or a store_data half";
      case DiagCode::kRegionThreadMix:
        return "wave-ordering chain mixes instructions of two threads";
      case DiagCode::kNonDenseSeq:
        return "chain sequence numbers are not dense from 0 in chain "
               "order";
      case DiagCode::kBadPrevLink:
        return "prev link is neither none, '?', nor an earlier chain "
               "position";
      case DiagCode::kBadNextLink:
        return "next link is neither none, '?', nor a later chain "
               "position";
      case DiagCode::kLinkMismatch:
        return "concrete prev/next links of two chain ops disagree";
      case DiagCode::kUnresolvableWildcard:
        return "'?' link is not closed by a chain op on every steer "
               "path (missing MEMORY-NOP)";
      case DiagCode::kUnregisteredMemOp:
        return "memory operation appears in zero or several registered "
               "chains";
      case DiagCode::kOrphanStoreData:
        return "store_data half has no store_addr with the same thread "
               "and sequence number";
      case DiagCode::kDeadInst:
        return "instruction unreachable from every initial token";
      case DiagCode::kNoReachableSink:
        return "graph declares expected sink tokens but no sink is "
               "reachable";
      case DiagCode::kWavelessCycle:
        return "producer-consumer cycle without a WAVE_ADVANCE (tokens "
               "of one wave could deadlock a matching table)";
      case DiagCode::kWideFanIn:
        return "3-operand instructions exceed the 2-input "
               "matching-table row";
      case DiagCode::kPortFanInPressure:
        return "more static producers target one input port than "
               "structured control flow can produce";
      case DiagCode::kCapacityExceeded:
        return "static program exceeds the machine's instruction-store "
               "capacity (virtualization thrash)";
      case DiagCode::kFoldableConst:
        return "pure instruction computes a compile-time constant "
               "(all inputs are constants)";
      case DiagCode::kDeadValue:
        return "instruction's value reaches no sink or memory effect "
               "(dead-node elimination candidate)";
      case DiagCode::kCopyChain:
        return "mov forwards a value its producer could deliver "
               "directly (copy-chain bypass candidate)";
      case DiagCode::kCommonSubexpr:
        return "instruction recomputes a value that is already "
               "available (common-subexpression / redundant entry mov)";
      case DiagCode::kAlgebraicIdentity:
        return "algebraic identity or strength reduction applies "
               "(x+0, x*1, x*2^k, idempotent same-source operands)";
      case DiagCode::kTokenConservation:
        return "token conservation violated: tokens created != tokens "
               "consumed + tokens resident at quiescence";
      case DiagCode::kDeadTokens:
        return "program quiesced incomplete with tokens resident in "
               "matching tables that can never match";
      case DiagCode::kMatchAccounting:
        return "matching-table occupancy accounting drifted from a "
               "structural recount (or exceeded capacity)";
      case DiagCode::kWaveOrderRegression:
        return "store buffer retired a wave at or below one already "
               "retired for the same thread";
      case DiagCode::kIllegalMesiPair:
        return "two L1 caches hold one line in an illegal MESI state "
               "pair (E/M next to E/M or S)";
      case DiagCode::kUnarmedWork:
        return "component changed observable state on a cycle the "
               "wakeup scheduler had not armed it for";
      case DiagCode::kQueuePopEarly:
        return "timed queue popped an item before its ready cycle";
      case DiagCode::kQuiescenceMismatch:
        return "quiescence fast path (empty wake set) disagreed with "
               "the structural idle walk";
      case DiagCode::kSinkMismatch:
        return "a paired sink's symbolic value stream diverges between "
               "the two graphs (translation changed an observable value)";
      case DiagCode::kMemEffectMismatch:
        return "the wave-ordered memory effect sequence diverges "
               "(effects reordered, dropped, added, or values changed)";
      case DiagCode::kCompletionMismatch:
        return "completion structure diverges (thread count, sink "
               "count, or expected sink tokens changed)";
    }
    return "unknown diagnostic";
}

const std::vector<DiagCode> &
allDiagCodes()
{
    static const std::vector<DiagCode> kCodes = {
        DiagCode::kDanglingTarget,
        DiagCode::kPortOutOfRange,
        DiagCode::kFalseSideNonSteer,
        DiagCode::kMemAnnotationMismatch,
        DiagCode::kThreadOutOfRange,
        DiagCode::kStarvedPort,
        DiagCode::kBadInitialToken,
        DiagCode::kOverfedPort,
        DiagCode::kEmptyRegion,
        DiagCode::kBadRegionMember,
        DiagCode::kRegionThreadMix,
        DiagCode::kNonDenseSeq,
        DiagCode::kBadPrevLink,
        DiagCode::kBadNextLink,
        DiagCode::kLinkMismatch,
        DiagCode::kUnresolvableWildcard,
        DiagCode::kUnregisteredMemOp,
        DiagCode::kOrphanStoreData,
        DiagCode::kDeadInst,
        DiagCode::kNoReachableSink,
        DiagCode::kWavelessCycle,
        DiagCode::kWideFanIn,
        DiagCode::kPortFanInPressure,
        DiagCode::kCapacityExceeded,
        DiagCode::kFoldableConst,
        DiagCode::kDeadValue,
        DiagCode::kCopyChain,
        DiagCode::kCommonSubexpr,
        DiagCode::kAlgebraicIdentity,
        DiagCode::kTokenConservation,
        DiagCode::kDeadTokens,
        DiagCode::kMatchAccounting,
        DiagCode::kWaveOrderRegression,
        DiagCode::kIllegalMesiPair,
        DiagCode::kUnarmedWork,
        DiagCode::kQueuePopEarly,
        DiagCode::kQuiescenceMismatch,
        DiagCode::kSinkMismatch,
        DiagCode::kMemEffectMismatch,
        DiagCode::kCompletionMismatch,
    };
    return kCodes;
}

namespace {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::kNote:
        return "note";
      case Severity::kWarning:
        return "warning";
      case Severity::kError:
        return "error";
    }
    return "?";
}

} // namespace

void
VerifyReport::add(DiagCode code, InstId inst, std::string message)
{
    const Severity sev = diagSeverity(code);
    switch (sev) {
      case Severity::kError:
        ++errors_;
        break;
      case Severity::kWarning:
        ++warnings_;
        break;
      case Severity::kNote:
        ++notes_;
        break;
    }
    diags_.push_back(Diagnostic{code, sev, inst, std::move(message)});
}

std::size_t
VerifyReport::count(DiagCode code) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags_) {
        if (d.code == code)
            ++n;
    }
    return n;
}

std::string
VerifyReport::summary() const
{
    std::ostringstream out;
    out << errors_ << (errors_ == 1 ? " error, " : " errors, ")
        << warnings_ << (warnings_ == 1 ? " warning" : " warnings");
    if (notes_ != 0)
        out << ", " << notes_ << (notes_ == 1 ? " note" : " notes");
    return out.str();
}

std::string
VerifyReport::render() const
{
    if (diags_.empty())
        return "";
    std::ostringstream out;
    for (const Diagnostic &d : diags_) {
        if (!graphName_.empty())
            out << graphName_ << ": ";
        out << severityName(d.severity) << "[" << diagCodeLabel(d.code)
            << "]";
        if (d.inst != kInvalidInst)
            out << " inst " << d.inst;
        out << ": " << d.message << "\n";
    }
    if (!graphName_.empty())
        out << graphName_ << ": ";
    out << summary() << "\n";
    return out.str();
}

} // namespace ws
