/**
 * @file
 * ws::verify(): multi-pass static analysis of a DataflowGraph.
 *
 * Four passes run in order, all collect-all (a defect never aborts
 * verification, and later passes are written to tolerate the garbage
 * earlier passes reported):
 *
 *  1. structural  — edges, ports, annotations, initial tokens (WS1xx);
 *  2. wave order  — the <prev, this, next> memory chains of §3.3.1,
 *                   including '?' wildcard closure (WS2xx);
 *  3. flow        — reachability, sink retirement, static deadlock
 *                   (WS3xx);
 *  4. capacity    — matching-table / instruction-store lint against a
 *                   machine description (WS4xx; only with limits).
 *
 * Load-time callers (GraphBuilder::finish, assemble, Processor) treat
 * errors as fatal; wsa-lint renders the full report and sets its exit
 * status. DataflowGraph::validate() is a strict wrapper around this
 * module.
 */

#ifndef WS_VERIFY_VERIFIER_H_
#define WS_VERIFY_VERIFIER_H_

#include <cstdint>

#include "isa/graph.h"
#include "verify/diagnostic.h"

namespace ws {

struct ProcessorConfig;  // core/config.h; overload defined in ws_core.

/**
 * Machine-dependent thresholds for the capacity lint. The defaults
 * encode the paper's PE microarchitecture; a zero disables the
 * corresponding check.
 */
struct VerifyLimits
{
    /** Total instruction-store slots (PEs x entries); 0 skips WS403. */
    std::uint64_t instructionCapacity = 0;

    /** Operand slots per matching-table row (WS401 fires above it). */
    unsigned matchingOperands = 2;

    /**
     * Max static producers per input port; structured control flow
     * (diamond merges, loop back-edges) produces at most two (WS402).
     */
    unsigned portFanIn = 2;
};

/** Run the structural, wave-order, and flow passes. */
VerifyReport verify(const DataflowGraph &graph);

/** All four passes, with explicit capacity thresholds. */
VerifyReport verify(const DataflowGraph &graph, const VerifyLimits &limits);

/**
 * All four passes, deriving thresholds from a processor configuration.
 * Capacity lint is skipped when cfg.relaxLimits is set (idealized
 * methodology sweeps). Defined in ws_core.
 */
VerifyReport verify(const DataflowGraph &graph, const ProcessorConfig &cfg);

} // namespace ws

#endif // WS_VERIFY_VERIFIER_H_
