/**
 * @file
 * The verifier's diagnostics engine: stable codes, severities, and a
 * collect-all report with a text renderer.
 *
 * Unlike fatal(), which dies on the first problem it sees, verification
 * passes append Diagnostics to a VerifyReport and keep going, so a
 * malformed graph produces one complete bill of defects. Every
 * diagnostic carries a stable code (rendered "WS101"-style) that tests,
 * wsa-lint output filters, and documentation refer to; the code alone
 * determines the default severity.
 */

#ifndef WS_VERIFY_DIAGNOSTIC_H_
#define WS_VERIFY_DIAGNOSTIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ws {

enum class Severity : std::uint8_t
{
    kNote,     ///< Informational; never affects exit status.
    kWarning,  ///< Suspicious but executable; strict mode rejects.
    kError,    ///< The graph violates an execution-model invariant.
};

/**
 * Stable diagnostic codes. The numeric value is the published code
 * ("WS101"); renumbering an existing code is an interface break.
 *
 *   WS1xx  structural   (ports, edges, annotations, tokens)
 *   WS2xx  wave-ordered memory chains (§3.3.1)
 *   WS3xx  flow         (reachability, retirement, deadlock)
 *   WS4xx  capacity     (matching-table / instruction-store lint)
 *   WS5xx  optimization advisories (src/analyze rewrite passes)
 *   WS6xx  runtime invariants (src/check, emitted during simulation)
 *   WS8xx  translation validation (src/analyze/equiv symbolic
 *          equivalence checker; emitted when two graphs diverge)
 */
enum class DiagCode : std::uint16_t
{
    // Structural.
    kDanglingTarget = 101,        ///< Edge to a nonexistent instruction.
    kPortOutOfRange = 102,        ///< Edge to a port beyond consumer arity.
    kFalseSideNonSteer = 103,     ///< False-side outputs on a non-steer.
    kMemAnnotationMismatch = 104, ///< mem.valid disagrees with the opcode.
    kThreadOutOfRange = 105,      ///< Instruction claims a bad thread.
    kStarvedPort = 106,           ///< Input port with no producer.
    kBadInitialToken = 107,       ///< Initial token names a bad target.
    kOverfedPort = 108,           ///< Two initial tokens collide on a port.

    // Wave-ordered memory.
    kEmptyRegion = 201,           ///< Registered chain with no members.
    kBadRegionMember = 202,       ///< Chain member is not a chainable op.
    kRegionThreadMix = 203,       ///< Chain spans more than one thread.
    kNonDenseSeq = 204,           ///< Sequence numbers not dense from 0.
    kBadPrevLink = 205,           ///< prev link out of range.
    kBadNextLink = 206,           ///< next link out of range.
    kLinkMismatch = 207,          ///< prev/next links mutually inconsistent.
    kUnresolvableWildcard = 208,  ///< '?' link not closed by both arms.
    kUnregisteredMemOp = 209,     ///< Memory op in zero or several chains.
    kOrphanStoreData = 210,       ///< store_data half with no address half.

    // Flow.
    kDeadInst = 301,              ///< Unreachable from any initial token.
    kNoReachableSink = 302,       ///< Completion declared but no sink path.
    kWavelessCycle = 303,         ///< Cycle without a WAVE_ADVANCE.

    // Capacity.
    kWideFanIn = 401,             ///< 3-operand rows vs 2-input tables.
    kPortFanInPressure = 402,     ///< >2 static producers on one port.
    kCapacityExceeded = 403,      ///< Program exceeds instruction stores.

    // Optimization advisories (emitted by src/analyze, never by verify()).
    kFoldableConst = 501,         ///< Pure op with all-constant inputs.
    kDeadValue = 502,             ///< No path to a sink or memory effect.
    kCopyChain = 503,             ///< Single-consumer mov is bypassable.
    kCommonSubexpr = 504,         ///< Instruction recomputes an available
                                  ///  value (GVN redundancy).
    kAlgebraicIdentity = 505,     ///< Algebraic identity / strength
                                  ///  reduction applies.

    // Runtime invariants (emitted by src/check during simulation).
    kTokenConservation = 601,     ///< created != consumed + resident.
    kDeadTokens = 602,            ///< Unmatchable tokens at quiescence.
    kMatchAccounting = 603,       ///< Matching-table occupancy drift.
    kWaveOrderRegression = 604,   ///< Wave retirement not monotonic.
    kIllegalMesiPair = 605,       ///< Two L1s in an illegal state pair.
    kUnarmedWork = 606,           ///< Work on a cycle not armed for.
    kQueuePopEarly = 607,         ///< TimedQueue popped before ready.
    kQuiescenceMismatch = 608,    ///< Fast path vs structural walk.

    // Translation validation (emitted by src/analyze/equiv when two
    // graphs are compared; "a" is the reference, "b" the candidate).
    kSinkMismatch = 801,          ///< A sink's value stream diverges.
    kMemEffectMismatch = 802,     ///< Wave-ordered memory effects
                                  ///  reordered, dropped, or changed.
    kCompletionMismatch = 803,    ///< Completion structure (threads,
                                  ///  sinks, expected tokens) changed.
};

/** "WS101"-style label for @p code. */
std::string diagCodeLabel(DiagCode code);

/** Default severity of @p code. */
Severity diagSeverity(DiagCode code);

/** One-line human description of what @p code means (docs, --explain). */
const char *diagCodeSummary(DiagCode code);

/** Every defined code, ascending (tests and documentation iterate it). */
const std::vector<DiagCode> &allDiagCodes();

/** One verification finding. */
struct Diagnostic
{
    DiagCode code;
    Severity severity;
    InstId inst = kInvalidInst;  ///< Offending instruction, if any.
    std::string message;
};

/** Collect-all result of running verification passes over one graph. */
class VerifyReport
{
  public:
    explicit VerifyReport(std::string graph_name = "")
        : graphName_(std::move(graph_name))
    {}

    /** Append a finding at the code's default severity. */
    void add(DiagCode code, InstId inst, std::string message);

    /** True when no *error* was recorded (warnings/notes allowed). */
    bool ok() const { return errors_ == 0; }

    /** True when nothing at all was recorded. */
    bool empty() const { return diags_.empty(); }

    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t noteCount() const { return notes_; }

    /** Occurrences of @p code. */
    std::size_t count(DiagCode code) const;
    bool has(DiagCode code) const { return count(code) != 0; }

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    const std::string &graphName() const { return graphName_; }

    /**
     * Render every finding, one line each:
     *
     *   error[WS106] inst 4 (add): input port 1 has no producer
     *
     * followed by a summary line. Returns "" when the report is empty.
     */
    std::string render() const;

    /** "2 errors, 1 warning"-style roll-up. */
    std::string summary() const;

  private:
    std::string graphName_;
    std::vector<Diagnostic> diags_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t notes_ = 0;
};

} // namespace ws

#endif // WS_VERIFY_DIAGNOSTIC_H_
