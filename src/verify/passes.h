/**
 * @file
 * Internal pass entry points of the verifier. Each pass appends to the
 * shared report and must never crash on a malformed graph: every
 * instruction id, port number, and sequence link is bounds-checked
 * before use, because the passes run even when earlier ones found
 * defects.
 */

#ifndef WS_VERIFY_PASSES_H_
#define WS_VERIFY_PASSES_H_

#include "isa/graph.h"
#include "verify/diagnostic.h"
#include "verify/verifier.h"

namespace ws {
namespace verify_detail {

/** printf-style message builder for pass diagnostics. */
std::string msgf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void runStructural(const DataflowGraph &g, VerifyReport &rep);
void runWaveOrder(const DataflowGraph &g, VerifyReport &rep);
void runFlow(const DataflowGraph &g, VerifyReport &rep);
void runCapacity(const DataflowGraph &g, const VerifyLimits &limits,
                 VerifyReport &rep);

} // namespace verify_detail
} // namespace ws

#endif // WS_VERIFY_PASSES_H_
