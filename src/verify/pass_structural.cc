/**
 * @file
 * Structural pass (WS1xx): every edge must land on an existing port,
 * every input port must have a potential producer, steer discipline and
 * memory annotations must match opcodes, and the initial token set must
 * be well-formed. Absorbs and extends the checks the old
 * DataflowGraph::validate() performed fatally.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "isa/token.h"
#include "verify/passes.h"

namespace ws {
namespace verify_detail {

namespace {

/** Ports per instruction in the feed-count table (max arity is 3). */
constexpr std::size_t kMaxPorts = 3;

const char *
opName(const Instruction &inst)
{
    return opcodeInfo(inst.op).name.data();
}

} // namespace

void
runStructural(const DataflowGraph &g, VerifyReport &rep)
{
    const InstId n = static_cast<InstId>(g.size());
    std::vector<std::uint32_t> feeds(static_cast<std::size_t>(n) *
                                     kMaxPorts);

    auto feed = [&](const PortRef &p) {
        ++feeds[static_cast<std::size_t>(p.inst) * kMaxPorts + p.port];
    };

    for (InstId i = 0; i < n; ++i) {
        const Instruction &inst = g.inst(i);

        if (!inst.isSteer() && !inst.outs[1].empty()) {
            rep.add(DiagCode::kFalseSideNonSteer, i,
                    msgf("%s has a false-side target list but only "
                         "steer routes on a predicate", opName(inst)));
        }
        if (inst.mem.valid != isMemoryOp(inst.op)) {
            rep.add(DiagCode::kMemAnnotationMismatch, i,
                    msgf("%s %s a wave-ordering annotation", opName(inst),
                         inst.mem.valid ? "is not a memory op but carries"
                                        : "is a memory op but lacks"));
        }
        if (inst.thread >= g.numThreads()) {
            rep.add(DiagCode::kThreadOutOfRange, i,
                    msgf("claims thread %u but the graph declares %u",
                         inst.thread, g.numThreads()));
        }

        for (int side = 0; side < 2; ++side) {
            for (const PortRef &p : inst.outs[side]) {
                if (p.inst >= n) {
                    rep.add(DiagCode::kDanglingTarget, i,
                            msgf("output side %d targets nonexistent "
                                 "inst %u", side, p.inst));
                    continue;
                }
                const Instruction &dst = g.inst(p.inst);
                if (p.port >= dst.arity() || p.port >= kMaxPorts) {
                    rep.add(DiagCode::kPortOutOfRange, i,
                            msgf("output side %d targets port %u of "
                                 "inst %u (%s, arity %u)", side, p.port,
                                 p.inst, opName(dst), dst.arity()));
                    continue;
                }
                feed(p);
            }
        }
    }

    // Initial tokens: valid destinations, no same-tag collisions.
    std::map<std::tuple<InstId, std::uint8_t, ThreadId, WaveNum>,
             std::uint32_t>
        tokenHits;
    for (const Token &t : g.initialTokens()) {
        if (t.dst.inst >= n) {
            rep.add(DiagCode::kBadInitialToken, kInvalidInst,
                    msgf("initial token targets nonexistent inst %u",
                         t.dst.inst));
            continue;
        }
        const Instruction &dst = g.inst(t.dst.inst);
        if (t.dst.port >= dst.arity() || t.dst.port >= kMaxPorts) {
            rep.add(DiagCode::kBadInitialToken, t.dst.inst,
                    msgf("initial token targets port %u (%s, arity %u)",
                         t.dst.port, opName(dst), dst.arity()));
            continue;
        }
        if (t.tag.thread >= g.numThreads()) {
            rep.add(DiagCode::kBadInitialToken, t.dst.inst,
                    msgf("initial token names thread %u of %u",
                         t.tag.thread, g.numThreads()));
            continue;
        }
        const auto key = std::make_tuple(t.dst.inst, t.dst.port,
                                         t.tag.thread, t.tag.wave);
        if (++tokenHits[key] == 2) {
            rep.add(DiagCode::kOverfedPort, t.dst.inst,
                    msgf("port %u receives two initial tokens with tag "
                         "<t%u, w%u>; they would collide in the "
                         "matching table", t.dst.port, t.tag.thread,
                         t.tag.wave));
        }
        feed(t.dst);
    }

    // Starved ports: an instruction can never fire if any input port has
    // no potential producer at all.
    for (InstId i = 0; i < n; ++i) {
        const Instruction &inst = g.inst(i);
        for (std::uint8_t p = 0; p < inst.arity() && p < kMaxPorts; ++p) {
            if (feeds[static_cast<std::size_t>(i) * kMaxPorts + p] == 0) {
                rep.add(DiagCode::kStarvedPort, i,
                        msgf("%s input port %u has no producer; the "
                             "instruction can never fire", opName(inst),
                             p));
            }
        }
    }
}

} // namespace verify_detail
} // namespace ws
