/**
 * @file
 * Flow pass (WS3xx): graph-level analyses over the producer→consumer
 * edge relation.
 *
 *  - Reachability from the initial tokens. An instruction no token can
 *    ever reach is dead weight in the instruction stores (WS301).
 *  - Retirement: a graph that declares expected sink tokens but has no
 *    sink reachable from any initial token can never complete (WS302).
 *  - Static deadlock: a cycle that contains no WAVE_ADVANCE would
 *    recirculate tokens *within one wave*; a second arrival with an
 *    identical tag collides in the matching table and the program
 *    wedges. Loop back-edges built by GraphBuilder always pass through
 *    WAVE_ADVANCE, so any wave-less strongly connected component is
 *    reported (WS303).
 */

#include <cstdint>
#include <vector>

#include "isa/token.h"
#include "verify/passes.h"

namespace ws {
namespace verify_detail {

namespace {

/** Successors of each instruction over both output sides, with
 *  out-of-range targets (already reported by the structural pass)
 *  dropped. */
std::vector<std::vector<InstId>>
adjacency(const DataflowGraph &g)
{
    const InstId n = static_cast<InstId>(g.size());
    std::vector<std::vector<InstId>> adj(n);
    for (InstId i = 0; i < n; ++i) {
        for (int side = 0; side < 2; ++side) {
            for (const PortRef &p : g.inst(i).outs[side]) {
                if (p.inst < n)
                    adj[i].push_back(p.inst);
            }
        }
    }
    return adj;
}

/**
 * Strongly connected components by Tarjan's algorithm, iterative so
 * pathological graphs cannot overflow the call stack. Returns the
 * component id of every node; members of a nontrivial SCC (size > 1,
 * or a self-loop) are flagged in @p nontrivial.
 */
void
findCycles(const std::vector<std::vector<InstId>> &adj,
           std::vector<std::vector<InstId>> &cycles)
{
    const std::size_t n = adj.size();
    constexpr std::uint32_t kUnvisited = 0xffffffffu;
    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<InstId> stack;
    std::uint32_t counter = 0;

    struct Frame
    {
        InstId node;
        std::size_t edge;
    };
    std::vector<Frame> dfs;

    for (InstId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = counter++;
        stack.push_back(root);
        onStack[root] = true;

        while (!dfs.empty()) {
            Frame &f = dfs.back();
            if (f.edge < adj[f.node].size()) {
                const InstId next = adj[f.node][f.edge++];
                if (index[next] == kUnvisited) {
                    index[next] = lowlink[next] = counter++;
                    stack.push_back(next);
                    onStack[next] = true;
                    dfs.push_back({next, 0});
                } else if (onStack[next]) {
                    if (index[next] < lowlink[f.node])
                        lowlink[f.node] = index[next];
                }
                continue;
            }
            // Node finished: pop an SCC if this is its root.
            const InstId v = f.node;
            dfs.pop_back();
            if (!dfs.empty() && lowlink[v] < lowlink[dfs.back().node])
                lowlink[dfs.back().node] = lowlink[v];
            if (lowlink[v] != index[v])
                continue;
            std::vector<InstId> scc;
            for (;;) {
                const InstId w = stack.back();
                stack.pop_back();
                onStack[w] = false;
                scc.push_back(w);
                if (w == v)
                    break;
            }
            if (scc.size() > 1) {
                cycles.push_back(std::move(scc));
            } else {
                // Single node: only a self-loop makes it a cycle.
                for (InstId s : adj[v]) {
                    if (s == v) {
                        cycles.push_back(std::move(scc));
                        break;
                    }
                }
            }
        }
    }
}

} // namespace

void
runFlow(const DataflowGraph &g, VerifyReport &rep)
{
    const InstId n = static_cast<InstId>(g.size());
    const std::vector<std::vector<InstId>> adj = adjacency(g);

    // Reachability from the initial tokens.
    std::vector<bool> reached(n, false);
    std::vector<InstId> worklist;
    for (const Token &t : g.initialTokens()) {
        if (t.dst.inst < n && !reached[t.dst.inst]) {
            reached[t.dst.inst] = true;
            worklist.push_back(t.dst.inst);
        }
    }
    while (!worklist.empty()) {
        const InstId v = worklist.back();
        worklist.pop_back();
        for (InstId s : adj[v]) {
            if (!reached[s]) {
                reached[s] = true;
                worklist.push_back(s);
            }
        }
    }

    bool sinkReachable = false;
    for (InstId i = 0; i < n; ++i) {
        if (reached[i]) {
            if (g.inst(i).op == Opcode::kSink)
                sinkReachable = true;
            continue;
        }
        rep.add(DiagCode::kDeadInst, i,
                msgf("%s is unreachable from every initial token and "
                     "can never execute",
                     opcodeInfo(g.inst(i).op).name.data()));
    }

    if (g.expectedSinkTokens() > 0 && !sinkReachable) {
        rep.add(DiagCode::kNoReachableSink, kInvalidInst,
                msgf("graph expects %llu sink token(s) but no sink "
                     "instruction is reachable; the program can never "
                     "complete",
                     static_cast<unsigned long long>(
                         g.expectedSinkTokens())));
    }

    // Wave-less cycles.
    std::vector<std::vector<InstId>> cycles;
    findCycles(adj, cycles);
    for (const std::vector<InstId> &scc : cycles) {
        bool hasWaveAdvance = false;
        InstId anchor = scc[0];
        for (InstId v : scc) {
            if (g.inst(v).op == Opcode::kWaveAdvance)
                hasWaveAdvance = true;
            if (v < anchor)
                anchor = v;
        }
        if (!hasWaveAdvance) {
            rep.add(DiagCode::kWavelessCycle, anchor,
                    msgf("cycle of %zu instruction(s) contains no "
                         "wave_advance; tokens of one wave would "
                         "collide in the matching table (potential "
                         "deadlock)", scc.size()));
        }
    }
}

} // namespace verify_detail
} // namespace ws
