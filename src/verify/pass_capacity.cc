/**
 * @file
 * Capacity lint (WS4xx): compares static graph pressure against the
 * configured machine. Nothing here is an execution-model violation —
 * the hardware virtualizes instructions and spills matching-table
 * overflow to memory — but each finding predicts a measurable
 * performance cliff, so they surface as warnings/notes.
 */

#include <cstdint>
#include <vector>

#include "isa/token.h"
#include "verify/passes.h"

namespace ws {
namespace verify_detail {

void
runCapacity(const DataflowGraph &g, const VerifyLimits &limits,
            VerifyReport &rep)
{
    const InstId n = static_cast<InstId>(g.size());

    // WS401: the matching table stores two operands per row; wider
    // instructions (3-input select) need row pairing at dispatch.
    // Aggregated into one note so kernel-sized graphs stay readable.
    if (limits.matchingOperands != 0) {
        std::size_t wide = 0;
        for (InstId i = 0; i < n; ++i) {
            if (g.inst(i).arity() > limits.matchingOperands)
                ++wide;
        }
        if (wide != 0) {
            rep.add(DiagCode::kWideFanIn, kInvalidInst,
                    msgf("%zu instruction(s) take more than %u operands; "
                         "each occupies a paired matching-table row",
                         wide, limits.matchingOperands));
        }
    }

    // WS402: structured control flow feeds a port from at most two
    // static producers (a diamond merge or a loop back-edge plus init).
    // More producers than that means hand-built routing whose same-tag
    // arrivals would race for one operand slot.
    if (limits.portFanIn != 0) {
        std::vector<std::uint32_t> feeds(static_cast<std::size_t>(n) * 3);
        auto feed = [&](const PortRef &p) {
            if (p.inst < n && p.port < 3)
                ++feeds[static_cast<std::size_t>(p.inst) * 3 + p.port];
        };
        for (InstId i = 0; i < n; ++i) {
            for (int side = 0; side < 2; ++side) {
                for (const PortRef &p : g.inst(i).outs[side])
                    feed(p);
            }
        }
        for (const Token &t : g.initialTokens())
            feed(t.dst);
        for (InstId i = 0; i < n; ++i) {
            const Instruction &inst = g.inst(i);
            for (std::uint8_t p = 0; p < inst.arity() && p < 3; ++p) {
                const std::uint32_t c =
                    feeds[static_cast<std::size_t>(i) * 3 + p];
                if (c > limits.portFanIn) {
                    rep.add(DiagCode::kPortFanInPressure, i,
                            msgf("input port %u has %u static producers "
                                 "(structured control flow yields at "
                                 "most %u)", p, c, limits.portFanIn));
                }
            }
        }
    }

    // WS403: a working set larger than the instruction stores thrashes
    // the virtualization path (72-cycle instruction misses).
    if (limits.instructionCapacity != 0 &&
        static_cast<std::uint64_t>(n) > limits.instructionCapacity) {
        rep.add(DiagCode::kCapacityExceeded, kInvalidInst,
                msgf("%u static instructions exceed the machine's %llu "
                     "instruction-store slots; expect instruction-miss "
                     "thrash", n,
                     static_cast<unsigned long long>(
                         limits.instructionCapacity)));
    }
}

} // namespace verify_detail
} // namespace ws
