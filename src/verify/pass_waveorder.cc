/**
 * @file
 * Wave-ordered memory pass (WS2xx).
 *
 * The store buffer recovers program order within a wave purely from the
 * <prev, this, next> annotations (§3.3.1), so this pass proves, per
 * registered chain, that they describe a total order it can actually
 * walk: membership is sane (WS201/202/203), sequence numbers are dense
 * (WS204), links stay inside the chain and point the right way
 * (WS205/206), concrete links agree pairwise (WS207), and every '?'
 * wildcard produced by control flow is closed — a branch that may skip
 * a memory op must provide a chain op (the compiler's MEMORY-NOP rule)
 * on both arms, or the chain stalls forever on the untaken path
 * (WS208). Globally, every chainable memory op must be registered in
 * exactly one chain (WS209) and every decoupled store_data half must
 * have an address half to pair with (WS210).
 */

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "verify/passes.h"

namespace ws {
namespace verify_detail {

namespace {

/** True for ops that occupy a slot in an ordering chain. store_data
 *  halves share the address half's slot and stay off the chain. */
bool
chainable(const Instruction &inst)
{
    return isMemoryOp(inst.op) && inst.op != Opcode::kStoreData;
}

} // namespace

void
runWaveOrder(const DataflowGraph &g, VerifyReport &rep)
{
    const InstId n = static_cast<InstId>(g.size());
    const auto &regions = g.memRegions();

    // How many chains each instruction appears in (for WS209).
    std::vector<std::uint32_t> membership(n, 0);
    // (thread, seq) pairs covered by registered store_addr ops (WS210).
    std::set<std::pair<ThreadId, std::int32_t>> storeAddrSlots;

    for (std::size_t r = 0; r < regions.size(); ++r) {
        const std::vector<InstId> &chain = regions[r];
        if (chain.empty()) {
            rep.add(DiagCode::kEmptyRegion, kInvalidInst,
                    msgf("region %zu is empty; every wave region must "
                         "contain at least one chain op (MEMORY-NOP if "
                         "nothing else)", r));
            continue;
        }

        // Membership: ids in range, chainable opcodes, annotations on.
        bool members_ok = true;
        for (std::size_t k = 0; k < chain.size(); ++k) {
            const InstId id = chain[k];
            if (id >= n) {
                rep.add(DiagCode::kBadRegionMember, kInvalidInst,
                        msgf("region %zu position %zu names nonexistent "
                             "inst %u", r, k, id));
                members_ok = false;
                continue;
            }
            ++membership[id];
            const Instruction &op = g.inst(id);
            if (!chainable(op) || !op.mem.valid) {
                rep.add(DiagCode::kBadRegionMember, id,
                        msgf("region %zu position %zu: %s is not a "
                             "chainable memory operation", r, k,
                             opcodeInfo(op.op).name.data()));
                members_ok = false;
            }
        }
        if (!members_ok)
            continue;  // Seq/link checks would chase garbage.

        // One thread per chain.
        const ThreadId thread = g.inst(chain[0]).thread;
        for (std::size_t k = 1; k < chain.size(); ++k) {
            if (g.inst(chain[k]).thread != thread) {
                rep.add(DiagCode::kRegionThreadMix, chain[k],
                        msgf("region %zu mixes threads %u and %u", r,
                             thread, g.inst(chain[k]).thread));
                members_ok = false;
                break;
            }
        }

        // Dense sequence numbers: position k holds seq k, so links can
        // be interpreted as chain positions.
        bool seq_ok = true;
        for (std::size_t k = 0; k < chain.size(); ++k) {
            const MemOrder &m = g.inst(chain[k]).mem;
            if (m.seq != static_cast<std::int32_t>(k)) {
                rep.add(DiagCode::kNonDenseSeq, chain[k],
                        msgf("region %zu position %zu has seq %d "
                             "(duplicate or out-of-order numbering)", r,
                             k, m.seq));
                seq_ok = false;
            }
        }
        if (!seq_ok || !members_ok)
            continue;

        const auto len = static_cast<std::int32_t>(chain.size());
        auto memAt = [&](std::int32_t s) -> const MemOrder & {
            return g.inst(chain[static_cast<std::size_t>(s)]).mem;
        };

        for (std::size_t k = 0; k < chain.size(); ++k) {
            const InstId id = chain[k];
            const MemOrder &m = g.inst(id).mem;
            if (g.inst(id).op == Opcode::kStoreAddr)
                storeAddrSlots.emplace(thread, m.seq);

            const bool prev_ok = m.prev == kSeqNone ||
                                 m.prev == kSeqWildcard ||
                                 (m.prev >= 0 && m.prev < m.seq);
            const bool next_ok = m.next == kSeqNone ||
                                 m.next == kSeqWildcard ||
                                 (m.next > m.seq && m.next < len);
            if (!prev_ok) {
                rep.add(DiagCode::kBadPrevLink, id,
                        msgf("region %zu seq %d has prev %d (must be "
                             "none, '?', or an earlier seq)", r, m.seq,
                             m.prev));
            }
            if (!next_ok) {
                rep.add(DiagCode::kBadNextLink, id,
                        msgf("region %zu seq %d has next %d (must be "
                             "none, '?', or a later seq in range)", r,
                             m.seq, m.next));
            }

            // Pairwise agreement of concrete links. A concrete link may
            // legally meet a '?' on the other end (diamond arms), but a
            // concrete-concrete disagreement or a dead-end predecessor
            // breaks the walk.
            if (next_ok && m.next >= 0) {
                const MemOrder &succ = memAt(m.next);
                if (succ.prev != m.seq && succ.prev != kSeqWildcard) {
                    rep.add(DiagCode::kLinkMismatch, id,
                            msgf("region %zu seq %d says next=%d, but "
                                 "that op's prev is %d", r, m.seq,
                                 m.next, succ.prev));
                }
            }
            if (prev_ok && m.prev >= 0) {
                const MemOrder &pred = memAt(m.prev);
                if (pred.next == kSeqNone) {
                    rep.add(DiagCode::kLinkMismatch, id,
                            msgf("region %zu seq %d says prev=%d, but "
                                 "that op's next is none (it never "
                                 "links forward)", r, m.seq, m.prev));
                }
            }

            // Wildcard closure: a '?' arises only at a branch, and the
            // paper's compiler guarantees a chain op on *both* arms
            // (inserting a MEMORY-NOP if an arm has none). Statically:
            // a wildcard next must be claimed as prev by at least two
            // ops; a wildcard prev must be claimed as next by at least
            // two ops. One claimant means the other arm can strand the
            // chain; zero means the walk stops outright.
            if (m.next == kSeqWildcard) {
                int claimants = 0;
                for (std::int32_t s = 0; s < len; ++s) {
                    if (s != static_cast<std::int32_t>(k) &&
                        memAt(s).prev == m.seq)
                        ++claimants;
                }
                if (claimants < 2) {
                    rep.add(DiagCode::kUnresolvableWildcard, id,
                            msgf("region %zu seq %d has next='?' but "
                                 "only %d successor(s) name it as prev; "
                                 "a MEMORY-NOP is required on every "
                                 "steer path", r, m.seq, claimants));
                }
            }
            if (m.prev == kSeqWildcard) {
                int claimants = 0;
                for (std::int32_t s = 0; s < len; ++s) {
                    if (s != static_cast<std::int32_t>(k) &&
                        memAt(s).next == m.seq)
                        ++claimants;
                }
                if (claimants < 2) {
                    rep.add(DiagCode::kUnresolvableWildcard, id,
                            msgf("region %zu seq %d has prev='?' but "
                                 "only %d predecessor(s) name it as "
                                 "next; a MEMORY-NOP is required on "
                                 "every steer path", r, m.seq,
                                 claimants));
                }
            }
        }
    }

    // Global registration: every chainable memory op sits in exactly one
    // chain; every store_data half can pair with an address half.
    for (InstId i = 0; i < n; ++i) {
        const Instruction &inst = g.inst(i);
        if (inst.op == Opcode::kStoreData) {
            if (inst.mem.valid &&
                !storeAddrSlots.count({inst.thread, inst.mem.seq})) {
                rep.add(DiagCode::kOrphanStoreData, i,
                        msgf("store_data half <t%u, seq %d> has no "
                             "registered store_addr to pair with",
                             inst.thread, inst.mem.seq));
            }
            continue;
        }
        if (!chainable(inst))
            continue;
        if (membership[i] == 0) {
            rep.add(DiagCode::kUnregisteredMemOp, i,
                    msgf("%s is not registered in any wave region; the "
                         "store buffer would never see its chain",
                         opcodeInfo(inst.op).name.data()));
        } else if (membership[i] > 1) {
            rep.add(DiagCode::kUnregisteredMemOp, i,
                    msgf("%s is registered in %u wave regions; chains "
                         "must partition the memory ops",
                         opcodeInfo(inst.op).name.data(), membership[i]));
        }
    }
}

} // namespace verify_detail
} // namespace ws
