#include "verify/verifier.h"

#include <cstdarg>

#include "common/log.h"
#include "verify/passes.h"

namespace ws {

namespace verify_detail {

std::string
msgf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = detail::vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace verify_detail

VerifyReport
verify(const DataflowGraph &graph)
{
    VerifyReport rep(graph.name());
    verify_detail::runStructural(graph, rep);
    verify_detail::runWaveOrder(graph, rep);
    verify_detail::runFlow(graph, rep);
    return rep;
}

VerifyReport
verify(const DataflowGraph &graph, const VerifyLimits &limits)
{
    VerifyReport rep = verify(graph);
    verify_detail::runCapacity(graph, limits, rep);
    return rep;
}

} // namespace ws
