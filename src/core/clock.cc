#include "core/clock.h"

#include <algorithm>

namespace ws {

ComponentId
WakeupScheduler::add(Clocked *c)
{
    const ComponentId id = static_cast<ComponentId>(components_.size());
    components_.push_back(c);
    armed_.push_back(kCycleNever);
    return id;
}

void
WakeupScheduler::wake(ComponentId id, Cycle at)
{
    if (at >= armed_[id])
        return;  // Already armed at least as early (or at == never).
    if (armed_[id] == kCycleNever)
        ++armedCount_;
    armed_[id] = at;
    heap_.push_back(HeapEntry{at, id});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

void
WakeupScheduler::consume(ComponentId id)
{
    if (armed_[id] == kCycleNever)
        return;
    armed_[id] = kCycleNever;
    --armedCount_;
    // The heap entry goes stale and is pruned by the next nextWake().
}

Cycle
WakeupScheduler::nextWake()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        if (armed_[top.id] == top.at)
            return top.at;
        // Stale: the component was consumed (and possibly re-armed with
        // a fresh entry) since this was pushed.
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }
    return kCycleNever;
}

} // namespace ws
