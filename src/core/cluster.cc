#include "core/cluster.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

Cluster::Cluster(const ProcessorConfig &cfg, const DataflowGraph *graph,
                 const Placement *placement, TrafficStats *traffic,
                 MainMemory *mem, ClusterId id)
    : cfg_(cfg), graph_(graph), place_(placement), traffic_(traffic),
      id_(id)
{
    l1_ = std::make_unique<L1Controller>(cfg.memory, id);
    sb_ = std::make_unique<StoreBuffer>(cfg.storeBuffer, id, l1_.get(),
                                        mem);
    domains_.reserve(cfg.domainsPerCluster);
    for (DomainId d = 0; d < cfg.domainsPerCluster; ++d) {
        domains_.push_back(std::make_unique<Domain>(cfg, graph, placement,
                                                    traffic, id, d));
    }
    domNext_.assign(domains_.size(), 0);  // Armed at start, like Domain.
    domOutNext_.assign(domains_.size(), kCycleNever);
}

void
Cluster::receiveOperand(const OperandMsg &msg, Cycle now)
{
    if (msg.dst.cluster != id_)
        panic("Cluster %u: operand for cluster %u", id_, msg.dst.cluster);
    Domain &dom = *domains_.at(msg.dst.domain);
    if (msg.memTraffic)
        dom.pushMemIn(msg.token, now + cfg_.lat.netInject);
    else
        dom.pushNetIn(msg.token, now + cfg_.lat.netInject);
    domNext_[msg.dst.domain] =
        std::min(domNext_[msg.dst.domain], now + cfg_.lat.netInject);
}

void
Cluster::receiveMemRequest(const MemRequest &req, Cycle now)
{
    sbIn_.push(req, now + cfg_.lat.sbLocal);
    memNext_ = std::min(memNext_, now + cfg_.lat.sbLocal);
}

void
Cluster::tick(Cycle now)
{
    const bool gated = !cfg_.alwaysTick;

    // Memory side first: the store buffer consumes completions the L1
    // produced last cycle, then issues new work. The L1/SB pair is
    // gated as one block — skipping it is a no-op exactly when the L1
    // has nothing due, no request is inbound, and the store buffer's
    // own event cache shows no due work (load completions only exist
    // intra-tick, produced by the L1 tick and consumed by the SB tick
    // right after; a buffer that is merely *occupied* — parked ops
    // waiting on in-flight tokens — no longer forces the block on).
    const bool mem_due = !gated || memNext_ <= now;
    if (mem_due) {
        l1_->tick(now);
        while (sbIn_.ready(now))
            sb_->push(sbIn_.pop(now), now);
        sb_->tick(now);

        // Route completed loads to the consumers of the load
        // instruction.
        for (const LoadDone &ld : sb_->drainLoadDones()) {
            // Load replies are token creation outside any PE (wscheck
            // WS601).
            if (checker_ != nullptr) {
                checker_->onTokensCreated(
                    graph_->inst(ld.inst).outs[0].size());
            }
            for (const PortRef &ref : graph_->inst(ld.inst).outs[0]) {
                const Token token{ld.tag, ref, ld.value};
                const PeCoord dst = place_->home(ref.inst);
                if (dst.cluster == id_) {
                    traffic_->record(TrafficLevel::kIntraCluster,
                                     TrafficKind::kMemory);
                    domains_.at(dst.domain)->pushMemIn(
                        token, now + cfg_.lat.sbLocal);
                    domNext_[dst.domain] = std::min(
                        domNext_[dst.domain], now + cfg_.lat.sbLocal);
                } else {
                    NetMessage msg;
                    msg.src = id_;
                    msg.dst = dst.cluster;
                    msg.vc = 1;
                    msg.memTraffic = true;
                    msg.payload = OperandMsg{token, dst, true};
                    outboundNet_.push_back(std::move(msg));
                }
            }
        }
        sb_->drainLoadDones().clear();

        // Exact again until the next external event lowers it.
        memNext_ = std::min({l1_->nextEventCycle(), sb_->nextEventCycle(),
                             sbIn_.nextReady()});
        cohPending_ = !l1_->outbox().empty();
        if (sb_->waveDirty())
            sbWaveHint_ = true;
    } else {
        // No L1 tick, so nothing new could land in the outbox; traffic
        // delivered via l1().receive() is flagged by the processor at
        // the receive site itself.
        cohPending_ = false;
    }

    for (DomainId d = 0; d < domains_.size(); ++d) {
        if (!gated || domNext_[d] <= now) {
            Domain &dom = *domains_[d];
            dom.tick(now);
            domNext_[d] = dom.nextEventCycle();
            // Refresh immediately (not at the bottom): the tick may
            // have pushed gateway output, and with zero-latency config
            // it could even be ready this very cycle.
            domOutNext_[d] = std::min(dom.netOut().nextReady(),
                                      dom.memOut().nextReady());
            outNext_ = std::min(outNext_, domOutNext_[d]);
        }
    }

    // Gateway drains, gated as a block on the cached min over the
    // per-domain caches: most ticks move no gateway traffic at all.
    if (!gated || outNext_ <= now) {
        // Intra-cluster network: tokens leaving each domain's NET
        // pseudo-PE.
        for (DomainId d = 0; d < domains_.size(); ++d) {
            if (gated && domOutNext_[d] > now)
                continue;
            Domain *dom = domains_[d].get();
            while (dom->netOut().ready(now)) {
                Token token = dom->netOut().pop(now);
                const PeCoord dst = place_->home(token.dst.inst);
                if (dst.cluster == id_) {
                    traffic_->record(TrafficLevel::kIntraCluster,
                                     TrafficKind::kOperand);
                    interDomain_.push(token, now + cfg_.lat.clusterLink);
                } else {
                    NetMessage msg;
                    msg.src = id_;
                    msg.dst = dst.cluster;
                    msg.vc = 0;
                    msg.memTraffic = false;
                    msg.payload = OperandMsg{token, dst, false};
                    outboundNet_.push_back(std::move(msg));
                }
            }
        }

        // MEM pseudo-PEs: forward memory requests toward the owning
        // store buffer (rate-limited per domain).
        for (DomainId d = 0; d < domains_.size(); ++d) {
            if (gated && domOutNext_[d] > now)
                continue;
            Domain *dom = domains_[d].get();
            for (unsigned i = 0;
                 i < cfg_.memForwardRate && dom->memOut().ready(now);
                 ++i) {
                MemRequest req = dom->memOut().pop(now);
                const ClusterId home =
                    place_->threadHomeCluster(req.tag.thread);
                if (home == id_) {
                    traffic_->record(TrafficLevel::kIntraCluster,
                                     TrafficKind::kMemory);
                    sbIn_.push(req, now + cfg_.lat.sbLocal);
                    memNext_ = std::min(memNext_, now + cfg_.lat.sbLocal);
                } else {
                    NetMessage msg;
                    msg.src = id_;
                    msg.dst = home;
                    msg.vc = 0;
                    msg.memTraffic = true;
                    msg.payload = req;
                    outboundNet_.push_back(std::move(msg));
                }
            }
        }
    }

    // Deliver cross-domain hops into the destination NET pseudo-PEs.
    while (interDomain_.ready(now)) {
        Token token = interDomain_.pop(now);
        const PeCoord dst = place_->home(token.dst.inst);
        domains_.at(dst.domain)->pushNetIn(token, now + cfg_.lat.netInject);
        domNext_[dst.domain] =
            std::min(domNext_[dst.domain], now + cfg_.lat.netInject);
    }

    // Refresh the next-event cache the processor re-arms this cluster
    // from. The store buffer maintains its own next-event view (chain
    // issue, PSQ drains, parked-retry arming), so an occupied-but-
    // stalled buffer no longer pins the cluster to every cycle.
    Cycle next = std::min(memNext_, interDomain_.nextReady());
    Cycle out_next = kCycleNever;
    for (DomainId d = 0; d < domains_.size(); ++d) {
        if (domOutNext_[d] <= now) {
            // The drains above popped from (or were rate-limited on)
            // these queues; everyone else's cache is still exact.
            domOutNext_[d] = std::min(domains_[d]->netOut().nextReady(),
                                      domains_[d]->memOut().nextReady());
        }
        next = std::min(next, domNext_[d]);
        out_next = std::min(out_next, domOutNext_[d]);
    }
    outNext_ = out_next;
    nextEvent_ = std::min(next, out_next);
}

void
Cluster::setChecker(RuntimeChecker *checker)
{
    checker_ = checker;
    sb_->setChecker(checker);
}

std::uint64_t
Cluster::workSignature() const
{
    std::uint64_t h = 0x636c757374657200ULL;  // "cluster" salt.
    for (const auto &dom : domains_)
        h = hashCombine(h, dom->workSignature());
    h = hashCombine(h, sb_->workSignature());
    h = hashCombine(h, l1_->workSignature());
    h = hashCombine(h, static_cast<std::uint64_t>(interDomain_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(sbIn_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(outboundNet_.size()));
    return h;
}

bool
Cluster::idle() const
{
    for (const auto &dom : domains_) {
        if (!dom->idle())
            return false;
    }
    return l1_->idle() && sb_->idle() && interDomain_.empty() &&
           sbIn_.empty() && outboundNet_.empty();
}

} // namespace ws
