#include "core/cluster.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

Cluster::Cluster(const ProcessorConfig &cfg, const DataflowGraph *graph,
                 const Placement *placement, TrafficStats *traffic,
                 MainMemory *mem, ClusterId id)
    : cfg_(cfg), graph_(graph), place_(placement), traffic_(traffic),
      id_(id)
{
    l1_ = std::make_unique<L1Controller>(cfg.memory, id);
    sb_ = std::make_unique<StoreBuffer>(cfg.storeBuffer, id, l1_.get(),
                                        mem);
    domains_.reserve(cfg.domainsPerCluster);
    for (DomainId d = 0; d < cfg.domainsPerCluster; ++d) {
        domains_.push_back(std::make_unique<Domain>(cfg, graph, placement,
                                                    traffic, id, d));
    }
}

void
Cluster::receiveOperand(const OperandMsg &msg, Cycle now)
{
    if (msg.dst.cluster != id_)
        panic("Cluster %u: operand for cluster %u", id_, msg.dst.cluster);
    Domain &dom = *domains_.at(msg.dst.domain);
    if (msg.memTraffic)
        dom.pushMemIn(msg.token, now + cfg_.lat.netInject);
    else
        dom.pushNetIn(msg.token, now + cfg_.lat.netInject);
}

void
Cluster::receiveMemRequest(const MemRequest &req, Cycle now)
{
    sbIn_.push(req, now + cfg_.lat.sbLocal);
}

void
Cluster::tick(Cycle now)
{
    const bool gated = !cfg_.alwaysTick;

    // Memory side first: the store buffer consumes completions the L1
    // produced last cycle, then issues new work. The L1/SB pair is
    // gated as one block — skipping it is a no-op exactly when the L1
    // has nothing due, no request is inbound, and the buffer is empty
    // (load completions only exist intra-tick, produced by the L1 tick
    // and consumed by the SB tick right after).
    const bool mem_due = !gated || !sb_->idle() || sbIn_.ready(now) ||
                         l1_->nextEventCycle() <= now;
    if (mem_due) {
        l1_->tick(now);
        while (sbIn_.ready(now))
            sb_->push(sbIn_.pop(now), now);
        sb_->tick(now);

        // Route completed loads to the consumers of the load
        // instruction.
        for (const LoadDone &ld : sb_->drainLoadDones()) {
            // Load replies are token creation outside any PE (wscheck
            // WS601).
            if (checker_ != nullptr) {
                checker_->onTokensCreated(
                    graph_->inst(ld.inst).outs[0].size());
            }
            for (const PortRef &ref : graph_->inst(ld.inst).outs[0]) {
                const Token token{ld.tag, ref, ld.value};
                const PeCoord dst = place_->home(ref.inst);
                if (dst.cluster == id_) {
                    traffic_->record(TrafficLevel::kIntraCluster,
                                     TrafficKind::kMemory);
                    domains_.at(dst.domain)->pushMemIn(
                        token, now + cfg_.lat.sbLocal);
                } else {
                    NetMessage msg;
                    msg.src = id_;
                    msg.dst = dst.cluster;
                    msg.vc = 1;
                    msg.memTraffic = true;
                    msg.payload = OperandMsg{token, dst, true};
                    outboundNet_.push_back(std::move(msg));
                }
            }
        }
        sb_->drainLoadDones().clear();
    }

    for (auto &dom : domains_) {
        if (!gated || dom->nextEventCycle() <= now)
            dom->tick(now);
    }

    // Intra-cluster network: tokens leaving each domain's NET pseudo-PE.
    for (auto &dom : domains_) {
        while (dom->netOut().ready(now)) {
            Token token = dom->netOut().pop(now);
            const PeCoord dst = place_->home(token.dst.inst);
            if (dst.cluster == id_) {
                traffic_->record(TrafficLevel::kIntraCluster,
                                 TrafficKind::kOperand);
                interDomain_.push(token, now + cfg_.lat.clusterLink);
            } else {
                NetMessage msg;
                msg.src = id_;
                msg.dst = dst.cluster;
                msg.vc = 0;
                msg.memTraffic = false;
                msg.payload = OperandMsg{token, dst, false};
                outboundNet_.push_back(std::move(msg));
            }
        }
    }

    // MEM pseudo-PEs: forward memory requests toward the owning store
    // buffer (rate-limited per domain).
    for (auto &dom : domains_) {
        for (unsigned i = 0;
             i < cfg_.memForwardRate && dom->memOut().ready(now); ++i) {
            MemRequest req = dom->memOut().pop(now);
            const ClusterId home =
                place_->threadHomeCluster(req.tag.thread);
            if (home == id_) {
                traffic_->record(TrafficLevel::kIntraCluster,
                                 TrafficKind::kMemory);
                sbIn_.push(req, now + cfg_.lat.sbLocal);
            } else {
                NetMessage msg;
                msg.src = id_;
                msg.dst = home;
                msg.vc = 0;
                msg.memTraffic = true;
                msg.payload = req;
                outboundNet_.push_back(std::move(msg));
            }
        }
    }

    // Deliver cross-domain hops into the destination NET pseudo-PEs.
    while (interDomain_.ready(now)) {
        Token token = interDomain_.pop(now);
        const PeCoord dst = place_->home(token.dst.inst);
        domains_.at(dst.domain)->pushNetIn(token, now + cfg_.lat.netInject);
    }

    // Refresh the next-event cache the processor re-arms this cluster
    // from. A non-idle store buffer conservatively pins the cluster to
    // next cycle: its internal state (parked stores, issue chains,
    // outstanding lines) has no single next-ready view.
    Cycle next = l1_->nextEventCycle();
    if (!sb_->idle())
        next = std::min(next, now + 1);
    next = std::min(next, sbIn_.nextReady());
    next = std::min(next, interDomain_.nextReady());
    for (const auto &dom : domains_) {
        next = std::min(next, dom->nextEventCycle());
        next = std::min(next, dom->netOut().nextReady());
        next = std::min(next, dom->memOut().nextReady());
    }
    nextEvent_ = next;
}

void
Cluster::setChecker(RuntimeChecker *checker)
{
    checker_ = checker;
    sb_->setChecker(checker);
}

std::uint64_t
Cluster::workSignature() const
{
    std::uint64_t h = 0x636c757374657200ULL;  // "cluster" salt.
    for (const auto &dom : domains_)
        h = hashCombine(h, dom->workSignature());
    h = hashCombine(h, sb_->workSignature());
    h = hashCombine(h, l1_->workSignature());
    h = hashCombine(h, static_cast<std::uint64_t>(interDomain_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(sbIn_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(outboundNet_.size()));
    return h;
}

bool
Cluster::idle() const
{
    for (const auto &dom : domains_) {
        if (!dom->idle())
            return false;
    }
    return l1_->idle() && sb_->idle() && interDomain_.empty() &&
           sbIn_.empty() && outboundNet_.empty();
}

} // namespace ws
