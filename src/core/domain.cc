#include "core/domain.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

Domain::Domain(const ProcessorConfig &cfg, const DataflowGraph *graph,
               const Placement *placement, TrafficStats *traffic,
               ClusterId cluster, DomainId id)
    : cfg_(cfg), place_(placement), traffic_(traffic),
      eventCore_(!cfg.alwaysTick && !cfg.referenceCore)
{
    base_.cluster = cluster;
    base_.domain = id;
    pes_.reserve(cfg.pesPerDomain);
    duePes_.reserve(cfg.pesPerDomain);
    for (PeId p = 0; p < cfg.pesPerDomain; ++p) {
        PeCoord coord{cluster, id, p};
        pes_.push_back(std::make_unique<ProcessingElement>(
            cfg.pe, graph, placement, coord));
        pes_.back()->setFpu(&fpu_);
        // Ring id == PE index; the ring is fed only in event mode (the
        // polled reference core scans nextEventCycle() directly).
        const ComponentId ring_id = peRing_.add(nullptr);
        if (eventCore_)
            pes_.back()->setWakeup(&peRing_, ring_id);
    }
    // Couple PE pairs into pods (an odd trailing PE stays unpaired).
    for (std::size_t p = 0; p + 1 < pes_.size(); p += 2) {
        pes_[p]->setPodPartner(pes_[p + 1].get());
        pes_[p + 1]->setPodPartner(pes_[p].get());
    }
}

void
Domain::assignHomes(const std::vector<std::vector<InstId>> &per_pe)
{
    if (per_pe.size() != pes_.size())
        panic("Domain: assignHomes got %zu lists for %zu PEs",
              per_pe.size(), pes_.size());
    for (std::size_t p = 0; p < pes_.size(); ++p)
        pes_[p]->assignHome(per_pe[p]);
}

void
Domain::tick(Cycle now)
{
    ++tickCount_;

    // Visit the PEs that have due work. Event mode consumes the ring
    // armed by the PEs' own queue pushes; the reference core polls every
    // PE's queues. The visit sets are provably identical (every push
    // arms its ready cycle; a consumed PE re-arms from its exact
    // next-event below), and all intra-tick wakes target cycles
    // strictly after `now`, so the due set is fixed at tick entry
    // either way. alwaysTick visits everything.
    duePes_.clear();
    if (eventCore_) {
        for (PeId p = 0; p < pes_.size(); ++p) {
            if (peRing_.due(p, now)) {
                peRing_.consume(p);
                duePes_.push_back(p);
                pes_[p]->tick(now);
            }
        }
    } else {
        const bool gated = !cfg_.alwaysTick;
        for (PeId p = 0; p < pes_.size(); ++p) {
            if (!gated || pes_[p]->nextEventCycle() <= now) {
                duePes_.push_back(p);
                pes_[p]->tick(now);
            }
        }
    }

    // OUTPUT stage: each PE's dedicated result bus carries one executed
    // instruction's outbound work per cycle. A PE with output ready is
    // necessarily in duePes_ (a ready output queue arms/polls the PE).
    for (const PeId p : duePes_) {
        ProcessingElement &pe = *pes_[p];
        if (!pe.hasOutput(now))
            continue;
        OutputEntry entry = pe.popOutput(now);
        if (entry.hasMem)
            memOut_.push(entry.mem, now + cfg_.lat.toPseudoPe);
        for (const Token &token : entry.tokens) {
            const PeCoord dst = place_->home(token.dst.inst);
            if (dst.sameDomain(pe.self())) {
                traffic_->record(TrafficLevel::kIntraDomain,
                                 TrafficKind::kOperand);
                delivery_.push(token, now + cfg_.lat.domainBus);
                qNext_ = std::min(qNext_, now + cfg_.lat.domainBus);
            } else {
                netOut_.push(token, now + cfg_.lat.toPseudoPe);
            }
        }
    }

    // Gateway and delivery traffic, gated on the cached earliest ready
    // cycle so a purely PE-driven tick touches none of the queues. The
    // gate is exact: qNext_ is lowered at every push, so skipping means
    // no pop below could have fired.
    const bool q_due = cfg_.alwaysTick || qNext_ <= now;
    if (q_due) {
        // NET pseudo-PE: introduces up to netInjectRate operands per
        // cycle into the domain.
        for (unsigned i = 0;
             i < cfg_.netInjectRate && netIn_.ready(now); ++i) {
            Token token = netIn_.pop(now);
            delivery_.push(token, now + cfg_.lat.fromPseudoPe);
        }

        // MEM pseudo-PE, inbound side: load replies.
        for (unsigned i = 0;
             i < cfg_.memForwardRate && memIn_.ready(now); ++i) {
            Token token = memIn_.pop(now);
            delivery_.push(token, now + cfg_.lat.fromPseudoPe);
        }

        // Deliver ready tokens; receivers may reject on bandwidth
        // (INPUT stage), in which case the sender retries next cycle.
        rejected_.clear();
        while (delivery_.ready(now)) {
            Token token = delivery_.pop(now);
            const PeCoord dst = place_->home(token.dst.inst);
            if (!dst.sameDomain(base_))
                panic("Domain (%u,%u): delivery for PE (%u,%u,%u)",
                      base_.cluster, base_.domain, dst.cluster,
                      dst.domain, dst.pe);
            if (!pes_.at(dst.pe)->tryAccept(token, now))
                rejected_.push_back(token);
        }
        for (const Token &token : rejected_)
            delivery_.push(token, now + 1);

        qNext_ = std::min(delivery_.nextReady(),
                          std::min(netIn_.nextReady(),
                                   memIn_.nextReady()));
    }

    // Refresh the next-event cache. Work created mid-tick by other
    // components lands through the push entry points (which lower the
    // cache directly) or inside a pod partner's tick (covered here,
    // since pods never span domains). In event mode the re-arm below
    // restores the ring invariant armed[p] == pe[p].nextEventCycle(),
    // so the ring minimum equals the reference core's full scan and the
    // cluster-level arming stays byte-identical across cores.
    Cycle next = kCycleNever;
    if (eventCore_) {
        for (const PeId p : duePes_)
            peRing_.wake(p, pes_[p]->nextEventCycle());
        next = peRing_.minArmed();
    } else {
        for (const auto &pe : pes_)
            next = std::min(next, pe->nextEventCycle());
    }
    nextEvent_ = std::min(next, qNext_);
}

std::uint64_t
Domain::workSignature() const
{
    std::uint64_t h = 0x646f6d5f7369676eULL;  // "dom_sign" salt.
    for (const auto &pe : pes_)
        h = hashCombine(h, pe->workSignature());
    h = hashCombine(h, fpu_.issued());
    h = hashCombine(h, static_cast<std::uint64_t>(delivery_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(netOut_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(memOut_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(netIn_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(memIn_.size()));
    return h;
}

bool
Domain::idle() const
{
    for (const auto &pe : pes_) {
        if (!pe->idle())
            return false;
    }
    return delivery_.empty() && netOut_.empty() && memOut_.empty() &&
           netIn_.empty() && memIn_.empty();
}

} // namespace ws
