#include "core/domain.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

Domain::Domain(const ProcessorConfig &cfg, const DataflowGraph *graph,
               const Placement *placement, TrafficStats *traffic,
               ClusterId cluster, DomainId id)
    : cfg_(cfg), place_(placement), traffic_(traffic)
{
    base_.cluster = cluster;
    base_.domain = id;
    pes_.reserve(cfg.pesPerDomain);
    for (PeId p = 0; p < cfg.pesPerDomain; ++p) {
        PeCoord coord{cluster, id, p};
        pes_.push_back(std::make_unique<ProcessingElement>(
            cfg.pe, graph, placement, coord));
        pes_.back()->setFpu(&fpu_);
    }
    // Couple PE pairs into pods (an odd trailing PE stays unpaired).
    for (std::size_t p = 0; p + 1 < pes_.size(); p += 2) {
        pes_[p]->setPodPartner(pes_[p + 1].get());
        pes_[p + 1]->setPodPartner(pes_[p].get());
    }
}

void
Domain::assignHomes(const std::vector<std::vector<InstId>> &per_pe)
{
    if (per_pe.size() != pes_.size())
        panic("Domain: assignHomes got %zu lists for %zu PEs",
              per_pe.size(), pes_.size());
    for (std::size_t p = 0; p < pes_.size(); ++p)
        pes_[p]->assignHome(per_pe[p]);
}

void
Domain::tick(Cycle now)
{
    // Activity gating: a PE whose queues hold nothing due is a no-op
    // tick, so skip it. The reference mode ticks everything.
    const bool gated = !cfg_.alwaysTick;
    for (auto &pe : pes_) {
        if (!gated || pe->nextEventCycle() <= now)
            pe->tick(now);
    }

    // OUTPUT stage: each PE's dedicated result bus carries one executed
    // instruction's outbound work per cycle.
    for (auto &pe : pes_) {
        if (!pe->hasOutput(now))
            continue;
        OutputEntry entry = pe->popOutput(now);
        if (entry.hasMem)
            memOut_.push(entry.mem, now + cfg_.lat.toPseudoPe);
        for (const Token &token : entry.tokens) {
            const PeCoord dst = place_->home(token.dst.inst);
            if (dst.sameDomain(pe->self())) {
                traffic_->record(TrafficLevel::kIntraDomain,
                                 TrafficKind::kOperand);
                delivery_.push(token, now + cfg_.lat.domainBus);
            } else {
                netOut_.push(token, now + cfg_.lat.toPseudoPe);
            }
        }
    }

    // NET pseudo-PE: introduces up to netInjectRate operands per cycle
    // into the domain.
    for (unsigned i = 0; i < cfg_.netInjectRate && netIn_.ready(now); ++i) {
        Token token = netIn_.pop(now);
        delivery_.push(token, now + cfg_.lat.fromPseudoPe);
    }

    // MEM pseudo-PE, inbound side: load replies.
    for (unsigned i = 0;
         i < cfg_.memForwardRate && memIn_.ready(now); ++i) {
        Token token = memIn_.pop(now);
        delivery_.push(token, now + cfg_.lat.fromPseudoPe);
    }

    // Deliver ready tokens; receivers may reject on bandwidth (INPUT
    // stage), in which case the sender retries next cycle.
    rejected_.clear();
    while (delivery_.ready(now)) {
        Token token = delivery_.pop(now);
        const PeCoord dst = place_->home(token.dst.inst);
        if (!dst.sameDomain(base_))
            panic("Domain (%u,%u): delivery for PE (%u,%u,%u)",
                  base_.cluster, base_.domain, dst.cluster, dst.domain,
                  dst.pe);
        if (!pes_.at(dst.pe)->tryAccept(token, now))
            rejected_.push_back(token);
    }
    for (const Token &token : rejected_)
        delivery_.push(token, now + 1);

    // Refresh the next-event cache. Work created mid-tick by other
    // components lands through the push entry points (which lower the
    // cache directly) or inside a pod partner's tick (covered here,
    // since pods never span domains).
    Cycle next = kCycleNever;
    for (const auto &pe : pes_)
        next = std::min(next, pe->nextEventCycle());
    next = std::min(next, delivery_.nextReady());
    next = std::min(next, netIn_.nextReady());
    next = std::min(next, memIn_.nextReady());
    nextEvent_ = next;
}

std::uint64_t
Domain::workSignature() const
{
    std::uint64_t h = 0x646f6d5f7369676eULL;  // "dom_sign" salt.
    for (const auto &pe : pes_)
        h = hashCombine(h, pe->workSignature());
    h = hashCombine(h, fpu_.issued());
    h = hashCombine(h, static_cast<std::uint64_t>(delivery_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(netOut_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(memOut_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(netIn_.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(memIn_.size()));
    return h;
}

bool
Domain::idle() const
{
    for (const auto &pe : pes_) {
        if (!pe->idle())
            return false;
    }
    return delivery_.empty() && netOut_.empty() && memOut_.empty() &&
           netIn_.empty() && memIn_.empty();
}

} // namespace ws
