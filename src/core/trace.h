/**
 * @file
 * Interval tracing: periodic CSV samples of machine activity during a
 * run (AIPC over time, memory-system and network activity), for
 * plotting warm-up behaviour, phase structure, and saturation.
 */

#ifndef WS_CORE_TRACE_H_
#define WS_CORE_TRACE_H_

#include <ostream>

#include "common/types.h"

namespace ws {

class Processor;

class IntervalTracer
{
  public:
    /**
     * Stream CSV rows to @p os every @p interval cycles. The header is
     * written on the first sample. The stream must outlive the tracer.
     */
    IntervalTracer(std::ostream &os, Cycle interval = 1000);

    Cycle interval() const { return interval_; }

    /** Emit one sample row; called by Processor::run(). */
    void sample(const Processor &proc);

    /**
     * Flush the final partial window. Called by Processor::run() when
     * the run ends (completion, quiescence, or budget) between interval
     * boundaries; the trailing cycles would otherwise be dropped. The
     * row's window rates use the actual cycle delta, not interval().
     * No-op when the run ended exactly on a boundary.
     */
    void finish(const Processor &proc);

  private:
    /** Write one row covering @p window cycles ending now. */
    void emitRow(const Processor &proc, double window);

    std::ostream &os_;
    Cycle interval_;
    Cycle lastSample_ = 0;  ///< Cycle of the most recent row.
    bool wroteHeader_ = false;
    double prevUseful_ = 0;
    double prevExecuted_ = 0;
    double prevSbRequests_ = 0;
    double prevTraffic_ = 0;
    double prevL1Misses_ = 0;
};

} // namespace ws

#endif // WS_CORE_TRACE_H_
