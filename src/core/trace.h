/**
 * @file
 * Interval tracing: periodic CSV samples of machine activity during a
 * run (AIPC over time, memory-system and network activity), for
 * plotting warm-up behaviour, phase structure, and saturation.
 */

#ifndef WS_CORE_TRACE_H_
#define WS_CORE_TRACE_H_

#include <ostream>

#include "common/types.h"

namespace ws {

class Processor;

class IntervalTracer
{
  public:
    /**
     * Stream CSV rows to @p os every @p interval cycles. The header is
     * written on the first sample. The stream must outlive the tracer.
     */
    IntervalTracer(std::ostream &os, Cycle interval = 1000);

    Cycle interval() const { return interval_; }

    /** Emit one sample row; called by Processor::run(). */
    void sample(const Processor &proc);

  private:
    std::ostream &os_;
    Cycle interval_;
    bool wroteHeader_ = false;
    double prevUseful_ = 0;
    double prevExecuted_ = 0;
    double prevSbRequests_ = 0;
    double prevTraffic_ = 0;
    double prevL1Misses_ = 0;
};

} // namespace ws

#endif // WS_CORE_TRACE_H_
