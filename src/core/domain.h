/**
 * @file
 * A domain: eight PEs (four pods), the shared FPU, the broadcast
 * intra-domain interconnect, and the MEM / NET pseudo-PE gateways
 * (paper §3.4.1).
 *
 * Each PE owns a dedicated result bus, so the intra-domain network has
 * no sender-side contention; contention appears at the receivers (each
 * PE accepts up to four operands per cycle — its matching-table banks)
 * and at the pseudo-PE gateways (one operand per cycle each way).
 *
 * Tick protocol: the domain keeps a per-PE event ring (a nested
 * WakeupScheduler). Every PE queue push reports its ready cycle, so an
 * active domain visits only the PEs that actually have due work —
 * instead of polling all eight PEs' queues every live cycle. The
 * reference core (ProcessorConfig::referenceCore) retains the polled
 * loops; both modes compute identical next-event values, so the
 * cluster-level arming (and hence the exported activity.* counters)
 * is byte-identical between them.
 */

#ifndef WS_CORE_DOMAIN_H_
#define WS_CORE_DOMAIN_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "core/clock.h"
#include "core/config.h"
#include "core/soa.h"
#include "isa/graph.h"
#include "network/message.h"
#include "network/timed_queue.h"
#include "network/traffic.h"
#include "pe/pe.h"
#include "place/placement.h"

namespace ws {

class Domain : public Clocked
{
  public:
    Domain(const ProcessorConfig &cfg, const DataflowGraph *graph,
           const Placement *placement, TrafficStats *traffic,
           ClusterId cluster, DomainId id);

    /** Give every PE its home instruction list (called once at setup). */
    void assignHomes(const std::vector<std::vector<InstId>> &per_pe);

    /** Advance PEs, drain result buses, run pseudo-PE gateways. */
    void tick(Cycle now);

    void tickComponent(Cycle now) override { tick(now); }

    /**
     * Cached earliest cycle at which this domain has work. Refreshed at
     * the end of every tick; lowered eagerly by the push entry points,
     * so the cluster can skip the domain in between. Excludes
     * netOut_/memOut_, which the *cluster* drains and accounts for.
     */
    Cycle nextEventCycle() const override { return nextEvent_; }

    /** Tokens leaving the domain (drained by the cluster). */
    TimedTokenQueue &netOut() { return netOut_; }

    /** Memory requests heading for a store buffer (drained by cluster). */
    TimedQueue<MemRequest> &memOut() { return memOut_; }

    /** Entry point for operands arriving from other domains/clusters. */
    void pushNetIn(const Token &token, Cycle ready) {
        netIn_.push(token, ready);
        noteEvent(ready);
        qNext_ = std::min(qNext_, ready);
    }

    /** Entry point for load replies from the memory system. */
    void pushMemIn(const Token &token, Cycle ready) {
        memIn_.push(token, ready);
        noteEvent(ready);
        qNext_ = std::min(qNext_, ready);
    }

    /** Direct local-delivery entry (initial token injection at setup). */
    void pushDelivery(const Token &token, Cycle ready) {
        delivery_.push(token, ready);
        noteEvent(ready);
        qNext_ = std::min(qNext_, ready);
    }

    ProcessingElement &pe(PeId p) { return *pes_.at(p); }
    const ProcessingElement &pe(PeId p) const { return *pes_.at(p); }
    std::size_t numPes() const { return pes_.size(); }
    const DomainFpu &fpu() const { return fpu_; }

    /** Times tick() ran (test/debug only; never exported or hashed). */
    std::uint64_t tickCount() const { return tickCount_; }

    /**
     * Hash of every observable-progress indicator of this domain and
     * its PEs (wscheck WS606): ticking on a cycle the domain was not
     * armed for must leave this unchanged.
     */
    std::uint64_t workSignature() const;

    bool idle() const;

  private:
    /** Lower the cached next-event cycle (external work arrived). */
    void
    noteEvent(Cycle at)
    {
        if (at < nextEvent_)
            nextEvent_ = at;
    }

    const ProcessorConfig &cfg_;
    const Placement *place_;
    TrafficStats *traffic_;
    PeCoord base_;   ///< cluster/domain of this domain (pe field unused).
    bool eventCore_;       ///< Ring-driven PE ticks (vs polled loops).
    Cycle nextEvent_ = 0;  ///< See nextEventCycle(); 0 = armed at start.
    /**
     * Cached min ready cycle over delivery_/netIn_/memIn_, so a tick
     * that only serves PE work skips the three gateway/delivery loops
     * without touching the queue objects at all. Lowered at every push
     * site (external entry points above, OUTPUT-stage and gateway
     * forwards inside tick()); recomputed exactly whenever the loops
     * run. 0 = check on the first tick, like nextEvent_.
     */
    Cycle qNext_ = 0;
    std::uint64_t tickCount_ = 0;

    std::vector<std::unique_ptr<ProcessingElement>> pes_;
    DomainFpu fpu_;
    /** Per-PE event ring (ids == PE index), heapless: eight slots make
     *  the linear minArmed() scan cheaper than heap churn. */
    WakeupScheduler peRing_{/*use_heap=*/false};
    std::vector<PeId> duePes_;   ///< Scratch: PEs visited this tick.

    TokenPool pool_;  ///< Backs the domain-level token queues below.
    TimedTokenQueue delivery_{&pool_};  ///< Tokens awaiting PE acceptance.
    TimedTokenQueue netOut_{&pool_};
    TimedQueue<MemRequest> memOut_;
    TimedTokenQueue netIn_{&pool_};
    TimedTokenQueue memIn_{&pool_};
    std::vector<Token> rejected_;  ///< Scratch for delivery retries.
};

} // namespace ws

#endif // WS_CORE_DOMAIN_H_
