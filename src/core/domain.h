/**
 * @file
 * A domain: eight PEs (four pods), the shared FPU, the broadcast
 * intra-domain interconnect, and the MEM / NET pseudo-PE gateways
 * (paper §3.4.1).
 *
 * Each PE owns a dedicated result bus, so the intra-domain network has
 * no sender-side contention; contention appears at the receivers (each
 * PE accepts up to four operands per cycle — its matching-table banks)
 * and at the pseudo-PE gateways (one operand per cycle each way).
 */

#ifndef WS_CORE_DOMAIN_H_
#define WS_CORE_DOMAIN_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "core/clock.h"
#include "core/config.h"
#include "isa/graph.h"
#include "network/message.h"
#include "network/timed_queue.h"
#include "network/traffic.h"
#include "pe/pe.h"
#include "place/placement.h"

namespace ws {

class Domain : public Clocked
{
  public:
    Domain(const ProcessorConfig &cfg, const DataflowGraph *graph,
           const Placement *placement, TrafficStats *traffic,
           ClusterId cluster, DomainId id);

    /** Give every PE its home instruction list (called once at setup). */
    void assignHomes(const std::vector<std::vector<InstId>> &per_pe);

    /** Advance PEs, drain result buses, run pseudo-PE gateways. */
    void tick(Cycle now);

    void tickComponent(Cycle now) override { tick(now); }

    /**
     * Cached earliest cycle at which this domain has work. Refreshed at
     * the end of every tick; lowered eagerly by the push entry points,
     * so the cluster can skip the domain in between. Excludes
     * netOut_/memOut_, which the *cluster* drains and accounts for.
     */
    Cycle nextEventCycle() const override { return nextEvent_; }

    /** Tokens leaving the domain (drained by the cluster). */
    TimedQueue<Token> &netOut() { return netOut_; }

    /** Memory requests heading for a store buffer (drained by cluster). */
    TimedQueue<MemRequest> &memOut() { return memOut_; }

    /** Entry point for operands arriving from other domains/clusters. */
    void pushNetIn(const Token &token, Cycle ready) {
        netIn_.push(token, ready);
        noteEvent(ready);
    }

    /** Entry point for load replies from the memory system. */
    void pushMemIn(const Token &token, Cycle ready) {
        memIn_.push(token, ready);
        noteEvent(ready);
    }

    /** Direct local-delivery entry (initial token injection at setup). */
    void pushDelivery(const Token &token, Cycle ready) {
        delivery_.push(token, ready);
        noteEvent(ready);
    }

    ProcessingElement &pe(PeId p) { return *pes_.at(p); }
    const ProcessingElement &pe(PeId p) const { return *pes_.at(p); }
    std::size_t numPes() const { return pes_.size(); }
    const DomainFpu &fpu() const { return fpu_; }

    /**
     * Hash of every observable-progress indicator of this domain and
     * its PEs (wscheck WS606): ticking on a cycle the domain was not
     * armed for must leave this unchanged.
     */
    std::uint64_t workSignature() const;

    bool idle() const;

  private:
    /** Lower the cached next-event cycle (external work arrived). */
    void
    noteEvent(Cycle at)
    {
        if (at < nextEvent_)
            nextEvent_ = at;
    }

    const ProcessorConfig &cfg_;
    const Placement *place_;
    TrafficStats *traffic_;
    PeCoord base_;   ///< cluster/domain of this domain (pe field unused).
    Cycle nextEvent_ = 0;  ///< See nextEventCycle(); 0 = armed at start.

    std::vector<std::unique_ptr<ProcessingElement>> pes_;
    DomainFpu fpu_;

    TimedQueue<Token> delivery_;  ///< Tokens awaiting PE acceptance.
    TimedQueue<Token> netOut_;
    TimedQueue<MemRequest> memOut_;
    TimedQueue<Token> netIn_;
    TimedQueue<Token> memIn_;
    std::vector<Token> rejected_;  ///< Scratch for delivery retries.
};

} // namespace ws

#endif // WS_CORE_DOMAIN_H_
