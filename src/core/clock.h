/**
 * @file
 * Activity-gated clocking: the Clocked component interface and the
 * deterministic wakeup scheduler that drives it.
 *
 * The simulator's hot loop used to tick every cluster/domain/PE/cache
 * every cycle; on the paper's large-area design points most of those
 * thousands of tiles are idle on any given cycle. Instead, components
 * now *register wakeups* — "I have work at cycle T" — and the
 * Processor only ticks components whose wakeup is due. Ticking an idle
 * component is a no-op by construction, so gated and ungated runs are
 * byte-identical; the `--always-tick` reference mode (which still
 * ticks everything while keeping identical scheduler bookkeeping) is
 * retained as the oracle the parity suite checks against.
 *
 * Determinism rules:
 *  - Component ids are fixed at construction (clusters in id order,
 *    then home, then mesh) and all ordering ties break by id, so a
 *    simulation is bit-reproducible regardless of host concurrency.
 *  - Every wakeup targets a cycle strictly after the cycle that
 *    registers it, so the set of due components for cycle N is fully
 *    determined before any phase of cycle N runs.
 *  - A due component is consumed (disarmed) before it ticks and
 *    re-armed from its own nextEventCycle() afterwards; external event
 *    sources (mesh deliveries, coherence routing) wake the destination
 *    directly at the event's ready cycle.
 *
 * Quiescence falls out for free: an empty wake set means no component
 * can ever have work again, making Processor::quiescent() O(1), and
 * run() can fast-forward dead cycles to the nearest wakeup.
 */

#ifndef WS_CORE_CLOCK_H_
#define WS_CORE_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ws {

/** Index of a registered component in its WakeupScheduler. */
using ComponentId = std::uint32_t;

/** A component advanced by the activity-gated clock tree. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle. Must be a no-op when nextEventCycle() > now. */
    virtual void tickComponent(Cycle now) = 0;

    /**
     * Earliest cycle at which this component has queued work
     * (kCycleNever when idle). May be a cached lower bound maintained
     * by the component; it must never exceed the true next event.
     */
    virtual Cycle nextEventCycle() const = 0;
};

/**
 * Deterministic wakeup scheduler: per-component armed cycles plus a
 * lazy min-heap over (cycle, id) for O(log n) nearest-wakeup queries.
 *
 * armed_[id] is authoritative; heap entries whose cycle no longer
 * matches armed_[id] are stale and pruned on pop. wake() only ever
 * *lowers* an armed cycle (arming earlier is always safe — an early
 * tick of an idle component is a no-op), and consume() disarms a
 * component as it ticks so its re-arm reflects post-tick state.
 */
class WakeupScheduler
{
  public:
    WakeupScheduler() = default;

    /**
     * @p use_heap false selects the heapless small-ring mode: wake()
     * skips the lazy heap entirely and nearest-wakeup queries go
     * through minArmed()'s linear scan. For single-digit rings (a
     * domain's eight PEs) the scan beats the heap's push/prune churn
     * and allocates nothing; nextWake() is then off-limits (the heap
     * it prunes is never fed).
     */
    explicit WakeupScheduler(bool use_heap) : useHeap_(use_heap) {}

    /** Register a component; ids are assigned densely in call order.
     *  @p c may be null for components ticked by their owner.
     *  (Header-only so layers below src/core — the PEs feeding their
     *  domain's event ring — can use the scheduler without a link
     *  cycle.) */
    ComponentId
    add(Clocked *c)
    {
        const ComponentId id = static_cast<ComponentId>(components_.size());
        components_.push_back(c);
        armed_.push_back(kCycleNever);
        return id;
    }

    /** Arm @p id at cycle @p at if that is earlier than its current
     *  wakeup. kCycleNever is ignored. */
    void
    wake(ComponentId id, Cycle at)
    {
        if (at >= armed_[id])
            return;  // Already armed at least as early (or at == never).
        if (armed_[id] == kCycleNever)
            ++armedCount_;
        armed_[id] = at;
        if (useHeap_) {
            heap_.push_back(HeapEntry{at, id});
            std::push_heap(heap_.begin(), heap_.end(), later);
        }
    }

    /** True when @p id has a wakeup at or before @p now. */
    bool
    due(ComponentId id, Cycle now) const
    {
        return armed_[id] <= now;
    }

    /** Disarm @p id (called just before a due component ticks). */
    void
    consume(ComponentId id)
    {
        if (armed_[id] == kCycleNever)
            return;
        armed_[id] = kCycleNever;
        --armedCount_;
        // The heap entry goes stale and is pruned by the next nextWake().
    }

    /** Earliest armed wakeup cycle (kCycleNever when none). Prunes
     *  stale heap entries, hence non-const. */
    Cycle
    nextWake()
    {
        while (!heap_.empty()) {
            const HeapEntry &top = heap_.front();
            if (armed_[top.id] == top.at)
                return top.at;
            // Stale: the component was consumed (and possibly re-armed
            // with a fresh entry) since this was pushed.
            std::pop_heap(heap_.begin(), heap_.end(), later);
            heap_.pop_back();
        }
        return kCycleNever;
    }

    /** Earliest armed wakeup by linear scan over the authoritative
     *  array (kCycleNever when none). The heapless-ring counterpart of
     *  nextWake(); exact in either mode. */
    Cycle
    minArmed() const
    {
        Cycle next = kCycleNever;
        for (const Cycle at : armed_)
            next = std::min(next, at);
        return next;
    }

    /** O(1): true when any component is armed. An un-armed machine can
     *  never make progress again (quiescence fast path). */
    bool anyArmed() const { return armedCount_ != 0; }

    std::size_t size() const { return components_.size(); }
    Clocked *component(ComponentId id) const { return components_[id]; }

  private:
    struct HeapEntry
    {
        Cycle at;
        ComponentId id;
    };

    /** Min-heap order on (cycle, id): ties break by fixed component
     *  id, keeping wake order deterministic. */
    static bool
    later(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.at != b.at)
            return a.at > b.at;
        return a.id > b.id;
    }

    std::vector<Clocked *> components_;
    std::vector<Cycle> armed_;       ///< Authoritative wakeup per id.
    std::vector<HeapEntry> heap_;    ///< Lazy min-heap (may hold stale).
    std::size_t armedCount_ = 0;
    bool useHeap_ = true;            ///< False: heapless ring (minArmed).
};

} // namespace ws

#endif // WS_CORE_CLOCK_H_
