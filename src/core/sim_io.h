/**
 * @file
 * Exact JSON serialization of completed simulation results.
 *
 * The persistent simulation store (driver/disk_cache) writes one JSON
 * record per SimResult and replays it in later processes, and a
 * replayed result must be indistinguishable from a fresh run — the
 * bench tables printed from it have to be byte-identical. That forces
 * the contract here to be exactness, not readability: every field of
 * SimResult (including the full StatReport, in insertion order) is
 * emitted, doubles round-trip bit-equal through Json's shortest-form
 * writer, and deserialization is strict — any missing or mistyped
 * field rejects the whole record (the store treats that as a miss).
 */

#ifndef WS_CORE_SIM_IO_H_
#define WS_CORE_SIM_IO_H_

#include "common/json.h"
#include "core/simulator.h"

namespace ws {

/** Serialize every field of @p result (lossless; see file comment). */
Json simResultToJson(const SimResult &result);

/**
 * Rebuild a SimResult from simResultToJson output. Returns false and
 * leaves @p out default-constructed when @p j is not a well-formed
 * image (wrong version, missing field, type mismatch).
 */
bool simResultFromJson(const Json &j, SimResult *out);

/** Field-by-field equality, exact on doubles — the replay-fidelity
 *  oracle used by the store tests and wsa-serve's self-audit. */
bool simResultsEqual(const SimResult &a, const SimResult &b);

} // namespace ws

#endif // WS_CORE_SIM_IO_H_
