#include "core/trace.h"

#include "core/processor.h"

namespace ws {

IntervalTracer::IntervalTracer(std::ostream &os, Cycle interval)
    : os_(os), interval_(interval == 0 ? 1 : interval)
{}

void
IntervalTracer::sample(const Processor &proc)
{
    emitRow(proc, static_cast<double>(interval_));
}

void
IntervalTracer::finish(const Processor &proc)
{
    if (proc.cycle() <= lastSample_)
        return;
    emitRow(proc, static_cast<double>(proc.cycle() - lastSample_));
}

void
IntervalTracer::emitRow(const Processor &proc, double window)
{
    if (!wroteHeader_) {
        os_ << "cycle,aipc_window,aipc_cumulative,executed_window,"
               "sb_requests_window,messages_window,l1_misses_window\n";
        wroteHeader_ = true;
    }

    const StatReport r = proc.report();
    const double useful = r.get("sim.useful_executed");
    const double executed = r.get("pe.executed");
    const double sb = r.get("sb.requests");
    const double traffic = r.get("traffic.total");
    const double l1_misses = r.get("l1.misses");

    os_ << proc.cycle() << ',' << (useful - prevUseful_) / window << ','
        << proc.aipc() << ',' << executed - prevExecuted_ << ','
        << sb - prevSbRequests_ << ',' << traffic - prevTraffic_ << ','
        << l1_misses - prevL1Misses_ << '\n';

    prevUseful_ = useful;
    prevExecuted_ = executed;
    prevSbRequests_ = sb;
    prevTraffic_ = traffic;
    prevL1Misses_ = l1_misses;
    lastSample_ = proc.cycle();
}

} // namespace ws
