/**
 * @file
 * One-call simulation driver: build a Processor for a program, run it to
 * completion (or a cycle budget), and collect the results. This is the
 * primary entry point examples and benchmark harnesses use.
 */

#ifndef WS_CORE_SIMULATOR_H_
#define WS_CORE_SIMULATOR_H_

#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "core/config.h"
#include "core/processor.h"
#include "isa/graph.h"

namespace ws {

struct SimOptions
{
    Cycle maxCycles = 2'000'000;  ///< Hard budget; most kernels finish
                                  ///  far earlier via sink counting.
};

struct SimResult
{
    bool completed = false;  ///< All expected sink tokens arrived.
    Cycle cycles = 0;
    Counter useful = 0;      ///< Alpha-equivalent instructions executed.
    double aipc = 0.0;
    bool pruned = false;     ///< Never simulated: the sweep engine
                             ///  proved the point statically dominated
                             ///  (SweepEngine::runGrouped).
    StatReport report;
    /** wscheck: runtime invariant violations (0 when checking is off
     *  or the run was clean). Never part of `report` — checking must
     *  not perturb the statistics surface. */
    Counter checkViolations = 0;
    /** Rendered wscheck findings ("" when none). */
    std::string checkLog;
};

/** Build, run, and summarize one simulation. */
SimResult runSimulation(const DataflowGraph &graph,
                        const ProcessorConfig &cfg,
                        const SimOptions &opts = SimOptions{});

} // namespace ws

#endif // WS_CORE_SIMULATOR_H_
