#include "core/simulator.h"

namespace ws {

SimResult
runSimulation(const DataflowGraph &graph, const ProcessorConfig &cfg,
              const SimOptions &opts)
{
    Processor proc(graph, cfg);
    SimResult result;
    result.completed = proc.run(opts.maxCycles);
    result.cycles = proc.cycle();
    result.useful = proc.usefulExecuted();
    result.aipc = proc.aipc();
    result.report = proc.report();
    if (proc.checker() != nullptr) {
        result.checkViolations = proc.checker()->report().violationCount();
        result.checkLog = proc.checker()->report().render();
    }
    return result;
}

} // namespace ws
