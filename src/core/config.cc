#include "core/config.h"

#include "common/log.h"
#include "common/rng.h"
#include "verify/verifier.h"

namespace ws {

/**
 * Config-flavoured entry point of the static verifier (declared in
 * verify/verifier.h, defined here so the verify layer never includes
 * core headers): derive the capacity-lint thresholds from the machine
 * description. relaxLimits models the paper's idealized methodology
 * sweeps, where structure-size pressure is the *point* — skip the lint.
 */
VerifyReport
verify(const DataflowGraph &graph, const ProcessorConfig &cfg)
{
    VerifyLimits limits;
    if (!cfg.relaxLimits)
        limits.instructionCapacity = cfg.instructionCapacity();
    return verify(graph, limits);
}

ProcessorConfig
ProcessorConfig::baseline()
{
    ProcessorConfig cfg;
    cfg.clusters = 1;
    cfg.domainsPerCluster = 4;
    cfg.pesPerDomain = 8;
    cfg.pe.matchingEntries = 128;
    cfg.pe.matchingWays = 2;
    cfg.pe.matchingBanks = 4;
    cfg.pe.instStoreEntries = 128;
    cfg.memory.l1Bytes = 32 * 1024;
    cfg.memory.l2Bytes = 0;
    return cfg;
}

std::uint64_t
ProcessorConfig::fingerprint() const
{
    std::uint64_t h = 0x77617665736c6172ULL;  // "waveslar" salt.
    for (std::uint64_t v : {
             static_cast<std::uint64_t>(clusters),
             static_cast<std::uint64_t>(domainsPerCluster),
             static_cast<std::uint64_t>(pesPerDomain),
             // PeConfig.
             static_cast<std::uint64_t>(pe.matchingEntries),
             static_cast<std::uint64_t>(pe.matchingWays),
             static_cast<std::uint64_t>(pe.matchingBanks),
             static_cast<std::uint64_t>(pe.instStoreEntries),
             static_cast<std::uint64_t>(pe.outputQueueEntries),
             static_cast<std::uint64_t>(pe.k),
             static_cast<std::uint64_t>(pe.overflowRetryLatency),
             static_cast<std::uint64_t>(pe.instMissLatency),
             static_cast<std::uint64_t>(pe.overflowReinsertRate),
             static_cast<std::uint64_t>(pe.podBypass),
             // StoreBufferConfig.
             static_cast<std::uint64_t>(storeBuffer.waveSlots),
             static_cast<std::uint64_t>(storeBuffer.psqCount),
             static_cast<std::uint64_t>(storeBuffer.psqEntries),
             static_cast<std::uint64_t>(storeBuffer.issueWidth),
             static_cast<std::uint64_t>(storeBuffer.waveLookahead),
             // MemTimingConfig (clusters is wired from the top level).
             static_cast<std::uint64_t>(memory.l1Bytes),
             static_cast<std::uint64_t>(memory.l1Ways),
             static_cast<std::uint64_t>(memory.lineBytes),
             static_cast<std::uint64_t>(memory.l1HitLatency),
             static_cast<std::uint64_t>(memory.l1Ports),
             static_cast<std::uint64_t>(memory.l1Mshrs),
             static_cast<std::uint64_t>(memory.l2Bytes),
             static_cast<std::uint64_t>(memory.l2Ways),
             static_cast<std::uint64_t>(memory.l2Latency),
             static_cast<std::uint64_t>(memory.memLatency),
             static_cast<std::uint64_t>(memory.dirOverhead),
             // MeshConfig.
             static_cast<std::uint64_t>(mesh.portBandwidth),
             static_cast<std::uint64_t>(mesh.queueCapacity),
             // LatencyConfig.
             static_cast<std::uint64_t>(lat.domainBus),
             static_cast<std::uint64_t>(lat.toPseudoPe),
             static_cast<std::uint64_t>(lat.fromPseudoPe),
             static_cast<std::uint64_t>(lat.clusterLink),
             static_cast<std::uint64_t>(lat.netInject),
             static_cast<std::uint64_t>(lat.sbLocal),
             static_cast<std::uint64_t>(lat.cohLocal),
             // Top-level scalars.
             static_cast<std::uint64_t>(netInjectRate),
             static_cast<std::uint64_t>(memForwardRate),
             static_cast<std::uint64_t>(placement),
             seed,
             static_cast<std::uint64_t>(relaxLimits),
             static_cast<std::uint64_t>(strictVerify),
             static_cast<std::uint64_t>(alwaysTick),
             static_cast<std::uint64_t>(referenceCore),
             static_cast<std::uint64_t>(checkLevel),
         }) {
        h = hashCombine(h, v);
    }
    return h;
}

PlacementGeometry
ProcessorConfig::placementGeometry() const
{
    PlacementGeometry geom;
    geom.clusters = clusters;
    geom.domainsPerCluster = domainsPerCluster;
    geom.pesPerDomain = pesPerDomain;
    geom.peCapacity = static_cast<std::uint16_t>(pe.instStoreEntries);
    return geom;
}

void
ProcessorConfig::validate() const
{
    if (clusters == 0 || clusters > 64)
        fatal("config: clusters must be in 1..64 (got %u)", clusters);
    if (domainsPerCluster == 0 || domainsPerCluster > 4)
        fatal("config: domains/cluster must be in 1..4 (20 FO4 limit)");
    if (pesPerDomain < 2 || pesPerDomain > 8)
        fatal("config: PEs/domain must be in 2..8 (20 FO4 limit)");
    if (!relaxLimits) {
        if (pe.instStoreEntries < 8 || pe.instStoreEntries > 256)
            fatal("config: instruction store must be 8..256 entries "
                  "(synthesis limits)");
        if (pe.matchingEntries < 16 || pe.matchingEntries > 256)
            fatal("config: matching table must be 16..256 entries "
                  "(synthesis limits)");
        if (memory.l1Bytes < 8 * 1024 || memory.l1Bytes > 32 * 1024)
            fatal("config: L1 must be 8..32 KB per cluster");
        if (memory.l2Bytes > 32ull * 1024 * 1024)
            fatal("config: L2 must be at most 32 MB");
    }
    if (pe.matchingEntries % pe.matchingWays != 0)
        fatal("config: matching entries not divisible by ways");
    if (pe.matchingBanks == 0 || pe.matchingBanks > 8)
        fatal("config: matching banks must be 1..8");
    if (memory.clusters != clusters)
        fatal("config: memory.clusters (%u) != clusters (%u); call "
              "through Processor which wires them", memory.clusters,
              clusters);
    if (mesh.clusters != clusters)
        fatal("config: mesh.clusters (%u) != clusters (%u)",
              mesh.clusters, clusters);
}

} // namespace ws
