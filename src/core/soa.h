/**
 * @file
 * Struct-of-arrays pools for the hot per-cycle state.
 *
 * The cycle core used to keep its in-flight tokens and overflow matching
 * rows in pointer-heavy containers (per-entry heap nodes inside
 * `std::unordered_map`, 40-byte array-of-struct heap entries). On the
 * paper's large design points those structures dominate live-cycle wall
 * clock through cache misses, not through algorithmic cost. This header
 * flattens them:
 *
 *  - TokenPool: a struct-of-arrays store of Token payloads (tag thread /
 *    tag wave / destination / value in parallel arrays) with a free-list
 *    and stable 32-bit handles. Handles stay valid across pool growth
 *    and across unrelated release/alloc churn; only releasing a handle
 *    invalidates it.
 *  - TimedTokenQueue: TimedQueue<Token> semantics — (ready cycle,
 *    insertion order) pop order, the WS607 pop contract through
 *    tlsQueueCheckHook — but stored as a sorted (cycle, handle) vector
 *    over a TokenPool, consumed through a head index, instead of
 *    sifting 40-byte Token entries through a binary heap.
 *  - OverflowMap: an open-addressed (linear probe, backward-shift
 *    delete) map from the matching table's 64-bit row key to an inline
 *    struct-of-arrays row (instruction, tag, arity, present bits, three
 *    operand slots). Row references are positional and invalidated by
 *    any insert or erase; callers complete one lookup-merge-erase
 *    operation before the next mutation, which the matching table does.
 *  - SmallVec: a small inline vector (spills to the heap past N) for
 *    fan-out token lists, so executing an instruction does not allocate
 *    in the common ≤N-consumer case.
 *
 * Everything here is header-only and layerless on purpose: it depends
 * only on common/ and isa/ types, so both src/pe and src/core can use
 * it without inverting the library layering.
 */

#ifndef WS_CORE_SOA_H_
#define WS_CORE_SOA_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/runtime_hook.h"
#include "common/types.h"
#include "isa/token.h"

namespace ws {

/** Index-based reference into a TokenPool. */
using TokenHandle = std::uint32_t;
inline constexpr TokenHandle kInvalidTokenHandle = 0xffffffffu;

/**
 * Struct-of-arrays token store with a free-list and stable handles.
 *
 * alloc() reuses the most recently released slot (LIFO free-list, so
 * churn stays within a few cache lines) or grows every array by one.
 * A handle is stable until its release(): growth never moves logical
 * slots, only the arrays behind them, and indices survive reallocation.
 */
class TokenPool
{
  public:
    TokenHandle
    alloc(const Token &t)
    {
        TokenHandle h;
        if (!free_.empty()) {
            h = free_.back();
            free_.pop_back();
        } else {
            h = static_cast<TokenHandle>(thread_.size());
            thread_.push_back(0);
            wave_.push_back(0);
            inst_.push_back(kInvalidInst);
            port_.push_back(0);
            value_.push_back(0);
        }
        thread_[h] = t.tag.thread;
        wave_[h] = t.tag.wave;
        inst_[h] = t.dst.inst;
        port_[h] = t.dst.port;
        value_[h] = t.value;
        ++live_;
        return h;
    }

    void
    release(TokenHandle h)
    {
        free_.push_back(h);
        --live_;
    }

    Token
    get(TokenHandle h) const
    {
        Token t;
        t.tag.thread = thread_[h];
        t.tag.wave = wave_[h];
        t.dst.inst = inst_[h];
        t.dst.port = port_[h];
        t.value = value_[h];
        return t;
    }

    Tag
    tagOf(TokenHandle h) const
    {
        return Tag{thread_[h], wave_[h]};
    }

    std::size_t live() const { return live_; }
    std::size_t capacity() const { return thread_.size(); }

  private:
    std::vector<ThreadId> thread_;
    std::vector<WaveNum> wave_;
    std::vector<InstId> inst_;
    std::vector<std::uint8_t> port_;
    std::vector<Value> value_;
    std::vector<TokenHandle> free_;
    std::size_t live_ = 0;
};

/**
 * TimedQueue<Token> with the payload in a shared TokenPool.
 *
 * Pop order — (ready cycle, per-queue insertion seq), ties impossible —
 * and the WS607 pop-contract hook are identical to TimedQueue, so a
 * queue-by-queue swap preserves byte-identical simulation.
 */
class TimedTokenQueue
{
  public:
    explicit TimedTokenQueue(TokenPool *pool) : pool_(pool) {}

    void
    push(const Token &token, Cycle ready)
    {
        // Same sorted-vector-with-head-index layout as TimedQueue (see
        // network/timed_queue.h): pushes are near-monotone in ready, so
        // append is the common case and an out-of-order push inserts
        // after every entry with ready <= the new one — identical order
        // to the old (ready, seq) heap.
        const TokenHandle h = pool_->alloc(token);
        if (entries_.size() == head_ || entries_.back().ready <= ready) {
            entries_.push_back(Entry{ready, h});
            return;
        }
        const auto it = std::upper_bound(
            entries_.begin() + static_cast<std::ptrdiff_t>(head_),
            entries_.end(), ready,
            [](Cycle r, const Entry &e) { return r < e.ready; });
        entries_.insert(it, Entry{ready, h});
    }

    bool
    ready(Cycle now) const
    {
        return head_ != entries_.size() && entries_[head_].ready <= now;
    }

    Cycle
    nextReady() const
    {
        return head_ == entries_.size() ? kCycleNever
                                        : entries_[head_].ready;
    }

    /** Frontmost token (by value — assembled from the pool). */
    Token peek() const { return pool_->get(entries_[head_].handle); }

    /** Frontmost token's tag without assembling the whole token. */
    Tag peekTag() const { return pool_->tagOf(entries_[head_].handle); }

    Token
    pop(Cycle now)
    {
        if (tlsQueueCheckHook != nullptr)
            tlsQueueCheckHook->onQueuePop(entries_[head_].ready, now);
        const TokenHandle h = entries_[head_].handle;
        ++head_;
        const Token token = pool_->get(h);
        pool_->release(h);
        if (head_ == entries_.size()) {
            entries_.clear();
            head_ = 0;
        } else if (head_ >= 32 && head_ * 2 >= entries_.size()) {
            entries_.erase(entries_.begin(),
                           entries_.begin() +
                               static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
        return token;
    }

    std::size_t size() const { return entries_.size() - head_; }
    bool empty() const { return head_ == entries_.size(); }

  private:
    struct Entry
    {
        Cycle ready;
        TokenHandle handle;
    };

    TokenPool *pool_;
    std::vector<Entry> entries_;
    std::size_t head_ = 0;  ///< Index of the frontmost live entry.
};

/**
 * Open-addressed map from 64-bit matching keys to inline SoA rows.
 *
 * Replaces `std::unordered_map<std::uint64_t, Row>` on the matching
 * table's overflow path: one mix64 probe touches a contiguous key
 * array, the row fields live in parallel arrays indexed by the same
 * slot, and erase uses backward-shift deletion so the table never
 * accumulates tombstones. Slot indices are invalidated by insert()
 * and erase().
 *
 * Insert keeps unordered_map::emplace semantics deliberately: a key
 * that is already present is returned as-is and never overwritten.
 */
class OverflowMap
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    std::size_t
    find(std::uint64_t key) const
    {
        if (size_ == 0)
            return npos;
        std::size_t i = probeStart(key);
        while (used_[i]) {
            if (key_[i] == key)
                return i;
            i = (i + 1) & mask();
        }
        return npos;
    }

    /**
     * Slot for @p key, allocating a zeroed row when absent. Like
     * unordered_map::emplace, an existing row is returned untouched;
     * @p inserted reports which happened.
     */
    std::size_t
    insert(std::uint64_t key, bool &inserted)
    {
        if (capacity() == 0 || (size_ + 1) * 4 > capacity() * 3)
            grow();
        std::size_t i = probeStart(key);
        while (used_[i]) {
            if (key_[i] == key) {
                inserted = false;
                return i;
            }
            i = (i + 1) & mask();
        }
        used_[i] = 1;
        key_[i] = key;
        inst_[i] = kInvalidInst;
        tagPacked_[i] = 0;
        arity_[i] = 0;
        present_[i] = 0;
        ops_[i * 3 + 0] = 0;
        ops_[i * 3 + 1] = 0;
        ops_[i * 3 + 2] = 0;
        ++size_;
        inserted = true;
        return i;
    }

    /** Backward-shift deletion: later probe-chain entries slide down. */
    void
    erase(std::size_t slot)
    {
        --size_;
        std::size_t i = slot;
        std::size_t j = slot;
        while (true) {
            used_[i] = 0;
            std::size_t home;
            do {
                j = (j + 1) & mask();
                if (!used_[j])
                    return;
                home = probeStart(key_[j]);
                // Keep j in place while its natural slot lies cyclically
                // in (i, j] — moving it would break its probe chain.
            } while (i <= j ? (home > i && home <= j)
                            : (home > i || home <= j));
            moveSlot(i, j);
            i = j;
        }
    }

    InstId &inst(std::size_t slot) { return inst_[slot]; }
    std::uint64_t &tagPacked(std::size_t slot) { return tagPacked_[slot]; }
    std::uint8_t &arity(std::size_t slot) { return arity_[slot]; }
    std::uint8_t &present(std::size_t slot) { return present_[slot]; }
    Value *ops(std::size_t slot) { return &ops_[slot * 3]; }
    std::uint8_t presentBits(std::size_t slot) const
    {
        return present_[slot];
    }

    /** Visit every row slot (order-independent aggregation only). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < used_.size(); ++i) {
            if (used_[i])
                fn(i);
        }
    }

  private:
    std::size_t capacity() const { return used_.size(); }
    std::size_t mask() const { return used_.size() - 1; }

    std::size_t
    probeStart(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mix64(key)) & mask();
    }

    void
    moveSlot(std::size_t to, std::size_t from)
    {
        used_[to] = 1;
        key_[to] = key_[from];
        inst_[to] = inst_[from];
        tagPacked_[to] = tagPacked_[from];
        arity_[to] = arity_[from];
        present_[to] = present_[from];
        ops_[to * 3 + 0] = ops_[from * 3 + 0];
        ops_[to * 3 + 1] = ops_[from * 3 + 1];
        ops_[to * 3 + 2] = ops_[from * 3 + 2];
    }

    void
    grow()
    {
        const std::size_t old_cap = capacity();
        const std::size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
        std::vector<std::uint8_t> used(new_cap, 0);
        std::vector<std::uint64_t> key(new_cap);
        std::vector<InstId> inst(new_cap);
        std::vector<std::uint64_t> tag(new_cap);
        std::vector<std::uint8_t> arity(new_cap);
        std::vector<std::uint8_t> present(new_cap);
        std::vector<Value> ops(new_cap * 3);
        used.swap(used_);
        key.swap(key_);
        inst.swap(inst_);
        tag.swap(tagPacked_);
        arity.swap(arity_);
        present.swap(present_);
        ops.swap(ops_);
        for (std::size_t i = 0; i < used.size(); ++i) {
            if (!used[i])
                continue;
            std::size_t j = probeStart(key[i]);
            while (used_[j])
                j = (j + 1) & mask();
            used_[j] = 1;
            key_[j] = key[i];
            inst_[j] = inst[i];
            tagPacked_[j] = tag[i];
            arity_[j] = arity[i];
            present_[j] = present[i];
            ops_[j * 3 + 0] = ops[i * 3 + 0];
            ops_[j * 3 + 1] = ops[i * 3 + 1];
            ops_[j * 3 + 2] = ops[i * 3 + 2];
        }
    }

    std::vector<std::uint8_t> used_;
    std::vector<std::uint64_t> key_;
    std::vector<InstId> inst_;
    std::vector<std::uint64_t> tagPacked_;
    std::vector<std::uint8_t> arity_;
    std::vector<std::uint8_t> present_;
    std::vector<Value> ops_;   ///< 3 operand slots per row.
    std::size_t size_ = 0;
};

/**
 * Inline-storage vector: the first N elements live in the object, the
 * rest (rare) spill to the heap. Invariant: size() <= N means all
 * elements are inline; the first push past N moves everything into the
 * spill vector, which then holds all elements.
 */
template <typename T, unsigned N>
class SmallVec
{
  public:
    SmallVec() = default;

    SmallVec(const SmallVec &other) { copyFrom(other); }

    SmallVec(SmallVec &&other) noexcept
        : size_(other.size_), spill_(std::move(other.spill_))
    {
        if (size_ <= N) {
            for (unsigned i = 0; i < size_; ++i)
                inline_[i] = std::move(other.inline_[i]);
        }
        other.size_ = 0;
        other.spill_.clear();
    }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this != &other) {
            size_ = other.size_;
            spill_ = std::move(other.spill_);
            if (size_ <= N) {
                for (unsigned i = 0; i < size_; ++i)
                    inline_[i] = std::move(other.inline_[i]);
            }
            other.size_ = 0;
            other.spill_.clear();
        }
        return *this;
    }

    void
    push_back(const T &v)
    {
        if (size_ < N) {
            inline_[size_++] = v;
            return;
        }
        if (size_ == N && spill_.empty())
            spill_.assign(inline_, inline_ + N);
        spill_.push_back(v);
        ++size_;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }
    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T &operator[](std::size_t i) const { return data()[i]; }
    T &operator[](std::size_t i) { return data()[i]; }

    void
    clear()
    {
        size_ = 0;
        spill_.clear();
    }

  private:
    const T *
    data() const
    {
        return size_ <= N ? inline_ : spill_.data();
    }

    T *
    data()
    {
        return size_ <= N ? inline_ : spill_.data();
    }

    void
    copyFrom(const SmallVec &other)
    {
        size_ = other.size_;
        if (size_ <= N) {
            spill_.clear();
            for (unsigned i = 0; i < size_; ++i)
                inline_[i] = other.inline_[i];
        } else {
            spill_ = other.spill_;
        }
    }

    unsigned size_ = 0;
    T inline_[N] = {};
    std::vector<T> spill_;
};

} // namespace ws

#endif // WS_CORE_SOA_H_
