/**
 * @file
 * Top-level WaveScalar processor configuration.
 *
 * The defaults reproduce the paper's baseline machine (Table 1): one or
 * more clusters of 4 domains x 8 PEs (4 pods), 128-entry matching tables
 * and instruction stores, a 32 KB 4-way L1 with 128 B lines per cluster,
 * a banked L2, 200-cycle main memory, and the hierarchical network
 * latencies (pod 1 / domain 5 / cluster 9 / grid 9 + distance).
 *
 * validate() enforces the 20 FO4 legality limits the RTL synthesis
 * imposes on the design space (§4.1): matching tables and instruction
 * stores beyond 256 entries, more than 8 PEs per domain, or more than 4
 * domains per cluster would stretch the clock cycle.
 */

#ifndef WS_CORE_CONFIG_H_
#define WS_CORE_CONFIG_H_

#include <cstdint>

#include "check/check_level.h"
#include "common/types.h"
#include "memory/coherence.h"
#include "memory/store_buffer.h"
#include "network/mesh.h"
#include "pe/pe.h"
#include "place/placement.h"

namespace ws {

/** Internal hop latencies used to compose the Table-1 network numbers. */
struct LatencyConfig
{
    Cycle domainBus = 2;     ///< PE output → same-domain PE input.
    Cycle toPseudoPe = 2;    ///< PE output → MEM/NET pseudo-PE.
    Cycle fromPseudoPe = 2;  ///< Pseudo-PE → PE input (same domain).
    Cycle clusterLink = 2;   ///< NET pseudo-PE → peer domain (one way).
    Cycle netInject = 2;     ///< Cluster switch ↔ NET pseudo-PE.
    Cycle sbLocal = 2;       ///< MEM pseudo-PE → local store buffer.
    Cycle cohLocal = 2;      ///< L1 ↔ home bank within one cluster.
};

struct ProcessorConfig
{
    std::uint16_t clusters = 1;
    std::uint16_t domainsPerCluster = 4;
    std::uint16_t pesPerDomain = 8;

    PeConfig pe;
    StoreBufferConfig storeBuffer;
    MemTimingConfig memory;
    MeshConfig mesh;
    LatencyConfig lat;

    unsigned netInjectRate = 1;   ///< NET pseudo-PE operands/cycle.
    unsigned memForwardRate = 1;  ///< MEM pseudo-PE requests/cycle.

    PlacementPolicy placement = PlacementPolicy::kDepthFirst;
    std::uint64_t seed = 1;

    /**
     * Methodology mode: skip the 20 FO4 structure-size limits. The
     * Table-4 tuning sweeps use idealized (e.g. effectively infinite)
     * matching tables that could not be synthesized at speed.
     */
    bool relaxLimits = false;

    /**
     * Load-time verification policy. Verifier *errors* always reject a
     * graph; with strictVerify set, capacity warnings (WS4xx etc.) are
     * also fatal instead of being logged through warn().
     */
    bool strictVerify = false;

    /**
     * Reference clocking mode: tick every component every cycle instead
     * of skipping idle ones via the wakeup scheduler (src/core/clock.h).
     * Both modes keep identical scheduler bookkeeping and must produce
     * byte-identical results (the parity suite enforces it); this mode
     * is the oracle, and the debugging fallback if gating is ever
     * suspected. Exposed as --always-tick on every bench harness.
     */
    bool alwaysTick = false;

    /**
     * Reference cycle core: keep the polled per-PE tick loops inside an
     * active domain instead of the event-ring visits of the SoA core
     * (src/core/domain.cc). Both cores compute identical next-event
     * values — so scheduler bookkeeping, activity.* counters, and every
     * simulation result are byte-identical (the parity suite and the
     * wsfuzz core oracle enforce it); this mode exists as that oracle
     * and as the debugging fallback if the event rings are ever
     * suspected. Exposed as --reference-core on every bench harness.
     */
    bool referenceCore = false;

    /**
     * Runtime invariant checking (src/check). kOff constructs no
     * checker; kCheap adds O(1) event hooks and quiescence audits;
     * kFull adds periodic structural audits and (with alwaysTick) the
     * scheduler-soundness check. Never changes simulation results —
     * but it *is* part of the fingerprint, so the sweep driver's
     * SimCache never aliases checked and unchecked runs (their
     * SimResults differ in the check fields). The WS_CHECK environment
     * variable (off/cheap/full) raises kOff at Processor construction;
     * explicit non-off settings always win. Exposed as --check[=level]
     * on every bench harness.
     */
    CheckLevel checkLevel = CheckLevel::kOff;

    /** The paper's Table-1 baseline single-cluster machine. */
    static ProcessorConfig baseline();

    /** Total processing elements in the machine. */
    std::uint32_t
    totalPes() const
    {
        return static_cast<std::uint32_t>(clusters) * domainsPerCluster *
               pesPerDomain;
    }

    /** Total instruction capacity (the WaveScalar capacity, e.g. 4K). */
    std::uint64_t
    instructionCapacity() const
    {
        return static_cast<std::uint64_t>(totalPes()) *
               pe.instStoreEntries;
    }

    /** Placement geometry view of this configuration. */
    PlacementGeometry placementGeometry() const;

    /**
     * Order-dependent hash of every field that can affect a simulation
     * outcome. Two configurations with equal fingerprints run
     * identically (the simulator is deterministic), so the sweep
     * driver's SimCache keys memoized results on this value. Extend it
     * whenever a field is added to this struct or its sub-configs.
     */
    std::uint64_t fingerprint() const;

    /** fatal() on any 20 FO4 legality or structural violation. */
    void validate() const;
};

} // namespace ws

#endif // WS_CORE_CONFIG_H_
