#include "core/processor.h"

#include <optional>
#include <string>
#include <unordered_map>

#include "core/trace.h"

#include "common/log.h"
#include "verify/verifier.h"

namespace ws {

namespace {

ProcessorConfig
wire(ProcessorConfig cfg)
{
    cfg.memory.clusters = cfg.clusters;
    cfg.mesh.clusters = cfg.clusters;
    return cfg;
}

} // namespace

Processor::Processor(const DataflowGraph &graph, const ProcessorConfig &cfg)
    : cfg_(wire(cfg)), graph_(graph),
      place_(place(graph, cfg_.placementGeometry(), cfg_.placement,
                   cfg_.seed)),
      mesh_(cfg_.mesh, &traffic_), home_(cfg_.memory)
{
    cfg_.validate();

    // Load-time verification: errors always reject the program; the
    // capacity lint is fatal in strict mode and logged otherwise.
    const VerifyReport rep = verify(graph_, cfg_);
    if (!rep.ok()) {
        fatal("Processor: graph '%s' failed verification:\n%s",
              graph_.name().c_str(), rep.render().c_str());
    }
    if (rep.warningCount() != 0) {
        if (cfg_.strictVerify) {
            fatal("Processor: graph '%s' rejected by strict "
                  "verification:\n%s", graph_.name().c_str(),
                  rep.render().c_str());
        }
        warn("Processor: graph '%s' verified with findings:\n%s",
             graph_.name().c_str(), rep.render().c_str());
    }

    // Runtime invariant checking (wscheck): instantiated only when the
    // effective level (config, or the WS_CHECK env override) is on, so
    // every hook site below stays a null-pointer branch when off.
    const CheckLevel check_level = effectiveCheckLevel(cfg_.checkLevel);
    if (check_level != CheckLevel::kOff)
        checker_ = std::make_unique<RuntimeChecker>(check_level);

    // Build the tile hierarchy.
    clusters_.reserve(cfg_.clusters);
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        clusters_.push_back(std::make_unique<Cluster>(
            cfg_, &graph_, &place_, &traffic_, &mem_, c));
    }

    // Hand every PE its home instruction list.
    const std::uint32_t pes_per_cluster =
        static_cast<std::uint32_t>(cfg_.domainsPerCluster) *
        cfg_.pesPerDomain;
    std::vector<std::vector<InstId>> homes(cfg_.totalPes());
    for (InstId i = 0; i < graph_.size(); ++i) {
        const PeCoord pe = place_.home(i);
        const std::size_t idx =
            static_cast<std::size_t>(pe.cluster) * pes_per_cluster +
            static_cast<std::size_t>(pe.domain) * cfg_.pesPerDomain +
            pe.pe;
        homes[idx].push_back(i);
    }
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        for (DomainId d = 0; d < cfg_.domainsPerCluster; ++d) {
            std::vector<std::vector<InstId>> per_pe;
            per_pe.reserve(cfg_.pesPerDomain);
            for (PeId p = 0; p < cfg_.pesPerDomain; ++p) {
                const std::size_t idx =
                    static_cast<std::size_t>(c) * pes_per_cluster +
                    static_cast<std::size_t>(d) * cfg_.pesPerDomain + p;
                per_pe.push_back(std::move(homes[idx]));
            }
            clusters_[c]->domain(d).assignHomes(per_pe);
        }
    }

    // k-loop bounding: one shared wave window, read by every PE, plus
    // the shared running sink/useful counters every PE bumps.
    window_.k = cfg_.pe.k == 0 ? 1 : cfg_.pe.k;
    window_.base.assign(graph_.numThreads(), 0);
    for (auto &cluster : clusters_) {
        for (DomainId d = 0; d < cfg_.domainsPerCluster; ++d) {
            Domain &dom = cluster->domain(d);
            for (PeId p = 0; p < dom.numPes(); ++p) {
                dom.pe(p).setWaveWindow(&window_);
                dom.pe(p).setRunCounters(&run_);
                dom.pe(p).setChecker(checker_.get());
            }
        }
        cluster->setChecker(checker_.get());
    }
    threadsByCluster_.resize(cfg_.clusters);
    for (ThreadId t = 0; t < graph_.numThreads(); ++t)
        threadsByCluster_[place_.threadHomeCluster(t)].push_back(t);

    // Initial memory image and program-input tokens.
    for (const auto &[addr, value] : graph_.memInit())
        mem_.write(addr, value);
    for (const Token &token : graph_.initialTokens()) {
        const PeCoord dst = place_.home(token.dst.inst);
        clusters_[dst.cluster]->domain(dst.domain).pushDelivery(token, 0);
    }
    // Program-input tokens enter the conservation ledger here (WS601).
    if (checker_ != nullptr)
        checker_->onTokensCreated(graph_.initialTokens().size());

    // Clocking: register the top-level components with the wakeup
    // scheduler — clusters in id order (component id == ClusterId),
    // then home, then mesh, fixing the deterministic tie-break order —
    // and arm everything for cycle 0 so the first tick sees the whole
    // machine. Home and mesh are ticked directly by Processor::tick,
    // so they register as bare wakeup slots.
    gated_ = !cfg_.alwaysTick;
    for (auto &cluster : clusters_)
        sched_.add(cluster.get());
    homeId_ = sched_.add(nullptr);
    meshId_ = sched_.add(nullptr);
    activeCycles_.assign(sched_.size(), 0);
    tickedClusters_.reserve(cfg_.clusters);
    netPending_.assign(cfg_.clusters, 0);
    cohScan_.assign(cfg_.clusters, 1);
    cohScanCount_ = cfg_.clusters;
    for (ComponentId id = 0; id < sched_.size(); ++id)
        sched_.wake(id, 0);

    // Seed the wave window from the freshly built store buffers: the
    // per-tick refresh only revisits clusters that ticked last cycle
    // (a retire can only happen inside a cluster's own tick), so the
    // construction-time dirty flags are consumed here instead.
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        StoreBuffer &sb = clusters_[c]->storeBuffer();
        for (ThreadId t : threadsByCluster_[c])
            window_.base[t] = sb.nextWave(t);
        sb.clearWaveDirty();
    }
}

bool
Processor::towardHome(CohType type)
{
    switch (type) {
      case CohType::kGetS:
      case CohType::kGetM:
      case CohType::kPutM:
      case CohType::kInvAck:
      case CohType::kDownAck:
        return true;
      default:
        return false;
    }
}

void
Processor::drainMesh(Cycle now)
{
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        if (!mesh_.hasDelivered(c))
            continue;
        for (NetMessage &msg : mesh_.delivered(c)) {
            if (auto *op = std::get_if<OperandMsg>(&msg.payload)) {
                clusters_[c]->receiveOperand(*op, now);
                sched_.wake(c, now + cfg_.lat.netInject);
            } else if (auto *req = std::get_if<MemRequest>(&msg.payload)) {
                clusters_[c]->receiveMemRequest(*req, now);
                sched_.wake(c, now + cfg_.lat.sbLocal);
            } else {
                const CohMsg &coh = std::get<CohMsg>(msg.payload);
                if (towardHome(coh.type)) {
                    // The end-of-tick home re-arm covers this arrival.
                    home_.receive(coh, now);
                    homeTouched_ = true;
                } else {
                    clusters_[c]->l1().receive(coh, now);
                    const Cycle at = clusters_[c]->l1().nextEventCycle();
                    clusters_[c]->noteMemEvent(at);
                    sched_.wake(c, at);
                    // receive() emits acks synchronously; make sure the
                    // coherence routing below still visits this L1 even
                    // if the cluster itself is skipped this cycle.
                    if (cohScan_[c] == 0) {
                        cohScan_[c] = 1;
                        ++cohScanCount_;
                    }
                }
            }
        }
        mesh_.clearDelivered(c);
    }
}

void
Processor::routeCoherence(Cycle now)
{
    // Home → L1 messages.
    for (auto &[dst, msg] : home_.outbox()) {
        if (dst == cfg_.clusters) {
            panic("Processor: home message to cluster %u", dst);
        }
        const ClusterId bank = home_.homeOf(msg.line);
        if (dst == bank || cfg_.clusters == 1) {
            // The L1 and the home bank share a router; stay local.
            L1Controller &l1 = clusters_[dst]->l1();
            l1.receive(msg, now + cfg_.lat.cohLocal);
            clusters_[dst]->noteMemEvent(l1.nextEventCycle());
            sched_.wake(dst, l1.nextEventCycle());
            // receive() may emit acks synchronously.
            if (cohScan_[dst] == 0) {
                cohScan_[dst] = 1;
                ++cohScanCount_;
            }
        } else {
            NetMessage net;
            net.src = bank;
            net.dst = dst;
            net.vc = 1;
            net.memTraffic = true;
            net.payload = msg;
            homeOutRetry_.push_back(std::move(net));
        }
    }
    home_.outbox().clear();

    // L1 → home messages. An L1 outbox fills during the cluster's own
    // tick or synchronously inside receive() (InvAck/DownAck, and
    // writeback/retry traffic from a fill) — every such site sets
    // cohScan_, so unflagged clusters provably have empty outboxes and
    // the scan stays O(flagged) without chasing each cluster's L1.
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        if (cohScan_[c] == 0)
            continue;
        cohScan_[c] = 0;
        --cohScanCount_;
        if (clusters_[c]->l1().outbox().empty())
            continue;
        for (CohMsg &msg : clusters_[c]->l1().outbox()) {
            const ClusterId bank = home_.homeOf(msg.line);
            if (bank == c || cfg_.clusters == 1) {
                home_.receive(msg, now + cfg_.lat.cohLocal);
                homeTouched_ = true;
            } else {
                NetMessage net;
                net.src = c;
                net.dst = bank;
                net.vc = towardHome(msg.type) &&
                                 (msg.type == CohType::kInvAck ||
                                  msg.type == CohType::kDownAck)
                             ? 1
                             : 0;
                net.memTraffic = true;
                net.payload = msg;
                clusters_[c]->outboundNet().push_back(std::move(net));
                // The cluster may not have ticked this cycle; flag its
                // outbound queue so injectOutbound() still visits it.
                if (netPending_[c] == 0) {
                    netPending_[c] = 1;
                    ++netPendingCount_;
                }
            }
        }
        clusters_[c]->l1().outbox().clear();
    }
}

void
Processor::injectWithRetry(std::deque<NetMessage> &q, Cycle now)
{
    while (!q.empty()) {
        if (!mesh_.inject(q.front(), now))
            break;
        q.pop_front();
        meshTouched_ = true;
    }
}

void
Processor::injectOutbound(Cycle now)
{
    if (!homeOutRetry_.empty())
        injectWithRetry(homeOutRetry_, now);
    // Outbound queues fill during a cluster's tick (the cluster loop
    // sets netPending_ when the queue came out non-empty) or when
    // coherence routing forwards L1 traffic (which sets it directly);
    // a queue the mesh refused keeps netPending_ set and retries every
    // cycle until drained. Order stays ascending id.
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        if (netPending_[c] == 0)
            continue;
        auto &q = clusters_[c]->outboundNet();
        injectWithRetry(q, now);
        if (q.empty()) {
            netPending_[c] = 0;
            --netPendingCount_;
        }
    }
}

void
Processor::tick()
{
    const Cycle now = cycle_;
    // Install the checker as this thread's TimedQueue pop hook (WS607)
    // for the duration of the tick. TimedQueue sits below src/check in
    // the layering, so it reports through the thread-local indirection;
    // scoping the install per tick keeps concurrent sweep simulations
    // (one per thread) from observing each other's checkers. With no
    // checker the install would write nullptr over nullptr — skip the
    // two TLS accesses, which are pure per-tick overhead then.
    std::optional<ScopedQueueCheckHook> queue_hook;
    if (checker_ != nullptr)
        queue_hook.emplace(checker_.get());
    // Refresh the k-loop-bounding window from the store buffers — but
    // only for clusters whose buffer actually retired a wave since the
    // last refresh (the dirty flag). A retire happens only inside a
    // cluster's own tick, so it suffices to check the clusters that
    // ticked last cycle (tickedClusters_ is cleared just before the
    // cluster loop below, so it still holds last cycle's set here;
    // construction-time dirt is consumed by the ctor's seed pass).
    for (const ClusterId c : tickedClusters_) {
        // The cluster copies the buffer's wave-dirty flag into its own
        // header at the end of its memory block, so the common clean
        // case never touches the cold StoreBuffer object.
        if (!clusters_[c]->sbWaveHint())
            continue;
        StoreBuffer &sb = clusters_[c]->storeBuffer();
        for (ThreadId t : threadsByCluster_[c])
            window_.base[t] = sb.nextWave(t);
        sb.clearWaveDirty();
        clusters_[c]->clearSbWaveHint();
    }
    // Activity-gated clocking. Due-ness at `now` is fixed before any
    // phase runs: every wake registered while ticking targets a later
    // cycle (or only lowers an already-due arming), so checking due()
    // phase by phase is race-free. The reference mode (--always-tick)
    // performs identical scheduler bookkeeping — same wakes, same
    // consumes, same activity counts — and merely refuses to skip, so
    // the two modes stay byte-identical (ticking a non-due component
    // is a no-op by construction; the parity suite enforces it).
    homeTouched_ = false;
    meshTouched_ = false;
    const bool mesh_due = sched_.due(meshId_, now);
    if (mesh_due) {
        ++activeCycles_[meshId_];
        sched_.consume(meshId_);
    }
    if (!gated_ || mesh_due) {
        mesh_.tick(now);
        drainMesh(now);
        meshTouched_ = true;
    }

    // WS606 (scheduler soundness): in the reference mode at level full,
    // every component ticks every cycle, so a non-due tick can be
    // directly audited — its progress signature must not move. (Under
    // gated clocking non-due components are skipped, so the same bug
    // would surface as a parity divergence instead; the mesh has no
    // cheap signature and is covered by the parity suite alone.)
    const bool audit_unarmed =
        checker_ != nullptr && checker_->full() && !gated_;

    const bool home_due = sched_.due(homeId_, now);
    if (home_due) {
        ++activeCycles_[homeId_];
        sched_.consume(homeId_);
    }
    if (!gated_ || home_due) {
        if (audit_unarmed && !home_due) {
            const std::uint64_t before = home_.workSignature();
            home_.tick(now);
            if (home_.workSignature() != before)
                checker_->onUnarmedWork("home", now);
        } else {
            home_.tick(now);
        }
        homeTouched_ = true;
    }

    tickedClusters_.clear();
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        const bool due = sched_.due(c, now);
        if (due) {
            ++activeCycles_[c];
            sched_.consume(c);
        }
        if (!gated_ || due) {
            if (audit_unarmed && !due) {
                const std::uint64_t before = clusters_[c]->workSignature();
                clusters_[c]->tick(now);
                if (clusters_[c]->workSignature() != before) {
                    checker_->onUnarmedWork(
                        "cluster " + std::to_string(c), now);
                }
            } else {
                clusters_[c]->tick(now);
            }
            tickedClusters_.push_back(c);
            // Flag follow-up routing work only when the tick actually
            // produced any — the cluster checks its L1 outbox and
            // outbound queue while they are hot, so the every-cycle
            // routing/injection passes can skip quiet clusters without
            // touching them at all.
            if (clusters_[c]->cohPending() && cohScan_[c] == 0) {
                cohScan_[c] = 1;
                ++cohScanCount_;
            }
            if (!clusters_[c]->outboundNet().empty() &&
                netPending_[c] == 0) {
                netPending_[c] = 1;
                ++netPendingCount_;
            }
            // Re-arm from post-tick state. A cluster that did not tick
            // keeps its old (still-correct) arming — re-computing it
            // was the old per-cycle O(clusters) loop — and arrivals
            // while skipped wake the scheduler directly (drainMesh,
            // routeCoherence), never through this cache.
            sched_.wake(c, clusters_[c]->nextEventCycle());
        }
    }

    // Routing and injection only visit flagged clusters, and are
    // skipped outright when nothing is flagged: work created this tick
    // reaches the mesh (or a retry queue) the same cycle, preserving
    // timing. The home outbox only fills while the home ticks or
    // receives — both set homeTouched_ — so an untouched home with no
    // flagged L1s makes routeCoherence a provable no-op.
    if (homeTouched_ || cohScanCount_ != 0)
        routeCoherence(now);
    if (netPendingCount_ != 0 || !homeOutRetry_.empty())
        injectOutbound(now);

    // Re-arm only components whose state changed this tick: an
    // untouched component's next event is unchanged and it is already
    // armed at (or before) it, so the wake would be a no-op. An
    // untouched mesh in particular is provably idle — a non-idle mesh
    // is armed one cycle out, hence due, hence ticked (touched).
    if (homeTouched_)
        sched_.wake(homeId_, home_.nextEventCycle());
    if (meshTouched_)
        sched_.wake(meshId_, mesh_.nextEventCycle(now));

    // Periodic structural audits at level full: cheap enough at a
    // 256-cycle stride to run on every simulation, frequent enough to
    // localize a corruption to within one stride of its cause.
    if (checker_ != nullptr && checker_->full() && (now & 0xff) == 0)
        auditStructures(now);
    ++cycle_;
}

bool
Processor::run(Cycle max_cycles)
{
    const Counter expected = graph_.expectedSinkTokens();
    bool sinks_done = false;
    while (cycle_ < max_cycles) {
        tick();
        if (tracer_ != nullptr && cycle_ % tracer_->interval() == 0)
            tracer_->sample(*this);
        if (!sinks_done && expected != 0 && sinkCount() >= expected)
            sinks_done = true;
        if (sinks_done && quiescent()) {
            // All results delivered *and* every in-flight store, token,
            // and coherence transaction has drained.
            if (tracer_ != nullptr)
                tracer_->finish(*this);
            auditQuiescence(/*completed=*/true);
            return true;
        }
        // Probe on the final cycle too: with max_cycles < 1024 the
        // 1024-aligned probe never fires and short-budget runs would
        // misreport a quiesced (completed or deadlocked) program.
        if (!sinks_done &&
            ((cycle_ & 0x3ff) == 0 || cycle_ == max_cycles) &&
            quiescent()) {
            // Nothing in flight anywhere: the program can make no more
            // progress. Either it completed (no sink declaration) or it
            // deadlocked; the caller distinguishes via sinkCount().
            if (tracer_ != nullptr)
                tracer_->finish(*this);
            const bool completed =
                expected == 0 || sinkCount() >= expected;
            // An incomplete quiescence with resident tokens is the
            // dead-token signature (WS602): the machine terminated
            // instead of hanging, and the checker names the reason.
            auditQuiescence(completed);
            return completed;
        }

        // Fast-forward: with gated clocking the scheduler knows the
        // next cycle anything can happen. When it is more than one
        // cycle away, every tick in between is provably dead — skip
        // straight to it, stopping early for cycle-count-driven side
        // effects (quiescence probes and tracer samples) so observable
        // behaviour stays identical to the reference mode. An armed
        // component is never idle, so no skipped probe could have
        // fired; tracer rows sample frozen state at exact boundaries.
        if (gated_ && cycle_ < max_cycles) {
            const Cycle nw = sched_.minArmed();
            Cycle target;
            if (nw == kCycleNever) {
                // Quiescent but unfinished: only the next probe (or
                // the budget) can end the run.
                target = std::min(((cycle_ >> 10) + 1) << 10,
                                  max_cycles) - 1;
            } else {
                target = std::min(nw, max_cycles - 1);
            }
            if (tracer_ != nullptr) {
                const Cycle iv = tracer_->interval();
                target = std::min(target, (cycle_ / iv + 1) * iv - 1);
            }
            if (target > cycle_)
                cycle_ = target;
        }
    }
    if (tracer_ != nullptr)
        tracer_->finish(*this);
    // Budget exhausted mid-flight: conservation cannot be asserted (the
    // in-flight queues hold uncounted tokens), but the structural
    // invariants hold at any cycle.
    if (checker_ != nullptr && checker_->full())
        auditStructures(cycle_);
    return expected != 0 && sinkCount() >= expected;
}

double
Processor::aipc() const
{
    return cycle_ == 0 ? 0.0
                       : static_cast<double>(usefulExecuted()) /
                             static_cast<double>(cycle_);
}

bool
Processor::quiescent() const
{
    // O(1) fast path: an empty wake set proves quiescence. Every
    // in-flight token, request, or coherence transaction lives in a
    // queue that keeps its component armed, in homeOutRetry_, or in an
    // outbound deque — and a non-empty outbound deque implies a full
    // (hence armed) mesh. Spurious armings (a stale direct wake whose
    // work already drained) only delay taking this path, never falsify
    // it, so the full walk remains as the fallback.
    if (!sched_.anyArmed() && homeOutRetry_.empty()) {
        // WS608: the fast path's claim must agree with the structural
        // walk. Cross-checked only when a checker is attached (the walk
        // is what the fast path exists to avoid); the claim is still
        // returned either way so checking never changes behaviour.
        if (checker_ != nullptr && checker_->cheap()) {
            bool walk_idle = mesh_.idle() && home_.idle();
            for (const auto &cluster : clusters_) {
                if (!walk_idle)
                    break;
                walk_idle = cluster->idle();
            }
            if (!walk_idle)
                checker_->onQuiescenceMismatch(/*fast_path=*/true, cycle_);
        }
        return true;
    }
    for (const auto &cluster : clusters_) {
        if (!cluster->idle())
            return false;
    }
    return mesh_.idle() && home_.idle() && homeOutRetry_.empty();
}

Counter
Processor::residentTokens() const
{
    // At quiescence every queue is empty, so the only place an operand
    // token can rest is a matching-table row (cache or overflow).
    Counter resident = 0;
    for (const auto &cluster : clusters_) {
        for (DomainId d = 0; d < cfg_.domainsPerCluster; ++d) {
            const Domain &dom = cluster->domain(d);
            for (PeId p = 0; p < dom.numPes(); ++p)
                resident += dom.pe(p).matching().residentOperands();
        }
    }
    return resident;
}

void
Processor::auditStructures(Cycle now)
{
    if (checker_ == nullptr)
        return;

    // WS603: every matching table's incremental accounting.
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        for (DomainId d = 0; d < cfg_.domainsPerCluster; ++d) {
            const Domain &dom = clusters_[c]->domain(d);
            for (PeId p = 0; p < dom.numPes(); ++p) {
                const MatchingTable &mt = dom.pe(p).matching();
                checker_->auditMatching(
                    "pe (" + std::to_string(c) + "," + std::to_string(d) +
                        "," + std::to_string(p) + ")",
                    mt.validRows(), mt.recountValidRows(), mt.entries(),
                    now);
            }
        }
    }

    // WS605: cross-L1 MESI pair legality. Lines with an in-flight
    // directory transaction are skipped — transient overlap is the
    // protocol working, not a violation. Silent clean evictions make
    // directory-vs-L1 agreement uncheckable; the pair invariant across
    // L1s is what must always hold for stable states.
    std::vector<std::pair<Addr, std::uint8_t>> lines;
    std::unordered_map<Addr, std::pair<unsigned, unsigned>> holders;
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        lines.clear();
        clusters_[c]->l1().collectLines(lines);
        for (const auto &[line, state] : lines) {
            auto &[em, s] = holders[line];
            if (state == kMesiExclusive || state == kMesiModified)
                ++em;
            else if (state == kMesiShared)
                ++s;
        }
    }
    for (const auto &[line, counts] : holders) {
        const auto &[em, s] = counts;
        if (em == 0 || (em == 1 && s == 0))
            continue;
        if (home_.lineBusy(line))
            continue;
        checker_->onIllegalMesiPair(line, em, s, now);
    }
}

void
Processor::auditQuiescence(bool completed)
{
    if (checker_ == nullptr)
        return;
    checker_->auditConservation(residentTokens(), completed, cycle_);
    if (checker_->full())
        auditStructures(cycle_);
}

void
Processor::auditNow()
{
    auditStructures(cycle_);
}

StatReport
Processor::report() const
{
    StatReport r;
    r.add("sim.cycles", cycle_);
    r.add("sim.useful_executed", usefulExecuted());
    r.add("sim.aipc", aipc());
    r.add("sim.sink_tokens", sinkCount());

    Counter executed = 0;
    Counter accepted = 0;
    Counter rejected = 0;
    Counter bypass = 0;
    Counter bank_conflicts = 0;
    Counter wave_throttled = 0;
    Counter overflow_reinserts = 0;
    Counter inst_miss = 0;
    Counter fpu_stalls = 0;
    Counter output_stalls = 0;
    Counter match_inserts = 0;
    Counter match_fires = 0;
    Counter match_misses = 0;
    Counter store_hits = 0;
    Counter store_misses = 0;
    for (const auto &cluster : clusters_) {
        for (DomainId d = 0; d < cfg_.domainsPerCluster; ++d) {
            const Domain &dom = cluster->domain(d);
            for (PeId p = 0; p < dom.numPes(); ++p) {
                const ProcessingElement &pe = dom.pe(p);
                executed += pe.stats().executed;
                accepted += pe.stats().accepted;
                rejected += pe.stats().rejected;
                bypass += pe.stats().bypassDeliveries;
                bank_conflicts += pe.stats().bankConflicts;
                wave_throttled += pe.stats().waveThrottled;
                overflow_reinserts += pe.stats().overflowReinserts;
                inst_miss += pe.stats().instMissWaits;
                fpu_stalls += pe.stats().fpuStalls;
                output_stalls += pe.stats().outputStalls;
                match_inserts += pe.matching().stats().inserts;
                match_fires += pe.matching().stats().fires;
                match_misses += pe.matching().stats().misses;
                store_hits += pe.instStore().stats().hits;
                store_misses += pe.instStore().stats().misses;
            }
        }
    }
    r.add("pe.executed", executed);
    r.add("pe.accepted", accepted);
    r.add("pe.rejected", rejected);
    r.add("pe.bypass_deliveries", bypass);
    r.add("pe.bank_conflicts", bank_conflicts);
    r.add("pe.wave_throttled", wave_throttled);
    r.add("pe.overflow_reinserts", overflow_reinserts);
    r.add("pe.inst_miss_waits", inst_miss);
    r.add("pe.fpu_stalls", fpu_stalls);
    r.add("pe.output_stalls", output_stalls);
    r.add("match.inserts", match_inserts);
    r.add("match.fires", match_fires);
    r.add("match.misses", match_misses);
    r.add("istore.hits", store_hits);
    r.add("istore.misses", store_misses);

    Counter sb_requests = 0;
    Counter sb_waves = 0;
    Counter sb_psq_allocs = 0;
    Counter sb_psq_appends = 0;
    Counter sb_psq_full = 0;
    Counter sb_no_psq = 0;
    Counter l1_hits = 0;
    Counter l1_misses = 0;
    Counter l1_writebacks = 0;
    for (const auto &cluster : clusters_) {
        const StoreBufferStats &sb = cluster->storeBuffer().stats();
        sb_requests += sb.requests;
        sb_waves += sb.waveCompletions;
        sb_psq_allocs += sb.psqAllocations;
        sb_psq_appends += sb.psqAppends;
        sb_psq_full += sb.psqFullStalls;
        sb_no_psq += sb.noPsqStalls;
        const L1Stats &l1 = cluster->l1().stats();
        l1_hits += l1.hits;
        l1_misses += l1.misses;
        l1_writebacks += l1.writebacks;
    }
    r.add("sb.requests", sb_requests);
    r.add("sb.wave_completions", sb_waves);
    r.add("sb.psq_allocations", sb_psq_allocs);
    r.add("sb.psq_appends", sb_psq_appends);
    r.add("sb.psq_full_stalls", sb_psq_full);
    r.add("sb.no_psq_stalls", sb_no_psq);
    {
        Counter preempt = 0;
        for (const auto &cluster : clusters_)
            preempt += cluster->storeBuffer().stats().slotPreemptions;
        r.add("sb.slot_preemptions", preempt);
    }
    r.add("l1.hits", l1_hits);
    r.add("l1.misses", l1_misses);
    r.add("l1.writebacks", l1_writebacks);
    // Per-component activity from the wakeup scheduler: cycles each
    // component was due (and hence ticked under gated clocking) versus
    // skipped. Identical in both clocking modes — the due set is a
    // function of the shared scheduler bookkeeping, not of gating.
    {
        Counter active_total = 0;
        for (ClusterId c = 0; c < cfg_.clusters; ++c) {
            const Counter active = activeCycles_[c];
            r.add("activity.cluster" + std::to_string(c) +
                      ".active_cycles", active);
            r.add("activity.cluster" + std::to_string(c) +
                      ".skipped_cycles", cycle_ - active);
            active_total += active;
        }
        r.add("activity.home.active_cycles", activeCycles_[homeId_]);
        r.add("activity.home.skipped_cycles",
              cycle_ - activeCycles_[homeId_]);
        r.add("activity.mesh.active_cycles", activeCycles_[meshId_]);
        r.add("activity.mesh.skipped_cycles",
              cycle_ - activeCycles_[meshId_]);
        active_total += activeCycles_[homeId_] + activeCycles_[meshId_];
        const Counter slots =
            cycle_ * static_cast<Counter>(sched_.size());
        r.add("activity.active_cycles", active_total);
        r.add("activity.skipped_cycles", slots - active_total);
        r.add("activity.skip_rate",
              slots == 0 ? 0.0
                         : 1.0 - static_cast<double>(active_total) /
                                     static_cast<double>(slots));
    }

    r.add("home.getS", home_.stats().getS);
    r.add("home.getM", home_.stats().getM);
    r.add("home.putM", home_.stats().putM);
    r.add("home.l2_hits", home_.stats().l2Hits);
    r.add("home.l2_misses", home_.stats().l2Misses);
    r.add("home.invs_sent", home_.stats().invsSent);

    // Fold PE-level (self + pod) deliveries into the traffic picture,
    // then export it.
    TrafficStats combined = traffic_;
    combined.recordBulk(TrafficLevel::kIntraPod, TrafficKind::kOperand,
                        bypass);
    combined.report(r);
    return r;
}

} // namespace ws
