/**
 * @file
 * The WaveScalar processor: clusters on a grid network plus the shared
 * memory home system, executing one dataflow program.
 */

#ifndef WS_CORE_PROCESSOR_H_
#define WS_CORE_PROCESSOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "check/checker.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/clock.h"
#include "core/cluster.h"
#include "core/config.h"
#include "isa/graph.h"
#include "memory/coherence.h"
#include "memory/main_memory.h"
#include "network/mesh.h"
#include "network/traffic.h"
#include "place/placement.h"

namespace ws {

class IntervalTracer;

class Processor
{
  public:
    /**
     * Build the machine for @p graph: validates the configuration,
     * places the program, constructs every tile, loads the initial
     * memory image, and queues the initial tokens.
     */
    Processor(const DataflowGraph &graph, const ProcessorConfig &cfg);

    /** Advance the whole machine by one cycle. */
    void tick();

    /** Attach an interval tracer sampled during run() (may be null). */
    void attachTracer(IntervalTracer *tracer) { tracer_ = tracer; }

    /** Run until completion or @p max_cycles. Returns completion. */
    bool run(Cycle max_cycles);

    Cycle cycle() const { return cycle_; }

    /**
     * Sink tokens received so far (completion progress). O(1): PEs
     * maintain the running total at token delivery, because run()
     * polls this every cycle (it used to walk the whole PE hierarchy).
     */
    Counter sinkCount() const { return run_.sinkTokens; }

    /** Useful (Alpha-equivalent) instructions executed so far. O(1). */
    Counter usefulExecuted() const { return run_.usefulExecuted; }

    /** AIPC over the cycles simulated so far. */
    double aipc() const;

    /**
     * True when no token, request, or message remains anywhere.
     * O(1) fast path: an empty wake set proves quiescence without
     * walking the machine; otherwise falls back to the full walk
     * (a future-armed component may still turn out to be idle).
     */
    bool quiescent() const;

    /** The wakeup scheduler (observability / tests). Component ids are
     *  clusters in id order, then home, then mesh. */
    const WakeupScheduler &scheduler() const { return sched_; }

    /** Full statistics report (execution, memory, network, traffic). */
    StatReport report() const;

    /**
     * The runtime invariant checker (wscheck), or null when the
     * effective check level is off. Violations accumulate in
     * checker()->report(); they never alter simulation behaviour.
     */
    const RuntimeChecker *checker() const { return checker_.get(); }

    /**
     * Run the structural audits (WS603 matching accounting, WS605 MESI
     * pair legality) immediately. No-op when checking is off. Exposed
     * so tests and wsa-lint can audit at chosen points instead of
     * waiting for the periodic full-level sweep.
     */
    void auditNow();

    const Placement &placement() const { return place_; }
    const TrafficStats &traffic() const { return traffic_; }
    Cluster &cluster(ClusterId c) { return *clusters_.at(c); }
    const Cluster &cluster(ClusterId c) const { return *clusters_.at(c); }
    const MeshNetwork &mesh() const { return mesh_; }
    MainMemory &memory() { return mem_; }
    const ProcessorConfig &config() const { return cfg_; }

  private:
    void routeCoherence(Cycle now);
    void drainMesh(Cycle now);
    void injectOutbound(Cycle now);

    /** WS603 + WS605 structural audits (full level, periodic). */
    void auditStructures(Cycle now);
    /** WS601/WS602 conservation + structural audits at a quiescence
     *  exit of run(). @p completed: the program delivered its sinks. */
    void auditQuiescence(bool completed);
    /** Operand tokens resident in matching tables machine-wide. */
    Counter residentTokens() const;

    /** Inject queued messages into the mesh until it refuses; whatever
     *  stays queued retries next cycle (shared by the home retry queue
     *  and every cluster's outbound queue). */
    void injectWithRetry(std::deque<NetMessage> &q, Cycle now);

    /** True when CohType travels L1 → home. */
    static bool towardHome(CohType type);

    ProcessorConfig cfg_;
    const DataflowGraph &graph_;
    Placement place_;
    TrafficStats traffic_;
    MainMemory mem_;
    MeshNetwork mesh_;
    HomeSystem home_;
    std::vector<std::unique_ptr<Cluster>> clusters_;
    std::deque<NetMessage> homeOutRetry_;
    WaveWindow window_;
    /** Threads whose store buffer lives in each cluster, so the wave-
     *  window refresh touches only the dirty cluster's threads. */
    std::vector<std::vector<ThreadId>> threadsByCluster_;
    RunCounters run_;
    IntervalTracer *tracer_ = nullptr;
    Cycle cycle_ = 0;
    /** wscheck; null when the effective check level is off. */
    std::unique_ptr<RuntimeChecker> checker_;

    /** Wakeup scheduler over the top-level components: clusters (ids
     *  0..N-1, matching ClusterId), then home (homeId_), then mesh
     *  (meshId_). Bookkeeping is identical in both clocking modes; only
     *  whether a non-due component still gets ticked differs. Heapless:
     *  with at most clusters+2 slots, run()'s once-per-cycle
     *  minArmed() scan is cheaper than per-wake heap churn. */
    WakeupScheduler sched_{/*use_heap=*/false};
    ComponentId homeId_ = 0;
    ComponentId meshId_ = 0;
    bool gated_ = true;  ///< !cfg_.alwaysTick, cached.
    /** Cycles each component was due (ticked in gated mode). Indexed by
     *  component id; identical across clocking modes by construction. */
    std::vector<Counter> activeCycles_;
    /** Scratch: clusters ticked this cycle (ascending id order). The
     *  wave-window refresh reads it one cycle later, before it is
     *  cleared for the current one. */
    std::vector<ClusterId> tickedClusters_;
    /** Per-cluster flag: outboundNet() holds messages (set after a tick
     *  that produced some, by coherence routing, and kept while the
     *  mesh refuses injection). injectOutbound() visits only flagged
     *  clusters. netPendingCount_/cohScanCount_ count the set flags so
     *  the all-clear case skips the per-cluster pass entirely. */
    std::vector<std::uint8_t> netPending_;
    std::size_t netPendingCount_ = 0;
    /** Per-cluster flag: the L1 outbox may be non-empty (set when the
     *  cluster ticks or when l1().receive() runs outside its tick —
     *  receive emits acks synchronously). routeCoherence() visits only
     *  flagged clusters and clears the flag. */
    std::vector<std::uint8_t> cohScan_;
    std::size_t cohScanCount_ = 0;
    /** Set whenever home/mesh state changes during the current tick
     *  (their own tick, a receive, a successful injection). The
     *  end-of-tick re-arm only runs for a touched component — an
     *  untouched one has an unchanged next event, already armed, so
     *  skipping the wake (and its next-event computation) is a no-op. */
    bool homeTouched_ = false;
    bool meshTouched_ = false;
};

} // namespace ws

#endif // WS_CORE_PROCESSOR_H_
