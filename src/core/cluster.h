/**
 * @file
 * A cluster: four domains, the intra-cluster interconnect, a network
 * switch interface, a wave-ordered store buffer, and an L1 data cache
 * (paper §3.1, Figure 2).
 */

#ifndef WS_CORE_CLUSTER_H_
#define WS_CORE_CLUSTER_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/clock.h"
#include "core/config.h"
#include "core/domain.h"
#include "core/soa.h"
#include "memory/coherence.h"
#include "memory/main_memory.h"
#include "memory/store_buffer.h"
#include "network/message.h"
#include "network/timed_queue.h"
#include "network/traffic.h"

namespace ws {

class Cluster : public Clocked
{
  public:
    Cluster(const ProcessorConfig &cfg, const DataflowGraph *graph,
            const Placement *placement, TrafficStats *traffic,
            MainMemory *mem, ClusterId id);

    ClusterId id() const { return id_; }

    /** Advance the whole cluster by one cycle. */
    void tick(Cycle now);

    void tickComponent(Cycle now) override { tick(now); }

    /**
     * Cached earliest cycle at which anything in this cluster has work,
     * refreshed at the end of every tick. The processor re-arms the
     * cluster's wakeup from this after each tick; arrivals between
     * ticks (mesh deliveries, coherence routing) wake the scheduler
     * directly, so staleness while skipped is harmless. Excludes
     * outboundNet_: a non-empty outbound queue implies a full (hence
     * armed) mesh, which keeps the retry loop running.
     */
    Cycle nextEventCycle() const override { return nextEvent_; }

    /** Operand arriving from the grid network. */
    void receiveOperand(const OperandMsg &msg, Cycle now);

    /** Memory request arriving from the grid network. */
    void receiveMemRequest(const MemRequest &req, Cycle now);

    /**
     * Lower the cached memory-side next-event cycle. The processor
     * calls this when it delivers coherence traffic straight into this
     * cluster's L1 (l1().receive()) — the one path that changes the
     * L1/SB event horizon without passing through tick() or a
     * cluster-local push site.
     */
    void noteMemEvent(Cycle at) { memNext_ = std::min(memNext_, at); }

    /** Messages this cluster wants to put on the grid network. */
    std::deque<NetMessage> &outboundNet() { return outboundNet_; }

    /**
     * True when the last tick left coherence messages in the L1 outbox.
     * Computed at the end of tick() while the L1 is hot in cache, so
     * the processor's routing pass learns whether a visit is needed
     * without chasing into the L1 itself. Traffic that lands in the
     * outbox outside tick() (l1().receive()) is flagged directly by the
     * caller, so a false here never hides work.
     */
    bool cohPending() const { return cohPending_; }

    /** See sbWaveHint_. */
    bool sbWaveHint() const { return sbWaveHint_; }
    void clearSbWaveHint() { sbWaveHint_ = false; }

    Domain &domain(DomainId d) { return *domains_.at(d); }
    const Domain &domain(DomainId d) const { return *domains_.at(d); }
    std::size_t numDomains() const { return domains_.size(); }
    StoreBuffer &storeBuffer() { return *sb_; }
    const StoreBuffer &storeBuffer() const { return *sb_; }
    L1Controller &l1() { return *l1_; }
    const L1Controller &l1() const { return *l1_; }

    /**
     * Attach the runtime invariant checker (wscheck). Forwards to the
     * store buffer (WS604) and is kept locally so load-reply fanout —
     * token creation that happens here, not in a PE — is counted for
     * WS601 conservation.
     */
    void setChecker(RuntimeChecker *checker);

    /** Progress-indicator hash over the whole cluster (wscheck WS606). */
    std::uint64_t workSignature() const;

    bool idle() const;

  private:
    const ProcessorConfig &cfg_;
    const DataflowGraph *graph_;
    const Placement *place_;
    TrafficStats *traffic_;
    ClusterId id_;

    std::vector<std::unique_ptr<Domain>> domains_;
    /**
     * Dense mirrors of each domain's next-event state, so the per-tick
     * gating/drain/refresh loops read one cache line instead of chasing
     * four separately-allocated Domain objects (and their queues).
     * domNext_[d] mirrors domains_[d]->nextEventCycle(): recomputed
     * after the domain ticks, lowered at every push this cluster routes
     * into it — which are the only paths that lower the original.
     * domOutNext_[d] caches min(netOut, memOut nextReady): the outbound
     * gateways are written only by the domain's own tick, so a refresh
     * after each tick (plus after a drain pops them) keeps it exact.
     */
    std::vector<Cycle> domNext_;
    std::vector<Cycle> domOutNext_;
    /**
     * min over domOutNext_, so the common no-gateway-traffic tick skips
     * both drain loops with one compare. Lowered whenever a
     * domOutNext_[d] entry is lowered; recomputed with them in the
     * end-of-tick refresh, hence always exact at the gate.
     */
    Cycle outNext_ = kCycleNever;
    std::unique_ptr<L1Controller> l1_;
    std::unique_ptr<StoreBuffer> sb_;
    RuntimeChecker *checker_ = nullptr;  ///< Null when checking is off.
    Cycle nextEvent_ = 0;  ///< See nextEventCycle(); 0 = armed at start.
    /**
     * Dense cache of min(l1, store buffer, sbIn next event), so the
     * per-tick memory gate and refresh read one member instead of
     * chasing the separately-allocated L1 and SB objects. Recomputed
     * exactly after every run of the memory block; lowered by every
     * cluster-local sbIn push and by noteMemEvent() in between.
     */
    Cycle memNext_ = kCycleNever;
    bool cohPending_ = false;  ///< See cohPending().
    /**
     * Hint that the store buffer's wave-dirty flag is set, copied out
     * while the buffer is hot at the end of the memory block. The
     * processor's per-cycle wave-window refresh reads this instead of
     * chasing into the (cold) StoreBuffer object; it clears both flags
     * together, so hint and flag agree whenever the processor looks.
     */
    bool sbWaveHint_ = false;

    TokenPool pool_;  ///< Backs the cluster-level token queue below.
    TimedTokenQueue interDomain_{&pool_};  ///< Cross-domain operand hops.
    TimedQueue<MemRequest> sbIn_;     ///< Requests en route to the SB.
    std::deque<NetMessage> outboundNet_;
};

} // namespace ws

#endif // WS_CORE_CLUSTER_H_
