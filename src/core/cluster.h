/**
 * @file
 * A cluster: four domains, the intra-cluster interconnect, a network
 * switch interface, a wave-ordered store buffer, and an L1 data cache
 * (paper §3.1, Figure 2).
 */

#ifndef WS_CORE_CLUSTER_H_
#define WS_CORE_CLUSTER_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/clock.h"
#include "core/config.h"
#include "core/domain.h"
#include "memory/coherence.h"
#include "memory/main_memory.h"
#include "memory/store_buffer.h"
#include "network/message.h"
#include "network/timed_queue.h"
#include "network/traffic.h"

namespace ws {

class Cluster : public Clocked
{
  public:
    Cluster(const ProcessorConfig &cfg, const DataflowGraph *graph,
            const Placement *placement, TrafficStats *traffic,
            MainMemory *mem, ClusterId id);

    ClusterId id() const { return id_; }

    /** Advance the whole cluster by one cycle. */
    void tick(Cycle now);

    void tickComponent(Cycle now) override { tick(now); }

    /**
     * Cached earliest cycle at which anything in this cluster has work,
     * refreshed at the end of every tick. The processor re-arms the
     * cluster's wakeup from this after each tick; arrivals between
     * ticks (mesh deliveries, coherence routing) wake the scheduler
     * directly, so staleness while skipped is harmless. Excludes
     * outboundNet_: a non-empty outbound queue implies a full (hence
     * armed) mesh, which keeps the retry loop running.
     */
    Cycle nextEventCycle() const override { return nextEvent_; }

    /** Operand arriving from the grid network. */
    void receiveOperand(const OperandMsg &msg, Cycle now);

    /** Memory request arriving from the grid network. */
    void receiveMemRequest(const MemRequest &req, Cycle now);

    /** Messages this cluster wants to put on the grid network. */
    std::deque<NetMessage> &outboundNet() { return outboundNet_; }

    Domain &domain(DomainId d) { return *domains_.at(d); }
    const Domain &domain(DomainId d) const { return *domains_.at(d); }
    std::size_t numDomains() const { return domains_.size(); }
    StoreBuffer &storeBuffer() { return *sb_; }
    const StoreBuffer &storeBuffer() const { return *sb_; }
    L1Controller &l1() { return *l1_; }
    const L1Controller &l1() const { return *l1_; }

    /**
     * Attach the runtime invariant checker (wscheck). Forwards to the
     * store buffer (WS604) and is kept locally so load-reply fanout —
     * token creation that happens here, not in a PE — is counted for
     * WS601 conservation.
     */
    void setChecker(RuntimeChecker *checker);

    /** Progress-indicator hash over the whole cluster (wscheck WS606). */
    std::uint64_t workSignature() const;

    bool idle() const;

  private:
    const ProcessorConfig &cfg_;
    const DataflowGraph *graph_;
    const Placement *place_;
    TrafficStats *traffic_;
    ClusterId id_;

    std::vector<std::unique_ptr<Domain>> domains_;
    std::unique_ptr<L1Controller> l1_;
    std::unique_ptr<StoreBuffer> sb_;
    RuntimeChecker *checker_ = nullptr;  ///< Null when checking is off.
    Cycle nextEvent_ = 0;  ///< See nextEventCycle(); 0 = armed at start.

    TimedQueue<Token> interDomain_;   ///< Cross-domain operand hops.
    TimedQueue<MemRequest> sbIn_;     ///< Requests en route to the SB.
    std::deque<NetMessage> outboundNet_;
};

} // namespace ws

#endif // WS_CORE_CLUSTER_H_
