#include "core/sim_io.h"

namespace ws {

namespace {

/** Bump when the record layout changes; old records then read as
 *  misses instead of mis-parsing. */
constexpr double kFormatVersion = 1;

bool
getNumber(const Json &j, const std::string &key, double *out)
{
    const Json *f = j.find(key);
    if (f == nullptr || f->type() != Json::Type::kNumber)
        return false;
    *out = f->asNumber();
    return true;
}

bool
getBool(const Json &j, const std::string &key, bool *out)
{
    const Json *f = j.find(key);
    if (f == nullptr || f->type() != Json::Type::kBool)
        return false;
    *out = f->asBool();
    return true;
}

bool
getString(const Json &j, const std::string &key, std::string *out)
{
    const Json *f = j.find(key);
    if (f == nullptr || f->type() != Json::Type::kString)
        return false;
    *out = f->asString();
    return true;
}

} // namespace

Json
simResultToJson(const SimResult &result)
{
    Json j = Json::object();
    j["version"] = kFormatVersion;
    j["completed"] = result.completed;
    j["cycles"] = static_cast<std::uint64_t>(result.cycles);
    j["useful"] = static_cast<std::uint64_t>(result.useful);
    j["aipc"] = result.aipc;
    j["pruned"] = result.pruned;
    j["check_violations"] =
        static_cast<std::uint64_t>(result.checkViolations);
    j["check_log"] = result.checkLog;
    // The report as an array of [name, value] pairs: order is part of
    // the identity (toString() renders in insertion order).
    Json report = Json::array();
    for (const auto &[name, value] : result.report.entries()) {
        Json entry = Json::array();
        entry.push(Json(name));
        entry.push(Json(value));
        report.push(std::move(entry));
    }
    j["report"] = std::move(report);
    return j;
}

bool
simResultFromJson(const Json &j, SimResult *out)
{
    *out = SimResult{};
    if (!j.isObject())
        return false;
    double version = 0.0;
    if (!getNumber(j, "version", &version) || version != kFormatVersion)
        return false;
    double cycles = 0.0;
    double useful = 0.0;
    double violations = 0.0;
    SimResult r;
    if (!getBool(j, "completed", &r.completed) ||
        !getNumber(j, "cycles", &cycles) ||
        !getNumber(j, "useful", &useful) ||
        !getNumber(j, "aipc", &r.aipc) ||
        !getBool(j, "pruned", &r.pruned) ||
        !getNumber(j, "check_violations", &violations) ||
        !getString(j, "check_log", &r.checkLog)) {
        return false;
    }
    r.cycles = static_cast<Cycle>(cycles);
    r.useful = static_cast<Counter>(useful);
    r.checkViolations = static_cast<Counter>(violations);
    const Json *report = j.find("report");
    if (report == nullptr || !report->isArray())
        return false;
    for (const Json &entry : report->items()) {
        if (!entry.isArray() || entry.size() != 2 ||
            entry.items()[0].type() != Json::Type::kString ||
            entry.items()[1].type() != Json::Type::kNumber) {
            return false;
        }
        r.report.add(entry.items()[0].asString(),
                     entry.items()[1].asNumber());
    }
    *out = std::move(r);
    return true;
}

bool
simResultsEqual(const SimResult &a, const SimResult &b)
{
    if (a.completed != b.completed || a.cycles != b.cycles ||
        a.useful != b.useful || a.aipc != b.aipc ||
        a.pruned != b.pruned ||
        a.checkViolations != b.checkViolations ||
        a.checkLog != b.checkLog) {
        return false;
    }
    const auto &ea = a.report.entries();
    const auto &eb = b.report.entries();
    if (ea.size() != eb.size())
        return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
        if (ea[i].first != eb[i].first || ea[i].second != eb[i].second)
            return false;
    }
    return true;
}

} // namespace ws
