/**
 * @file
 * TimedQueue: the basic latency-modelling primitive of the simulator.
 *
 * Producers push items with a future ready cycle; consumers pop items
 * whose ready cycle has arrived, in (ready cycle, insertion order) order,
 * so simulation stays deterministic even when latencies differ.
 *
 * Storage is a sorted vector consumed through a head index rather than
 * a binary heap: almost every producer pushes `now + <constant>` with
 * nondecreasing `now`, so new items belong at the tail and push is an
 * append. Mixed latencies (an instruction with a shorter execute
 * latency, a delivery retry at now+1) take the rare path — an insertion
 * found by binary search, placed after every item with the same ready
 * cycle, which reproduces the (ready, seq) heap order exactly.
 */

#ifndef WS_NETWORK_TIMED_QUEUE_H_
#define WS_NETWORK_TIMED_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/runtime_hook.h"
#include "common/types.h"

namespace ws {

template <typename T>
class TimedQueue
{
  public:
    /** Enqueue @p item, becoming visible at cycle @p ready. */
    void
    push(T item, Cycle ready)
    {
        if (entries_.size() == head_ || entries_.back().ready <= ready) {
            entries_.push_back(Entry{ready, std::move(item)});
            return;
        }
        // Out-of-order push (shorter latency than something already
        // queued): insert after every entry with ready <= the new one.
        const auto it = std::upper_bound(
            entries_.begin() + static_cast<std::ptrdiff_t>(head_),
            entries_.end(), ready,
            [](Cycle r, const Entry &e) { return r < e.ready; });
        entries_.insert(it, Entry{ready, std::move(item)});
    }

    /** True when an item is ready at cycle @p now. */
    bool
    ready(Cycle now) const
    {
        return head_ != entries_.size() && entries_[head_].ready <= now;
    }

    /** Earliest ready cycle of any queued item (kCycleNever if empty). */
    Cycle
    nextReady() const
    {
        return head_ == entries_.size() ? kCycleNever
                                        : entries_[head_].ready;
    }

    /** The frontmost item (min ready cycle); queue must be non-empty. */
    const T &peek() const { return entries_[head_].item; }

    /** Remove and return the frontmost ready item; ready(now) must hold. */
    T
    pop(Cycle now)
    {
        // The pop contract (WS607) is checked through the thread-local
        // hook so this bottom-layer header stays ignorant of the
        // checker; with checking off this is one load and one branch.
        if (tlsQueueCheckHook != nullptr)
            tlsQueueCheckHook->onQueuePop(entries_[head_].ready, now);
        T item = std::move(entries_[head_].item);
        ++head_;
        compact();
        return item;
    }

    /** Re-enqueue an item for retry at a later cycle. */
    void retry(T item, Cycle ready) { push(std::move(item), ready); }

    std::size_t size() const { return entries_.size() - head_; }
    bool empty() const { return head_ == entries_.size(); }

  private:
    struct Entry
    {
        Cycle ready;
        T item;
    };

    /** Reclaim the consumed prefix: free when drained, amortized-O(1)
     *  trim when a long-lived queue keeps more dead than live. */
    void
    compact()
    {
        if (head_ == entries_.size()) {
            entries_.clear();
            head_ = 0;
        } else if (head_ >= 32 && head_ * 2 >= entries_.size()) {
            entries_.erase(entries_.begin(),
                           entries_.begin() +
                               static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    std::vector<Entry> entries_;
    std::size_t head_ = 0;  ///< Index of the frontmost live entry.
};

} // namespace ws

#endif // WS_NETWORK_TIMED_QUEUE_H_
