/**
 * @file
 * TimedQueue: the basic latency-modelling primitive of the simulator.
 *
 * Producers push items with a future ready cycle; consumers pop items
 * whose ready cycle has arrived, in (ready cycle, insertion order) order,
 * so simulation stays deterministic even when latencies differ.
 */

#ifndef WS_NETWORK_TIMED_QUEUE_H_
#define WS_NETWORK_TIMED_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/runtime_hook.h"
#include "common/types.h"

namespace ws {

template <typename T>
class TimedQueue
{
  public:
    /** Enqueue @p item, becoming visible at cycle @p ready. */
    void
    push(T item, Cycle ready)
    {
        entries_.push_back(Entry{ready, seq_++, std::move(item)});
        std::push_heap(entries_.begin(), entries_.end(), later);
    }

    /** True when an item is ready at cycle @p now. */
    bool
    ready(Cycle now) const
    {
        return !entries_.empty() && entries_.front().ready <= now;
    }

    /** Earliest ready cycle of any queued item (kCycleNever if empty). */
    Cycle
    nextReady() const
    {
        return entries_.empty() ? kCycleNever : entries_.front().ready;
    }

    /** The frontmost item (min ready cycle); queue must be non-empty. */
    const T &peek() const { return entries_.front().item; }

    /** Remove and return the frontmost ready item; ready(now) must hold. */
    T
    pop(Cycle now)
    {
        // The pop contract (WS607) is checked through the thread-local
        // hook so this bottom-layer header stays ignorant of the
        // checker; with checking off this is one load and one branch.
        if (tlsQueueCheckHook != nullptr)
            tlsQueueCheckHook->onQueuePop(entries_.front().ready, now);
        std::pop_heap(entries_.begin(), entries_.end(), later);
        T item = std::move(entries_.back().item);
        entries_.pop_back();
        return item;
    }

    /** Re-enqueue an item for retry at a later cycle. */
    void retry(T item, Cycle ready) { push(std::move(item), ready); }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

  private:
    struct Entry
    {
        Cycle ready;
        std::uint64_t seq;
        T item;
    };

    /** Heap comparator: true when @p a becomes ready after @p b. */
    static bool
    later(const Entry &a, const Entry &b)
    {
        if (a.ready != b.ready)
            return a.ready > b.ready;
        return a.seq > b.seq;
    }

    std::vector<Entry> entries_;
    std::uint64_t seq_ = 0;
};

} // namespace ws

#endif // WS_NETWORK_TIMED_QUEUE_H_
