/**
 * @file
 * The inter-cluster grid interconnect (paper §3.4.3).
 *
 * One router per cluster, arranged in a 2D grid. Each router has six
 * ports: the four cardinal directions, one local port shared by the
 * domains' NET pseudo-PEs (operand traffic), and one local port dedicated
 * to the store buffer and L1 cache (memory/coherence traffic). Every
 * port moves up to two messages per cycle in each direction, and each
 * output port holds two 8-entry queues — one per virtual channel
 * (requests vs replies) — to prevent protocol deadlock. Routing is
 * deterministic dimension-order (X then Y).
 */

#ifndef WS_NETWORK_MESH_H_
#define WS_NETWORK_MESH_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "network/message.h"
#include "network/traffic.h"

namespace ws {

struct MeshConfig
{
    std::uint16_t clusters = 1;
    std::uint8_t portBandwidth = 2;  ///< Messages per cycle per port.
    std::uint8_t queueCapacity = 8;  ///< Entries per output queue per VC.
};

class MeshNetwork
{
  public:
    MeshNetwork(const MeshConfig &cfg, TrafficStats *traffic);

    /** Manhattan hop distance between two clusters. */
    int hopDistance(ClusterId a, ClusterId b) const;

    /** Mean pairwise hop distance over all cluster pairs. */
    double meanPairDistance() const;

    /**
     * Offer a message to the source router. Returns false (and leaves
     * the message with the caller) when the chosen output queue is full;
     * the caller retries next cycle.
     */
    bool inject(NetMessage msg, Cycle now);

    /** Advance every router by one cycle. */
    void tick(Cycle now);

    /**
     * Messages ejected at cluster @p c since last drained. The caller
     * takes ownership and must clear via drainDelivered().
     */
    std::vector<NetMessage> &delivered(ClusterId c) { return out_.at(c); }

    /**
     * Cheap may-have-deliveries hint for @p c: set on every ejection,
     * cleared by clearDelivered(). Never false while messages wait, so
     * the per-cycle drain can skip unflagged clusters without touching
     * their vectors; a stale true (a caller cleared the vector
     * directly) merely costs one empty visit.
     */
    bool hasDelivered(ClusterId c) const { return outPending_[c] != 0; }

    /** Drop cluster @p c's delivered messages and its pending hint. */
    void
    clearDelivered(ClusterId c)
    {
        out_[c].clear();
        if (outPending_[c] != 0) {
            outPending_[c] = 0;
            --outPendingCount_;
        }
    }

    /** True when no message is anywhere in the network. */
    bool idle() const;

    /**
     * Next-event view for the wakeup scheduler: any in-flight message
     * can hop (or eject) next cycle; an empty network never wakes.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        return idle() ? kCycleNever : now + 1;
    }

    int gridWidth() const { return gridW_; }
    int gridHeight() const { return gridH_; }

  private:
    static constexpr int kNorth = 0;
    static constexpr int kEast = 1;
    static constexpr int kSouth = 2;
    static constexpr int kWest = 3;
    static constexpr int kLocalOperand = 4;
    static constexpr int kLocalMem = 5;
    static constexpr int kNumPorts = 6;
    static constexpr int kNumVcs = 2;

    struct QEntry
    {
        NetMessage msg;
        Cycle stamp = 0;       ///< Cycle of last hop; one hop per cycle.
        Cycle injectedAt = 0;  ///< For latency accounting.
    };

    struct Router
    {
        // outQueue[port][vc]
        std::deque<QEntry> outQueue[kNumPorts][kNumVcs];
        std::uint8_t vcRR[kNumPorts] = {};  ///< Round-robin VC pointer.
    };

    int xOf(ClusterId c) const { return static_cast<int>(c) % gridW_; }
    int yOf(ClusterId c) const { return static_cast<int>(c) / gridW_; }

    /** Output port a message takes at router @p at toward @p dst. */
    int routePort(ClusterId at, const NetMessage &msg) const;

    ClusterId neighbor(ClusterId c, int port) const;

    bool queueFull(const Router &r, int port, int vc) const;

    MeshConfig cfg_;
    TrafficStats *traffic_;
    int gridW_;
    int gridH_;
    std::vector<Router> routers_;
    std::vector<std::vector<NetMessage>> out_;
    /**
     * Per-router queue-occupancy bitmask, one bit per (port, vc): bit
     * port*kNumVcs+vc set iff outQueue[port][vc] is non-empty. Held in
     * a dense side array (a Router is ~1KB of deques, so scanning a
     * flag inside each Router costs a cache miss per router; this scan
     * touches one line for a 16-cluster grid). tick() skips routers
     * with no bits set and, within a live router, ports with no bits —
     * exact, because an empty port's VC loop would only flip the VC
     * pointer back to where it started, leaving vcRR unchanged.
     */
    std::vector<std::uint16_t> occ_;
    /** Per-cluster delivered-messages hint; see hasDelivered(). */
    std::vector<std::uint8_t> outPending_;
    /** Clusters with the hint set, so idle() — read every cycle by the
     *  processor's mesh re-arm — is two counter loads, not a scan. */
    std::size_t outPendingCount_ = 0;
    std::size_t queued_ = 0;  ///< Total entries in all router queues.
};

} // namespace ws

#endif // WS_NETWORK_MESH_H_
