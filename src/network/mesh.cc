#include "network/mesh.h"

#include <cmath>

#include "common/log.h"

namespace ws {

MeshNetwork::MeshNetwork(const MeshConfig &cfg, TrafficStats *traffic)
    : cfg_(cfg), traffic_(traffic)
{
    if (cfg_.clusters == 0)
        fatal("MeshNetwork: zero clusters");
    gridW_ = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(cfg_.clusters))));
    gridH_ = (static_cast<int>(cfg_.clusters) + gridW_ - 1) / gridW_;
    routers_.resize(cfg_.clusters);
    out_.resize(cfg_.clusters);
    occ_.assign(cfg_.clusters, 0);
    outPending_.assign(cfg_.clusters, 0);
}

int
MeshNetwork::hopDistance(ClusterId a, ClusterId b) const
{
    return std::abs(xOf(a) - xOf(b)) + std::abs(yOf(a) - yOf(b));
}

double
MeshNetwork::meanPairDistance() const
{
    if (cfg_.clusters <= 1)
        return 0.0;
    double total = 0.0;
    int pairs = 0;
    for (ClusterId a = 0; a < cfg_.clusters; ++a) {
        for (ClusterId b = 0; b < cfg_.clusters; ++b) {
            if (a == b)
                continue;
            total += hopDistance(a, b);
            ++pairs;
        }
    }
    return total / pairs;
}

int
MeshNetwork::routePort(ClusterId at, const NetMessage &msg) const
{
    if (at == msg.dst)
        return msg.memTraffic ? kLocalMem : kLocalOperand;
    // Dimension-order: X first, then Y.
    if (xOf(msg.dst) != xOf(at))
        return xOf(msg.dst) > xOf(at) ? kEast : kWest;
    return yOf(msg.dst) > yOf(at) ? kSouth : kNorth;
}

ClusterId
MeshNetwork::neighbor(ClusterId c, int port) const
{
    int x = xOf(c);
    int y = yOf(c);
    switch (port) {
      case kNorth: --y; break;
      case kSouth: ++y; break;
      case kEast: ++x; break;
      case kWest: --x; break;
      default:
        panic("MeshNetwork: neighbor() on local port %d", port);
    }
    if (x < 0 || x >= gridW_ || y < 0)
        panic("MeshNetwork: route fell off the grid");
    const int id = y * gridW_ + x;
    if (id >= static_cast<int>(cfg_.clusters))
        panic("MeshNetwork: route to nonexistent cluster %d", id);
    return static_cast<ClusterId>(id);
}

bool
MeshNetwork::queueFull(const Router &r, int port, int vc) const
{
    return r.outQueue[port][vc].size() >= cfg_.queueCapacity;
}

bool
MeshNetwork::inject(NetMessage msg, Cycle now)
{
    if (msg.src >= cfg_.clusters || msg.dst >= cfg_.clusters)
        panic("MeshNetwork: inject %u->%u outside %u clusters", msg.src,
              msg.dst, cfg_.clusters);
    if (msg.vc >= kNumVcs)
        panic("MeshNetwork: bad virtual channel %u", msg.vc);
    Router &r = routers_[msg.src];
    const int port = routePort(msg.src, msg);
    if (queueFull(r, port, msg.vc)) {
        traffic_->recordCongestion();
        return false;
    }
    const std::uint8_t vc = msg.vc;
    const ClusterId src = msg.src;
    r.outQueue[port][vc].push_back(QEntry{std::move(msg), now, now});
    occ_[src] |= static_cast<std::uint16_t>(1u << (port * kNumVcs + vc));
    ++queued_;
    return true;
}

void
MeshNetwork::tick(Cycle now)
{
    for (ClusterId c = 0; c < cfg_.clusters; ++c) {
        // Empty routers have nothing to move and (provably) would not
        // touch their round-robin pointers; messages hopped in later
        // this cycle carry stamp == now and could not move anyway.
        if (occ_[c] == 0)
            continue;
        Router &r = routers_[c];
        for (int port = 0; port < kNumPorts; ++port) {
            // Both VC queues empty: nothing can move and the VC
            // round-robin pointer would come back to where it started.
            if (((occ_[c] >> (port * kNumVcs)) & ((1u << kNumVcs) - 1)) == 0)
                continue;
            int moved = 0;
            int vc = r.vcRR[port];
            int attempts = 0;
            while (moved < cfg_.portBandwidth && attempts < kNumVcs) {
                auto &q = r.outQueue[port][vc];
                if (q.empty() || q.front().stamp >= now) {
                    // Nothing eligible on this VC; try the other.
                    vc ^= 1;
                    ++attempts;
                    continue;
                }
                // Move the entry straight from the queue head — an
                // eligible message always leaves this queue (the only
                // bail-out, a full next-hop queue, is checked before
                // touching it).
                QEntry &head = q.front();
                if (port == kLocalOperand || port == kLocalMem) {
                    traffic_->record(TrafficLevel::kInterCluster,
                                     head.msg.memTraffic
                                         ? TrafficKind::kMemory
                                         : TrafficKind::kOperand);
                    traffic_->recordHops(static_cast<std::uint64_t>(
                        hopDistance(head.msg.src, head.msg.dst)));
                    traffic_->recordLatency(now - head.injectedAt);
                    out_[c].push_back(std::move(head.msg));
                    q.pop_front();
                    if (q.empty()) {
                        occ_[c] &= static_cast<std::uint16_t>(
                            ~(1u << (port * kNumVcs + vc)));
                    }
                    --queued_;
                    if (outPending_[c] == 0) {
                        outPending_[c] = 1;
                        ++outPendingCount_;
                    }
                } else {
                    const ClusterId n = neighbor(c, port);
                    Router &nr = routers_[n];
                    const int nport = routePort(n, head.msg);
                    if (queueFull(nr, nport, vc)) {
                        traffic_->recordCongestion();
                        // Head-of-line blocked; try the other VC.
                        vc ^= 1;
                        ++attempts;
                        continue;
                    }
                    head.stamp = now;
                    nr.outQueue[nport][vc].push_back(std::move(head));
                    q.pop_front();
                    if (q.empty()) {
                        occ_[c] &= static_cast<std::uint16_t>(
                            ~(1u << (port * kNumVcs + vc)));
                    }
                    occ_[n] |= static_cast<std::uint16_t>(
                        1u << (nport * kNumVcs + vc));
                }
                ++moved;
                attempts = 0;
                vc ^= 1;  // Alternate VCs for fairness.
            }
            r.vcRR[port] = static_cast<std::uint8_t>(vc);
        }
    }
}

bool
MeshNetwork::idle() const
{
    // queued_ mirrors the router queues exactly (inject/hop/eject), so
    // the per-queue walk reduces to one counter read. The delivery
    // vectors are normally drained via clearDelivered(), which keeps
    // outPendingCount_ exact — two counter loads decide the common
    // case. A caller that clears a vector directly (tests) leaves a
    // stale pending hint, so a non-zero count falls back to the scan.
    if (queued_ != 0)
        return false;
    if (outPendingCount_ == 0)
        return true;
    for (const auto &v : out_) {
        if (!v.empty())
            return false;
    }
    return true;
}

} // namespace ws
