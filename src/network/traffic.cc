#include "network/traffic.h"

namespace ws {

double
TrafficStats::fractionAtLevel(TrafficLevel level) const
{
    const Counter t = total();
    if (t == 0)
        return 0.0;
    Counter at_level = 0;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(TrafficKind::kNumKinds); ++k) {
        at_level += counts_[idx(level, static_cast<TrafficKind>(k))];
    }
    return static_cast<double>(at_level) / static_cast<double>(t);
}

double
TrafficStats::operandFraction() const
{
    const Counter t = total();
    if (t == 0)
        return 0.0;
    Counter operand = 0;
    for (std::size_t l = 0;
         l < static_cast<std::size_t>(TrafficLevel::kNumLevels); ++l) {
        operand += counts_[idx(static_cast<TrafficLevel>(l),
                               TrafficKind::kOperand)];
    }
    return static_cast<double>(operand) / static_cast<double>(t);
}

void
TrafficStats::report(StatReport &report) const
{
    for (std::size_t l = 0;
         l < static_cast<std::size_t>(TrafficLevel::kNumLevels); ++l) {
        const auto level = static_cast<TrafficLevel>(l);
        const std::string base =
            std::string("traffic.") + trafficLevelName(level);
        report.add(base + ".operand", count(level, TrafficKind::kOperand));
        report.add(base + ".memory", count(level, TrafficKind::kMemory));
    }
    report.add("traffic.total", total());
    report.add("traffic.operand_fraction", operandFraction());
    report.add("traffic.mean_hops", meanHops());
    report.add("traffic.mean_latency", meanLatency());
    report.add("traffic.congestion_events", congestionEvents());
}

const char *
trafficLevelName(TrafficLevel level)
{
    switch (level) {
      case TrafficLevel::kIntraPod: return "intra_pod";
      case TrafficLevel::kIntraDomain: return "intra_domain";
      case TrafficLevel::kIntraCluster: return "intra_cluster";
      case TrafficLevel::kInterCluster: return "inter_cluster";
      case TrafficLevel::kNumLevels: break;
    }
    return "unknown";
}

} // namespace ws
