/**
 * @file
 * Message types exchanged between tiles.
 *
 * Three payload families travel the interconnect hierarchy:
 *  - OperandMsg: a dataflow token heading for a consumer PE (also used
 *    for load replies, which are ordinary tokens flagged as memory
 *    traffic for Figure-8 accounting);
 *  - MemRequest: a wave-ordered memory operation heading for the store
 *    buffer that owns its thread's ordering;
 *  - CohMsg: MESI directory-protocol traffic between L1s and the
 *    directory/L2 home banks.
 *
 * Data values for coherence are not carried: wavefabric keeps
 * architectural data in a functional backing store and uses the protocol
 * machinery for timing and traffic only (see DESIGN.md).
 */

#ifndef WS_NETWORK_MESSAGE_H_
#define WS_NETWORK_MESSAGE_H_

#include <cstdint>
#include <variant>

#include "common/types.h"
#include "isa/instruction.h"
#include "isa/tag.h"
#include "isa/token.h"

namespace ws {

/** A token en route to a PE, with its destination coordinate resolved. */
struct OperandMsg
{
    Token token;
    PeCoord dst;
    bool memTraffic = false;   ///< Load reply / memory-related delivery.
};

/** The kind of wave-ordered memory operation. */
enum class MemOpKind : std::uint8_t
{
    kLoad,
    kStoreAddr,
    kStoreData,
    kMemNop,
};

/** One wave-ordered memory operation heading for a store buffer. */
struct MemRequest
{
    MemOpKind kind = MemOpKind::kMemNop;
    Tag tag;                     ///< Thread and wave of the operation.
    std::int32_t seq = 0;        ///< Position in the wave's chain.
    std::int32_t prev = kSeqNone;
    std::int32_t next = kSeqNone;
    Addr addr = 0;               ///< Effective address (load/storeAddr).
    Value data = 0;              ///< Payload (storeData).
    InstId inst = kInvalidInst;  ///< Originating instruction; loads use
                                 ///  it to fan the reply out.
};

/** Directory MESI protocol message types. */
enum class CohType : std::uint8_t
{
    kGetS,     ///< L1 → dir: read miss.
    kGetM,     ///< L1 → dir: write miss / upgrade.
    kPutM,     ///< L1 → dir: dirty eviction (writeback).
    kInv,      ///< dir → L1: invalidate.
    kInvAck,   ///< L1 → dir: invalidation done.
    kDown,     ///< dir → owner: downgrade M/E to S.
    kDownAck,  ///< owner → dir: downgrade done (with writeback).
    kData,     ///< dir → L1: line granted in S.
    kDataEx,   ///< dir → L1: line granted in E/M.
    kPutAck,   ///< dir → L1: writeback accepted.
};

/** One coherence protocol message. */
struct CohMsg
{
    CohType type = CohType::kGetS;
    Addr line = 0;               ///< Line-aligned address.
    ClusterId requester = 0;     ///< L1 (cluster) the transaction serves.
};

/** A message traversing the inter-cluster interconnect. */
struct NetMessage
{
    ClusterId src = 0;
    ClusterId dst = 0;
    std::uint8_t vc = 0;         ///< 0 = request class, 1 = reply class.
    bool memTraffic = false;     ///< Memory/coherence (vs operand data).
    std::variant<OperandMsg, MemRequest, CohMsg> payload;
};

} // namespace ws

#endif // WS_NETWORK_MESSAGE_H_
