/**
 * @file
 * Traffic accounting for the interconnect hierarchy (paper Figure 8).
 *
 * Every message delivery is recorded once, at the *highest* hierarchy
 * level it traverses, split into operand-data vs memory/coherence
 * traffic. Message latency and hop distance histograms support the
 * Section 4.3 scalability analysis.
 */

#ifndef WS_NETWORK_TRAFFIC_H_
#define WS_NETWORK_TRAFFIC_H_

#include <array>
#include <cstdint>

#include "common/stats.h"
#include "common/types.h"

namespace ws {

/** Highest interconnect level a message traverses. */
enum class TrafficLevel : std::uint8_t
{
    kIntraPod,      ///< PE to itself or its pod partner.
    kIntraDomain,   ///< Between pods of one domain.
    kIntraCluster,  ///< Between domains of one cluster.
    kInterCluster,  ///< Over the grid network.
    kNumLevels
};

/** Operand data vs memory/coherence traffic. */
enum class TrafficKind : std::uint8_t
{
    kOperand,
    kMemory,
    kNumKinds
};

class TrafficStats
{
  public:
    TrafficStats() : hopHist_(16, 1), latencyHist_(32, 4) {}

    /** Record one delivered message. */
    void
    record(TrafficLevel level, TrafficKind kind)
    {
        ++counts_[idx(level, kind)];
    }

    /** Record @p n messages at once (aggregated PE-level counts). */
    void
    recordBulk(TrafficLevel level, TrafficKind kind, Counter n)
    {
        counts_[idx(level, kind)] += n;
    }

    /** Record the hop distance of one inter-cluster message. */
    void recordHops(std::uint64_t hops) { hopHist_.sample(hops); }

    /** Record end-to-end delivery latency of one message. */
    void recordLatency(Cycle lat) { latencyHist_.sample(lat); }

    /** Count one cycle in which a full queue blocked a transfer. */
    void recordCongestion() { ++congestionEvents_; }

    Counter
    count(TrafficLevel level, TrafficKind kind) const
    {
        return counts_[idx(level, kind)];
    }

    /** Total messages across all levels and kinds. */
    Counter
    total() const
    {
        Counter t = 0;
        for (Counter c : counts_)
            t += c;
        return t;
    }

    /** Fraction of all messages at the given level (0 when no traffic). */
    double fractionAtLevel(TrafficLevel level) const;

    /** Fraction of all messages that are operand data. */
    double operandFraction() const;

    double meanHops() const { return hopHist_.mean(); }
    double meanLatency() const { return latencyHist_.mean(); }
    Counter congestionEvents() const { return congestionEvents_; }

    /** Export everything into @p report under prefix "traffic.". */
    void report(StatReport &report) const;

  private:
    static std::size_t
    idx(TrafficLevel level, TrafficKind kind)
    {
        return static_cast<std::size_t>(level) *
                   static_cast<std::size_t>(TrafficKind::kNumKinds) +
               static_cast<std::size_t>(kind);
    }

    std::array<Counter,
               static_cast<std::size_t>(TrafficLevel::kNumLevels) *
                   static_cast<std::size_t>(TrafficKind::kNumKinds)>
        counts_{};
    Histogram hopHist_;
    Histogram latencyHist_;
    Counter congestionEvents_ = 0;
};

/** Human-readable level name ("intra_pod", ...). */
const char *trafficLevelName(TrafficLevel level);

} // namespace ws

#endif // WS_NETWORK_TRAFFIC_H_
