/**
 * @file
 * The per-PE instruction store: a V-entry cache of decoded instructions
 * (paper §3.1, §4.2).
 *
 * Placement assigns every static instruction a home PE; the instruction
 * store dynamically binds up to V of its home instructions at a time.
 * When a token arrives for an unbound instruction, the store takes an
 * *instruction miss*: the decoded instruction is fetched (on average 3x
 * the cost of a matching-table miss) and the least-recently-used bound
 * instruction is evicted. When a PE's home set fits in V, every
 * instruction is bound up front and no misses ever occur.
 */

#ifndef WS_PE_INSTRUCTION_STORE_H_
#define WS_PE_INSTRUCTION_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ws {

struct InstructionStoreStats
{
    Counter hits = 0;
    Counter misses = 0;
    Counter evictions = 0;
};

class InstructionStore
{
  public:
    explicit InstructionStore(unsigned capacity);

    /**
     * Declare the home set. Instructions are identified thereafter by
     * their stable local index (position in @p home), which also feeds
     * the matching-table hash. The first V are pre-bound.
     */
    void assignHome(const std::vector<InstId> &home);

    /** True when @p inst is homed at this PE. */
    bool isHome(InstId inst) const { return localIdx_.count(inst) != 0; }

    /** Stable PE-local index of a home instruction. */
    std::uint32_t localIdx(InstId inst) const { return localIdx_.at(inst); }

    /** True when @p inst is currently bound (no miss needed). */
    bool isBound(InstId inst) const;

    /**
     * Record a use of @p inst. Returns true on a hit; on a miss the
     * caller must delay the access by the miss latency and call bind()
     * when the refill completes.
     */
    bool access(InstId inst);

    /** Complete a refill: bind @p inst, evicting the LRU instruction. */
    void bind(InstId inst);

    unsigned capacity() const { return capacity_; }
    std::size_t homeSize() const { return localIdx_.size(); }
    std::size_t boundCount() const { return bound_.size(); }

    const InstructionStoreStats &stats() const { return stats_; }

  private:
    unsigned capacity_;
    std::unordered_map<InstId, std::uint32_t> localIdx_;
    std::unordered_map<InstId, std::uint64_t> bound_;  ///< inst → LRU stamp.
    std::uint64_t clock_ = 0;
    InstructionStoreStats stats_;
};

} // namespace ws

#endif // WS_PE_INSTRUCTION_STORE_H_
