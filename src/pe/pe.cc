#include "pe/pe.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

ProcessingElement::ProcessingElement(const PeConfig &cfg,
                                     const DataflowGraph *graph,
                                     const Placement *placement,
                                     PeCoord self)
    : cfg_(cfg), graph_(graph), place_(placement), self_(self),
      match_(cfg.matchingEntries, cfg.matchingWays, cfg.k),
      store_(cfg.instStoreEntries)
{}

void
ProcessingElement::assignHome(const std::vector<InstId> &home)
{
    store_.assignHome(home);
}

bool
ProcessingElement::claimBank(Cycle now)
{
    if (acceptCycle_ != now) {
        acceptCycle_ = now;
        acceptsThisCycle_ = 0;
    }
    if (acceptsThisCycle_ >= cfg_.matchingBanks)
        return false;
    ++acceptsThisCycle_;
    return true;
}

bool
ProcessingElement::tryAccept(const Token &token, Cycle now)
{
    if (!claimBank(now)) {
        ++stats_.rejected;
        return false;
    }
    ++stats_.accepted;
    // MATCH next cycle, DISPATCH the one after.
    insertToken(token, now, 2);
    return true;
}

void
ProcessingElement::deliverBypass(const Token &token, Cycle now)
{
    ++stats_.bypassDeliveries;
    if (!claimBank(now)) {
        // All bank write ports taken this cycle: the token slips a
        // cycle rather than bouncing back to its producer.
        ++stats_.bankConflicts;
        pendingInsert_.push(token, now + 1);
        notify(now + 1);
        return;
    }
    insertToken(token, now, 1);
}

void
ProcessingElement::insertToken(const Token &token, Cycle now,
                               Cycle dispatch_delay)
{
    // k-loop bounding: tokens beyond the thread's wave window wait for
    // older waves to retire.
    if (window_ != nullptr && !window_->admits(token.tag)) {
        ++stats_.waveThrottled;
        waveWait_.push(token, now + 4);
        notify(now + 4);
        return;
    }
    // Instruction store: the decoded instruction must be bound before
    // its operands can be matched.
    if (!store_.access(token.dst.inst)) {
        ++stats_.instMissWaits;
        missWait_.push(token, now + cfg_.instMissLatency);
        notify(now + cfg_.instMissLatency);
        return;
    }
    const std::uint8_t arity = graph_->inst(token.dst.inst).arity();
    MatchingTable::InsertResult res =
        match_.insert(token, arity, store_.localIdx(token.dst.inst));
    if (res.fired) {
        // Matches completed in the in-memory table pay the miss latency.
        const Cycle delay = res.fire.fromOverflow
                                ? cfg_.overflowRetryLatency
                                : dispatch_delay;
        sched_.push(res.fire, now + delay);
        notify(now + delay);
    }
}

void
ProcessingElement::fanOut(const Instruction &inst, InstId inst_id,
                          int out_side, const Tag &tag, Value value,
                          OutputEntry &entry, Cycle now,
                          Cycle result_delay)
{
    (void)inst_id;
    if (checker_ != nullptr)
        checker_->onTokensCreated(inst.outs[out_side].size());
    for (const PortRef &ref : inst.outs[out_side]) {
        const Token token{tag, ref, value};
        const PeCoord dst = place_->home(ref.inst);
        if (dst == self_) {
            // Self handoff: speculative scheduling makes the consumer
            // dispatchable on the next cycle — but the insert still
            // needs a matching-bank write port.
            ++stats_.bypassDeliveries;
            if (!claimBank(now)) {
                ++stats_.bankConflicts;
                pendingInsert_.push(token, now + 1);
                notify(now + 1);
            } else {
                insertToken(token, now, result_delay);
            }
            continue;
        }
        if (cfg_.podBypass && partner_ != nullptr &&
            dst == partner_->self()) {
            partner_->deliverBypass(token, now);
            continue;
        }
        entry.tokens.push_back(token);
    }
}

void
ProcessingElement::execute(const MatchingTable::Fire &fire, Cycle now)
{
    const InstId id = fire.inst;
    const Tag tag = fire.tag;
    Operands ops{fire.ops[0], fire.ops[1], fire.ops[2]};

    const Instruction &inst = graph_->inst(id);
    const OpcodeInfo &info = opcodeInfo(inst.op);

    // Token conservation (wscheck WS601): firing consumes the matched
    // operands; any results fanOut() emits are counted as created.
    if (checker_ != nullptr)
        checker_->onTokensConsumed(inst.arity());

    ++stats_.executed;
    if (info.useful) {
        ++stats_.usefulExecuted;
        if (counters_ != nullptr)
            ++counters_->usefulExecuted;
    }

    // Iterative (non-pipelined) integer divide occupies EXECUTE.
    if (!info.floatingPoint && info.latency > 1)
        execBusyUntil_ = now + info.latency - 1;
    const Cycle result_delay = info.latency;

    if (inst.op == Opcode::kSink) {
        ++stats_.sinkTokens;
        if (counters_ != nullptr)
            ++counters_->sinkTokens;
        return;
    }

    OutputEntry entry;
    if (info.memory) {
        MemRequest req;
        req.tag = tag;
        req.inst = id;
        req.seq = inst.mem.seq;
        req.prev = inst.mem.prev;
        req.next = inst.mem.next;
        switch (inst.op) {
          case Opcode::kLoad:
            req.kind = MemOpKind::kLoad;
            req.addr = static_cast<Addr>(evaluate(inst.op, inst.imm, ops));
            break;
          case Opcode::kStoreAddr:
            req.kind = MemOpKind::kStoreAddr;
            req.addr = static_cast<Addr>(evaluate(inst.op, inst.imm, ops));
            break;
          case Opcode::kStoreData:
            req.kind = MemOpKind::kStoreData;
            req.data = ops[0];
            break;
          case Opcode::kMemNop:
            req.kind = MemOpKind::kMemNop;
            break;
          default:
            panic("PE: bad memory opcode");
        }
        entry.hasMem = true;
        entry.mem = req;
        output_.push(std::move(entry), now + result_delay);
        notify(now + result_delay);
        return;
    }

    const Value value = evaluate(inst.op, inst.imm, ops);
    int side = 0;
    Tag out_tag = tag;
    if (inst.op == Opcode::kSteer)
        side = ops[1] != 0 ? 0 : 1;
    else if (inst.op == Opcode::kWaveAdvance)
        out_tag = tag.nextWave();

    fanOut(inst, id, side, out_tag, value, entry, now, result_delay);
    if (!entry.tokens.empty()) {
        output_.push(std::move(entry), now + result_delay);
        notify(now + result_delay);
    }
}

void
ProcessingElement::tick(Cycle now)
{
    ++tickCount_;

    // Re-admit wave-throttled tokens as the window slides.
    for (int i = 0; i < 8 && waveWait_.ready(now); ++i) {
        if (window_ != nullptr && !window_->admits(waveWait_.peekTag())) {
            Token token = waveWait_.pop(now);
            waveWait_.push(token, now + 4);
            notify(now + 4);
            break;
        }
        insertToken(waveWait_.pop(now), now, 2);
    }

    // Bank-deferred bypass tokens get first claim on this cycle's
    // write ports.
    while (pendingInsert_.ready(now)) {
        if (!claimBank(now)) {
            // Still saturated; the queue retries next cycle.
            Token token = pendingInsert_.pop(now);
            ++stats_.bankConflicts;
            pendingInsert_.push(token, now + 1);
            notify(now + 1);
            break;
        }
        insertToken(pendingInsert_.pop(now), now, 1);
    }

    // Complete instruction-store refills (up to the L1-like port width).
    for (int i = 0; i < 4 && missWait_.ready(now); ++i) {
        Token token = missWait_.pop(now);
        store_.bind(token.dst.inst);
        insertToken(token, now, 2);
    }

    match_.tickStats();

    // DISPATCH + EXECUTE.
    if (execBusyUntil_ > now)
        return;
    if (!sched_.ready(now))
        return;
    if (output_.size() >= cfg_.outputQueueEntries) {
        ++stats_.outputStalls;
        return;
    }
    const MatchingTable::Fire &head = sched_.peek();
    const Instruction &inst = graph_->inst(head.inst);
    if (opcodeInfo(inst.op).floatingPoint && fpu_ != nullptr &&
        !fpu_->tryIssue(now)) {
        ++stats_.fpuStalls;
        return;
    }
    MatchingTable::Fire fire = sched_.pop(now);
    ++stats_.busyCycles;
    execute(fire, now);
}

bool
ProcessingElement::idle() const
{
    return sched_.empty() && missWait_.empty() && output_.empty() &&
           pendingInsert_.empty() && waveWait_.empty();
}

Cycle
ProcessingElement::nextEventCycle() const
{
    Cycle next = kCycleNever;
    next = std::min(next, sched_.nextReady());
    next = std::min(next, missWait_.nextReady());
    next = std::min(next, output_.nextReady());
    next = std::min(next, pendingInsert_.nextReady());
    next = std::min(next, waveWait_.nextReady());
    return next;
}

std::uint64_t
ProcessingElement::workSignature() const
{
    std::uint64_t h = 0x70655f7369676e00ULL;  // "pe_sign" salt.
    for (std::uint64_t v : {
             stats_.executed,
             stats_.usefulExecuted,
             stats_.accepted,
             stats_.rejected,
             stats_.bypassDeliveries,
             stats_.bankConflicts,
             stats_.waveThrottled,
             stats_.overflowReinserts,
             stats_.instMissWaits,
             stats_.fpuStalls,
             stats_.outputStalls,
             stats_.sinkTokens,
             match_.stats().inserts,
             match_.stats().fires,
             match_.stats().misses,
             match_.stats().overflowFires,
             static_cast<std::uint64_t>(match_.validRows()),
             static_cast<std::uint64_t>(match_.overflowSize()),
             store_.stats().hits,
             store_.stats().misses,
             static_cast<std::uint64_t>(sched_.size()),
             static_cast<std::uint64_t>(missWait_.size()),
             static_cast<std::uint64_t>(pendingInsert_.size()),
             static_cast<std::uint64_t>(waveWait_.size()),
             static_cast<std::uint64_t>(output_.size()),
         }) {
        h = hashCombine(h, v);
    }
    return h;
}

} // namespace ws
