/**
 * @file
 * The matching table: a banked, set-associative cache of waiting operand
 * tokens (paper §3.2).
 *
 * Dynamic dataflow requires matching an unbounded number of in-flight
 * instruction instances against a finite structure. WaveScalar (like
 * Monsoon and the Manchester machine before it) treats the physical
 * matching table as a *cache* of a conceptually-unbounded in-memory
 * matching table. Each row holds up to three operands for one
 * (instruction, tag) instance plus tracker-board state (which operands
 * are present).
 *
 * On a set conflict the least-recently-used incomplete row is evicted to
 * the overflow (in-memory) table; tokens whose instance lives in the
 * overflow table match there and, when complete, fire at a latency
 * penalty — a matching-table miss. This guarantees forward progress
 * under any amount of oversubscription.
 *
 * The row hash is the paper's matching-table-equation hash,
 * I*k + (wave mod k), which guarantees zero misses when M = V*k.
 *
 * Storage is struct-of-arrays: the way-scan in insert() touches only the
 * valid/instruction/tag key arrays (dense, contiguous per set), and the
 * operand values live in a parallel array touched only on merge. The
 * overflow table is an open-addressed SoA map (core/soa.h) instead of a
 * node-based unordered_map, and is only probed when non-empty — the
 * common zero-overflow kernel pays nothing for it.
 */

#ifndef WS_PE_MATCHING_TABLE_H_
#define WS_PE_MATCHING_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/soa.h"
#include "isa/tag.h"
#include "isa/token.h"

namespace ws {

struct MatchingTableStats
{
    Counter inserts = 0;
    Counter fires = 0;            ///< Matches completed in the cache.
    Counter misses = 0;           ///< Conflict evictions + overflow hits.
    Counter overflowFires = 0;    ///< Matches completed in memory.
    Counter evictedRows = 0;
    Counter occupancySum = 0;     ///< Waiting rows (cache + overflow),
                                  ///  summed per cycle.
};

class MatchingTable
{
  public:
    /** A matched instance ready for dispatch. */
    struct Fire
    {
        InstId inst = kInvalidInst;
        Tag tag;
        Value ops[3] = {0, 0, 0};
        bool fromOverflow = false;  ///< Completed in the in-memory table.
    };

    /** Result of inserting one token. */
    struct InsertResult
    {
        bool fired = false;
        Fire fire;   ///< Valid when fired.
    };

    /**
     * @param entries total rows M, @param ways set associativity,
     * @param k the k-loop-bounding hash parameter.
     */
    MatchingTable(unsigned entries, unsigned ways, unsigned k);

    /**
     * Insert @p token for an instance needing @p arity operands, where
     * the owning instruction has PE-local index @p local_idx.
     */
    InsertResult insert(const Token &token, std::uint8_t arity,
                        std::uint32_t local_idx);

    /** Per-cycle bookkeeping (occupancy statistics). Overflow rows are
     *  waiting instances too, so they count toward occupancy. */
    void
    tickStats()
    {
        stats_.occupancySum +=
            validCount_ + static_cast<Counter>(overflow_.size());
    }

    unsigned entries() const { return static_cast<unsigned>(valid_.size()); }
    unsigned ways() const { return ways_; }
    unsigned k() const { return k_; }
    std::size_t validRows() const { return validCount_; }
    std::size_t overflowSize() const { return overflow_.size(); }

    /** Structural recount of valid rows (wscheck WS603: must equal
     *  validRows(), which is maintained incrementally). */
    std::size_t recountValidRows() const;

    /** Operand tokens currently held by this table: present bits over
     *  valid cache rows plus overflow rows (wscheck WS601/WS602). */
    std::size_t residentOperands() const;

    const MatchingTableStats &stats() const { return stats_; }

  private:
    std::size_t setOf(std::uint32_t local_idx, const Tag &tag) const;

    static std::uint64_t
    keyOf(InstId inst, const Tag &tag)
    {
        return (static_cast<std::uint64_t>(inst) << 48) ^ tag.packed();
    }

    unsigned ways_;
    unsigned k_;
    unsigned sets_;
    std::uint64_t clock_ = 0;
    std::size_t validCount_ = 0;

    // Cache rows, struct-of-arrays, set-major (sets_ * ways_ each). The
    // (inst, tagPacked) pair is the full row identity; tags round-trip
    // losslessly through Tag::packed().
    std::vector<std::uint8_t> valid_;
    std::vector<InstId> inst_;
    std::vector<std::uint64_t> tagPacked_;
    std::vector<std::uint8_t> arity_;
    std::vector<std::uint8_t> present_;
    std::vector<std::uint64_t> lru_;
    std::vector<Value> ops_;   ///< 3 operand slots per row.

    OverflowMap overflow_;
    MatchingTableStats stats_;
};

} // namespace ws

#endif // WS_PE_MATCHING_TABLE_H_
