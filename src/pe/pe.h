/**
 * @file
 * The processing element: WaveScalar's execution tile (paper §3.2 and
 * the appendix).
 *
 * The five RTL pipeline stages map onto the model as follows:
 *  - INPUT: tryAccept() — up to matchingBanks operand arrivals per
 *    cycle; excess arrivals are rejected and the sender retries.
 *  - MATCH: insertion into the matching table; a completed row enters
 *    the scheduling queue.
 *  - DISPATCH / EXECUTE: tick() dispatches one ready row per cycle and
 *    executes it (integer ops single-cycle — the 20 FO4 clock is set by
 *    the pod-bypassed multiplier — divides iterative, FP on the shared
 *    per-domain pipelined FPU).
 *  - OUTPUT: one result per cycle leaves through a 4-entry output queue
 *    onto the PE's dedicated intra-domain result bus.
 *
 * Producer-consumer handoffs to this PE or its pod partner bypass
 * MATCH/DISPATCH via speculative scheduling, giving dependent execution
 * on consecutive cycles (the appendix example).
 */

#ifndef WS_PE_PE_H_
#define WS_PE_PE_H_

#include <cstdint>
#include <vector>

#include "check/checker.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/clock.h"
#include "core/soa.h"
#include "isa/exec.h"
#include "isa/graph.h"
#include "network/message.h"
#include "network/timed_queue.h"
#include "pe/instruction_store.h"
#include "pe/matching_table.h"
#include "place/placement.h"

namespace ws {

struct PeConfig
{
    unsigned matchingEntries = 128;
    unsigned matchingWays = 2;
    unsigned matchingBanks = 4;     ///< Operand arrivals accepted/cycle.
    unsigned instStoreEntries = 128;
    unsigned outputQueueEntries = 4;
    unsigned k = 4;                 ///< k-loop-bounding hash parameter.
    Cycle overflowRetryLatency = 24;  ///< In-memory matching round trip.
    Cycle instMissLatency = 72;     ///< ~3x a matching-table miss.
    unsigned overflowReinsertRate = 2;
    bool podBypass = true;          ///< 2-PE pod coupling (ablation knob).
};

struct PeStats
{
    Counter executed = 0;
    Counter usefulExecuted = 0;
    Counter accepted = 0;
    Counter rejected = 0;          ///< INPUT bandwidth rejections.
    Counter bypassDeliveries = 0;
    Counter bankConflicts = 0;     ///< Bypass inserts deferred by bank
                                   ///  write-port limits.
    Counter waveThrottled = 0;     ///< Tokens deferred by k-loop bounding.
    Counter overflowReinserts = 0;
    Counter instMissWaits = 0;
    Counter fpuStalls = 0;
    Counter outputStalls = 0;
    Counter sinkTokens = 0;
    Counter busyCycles = 0;
};

/**
 * Machine-wide running totals, bumped by every PE at execute time.
 *
 * Processor::run() polls sink progress every cycle; summing per-PE
 * counters there costs O(total PEs) per cycle, which dominates short
 * runs on large machines. Instead each PE increments these shared
 * totals (single-threaded within one simulation) the moment a sink
 * token arrives or a useful instruction retires, making the per-cycle
 * poll O(1). Per-PE stats are still kept for the detailed report.
 */
struct RunCounters
{
    Counter sinkTokens = 0;
    Counter usefulExecuted = 0;
};

/**
 * k-loop-bounding wave window (paper §4.2).
 *
 * The WaveScalar compiler bounds each loop so at most k iterations are
 * in flight; we model the resulting admission control centrally: tokens
 * of thread t may enter a matching table only for waves in
 * [base(t), base(t)+k), where base(t) is the thread's oldest
 * unretired wave (tracked by its store buffer, since every wave carries
 * a memory chain). The processor refreshes the bases once per cycle.
 */
struct WaveWindow
{
    unsigned k = 4;
    std::vector<WaveNum> base;

    bool
    admits(const Tag &tag) const
    {
        if (tag.thread >= base.size())
            return true;
        return tag.wave < base[tag.thread] + k;
    }
};

/** The shared, pipelined per-domain floating-point unit. */
class DomainFpu
{
  public:
    /** Claim this cycle's FPU issue slot; false when already taken. */
    bool
    tryIssue(Cycle now)
    {
        if (lastIssue_ == now)
            return false;
        lastIssue_ = now;
        ++issued_;
        return true;
    }

    Counter issued() const { return issued_; }

  private:
    Cycle lastIssue_ = kCycleNever;
    Counter issued_ = 0;
};

/** One executed instruction's outbound work, drained by the domain. */
struct OutputEntry
{
    SmallVec<Token, 4> tokens;   ///< Consumers beyond the pod; inline
                                 ///  storage covers typical fan-out.
    bool hasMem = false;
    MemRequest mem;
};

class ProcessingElement
{
  public:
    ProcessingElement(const PeConfig &cfg, const DataflowGraph *graph,
                      const Placement *placement, PeCoord self);

    /** Instructions homed at this PE (from placement). */
    void assignHome(const std::vector<InstId> &home);

    void setPodPartner(ProcessingElement *partner) { partner_ = partner; }
    void setFpu(DomainFpu *fpu) { fpu_ = fpu; }
    void setWaveWindow(const WaveWindow *w) { window_ = w; }
    void setRunCounters(RunCounters *rc) { counters_ = rc; }
    void setChecker(RuntimeChecker *checker) { checker_ = checker; }

    /**
     * Attach this PE to its domain's event ring (event-driven mode
     * only). Every queue push reports its ready cycle, so the domain
     * visits exactly the PEs that have due work. Unattached PEs (the
     * reference core, standalone unit tests) skip the bookkeeping.
     */
    void
    setWakeup(WakeupScheduler *sched, ComponentId id)
    {
        wake_ = sched;
        wakeId_ = id;
    }

    /**
     * INPUT stage: offer one operand token at cycle @p now. Returns
     * false when this cycle's arrival bandwidth is exhausted; the
     * caller must retry later.
     */
    bool tryAccept(const Token &token, Cycle now);

    /**
     * Pod-bypass delivery: skips the INPUT arbitration but still
     * consumes a matching-table bank write port; over-budget tokens slip
     * by a cycle instead of bouncing to the sender.
     */
    void deliverBypass(const Token &token, Cycle now);

    /** DISPATCH + EXECUTE: one instruction per cycle. */
    void tick(Cycle now);

    /** OUTPUT stage: true when a result is ready to leave. */
    bool hasOutput(Cycle now) const { return output_.ready(now); }
    OutputEntry popOutput(Cycle now) { return output_.pop(now); }

    PeCoord self() const { return self_; }
    const PeStats &stats() const { return stats_; }
    const MatchingTable &matching() const { return match_; }
    const InstructionStore &instStore() const { return store_; }

    /** True when no token, row, or result is anywhere in this PE. */
    bool idle() const;

    /** Earliest cycle at which any queued work becomes ready. */
    Cycle nextEventCycle() const;

    /** Queue occupancies (debugging). */
    std::size_t waveWaitSize() const { return waveWait_.size(); }
    std::size_t schedSize() const { return sched_.size(); }

    /** Times tick() ran (test/debug only; never exported or hashed —
     *  it advances on no-op ticks, which is exactly what the
     *  un-notified-PE tests measure). */
    std::uint64_t tickCount() const { return tickCount_; }

    /**
     * Hash of every observable-progress indicator of this PE (wscheck
     * WS606): ticking a PE on a cycle it was not armed for must leave
     * this unchanged. Deliberately excludes counters that advance on
     * every tick without representing work and are not exported by
     * Processor::report() (the matching table's occupancySum).
     */
    std::uint64_t workSignature() const;

  private:
    /** Claim one matching-bank write port for this cycle. */
    bool claimBank(Cycle now);

    /** Report queued work at @p at to the domain's event ring. */
    void
    notify(Cycle at)
    {
        if (wake_ != nullptr)
            wake_->wake(wakeId_, at);
    }

    /** MATCH: route a token into the matching table (or miss paths). */
    void insertToken(const Token &token, Cycle now, Cycle dispatch_delay);
    void execute(const MatchingTable::Fire &fire, Cycle now);
    void fanOut(const Instruction &inst, InstId inst_id, int out_side,
                const Tag &tag, Value value, OutputEntry &entry,
                Cycle now, Cycle result_delay);

    PeConfig cfg_;
    const DataflowGraph *graph_;
    const Placement *place_;
    PeCoord self_;
    ProcessingElement *partner_ = nullptr;
    DomainFpu *fpu_ = nullptr;
    const WaveWindow *window_ = nullptr;
    RunCounters *counters_ = nullptr;
    RuntimeChecker *checker_ = nullptr;  ///< Null when checking is off.

    MatchingTable match_;
    InstructionStore store_;
    TokenPool pool_;  ///< Backs the three token queues below.
    TimedQueue<MatchingTable::Fire> sched_;  ///< Matches awaiting dispatch.
    TimedTokenQueue missWait_{&pool_};   ///< Awaiting instruction bind.
    TimedTokenQueue pendingInsert_{&pool_};  ///< Bypass past bank limits.
    TimedTokenQueue waveWait_{&pool_};   ///< Beyond the wave window.
    TimedQueue<OutputEntry> output_;

    WakeupScheduler *wake_ = nullptr;  ///< Domain event ring (may be null).
    ComponentId wakeId_ = 0;

    Cycle acceptCycle_ = kCycleNever;
    unsigned acceptsThisCycle_ = 0;
    Cycle execBusyUntil_ = 0;
    std::uint64_t tickCount_ = 0;

    PeStats stats_;
};

} // namespace ws

#endif // WS_PE_PE_H_
