#include "pe/instruction_store.h"

#include "common/log.h"

namespace ws {

InstructionStore::InstructionStore(unsigned capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("InstructionStore: zero capacity");
}

void
InstructionStore::assignHome(const std::vector<InstId> &home)
{
    localIdx_.clear();
    bound_.clear();
    for (std::size_t i = 0; i < home.size(); ++i) {
        if (!localIdx_.emplace(home[i],
                               static_cast<std::uint32_t>(i)).second) {
            panic("InstructionStore: instruction %u homed twice", home[i]);
        }
        if (bound_.size() < capacity_)
            bound_.emplace(home[i], ++clock_);
    }
}

bool
InstructionStore::isBound(InstId inst) const
{
    return bound_.count(inst) != 0;
}

bool
InstructionStore::access(InstId inst)
{
    auto it = bound_.find(inst);
    if (it != bound_.end()) {
        ++stats_.hits;
        it->second = ++clock_;
        return true;
    }
    if (localIdx_.count(inst) == 0)
        panic("InstructionStore: access to non-home instruction %u", inst);
    ++stats_.misses;
    return false;
}

void
InstructionStore::bind(InstId inst)
{
    if (bound_.count(inst) != 0)
        return;  // A concurrent miss already bound it.
    if (bound_.size() >= capacity_) {
        auto victim = bound_.begin();
        for (auto it = bound_.begin(); it != bound_.end(); ++it) {
            if (it->second < victim->second)
                victim = it;
        }
        bound_.erase(victim);
        ++stats_.evictions;
    }
    bound_.emplace(inst, ++clock_);
}

} // namespace ws
