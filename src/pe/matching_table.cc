#include "pe/matching_table.h"

#include <bit>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

namespace {

Tag
unpackTag(std::uint64_t packed)
{
    Tag tag;
    tag.thread = static_cast<ThreadId>(packed >> 32);
    tag.wave = static_cast<WaveNum>(packed);
    return tag;
}

/** Merge one operand into (present, ops); true when the row completes. */
bool
mergeOperand(std::uint8_t &present, std::uint8_t arity, Value *ops,
             const Token &token)
{
    if (token.dst.port >= 3)
        panic("MatchingTable: port %u out of range", token.dst.port);
    ops[token.dst.port] = token.value;
    present |= static_cast<std::uint8_t>(1u << token.dst.port);
    const std::uint8_t full_mask =
        static_cast<std::uint8_t>((1u << arity) - 1);
    return (present & full_mask) == full_mask;
}

} // namespace

MatchingTable::MatchingTable(unsigned entries, unsigned ways, unsigned k)
    : ways_(ways), k_(k == 0 ? 1 : k)
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        fatal("MatchingTable: bad geometry (%u entries, %u ways)", entries,
              ways);
    sets_ = entries / ways;
    valid_.assign(entries, 0);
    inst_.assign(entries, kInvalidInst);
    tagPacked_.assign(entries, 0);
    arity_.assign(entries, 0);
    present_.assign(entries, 0);
    lru_.assign(entries, 0);
    ops_.assign(static_cast<std::size_t>(entries) * 3, 0);
}

std::size_t
MatchingTable::setOf(std::uint32_t local_idx, const Tag &tag) const
{
    // The matching-table equation hash: I*k + (wave mod k), offset by a
    // full-avalanche mix of the thread id so threads sharing a PE
    // spread across the whole table (the old thread*7 perturbation put
    // adjacent threads in adjacent sets, which clustered under
    // power-of-two thread counts). A per-thread *constant* offset
    // preserves the paper's zero-miss guarantee at M = V*k: within one
    // thread the (I, wave mod k) pairs still map injectively onto M
    // row slots, merely rotated; and mix64(0) == 0 keeps the
    // single-threaded layout exactly the paper's equation.
    const std::uint64_t h = static_cast<std::uint64_t>(local_idx) * k_ +
                            (tag.wave % k_) +
                            mix64(static_cast<std::uint64_t>(tag.thread));
    return static_cast<std::size_t>(h % sets_);
}

MatchingTable::InsertResult
MatchingTable::insert(const Token &token, std::uint8_t arity,
                      std::uint32_t local_idx)
{
    ++stats_.inserts;
    if (arity == 0 || arity > 3)
        panic("MatchingTable: arity %u out of range", arity);

    const std::uint64_t key = keyOf(token.dst.inst, token.tag);
    InsertResult result;

    // If this instance already spilled to the in-memory table, the
    // lookup misses the cache and matches in memory. The empty() guard
    // keeps the overflow probe off the zero-miss fast path entirely.
    if (!overflow_.empty()) {
        const std::size_t of = overflow_.find(key);
        if (of != OverflowMap::npos) {
            ++stats_.misses;
            if (mergeOperand(overflow_.present(of), overflow_.arity(of),
                             overflow_.ops(of), token)) {
                ++stats_.overflowFires;
                result.fired = true;
                result.fire.inst = overflow_.inst(of);
                result.fire.tag = unpackTag(overflow_.tagPacked(of));
                result.fire.ops[0] = overflow_.ops(of)[0];
                result.fire.ops[1] = overflow_.ops(of)[1];
                result.fire.ops[2] = overflow_.ops(of)[2];
                result.fire.fromOverflow = true;
                overflow_.erase(of);
            }
            return result;
        }
    }

    const std::size_t base = setOf(local_idx, token.tag) * ways_;
    const std::uint64_t packed = token.tag.packed();
    std::size_t row = OverflowMap::npos;
    for (unsigned w = 0; w < ways_; ++w) {
        const std::size_t i = base + w;
        if (valid_[i] && inst_[i] == token.dst.inst &&
            tagPacked_[i] == packed) {
            row = i;
            break;
        }
    }

    if (row == OverflowMap::npos) {
        // Allocate: a free way, else evict the LRU row to memory.
        for (unsigned w = 0; w < ways_; ++w) {
            if (!valid_[base + w]) {
                row = base + w;
                break;
            }
        }
        if (row == OverflowMap::npos) {
            std::size_t victim = base;
            for (unsigned w = 1; w < ways_; ++w) {
                if (lru_[base + w] < lru_[victim])
                    victim = base + w;
            }
            ++stats_.misses;
            ++stats_.evictedRows;
            const std::uint64_t victim_key =
                (static_cast<std::uint64_t>(inst_[victim]) << 48) ^
                tagPacked_[victim];
            bool inserted = false;
            const std::size_t of = overflow_.insert(victim_key, inserted);
            if (inserted) {
                overflow_.inst(of) = inst_[victim];
                overflow_.tagPacked(of) = tagPacked_[victim];
                overflow_.arity(of) = arity_[victim];
                overflow_.present(of) = present_[victim];
                overflow_.ops(of)[0] = ops_[victim * 3 + 0];
                overflow_.ops(of)[1] = ops_[victim * 3 + 1];
                overflow_.ops(of)[2] = ops_[victim * 3 + 2];
            }
            valid_[victim] = 0;
            --validCount_;
            row = victim;
        }
        valid_[row] = 1;
        ++validCount_;
        inst_[row] = token.dst.inst;
        tagPacked_[row] = packed;
        arity_[row] = arity;
        present_[row] = 0;
    }

    lru_[row] = ++clock_;
    if (mergeOperand(present_[row], arity_[row], &ops_[row * 3], token)) {
        ++stats_.fires;
        result.fired = true;
        result.fire.inst = inst_[row];
        result.fire.tag = unpackTag(tagPacked_[row]);
        result.fire.ops[0] = ops_[row * 3 + 0];
        result.fire.ops[1] = ops_[row * 3 + 1];
        result.fire.ops[2] = ops_[row * 3 + 2];
        result.fire.fromOverflow = false;
        valid_[row] = 0;
        --validCount_;
    }
    return result;
}

std::size_t
MatchingTable::recountValidRows() const
{
    std::size_t n = 0;
    for (const std::uint8_t v : valid_) {
        if (v)
            ++n;
    }
    return n;
}

std::size_t
MatchingTable::residentOperands() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < valid_.size(); ++i) {
        if (valid_[i])
            n += static_cast<std::size_t>(std::popcount(present_[i]));
    }
    overflow_.forEach([&](std::size_t slot) {
        n += static_cast<std::size_t>(
            std::popcount(overflow_.presentBits(slot)));
    });
    return n;
}

} // namespace ws
