#include "pe/matching_table.h"

#include <bit>

#include "common/log.h"
#include "common/rng.h"

namespace ws {

MatchingTable::MatchingTable(unsigned entries, unsigned ways, unsigned k)
    : ways_(ways), k_(k == 0 ? 1 : k)
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        fatal("MatchingTable: bad geometry (%u entries, %u ways)", entries,
              ways);
    sets_ = entries / ways;
    rows_.resize(entries);
}

std::size_t
MatchingTable::setOf(std::uint32_t local_idx, const Tag &tag) const
{
    // The matching-table equation hash: I*k + (wave mod k), offset by a
    // full-avalanche mix of the thread id so threads sharing a PE
    // spread across the whole table (the old thread*7 perturbation put
    // adjacent threads in adjacent sets, which clustered under
    // power-of-two thread counts). A per-thread *constant* offset
    // preserves the paper's zero-miss guarantee at M = V*k: within one
    // thread the (I, wave mod k) pairs still map injectively onto M
    // row slots, merely rotated; and mix64(0) == 0 keeps the
    // single-threaded layout exactly the paper's equation.
    const std::uint64_t h = static_cast<std::uint64_t>(local_idx) * k_ +
                            (tag.wave % k_) +
                            mix64(static_cast<std::uint64_t>(tag.thread));
    return static_cast<std::size_t>(h % sets_);
}

bool
MatchingTable::mergeToken(Row &row, const Token &token)
{
    if (token.dst.port >= 3)
        panic("MatchingTable: port %u out of range", token.dst.port);
    row.ops[token.dst.port] = token.value;
    row.present |= static_cast<std::uint8_t>(1u << token.dst.port);
    const std::uint8_t full_mask =
        static_cast<std::uint8_t>((1u << row.arity) - 1);
    return (row.present & full_mask) == full_mask;
}

MatchingTable::InsertResult
MatchingTable::insert(const Token &token, std::uint8_t arity,
                      std::uint32_t local_idx)
{
    ++stats_.inserts;
    if (arity == 0 || arity > 3)
        panic("MatchingTable: arity %u out of range", arity);

    const std::uint64_t key = keyOf(token.dst.inst, token.tag);
    InsertResult result;

    // If this instance already spilled to the in-memory table, the
    // lookup misses the cache and matches in memory.
    auto of_it = overflow_.find(key);
    if (of_it != overflow_.end()) {
        ++stats_.misses;
        Row &row = of_it->second;
        if (mergeToken(row, token)) {
            ++stats_.overflowFires;
            result.fired = true;
            result.fire.inst = row.inst;
            result.fire.tag = row.tag;
            result.fire.ops[0] = row.ops[0];
            result.fire.ops[1] = row.ops[1];
            result.fire.ops[2] = row.ops[2];
            result.fire.fromOverflow = true;
            overflow_.erase(of_it);
        }
        return result;
    }

    Row *set = &rows_[setOf(local_idx, token.tag) * ways_];
    Row *row = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].inst == token.dst.inst &&
            set[w].tag == token.tag) {
            row = &set[w];
            break;
        }
    }

    if (row == nullptr) {
        // Allocate: a free way, else evict the LRU row to memory.
        for (unsigned w = 0; w < ways_; ++w) {
            if (!set[w].valid) {
                row = &set[w];
                break;
            }
        }
        if (row == nullptr) {
            Row *victim = &set[0];
            for (unsigned w = 1; w < ways_; ++w) {
                if (set[w].lru < victim->lru)
                    victim = &set[w];
            }
            ++stats_.misses;
            ++stats_.evictedRows;
            overflow_.emplace(keyOf(victim->inst, victim->tag), *victim);
            victim->valid = false;
            --validCount_;
            row = victim;
        }
        row->valid = true;
        ++validCount_;
        row->inst = token.dst.inst;
        row->tag = token.tag;
        row->arity = arity;
        row->present = 0;
    }

    row->lru = ++clock_;
    if (mergeToken(*row, token)) {
        ++stats_.fires;
        result.fired = true;
        result.fire.inst = row->inst;
        result.fire.tag = row->tag;
        result.fire.ops[0] = row->ops[0];
        result.fire.ops[1] = row->ops[1];
        result.fire.ops[2] = row->ops[2];
        result.fire.fromOverflow = false;
        row->valid = false;
        --validCount_;
    }
    return result;
}

std::size_t
MatchingTable::recountValidRows() const
{
    std::size_t n = 0;
    for (const Row &row : rows_) {
        if (row.valid)
            ++n;
    }
    return n;
}

std::size_t
MatchingTable::residentOperands() const
{
    std::size_t n = 0;
    for (const Row &row : rows_) {
        if (row.valid)
            n += static_cast<std::size_t>(std::popcount(row.present));
    }
    for (const auto &[key, row] : overflow_)
        n += static_cast<std::size_t>(std::popcount(row.present));
    return n;
}

} // namespace ws
