/**
 * @file
 * Copy-chain detection (WS503): a kMov with exactly one consumer adds
 * a cycle of latency and a matching-table slot without amplifying
 * fan-out, so its producers could feed the consumer directly. Movs
 * with several consumers are deliberate fan-out amplifiers (the ISA's
 * stated purpose for kMov) and are left alone; movs primed by an
 * initial token are program inputs and are also exempt.
 */

#include "analyze/passes.h"
#include "verify/passes.h"

namespace ws {
namespace analyze_detail {

std::vector<InstId>
copyCandidates(const DataflowGraph &g)
{
    const auto producers = producerIndex(g);
    const auto tokens = tokenPorts(g);
    std::vector<InstId> candidates;
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (inst.op != Opcode::kMov)
            continue;
        if (inst.outs[0].size() != 1 || !inst.outs[1].empty())
            continue;
        if (inst.outs[0].front().inst == i)  // Degenerate self-loop.
            continue;
        if (tokens[i][0] || producers[i].port[0].empty())
            continue;
        candidates.push_back(i);
    }
    return candidates;
}

void
adviseCopyChain(const DataflowGraph &g, VerifyReport &rep)
{
    for (const InstId i : copyCandidates(g)) {
        const PortRef dst = g.inst(i).outs[0].front();
        rep.add(DiagCode::kCopyChain, i,
                verify_detail::msgf(
                    "single-consumer mov: producer could feed inst %u "
                    "port %u directly",
                    dst.inst, dst.port));
    }
}

} // namespace analyze_detail
} // namespace ws
