/**
 * @file
 * Constant folding detection (WS501): a pure compute instruction whose
 * every input port is fed by exactly one kConst producer — and no
 * initial token — computes the same value on every firing, so it could
 * be a kConst itself. The rewriter performs the fold; this pass (and
 * the shared producer index it exports) only detects it.
 */

#include "analyze/passes.h"
#include "verify/passes.h"

namespace ws {
namespace analyze_detail {

std::vector<PortProducers>
producerIndex(const DataflowGraph &g)
{
    std::vector<PortProducers> producers(g.size());
    for (InstId i = 0; i < g.size(); ++i) {
        for (const auto &side : g.inst(i).outs) {
            for (const PortRef &out : side) {
                if (out.inst < g.size() && out.port < 3)
                    producers[out.inst].port[out.port].push_back(i);
            }
        }
    }
    return producers;
}

std::vector<std::array<bool, 3>>
tokenPorts(const DataflowGraph &g)
{
    std::vector<std::array<bool, 3>> ports(
        g.size(), std::array<bool, 3>{false, false, false});
    for (const Token &t : g.initialTokens()) {
        if (t.dst.inst < g.size() && t.dst.port < 3)
            ports[t.dst.inst][t.dst.port] = true;
    }
    return ports;
}

std::vector<InstId>
foldCandidates(const DataflowGraph &g)
{
    const auto producers = producerIndex(g);
    const auto tokens = tokenPorts(g);
    std::vector<InstId> candidates;
    for (InstId i = 0; i < g.size(); ++i) {
        const Instruction &inst = g.inst(i);
        if (opcodeClass(inst.op) != OpClass::kCompute ||
            inst.op == Opcode::kConst || inst.op == Opcode::kMov) {
            continue;
        }
        bool foldable = true;
        for (std::uint8_t p = 0; p < inst.arity(); ++p) {
            const auto &prods = producers[i].port[p];
            if (prods.size() != 1 || tokens[i][p] ||
                g.inst(prods.front()).op != Opcode::kConst) {
                foldable = false;
                break;
            }
        }
        if (foldable)
            candidates.push_back(i);
    }
    return candidates;
}

void
adviseFold(const DataflowGraph &g, VerifyReport &rep)
{
    for (const InstId i : foldCandidates(g)) {
        rep.add(DiagCode::kFoldableConst, i,
                verify_detail::msgf(
                    "%s computes a constant: every input is a const",
                    std::string(opcodeName(g.inst(i).op)).c_str()));
    }
}

} // namespace analyze_detail
} // namespace ws
