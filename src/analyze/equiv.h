/**
 * @file
 * Symbolic equivalence checking (translation validation, WS8xx).
 *
 * checkEquivalence(a, b) proves — or refutes with a stable WS8xx
 * diagnostic — that two dataflow graphs have identical observable
 * behaviour: the value stream arriving at every sink, the wave-ordered
 * memory effect sequence of every thread, and the completion structure.
 * The rewriter uses it as a validate-or-rollback gate: a rewrite round
 * whose result cannot be proven equivalent is reverted, never shipped.
 *
 * The proof engine is an optimistic joint partition refinement (a
 * greatest-fixpoint global value numbering) over the combined node
 * universe of both graphs. Two kinds of entity are refined together:
 *
 *   - VAL classes partition value streams (which tagged values a
 *     source emits / a port receives);
 *   - SUPP classes partition tag supports (for which tags a node
 *     fires at all).
 *
 * Both are needed because rewrites change port structure: a folded
 * constant keeps only a trigger edge, so proving it equivalent to the
 * expression it replaced requires showing the trigger's firing set
 * matches the expression's operand intersection. Signatures normalize
 * the algebra the rewriter exploits — symbolic constant folding,
 * commutative operand sorting, immediate-form/register-form merging,
 * mul-by-2^k as shift, and mov-chain collapsing via class aliasing —
 * so the checker always proves at least what the catalog rewrites.
 *
 * Soundness: tagged-token dataflow is a deterministic Kahn network, so
 * any signature-consistent partition only equates sources with
 * identical streams (coinduction over the defining equations); the
 * checker errs only toward false mismatches, never false proofs.
 */

#ifndef WS_ANALYZE_EQUIV_H_
#define WS_ANALYZE_EQUIV_H_

#include "isa/graph.h"
#include "verify/diagnostic.h"

namespace ws {

/** Proof-effort counters of one checkEquivalence() run. */
struct EquivStats
{
    Counter entities = 0;        ///< Refined entities (both graphs).
    Counter valueClasses = 0;    ///< Final VAL partition size.
    Counter supportClasses = 0;  ///< Final SUPP partition size.
    Counter iterations = 0;      ///< Refinement sweeps to fixpoint.
    Counter sinkPairs = 0;       ///< Sink pairs compared (WS801).
    Counter chainPairs = 0;      ///< Memory chain pairs compared (WS802).
};

/** Outcome of comparing two graphs. */
struct EquivResult
{
    VerifyReport report;  ///< WS801/WS802/WS803 findings (errors).
    EquivStats stats;

    bool equivalent() const { return report.ok(); }
};

/**
 * Prove @p a and @p b observably equivalent. Both graphs are expected
 * to have passed structural verification (ws::verify) — instruction
 * ids, ports, and chain annotations are trusted. The check is
 * symmetric in what it proves but reports divergences as "a vs b"
 * (a is the reference, b the candidate translation).
 */
EquivResult checkEquivalence(const DataflowGraph &a, const DataflowGraph &b);

} // namespace ws

#endif // WS_ANALYZE_EQUIV_H_
